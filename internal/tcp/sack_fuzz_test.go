package tcp

import (
	"bytes"
	"encoding/binary"
	"testing"

	"hybrid/internal/iovec"
)

// FuzzSackRanges drives a sackRanges through a fuzzer-chosen sequence of
// receiver operations — out-of-order adds above rcvNxt and monotone trims,
// the only call pattern the real receiver produces — and checks the
// invariants documented on the type after every step:
//
//   - blocks are sorted by Start in sequence order;
//   - blocks are disjoint and non-adjacent (adjacency merges on add);
//   - every block is nonempty;
//   - there are at most maxSackBlocks blocks;
//   - no block covers or precedes rcvNxt;
//   - every reported byte was actually added (eviction may lose
//     information, but blocks never fabricate it).
//
// The base sequence sits just below the 2^32 boundary so merges and trims
// exercise wraparound arithmetic.
func FuzzSackRanges(f *testing.F) {
	f.Add([]byte{0, 0, 10, 50, 1, 0, 80, 50, 3, 0, 30, 0})
	f.Add([]byte{0, 0, 0, 255, 0, 0, 1, 255, 0, 0, 2, 255, 0, 0, 3, 255, 0, 16, 0, 255})
	f.Add([]byte{3, 255, 255, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s sackRanges
		rcvNxt := ^uint32(0) - 1000 // straddle the wrap point
		added := make(map[uint32]bool)
		for len(data) >= 4 {
			op, data0, data1, data2 := data[0], data[1], data[2], data[3]
			data = data[4:]
			if op%4 == 3 {
				rcvNxt += 1 + uint32(binary.BigEndian.Uint16([]byte{data0, data1}))%2048
				s.trim(rcvNxt)
			} else {
				start := rcvNxt + 1 + uint32(binary.BigEndian.Uint16([]byte{data0, data1}))%8192
				length := uint32(data2) % 300 // zero exercises the ignore path
				s.add(start, start+length)
				for q := start; q != start+length; q++ {
					added[q] = true
				}
			}
			blks := s.blocks()
			if len(blks) > maxSackBlocks {
				t.Fatalf("%d blocks exceeds cap %d", len(blks), maxSackBlocks)
			}
			for i, b := range blks {
				if !seqLT(b.Start, b.End) {
					t.Fatalf("block %d [%d,%d) is empty or inverted", i, b.Start, b.End)
				}
				if !seqGT(b.Start, rcvNxt) {
					t.Fatalf("block %d [%d,%d) covers rcvNxt %d", i, b.Start, b.End, rcvNxt)
				}
				if i > 0 && !seqLT(blks[i-1].End, b.Start) {
					t.Fatalf("blocks %d and %d unsorted, overlapping, or unmerged-adjacent: [%d,%d) [%d,%d)",
						i-1, i, blks[i-1].Start, blks[i-1].End, b.Start, b.End)
				}
				for q := b.Start; q != b.End; q++ {
					if !added[q] {
						t.Fatalf("block %d [%d,%d) reports seq %d that was never added", i, b.Start, b.End, q)
					}
				}
			}
		}
	})
}

// FuzzSegmentRoundtrip checks that any encodable segment — arbitrary
// header fields, payload, and up to maxSackBlocks well-formed SACK blocks —
// survives Encode → Decode with every field intact, and that decoding a
// corrupted copy never panics.
func FuzzSegmentRoundtrip(f *testing.F) {
	f.Add(uint16(80), uint16(1234), uint32(1), uint32(2), byte(FlagACK), uint32(65535), []byte("hello"), []byte{0, 0, 0, 10, 0, 3})
	f.Add(uint16(0), uint16(0), ^uint32(0), uint32(0), byte(FlagSYN|FlagSACKOK), uint32(0), []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, srcPort, dstPort uint16, seq, ack uint32, flags byte, window uint32, payload, sackRaw []byte) {
		in := Segment{
			SrcPort: srcPort,
			DstPort: dstPort,
			Seq:     seq,
			Ack:     ack,
			Flags:   Flags(flags),
			Window:  window,
		}
		if len(payload) > 0 {
			in.Payload = iovec.FromBytes(payload)
		}
		for len(sackRaw) >= 6 && len(in.Sack) < maxSackBlocks {
			start := binary.BigEndian.Uint32(sackRaw[0:])
			length := 1 + uint32(binary.BigEndian.Uint16(sackRaw[4:]))
			in.Sack = append(in.Sack, SackBlock{Start: start, End: start + length})
			sackRaw = sackRaw[6:]
		}

		wire := in.Encode()
		out, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of freshly encoded segment failed: %v", err)
		}
		if out.SrcPort != in.SrcPort || out.DstPort != in.DstPort ||
			out.Seq != in.Seq || out.Ack != in.Ack ||
			out.Flags != in.Flags || out.Window != in.Window {
			t.Fatalf("header mismatch: got %+v, want %+v", out, in)
		}
		if out.Payload.Len() != len(payload) {
			t.Fatalf("payload length %d, want %d", out.Payload.Len(), len(payload))
		}
		if len(payload) > 0 {
			got := make([]byte, out.Payload.Len())
			out.Payload.CopyTo(got)
			if !bytes.Equal(got, payload) {
				t.Fatal("payload bytes changed in round trip")
			}
		}
		if len(out.Sack) != len(in.Sack) {
			t.Fatalf("SACK block count %d, want %d", len(out.Sack), len(in.Sack))
		}
		for i := range in.Sack {
			if out.Sack[i] != in.Sack[i] {
				t.Fatalf("SACK block %d = %+v, want %+v", i, out.Sack[i], in.Sack[i])
			}
		}

		// Corruption must be rejected or decoded — never a panic or an
		// out-of-bounds read. Flip one byte and truncate.
		corrupt := append([]byte(nil), wire...)
		corrupt[int(seq)%len(corrupt)] ^= 1 + byte(ack)
		_, _ = Decode(corrupt)
		_, _ = Decode(wire[:int(window)%len(wire)])
	})
}
