package tcp

import (
	"reflect"
	"testing"

	"hybrid/internal/netsim"
	"hybrid/internal/vclock"
)

// newWorldCfg is newWorld with distinct per-stack configs, for negotiation
// tests where the two ends disagree about SACK.
func newWorldCfg(t *testing.T, link netsim.LinkParams, cfgA, cfgB Config) *world {
	t.Helper()
	clk := vclock.NewVirtual()
	n := netsim.New(clk, 7)
	ha, err := n.Host("hostA", link)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := n.Host("hostB", link)
	if err != nil {
		t.Fatal(err)
	}
	return &world{
		clk: clk, net: n, ha: ha, hb: hb,
		a: NewStack(ha, cfgA),
		b: NewStack(hb, cfgB),
	}
}

func sackOn(c *Conn) bool {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.sackOn
}

func TestSackNegotiation(t *testing.T) {
	cases := []struct {
		name           string
		client, server bool // cfg.SACK on each side
		want           bool
	}{
		{"both", true, true, true},
		{"client-only", true, false, false},
		{"server-only", false, true, false},
		{"neither", false, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newWorldCfg(t, netsim.Ethernet100(),
				Config{SACK: tc.client}, Config{SACK: tc.server})
			client, server := w.connectPair(t, 80)
			if got := sackOn(client); got != tc.want {
				t.Errorf("client sackOn = %v, want %v", got, tc.want)
			}
			if got := sackOn(server); got != tc.want {
				t.Errorf("server sackOn = %v, want %v", got, tc.want)
			}
			// The connection must work either way.
			transfer(t, w, client, server, 16*1024)
		})
	}
}

// TestSackTransferMatrix runs the loss/reorder/duplication transfer matrix
// with each recovery variant: stream integrity must hold regardless of the
// recovery machinery in play.
func TestSackTransferMatrix(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"newreno", Config{NewReno: true}},
		{"sack", Config{SACK: true}},
		{"sack-cubic", Config{SACK: true, Controller: "cubic"}},
		{"cubic-legacy", Config{Controller: "cubic"}},
	}
	link := netsim.Ethernet100()
	link.LossProb = 0.05
	link.ReorderProb = 0.1
	link.DupProb = 0.02
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			w := newWorld(t, link, v.cfg)
			client, server := w.connectPair(t, 80)
			transfer(t, w, client, server, 256*1024)
		})
	}
}

// TestSackRecoveryAvoidsRTO pins the headline benefit: a three-segment
// burst loss that costs the legacy machine RTO expiries is repaired
// entirely by SACK retransmissions.
func TestSackRecoveryAvoidsRTO(t *testing.T) {
	run := func(cfg Config) Stats {
		w := newWorld(t, netsim.Ethernet100(), cfg)
		w.net.SetPath("hostA", "hostB", netsim.PathSpec{DropSeq: []uint64{10, 11, 12}})
		client, server := w.connectPair(t, 80)
		transfer(t, w, client, server, 128*1024)
		_ = server
		return w.a.Snapshot()
	}
	legacy := run(Config{})
	sack := run(Config{SACK: true})
	if legacy.RTOExpiries == 0 {
		t.Fatalf("legacy run lost no time to RTO; drop pattern did not bite (stats %+v)", legacy)
	}
	if sack.RTOExpiries != 0 {
		t.Errorf("SACK run still hit %d RTOs (stats %+v)", sack.RTOExpiries, sack)
	}
	if sack.RecoveryRexmits == 0 {
		t.Errorf("SACK run recorded no scoreboard retransmissions (stats %+v)", sack)
	}
	if sack.FastRecoveries == 0 {
		t.Errorf("SACK run never entered fast recovery (stats %+v)", sack)
	}
}

// TestNewRenoFallbackWhenPeerLacksSACK: a SACK-configured client against a
// SACK-less server must degrade to NewReno recovery — no SACK blocks on
// the wire, but partial ACKs still repair holes without RTOs for moderate
// burst loss.
func TestNewRenoFallbackWhenPeerLacksSACK(t *testing.T) {
	w := newWorldCfg(t, netsim.Ethernet100(), Config{SACK: true}, Config{})
	w.net.SetPath("hostA", "hostB", netsim.PathSpec{DropSeq: []uint64{10, 11}})
	client, server := w.connectPair(t, 80)
	if sackOn(client) {
		t.Fatal("client negotiated SACK against a SACK-less server")
	}
	transfer(t, w, client, server, 128*1024)
	st := w.a.Snapshot()
	if st.FastRecoveries == 0 {
		t.Errorf("fallback never entered recovery (stats %+v)", st)
	}
	if st.RecoveryRexmits == 0 {
		t.Errorf("fallback repaired no holes via partial ACKs (stats %+v)", st)
	}
}

func TestUnknownControllerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStack accepted an unknown controller name")
		}
	}()
	clk := vclock.NewVirtual()
	n := netsim.New(clk, 7)
	h, err := n.Host("h", netsim.Ethernet100())
	if err != nil {
		t.Fatal(err)
	}
	NewStack(h, Config{Controller: "vegas"})
}

// --- sackRanges unit tests ---------------------------------------------------

func blocksOf(pairs ...uint32) []SackBlock {
	if len(pairs)%2 != 0 {
		panic("pairs")
	}
	var out []SackBlock
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, SackBlock{Start: pairs[i], End: pairs[i+1]})
	}
	return out
}

func TestSackRangesMerge(t *testing.T) {
	cases := []struct {
		name string
		adds [][2]uint32
		want []SackBlock
	}{
		{"single", [][2]uint32{{100, 200}}, blocksOf(100, 200)},
		{"disjoint-sorted", [][2]uint32{{300, 400}, {100, 200}}, blocksOf(100, 200, 300, 400)},
		{"overlap-merges", [][2]uint32{{100, 200}, {150, 250}}, blocksOf(100, 250)},
		{"adjacent-merges", [][2]uint32{{100, 200}, {200, 300}}, blocksOf(100, 300)},
		{"bridge-merges-three", [][2]uint32{{100, 200}, {300, 400}, {150, 350}}, blocksOf(100, 400)},
		{"contained-noop", [][2]uint32{{100, 400}, {200, 300}}, blocksOf(100, 400)},
		{"inverted-ignored", [][2]uint32{{200, 100}}, nil},
		{"empty-ignored", [][2]uint32{{100, 100}}, nil},
		{
			"overflow-evicts-highest",
			[][2]uint32{{100, 110}, {200, 210}, {300, 310}, {400, 410}, {500, 510}},
			blocksOf(100, 110, 200, 210, 300, 310, 400, 410),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s sackRanges
			for _, a := range tc.adds {
				s.add(a[0], a[1])
			}
			if got := s.blocks(); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("blocks = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSackRangesTrim(t *testing.T) {
	var s sackRanges
	s.add(100, 200)
	s.add(300, 400)
	s.add(500, 600)
	s.trim(300) // swallows [100,200) and the block starting at 300
	if got, want := s.blocks(), blocksOf(500, 600); !reflect.DeepEqual(got, want) {
		t.Errorf("after trim(300): %v, want %v", got, want)
	}
	s.trim(1000)
	if got := s.blocks(); got != nil {
		t.Errorf("after trim(1000): %v, want nil", got)
	}
}

func TestSackRangesWraparound(t *testing.T) {
	var s sackRanges
	base := ^uint32(0) - 50 // ranges straddling the 2^32 boundary
	s.add(base, base+100)
	s.add(base+200, base+300)
	want := blocksOf(base, base+100, base+200, base+300)
	if got := s.blocks(); !reflect.DeepEqual(got, want) {
		t.Errorf("blocks = %v, want %v", got, want)
	}
	s.trim(base + 150)
	if got, want := s.blocks(), blocksOf(base+200, base+300); !reflect.DeepEqual(got, want) {
		t.Errorf("after trim: %v, want %v", got, want)
	}
}
