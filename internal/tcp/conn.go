package tcp

import (
	"time"

	"hybrid/internal/iovec"
	"hybrid/internal/timerwheel"
	"hybrid/internal/vclock"
)

// State is a TCP connection state (RFC 793 §3.2). The underlying type is
// uint8: the state rides in every TCB and there are ten of them.
type State uint8

// Connection states.
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"CLOSED", "SYN_SENT", "SYN_RCVD", "ESTABLISHED", "FIN_WAIT_1",
	"FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK", "TIME_WAIT",
}

func (st State) String() string {
	if int(st) < len(stateNames) {
		return stateNames[st]
	}
	return "UNKNOWN"
}

// rtxSeg is one sent-but-unacknowledged segment. The payload vector
// shares the send buffer's storage: retransmission holds references, not
// copies.
type rtxSeg struct {
	payload       iovec.Vec
	seq           uint32
	retries       int32
	flags         Flags
	retransmitted bool
	// Scoreboard marks (SACK connections only). sacked: the peer reported
	// this segment received, so it occupies no pipe and must not be
	// retransmitted. rexInRec: already retransmitted during the current
	// recovery episode (RFC 6675 retransmits each hole once per episode).
	sacked   bool
	rexInRec bool
}

func (r *rtxSeg) seqEnd() uint32 {
	n := r.seq + uint32(r.payload.Len())
	if r.flags&FlagSYN != 0 {
		n++
	}
	if r.flags&FlagFIN != 0 {
		n++
	}
	return n
}

// Conn is one TCP connection. All fields are guarded by the stack's lock;
// user-facing methods are the Try*/On* pairs at the bottom plus the
// monadic wrappers in api.go.
// Fields are ordered for packing, not by subsystem: pointer-bearing
// fields first, then 8-byte scalars, then 4-byte, then the flag bytes —
// a parked keep-alive connection's footprint is the TCB plus nothing,
// so every pad hole here is multiplied by the live-connection count
// (Figure 22 carries a million of them).
type Conn struct {
	s        *Stack
	err      error
	listener *Listener // for SYN_RCVD conns created by a listener
	key      connKey

	// Send side. sndBuf chains user data not yet segmented (zero-copy).
	sndBuf iovec.Vec
	rtx    []rtxSeg

	// Congestion control: cwnd/ssthresh arithmetic lives in the
	// controller; loss detection and recovery sequencing live here.
	cc CongestionController

	// SACK (RFC 2018). sackOn (below) is set when both SYNs carried
	// FlagSACKOK; sacks is the receive-side record of out-of-order
	// ranges reported on every outgoing ACK.
	sacks sackRanges

	// Receive side. ooo is the reassembly map, allocated lazily on the
	// first out-of-order arrival and dropped when drained — an in-order
	// connection never pays for it.
	rcvBuf iovec.Vec
	ooo    map[uint32]iovec.Vec // seq -> payload, out-of-order

	// Parked user operations (one-shot wake callbacks).
	recvW, sendW, estW []func()

	// Timers, all parked on the stack's hierarchical wheel so arm and
	// cancel are O(1) regardless of connection count; gen counters
	// invalidate stale callbacks.
	rtoTimer     *timerwheel.Timer
	persistTimer *timerwheel.Timer
	twTimer      *timerwheel.Timer
	delackTimer  *timerwheel.Timer
	rtoGen       uint64
	persistGen   uint64
	delackGen    uint64

	// RTT estimation (RFC 6298, with Karn's algorithm).
	srtt, rttvar time.Duration
	rto          time.Duration
	rttStart     vclock.Time

	// Sequence-space scalars.
	iss     uint32
	sndUna  uint32
	sndNxt  uint32
	sndWnd  uint32 // peer's advertised window
	finSeq  uint32
	recover uint32 // sndNxt when recovery began; full ACK past it ends the episode
	rttSeq  uint32
	irs     uint32
	rcvNxt  uint32
	// oooFinSeq is live only while oooFin is set: the sequence number of
	// a FIN that arrived ahead of a reassembly hole.
	oooFinSeq         uint32
	lastWndAdvertised uint32
	dupAcks           int32

	state       State
	delackCount uint8 // data segments received since the last ACK sent (flushed at 2)
	finQueued   bool
	finSent     bool
	// inRecovery: loss recovery (RFC 6582/6675; only entered when the
	// stack is configured with SACK or NewReno — the legacy machine has
	// no recovery state).
	inRecovery bool
	sackOn     bool
	rttPending bool
	oooFin     bool
	finRcvd    bool
}

// --- Accessors -------------------------------------------------------------

// State reports the connection state.
func (c *Conn) State() State {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.state
}

// Err reports the connection's terminal error, if any.
func (c *Conn) Err() error {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.err
}

// LocalPort and RemoteAddr identify the connection.
func (c *Conn) LocalPort() uint16  { return c.key.localPort }
func (c *Conn) RemoteAddr() string { return c.key.remoteAddr }
func (c *Conn) RemotePort() uint16 { return c.key.remotePort }

// --- Segment transmission ---------------------------------------------------

// rcvWindowLocked is the receive window to advertise.
func (c *Conn) rcvWindowLocked() uint32 {
	used := c.rcvBuf.Len()
	if used >= c.s.cfg.RecvBuf {
		return 0
	}
	return uint32(c.s.cfg.RecvBuf - used)
}

// sendSegLocked builds and transmits a segment carrying flags and payload
// at sndNxt, advancing sndNxt and recording it for retransmission when
// track is set. ACK and the current window ride along on everything
// except the initial SYN.
func (c *Conn) sendSegLocked(flags Flags, payload iovec.Vec, track bool) {
	seg := &Segment{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     c.sndNxt,
		Flags:   flags,
		Window:  c.rcvWindowLocked(),
		Payload: payload,
	}
	// Everything after the first SYN acknowledges. (The first SYN may
	// carry FlagSACKOK, so test for "bare SYN" by flag content, not
	// equality.)
	if flags&FlagSYN == 0 || flags&FlagACK != 0 {
		seg.Flags |= FlagACK
		seg.Ack = c.rcvNxt
	}
	if c.sackOn && seg.Flags&FlagACK != 0 {
		seg.Sack = c.sacks.blocks()
	}
	if track {
		c.rtx = append(c.rtx, rtxSeg{seq: c.sndNxt, flags: flags, payload: payload})
		c.sndNxt += seg.seqLen()
		// RTT sampling: time the newest tracked segment if no sample is
		// in flight.
		if !c.rttPending {
			c.rttPending = true
			c.rttSeq = c.sndNxt
			c.rttStart = c.s.clock.Now()
		}
		c.armRTOLocked()
	}
	if seg.Flags&FlagACK != 0 {
		// Any ACK-bearing segment (data or pure) satisfies a pending
		// delayed ACK.
		c.delackCount = 0
	}
	c.lastWndAdvertised = seg.Window
	c.s.stats.SegsOut.Add(1)
	c.s.stats.BytesOut.Add(uint64(payload.Len()))
	c.s.traceLocked(seg, c.cc.Cwnd(), false)
	c.s.sendSeg(c.key.remoteAddr, seg)
}

// sendAckLocked emits a bare ACK with the current window.
func (c *Conn) sendAckLocked() {
	c.sendSegLocked(FlagACK, iovec.Vec{}, false)
}

// ackDataLocked acknowledges received data under the configured policy:
// immediately by default, or delayed per RFC 1122 when DelayedAck is set
// (urgent overrides the delay: second segment, out-of-order, FIN).
func (c *Conn) ackDataLocked(urgent bool) {
	if c.s.cfg.DelayedAck <= 0 {
		c.sendAckLocked()
		return
	}
	c.delackCount++
	if urgent || c.delackCount >= 2 {
		c.flushDelackLocked()
		return
	}
	if c.delackTimer != nil {
		return // already armed
	}
	gen := c.delackGen
	c.delackTimer = c.s.wheel.Schedule(c.s.cfg.DelayedAck, func() {
		c.s.mu.Lock()
		if c.delackGen != gen || c.state == StateClosed {
			c.s.mu.Unlock()
			return
		}
		c.delackTimer = nil
		c.delackGen++
		if c.delackCount > 0 {
			c.flushDelackLocked()
		}
		c.s.mu.Unlock()
	})
}

// flushDelackLocked sends the pending ACK now and disarms the timer.
func (c *Conn) flushDelackLocked() {
	c.delackCount = 0
	if c.delackTimer != nil {
		c.delackTimer.Stop()
		c.delackTimer = nil
	}
	c.delackGen++
	c.sendAckLocked()
}

// flightLocked is the amount of unacknowledged sequence space.
func (c *Conn) flightLocked() uint32 { return c.sndNxt - c.sndUna }

// recoveryEnabled reports whether this connection runs the RFC 6582/6675
// recovery machine (as opposed to the legacy retransmit-and-halve one).
// SACK implies it even when the peer did not grant SACK — the connection
// then degrades to NewReno.
func (c *Conn) recoveryEnabled() bool { return c.s.cfg.SACK || c.s.cfg.NewReno }

// markSackedLocked folds a received SACK option into the scoreboard:
// every tracked segment wholly inside a reported block is marked received.
func (c *Conn) markSackedLocked(blocks []SackBlock) {
	for _, b := range blocks {
		if !seqLT(b.Start, b.End) {
			continue
		}
		for i := range c.rtx {
			r := &c.rtx[i]
			if !r.sacked && seqGEQ(r.seq, b.Start) && seqLEQ(r.seqEnd(), b.End) {
				r.sacked = true
			}
		}
	}
}

// sackedBytesLocked is the sequence space the scoreboard knows has left
// the network. Zero on non-SACK connections (no marks ever set).
func (c *Conn) sackedBytesLocked() uint32 {
	var n uint32
	for i := range c.rtx {
		if c.rtx[i].sacked {
			n += c.rtx[i].seqEnd() - c.rtx[i].seq
		}
	}
	return n
}

// clearScoreboardLocked forgets all SACK and per-episode marks.
func (c *Conn) clearScoreboardLocked() {
	for i := range c.rtx {
		c.rtx[i].sacked = false
		c.rtx[i].rexInRec = false
	}
}

// sackRexmitLocked is the scoreboard-driven retransmission pump (RFC 6675
// NextSeg, simplified): while the pipe — flight minus SACKed space — has
// room under cwnd, retransmit the earliest hole not yet retransmitted this
// episode. Holes are segments below `recover` that the scoreboard has not
// marked; segments above `recover` were sent after the episode began and
// are the RTO's problem if they too are lost.
func (c *Conn) sackRexmitLocked() {
	cwnd := c.cc.Cwnd()
	pipe := c.flightLocked() - c.sackedBytesLocked()
	for i := range c.rtx {
		r := &c.rtx[i]
		if r.sacked || r.rexInRec || seqGEQ(r.seq, c.recover) {
			continue
		}
		size := r.seqEnd() - r.seq
		if pipe+size > cwnd {
			break
		}
		r.rexInRec = true
		r.retransmitted = true
		c.rttPending = false
		c.s.stats.RecoveryRexmits.Add(1)
		c.resendLocked(r)
		pipe += size
	}
}

// trySendLocked pumps queued user data (and a queued FIN) into segments,
// respecting min(cwnd, peer window), and returns user wakeups to run.
func (c *Conn) trySendLocked() (wakes []func()) {
	mss := uint32(c.s.cfg.MSS)
	for !c.sndBuf.Empty() {
		wnd := c.cc.Cwnd()
		if c.sndWnd < wnd {
			wnd = c.sndWnd
		}
		flight := c.flightLocked()
		// Pipe accounting (RFC 6675): SACKed sequence space has left the
		// network, so it does not count against the window. Zero for
		// non-SACK connections.
		outstanding := flight - c.sackedBytesLocked()
		if outstanding >= wnd {
			if c.sndWnd == 0 && flight == 0 {
				c.armPersistLocked()
			}
			break
		}
		n := wnd - outstanding
		if n > mss {
			n = mss
		}
		if int(n) > c.sndBuf.Len() {
			n = uint32(c.sndBuf.Len())
		}
		// Nagle (RFC 896): hold a runt back while data is in flight,
		// unless a FIN is queued behind it (flush on close).
		if c.s.cfg.Nagle && n < mss && flight > 0 && !c.finQueued {
			break
		}
		// Zero-copy: the segment and its retransmission record share the
		// send buffer's storage.
		payload := c.sndBuf.Take(int(n))
		c.sndBuf = c.sndBuf.Drop(int(n))
		c.sendSegLocked(FlagACK, payload, true)
	}
	// FIN goes out once the send queue is empty.
	if c.finQueued && !c.finSent && c.sndBuf.Empty() &&
		(c.state == StateEstablished || c.state == StateCloseWait) {
		c.finSent = true
		c.finSeq = c.sndNxt
		c.sendSegLocked(FlagFIN, iovec.Vec{}, true)
		if c.state == StateEstablished {
			c.state = StateFinWait1
		} else {
			c.state = StateLastAck
		}
	}
	// Space opened for blocked writers?
	if c.sndBuf.Len() < c.s.cfg.SendBuf && len(c.sendW) > 0 {
		wakes = c.sendW
		c.sendW = nil
	}
	return wakes
}

// --- Timers ------------------------------------------------------------------

// armRTOLocked starts the retransmission timer if segments are in flight
// and it is not already running.
func (c *Conn) armRTOLocked() {
	if c.rtoTimer != nil || len(c.rtx) == 0 {
		return
	}
	gen := c.rtoGen
	c.rtoTimer = c.s.wheel.Schedule(c.rto, func() {
		c.s.mu.Lock()
		if c.rtoGen != gen || c.state == StateClosed {
			c.s.mu.Unlock()
			return
		}
		c.rtoTimer = nil
		c.rtoGen++
		wakes := c.onRTOLocked()
		c.s.mu.Unlock()
		runAll(wakes)
	})
}

// restartRTOLocked cancels and re-arms the retransmission timer.
func (c *Conn) restartRTOLocked() {
	c.cancelRTOLocked()
	c.armRTOLocked()
}

func (c *Conn) cancelRTOLocked() {
	if c.rtoTimer != nil {
		c.rtoTimer.Stop()
		c.rtoTimer = nil
	}
	c.rtoGen++
}

// onRTOLocked handles a retransmission timeout: exponential backoff,
// congestion response, and retransmission of the earliest unacked segment
// (the paper's worker_tcp_timer events land here).
func (c *Conn) onRTOLocked() (wakes []func()) {
	if len(c.rtx) == 0 {
		return nil
	}
	c.s.stats.RTOExpiries.Add(1)
	r := &c.rtx[0]
	if int(r.retries) >= c.s.cfg.MaxRetries {
		return c.teardownLocked(ErrTimeout)
	}
	r.retries++
	r.retransmitted = true
	c.rttPending = false // Karn: no sample across a retransmission
	c.s.stats.Retransmits.Add(1)
	// Reneging safety (RFC 2018 §8): on timeout, forget everything the
	// scoreboard learned and abandon any open recovery episode — the
	// retransmission below must not be suppressed by stale SACK marks.
	c.clearScoreboardLocked()
	c.inRecovery = false
	// RFC 5681 congestion response to loss.
	c.cc.OnRTO(c.flightLocked())
	c.dupAcks = 0
	c.rto *= 2
	if c.rto > c.s.cfg.RTOMax {
		c.rto = c.s.cfg.RTOMax
	}
	c.resendLocked(r)
	c.armRTOLocked()
	return nil
}

// resendLocked retransmits one recorded segment.
func (c *Conn) resendLocked(r *rtxSeg) {
	seg := &Segment{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     r.seq,
		Flags:   r.flags,
		Window:  c.rcvWindowLocked(),
		Payload: r.payload,
	}
	if r.flags&FlagSYN == 0 || r.flags&FlagACK != 0 {
		seg.Flags |= FlagACK
		seg.Ack = c.rcvNxt
	}
	if c.sackOn && seg.Flags&FlagACK != 0 {
		seg.Sack = c.sacks.blocks()
	}
	c.s.stats.SegsOut.Add(1)
	c.s.traceLocked(seg, c.cc.Cwnd(), true)
	c.s.sendSeg(c.key.remoteAddr, seg)
}

// armPersistLocked schedules a zero-window probe.
func (c *Conn) armPersistLocked() {
	if c.persistTimer != nil {
		return
	}
	gen := c.persistGen
	c.persistTimer = c.s.wheel.Schedule(c.rto, func() {
		c.s.mu.Lock()
		if c.persistGen != gen || c.state == StateClosed {
			c.s.mu.Unlock()
			return
		}
		c.persistTimer = nil
		c.persistGen++
		var wakes []func()
		if c.sndWnd == 0 && !c.sndBuf.Empty() && c.flightLocked() == 0 {
			// Probe with one byte beyond the window; the receiver's
			// buffer is elastic enough to absorb and acknowledge it.
			c.s.stats.ZeroWindowProbes.Add(1)
			payload := c.sndBuf.Take(1)
			c.sndBuf = c.sndBuf.Drop(1)
			c.sendSegLocked(FlagACK, payload, true)
		} else {
			wakes = c.trySendLocked()
		}
		c.s.mu.Unlock()
		runAll(wakes)
	})
}

func (c *Conn) cancelPersistLocked() {
	if c.persistTimer != nil {
		c.persistTimer.Stop()
		c.persistTimer = nil
	}
	c.persistGen++
}

// enterTimeWaitLocked starts the 2*MSL timer and transitions.
func (c *Conn) enterTimeWaitLocked() {
	c.state = StateTimeWait
	c.cancelRTOLocked()
	if c.twTimer != nil {
		c.twTimer.Stop()
	}
	c.twTimer = c.s.wheel.Schedule(2*c.s.cfg.MSL, func() {
		c.s.mu.Lock()
		if c.state == StateTimeWait {
			c.state = StateClosed
			c.s.removeConnLocked(c)
		}
		c.s.mu.Unlock()
	})
}

// teardownLocked aborts the connection with err and wakes every parked
// operation.
func (c *Conn) teardownLocked(err error) (wakes []func()) {
	if c.state == StateClosed {
		return nil
	}
	if c.state == StateSynRcvd && c.listener != nil {
		c.listener.pending-- // embryonic connection dies
	}
	c.state = StateClosed
	if c.err == nil {
		c.err = err
	}
	c.cancelRTOLocked()
	c.cancelPersistLocked()
	if c.twTimer != nil {
		c.twTimer.Stop()
	}
	if c.delackTimer != nil {
		c.delackTimer.Stop()
		c.delackTimer = nil
	}
	c.delackGen++
	c.s.removeConnLocked(c)
	wakes = append(wakes, c.recvW...)
	wakes = append(wakes, c.sendW...)
	wakes = append(wakes, c.estW...)
	c.recvW, c.sendW, c.estW = nil, nil, nil
	return wakes
}

// --- Input processing ---------------------------------------------------------

// processLocked runs the state machine on one inbound segment, returning
// user wakeups to run after the lock is released.
func (c *Conn) processLocked(seg *Segment) (wakes []func()) {
	if seg.Flags&FlagRST != 0 {
		err := ErrConnReset
		if c.state == StateSynSent {
			err = ErrRefused
		}
		c.s.stats.RSTsIn.Add(1)
		return c.teardownLocked(err)
	}

	switch c.state {
	case StateSynSent:
		if seg.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK {
			if seg.Ack != c.iss+1 {
				return nil // stale; a real stack would RST
			}
			c.irs = seg.Seq
			c.rcvNxt = seg.Seq + 1
			// SACK is on only when we asked on our SYN (cfg.SACK) and the
			// peer granted it on the SYN-ACK (RFC 2018 §2).
			c.sackOn = c.s.cfg.SACK && seg.Flags&FlagSACKOK != 0
			c.state = StateEstablished
			wakes = append(wakes, c.acceptAckLocked(seg)...)
			c.sendAckLocked()
			wakes = append(wakes, c.estW...)
			c.estW = nil
		}
		return wakes

	case StateSynRcvd:
		if seg.Flags&FlagSYN != 0 && seg.Seq+1 == c.rcvNxt {
			// Retransmitted SYN: our SYN-ACK was lost; resend via rtx.
			if len(c.rtx) > 0 {
				c.resendLocked(&c.rtx[0])
			}
			return nil
		}
		if seg.Flags&FlagACK != 0 && seg.Ack == c.iss+1 {
			c.state = StateEstablished
			if c.listener != nil {
				c.listener.pending--
				wakes = append(wakes, c.listener.deliverLocked(c)...)
			}
			wakes = append(wakes, c.estW...)
			c.estW = nil
			wakes = append(wakes, c.acceptAckLocked(seg)...)
			// Data may ride on the handshake ACK.
			wakes = append(wakes, c.processDataLocked(seg)...)
		}
		return wakes

	case StateClosed:
		return nil
	}

	// A retransmitted SYN or SYN-ACK means the peer never saw our
	// handshake ACK; re-acknowledge so it can leave SYN_RCVD (RFC 793's
	// response to an old duplicate SYN).
	if seg.Flags&FlagSYN != 0 && seqLT(seg.Seq, c.rcvNxt) {
		c.sendAckLocked()
		return nil
	}
	// Established and closing states: ACK processing first, then data.
	if seg.Flags&FlagACK != 0 {
		wakes = append(wakes, c.acceptAckLocked(seg)...)
	}
	wakes = append(wakes, c.processDataLocked(seg)...)
	return wakes
}

// acceptAckLocked handles the ACK and window fields.
func (c *Conn) acceptAckLocked(seg *Segment) (wakes []func()) {
	ack := seg.Ack
	// SACK blocks may ride on any ACK (duplicate or advancing): fold them
	// into the scoreboard before acting on the cumulative field.
	if c.sackOn && len(seg.Sack) > 0 {
		c.markSackedLocked(seg.Sack)
	}
	switch {
	case seqGT(ack, c.sndUna) && seqLEQ(ack, c.sndNxt):
		acked := ack - c.sndUna
		c.sndUna = ack
		// Drop fully acknowledged segments from the retransmission queue.
		kept := c.rtx[:0]
		sawRetransmit := false
		for i := range c.rtx {
			if seqLEQ(c.rtx[i].seqEnd(), ack) {
				if c.rtx[i].retransmitted {
					sawRetransmit = true
				}
				continue
			}
			kept = append(kept, c.rtx[i])
		}
		c.rtx = kept
		// RTT sample (Karn: only when nothing acked was retransmitted).
		if c.rttPending && seqGEQ(ack, c.rttSeq) {
			c.rttPending = false
			if !sawRetransmit {
				c.updateRTTLocked(time.Duration(c.s.clock.Now() - c.rttStart))
			}
		}
		// Congestion response. Inside a recovery episode an advancing ACK
		// is either partial (the next hole is still missing: retransmit it
		// now, deflate) or full (past `recover`: the episode ends); outside
		// one — always, for the legacy machine — the window grows.
		if c.inRecovery && seqLT(ack, c.recover) {
			if c.sackOn {
				c.sackRexmitLocked()
			} else if len(c.rtx) > 0 {
				r := &c.rtx[0]
				r.retransmitted = true
				c.rttPending = false
				c.s.stats.RecoveryRexmits.Add(1)
				c.resendLocked(r)
			}
			c.cc.OnPartialAck(acked)
		} else {
			if c.inRecovery {
				c.inRecovery = false
				c.clearScoreboardLocked()
				c.cc.OnExitRecovery(c.s.clock.Now())
			} else {
				c.cc.OnAck(acked, c.srtt, c.s.clock.Now())
			}
			c.dupAcks = 0
		}
		if len(c.rtx) == 0 {
			c.cancelRTOLocked()
		} else {
			c.restartRTOLocked()
		}
		// FIN acknowledged?
		if c.finSent && seqGT(ack, c.finSeq) {
			switch c.state {
			case StateFinWait1:
				c.state = StateFinWait2
			case StateClosing:
				c.enterTimeWaitLocked()
			case StateLastAck:
				c.state = StateClosed
				c.s.removeConnLocked(c)
				wakes = append(wakes, c.recvW...)
				wakes = append(wakes, c.sendW...)
				c.recvW, c.sendW = nil, nil
			}
		}
	case ack == c.sndUna && seg.Payload.Empty() && c.flightLocked() > 0:
		// Duplicate ACK (RFC 5681 fast retransmit).
		c.s.stats.DupAcksIn.Add(1)
		c.dupAcks++
		switch {
		case !c.recoveryEnabled():
			// Legacy machine: retransmit-and-halve at the third dupack,
			// no recovery episode (every subsequent advancing ACK grows
			// the window again).
			if c.dupAcks == 3 && len(c.rtx) > 0 {
				c.s.stats.FastRetransmits.Add(1)
				c.cc.OnEnterRecovery(c.flightLocked(), c.s.clock.Now())
				c.rtx[0].retransmitted = true
				c.rttPending = false
				c.resendLocked(&c.rtx[0])
			}
		case c.inRecovery:
			// Further dupacks during recovery: with SACK they carry fresh
			// scoreboard marks (folded in above), which may open pipe for
			// the next hole.
			if c.sackOn {
				c.sackRexmitLocked()
			}
		case c.dupAcks == 3 && len(c.rtx) > 0:
			// Enter recovery (RFC 6582/6675): remember where the flight
			// ends so a full ACK can close the episode, cut the window,
			// retransmit the first hole, and with SACK fill whatever pipe
			// remains.
			c.s.stats.FastRetransmits.Add(1)
			c.s.stats.FastRecoveries.Add(1)
			c.inRecovery = true
			c.recover = c.sndNxt
			c.cc.OnEnterRecovery(c.flightLocked(), c.s.clock.Now())
			r := &c.rtx[0]
			r.retransmitted = true
			r.rexInRec = true
			c.rttPending = false
			c.resendLocked(r)
			if c.sackOn {
				c.sackRexmitLocked()
			}
		}
	}
	// Window update, from current ACKs only (a reordered old segment must
	// not shrink the window).
	if seqGEQ(seg.Ack, c.sndUna) {
		c.sndWnd = seg.Window
		if c.sndWnd > 0 {
			c.cancelPersistLocked()
		}
	}
	wakes = append(wakes, c.trySendLocked()...)
	return wakes
}

// updateRTTLocked folds one RTT measurement into SRTT/RTTVAR (RFC 6298).
func (c *Conn) updateRTTLocked(sample time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		delta := c.srtt - sample
		if delta < 0 {
			delta = -delta
		}
		c.rttvar = (3*c.rttvar + delta) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.s.cfg.RTOMin {
		rto = c.s.cfg.RTOMin
	}
	if rto > c.s.cfg.RTOMax {
		rto = c.s.cfg.RTOMax
	}
	c.rto = rto
}

// processDataLocked handles payload bytes and FIN sequencing.
func (c *Conn) processDataLocked(seg *Segment) (wakes []func()) {
	hasFin := seg.Flags&FlagFIN != 0
	payload := seg.Payload
	seq := seg.Seq

	if payload.Empty() && !hasFin {
		return nil
	}

	// Trim overlap with already-received data.
	if !payload.Empty() && seqLT(seq, c.rcvNxt) {
		skip := int(c.rcvNxt - seq)
		if payload.Len() <= skip {
			payload = iovec.Vec{}
		} else {
			payload = payload.Drop(skip)
		}
		seq = c.rcvNxt
	}

	progressed := false
	switch {
	case !payload.Empty() && seq == c.rcvNxt:
		// Zero-copy: the receive buffer chains the decoded segment's
		// storage; the one copy happens when the user reads.
		c.rcvBuf = c.rcvBuf.Concat(payload)
		c.rcvNxt += uint32(payload.Len())
		progressed = true
		c.drainOOOLocked()
	case !payload.Empty() && seqGT(seq, c.rcvNxt):
		c.s.stats.OutOfOrderIn.Add(1)
		if len(c.ooo) < 1024 {
			if _, dup := c.ooo[seq]; !dup {
				if c.ooo == nil {
					c.ooo = make(map[uint32]iovec.Vec)
				}
				c.ooo[seq] = payload
			}
			// Record the range for SACK only when the data is actually
			// retained — never report sequence space we dropped.
			if c.sackOn {
				c.sacks.add(seq, seq+uint32(payload.Len()))
			}
		}
	}

	if hasFin {
		finSeq := seg.Seq + uint32(seg.Payload.Len())
		switch {
		case finSeq == c.rcvNxt && !c.finRcvd:
			c.rcvNxt++
			c.finRcvd = true
			progressed = true
			c.onPeerFinLocked()
		case seqGT(finSeq, c.rcvNxt):
			c.oooFin = true
			c.oooFinSeq = finSeq
		}
	}

	if c.sackOn && progressed {
		// The cumulative ACK moved: drop ranges it swallowed.
		c.sacks.trim(c.rcvNxt)
	}
	if progressed {
		wakes = append(wakes, c.recvW...)
		c.recvW = nil
	}
	// Acknowledge any segment that carried sequence space. Out-of-order
	// arrivals (their ACK is a dup-ack the sender's fast retransmit
	// needs), duplicates, and FINs bypass the delayed-ACK policy.
	if c.state != StateClosed {
		urgent := hasFin || !progressed
		c.ackDataLocked(urgent)
	}
	return wakes
}

// drainOOOLocked moves now-in-order segments from the reassembly queue,
// then applies a deferred FIN if it lines up.
func (c *Conn) drainOOOLocked() {
	for {
		p, ok := c.ooo[c.rcvNxt]
		if !ok {
			break
		}
		delete(c.ooo, c.rcvNxt)
		c.rcvBuf = c.rcvBuf.Concat(p)
		c.rcvNxt += uint32(p.Len())
	}
	if len(c.ooo) == 0 {
		// Drop the drained reassembly map; the next loss re-allocates it.
		c.ooo = nil
	}
	if c.oooFin && c.oooFinSeq == c.rcvNxt && !c.finRcvd {
		c.rcvNxt++
		c.finRcvd = true
		c.oooFin = false
		c.onPeerFinLocked()
	}
}

// onPeerFinLocked applies the state transition for a received FIN.
func (c *Conn) onPeerFinLocked() {
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
	case StateFinWait1:
		if c.finSent && seqGT(c.sndUna, c.finSeq) {
			c.enterTimeWaitLocked()
		} else {
			c.state = StateClosing
		}
	case StateFinWait2:
		c.enterTimeWaitLocked()
	}
}

// --- User operations (nonblocking core + ready hooks) -------------------------

// TryRead copies buffered stream data into p. It returns ErrWouldBlock
// when no data is available yet, (0, nil) at end of stream, and the
// connection's error after an abort.
func (c *Conn) TryRead(p []byte) (int, error) {
	defer c.s.enter()()
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.rcvBuf.Empty() {
		switch {
		case c.err != nil:
			return 0, c.err
		case c.finRcvd:
			return 0, nil // EOF
		case c.state == StateClosed:
			return 0, ErrClosed
		default:
			return 0, ErrWouldBlock
		}
	}
	n := c.rcvBuf.CopyTo(p)
	c.rcvBuf = c.rcvBuf.Drop(n)
	// Window update: if the advertised window was (near) zero and has
	// reopened, tell the peer.
	if c.lastWndAdvertised < uint32(c.s.cfg.MSS) &&
		c.rcvWindowLocked() >= uint32(c.s.cfg.MSS) &&
		c.state != StateClosed {
		c.sendAckLocked()
	}
	return n, nil
}

// OnRecvReady registers a one-shot callback for when TryRead may make
// progress (data, EOF, or error).
func (c *Conn) OnRecvReady(cb func()) {
	c.s.mu.Lock()
	if !c.rcvBuf.Empty() || c.finRcvd || c.err != nil || c.state == StateClosed {
		c.s.mu.Unlock()
		cb()
		return
	}
	c.recvW = append(c.recvW, cb)
	c.s.mu.Unlock()
}

// TryWrite queues stream data for transmission, returning how much was
// accepted. It returns ErrWouldBlock when the send buffer is full.
func (c *Conn) TryWrite(p []byte) (int, error) {
	defer c.s.enter()()
	c.s.mu.Lock()
	if c.err != nil {
		err := c.err
		c.s.mu.Unlock()
		return 0, err
	}
	if c.finQueued || c.finSent {
		c.s.mu.Unlock()
		return 0, ErrClosed
	}
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynSent, StateSynRcvd:
	default:
		c.s.mu.Unlock()
		return 0, ErrClosed
	}
	space := c.s.cfg.SendBuf - c.sndBuf.Len()
	if space <= 0 {
		c.s.mu.Unlock()
		return 0, ErrWouldBlock
	}
	n := len(p)
	if n > space {
		n = space
	}
	// The one user-boundary copy: the caller may reuse p immediately.
	// TryWriteV transfers ownership instead and skips even this copy.
	cp := make([]byte, n)
	copy(cp, p[:n])
	c.sndBuf = c.sndBuf.Append(cp)
	var wakes []func()
	if c.state == StateEstablished || c.state == StateCloseWait {
		wakes = c.trySendLocked()
	}
	c.s.mu.Unlock()
	runAll(wakes)
	return n, nil
}

// OnSendReady registers a one-shot callback for when TryWrite may accept
// data again.
func (c *Conn) OnSendReady(cb func()) {
	c.s.mu.Lock()
	if c.sndBuf.Len() < c.s.cfg.SendBuf || c.err != nil || c.state == StateClosed {
		c.s.mu.Unlock()
		cb()
		return
	}
	c.sendW = append(c.sendW, cb)
	c.s.mu.Unlock()
}

// OnEstablished registers a one-shot callback for when the connection
// leaves SYN_SENT/SYN_RCVD (established or failed).
func (c *Conn) OnEstablished(cb func()) {
	c.s.mu.Lock()
	if c.state != StateSynSent && c.state != StateSynRcvd {
		c.s.mu.Unlock()
		cb()
		return
	}
	c.estW = append(c.estW, cb)
	c.s.mu.Unlock()
}

// Close closes the send direction: queued data is delivered, then a FIN.
// Reads continue to drain data already received and end at the peer's
// FIN. Close is idempotent.
func (c *Conn) Close() {
	defer c.s.enter()()
	c.s.mu.Lock()
	if c.err != nil || c.finQueued || c.state == StateClosed {
		c.s.mu.Unlock()
		return
	}
	c.finQueued = true
	var wakes []func()
	if c.state == StateEstablished || c.state == StateCloseWait {
		wakes = c.trySendLocked()
	}
	c.s.mu.Unlock()
	runAll(wakes)
}

// Abort sends an RST and tears the connection down immediately.
func (c *Conn) Abort() {
	defer c.s.enter()()
	c.s.mu.Lock()
	if c.state == StateClosed {
		c.s.mu.Unlock()
		return
	}
	rst := &Segment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt, Flags: FlagRST | FlagACK,
	}
	c.s.stats.RSTsOut.Add(1)
	c.s.traceLocked(rst, c.cc.Cwnd(), false)
	c.s.sendSeg(c.key.remoteAddr, rst)
	wakes := c.teardownLocked(ErrClosed)
	c.s.mu.Unlock()
	runAll(wakes)
}

// TryWriteV queues an I/O vector for transmission without copying: the
// stack takes ownership of the vector's storage, which must not be
// mutated afterwards. Like TryWrite it may accept a prefix, reporting how
// many bytes were taken, and returns ErrWouldBlock when the send buffer
// is full. This is the zero-copy entry point of §5.2.
func (c *Conn) TryWriteV(v iovec.Vec) (int, error) {
	defer c.s.enter()()
	c.s.mu.Lock()
	if c.err != nil {
		err := c.err
		c.s.mu.Unlock()
		return 0, err
	}
	if c.finQueued || c.finSent {
		c.s.mu.Unlock()
		return 0, ErrClosed
	}
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynSent, StateSynRcvd:
	default:
		c.s.mu.Unlock()
		return 0, ErrClosed
	}
	space := c.s.cfg.SendBuf - c.sndBuf.Len()
	if space <= 0 {
		c.s.mu.Unlock()
		return 0, ErrWouldBlock
	}
	n := v.Len()
	if n > space {
		n = space
	}
	c.sndBuf = c.sndBuf.Concat(v.Take(n))
	var wakes []func()
	if c.state == StateEstablished || c.state == StateCloseWait {
		wakes = c.trySendLocked()
	}
	c.s.mu.Unlock()
	runAll(wakes)
	return n, nil
}
