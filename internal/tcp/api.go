package tcp

import (
	"errors"

	"hybrid/internal/core"
	"hybrid/internal/iovec"
)

// This file is the user interface of the TCP stack for monadic threads —
// the paper's sys_tcp system call dressed as "the same high-level
// programming interfaces as standard socket operations" (§4.8), plus
// blocking variants for ordinary goroutines (used by tests and the
// baseline servers).
//
// Every blocking operation follows the Figure 10 pattern: try the
// nonblocking form; on ErrWouldBlock, park on the ready hook and retry.

// await adapts a one-shot ready hook to the scheduler's Suspend.
func await(register func(cb func())) core.M[core.Unit] {
	return core.Suspend(func(resume func(core.Unit)) {
		register(func() { resume(core.Unit{}) })
	})
}

// AcceptM accepts a connection, parking the thread until one is pending.
func (l *Listener) AcceptM() core.M[*Conn] {
	var try func() core.M[*Conn]
	try = func() core.M[*Conn] {
		return core.Bind(
			core.NBIO(func() acceptResult {
				c, err := l.TryAccept()
				return acceptResult{c, err}
			}),
			func(r acceptResult) core.M[*Conn] {
				if errors.Is(r.err, ErrWouldBlock) {
					return core.Then(await(l.OnAcceptable), try())
				}
				if r.err != nil {
					return core.Throw[*Conn](r.err)
				}
				return core.Return(r.c)
			},
		)
	}
	return try()
}

type acceptResult struct {
	c   *Conn
	err error
}

// ConnectM opens a connection to addr:port and parks the thread until the
// handshake completes (or fails, raising the error as an exception).
func (s *Stack) ConnectM(addr string, port uint16) core.M[*Conn] {
	return core.Bind(
		core.NBIOe(func() (*Conn, error) { return s.Connect(addr, port) }),
		func(c *Conn) core.M[*Conn] {
			return core.Then(
				await(c.OnEstablished),
				core.NBIOe(func() (*Conn, error) {
					if err := c.Err(); err != nil {
						return nil, err
					}
					return c, nil
				}),
			)
		},
	)
}

// ReadM reads at least one byte into p, parking the thread while no data
// is available. It returns 0 at end of stream.
func (c *Conn) ReadM(p []byte) core.M[int] {
	var try func() core.M[int]
	try = func() core.M[int] {
		return core.Bind(
			core.NBIO(func() ioResult {
				n, err := c.TryRead(p)
				return ioResult{n, err}
			}),
			func(r ioResult) core.M[int] {
				if errors.Is(r.err, ErrWouldBlock) {
					return core.Then(await(c.OnRecvReady), try())
				}
				if r.err != nil {
					return core.Throw[int](r.err)
				}
				return core.Return(r.n)
			},
		)
	}
	return try()
}

type ioResult struct {
	n   int
	err error
}

// ReadFullM reads exactly len(p) bytes unless the stream ends first,
// returning the count read.
func (c *Conn) ReadFullM(p []byte) core.M[int] {
	var step func(got int) core.M[int]
	step = func(got int) core.M[int] {
		if got >= len(p) {
			return core.Return(got)
		}
		return core.Bind(c.ReadM(p[got:]), func(n int) core.M[int] {
			if n == 0 {
				return core.Return(got)
			}
			return step(got + n)
		})
	}
	return step(0)
}

// WriteM writes all of p, parking the thread while the send buffer is
// full, and returns len(p).
func (c *Conn) WriteM(p []byte) core.M[int] {
	total := len(p)
	var step func(rest []byte) core.M[int]
	step = func(rest []byte) core.M[int] {
		if len(rest) == 0 {
			return core.Return(total)
		}
		return core.Bind(
			core.NBIO(func() ioResult {
				n, err := c.TryWrite(rest)
				return ioResult{n, err}
			}),
			func(r ioResult) core.M[int] {
				if errors.Is(r.err, ErrWouldBlock) {
					return core.Then(await(c.OnSendReady), step(rest))
				}
				if r.err != nil {
					return core.Throw[int](r.err)
				}
				return step(rest[r.n:])
			},
		)
	}
	return step(p)
}

// CloseM closes the send direction from a monadic thread.
func (c *Conn) CloseM() core.M[core.Unit] {
	return core.Do(c.Close)
}

// ---------------------------------------------------------------------------
// Blocking (goroutine) variants, used by tests and the thread-per-
// connection baseline servers.
//
// Contract: on a virtual clock, the calling goroutine must hold exactly
// one busy count on the stack's clock (spawn it with Stack.Go, which
// arranges this). Otherwise virtual time races ahead between two blocking
// calls — retransmission timers across the network fire "instantly" from
// the goroutine's point of view and connections appear to time out. On a
// real clock the holds are no-ops and any goroutine may call these.
// ---------------------------------------------------------------------------

// Go runs fn on a new goroutine registered as a runnable activity with
// the stack's clock, so fn may use the blocking API under virtual time.
func (s *Stack) Go(fn func()) {
	s.clock.Enter()
	go func() {
		defer s.clock.Exit()
		fn()
	}()
}

// blockOn parks the goroutine on a one-shot ready hook, releasing its
// busy hold while parked; the waker's hold transfers back on wake.
func (s *Stack) blockOn(register func(cb func())) {
	ch := make(chan struct{})
	register(func() {
		s.clock.Enter() // transfer a hold to the woken goroutine
		close(ch)
	})
	s.clock.Exit() // release this goroutine's hold while parked
	<-ch
}

// Accept blocks until a connection is pending.
func (l *Listener) Accept() (*Conn, error) {
	for {
		c, err := l.TryAccept()
		if !errors.Is(err, ErrWouldBlock) {
			return c, err
		}
		l.s.blockOn(l.OnAcceptable)
	}
}

// ConnectBlocking opens a connection and waits for the handshake.
func (s *Stack) ConnectBlocking(addr string, port uint16) (*Conn, error) {
	c, err := s.Connect(addr, port)
	if err != nil {
		return nil, err
	}
	s.blockOn(c.OnEstablished)
	if err := c.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Read blocks until at least one byte is available (0 at EOF).
func (c *Conn) Read(p []byte) (int, error) {
	for {
		n, err := c.TryRead(p)
		if !errors.Is(err, ErrWouldBlock) {
			return n, err
		}
		c.s.blockOn(c.OnRecvReady)
	}
}

// Write blocks until all of p is queued.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := c.TryWrite(p[total:])
		if errors.Is(err, ErrWouldBlock) {
			c.s.blockOn(c.OnSendReady)
			continue
		}
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// ReadFull blocks until len(p) bytes arrive or the stream ends.
func (c *Conn) ReadFull(p []byte) (int, error) {
	got := 0
	for got < len(p) {
		n, err := c.Read(p[got:])
		if err != nil {
			return got, err
		}
		if n == 0 {
			break
		}
		got += n
	}
	return got, nil
}

// WriteVM writes an I/O vector from a monadic thread without copying,
// parking while the send buffer is full. The vector's storage transfers
// to the stack and must not be mutated afterwards.
func (c *Conn) WriteVM(v iovec.Vec) core.M[core.Unit] {
	var step func(rest iovec.Vec) core.M[core.Unit]
	step = func(rest iovec.Vec) core.M[core.Unit] {
		if rest.Empty() {
			return core.Skip
		}
		return core.Bind(
			core.NBIO(func() ioResult {
				n, err := c.TryWriteV(rest)
				return ioResult{n, err}
			}),
			func(r ioResult) core.M[core.Unit] {
				if errors.Is(r.err, ErrWouldBlock) {
					return core.Then(await(c.OnSendReady), step(rest))
				}
				if r.err != nil {
					return core.Throw[core.Unit](r.err)
				}
				return step(rest.Drop(r.n))
			},
		)
	}
	return step(v)
}

// WriteCellVM returns a computation that, each time its trace is forced,
// queues all of the buffer *cell holds at that moment by reference via
// the vectored send path — the defunctionalized sibling of WriteVM for
// flattened state-machine callers (the httpd serve loop) that build the
// M once per connection and re-enter its trace once per response. The
// retry loop lives in a per-application state struct with one embedded
// NBIONode and one pre-applied OnSendReady park trace, so steady-state
// sends allocate no nodes; the emitted node sequence — one NBIO attempt
// per partial transfer, a park plus a retry attempt per full buffer —
// is exactly WriteVM's. *cell must be non-empty at entry, its storage
// transfers to the stack (never mutate it afterwards), and the
// delivered count is the total bytes queued.
func (c *Conn) WriteCellVM(cell *[]byte) core.M[int] {
	return func(k func(int) core.Trace) core.Trace {
		s := &writeCellState{c: c, cell: cell, k: k}
		s.node.Effect = s.try
		s.park = await(c.OnSendReady)(s.retry)
		return &s.node
	}
}

type writeCellState struct {
	c      *Conn
	cell   *[]byte
	k      func(int) core.Trace
	rest   iovec.Vec
	total  int
	active bool
	node   core.NBIONode
	park   core.Trace // await(OnSendReady) resuming into node
}

func (s *writeCellState) retry(core.Unit) core.Trace { return &s.node }

func (s *writeCellState) try() core.Trace {
	if !s.active {
		s.active = true
		s.rest = iovec.FromBytes(*s.cell)
		s.total = len(*s.cell)
	}
	n, err := s.c.TryWriteV(s.rest)
	if errors.Is(err, ErrWouldBlock) {
		return s.park
	}
	if err != nil {
		s.active, s.rest = false, iovec.Vec{}
		return &core.ThrowNode{Err: err}
	}
	s.rest = s.rest.Drop(n)
	if !s.rest.Empty() {
		return &s.node
	}
	total := s.total
	s.active, s.rest = false, iovec.Vec{} // reset: the trace re-enters per response
	return s.k(total)
}

// WriteV is the blocking variant of WriteVM (Stack.Go discipline applies
// on a virtual clock).
func (c *Conn) WriteV(v iovec.Vec) error {
	for !v.Empty() {
		n, err := c.TryWriteV(v)
		if errors.Is(err, ErrWouldBlock) {
			c.s.blockOn(c.OnSendReady)
			continue
		}
		if err != nil {
			return err
		}
		v = v.Drop(n)
	}
	return nil
}
