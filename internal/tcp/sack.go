package tcp

// sackRanges is the receiver's record of out-of-order sequence ranges, the
// source of the SACK blocks attached to outgoing ACKs (RFC 2018).
// Invariants, fuzz-checked in sack_fuzz_test.go:
//
//   - blocks are sorted by Start in wraparound order and pairwise disjoint
//     (adjacent ranges merge);
//   - there are at most maxSackBlocks blocks — on overflow the
//     highest-start block is evicted, keeping the ranges nearest the hole
//     the sender must fill first;
//   - after trim(rcvNxt), every block starts strictly above rcvNxt, so a
//     block never reports sequence space the cumulative ACK already
//     covers.
type sackRanges struct {
	blks []SackBlock
}

// add records [start, end) as received. Overlapping and adjacent blocks
// merge; empty or inverted ranges are ignored.
func (s *sackRanges) add(start, end uint32) {
	if !seqLT(start, end) {
		return
	}
	merged := SackBlock{Start: start, End: end}
	out := make([]SackBlock, 0, len(s.blks)+1)
	placed := false
	for _, b := range s.blks {
		switch {
		case seqLT(b.End, merged.Start):
			out = append(out, b) // entirely before, not adjacent
		case seqLT(merged.End, b.Start):
			if !placed {
				out = append(out, merged)
				placed = true
			}
			out = append(out, b) // entirely after, not adjacent
		default:
			// Overlapping or adjacent: absorb into the merged block.
			if seqLT(b.Start, merged.Start) {
				merged.Start = b.Start
			}
			if seqGT(b.End, merged.End) {
				merged.End = b.End
			}
		}
	}
	if !placed {
		out = append(out, merged)
	}
	if len(out) > maxSackBlocks {
		out = out[:maxSackBlocks] // evict the highest-start block
	}
	s.blks = out
}

// trim drops blocks the cumulative ACK has caught up with: everything not
// starting strictly above rcvNxt. (A block straddling rcvNxt cannot arise —
// its bytes at rcvNxt would have advanced rcvNxt — but if one ever did,
// dropping it whole errs toward under-reporting, which SACK semantics
// permit.)
func (s *sackRanges) trim(rcvNxt uint32) {
	kept := s.blks[:0]
	for _, b := range s.blks {
		if seqGT(b.Start, rcvNxt) {
			kept = append(kept, b)
		}
	}
	s.blks = kept
}

// blocks returns a copy of the current ranges, nil when there are none.
func (s *sackRanges) blocks() []SackBlock {
	if len(s.blks) == 0 {
		return nil
	}
	return append([]SackBlock(nil), s.blks...)
}
