package tcp

import (
	"testing"
	"time"

	"hybrid/internal/netsim"
)

// TestSingleRequestResponseLatency is a latency regression guard: one
// request/response exchange of 16 KB over the simulated Ethernet must
// complete in a handful of milliseconds of virtual time — a stray RTO or
// a lost wakeup shows up here as a 200ms+ jump.
func TestSingleRequestResponseLatency(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	var events []string
	var last time.Duration
	mark := func(s string) {
		last = time.Duration(w.clk.Now())
		events = append(events, last.String()+" "+s)
	}
	done := make(chan struct{})
	w.b.Go(func() {
		buf := make([]byte, 64)
		n, _ := server.Read(buf)
		mark("server got request")
		_ = n
		server.Write(make([]byte, 16384)) // 16KB response
		mark("server wrote response")
	})
	w.a.Go(func() {
		client.Write([]byte("GET /x HTTP/1.1\r\n\r\n"))
		mark("client sent request")
		buf := make([]byte, 8192)
		got := 0
		for got < 16384 {
			n, err := client.Read(buf)
			if err != nil || n == 0 {
				break
			}
			got += n
		}
		mark("client got response")
		close(done)
	})
	<-done
	for _, e := range events {
		t.Log(e)
	}
	if last > 10*time.Millisecond {
		t.Fatalf("16KB request/response took %v of virtual time; a timer is stalling the exchange", last)
	}
}
