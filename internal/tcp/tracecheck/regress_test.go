package tracecheck

import (
	"testing"
	"time"
)

// renoPin is one pinned observation of the legacy Reno state machine: the
// client's recovery-relevant counters and the exact virtual finish time
// (which includes the 2*MSL TIME_WAIT drain, so it is sensitive to every
// timer the connection ever armed).
type renoPin struct {
	scenario        string
	retransmits     uint64
	fastRetransmits uint64
	rtoExpiries     uint64
	dupAcksIn       uint64
	segsOut         uint64
	serverOOO       uint64
	serverBytesIn   uint64 // raw wire payload: exceeds the transfer when duplicates arrive
	elapsed         time.Duration
}

// TestRenoBehaviorPinned pins the legacy (SACK off, Reno) recovery
// behavior to exact counter values and virtual finish times under seeded
// single-drop, burst-drop, and reorder scenarios. These numbers were
// recorded from the pre-SACK stack; any refactor of the congestion or
// retransmission machinery must reproduce them exactly — the golden traces
// check the wire, this checks the bookkeeping and the clock.
func TestRenoBehaviorPinned(t *testing.T) {
	pins := []renoPin{
		{
			scenario:        "reno-single-drop",
			retransmits:     0,
			fastRetransmits: 1,
			rtoExpiries:     0,
			dupAcksIn:       6,
			segsOut:         80,
			serverOOO:       6,
			serverBytesIn:   65536,
			elapsed:         time.Minute + 70063200*time.Nanosecond,
		},
		{
			scenario:        "reno-burst-drop",
			retransmits:     2,
			fastRetransmits: 1,
			rtoExpiries:     2,
			dupAcksIn:       8,
			segsOut:         68,
			serverOOO:       8,
			serverBytesIn:   65536,
			elapsed:         time.Minute + 232324800*time.Nanosecond,
		},
		{
			scenario:        "reno-rto-backoff",
			retransmits:     2,
			fastRetransmits: 0,
			rtoExpiries:     2,
			dupAcksIn:       1,
			segsOut:         8,
			serverOOO:       0,
			serverBytesIn:   2048,
			elapsed:         time.Minute + 163778400*time.Nanosecond,
		},
		{
			// Reordering provokes a spurious fast retransmit: the
			// duplicated segment arrives twice, so the server's raw
			// BytesIn exceeds the 32 KB transfer by one MSS.
			scenario:        "reno-reorder",
			retransmits:     0,
			fastRetransmits: 1,
			rtoExpiries:     0,
			dupAcksIn:       8,
			segsOut:         31,
			serverOOO:       11,
			serverBytesIn:   34228,
			elapsed:         time.Minute + 69828740*time.Nanosecond,
		},
	}
	byName := make(map[string]Scenario)
	for _, sc := range scenarios() {
		byName[sc.Name] = sc
	}
	for _, pin := range pins {
		pin := pin
		t.Run(pin.scenario, func(t *testing.T) {
			sc, ok := byName[pin.scenario]
			if !ok {
				t.Fatalf("no scenario named %q", pin.scenario)
			}
			r, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			c := r.Client
			check := func(name string, got, want uint64) {
				if got != want {
					t.Errorf("%s = %d, want %d", name, got, want)
				}
			}
			check("client.Retransmits", c.Retransmits, pin.retransmits)
			check("client.FastRetransmits", c.FastRetransmits, pin.fastRetransmits)
			check("client.RTOExpiries", c.RTOExpiries, pin.rtoExpiries)
			check("client.DupAcksIn", c.DupAcksIn, pin.dupAcksIn)
			check("client.SegsOut", c.SegsOut, pin.segsOut)
			check("client.BytesOut", c.BytesOut, uint64(sc.SendBytes))
			check("server.OutOfOrderIn", r.Server.OutOfOrderIn, pin.serverOOO)
			check("server.BytesIn", r.Server.BytesIn, pin.serverBytesIn)
			if r.Elapsed != pin.elapsed {
				t.Errorf("virtual finish time = %v, want %v", r.Elapsed, pin.elapsed)
			}
		})
	}
}
