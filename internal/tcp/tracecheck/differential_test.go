package tracecheck

import (
	"math/rand"
	"testing"

	"hybrid/internal/tcp"
)

// dropSet derives a deterministic set of C→S packet indices to drop from a
// (loss rate, seed) cell. Indices start at 2 (0 is the SYN, 1 the
// handshake ACK) and span the first 60 path packets of a 64 KB transfer.
// Because the drops are positional, every protocol variant run against the
// same cell loses exactly the same path packets — the comparison isolates
// the recovery machinery, not the luck of the draw.
func dropSet(rate float64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var out []uint64
	for i := uint64(2); i < 60; i++ {
		if rng.Float64() < rate {
			out = append(out, i)
		}
	}
	return out
}

// TestRecoveryDifferential runs a matrix of (loss rate, seed) cells, each
// cell transferring the same 64 KB through plain Reno, NewReno, SACK+Reno,
// and SACK+CUBIC under an identical positional drop pattern, and asserts:
//
//  1. the delivered stream is byte-identical regardless of recovery
//     variant or congestion controller (hash over the server's reads);
//  2. SACK+Reno finishes no later than plain Reno in every cell (goodput
//     is monotone in recovery capability), and strictly earlier in at
//     least one cell per loss rate with any losses;
//  3. NewReno finishes no later than plain Reno in every cell.
func TestRecoveryDifferential(t *testing.T) {
	variants := []struct {
		name string
		cfg  func(tcp.Config) tcp.Config
	}{
		{"reno", func(c tcp.Config) tcp.Config { return c }},
		{"newreno", func(c tcp.Config) tcp.Config { c.NewReno = true; return c }},
		{"sack", func(c tcp.Config) tcp.Config { c.SACK = true; return c }},
		{"sack+cubic", func(c tcp.Config) tcp.Config { c.SACK = true; c.Controller = "cubic"; return c }},
	}
	for _, rate := range []float64{0.01, 0.02, 0.05} {
		sackWonSomewhere := false
		sawDrops := false
		for seed := int64(1); seed <= 6; seed++ {
			drops := dropSet(rate, seed*7+int64(rate*1000))
			if len(drops) > 0 {
				sawDrops = true
			}
			base := Scenario{Cfg: recoveryCfg(), Link: wan(), Seed: 1, SendBytes: 64 * 1024, DropC2S: drops}
			results := make(map[string]Result, len(variants))
			for _, v := range variants {
				sc := base
				sc.Cfg = v.cfg(sc.Cfg)
				r, err := Run(sc)
				if err != nil {
					t.Fatalf("rate=%v seed=%d %s: %v", rate, seed, v.name, err)
				}
				results[v.name] = r
			}
			for _, v := range variants[1:] {
				if results[v.name].RecvHash != results["reno"].RecvHash {
					t.Errorf("rate=%v seed=%d: %s delivered a different stream than reno", rate, seed, v.name)
				}
			}
			if s, r := results["sack"].Elapsed, results["reno"].Elapsed; s > r {
				t.Errorf("rate=%v seed=%d drops=%v: SACK finished at %v, later than reno's %v", rate, seed, drops, s, r)
			} else if s < r {
				sackWonSomewhere = true
			}
			if n, r := results["newreno"].Elapsed, results["reno"].Elapsed; n > r {
				t.Errorf("rate=%v seed=%d drops=%v: NewReno finished at %v, later than reno's %v", rate, seed, drops, n, r)
			}
		}
		if sawDrops && !sackWonSomewhere {
			t.Errorf("rate=%v: SACK never beat plain Reno in any cell with losses", rate)
		}
	}
}
