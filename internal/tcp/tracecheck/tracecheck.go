// Package tracecheck is the packet-trace conformance harness for the
// application-level TCP stack: a Scenario scripts one connection over the
// deterministic netsim with an exact per-direction loss pattern, records
// every segment either end transmits as a normalized text line — direction,
// flags, relative seq/ack, payload length, advertised window, SACK blocks,
// and the sender's congestion window at transmission time — and the tests
// compare the full trace byte-for-byte against a committed golden file.
//
// Because packet delivery, loss (netsim.PathSpec drop indices or seeded
// probabilistic draws), and every timer run on the virtual clock, a
// recovery episode is exactly replayable: any change to retransmission
// order, ACK generation, SACK block contents, or congestion-window
// arithmetic shows up as a golden diff. Scenarios drive the user side of
// the connection from clock callbacks through the nonblocking Try*/On*
// API, never from goroutines, so there is no host-scheduled actor anywhere
// and the trace is byte-identical at any GOMAXPROCS.
package tracecheck

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"hybrid/internal/netsim"
	"hybrid/internal/tcp"
	"hybrid/internal/vclock"
)

// Scenario is one scripted connection: a client on host C transfers
// SendBytes to a server on host S under the given link and loss pattern,
// then closes; the server drains to EOF and closes back.
type Scenario struct {
	// Name keys the golden file (testdata/<Name>.golden).
	Name string
	// Cfg configures both stacks (zero value = the stack's defaults:
	// plain Reno, no SACK).
	Cfg tcp.Config
	// Link shapes both hosts' egress links; zero value uses Ethernet100.
	Link netsim.LinkParams
	// Seed is the netsim RNG seed (reorder jitter and probabilistic loss
	// draws).
	Seed int64
	// DropC2S and DropS2C are exact per-direction packet indices to drop
	// (0-based, counting every transmission on the path — the client's
	// SYN is C→S packet 0).
	DropC2S, DropS2C []uint64
	// LossC2S and LossS2C add seeded probabilistic loss per direction.
	LossC2S, LossS2C float64
	// SendBytes is the client→server transfer size.
	SendBytes int
}

// Result is everything a conformance run observes: the normalized trace,
// each stack's counters at quiescence, and the virtual time at which the
// network went quiet. All of it is a pure function of the Scenario, so
// tests may pin any field exactly.
type Result struct {
	// Lines is the normalized trace, one line per transmitted segment.
	Lines []string
	// Client and Server are the stacks' counter snapshots at quiescence.
	Client, Server tcp.Stats
	// Elapsed is the virtual time from scenario start to quiescence.
	Elapsed time.Duration
	// Done is the virtual time at which the server observed end of
	// stream — the transfer's completion, before close handshakes and the
	// 2*MSL TIME_WAIT drain that Elapsed includes. Goodput comparisons
	// (bench.Fig20Loss) divide by Done.
	Done time.Duration
	// RecvHash is FNV-1a over the bytes the server read, in stream order:
	// two runs delivered the same stream iff the hashes match.
	RecvHash uint64
}

// event is one recorded transmission.
type event struct {
	fromClient bool
	flags      tcp.Flags
	seq, ack   uint32
	length     int
	window     uint32
	sack       []tcp.SackBlock
	cwnd       uint32
	rexmit     bool
}

// Run executes the scenario to quiescence and returns what it observed.
func Run(s Scenario) (Result, error) {
	link := s.Link
	if link == (netsim.LinkParams{}) {
		link = netsim.Ethernet100()
	}
	clk := vclock.NewVirtual()
	n := netsim.New(clk, s.Seed)
	hc, err := n.Host("client", link)
	if err != nil {
		return Result{}, err
	}
	hs, err := n.Host("server", link)
	if err != nil {
		return Result{}, err
	}
	if len(s.DropC2S) > 0 || s.LossC2S > 0 {
		n.SetPath("client", "server", netsim.PathSpec{LossProb: s.LossC2S, DropSeq: s.DropC2S})
	}
	if len(s.DropS2C) > 0 || s.LossS2C > 0 {
		n.SetPath("server", "client", netsim.PathSpec{LossProb: s.LossS2C, DropSeq: s.DropS2C})
	}
	client := tcp.NewStack(hc, s.Cfg)
	server := tcp.NewStack(hs, s.Cfg)

	var mu sync.Mutex
	var events []event
	tap := func(fromClient bool) func(tcp.TraceEvent) {
		return func(ev tcp.TraceEvent) {
			mu.Lock()
			events = append(events, event{
				fromClient: fromClient,
				flags:      ev.Seg.Flags,
				seq:        ev.Seg.Seq,
				ack:        ev.Seg.Ack,
				length:     ev.Seg.Payload.Len(),
				window:     ev.Seg.Window,
				sack:       append([]tcp.SackBlock(nil), ev.Seg.Sack...),
				cwnd:       ev.Cwnd,
				rexmit:     ev.Rexmit,
			})
			mu.Unlock()
		}
	}
	client.SetTrace(tap(true))
	server.SetTrace(tap(false))

	l, err := server.Listen(80)
	if err != nil {
		return Result{}, err
	}
	var runErr error
	fail := func(err error) {
		if runErr == nil && err != nil {
			runErr = err
		}
	}

	// The whole timeline runs inside one Enter/Exit bracket: every user
	// action below happens in the clock's event context, chained off
	// ready hooks, so ordering is a pure function of the event timeline.
	clk.Enter()

	// Server side: accept, drain to EOF, close.
	received := 0
	var doneAt vclock.Time
	recvHash := uint64(14695981039346656037) // FNV-1a offset basis
	l.OnAcceptable(func() {
		conn, err := l.TryAccept()
		if err != nil {
			fail(fmt.Errorf("accept: %w", err))
			return
		}
		buf := make([]byte, 4096)
		var pump func()
		pump = func() {
			for {
				n, err := conn.TryRead(buf)
				if errors.Is(err, tcp.ErrWouldBlock) {
					conn.OnRecvReady(pump)
					return
				}
				if err != nil {
					fail(fmt.Errorf("server read: %w", err))
					return
				}
				if n == 0 { // EOF
					doneAt = clk.Now()
					conn.Close()
					return
				}
				for _, b := range buf[:n] {
					recvHash ^= uint64(b)
					recvHash *= 1099511628211 // FNV-1a prime
				}
				received += n
			}
		}
		pump()
	})

	// Client side: connect, write the payload, close.
	conn, err := client.Connect("server", 80)
	if err != nil {
		clk.Exit()
		return Result{}, err
	}
	payload := make([]byte, s.SendBytes)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	conn.OnEstablished(func() {
		if err := conn.Err(); err != nil {
			fail(fmt.Errorf("connect: %w", err))
			return
		}
		rest := payload
		var pump func()
		pump = func() {
			for len(rest) > 0 {
				n, err := conn.TryWrite(rest)
				if errors.Is(err, tcp.ErrWouldBlock) {
					conn.OnSendReady(pump)
					return
				}
				if err != nil {
					fail(fmt.Errorf("client write: %w", err))
					return
				}
				rest = rest[n:]
			}
			conn.Close()
		}
		pump()
	})

	clk.Exit() // run the timeline to quiescence

	if runErr != nil {
		return Result{}, runErr
	}
	if received != s.SendBytes {
		return Result{}, fmt.Errorf("server received %d of %d bytes", received, s.SendBytes)
	}
	return Result{
		Lines:    format(events),
		Client:   client.Snapshot(),
		Server:   server.Snapshot(),
		Elapsed:  time.Duration(clk.Now()),
		Done:     time.Duration(doneAt),
		RecvHash: recvHash,
	}, nil
}

// format renders events with sequence numbers relative to each side's ISS
// (taken from the SYNs in the trace itself), so goldens do not depend on
// the stacks' ISN generator.
func format(events []event) []string {
	var issC, issS uint32
	for _, e := range events {
		if e.flags&tcp.FlagSYN != 0 && !e.rexmit {
			if e.fromClient {
				issC = e.seq
			} else {
				issS = e.seq
			}
		}
	}
	lines := make([]string, 0, len(events))
	for _, e := range events {
		dir, isr := "C>S", issS
		iss := issC
		if !e.fromClient {
			dir, iss, isr = "S>C", issS, issC
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s %-4s seq=%-6d", dir, e.flags, e.seq-iss)
		if e.flags&tcp.FlagACK != 0 {
			fmt.Fprintf(&b, " ack=%-6d", e.ack-isr)
		} else {
			fmt.Fprintf(&b, " ack=%-6s", "-")
		}
		fmt.Fprintf(&b, " len=%-5d wnd=%-6d cwnd=%d", e.length, e.window, e.cwnd)
		if len(e.sack) > 0 {
			parts := make([]string, len(e.sack))
			for i, blk := range e.sack {
				parts[i] = fmt.Sprintf("%d-%d", blk.Start-isr, blk.End-isr)
			}
			fmt.Fprintf(&b, " sack=[%s]", strings.Join(parts, ","))
		}
		if e.rexmit {
			b.WriteString(" rexmit")
		}
		lines = append(lines, b.String())
	}
	return lines
}
