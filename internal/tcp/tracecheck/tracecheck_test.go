package tracecheck

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hybrid/internal/netsim"
	"hybrid/internal/tcp"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// wan is the lossy-WAN link the recovery scenarios run on: modest
// bandwidth and a real RTT, so windows grow over several round trips and
// recovery episodes span many ACKs.
func wan() netsim.LinkParams {
	return netsim.LinkParams{Bandwidth: 10_000_000 / 8, Latency: 2 * time.Millisecond}
}

// recoveryCfg shortens the timers so RTO episodes fit a short trace.
func recoveryCfg() tcp.Config {
	return tcp.Config{
		RTOMin:     50 * time.Millisecond,
		InitialRTO: 100 * time.Millisecond,
		MaxRetries: 16,
	}
}

// scenarios is the conformance suite. The reno-* traces pin the legacy
// state machine (SACK off, Reno controller — the byte-identity oracle for
// refactors); the newreno-*, sack-*, and cubic-* traces pin the recovery
// extensions.
func scenarios() []Scenario {
	withSack := func(c tcp.Config) tcp.Config { c.SACK = true; return c }
	withNewReno := func(c tcp.Config) tcp.Config { c.NewReno = true; return c }
	withCubic := func(c tcp.Config) tcp.Config { c.Controller = "cubic"; return c }
	return []Scenario{
		// C→S packet indices: 0 = SYN, 1 = handshake ACK, 2... = data.
		{Name: "reno-clean", Cfg: recoveryCfg(), Link: wan(), Seed: 1, SendBytes: 8 * 1024},
		{Name: "reno-single-drop", Cfg: recoveryCfg(), Link: wan(), Seed: 1,
			SendBytes: 64 * 1024, DropC2S: []uint64{6}},
		{Name: "reno-burst-drop", Cfg: recoveryCfg(), Link: wan(), Seed: 1,
			SendBytes: 64 * 1024, DropC2S: []uint64{10, 11, 12}},
		{Name: "reno-rto-backoff", Cfg: recoveryCfg(), Link: wan(), Seed: 1,
			SendBytes: 2 * 1024, DropC2S: []uint64{2, 3}},
		{Name: "reno-ack-loss", Cfg: recoveryCfg(), Link: wan(), Seed: 1,
			SendBytes: 32 * 1024, DropS2C: []uint64{3, 4}},
		{Name: "reno-reorder", Cfg: recoveryCfg(), Link: reorderLink(), Seed: 3,
			SendBytes: 32 * 1024},
		{Name: "newreno-burst-drop", Cfg: withNewReno(recoveryCfg()), Link: wan(), Seed: 1,
			SendBytes: 64 * 1024, DropC2S: []uint64{10, 11, 12}},
		{Name: "sack-single-drop", Cfg: withSack(recoveryCfg()), Link: wan(), Seed: 1,
			SendBytes: 64 * 1024, DropC2S: []uint64{6}},
		{Name: "sack-burst-drop", Cfg: withSack(recoveryCfg()), Link: wan(), Seed: 1,
			SendBytes: 64 * 1024, DropC2S: []uint64{10, 11, 12}},
		{Name: "sack-multi-hole", Cfg: withSack(recoveryCfg()), Link: wan(), Seed: 1,
			SendBytes: 64 * 1024, DropC2S: []uint64{8, 12, 16}},
		{Name: "sack-cubic-burst-drop", Cfg: withCubic(withSack(recoveryCfg())), Link: wan(), Seed: 1,
			SendBytes: 64 * 1024, DropC2S: []uint64{10, 11, 12}},
	}
}

func reorderLink() netsim.LinkParams {
	l := wan()
	l.ReorderProb = 0.25
	return l
}

func TestTraceConformance(t *testing.T) {
	for _, sc := range scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario failed: %v", err)
			}
			got := strings.Join(res.Lines, "\n") + "\n"
			path := filepath.Join("testdata", sc.Name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d lines)", path, len(res.Lines))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to generate): %v", err)
			}
			if got != string(want) {
				t.Fatalf("trace diverged from %s\n%s", path, diff(string(want), got))
			}
		})
	}
}

// TestTraceReplayIsDeterministic runs every scenario twice in-process and
// requires identical traces — the in-memory half of the "passes twice in a
// row" conformance gate (the Makefile runs the whole suite twice for the
// cross-process half).
func TestTraceReplayIsDeterministic(t *testing.T) {
	for _, sc := range scenarios() {
		a, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		b, err := Run(sc)
		if err != nil {
			t.Fatalf("%s replay: %v", sc.Name, err)
		}
		if strings.Join(a.Lines, "\n") != strings.Join(b.Lines, "\n") {
			t.Fatalf("%s: trace differs between identical runs", sc.Name)
		}
		if a.Client != b.Client || a.Server != b.Server || a.Elapsed != b.Elapsed {
			t.Fatalf("%s: counters or finish time differ between identical runs", sc.Name)
		}
	}
}

// diff renders the first divergence between two traces with context.
func diff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		line := func(s []string) string {
			if i < len(s) {
				return s[i]
			}
			return "<end of trace>"
		}
		if line(w) != line(g) {
			start := i - 3
			if start < 0 {
				start = 0
			}
			var b strings.Builder
			for j := start; j < i; j++ {
				b.WriteString("  " + w[j] + "\n")
			}
			b.WriteString("- " + line(w) + "\n")
			b.WriteString("+ " + line(g) + "\n")
			return b.String()
		}
	}
	return "traces identical?"
}
