// Package tcp is an application-level TCP stack over the simulated packet
// network, reproducing §4.8 of the paper: "the ability to combine events
// and threads makes it practical to implement transport protocols like TCP
// at the application level in an elegant and type-safe way."
//
// The paper derives its stack from the HOL specification of TCP; this
// reproduction implements the same protocol surface from the RFCs it
// formalizes: the three-way handshake, sliding-window flow control,
// cumulative acknowledgements with out-of-order reassembly, retransmission
// with Jacobson/Karn RTT estimation and exponential backoff, fast
// retransmit on triple duplicate ACKs, slow start and congestion
// avoidance, zero-window probing, RST handling, and the full close state
// machine including TIME_WAIT.
//
// Structurally it follows the paper's Figure 14: packet-delivery events
// (worker_tcp_input) and timer events (worker_tcp_timer) drive a pure
// state machine under the stack's lock, while user threads interact
// through blocking operations built on the scheduler's Suspend hook.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hybrid/internal/iovec"
)

// Flags on a segment.
type Flags uint8

const (
	// FlagSYN synchronizes sequence numbers (connection setup).
	FlagSYN Flags = 1 << iota
	// FlagACK validates the Ack field.
	FlagACK
	// FlagFIN closes the sender's direction.
	FlagFIN
	// FlagRST aborts the connection.
	FlagRST
	// FlagSACKOK on a SYN or SYN-ACK advertises RFC 2018 selective
	// acknowledgment support (the "SACK-permitted" option); SACK blocks
	// flow only when both SYNs carried it.
	FlagSACKOK
)

func (f Flags) String() string {
	s := ""
	if f&FlagSYN != 0 {
		s += "S"
	}
	if f&FlagACK != 0 {
		s += "A"
	}
	if f&FlagFIN != 0 {
		s += "F"
	}
	if f&FlagRST != 0 {
		s += "R"
	}
	if f&FlagSACKOK != 0 {
		s += "K"
	}
	if s == "" {
		return "."
	}
	return s
}

// SackBlock is one contiguous range of received sequence space,
// [Start, End) in wraparound arithmetic, reported by the receiver above a
// hole (RFC 2018).
type SackBlock struct {
	Start, End uint32
}

// maxSackBlocks caps the SACK blocks carried on a segment and retained by
// a receiver, mirroring the real option's space limit (RFC 2018 §3: at
// most 4 blocks without timestamps).
const maxSackBlocks = 4

// Segment is one TCP segment. Window is 32-bit where real TCP uses a
// 16-bit field plus window scaling; carrying the scaled value directly is
// equivalent on the wire we control. Payload is an I/O vector: user data
// flows from write buffers through retransmission queues to the wire
// encoder without intermediate copies (§5.2's zero-copy design).
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            Flags
	Window           uint32
	Payload          iovec.Vec
	// Sack carries up to maxSackBlocks receiver-reported ranges above the
	// cumulative Ack (RFC 2018). Empty on every segment unless both ends
	// negotiated SACK; the wire encoding is byte-identical to the
	// pre-SACK format when empty.
	Sack []SackBlock
}

// headerSize is the encoded header length.
const headerSize = 2 + 2 + 4 + 4 + 1 + 4 + 4 + 4 // ports, seq, ack, flags, window, length, checksum

// ErrMalformed reports an undecodable or corrupt segment.
var ErrMalformed = errors.New("tcp: malformed segment")

// sackWireLen is the encoded size of a SACK option block: one count byte
// plus two sequence numbers per block, or nothing when there are none.
func sackWireLen(n int) int {
	if n == 0 {
		return 0
	}
	return 1 + 8*n
}

// WireLen is the encoded length of the segment on the wire.
func (s *Segment) WireLen() int { return headerSize + s.Payload.Len() + sackWireLen(len(s.Sack)) }

// EncodeTo serializes the segment with a checksum into buf, whose length
// must be exactly WireLen. The payload vector is copied exactly once, into
// the wire buffer — buf may come from bufpool and be reclaimed as soon as
// the network layer has taken its own copy. SACK blocks, when present,
// trail the payload so every header offset (and the encoding of a
// SACK-less segment) is unchanged from the pre-SACK wire format.
func (s *Segment) EncodeTo(buf []byte) {
	if len(buf) != s.WireLen() {
		panic("tcp: EncodeTo buffer length mismatch")
	}
	if len(s.Sack) > maxSackBlocks {
		panic("tcp: too many SACK blocks")
	}
	binary.BigEndian.PutUint16(buf[0:], s.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], s.DstPort)
	binary.BigEndian.PutUint32(buf[4:], s.Seq)
	binary.BigEndian.PutUint32(buf[8:], s.Ack)
	buf[12] = byte(s.Flags)
	binary.BigEndian.PutUint32(buf[13:], s.Window)
	binary.BigEndian.PutUint32(buf[17:], uint32(s.Payload.Len()))
	s.Payload.CopyTo(buf[headerSize:])
	if n := len(s.Sack); n > 0 {
		opt := buf[headerSize+s.Payload.Len():]
		opt[0] = byte(n)
		for i, b := range s.Sack {
			binary.BigEndian.PutUint32(opt[1+8*i:], b.Start)
			binary.BigEndian.PutUint32(opt[5+8*i:], b.End)
		}
	}
	binary.BigEndian.PutUint32(buf[21:], checksum(buf))
}

// Encode serializes the segment into a fresh buffer the caller owns.
func (s *Segment) Encode() []byte {
	buf := make([]byte, s.WireLen())
	s.EncodeTo(buf)
	return buf
}

// Decode parses and verifies a segment. The decoded payload aliases buf
// (no copy): the caller transfers ownership of buf, which must stay
// immutable for as long as the payload may be referenced. The verify pass
// never writes to buf, so decoding the same delivery twice (a duplicated
// packet sharing one buffer) is safe.
func Decode(buf []byte) (*Segment, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrMalformed, len(buf))
	}
	want := binary.BigEndian.Uint32(buf[21:])
	if got := checksum(buf); got != want {
		return nil, fmt.Errorf("%w: bad checksum", ErrMalformed)
	}
	plen := binary.BigEndian.Uint32(buf[17:])
	if uint64(plen) > uint64(len(buf)-headerSize) {
		return nil, fmt.Errorf("%w: length field %d vs %d", ErrMalformed, plen, len(buf)-headerSize)
	}
	s := &Segment{
		SrcPort: binary.BigEndian.Uint16(buf[0:]),
		DstPort: binary.BigEndian.Uint16(buf[2:]),
		Seq:     binary.BigEndian.Uint32(buf[4:]),
		Ack:     binary.BigEndian.Uint32(buf[8:]),
		Flags:   Flags(buf[12]),
		Window:  binary.BigEndian.Uint32(buf[13:]),
	}
	if plen > 0 {
		s.Payload = iovec.FromBytes(buf[headerSize : headerSize+int(plen)])
	}
	// Anything after the payload is the SACK option block: a count byte
	// then (start, end) pairs, each a nonempty range, at most
	// maxSackBlocks of them — anything else is malformed.
	if opt := buf[headerSize+int(plen):]; len(opt) > 0 {
		n := int(opt[0])
		if n == 0 || n > maxSackBlocks || len(opt) != sackWireLen(n) {
			return nil, fmt.Errorf("%w: bad SACK option (%d bytes, count %d)", ErrMalformed, len(opt), n)
		}
		s.Sack = make([]SackBlock, n)
		for i := range s.Sack {
			s.Sack[i] = SackBlock{
				Start: binary.BigEndian.Uint32(opt[1+8*i:]),
				End:   binary.BigEndian.Uint32(opt[5+8*i:]),
			}
			if !seqLT(s.Sack[i].Start, s.Sack[i].End) {
				return nil, fmt.Errorf("%w: empty SACK block", ErrMalformed)
			}
		}
	}
	return s, nil
}

// checksum is a 32-bit Fletcher-style sum over the encoded segment,
// treating the checksum field (bytes 21..25) as zero without touching it —
// so the same function serves encode (where those bytes are not yet
// written) and verify (where the buffer may be shared and must not be
// mutated). The simulated wire does not corrupt bits, but the check guards
// against stack bugs and documents the real protocol's shape.
func checksum(buf []byte) uint32 {
	var a, b uint32 = 1, 0
	for _, c := range buf[:21] {
		a = (a + uint32(c)) % 65521
		b = (b + a) % 65521
	}
	for i := 0; i < 4; i++ { // the zeroed checksum field: a is unchanged
		b = (b + a) % 65521
	}
	for _, c := range buf[25:] {
		a = (a + uint32(c)) % 65521
		b = (b + a) % 65521
	}
	return b<<16 | a
}

// seqLen reports how much sequence space the segment occupies (payload
// plus one for SYN and one for FIN).
func (s *Segment) seqLen() uint32 {
	n := uint32(s.Payload.Len())
	if s.Flags&FlagSYN != 0 {
		n++
	}
	if s.Flags&FlagFIN != 0 {
		n++
	}
	return n
}

// Sequence-number arithmetic, wraparound-safe (RFC 793 comparisons).

func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// seqMax returns the later of two sequence numbers.
func seqMax(a, b uint32) uint32 {
	if seqGT(a, b) {
		return a
	}
	return b
}
