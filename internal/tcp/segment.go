// Package tcp is an application-level TCP stack over the simulated packet
// network, reproducing §4.8 of the paper: "the ability to combine events
// and threads makes it practical to implement transport protocols like TCP
// at the application level in an elegant and type-safe way."
//
// The paper derives its stack from the HOL specification of TCP; this
// reproduction implements the same protocol surface from the RFCs it
// formalizes: the three-way handshake, sliding-window flow control,
// cumulative acknowledgements with out-of-order reassembly, retransmission
// with Jacobson/Karn RTT estimation and exponential backoff, fast
// retransmit on triple duplicate ACKs, slow start and congestion
// avoidance, zero-window probing, RST handling, and the full close state
// machine including TIME_WAIT.
//
// Structurally it follows the paper's Figure 14: packet-delivery events
// (worker_tcp_input) and timer events (worker_tcp_timer) drive a pure
// state machine under the stack's lock, while user threads interact
// through blocking operations built on the scheduler's Suspend hook.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hybrid/internal/iovec"
)

// Flags on a segment.
type Flags uint8

const (
	// FlagSYN synchronizes sequence numbers (connection setup).
	FlagSYN Flags = 1 << iota
	// FlagACK validates the Ack field.
	FlagACK
	// FlagFIN closes the sender's direction.
	FlagFIN
	// FlagRST aborts the connection.
	FlagRST
)

func (f Flags) String() string {
	s := ""
	if f&FlagSYN != 0 {
		s += "S"
	}
	if f&FlagACK != 0 {
		s += "A"
	}
	if f&FlagFIN != 0 {
		s += "F"
	}
	if f&FlagRST != 0 {
		s += "R"
	}
	if s == "" {
		return "."
	}
	return s
}

// Segment is one TCP segment. Window is 32-bit where real TCP uses a
// 16-bit field plus window scaling; carrying the scaled value directly is
// equivalent on the wire we control. Payload is an I/O vector: user data
// flows from write buffers through retransmission queues to the wire
// encoder without intermediate copies (§5.2's zero-copy design).
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            Flags
	Window           uint32
	Payload          iovec.Vec
}

// headerSize is the encoded header length.
const headerSize = 2 + 2 + 4 + 4 + 1 + 4 + 4 + 4 // ports, seq, ack, flags, window, length, checksum

// ErrMalformed reports an undecodable or corrupt segment.
var ErrMalformed = errors.New("tcp: malformed segment")

// WireLen is the encoded length of the segment on the wire.
func (s *Segment) WireLen() int { return headerSize + s.Payload.Len() }

// EncodeTo serializes the segment with a checksum into buf, whose length
// must be exactly WireLen. The payload vector is copied exactly once, into
// the wire buffer — buf may come from bufpool and be reclaimed as soon as
// the network layer has taken its own copy.
func (s *Segment) EncodeTo(buf []byte) {
	if len(buf) != headerSize+s.Payload.Len() {
		panic("tcp: EncodeTo buffer length mismatch")
	}
	binary.BigEndian.PutUint16(buf[0:], s.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], s.DstPort)
	binary.BigEndian.PutUint32(buf[4:], s.Seq)
	binary.BigEndian.PutUint32(buf[8:], s.Ack)
	buf[12] = byte(s.Flags)
	binary.BigEndian.PutUint32(buf[13:], s.Window)
	binary.BigEndian.PutUint32(buf[17:], uint32(s.Payload.Len()))
	s.Payload.CopyTo(buf[headerSize:])
	binary.BigEndian.PutUint32(buf[21:], checksum(buf))
}

// Encode serializes the segment into a fresh buffer the caller owns.
func (s *Segment) Encode() []byte {
	buf := make([]byte, s.WireLen())
	s.EncodeTo(buf)
	return buf
}

// Decode parses and verifies a segment. The decoded payload aliases buf
// (no copy): the caller transfers ownership of buf, which must stay
// immutable for as long as the payload may be referenced. The verify pass
// never writes to buf, so decoding the same delivery twice (a duplicated
// packet sharing one buffer) is safe.
func Decode(buf []byte) (*Segment, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrMalformed, len(buf))
	}
	want := binary.BigEndian.Uint32(buf[21:])
	if got := checksum(buf); got != want {
		return nil, fmt.Errorf("%w: bad checksum", ErrMalformed)
	}
	plen := binary.BigEndian.Uint32(buf[17:])
	if int(plen) != len(buf)-headerSize {
		return nil, fmt.Errorf("%w: length field %d vs %d", ErrMalformed, plen, len(buf)-headerSize)
	}
	s := &Segment{
		SrcPort: binary.BigEndian.Uint16(buf[0:]),
		DstPort: binary.BigEndian.Uint16(buf[2:]),
		Seq:     binary.BigEndian.Uint32(buf[4:]),
		Ack:     binary.BigEndian.Uint32(buf[8:]),
		Flags:   Flags(buf[12]),
		Window:  binary.BigEndian.Uint32(buf[13:]),
	}
	if plen > 0 {
		s.Payload = iovec.FromBytes(buf[headerSize:])
	}
	return s, nil
}

// checksum is a 32-bit Fletcher-style sum over the encoded segment,
// treating the checksum field (bytes 21..25) as zero without touching it —
// so the same function serves encode (where those bytes are not yet
// written) and verify (where the buffer may be shared and must not be
// mutated). The simulated wire does not corrupt bits, but the check guards
// against stack bugs and documents the real protocol's shape.
func checksum(buf []byte) uint32 {
	var a, b uint32 = 1, 0
	for _, c := range buf[:21] {
		a = (a + uint32(c)) % 65521
		b = (b + a) % 65521
	}
	for i := 0; i < 4; i++ { // the zeroed checksum field: a is unchanged
		b = (b + a) % 65521
	}
	for _, c := range buf[25:] {
		a = (a + uint32(c)) % 65521
		b = (b + a) % 65521
	}
	return b<<16 | a
}

// seqLen reports how much sequence space the segment occupies (payload
// plus one for SYN and one for FIN).
func (s *Segment) seqLen() uint32 {
	n := uint32(s.Payload.Len())
	if s.Flags&FlagSYN != 0 {
		n++
	}
	if s.Flags&FlagFIN != 0 {
		n++
	}
	return n
}

// Sequence-number arithmetic, wraparound-safe (RFC 793 comparisons).

func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// seqMax returns the later of two sequence numbers.
func seqMax(a, b uint32) uint32 {
	if seqGT(a, b) {
		return a
	}
	return b
}
