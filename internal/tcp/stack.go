package tcp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybrid/internal/bufpool"
	"hybrid/internal/faults"
	"hybrid/internal/iovec"
	"hybrid/internal/netsim"
	"hybrid/internal/stats"
	"hybrid/internal/timerwheel"
	"hybrid/internal/vclock"
)

// Errors surfaced to users of the stack.
var (
	// ErrWouldBlock reports that a nonblocking operation cannot proceed;
	// wait on the corresponding ready hook and retry.
	ErrWouldBlock = errors.New("tcp: operation would block")
	// ErrConnReset reports an RST from the peer.
	ErrConnReset = errors.New("tcp: connection reset by peer")
	// ErrRefused reports that the remote had no listener on the port.
	ErrRefused = errors.New("tcp: connection refused")
	// ErrTimeout reports that retransmission gave up.
	ErrTimeout = errors.New("tcp: connection timed out")
	// ErrClosed reports use of a closed connection or listener.
	ErrClosed = errors.New("tcp: use of closed connection")
	// ErrAddrInUse reports a duplicate listen port.
	ErrAddrInUse = errors.New("tcp: port already in use")
)

// Config tunes the stack.
type Config struct {
	// MSS is the maximum segment payload. Default 1460.
	MSS int
	// SendBuf and RecvBuf bound per-connection buffering. Default 64 KB.
	SendBuf, RecvBuf int
	// InitialRTO, RTOMin, RTOMax bound the retransmission timer.
	// Defaults 1s / 200ms / 60s (RFC 6298).
	InitialRTO, RTOMin, RTOMax time.Duration
	// MSL is the maximum segment lifetime; TIME_WAIT lasts 2*MSL.
	// Default 30s.
	MSL time.Duration
	// MaxRetries bounds consecutive retransmissions of one segment
	// before the connection errors with ErrTimeout. Default 8.
	MaxRetries int
	// InitialCwnd is the initial congestion window in segments.
	// Default 2.
	InitialCwnd int
	// DelayedAck, when nonzero, delays pure ACKs by up to this duration:
	// every second data segment, out-of-order arrivals, and FINs are
	// still acknowledged immediately (RFC 1122 §4.2.3.2). Zero keeps the
	// stack's default of immediate ACKs.
	DelayedAck time.Duration
	// Nagle enables RFC 896 small-segment coalescing: a sub-MSS segment
	// is held back while unacknowledged data is in flight. Off by
	// default (the latency-sensitive configuration).
	Nagle bool
	// Backlog caps, per listener, connections that are mid-handshake or
	// accepted-but-unclaimed; SYNs beyond it are dropped (the client
	// retries, as under SYN-queue pressure on a real stack). Default 128.
	Backlog int
	// SACK enables RFC 2018 selective acknowledgments: advertised on the
	// SYN, granted when both ends advertise it. A SACK connection reports
	// received ranges above a hole on every ACK and recovers loss with a
	// sender scoreboard (RFC 6675-style selective retransmission and pipe
	// accounting); if the peer does not advertise SACK the connection
	// falls back to NewReno recovery. Off by default: the legacy
	// fast-retransmit/RTO machine runs byte-identically.
	SACK bool
	// NewReno enables RFC 6582 partial-ACK recovery without SACK: after a
	// fast retransmit the sender stays in recovery until the entire
	// pre-loss flight is acknowledged, retransmitting one hole per
	// partial ACK instead of waiting out an RTO per hole. Implied (as the
	// fallback) by SACK. Off by default.
	NewReno bool
	// Controller selects the congestion-control algorithm: "reno" (the
	// default, RFC 5681 AIMD exactly as the pre-controller stack behaved)
	// or "cubic" (RFC 8312-style cubic window growth). Unknown names
	// panic in NewStack.
	Controller string
	// Faults, when non-nil, injects inbound-segment faults per its
	// deterministic plan: tcp.drop discards a segment before the state
	// machine sees it (as corruption would), tcp.reset forges an RST
	// onto one, aborting the connection mid-stream.
	Faults *faults.Injector
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.SendBuf <= 0 {
		c.SendBuf = 64 * 1024
	}
	if c.RecvBuf <= 0 {
		c.RecvBuf = 64 * 1024
	}
	if c.InitialRTO <= 0 {
		c.InitialRTO = time.Second
	}
	if c.RTOMin <= 0 {
		c.RTOMin = 200 * time.Millisecond
	}
	if c.RTOMax <= 0 {
		c.RTOMax = 60 * time.Second
	}
	if c.MSL <= 0 {
		c.MSL = 30 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 2
	}
	if c.Backlog <= 0 {
		c.Backlog = 128
	}
	return c
}

// connKey identifies a connection from the local stack's viewpoint.
type connKey struct {
	localPort  uint16
	remoteAddr string
	remotePort uint16
}

func (k connKey) String() string {
	return fmt.Sprintf(":%d<->%s:%d", k.localPort, k.remoteAddr, k.remotePort)
}

// Stats counts stack activity.
type Stats struct {
	SegsIn, SegsOut          uint64
	Retransmits              uint64
	FastRetransmits          uint64
	FastRecoveries           uint64
	RecoveryRexmits          uint64
	RTOExpiries              uint64
	ZeroWindowProbes         uint64
	DupAcksIn                uint64
	OutOfOrderIn             uint64
	RSTsIn, RSTsOut          uint64
	BadSegments              uint64
	BytesIn, BytesOut        uint64
	ConnsOpened, ConnsClosed uint64
	SynsDropped              uint64
}

// tcpCounters is the hot-path mirror of Stats: one atomic per field, so
// counting a segment never touches the protocol lock and the
// observability layer's readers (CounterFunc closures, Snapshot) cannot
// stall the data path.
type tcpCounters struct {
	SegsIn, SegsOut          atomic.Uint64
	Retransmits              atomic.Uint64
	FastRetransmits          atomic.Uint64
	FastRecoveries           atomic.Uint64
	RecoveryRexmits          atomic.Uint64
	RTOExpiries              atomic.Uint64
	ZeroWindowProbes         atomic.Uint64
	DupAcksIn                atomic.Uint64
	OutOfOrderIn             atomic.Uint64
	RSTsIn, RSTsOut          atomic.Uint64
	BadSegments              atomic.Uint64
	BytesIn, BytesOut        atomic.Uint64
	ConnsOpened, ConnsClosed atomic.Uint64
	SynsDropped              atomic.Uint64
}

// Stack is one host's TCP instance, bound to a netsim host. All protocol
// state is guarded by one lock; packet events, timer events, and user
// calls serialize on it (the paper runs these as separate event loops
// around its scheduler — the serialization point here is explicit).
type Stack struct {
	cfg   Config
	host  *netsim.Host
	clock vclock.Clock
	wheel *timerwheel.Wheel // all per-connection deadlines; O(1) arm/cancel

	mu        sync.Mutex
	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16
	issNext   uint32

	stats tcpCounters // atomics; not guarded by mu

	trace func(TraceEvent) // observation tap; guarded by mu

	metrics *stats.Registry
}

// TraceEvent describes one segment leaving the stack, observed at the
// moment of transmission with the sending connection's congestion state.
// The conformance harness (internal/tcp/tracecheck) records these.
type TraceEvent struct {
	// Seg is the segment as built for the wire. The tap must not mutate
	// it or retain its payload past the callback.
	Seg *Segment
	// Cwnd is the sender's congestion window at transmission time, 0 for
	// segments with no connection (e.g. a listener-less RST).
	Cwnd uint32
	// Rexmit marks a retransmission (RTO, fast retransmit, or SACK
	// scoreboard) as opposed to a first transmission.
	Rexmit bool
}

// SetTrace installs fn as the stack's transmission tap; every outgoing
// segment is reported before it is handed to the network. fn runs under
// the stack lock: it must not call back into the stack. A nil fn removes
// the tap. Tracing is for tests and conformance tooling; the figures
// never enable it.
func (s *Stack) SetTrace(fn func(TraceEvent)) {
	s.mu.Lock()
	s.trace = fn
	s.mu.Unlock()
}

// traceLocked reports one outgoing segment to the tap, if installed.
func (s *Stack) traceLocked(seg *Segment, cwnd uint32, rexmit bool) {
	if s.trace != nil {
		s.trace(TraceEvent{Seg: seg, Cwnd: cwnd, Rexmit: rexmit})
	}
}

// NewStack attaches a TCP stack to a netsim host. It panics on an unknown
// Config.Controller name (a static misconfiguration, caught at setup).
func NewStack(host *netsim.Host, cfg Config) *Stack {
	switch cfg.Controller {
	case "", "reno", "cubic":
	default:
		panic("tcp: unknown congestion controller " + cfg.Controller)
	}
	s := &Stack{
		cfg:       cfg.withDefaults(),
		host:      host,
		clock:     host.Clock(),
		wheel:     timerwheel.New(host.Clock()),
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  49152,
		issNext:   1,
		metrics:   stats.NewRegistry(),
	}
	counters := []struct {
		name string
		c    *atomic.Uint64
	}{
		{"segs_in", &s.stats.SegsIn},
		{"segs_out", &s.stats.SegsOut},
		{"retransmits", &s.stats.Retransmits},
		{"fast_retransmits", &s.stats.FastRetransmits},
		{"fast_recoveries", &s.stats.FastRecoveries},
		{"recovery_rexmits", &s.stats.RecoveryRexmits},
		{"rto_expiries", &s.stats.RTOExpiries},
		{"zero_window_probes", &s.stats.ZeroWindowProbes},
		{"dup_acks_in", &s.stats.DupAcksIn},
		{"out_of_order_in", &s.stats.OutOfOrderIn},
		{"bytes_in", &s.stats.BytesIn},
		{"bytes_out", &s.stats.BytesOut},
		{"conns_opened", &s.stats.ConnsOpened},
		{"conns_closed", &s.stats.ConnsClosed},
		{"syns_dropped", &s.stats.SynsDropped},
	}
	for _, c := range counters {
		ctr := c.c
		s.metrics.CounterFunc(c.name, ctr.Load)
	}
	s.metrics.GaugeFunc("conns", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.conns))
	})
	host.SetHandler(s.input)
	return s
}

// Metrics exposes the stack's registry for the observability layer.
func (s *Stack) Metrics() *stats.Registry { return s.metrics }

// Addr reports the stack's host address.
func (s *Stack) Addr() string { return s.host.Addr() }

// Snapshot returns a copy of the stack's counters.
func (s *Stack) Snapshot() Stats {
	return Stats{
		SegsIn:           s.stats.SegsIn.Load(),
		SegsOut:          s.stats.SegsOut.Load(),
		Retransmits:      s.stats.Retransmits.Load(),
		FastRetransmits:  s.stats.FastRetransmits.Load(),
		FastRecoveries:   s.stats.FastRecoveries.Load(),
		RecoveryRexmits:  s.stats.RecoveryRexmits.Load(),
		RTOExpiries:      s.stats.RTOExpiries.Load(),
		ZeroWindowProbes: s.stats.ZeroWindowProbes.Load(),
		DupAcksIn:        s.stats.DupAcksIn.Load(),
		OutOfOrderIn:     s.stats.OutOfOrderIn.Load(),
		RSTsIn:           s.stats.RSTsIn.Load(),
		RSTsOut:          s.stats.RSTsOut.Load(),
		BadSegments:      s.stats.BadSegments.Load(),
		BytesIn:          s.stats.BytesIn.Load(),
		BytesOut:         s.stats.BytesOut.Load(),
		ConnsOpened:      s.stats.ConnsOpened.Load(),
		ConnsClosed:      s.stats.ConnsClosed.Load(),
		SynsDropped:      s.stats.SynsDropped.Load(),
	}
}

// allocPortLocked returns a free ephemeral port.
func (s *Stack) allocPortLocked(remoteAddr string, remotePort uint16) (uint16, error) {
	for tries := 0; tries < 16384; tries++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 49152
		}
		if _, usedL := s.listeners[p]; usedL {
			continue
		}
		if _, usedC := s.conns[connKey{p, remoteAddr, remotePort}]; usedC {
			continue
		}
		return p, nil
	}
	return 0, errors.New("tcp: ephemeral ports exhausted")
}

// sendSeg encodes seg into a pooled wire buffer and hands it to the host.
// netsim copies the payload before scheduling delivery, so the buffer goes
// straight back to the pool; nothing on the wire ever references it.
func (s *Stack) sendSeg(dst string, seg *Segment) {
	wire := bufpool.Get(seg.WireLen())
	seg.EncodeTo(wire)
	s.host.Send(dst, wire)
	bufpool.Put(wire)
}

// input is the packet-arrival event handler (worker_tcp_input): decode,
// demux to a connection or listener, and run the state machine.
func (s *Stack) input(src string, data []byte) {
	seg, err := Decode(data)
	if err != nil {
		s.mu.Lock()
		s.stats.BadSegments.Add(1)
		s.mu.Unlock()
		return
	}
	// Injected segment faults act at the edge of the stack, before demux:
	// a drop is indistinguishable from checksum-failed corruption, a
	// forged RST exercises the abort path of whatever state the
	// connection is in.
	if s.cfg.Faults.Fire(faults.TCPDrop) {
		s.mu.Lock()
		s.stats.BadSegments.Add(1)
		s.mu.Unlock()
		return
	}
	if s.cfg.Faults.Fire(faults.TCPReset) {
		seg.Flags |= FlagRST
	}
	s.mu.Lock()
	s.stats.SegsIn.Add(1)
	s.stats.BytesIn.Add(uint64(seg.Payload.Len()))
	key := connKey{seg.DstPort, src, seg.SrcPort}
	if c, ok := s.conns[key]; ok {
		wakes := c.processLocked(seg)
		s.mu.Unlock()
		runAll(wakes)
		return
	}
	// No connection: a SYN may create one via a listener, subject to the
	// listener's backlog of embryonic plus unaccepted connections.
	if seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0 {
		if l, ok := s.listeners[seg.DstPort]; ok && !l.closed {
			if l.pending+len(l.backlog) >= s.cfg.Backlog {
				s.stats.SynsDropped.Add(1)
				s.mu.Unlock()
				return
			}
			l.pending++
			c := s.newConnLocked(key, StateSynRcvd)
			c.irs = seg.Seq
			c.rcvNxt = seg.Seq + 1
			c.sndWnd = seg.Window
			c.listener = l
			synack := FlagSYN | FlagACK
			// Grant SACK only when we are configured for it and the
			// client's SYN asked (RFC 2018 §2).
			if s.cfg.SACK && seg.Flags&FlagSACKOK != 0 {
				c.sackOn = true
				synack |= FlagSACKOK
			}
			c.sendSegLocked(synack, iovec.Vec{}, true)
			s.mu.Unlock()
			return
		}
	}
	// Otherwise: RST in response to anything but an RST.
	if seg.Flags&FlagRST == 0 {
		s.stats.RSTsOut.Add(1)
		rst := &Segment{
			SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: seg.Ack, Ack: seg.Seq + seg.seqLen(), Flags: FlagRST | FlagACK,
		}
		s.traceLocked(rst, 0, false)
		s.mu.Unlock()
		s.sendSeg(src, rst)
		return
	}
	s.mu.Unlock()
}

// runAll invokes deferred wakeups outside the stack lock.
func runAll(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}

// newConnLocked creates and registers a connection.
func (s *Stack) newConnLocked(key connKey, st State) *Conn {
	c := &Conn{
		s:     s,
		key:   key,
		state: st,
		iss:   s.issNext,
		cc:    newController(s.cfg.Controller, uint32(s.cfg.MSS), uint32(s.cfg.InitialCwnd*s.cfg.MSS)),
		rto:   s.cfg.InitialRTO,
	}
	s.issNext += 64 * 1024 // deterministic, well-separated ISNs
	c.sndUna = c.iss
	c.sndNxt = c.iss
	s.conns[key] = c
	s.stats.ConnsOpened.Add(1)
	return c
}

// removeConnLocked unregisters a connection.
func (s *Stack) removeConnLocked(c *Conn) {
	if _, ok := s.conns[c.key]; ok {
		delete(s.conns, c.key)
		s.stats.ConnsClosed.Add(1)
	}
}

// Connect starts an active open to addr:port and returns the connection
// in SYN_SENT; wait for establishment with OnEstablished (or the monadic
// Connect wrapper).
func (s *Stack) Connect(addr string, port uint16) (*Conn, error) {
	defer s.enter()()
	s.mu.Lock()
	lp, err := s.allocPortLocked(addr, port)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	c := s.newConnLocked(connKey{lp, addr, port}, StateSynSent)
	syn := FlagSYN
	if s.cfg.SACK {
		syn |= FlagSACKOK // advertise; granted if the SYN-ACK echoes it
	}
	c.sendSegLocked(syn, iovec.Vec{}, true)
	s.mu.Unlock()
	return c, nil
}

// Listen opens a passive socket on port.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.listeners[port]; dup {
		return nil, fmt.Errorf("port %d: %w", port, ErrAddrInUse)
	}
	l := &Listener{s: s, port: port}
	s.listeners[port] = l
	return l, nil
}

// Listener is a passive socket.
type Listener struct {
	s       *Stack
	port    uint16
	backlog []*Conn // established, unaccepted
	pending int     // embryonic (SYN_RCVD) connections
	waiters []func()
	closed  bool
}

// Port reports the listening port.
func (l *Listener) Port() uint16 { return l.port }

// TryAccept returns an established connection or ErrWouldBlock.
func (l *Listener) TryAccept() (*Conn, error) {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if len(l.backlog) == 0 {
		return nil, ErrWouldBlock
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// OnAcceptable registers a one-shot callback for when TryAccept may
// succeed (a connection is pending or the listener closed).
func (l *Listener) OnAcceptable(cb func()) {
	l.s.mu.Lock()
	if l.closed || len(l.backlog) > 0 {
		l.s.mu.Unlock()
		cb()
		return
	}
	l.waiters = append(l.waiters, cb)
	l.s.mu.Unlock()
}

// Close shuts the listener; pending and future accepts fail with
// ErrClosed. Established connections are unaffected.
func (l *Listener) Close() {
	l.s.mu.Lock()
	l.closed = true
	delete(l.s.listeners, l.port)
	waiters := l.waiters
	l.waiters = nil
	l.s.mu.Unlock()
	runAll(waiters)
}

// deliverLocked queues an established connection on the backlog.
func (l *Listener) deliverLocked(c *Conn) (wakes []func()) {
	if l.closed {
		return nil
	}
	l.backlog = append(l.backlog, c)
	wakes = l.waiters
	l.waiters = nil
	return wakes
}

// Re-entrancy note: netsim.Send schedules events on the clock and, when
// the busy count is zero, the clock advances synchronously — which would
// run packet handlers that re-enter this stack's lock. Every path that
// sends while holding s.mu therefore runs with the clock held busy:
// packet and timer handlers hold it by construction (clock callbacks),
// and the public user entry points bracket themselves with
// s.clock.Enter() / Exit() via the enter helper.
func (s *Stack) enter() func() {
	s.clock.Enter()
	return s.clock.Exit
}

var _ = vclock.Time(0) // vclock types appear in conn.go's timer fields
