package tcp

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hybrid/internal/iovec"
	"hybrid/internal/netsim"
	"hybrid/internal/vclock"
)

// world is a two-host network with a TCP stack on each end. Goroutines
// that use the blocking API are spawned with Stack.Go so the virtual
// clock cannot run ahead of them (see api.go).
type world struct {
	clk    *vclock.VirtualClock
	net    *netsim.Network
	a, b   *Stack
	ha, hb *netsim.Host
}

func newWorld(t *testing.T, link netsim.LinkParams, cfg Config) *world {
	t.Helper()
	clk := vclock.NewVirtual()
	n := netsim.New(clk, 7)
	ha, err := n.Host("hostA", link)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := n.Host("hostB", link)
	if err != nil {
		t.Fatal(err)
	}
	return &world{
		clk: clk, net: n, ha: ha, hb: hb,
		a: NewStack(ha, cfg),
		b: NewStack(hb, cfg),
	}
}

// connectPair establishes a client connection from a to a listener on b.
func (w *world) connectPair(t *testing.T, port uint16) (client, server *Conn) {
	t.Helper()
	l, err := w.b.Listen(port)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var cerr, serr error
	wg.Add(2)
	w.b.Go(func() {
		defer wg.Done()
		server, serr = l.Accept()
	})
	w.a.Go(func() {
		defer wg.Done()
		client, cerr = w.a.ConnectBlocking("hostB", port)
	})
	wg.Wait()
	if cerr != nil {
		t.Fatalf("connect: %v", cerr)
	}
	if serr != nil {
		t.Fatalf("accept: %v", serr)
	}
	return client, server
}

// settle drives the network to quiescence.
func (w *world) settle() {
	w.clk.Enter()
	w.clk.Exit()
}

func TestHandshake(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	if client.State() != StateEstablished || server.State() != StateEstablished {
		t.Fatalf("states: client=%v server=%v", client.State(), server.State())
	}
}

func TestConnectRefusedByRST(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	var err error
	var wg sync.WaitGroup
	wg.Add(1)
	w.a.Go(func() {
		defer wg.Done()
		_, err = w.a.ConnectBlocking("hostB", 81) // nobody listening
	})
	wg.Wait()
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want refused", err)
	}
}

func TestSimpleTransfer(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	var wg sync.WaitGroup
	wg.Add(2)
	w.a.Go(func() {
		defer wg.Done()
		client.Write([]byte("hello tcp"))
		client.Close()
	})
	var got string
	var eofN int
	var eofErr error
	w.b.Go(func() {
		defer wg.Done()
		buf := make([]byte, 64)
		n, err := server.ReadFull(buf[:9])
		if err != nil {
			eofErr = err
			return
		}
		got = string(buf[:n])
		eofN, eofErr = server.Read(buf)
	})
	wg.Wait()
	if got != "hello tcp" {
		t.Fatalf("read %q", got)
	}
	if eofN != 0 || eofErr != nil {
		t.Fatalf("EOF read = %d, %v", eofN, eofErr)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	var wg sync.WaitGroup
	wg.Add(2)
	w.b.Go(func() {
		defer wg.Done()
		buf := make([]byte, 16)
		n, _ := server.ReadFull(buf[:4])
		server.Write(bytes.ToUpper(buf[:n]))
		server.Close()
	})
	var reply string
	w.a.Go(func() {
		defer wg.Done()
		client.Write([]byte("ping"))
		buf := make([]byte, 16)
		n, err := client.ReadFull(buf[:4])
		if err == nil {
			reply = string(buf[:n])
		}
	})
	wg.Wait()
	if reply != "PING" {
		t.Fatalf("reply %q", reply)
	}
}

// transfer runs one client→server bulk transfer and verifies integrity.
func transfer(t *testing.T, w *world, client, server *Conn, size int) (vclock.Time, Stats, Stats) {
	t.Helper()
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	w.a.Go(func() {
		defer wg.Done()
		client.Write(payload)
		client.Close()
	})
	var got []byte
	var rerr error
	w.b.Go(func() {
		defer wg.Done()
		buf := make([]byte, 8192)
		for {
			n, err := server.Read(buf)
			if err != nil {
				rerr = err
				return
			}
			if n == 0 {
				return
			}
			got = append(got, buf[:n]...)
		}
	})
	wg.Wait()
	if rerr != nil {
		t.Fatalf("server read: %v", rerr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted: got %d bytes want %d", len(got), len(payload))
	}
	return w.clk.Now(), w.a.Snapshot(), w.b.Snapshot()
}

func transferOnce(t *testing.T, link netsim.LinkParams, cfg Config, size int) (vclock.Time, Stats, Stats) {
	t.Helper()
	w := newWorld(t, link, cfg)
	client, server := w.connectPair(t, 80)
	return transfer(t, w, client, server, size)
}

func TestBulkTransfer(t *testing.T) {
	at, _, _ := transferOnce(t, netsim.Ethernet100(), Config{}, 1<<20)
	// 1 MB at 100 Mbps is at least ~84 ms of serialization.
	if at < vclock.Time(80*time.Millisecond) {
		t.Fatalf("1MB finished unrealistically fast: %v", at)
	}
}

func TestBulkTransferSmallWindow(t *testing.T) {
	// An 8 KB receive buffer forces constant window-limited operation.
	transferOnce(t, netsim.Ethernet100(), Config{RecvBuf: 8 * 1024}, 256*1024)
}

func TestTransferWithLoss(t *testing.T) {
	link := netsim.Ethernet100()
	link.LossProb = 0.05
	cfg := Config{RTOMin: 20 * time.Millisecond, InitialRTO: 50 * time.Millisecond, MaxRetries: 16}
	_, sa, _ := transferOnce(t, link, cfg, 256*1024)
	if sa.Retransmits == 0 && sa.FastRetransmits == 0 {
		t.Fatal("5% loss produced no retransmissions")
	}
}

func TestTransferWithReorderAndDup(t *testing.T) {
	link := netsim.Ethernet100()
	link.ReorderProb = 0.2
	link.DupProb = 0.05
	_, _, sb := transferOnce(t, link, Config{}, 256*1024)
	if sb.OutOfOrderIn == 0 {
		t.Fatal("reordering produced no out-of-order segments")
	}
}

func TestTransferHarshNetwork(t *testing.T) {
	link := netsim.Ethernet100()
	link.LossProb = 0.1
	link.ReorderProb = 0.2
	link.DupProb = 0.1
	cfg := Config{RTOMin: 20 * time.Millisecond, InitialRTO: 50 * time.Millisecond, MaxRetries: 16}
	transferOnce(t, link, cfg, 128*1024)
}

func TestTransferMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep")
	}
	cfg := Config{RTOMin: 20 * time.Millisecond, InitialRTO: 50 * time.Millisecond, MaxRetries: 16}
	for _, loss := range []float64{0, 0.1, 0.25} {
		for _, reorder := range []float64{0, 0.25, 0.45} {
			for _, dup := range []float64{0, 0.2} {
				link := netsim.Ethernet100()
				link.LossProb, link.ReorderProb, link.DupProb = loss, reorder, dup
				transferOnce(t, link, cfg, 32*1024)
			}
		}
	}
}

// Property: the byte stream survives arbitrary loss/reorder/dup —
// exactly-once, in-order delivery.
func TestStreamIntegrityProperty(t *testing.T) {
	check := func(lossP, reorderP, dupP uint8, sizeK uint8) bool {
		link := netsim.Ethernet100()
		link.LossProb = float64(lossP%30) / 100
		link.ReorderProb = float64(reorderP%50) / 100
		link.DupProb = float64(dupP%30) / 100
		size := (int(sizeK%64) + 1) * 1024
		cfg := Config{RTOMin: 20 * time.Millisecond, InitialRTO: 50 * time.Millisecond, MaxRetries: 16}
		clk := vclock.NewVirtual()
		n := netsim.New(clk, int64(lossP)*7919+int64(reorderP))
		ha, _ := n.Host("hostA", link)
		hb, _ := n.Host("hostB", link)
		a, b := NewStack(ha, cfg), NewStack(hb, cfg)
		l, err := b.Listen(80)
		if err != nil {
			return false
		}
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i*7 + 13)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var got []byte
		ok := true
		b.Go(func() {
			defer wg.Done()
			s, err := l.Accept()
			if err != nil {
				ok = false
				return
			}
			buf := make([]byte, 4096)
			for {
				n, err := s.Read(buf)
				if err != nil || n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
		})
		a.Go(func() {
			defer wg.Done()
			client, err := a.ConnectBlocking("hostB", 80)
			if err != nil {
				ok = false
				l.Close() // unblock the accept side
				return
			}
			client.Write(payload)
			client.Close()
		})
		wg.Wait()
		return ok && bytes.Equal(got, payload)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseHandshakeStates(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	client.Close()
	w.settle()
	if st := server.State(); st != StateCloseWait {
		t.Fatalf("server state after client FIN = %v, want CLOSE_WAIT", st)
	}
	if st := client.State(); st != StateFinWait2 {
		t.Fatalf("client state = %v, want FIN_WAIT_2", st)
	}
	server.Close()
	w.settle() // settling to quiescence also expires TIME_WAIT (2*MSL)
	if st := client.State(); st != StateClosed {
		t.Fatalf("client state after both FINs + 2*MSL = %v, want CLOSED", st)
	}
	if st := server.State(); st != StateClosed {
		t.Fatalf("server state = %v, want CLOSED", st)
	}
}

func TestTimeWaitStateObservable(t *testing.T) {
	// Script the peer by hand so the clock can be held busy while the
	// FIN exchange completes: the client must sit in TIME_WAIT until the
	// 2*MSL timer is allowed to fire.
	clk := vclock.NewVirtual()
	n := netsim.New(clk, 1)
	ha, _ := n.Host("hostA", netsim.Ethernet100())
	hb, _ := n.Host("hostB", netsim.Ethernet100())
	a := NewStack(ha, Config{})
	// Fake server: reply to SYN with SYN-ACK, to FIN with ACK then FIN.
	var serverISS uint32 = 7000
	hb.SetHandler(func(src string, data []byte) {
		seg, err := Decode(data)
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		switch {
		case seg.Flags&FlagSYN != 0:
			hb.Send(src, (&Segment{
				SrcPort: seg.DstPort, DstPort: seg.SrcPort,
				Seq: serverISS, Ack: seg.Seq + 1,
				Flags: FlagSYN | FlagACK, Window: 65536,
			}).Encode())
		case seg.Flags&FlagFIN != 0:
			// ACK the FIN, then send our own FIN.
			hb.Send(src, (&Segment{
				SrcPort: seg.DstPort, DstPort: seg.SrcPort,
				Seq: serverISS + 1, Ack: seg.Seq + 1,
				Flags: FlagACK, Window: 65536,
			}).Encode())
			hb.Send(src, (&Segment{
				SrcPort: seg.DstPort, DstPort: seg.SrcPort,
				Seq: serverISS + 1, Ack: seg.Seq + 1,
				Flags: FlagFIN | FlagACK, Window: 65536,
			}).Encode())
		}
	})
	clk.Enter()
	c, err := a.Connect("hostB", 80)
	if err != nil {
		t.Fatal(err)
	}
	var afterHandshake, afterFins State
	// Probe events: 1s is after the handshake but before anything else;
	// 2s is after the FIN exchange but well before 2*MSL (60s).
	clk.After(time.Second, func() {
		afterHandshake = c.State()
		c.Close()
	})
	clk.After(2*time.Second, func() { afterFins = c.State() })
	clk.Exit() // run the whole timeline to quiescence
	if afterHandshake != StateEstablished {
		t.Fatalf("state after handshake = %v, want ESTABLISHED", afterHandshake)
	}
	if afterFins != StateTimeWait {
		t.Fatalf("state after FIN exchange = %v, want TIME_WAIT", afterFins)
	}
	if c.State() != StateClosed {
		t.Fatalf("state after 2*MSL = %v, want CLOSED", c.State())
	}
}

func TestTimeWaitExpires(t *testing.T) {
	cfg := Config{MSL: 10 * time.Millisecond}
	w := newWorld(t, netsim.Ethernet100(), cfg)
	client, server := w.connectPair(t, 80)
	client.Close()
	server.Close()
	w.settle() // runs the 2*MSL timer in virtual time
	if st := client.State(); st != StateClosed {
		t.Fatalf("client state after 2*MSL = %v, want CLOSED", st)
	}
	w.a.mu.Lock()
	n := len(w.a.conns)
	w.a.mu.Unlock()
	if n != 0 {
		t.Fatalf("client stack still tracks %d conns", n)
	}
}

func TestSimultaneousCloseReachesClosed(t *testing.T) {
	cfg := Config{MSL: 10 * time.Millisecond}
	w := newWorld(t, netsim.Ethernet100(), cfg)
	client, server := w.connectPair(t, 80)
	// Close both ends while the clock is held so the FINs cross in
	// flight (simultaneous close → CLOSING → TIME_WAIT).
	w.clk.Enter()
	client.Close()
	server.Close()
	w.clk.Exit()
	if st := client.State(); st != StateClosed {
		t.Fatalf("client = %v, want CLOSED after simultaneous close", st)
	}
	if st := server.State(); st != StateClosed {
		t.Fatalf("server = %v, want CLOSED after simultaneous close", st)
	}
}

func TestAbortSendsRST(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	client.Abort()
	w.settle()
	if err := server.Err(); !errors.Is(err, ErrConnReset) {
		t.Fatalf("server err = %v, want reset", err)
	}
	if _, err := server.TryRead(make([]byte, 4)); !errors.Is(err, ErrConnReset) {
		t.Fatalf("read after RST: %v", err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, _ := w.connectPair(t, 80)
	client.Close()
	if _, err := client.TryWrite([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestHalfCloseServerCanStillSend(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	client.Close() // client done sending; can still receive
	var wg sync.WaitGroup
	wg.Add(2)
	w.b.Go(func() {
		defer wg.Done()
		server.Write([]byte("late data"))
		server.Close()
	})
	var got string
	w.a.Go(func() {
		defer wg.Done()
		buf := make([]byte, 16)
		n, err := client.ReadFull(buf[:9])
		if err == nil {
			got = string(buf[:n])
		}
	})
	wg.Wait()
	if got != "late data" {
		t.Fatalf("half-close read %q", got)
	}
}

func TestZeroWindowAndReopen(t *testing.T) {
	// A tiny receive buffer and a slow reader force a zero-window stall;
	// the window-update path must unstick the sender.
	cfg := Config{RecvBuf: 2048, RTOMin: 10 * time.Millisecond, InitialRTO: 20 * time.Millisecond}
	w := newWorld(t, netsim.Ethernet100(), cfg)
	client, server := w.connectPair(t, 80)
	payload := make([]byte, 64*1024)
	var wg sync.WaitGroup
	wg.Add(2)
	w.a.Go(func() {
		defer wg.Done()
		client.Write(payload)
		client.Close()
	})
	var got int
	w.b.Go(func() {
		defer wg.Done()
		buf := make([]byte, 512)
		for {
			n, err := server.Read(buf)
			if err != nil || n == 0 {
				return
			}
			got += n
		}
	})
	wg.Wait()
	if got != len(payload) {
		t.Fatalf("received %d of %d through zero-window stalls", got, len(payload))
	}
}

func TestRetransmitTimeoutGivesUp(t *testing.T) {
	link := netsim.Ethernet100()
	link.LossProb = 1.0 // black hole
	cfg := Config{InitialRTO: 5 * time.Millisecond, RTOMin: 5 * time.Millisecond, MaxRetries: 3}
	clk := vclock.NewVirtual()
	n := netsim.New(clk, 1)
	ha, _ := n.Host("hostA", link)
	if _, err := n.Host("hostB", link); err != nil {
		t.Fatal(err)
	}
	a := NewStack(ha, cfg)
	var err error
	var wg sync.WaitGroup
	wg.Add(1)
	a.Go(func() {
		defer wg.Done()
		_, err = a.ConnectBlocking("hostB", 80)
	})
	wg.Wait()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestRTTEstimateConverges(t *testing.T) {
	link := netsim.Ethernet100()
	link.Latency = 5 * time.Millisecond
	w := newWorld(t, link, Config{})
	client, server := w.connectPair(t, 80)
	transfer(t, w, client, server, 256*1024)
	w.a.mu.Lock()
	srtt := client.srtt
	w.a.mu.Unlock()
	// One-way latency 5ms → RTT 10ms plus serialization and queueing;
	// with a growing congestion window, queueing inflates the estimate.
	if srtt < 9*time.Millisecond || srtt > 80*time.Millisecond {
		t.Fatalf("SRTT = %v, want ~10-80ms", srtt)
	}
}

func TestCongestionWindowGrows(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	transfer(t, w, client, server, 512*1024)
	w.a.mu.Lock()
	cwnd := client.cc.Cwnd()
	w.a.mu.Unlock()
	if cwnd <= uint32(2*1460) {
		t.Fatalf("cwnd never grew: %d", cwnd)
	}
}

func TestRetransmissionsAreBoundedOnCleanLink(t *testing.T) {
	// On a lossless link nothing should ever be retransmitted.
	_, sa, sb := transferOnce(t, netsim.Ethernet100(), Config{}, 512*1024)
	if sa.Retransmits != 0 || sa.FastRetransmits != 0 {
		t.Fatalf("clean link retransmits: %d rto, %d fast", sa.Retransmits, sa.FastRetransmits)
	}
	if sb.RSTsOut != 0 {
		t.Fatalf("server sent %d RSTs on clean transfer", sb.RSTsOut)
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	l, err := w.b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	const conns = 50
	var wg sync.WaitGroup
	wg.Add(1)
	w.b.Go(func() {
		defer wg.Done()
		for i := 0; i < conns; i++ {
			s, err := l.Accept()
			if err != nil {
				return
			}
			w.b.Go(func() {
				buf := make([]byte, 1024)
				for {
					n, err := s.Read(buf)
					if n == 0 || err != nil {
						s.Close()
						return
					}
					s.Write(buf[:n])
				}
			})
		}
	})
	results := make(chan error, conns)
	for i := 0; i < conns; i++ {
		i := i
		w.a.Go(func() {
			c, err := w.a.ConnectBlocking("hostB", 80)
			if err != nil {
				results <- err
				return
			}
			msg := []byte(fmt.Sprintf("conn-%d", i))
			c.Write(msg)
			buf := make([]byte, 64)
			n, err := c.ReadFull(buf[:len(msg)])
			if err != nil {
				results <- err
				return
			}
			if !bytes.Equal(buf[:n], msg) {
				results <- fmt.Errorf("echo mismatch: %q", buf[:n])
				return
			}
			c.Close()
			results <- nil
		})
	}
	for i := 0; i < conns; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	l, _ := w.b.Listen(99)
	done := make(chan error, 1)
	w.b.Go(func() {
		_, err := l.Accept()
		done <- err
	})
	l.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("accept after close: %v", err)
	}
}

func TestDuplicateListenRejected(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	if _, err := w.b.Listen(7); err != nil {
		t.Fatal(err)
	}
	if _, err := w.b.Listen(7); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("duplicate listen: %v", err)
	}
}

func TestLostHandshakeAckRecoveredByData(t *testing.T) {
	// Hand-crafted: server gets SYN, replies SYN-ACK; the handshake ACK
	// is "lost", and the first data segment completes the handshake.
	clk := vclock.NewVirtual()
	n := netsim.New(clk, 1)
	if _, err := n.Host("hostA", netsim.Ethernet100()); err != nil {
		t.Fatal(err)
	}
	hb, _ := n.Host("hostB", netsim.Ethernet100())
	b := NewStack(hb, Config{})
	if _, err := b.Listen(80); err != nil {
		t.Fatal(err)
	}
	clk.Enter()
	syn := &Segment{SrcPort: 5000, DstPort: 80, Seq: 100, Flags: FlagSYN, Window: 65536}
	b.input("hostA", syn.Encode())
	b.mu.Lock()
	c := b.conns[connKey{80, "hostA", 5000}]
	iss := c.iss
	b.mu.Unlock()
	if c.State() != StateSynRcvd {
		t.Fatalf("state after SYN = %v", c.State())
	}
	data := &Segment{SrcPort: 5000, DstPort: 80, Seq: 101, Ack: iss + 1,
		Flags: FlagACK, Window: 65536, Payload: iovec.FromBytes([]byte("hello"))}
	b.input("hostA", data.Encode())
	clk.Exit()
	if c.State() != StateEstablished {
		t.Fatalf("state after data+ACK = %v, want ESTABLISHED", c.State())
	}
}

func TestSegmentEncodeDecodeRoundTrip(t *testing.T) {
	check := func(srcP, dstP uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		s := &Segment{
			SrcPort: srcP, DstPort: dstP, Seq: seq, Ack: ack,
			Flags: Flags(flags & 0xF), Window: 12345, Payload: iovec.FromBytes(payload),
		}
		d, err := Decode(s.Encode())
		if err != nil {
			return false
		}
		return d.SrcPort == s.SrcPort && d.DstPort == s.DstPort &&
			d.Seq == s.Seq && d.Ack == s.Ack && d.Flags == s.Flags &&
			d.Window == s.Window && bytes.Equal(d.Payload.Bytes(), payload)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := &Segment{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: FlagACK, Payload: iovec.FromBytes([]byte("data"))}
	buf := s.Encode()
	buf[headerSize] ^= 0xFF // flip a payload bit
	if _, err := Decode(buf); !errors.Is(err, ErrMalformed) {
		t.Fatalf("corrupt decode: %v", err)
	}
	if _, err := Decode(buf[:4]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short decode: %v", err)
	}
}

func TestSeqArithmeticWraparound(t *testing.T) {
	near := uint32(0xFFFFFFF0)
	far := uint32(0x10)
	if !seqLT(near, far) {
		t.Fatal("wraparound compare broken: near should be < far")
	}
	if !seqGT(far, near) || seqLEQ(far, near) || !seqGEQ(far, near) {
		t.Fatal("wraparound comparisons inconsistent")
	}
	if seqMax(near, far) != far {
		t.Fatal("seqMax wrong across wrap")
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SA" {
		t.Fatalf("flags = %q", s)
	}
	if s := Flags(0).String(); s != "." {
		t.Fatalf("zero flags = %q", s)
	}
}

func TestStateString(t *testing.T) {
	if StateEstablished.String() != "ESTABLISHED" || StateTimeWait.String() != "TIME_WAIT" {
		t.Fatal("state names wrong")
	}
}

func TestWriteVZeroCopyTransfer(t *testing.T) {
	// The §5.2 zero-copy path: the caller hands over an I/O vector built
	// from several segments; bytes arrive intact and in order.
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	var parts [][]byte
	var want []byte
	for i := 0; i < 10; i++ {
		part := bytes.Repeat([]byte{byte('a' + i)}, 3000)
		parts = append(parts, part)
		want = append(want, part...)
	}
	v := iovec.New(parts...)
	var wg sync.WaitGroup
	wg.Add(2)
	w.a.Go(func() {
		defer wg.Done()
		if err := client.WriteV(v); err != nil {
			t.Errorf("WriteV: %v", err)
		}
		client.Close()
	})
	var got []byte
	w.b.Go(func() {
		defer wg.Done()
		buf := make([]byte, 4096)
		for {
			n, err := server.Read(buf)
			if err != nil || n == 0 {
				return
			}
			got = append(got, buf[:n]...)
		}
	})
	wg.Wait()
	if !bytes.Equal(got, want) {
		t.Fatalf("zero-copy transfer corrupted: %d vs %d bytes", len(got), len(want))
	}
}

func TestWriteVTooLargeBlocksUntilDrained(t *testing.T) {
	cfg := Config{SendBuf: 8 * 1024}
	w := newWorld(t, netsim.Ethernet100(), cfg)
	client, server := w.connectPair(t, 80)
	big := iovec.FromBytes(make([]byte, 32*1024))
	var wg sync.WaitGroup
	wg.Add(2)
	w.a.Go(func() {
		defer wg.Done()
		if err := client.WriteV(big); err != nil {
			t.Errorf("WriteV: %v", err)
		}
		client.Close()
	})
	var got int
	w.b.Go(func() {
		defer wg.Done()
		buf := make([]byte, 4096)
		for {
			n, err := server.Read(buf)
			if err != nil || n == 0 {
				return
			}
			got += n
		}
	})
	wg.Wait()
	if got != 32*1024 {
		t.Fatalf("received %d of %d", got, 32*1024)
	}
}

// --- Protocol extensions: delayed ACK (RFC 1122) and Nagle (RFC 896) ---

func TestDelayedAckReducesPureAcks(t *testing.T) {
	// Stream the same data with and without delayed ACKs: the receiver
	// must emit measurably fewer segments when delaying.
	segsOut := func(delack time.Duration) uint64 {
		cfg := Config{DelayedAck: delack}
		_, _, sb := transferOnce(t, netsim.Ethernet100(), cfg, 256*1024)
		return sb.SegsOut
	}
	immediate := segsOut(0)
	delayed := segsOut(20 * time.Millisecond)
	if !(delayed < immediate*9/10) {
		t.Fatalf("delayed ACK did not reduce receiver segments: %d vs %d", delayed, immediate)
	}
}

func TestDelayedAckTimerFiresForLoneSegment(t *testing.T) {
	// A single small segment with no follow-up must still be ACKed —
	// by the delack timer — so the sender's RTO never fires.
	cfg := Config{DelayedAck: 10 * time.Millisecond}
	w := newWorld(t, netsim.Ethernet100(), cfg)
	client, server := w.connectPair(t, 80)
	var wg sync.WaitGroup
	wg.Add(2)
	w.a.Go(func() {
		defer wg.Done()
		client.Write([]byte("x"))
	})
	var got int
	w.b.Go(func() {
		defer wg.Done()
		buf := make([]byte, 4)
		got, _ = server.Read(buf)
	})
	wg.Wait()
	w.settle()
	if got != 1 {
		t.Fatalf("read %d", got)
	}
	if s := w.a.Snapshot(); s.Retransmits != 0 {
		t.Fatalf("sender retransmitted %d times waiting for a delayed ACK", s.Retransmits)
	}
	// The data must be acknowledged after the delack fires.
	w.a.mu.Lock()
	flight := client.flightLocked()
	w.a.mu.Unlock()
	if flight != 0 {
		t.Fatalf("data still unacknowledged: flight=%d", flight)
	}
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	segsFor := func(nagle bool) uint64 {
		cfg := Config{Nagle: nagle}
		w := newWorld(t, netsim.Ethernet100(), cfg)
		client, server := w.connectPair(t, 80)
		var wg sync.WaitGroup
		wg.Add(2)
		w.a.Go(func() {
			defer wg.Done()
			// Many tiny writes while the clock is held: with Nagle they
			// coalesce behind the first in-flight runt.
			w.clk.Enter()
			for i := 0; i < 50; i++ {
				client.TryWrite([]byte("0123456789"))
			}
			w.clk.Exit()
			client.Close()
		})
		var got int
		w.b.Go(func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for {
				n, err := server.Read(buf)
				if err != nil || n == 0 {
					return
				}
				got += n
			}
		})
		wg.Wait()
		if got != 500 {
			t.Fatalf("nagle=%v: received %d of 500", nagle, got)
		}
		s := w.a.Snapshot()
		return s.SegsOut
	}
	with := segsFor(true)
	without := segsFor(false)
	if !(with < without/2) {
		t.Fatalf("Nagle did not coalesce: %d segments with, %d without", with, without)
	}
}

func TestNagleFlushesOnClose(t *testing.T) {
	cfg := Config{Nagle: true}
	w := newWorld(t, netsim.Ethernet100(), cfg)
	client, server := w.connectPair(t, 80)
	var wg sync.WaitGroup
	wg.Add(2)
	w.a.Go(func() {
		defer wg.Done()
		w.clk.Enter()
		client.TryWrite([]byte("abc"))
		client.TryWrite([]byte("def")) // runt held behind the first
		w.clk.Exit()
		client.Close() // must flush the held runt before the FIN
	})
	var got []byte
	w.b.Go(func() {
		defer wg.Done()
		buf := make([]byte, 64)
		for {
			n, err := server.Read(buf)
			if err != nil || n == 0 {
				return
			}
			got = append(got, buf[:n]...)
		}
	})
	wg.Wait()
	if string(got) != "abcdef" {
		t.Fatalf("got %q", got)
	}
}

func TestListenerBacklogDropsSYNFloods(t *testing.T) {
	cfg := Config{Backlog: 4}
	clk := vclock.NewVirtual()
	n := netsim.New(clk, 1)
	if _, err := n.Host("hostA", netsim.Ethernet100()); err != nil {
		t.Fatal(err)
	}
	hb, _ := n.Host("hostB", netsim.Ethernet100())
	b := NewStack(hb, cfg)
	if _, err := b.Listen(80); err != nil {
		t.Fatal(err)
	}
	// Flood bare SYNs from distinct fake ports; none complete a
	// handshake, so the embryonic queue fills and the rest are dropped.
	clk.Enter()
	for p := uint16(1); p <= 20; p++ {
		syn := &Segment{SrcPort: p, DstPort: 80, Seq: 100, Flags: FlagSYN, Window: 65536}
		b.input("hostA", syn.Encode())
	}
	b.mu.Lock()
	embryonic := len(b.conns)
	dropped := b.stats.SynsDropped.Load()
	b.mu.Unlock()
	clk.Exit()
	if embryonic != 4 {
		t.Fatalf("embryonic conns = %d, want backlog 4", embryonic)
	}
	if dropped != 16 {
		t.Fatalf("SynsDropped = %d, want 16", dropped)
	}
}

func TestBacklogSlotReleasedOnEstablish(t *testing.T) {
	// Completing handshakes must free pending slots so a server can
	// accept far more connections than its backlog over time.
	cfg := Config{Backlog: 2}
	w := newWorld(t, netsim.Ethernet100(), cfg)
	l, err := w.b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	const total = 10
	var wg sync.WaitGroup
	wg.Add(1)
	w.b.Go(func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			c, err := l.Accept()
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			c.Close()
		}
	})
	for i := 0; i < total; i++ {
		var cwg sync.WaitGroup
		cwg.Add(1)
		w.a.Go(func() {
			defer cwg.Done()
			c, err := w.a.ConnectBlocking("hostB", 80)
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			c.Close()
		})
		cwg.Wait()
	}
	wg.Wait()
}

func TestFINWithDataInOneSegment(t *testing.T) {
	// A final segment carrying both data and FIN: the receiver must
	// deliver the bytes and then EOF.
	clk := vclock.NewVirtual()
	n := netsim.New(clk, 1)
	if _, err := n.Host("hostA", netsim.Ethernet100()); err != nil {
		t.Fatal(err)
	}
	hb, _ := n.Host("hostB", netsim.Ethernet100())
	b := NewStack(hb, Config{})
	if _, err := b.Listen(80); err != nil {
		t.Fatal(err)
	}
	clk.Enter()
	syn := &Segment{SrcPort: 9, DstPort: 80, Seq: 100, Flags: FlagSYN, Window: 65536}
	b.input("hostA", syn.Encode())
	b.mu.Lock()
	c := b.conns[connKey{80, "hostA", 9}]
	iss := c.iss
	b.mu.Unlock()
	finData := &Segment{
		SrcPort: 9, DstPort: 80, Seq: 101, Ack: iss + 1,
		Flags: FlagACK | FlagFIN, Window: 65536,
		Payload: iovec.FromBytes([]byte("bye")),
	}
	b.input("hostA", finData.Encode())
	clk.Exit()
	buf := make([]byte, 8)
	n1, err := c.TryRead(buf)
	if err != nil || string(buf[:n1]) != "bye" {
		t.Fatalf("read %q, %v", buf[:n1], err)
	}
	n2, err := c.TryRead(buf)
	if n2 != 0 || err != nil {
		t.Fatalf("EOF read = %d, %v", n2, err)
	}
	if st := c.State(); st != StateCloseWait {
		t.Fatalf("state = %v, want CLOSE_WAIT", st)
	}
}

func TestOutOfOrderFINDeferredUntilGapFills(t *testing.T) {
	clk := vclock.NewVirtual()
	n := netsim.New(clk, 1)
	if _, err := n.Host("hostA", netsim.Ethernet100()); err != nil {
		t.Fatal(err)
	}
	hb, _ := n.Host("hostB", netsim.Ethernet100())
	b := NewStack(hb, Config{})
	if _, err := b.Listen(80); err != nil {
		t.Fatal(err)
	}
	clk.Enter()
	b.input("hostA", (&Segment{SrcPort: 9, DstPort: 80, Seq: 100, Flags: FlagSYN, Window: 65536}).Encode())
	b.mu.Lock()
	c := b.conns[connKey{80, "hostA", 9}]
	iss := c.iss
	b.mu.Unlock()
	// FIN for seq 104 (after "data") arrives BEFORE the data segment.
	b.input("hostA", (&Segment{
		SrcPort: 9, DstPort: 80, Seq: 105, Ack: iss + 1,
		Flags: FlagACK | FlagFIN, Window: 65536,
	}).Encode())
	if c.State() == StateCloseWait {
		t.Fatal("FIN applied before the data gap filled")
	}
	b.input("hostA", (&Segment{
		SrcPort: 9, DstPort: 80, Seq: 101, Ack: iss + 1,
		Flags: FlagACK, Window: 65536,
		Payload: iovec.FromBytes([]byte("data")),
	}).Encode())
	clk.Exit()
	buf := make([]byte, 8)
	n1, _ := c.TryRead(buf)
	if string(buf[:n1]) != "data" {
		t.Fatalf("read %q", buf[:n1])
	}
	if n2, err := c.TryRead(buf); n2 != 0 || err != nil {
		t.Fatalf("EOF = %d %v", n2, err)
	}
	if st := c.State(); st != StateCloseWait {
		t.Fatalf("state = %v", st)
	}
}

func TestSeqMaxBothOrders(t *testing.T) {
	if seqMax(5, 9) != 9 || seqMax(9, 5) != 9 {
		t.Fatal("seqMax wrong")
	}
}
