package tcp

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/iovec"
	"hybrid/internal/netsim"
)

// monadicWorld runs both TCP endpoints inside one hybrid runtime — the
// paper's actual configuration (§4.8): TCP operations as system calls
// made by monadic threads.
func monadicWorld(t *testing.T, link netsim.LinkParams, cfg Config) (*world, *core.Runtime) {
	t.Helper()
	w := newWorld(t, link, cfg)
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: w.clk})
	t.Cleanup(rt.Shutdown)
	return w, rt
}

func TestMonadicEchoRoundTrip(t *testing.T) {
	w, rt := monadicWorld(t, netsim.Ethernet100(), Config{})
	l, err := w.b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	// Server: accept, echo until EOF, close.
	rt.Spawn(core.Bind(l.AcceptM(), func(c *Conn) core.M[core.Unit] {
		buf := make([]byte, 512)
		var loop func() core.M[core.Unit]
		loop = func() core.M[core.Unit] {
			return core.Bind(c.ReadM(buf), func(n int) core.M[core.Unit] {
				if n == 0 {
					return c.CloseM()
				}
				return core.Then(
					core.Bind(c.WriteM(buf[:n]), func(int) core.M[core.Unit] { return core.Skip }),
					loop(),
				)
			})
		}
		return loop()
	}))
	var reply atomic.Value
	done := make(chan struct{})
	rt.Spawn(core.Bind(w.a.ConnectM("hostB", 80), func(c *Conn) core.M[core.Unit] {
		msg := []byte("monadic tcp echo")
		buf := make([]byte, len(msg))
		return core.Seq(
			core.Bind(c.WriteM(msg), func(int) core.M[core.Unit] { return core.Skip }),
			core.Bind(c.ReadFullM(buf), func(n int) core.M[core.Unit] {
				return core.Do(func() { reply.Store(string(buf[:n])) })
			}),
			c.CloseM(),
			core.Do(func() { close(done) }),
		)
	}))
	<-done
	if reply.Load() != "monadic tcp echo" {
		t.Fatalf("reply = %v", reply.Load())
	}
}

func TestMonadicConnectRefusedThrows(t *testing.T) {
	w, rt := monadicWorld(t, netsim.Ethernet100(), Config{})
	var caught atomic.Value
	done := make(chan struct{})
	rt.Spawn(core.Catch(
		core.Then(
			core.Bind(w.a.ConnectM("hostB", 9), func(*Conn) core.M[core.Unit] { return core.Skip }),
			core.Skip,
		),
		func(err error) core.M[core.Unit] {
			return core.Do(func() { caught.Store(err); close(done) })
		},
	))
	<-done
	if err, _ := caught.Load().(error); !errors.Is(err, ErrRefused) {
		t.Fatalf("caught %v", caught.Load())
	}
}

func TestMonadicWriteVMZeroCopy(t *testing.T) {
	w, rt := monadicWorld(t, netsim.Ethernet100(), Config{})
	l, err := w.b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("xyz"), 5000)
	var got []byte
	done := make(chan struct{})
	rt.Spawn(core.Bind(l.AcceptM(), func(c *Conn) core.M[core.Unit] {
		buf := make([]byte, 4096)
		var loop func() core.M[core.Unit]
		loop = func() core.M[core.Unit] {
			return core.Bind(c.ReadM(buf), func(n int) core.M[core.Unit] {
				if n == 0 {
					return core.Do(func() { close(done) })
				}
				got = append(got, buf[:n]...)
				return loop()
			})
		}
		return loop()
	}))
	rt.Spawn(core.Bind(w.a.ConnectM("hostB", 80), func(c *Conn) core.M[core.Unit] {
		v := iovec.New(want[:7000], want[7000:])
		return core.Seq(c.WriteVM(v), c.CloseM())
	}))
	<-done
	if !bytes.Equal(got, want) {
		t.Fatalf("zero-copy monadic transfer: %d vs %d bytes", len(got), len(want))
	}
}

func TestMonadicReadThrowsOnReset(t *testing.T) {
	w, rt := monadicWorld(t, netsim.Ethernet100(), Config{})
	l, err := w.b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	rt.Spawn(core.Bind(l.AcceptM(), func(c *Conn) core.M[core.Unit] {
		return core.Do(c.Abort) // RST the client immediately
	}))
	var caught atomic.Value
	done := make(chan struct{})
	rt.Spawn(core.Catch(
		core.Bind(w.a.ConnectM("hostB", 80), func(c *Conn) core.M[core.Unit] {
			return core.Bind(c.ReadM(make([]byte, 8)), func(int) core.M[core.Unit] {
				return core.Skip
			})
		}),
		func(err error) core.M[core.Unit] {
			return core.Do(func() { caught.Store(err); close(done) })
		},
	))
	<-done
	if err, _ := caught.Load().(error); !errors.Is(err, ErrConnReset) {
		t.Fatalf("caught %v", caught.Load())
	}
}

func TestConnAccessors(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	if client.RemoteAddr() != "hostB" || client.RemotePort() != 80 {
		t.Fatalf("client peer = %s:%d", client.RemoteAddr(), client.RemotePort())
	}
	if server.LocalPort() != 80 || server.RemoteAddr() != "hostA" {
		t.Fatalf("server view = :%d <- %s", server.LocalPort(), server.RemoteAddr())
	}
	if w.b.Addr() != "hostB" {
		t.Fatalf("stack addr = %s", w.b.Addr())
	}
	if k := (connKey{80, "hostA", client.LocalPort()}); k.String() == "" {
		t.Fatal("empty key string")
	}
}

func TestPersistTimerUnsticksZeroWindow(t *testing.T) {
	// The receiver reads nothing; the sender fills the window to zero and
	// must keep probing via the persist timer, then finish when the
	// reader finally drains.
	cfg := Config{RecvBuf: 2048, RTOMin: 10 * time.Millisecond, InitialRTO: 20 * time.Millisecond}
	w := newWorld(t, netsim.Ethernet100(), cfg)
	client, server := w.connectPair(t, 80)

	payload := make([]byte, 6*1024)
	written := make(chan error, 1)
	w.a.Go(func() {
		_, err := client.Write(payload)
		written <- err
		client.Close()
	})
	// Let the sender stall against the zero window: run the clock for a
	// while with nobody reading. The persist timer must be probing.
	probeWait := make(chan struct{})
	w.clk.After(200*time.Millisecond, func() { close(probeWait) })
	<-probeWait
	w.a.mu.Lock()
	flight := client.flightLocked()
	queued := client.sndBuf.Len()
	w.a.mu.Unlock()
	if flight == 0 && queued == 0 {
		t.Fatal("sender finished without the receiver reading — window not enforced")
	}
	// Now drain; the whole payload must arrive.
	var got int
	var wg2 = make(chan struct{})
	w.b.Go(func() {
		defer close(wg2)
		buf := make([]byte, 512)
		for {
			n, err := server.Read(buf)
			if err != nil || n == 0 {
				return
			}
			got += n
		}
	})
	if err := <-written; err != nil {
		t.Fatalf("write: %v", err)
	}
	<-wg2
	if got != len(payload) {
		t.Fatalf("received %d of %d after zero-window stall", got, len(payload))
	}
}
