package tcp

import (
	"testing"
	"unsafe"

	"hybrid/internal/netsim"
)

// TestTCBFootprint pins the compact-connection-state work: the TCB and
// the per-segment retransmission record are packed (pointer fields, then
// 8/4-byte scalars, then flag bytes), the reassembly map is lazy, and a
// parked keep-alive connection's fixed cost is one Conn plus nothing.
// A refactor that reopens pad holes or re-eagers the ooo map fails here
// before it shows up as megabytes in cmd/memtest.
func TestTCBFootprint(t *testing.T) {
	if got := unsafe.Sizeof(Conn{}); got > 480 {
		t.Errorf("Conn is %d bytes, budget 480 — field packing regressed", got)
	}
	if got := unsafe.Sizeof(rtxSeg{}); got > 72 {
		t.Errorf("rtxSeg is %d bytes, budget 72 — field packing regressed", got)
	}
}

// TestOOOMapLazy pins the lazy reassembly allocation: an in-order
// connection never allocates the map — not at establishment and not
// after a loss-free transfer. (Creation on out-of-order arrival and
// teardown on drain are exercised by the loss/reorder transfer tests;
// this pins the common case a million parked connections rely on.)
func TestOOOMapLazy(t *testing.T) {
	w := newWorld(t, netsim.Ethernet100(), Config{})
	client, server := w.connectPair(t, 80)
	if client.ooo != nil || server.ooo != nil {
		t.Fatal("fresh connection allocated a reassembly map")
	}
	transfer(t, w, client, server, 64<<10)
	if client.ooo != nil || server.ooo != nil {
		t.Fatal("in-order transfer allocated a reassembly map")
	}
}
