package tcp

import (
	"math"
	"time"

	"hybrid/internal/vclock"
)

// CongestionController is the pluggable congestion-control policy behind a
// connection's send window. The connection owns all loss *detection* —
// duplicate-ACK counting, the SACK scoreboard, the retransmission timer —
// and tells the controller what happened; the controller owns only the
// cwnd/ssthresh arithmetic. All methods run under the stack lock.
//
// The contract mirrors the legacy inline code exactly, so the "reno"
// implementation driven from the same call sites is byte-for-byte
// indistinguishable from the pre-extraction stack:
//
//   - OnAck fires for every ACK that advances sndUna while the connection
//     is not in recovery (the legacy stack had no recovery state, so for
//     it that means every advancing ACK).
//   - OnEnterRecovery fires at the third duplicate ACK, before the fast
//     retransmit, with the flight size at that moment.
//   - OnPartialAck and OnExitRecovery fire only on the NewReno/SACK
//     recovery path (never for a legacy-configured connection).
//   - OnRTO fires on every retransmission-timer expiry with the flight
//     size at that moment.
type CongestionController interface {
	// Name identifies the algorithm ("reno", "cubic").
	Name() string
	// Cwnd is the current congestion window in bytes.
	Cwnd() uint32
	// Ssthresh is the slow-start threshold in bytes.
	Ssthresh() uint32
	// OnAck processes an ACK that advanced sndUna by acked bytes, outside
	// recovery: grow the window (slow start below ssthresh, the
	// algorithm's avoidance law above it). srtt is the connection's
	// smoothed RTT estimate (RFC 6298), or 0 before the first sample;
	// time-based laws (CUBIC's TCP-friendly region) need it, Reno
	// ignores it.
	OnAck(acked uint32, srtt time.Duration, now vclock.Time)
	// OnEnterRecovery responds to loss detected by duplicate ACKs, with
	// flight bytes outstanding: cut ssthresh and set cwnd for the
	// recovery episode.
	OnEnterRecovery(flight uint32, now vclock.Time)
	// OnPartialAck processes an ACK that advanced sndUna by acked bytes
	// but left the recovery episode open (RFC 6582): deflate the window
	// so retransmissions drain the queue without a burst.
	OnPartialAck(acked uint32)
	// OnExitRecovery ends a recovery episode: settle cwnd for the
	// post-recovery steady state.
	OnExitRecovery(now vclock.Time)
	// OnRTO responds to a retransmission timeout with flight bytes
	// outstanding: collapse to one segment and restart discovery.
	OnRTO(flight uint32)
}

// newController builds the configured controller. Names are validated in
// NewStack, so the default arm is unreachable from user code.
func newController(name string, mss, initialCwnd uint32) CongestionController {
	switch name {
	case "", "reno":
		return &renoCC{mss: mss, cwnd: initialCwnd, ssthresh: 1 << 30}
	case "cubic":
		return &cubicCC{mss: mss, cwnd: initialCwnd, ssthresh: 1 << 30}
	}
	panic("tcp: unknown congestion controller " + name)
}

// --- Reno (RFC 5681) ---------------------------------------------------------

// renoCC is standard AIMD: slow start below ssthresh, one MSS per cwnd of
// ACKs above it, multiplicative decrease on loss. The arithmetic is the
// pre-extraction inline code verbatim — integer division and all — because
// the legacy goldens pin it.
type renoCC struct {
	mss, cwnd, ssthresh uint32
}

func (r *renoCC) Name() string     { return "reno" }
func (r *renoCC) Cwnd() uint32     { return r.cwnd }
func (r *renoCC) Ssthresh() uint32 { return r.ssthresh }

func (r *renoCC) OnAck(acked uint32, _ time.Duration, _ vclock.Time) {
	if r.cwnd < r.ssthresh {
		r.cwnd += r.mss // slow start
	} else if r.cwnd > 0 {
		r.cwnd += r.mss * r.mss / r.cwnd // congestion avoidance
		if r.cwnd < r.mss {
			r.cwnd = r.mss
		}
	}
}

// halfFlight is RFC 5681's multiplicative decrease: half the flight,
// floored at two segments.
func (r *renoCC) halfFlight(flight uint32) uint32 {
	half := flight / 2
	if half < 2*r.mss {
		half = 2 * r.mss
	}
	return half
}

func (r *renoCC) OnEnterRecovery(flight uint32, _ vclock.Time) {
	r.ssthresh = r.halfFlight(flight)
	r.cwnd = r.ssthresh
}

func (r *renoCC) OnPartialAck(acked uint32) {
	// RFC 6582 deflation: take out what the partial ACK drained, put one
	// MSS back so the next hole's retransmission fits.
	if acked >= r.cwnd {
		r.cwnd = 0
	} else {
		r.cwnd -= acked
	}
	r.cwnd += r.mss
	if r.cwnd < r.mss {
		r.cwnd = r.mss
	}
}

func (r *renoCC) OnExitRecovery(_ vclock.Time) { r.cwnd = r.ssthresh }

func (r *renoCC) OnRTO(flight uint32) {
	r.ssthresh = r.halfFlight(flight)
	r.cwnd = r.mss
}

// --- CUBIC (RFC 8312) --------------------------------------------------------

const (
	cubicBeta = 0.7 // multiplicative decrease factor
	cubicC    = 0.4 // scaling constant of the cubic growth function
)

// cubicCC grows the window as W(t) = C·(t−K)³ + Wmax, t counted in real
// (here: virtual) seconds since the recovery that set Wmax — concave up to
// the old maximum, convex probing beyond it — which makes growth depend on
// time between losses rather than RTT. Windows in the growth law are in
// MSS units (as in the RFC); cwnd itself stays in bytes.
//
// The TCP-friendly region (RFC 8312 §4.2) estimates the window a Reno
// flow would have reached since the epoch started — W_est grows by
// 3(1−β)/(1+β) MSS per SRTT — and never lets the cubic law undershoot
// it, which is what keeps CUBIC competitive on the short, low-BDP paths
// where the cubic term alone is nearly flat. In the flat region with no
// RTT sample yet the window creeps by MSS/100 per ACK so it still
// probes. All arithmetic is float64, which Go evaluates identically on
// every platform, so traces stay byte-reproducible.
type cubicCC struct {
	mss, cwnd, ssthresh uint32
	wMax                float64 // window before the last decrease, MSS units
	wLastMax            float64 // for fast convergence (RFC 8312 §4.6)
	k                   float64 // seconds until W(t) regains wMax
	wEst                float64 // Reno-equivalent window estimate, MSS units
	frac                float64 // sub-MSS growth credit, bytes (see grow)
	epoch               vclock.Time
	hasEpoch            bool
}

// grow credits b bytes of window growth but only moves cwnd in whole-MSS
// steps, banking the remainder. The cubic and W_est laws hand out a few
// bytes per ACK; applying them directly would open the send window in
// slivers and shatter the stream into tiny segments (the sender transmits
// whatever the window allows). Real implementations keep cwnd integral in
// segments for exactly this reason (Linux's snd_cwnd_cnt).
func (c *cubicCC) grow(b float64) {
	c.frac += b
	for c.frac >= float64(c.mss) {
		c.cwnd += c.mss
		c.frac -= float64(c.mss)
	}
}

func (c *cubicCC) Name() string     { return "cubic" }
func (c *cubicCC) Cwnd() uint32     { return c.cwnd }
func (c *cubicCC) Ssthresh() uint32 { return c.ssthresh }

func (c *cubicCC) OnAck(acked uint32, srtt time.Duration, now vclock.Time) {
	if c.cwnd < c.ssthresh {
		c.cwnd += c.mss // slow start, same as Reno
		return
	}
	mss := float64(c.mss)
	w := float64(c.cwnd) / mss
	if !c.hasEpoch {
		// First congestion-avoidance ACK since the last loss (or ever):
		// start the cubic epoch here.
		c.hasEpoch = true
		c.epoch = now
		c.wEst = w
		c.frac = 0
		if c.wMax < w {
			c.wMax = w // no decrease yet: probe convexly from the current window
		}
		c.k = math.Cbrt((c.wMax - w) / cubicC)
	}
	t := float64(now-c.epoch) / float64(1e9)
	rtt := float64(srtt) / float64(1e9)
	// W_cubic one RTT ahead (RFC 8312 §4.1): the per-ACK increment aims
	// at where the cubic wants to be after this round trip, not where it
	// is now. Before the first RTT sample rtt is 0 and this degrades to
	// the instantaneous cubic.
	ta := t + rtt
	target := cubicC*(ta-c.k)*(ta-c.k)*(ta-c.k) + c.wMax
	if limit := 1.5 * w; target > limit {
		target = limit // clamp the per-RTT burst (RFC 8312 §4.1's 1.5x rule)
	}
	// TCP-friendly region (RFC 8312 §4.2 as amended by RFC 9438 §4.3):
	// W_est tracks the window an AIMD flow with CUBIC's β would have
	// built since the epoch — α = 3(1−β)/(1+β) MSS per window of ACKs
	// while below W_max (the gentler cut pays for the slower climb), then
	// 1 MSS per window, plain Reno avoidance, once the old maximum is
	// regained. The update is incremental per ACK, like Reno's own law,
	// so it needs no RTT sample and — unlike the closed-form
	// W_est(t) = W + α·t/RTT — cannot retroactively shrink when queueing
	// inflates SRTT mid-epoch. While the cubic law sits below the
	// estimate, run at the estimate.
	alpha := 1.0
	if c.wEst < c.wMax {
		alpha = 3 * (1 - cubicBeta) / (1 + cubicBeta)
	}
	c.wEst += alpha * float64(acked) / float64(c.cwnd)
	wCur := cubicC*(t-c.k)*(t-c.k)*(t-c.k) + c.wMax
	if wCur < c.wEst {
		if t := c.wEst * mss; t > float64(c.cwnd)+c.frac {
			c.grow(t - float64(c.cwnd) - c.frac)
		} else {
			c.grow(float64(c.mss/100 + 1))
		}
		return
	}
	if target > w {
		c.grow((target - w) / w * mss)
	} else {
		c.grow(float64(c.mss/100 + 1)) // flat region near wMax: keep probing slowly
	}
}

// decrease applies the multiplicative cut and fast convergence, shared by
// the dupack and RTO paths. The cut is taken from the bytes actually in
// flight, not from cwnd. RFC 8312 writes it as cwnd·β because cwnd tracks
// flight in steady state, but here the two diverge in both directions:
// right after an RTO cwnd sits at one MSS under a still-full pipe
// (cutting from it would stall retransmissions into serial timeouts), and
// on a receiver-limited flow the cubic law balloons cwnd far past the
// usable window (cutting from it would open a recovery window several
// times the pipe and dump a queue-filling burst). Flight is the flow's
// true operating point either way — the same rule Reno's half-flight cut
// uses.
func (c *cubicCC) decrease(flight uint32) uint32 {
	base := flight
	w := float64(base) / float64(c.mss)
	if w < c.wLastMax {
		// Fast convergence: the window never regained its old peak, so
		// release capacity to newer flows by remembering less than we had.
		c.wLastMax = w
		c.wMax = w * (1 + cubicBeta) / 2
	} else {
		c.wLastMax = w
		c.wMax = w
	}
	c.hasEpoch = false
	c.frac = 0
	ss := uint32(float64(base) * cubicBeta)
	if ss < 2*c.mss {
		ss = 2 * c.mss
	}
	return ss
}

func (c *cubicCC) OnEnterRecovery(flight uint32, _ vclock.Time) {
	c.ssthresh = c.decrease(flight)
	// Conservative reduction during the episode itself (the spirit of RFC
	// 6937): the recovery window opens at half the flight — what the pipe
	// is known to sustain — rather than jumping straight to β·flight,
	// which would burst retransmissions and new data into an
	// already-dropping path. cwnd settles at ssthresh (= β·flight, the
	// CUBIC cut) when the episode exits.
	c.cwnd = flight / 2
	if c.cwnd < 2*c.mss {
		c.cwnd = 2 * c.mss
	}
}

func (c *cubicCC) OnPartialAck(acked uint32) {
	// Same deflation as NewReno: the cubic law resumes once recovery ends.
	if acked >= c.cwnd {
		c.cwnd = 0
	} else {
		c.cwnd -= acked
	}
	c.cwnd += c.mss
	if c.cwnd < c.mss {
		c.cwnd = c.mss
	}
}

func (c *cubicCC) OnExitRecovery(_ vclock.Time) { c.cwnd = c.ssthresh }

func (c *cubicCC) OnRTO(flight uint32) {
	c.ssthresh = c.decrease(flight)
	c.cwnd = c.mss
}
