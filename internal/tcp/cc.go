package tcp

import (
	"math"

	"hybrid/internal/vclock"
)

// CongestionController is the pluggable congestion-control policy behind a
// connection's send window. The connection owns all loss *detection* —
// duplicate-ACK counting, the SACK scoreboard, the retransmission timer —
// and tells the controller what happened; the controller owns only the
// cwnd/ssthresh arithmetic. All methods run under the stack lock.
//
// The contract mirrors the legacy inline code exactly, so the "reno"
// implementation driven from the same call sites is byte-for-byte
// indistinguishable from the pre-extraction stack:
//
//   - OnAck fires for every ACK that advances sndUna while the connection
//     is not in recovery (the legacy stack had no recovery state, so for
//     it that means every advancing ACK).
//   - OnEnterRecovery fires at the third duplicate ACK, before the fast
//     retransmit, with the flight size at that moment.
//   - OnPartialAck and OnExitRecovery fire only on the NewReno/SACK
//     recovery path (never for a legacy-configured connection).
//   - OnRTO fires on every retransmission-timer expiry with the flight
//     size at that moment.
type CongestionController interface {
	// Name identifies the algorithm ("reno", "cubic").
	Name() string
	// Cwnd is the current congestion window in bytes.
	Cwnd() uint32
	// Ssthresh is the slow-start threshold in bytes.
	Ssthresh() uint32
	// OnAck processes an ACK that advanced sndUna by acked bytes, outside
	// recovery: grow the window (slow start below ssthresh, the
	// algorithm's avoidance law above it).
	OnAck(acked uint32, now vclock.Time)
	// OnEnterRecovery responds to loss detected by duplicate ACKs, with
	// flight bytes outstanding: cut ssthresh and set cwnd for the
	// recovery episode.
	OnEnterRecovery(flight uint32, now vclock.Time)
	// OnPartialAck processes an ACK that advanced sndUna by acked bytes
	// but left the recovery episode open (RFC 6582): deflate the window
	// so retransmissions drain the queue without a burst.
	OnPartialAck(acked uint32)
	// OnExitRecovery ends a recovery episode: settle cwnd for the
	// post-recovery steady state.
	OnExitRecovery(now vclock.Time)
	// OnRTO responds to a retransmission timeout with flight bytes
	// outstanding: collapse to one segment and restart discovery.
	OnRTO(flight uint32)
}

// newController builds the configured controller. Names are validated in
// NewStack, so the default arm is unreachable from user code.
func newController(name string, mss, initialCwnd uint32) CongestionController {
	switch name {
	case "", "reno":
		return &renoCC{mss: mss, cwnd: initialCwnd, ssthresh: 1 << 30}
	case "cubic":
		return &cubicCC{mss: mss, cwnd: initialCwnd, ssthresh: 1 << 30}
	}
	panic("tcp: unknown congestion controller " + name)
}

// --- Reno (RFC 5681) ---------------------------------------------------------

// renoCC is standard AIMD: slow start below ssthresh, one MSS per cwnd of
// ACKs above it, multiplicative decrease on loss. The arithmetic is the
// pre-extraction inline code verbatim — integer division and all — because
// the legacy goldens pin it.
type renoCC struct {
	mss, cwnd, ssthresh uint32
}

func (r *renoCC) Name() string     { return "reno" }
func (r *renoCC) Cwnd() uint32     { return r.cwnd }
func (r *renoCC) Ssthresh() uint32 { return r.ssthresh }

func (r *renoCC) OnAck(acked uint32, _ vclock.Time) {
	if r.cwnd < r.ssthresh {
		r.cwnd += r.mss // slow start
	} else if r.cwnd > 0 {
		r.cwnd += r.mss * r.mss / r.cwnd // congestion avoidance
		if r.cwnd < r.mss {
			r.cwnd = r.mss
		}
	}
}

// halfFlight is RFC 5681's multiplicative decrease: half the flight,
// floored at two segments.
func (r *renoCC) halfFlight(flight uint32) uint32 {
	half := flight / 2
	if half < 2*r.mss {
		half = 2 * r.mss
	}
	return half
}

func (r *renoCC) OnEnterRecovery(flight uint32, _ vclock.Time) {
	r.ssthresh = r.halfFlight(flight)
	r.cwnd = r.ssthresh
}

func (r *renoCC) OnPartialAck(acked uint32) {
	// RFC 6582 deflation: take out what the partial ACK drained, put one
	// MSS back so the next hole's retransmission fits.
	if acked >= r.cwnd {
		r.cwnd = 0
	} else {
		r.cwnd -= acked
	}
	r.cwnd += r.mss
	if r.cwnd < r.mss {
		r.cwnd = r.mss
	}
}

func (r *renoCC) OnExitRecovery(_ vclock.Time) { r.cwnd = r.ssthresh }

func (r *renoCC) OnRTO(flight uint32) {
	r.ssthresh = r.halfFlight(flight)
	r.cwnd = r.mss
}

// --- CUBIC (RFC 8312) --------------------------------------------------------

const (
	cubicBeta = 0.7 // multiplicative decrease factor
	cubicC    = 0.4 // scaling constant of the cubic growth function
)

// cubicCC grows the window as W(t) = C·(t−K)³ + Wmax, t counted in real
// (here: virtual) seconds since the recovery that set Wmax — concave up to
// the old maximum, convex probing beyond it — which makes growth depend on
// time between losses rather than RTT. Windows in the growth law are in
// MSS units (as in the RFC); cwnd itself stays in bytes.
//
// Deviation from RFC 8312, documented in DESIGN.md: the TCP-friendly
// region (tracking an estimated Reno window, §4.2) is omitted because it
// needs an RTT term the controller deliberately does not receive; in its
// place the flat region near Wmax creeps by MSS/100 per ACK so the window
// still probes. All arithmetic is float64, which Go evaluates identically
// on every platform, so traces stay byte-reproducible.
type cubicCC struct {
	mss, cwnd, ssthresh uint32
	wMax                float64 // window before the last decrease, MSS units
	wLastMax            float64 // for fast convergence (RFC 8312 §4.6)
	k                   float64 // seconds until W(t) regains wMax
	epoch               vclock.Time
	hasEpoch            bool
}

func (c *cubicCC) Name() string     { return "cubic" }
func (c *cubicCC) Cwnd() uint32     { return c.cwnd }
func (c *cubicCC) Ssthresh() uint32 { return c.ssthresh }

func (c *cubicCC) OnAck(acked uint32, now vclock.Time) {
	if c.cwnd < c.ssthresh {
		c.cwnd += c.mss // slow start, same as Reno
		return
	}
	mss := float64(c.mss)
	w := float64(c.cwnd) / mss
	if !c.hasEpoch {
		// First congestion-avoidance ACK since the last loss (or ever):
		// start the cubic epoch here.
		c.hasEpoch = true
		c.epoch = now
		if c.wMax < w {
			c.wMax = w // no decrease yet: probe convexly from the current window
		}
		c.k = math.Cbrt((c.wMax - w) / cubicC)
	}
	t := float64(now-c.epoch) / float64(1e9)
	target := cubicC*(t-c.k)*(t-c.k)*(t-c.k) + c.wMax
	if limit := 1.5 * w; target > limit {
		target = limit // clamp the per-RTT burst (RFC 8312 §4.1's 1.5x rule)
	}
	if target > w {
		c.cwnd += uint32((target - w) / w * mss)
	} else {
		c.cwnd += c.mss/100 + 1 // flat region near wMax: keep probing slowly
	}
}

// decrease applies the multiplicative cut and fast convergence, shared by
// the dupack and RTO paths.
func (c *cubicCC) decrease() uint32 {
	w := float64(c.cwnd) / float64(c.mss)
	if w < c.wLastMax {
		// Fast convergence: the window never regained its old peak, so
		// release capacity to newer flows by remembering less than we had.
		c.wLastMax = w
		c.wMax = w * (1 + cubicBeta) / 2
	} else {
		c.wLastMax = w
		c.wMax = w
	}
	c.hasEpoch = false
	ss := uint32(float64(c.cwnd) * cubicBeta)
	if ss < 2*c.mss {
		ss = 2 * c.mss
	}
	return ss
}

func (c *cubicCC) OnEnterRecovery(_ uint32, _ vclock.Time) {
	c.ssthresh = c.decrease()
	c.cwnd = c.ssthresh
}

func (c *cubicCC) OnPartialAck(acked uint32) {
	// Same deflation as NewReno: the cubic law resumes once recovery ends.
	if acked >= c.cwnd {
		c.cwnd = 0
	} else {
		c.cwnd -= acked
	}
	c.cwnd += c.mss
	if c.cwnd < c.mss {
		c.cwnd = c.mss
	}
}

func (c *cubicCC) OnExitRecovery(_ vclock.Time) { c.cwnd = c.ssthresh }

func (c *cubicCC) OnRTO(_ uint32) {
	c.ssthresh = c.decrease()
	c.cwnd = c.mss
}
