// Package iovec implements I/O vectors: a logical byte string represented
// as a chain of shared slices, so data can be appended, split, and queued
// through protocol layers without copying. The paper's application-level
// TCP stack "is a zero-copy implementation; it uses IO vectors to
// represent data buffers indirectly" (§5.2) — internal/tcp's send path
// carries these vectors from the user's write to the wire encoder.
package iovec

// Vec is an immutable view of a sequence of bytes held in one or more
// underlying segments. Operations share the segments; the bytes must not
// be mutated while any Vec referencing them is live.
type Vec struct {
	segs   [][]byte
	length int
}

// New builds a Vec sharing the given segments (empty ones are dropped).
func New(segs ...[]byte) Vec {
	v := Vec{}
	for _, s := range segs {
		if len(s) > 0 {
			v.segs = append(v.segs, s)
			v.length += len(s)
		}
	}
	return v
}

// FromBytes wraps one slice without copying.
func FromBytes(b []byte) Vec { return New(b) }

// Len reports the logical length in bytes.
func (v Vec) Len() int { return v.length }

// Empty reports whether the vector has no bytes.
func (v Vec) Empty() bool { return v.length == 0 }

// Append returns a vector with b's bytes (shared, not copied) after v's.
func (v Vec) Append(b []byte) Vec {
	if len(b) == 0 {
		return v
	}
	out := Vec{length: v.length + len(b)}
	out.segs = make([][]byte, 0, len(v.segs)+1)
	out.segs = append(out.segs, v.segs...)
	out.segs = append(out.segs, b)
	return out
}

// Concat returns the concatenation of v and w, sharing both.
func (v Vec) Concat(w Vec) Vec {
	if w.length == 0 {
		return v
	}
	if v.length == 0 {
		return w
	}
	out := Vec{length: v.length + w.length}
	out.segs = make([][]byte, 0, len(v.segs)+len(w.segs))
	out.segs = append(out.segs, v.segs...)
	out.segs = append(out.segs, w.segs...)
	return out
}

// Slice returns the byte range [from, to) as a vector sharing the same
// segments. It panics on an invalid range, like slicing.
func (v Vec) Slice(from, to int) Vec {
	if from < 0 || to < from || to > v.length {
		panic("iovec: slice range out of bounds")
	}
	if from == to {
		return Vec{}
	}
	out := Vec{length: to - from}
	skip := from
	need := to - from
	for _, s := range v.segs {
		if skip >= len(s) {
			skip -= len(s)
			continue
		}
		take := len(s) - skip
		if take > need {
			take = need
		}
		out.segs = append(out.segs, s[skip:skip+take])
		need -= take
		skip = 0
		if need == 0 {
			break
		}
	}
	return out
}

// Drop returns the vector without its first n bytes.
func (v Vec) Drop(n int) Vec { return v.Slice(n, v.length) }

// Take returns the vector's first n bytes.
func (v Vec) Take(n int) Vec { return v.Slice(0, n) }

// CopyTo copies up to len(p) bytes into p, returning the count. This is
// the single copy at the wire (or user) boundary.
func (v Vec) CopyTo(p []byte) int {
	n := 0
	for _, s := range v.segs {
		if n >= len(p) {
			break
		}
		n += copy(p[n:], s)
	}
	return n
}

// Bytes materializes the vector into a fresh contiguous slice.
func (v Vec) Bytes() []byte {
	out := make([]byte, v.length)
	v.CopyTo(out)
	return out
}

// At returns the byte at index i.
func (v Vec) At(i int) byte {
	if i < 0 || i >= v.length {
		panic("iovec: index out of bounds")
	}
	for _, s := range v.segs {
		if i < len(s) {
			return s[i]
		}
		i -= len(s)
	}
	panic("iovec: corrupt vector")
}

// Segments reports the number of underlying segments (diagnostics: a
// zero-copy path keeps segment counts proportional to writes, not bytes).
func (v Vec) Segments() int { return len(v.segs) }
