// Package iovec implements I/O vectors: a logical byte string represented
// as a chain of shared slices, so data can be appended, split, and queued
// through protocol layers without copying. The paper's application-level
// TCP stack "is a zero-copy implementation; it uses IO vectors to
// represent data buffers indirectly" (§5.2) — internal/tcp's send path
// carries these vectors from the user's write to the wire encoder.
package iovec

// Vec is an immutable view of a sequence of bytes held in one or more
// underlying segments. Operations share the segments; the bytes must not
// be mutated while any Vec referencing them is live.
//
// A vector of exactly one segment is stored inline (single), so the
// dominant cases — wrapping one write buffer, or slicing a window out of
// one segment on the retransmission path — build and split vectors
// without allocating a segment list.
type Vec struct {
	single []byte   // the only segment, when segs is nil
	segs   [][]byte // two or more segments, nil otherwise
	length int
}

// New builds a Vec sharing the given segments (empty ones are dropped).
func New(segs ...[]byte) Vec {
	v := Vec{}
	for _, s := range segs {
		if len(s) > 0 {
			v = v.Append(s)
		}
	}
	return v
}

// FromBytes wraps one slice without copying (and without allocating).
func FromBytes(b []byte) Vec {
	if len(b) == 0 {
		return Vec{}
	}
	return Vec{single: b, length: len(b)}
}

// Len reports the logical length in bytes.
func (v Vec) Len() int { return v.length }

// Empty reports whether the vector has no bytes.
func (v Vec) Empty() bool { return v.length == 0 }

// Append returns a vector with b's bytes (shared, not copied) after v's.
func (v Vec) Append(b []byte) Vec {
	if len(b) == 0 {
		return v
	}
	if v.length == 0 {
		return Vec{single: b, length: len(b)}
	}
	out := Vec{length: v.length + len(b)}
	if v.segs == nil {
		out.segs = [][]byte{v.single, b}
		return out
	}
	out.segs = make([][]byte, 0, len(v.segs)+1)
	out.segs = append(out.segs, v.segs...)
	out.segs = append(out.segs, b)
	return out
}

// Concat returns the concatenation of v and w, sharing both.
func (v Vec) Concat(w Vec) Vec {
	if w.length == 0 {
		return v
	}
	if v.length == 0 {
		return w
	}
	if w.segs == nil {
		return v.Append(w.single)
	}
	out := Vec{length: v.length + w.length}
	out.segs = make([][]byte, 0, v.Segments()+len(w.segs))
	if v.segs == nil {
		out.segs = append(out.segs, v.single)
	} else {
		out.segs = append(out.segs, v.segs...)
	}
	out.segs = append(out.segs, w.segs...)
	return out
}

// Slice returns the byte range [from, to) as a vector sharing the same
// segments. It panics on an invalid range, like slicing. A range that
// falls within one underlying segment — every slice of a single-segment
// vector, and any narrow window of a chain — is returned inline, without
// allocating.
func (v Vec) Slice(from, to int) Vec {
	if from < 0 || to < from || to > v.length {
		panic("iovec: slice range out of bounds")
	}
	if from == to {
		return Vec{}
	}
	if v.segs == nil {
		return Vec{single: v.single[from:to], length: to - from}
	}
	skip := from
	need := to - from
	// Find the first spanned segment; if the range fits inside it the
	// result is a single-segment view.
	i := 0
	for ; i < len(v.segs); i++ {
		if skip < len(v.segs[i]) {
			break
		}
		skip -= len(v.segs[i])
	}
	if need <= len(v.segs[i])-skip {
		return Vec{single: v.segs[i][skip : skip+need], length: need}
	}
	out := Vec{length: need}
	out.segs = make([][]byte, 0, len(v.segs)-i)
	for ; i < len(v.segs); i++ {
		s := v.segs[i]
		take := len(s) - skip
		if take > need {
			take = need
		}
		out.segs = append(out.segs, s[skip:skip+take])
		need -= take
		skip = 0
		if need == 0 {
			break
		}
	}
	return out
}

// Drop returns the vector without its first n bytes.
func (v Vec) Drop(n int) Vec { return v.Slice(n, v.length) }

// Take returns the vector's first n bytes.
func (v Vec) Take(n int) Vec { return v.Slice(0, n) }

// CopyTo copies up to len(p) bytes into p, returning the count. This is
// the single copy at the wire (or user) boundary.
func (v Vec) CopyTo(p []byte) int {
	if v.segs == nil {
		return copy(p, v.single)
	}
	n := 0
	for _, s := range v.segs {
		if n >= len(p) {
			break
		}
		n += copy(p[n:], s)
	}
	return n
}

// Bytes materializes the vector into a fresh contiguous slice.
func (v Vec) Bytes() []byte {
	out := make([]byte, v.length)
	v.CopyTo(out)
	return out
}

// At returns the byte at index i.
func (v Vec) At(i int) byte {
	if i < 0 || i >= v.length {
		panic("iovec: index out of bounds")
	}
	if v.segs == nil {
		return v.single[i]
	}
	for _, s := range v.segs {
		if i < len(s) {
			return s[i]
		}
		i -= len(s)
	}
	panic("iovec: corrupt vector")
}

// Segments reports the number of underlying segments (diagnostics: a
// zero-copy path keeps segment counts proportional to writes, not bytes).
func (v Vec) Segments() int {
	if v.segs == nil {
		if v.length == 0 {
			return 0
		}
		return 1
	}
	return len(v.segs)
}
