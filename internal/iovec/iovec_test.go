package iovec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewDropsEmptySegments(t *testing.T) {
	v := New([]byte("ab"), nil, []byte(""), []byte("cd"))
	if v.Len() != 4 || v.Segments() != 2 {
		t.Fatalf("len=%d segs=%d", v.Len(), v.Segments())
	}
	if string(v.Bytes()) != "abcd" {
		t.Fatalf("bytes = %q", v.Bytes())
	}
}

func TestAppendSharesNotCopies(t *testing.T) {
	buf := []byte("hello")
	v := Vec{}.Append(buf)
	buf[0] = 'J'
	if string(v.Bytes()) != "Jello" {
		t.Fatal("Append copied instead of sharing")
	}
}

func TestSlice(t *testing.T) {
	v := New([]byte("abc"), []byte("defg"), []byte("hi"))
	cases := []struct {
		from, to int
		want     string
	}{
		{0, 9, "abcdefghi"},
		{0, 0, ""},
		{2, 5, "cde"},
		{3, 7, "defg"},
		{8, 9, "i"},
		{4, 4, ""},
	}
	for _, c := range cases {
		got := string(v.Slice(c.from, c.to).Bytes())
		if got != c.want {
			t.Fatalf("Slice(%d,%d) = %q, want %q", c.from, c.to, got, c.want)
		}
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New([]byte("ab")).Slice(0, 3)
}

func TestDropTake(t *testing.T) {
	v := New([]byte("abcdef"))
	if string(v.Drop(2).Bytes()) != "cdef" || string(v.Take(3).Bytes()) != "abc" {
		t.Fatal("Drop/Take wrong")
	}
}

func TestConcat(t *testing.T) {
	a := New([]byte("ab"))
	b := New([]byte("cd"), []byte("ef"))
	if got := string(a.Concat(b).Bytes()); got != "abcdef" {
		t.Fatalf("Concat = %q", got)
	}
	if got := a.Concat(Vec{}); got.Len() != 2 {
		t.Fatal("Concat with empty changed length")
	}
	if got := (Vec{}).Concat(b); got.Len() != 4 {
		t.Fatal("empty Concat wrong")
	}
}

func TestAt(t *testing.T) {
	v := New([]byte("ab"), []byte("cd"))
	for i, want := range []byte("abcd") {
		if v.At(i) != want {
			t.Fatalf("At(%d) = %c", i, v.At(i))
		}
	}
}

func TestCopyToShortBuffer(t *testing.T) {
	v := New([]byte("abcdef"))
	p := make([]byte, 3)
	if n := v.CopyTo(p); n != 3 || string(p) != "abc" {
		t.Fatalf("CopyTo = %d %q", n, p)
	}
}

func TestSliceIsZeroCopy(t *testing.T) {
	base := []byte("0123456789")
	v := New(base).Slice(2, 8)
	base[3] = 'X'
	if string(v.Bytes()) != "2X4567" {
		t.Fatal("Slice copied instead of sharing")
	}
}

// Property: any sequence of appends followed by any valid slice equals
// the same operations on a flat []byte.
func TestVecMatchesFlatModel(t *testing.T) {
	check := func(chunks [][]byte, a, b uint8) bool {
		v := Vec{}
		var flat []byte
		for _, c := range chunks {
			v = v.Append(c)
			flat = append(flat, c...)
		}
		if v.Len() != len(flat) {
			return false
		}
		if !bytes.Equal(v.Bytes(), flat) {
			return false
		}
		if len(flat) == 0 {
			return true
		}
		from := int(a) % len(flat)
		to := from + int(b)%(len(flat)-from+1)
		return bytes.Equal(v.Slice(from, to).Bytes(), flat[from:to])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
