package iovec

import (
	"bytes"
	"testing"
)

// FuzzVecModel drives a Vec and a flat []byte reference model through
// the same operation sequence decoded from the fuzz input: every
// observation (Len, Bytes, At, CopyTo) must agree. The Vec is rebuilt
// from multiple segments, so segment-boundary arithmetic in
// Slice/Drop/Take/Concat is what's actually under test.
func FuzzVecModel(f *testing.F) {
	f.Add([]byte("hello world"), []byte{0, 3, 1, 2, 2, 5})
	f.Add([]byte("abcdefghij"), []byte{1, 9, 0, 1, 2, 2, 1, 3})
	f.Add([]byte(""), []byte{0, 0, 1, 0})
	f.Add([]byte("xyz"), []byte{3, 1, 3, 2, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte, script []byte) {
		if len(data) > 1<<16 {
			t.Skip("cap the model size")
		}
		// Build the vector from segments split wherever the script says,
		// so the same logical bytes cross many segment boundaries.
		v := Vec{}
		model := append([]byte(nil), data...)
		rest := data
		for i := 0; len(rest) > 0; i++ {
			cut := 1
			if i < len(script) {
				cut = 1 + int(script[i])%16
			}
			if cut > len(rest) {
				cut = len(rest)
			}
			v = v.Append(rest[:cut])
			rest = rest[cut:]
		}

		check := func(op string) {
			t.Helper()
			if v.Len() != len(model) {
				t.Fatalf("%s: Len=%d model=%d", op, v.Len(), len(model))
			}
			if !bytes.Equal(v.Bytes(), model) {
				t.Fatalf("%s: Bytes()=%q model=%q", op, v.Bytes(), model)
			}
			if v.Empty() != (len(model) == 0) {
				t.Fatalf("%s: Empty()=%v with %d bytes", op, v.Empty(), len(model))
			}
			if len(model) > 0 {
				i := len(model) / 2
				if v.At(i) != model[i] {
					t.Fatalf("%s: At(%d)=%q model=%q", op, i, v.At(i), model[i])
				}
			}
			short := make([]byte, len(model)/2+1)
			n := v.CopyTo(short)
			want := len(short)
			if want > len(model) {
				want = len(model)
			}
			if n != want || !bytes.Equal(short[:n], model[:n]) {
				t.Fatalf("%s: CopyTo copied %d, want prefix %q", op, n, model[:want])
			}
		}
		check("build")

		// Replay the script as operations over both representations.
		for i := 0; i+1 < len(script); i += 2 {
			opcode, arg := script[i]%4, int(script[i+1])
			switch opcode {
			case 0: // Drop(n)
				n := 0
				if len(model) > 0 {
					n = arg % (len(model) + 1)
				}
				v = v.Drop(n)
				model = model[n:]
				check("drop")
			case 1: // Take(n)
				n := 0
				if len(model) > 0 {
					n = arg % (len(model) + 1)
				}
				v = v.Take(n)
				model = model[:n]
				check("take")
			case 2: // Slice(from, to) around a midpoint
				if len(model) == 0 {
					continue
				}
				from := arg % (len(model) + 1)
				to := from + (arg*7)%(len(model)-from+1)
				v = v.Slice(from, to)
				model = model[from:to]
				check("slice")
			case 3: // Concat with a fresh tail built from the arg
				tail := bytes.Repeat([]byte{byte(arg)}, arg%9)
				v = v.Concat(New(tail))
				model = append(model, tail...)
				check("concat")
			}
		}
	})
}

// FuzzVecSliceBounds: out-of-range slices must panic (like Go slicing)
// and in-range slices must never panic, regardless of segmentation.
func FuzzVecSliceBounds(f *testing.F) {
	f.Add([]byte("abcdef"), 2, 0, 7)
	f.Add([]byte("abcdef"), 1, -1, 3)
	f.Add([]byte(""), 1, 0, 0)
	f.Fuzz(func(t *testing.T, data []byte, seg, from, to int) {
		if len(data) > 1<<12 {
			t.Skip()
		}
		if seg < 1 {
			seg = 1
		}
		v := Vec{}
		for off := 0; off < len(data); off += seg {
			end := off + seg
			if end > len(data) {
				end = len(data)
			}
			v = v.Append(data[off:end])
		}
		valid := from >= 0 && from <= to && to <= len(data)
		defer func() {
			r := recover()
			if valid && r != nil {
				t.Fatalf("Slice(%d,%d) of %d bytes panicked: %v", from, to, len(data), r)
			}
			if !valid && r == nil {
				t.Fatalf("Slice(%d,%d) of %d bytes did not panic", from, to, len(data))
			}
		}()
		got := v.Slice(from, to)
		if !bytes.Equal(got.Bytes(), data[from:to]) {
			t.Fatalf("Slice(%d,%d) = %q, want %q", from, to, got.Bytes(), data[from:to])
		}
	})
}
