// Package stm implements software transactional memory in the style of
// GHC's STM, which the paper's monadic threads use for nonblocking
// synchronization (§4.7): "monadic threads can simply use sys_nbio to
// submit STM computations as IO operations."
//
// The implementation is a TL2-style versioned STM: a global version clock,
// per-TVar version stamps, optimistic reads validated at access and commit
// time, and write locking in a canonical order at commit. Beyond the
// paper's usage, Retry is supported as a *blocking* operation integrated
// with the hybrid scheduler: a retrying transaction parks its monadic
// thread and is rewoken when any TVar in its read set is committed to —
// the scheduler-extension route the paper describes for blocking
// synchronization.
package stm

import (
	"sort"
	"sync"
	"sync/atomic"

	"hybrid/internal/core"
)

// globalClock is the TL2 version clock, shared by all TVars.
var globalClock atomic.Uint64

// tvar is the untyped core of a TVar, letting transactions hold
// heterogeneous read and write sets.
type tvar struct {
	id      uint64
	mu      sync.Mutex
	version uint64
	value   any
	waiters []*waiter
}

var nextTVarID atomic.Uint64

// waiter is a parked retry-er; fire-once.
type waiter struct {
	fired atomic.Bool
	wake  func()
}

// TVar is a transactional variable holding a value of type A.
type TVar[A any] struct{ v tvar }

// NewTVar creates a TVar holding x.
func NewTVar[A any](x A) *TVar[A] {
	t := &TVar[A]{}
	t.v.id = nextTVarID.Add(1)
	t.v.value = x
	return t
}

// Tx is an in-flight transaction. It must only be used from the function
// passed to Atomically (or Run), and never escapes it.
type Tx struct {
	readVersion uint64
	reads       map[*tvar]uint64
	writes      map[*tvar]any
	order       []*tvar // write-set in first-write order (rebuilt sorted at commit)
}

// control-flow signals, recovered inside the attempt loop.
type retrySignal struct{}
type conflictSignal struct{}

// Retry abandons the transaction and blocks until another transaction
// commits to any TVar this one has read (GHC's retry).
func (tx *Tx) Retry() { panic(retrySignal{}) }

// Read reads v inside the transaction.
func Read[A any](tx *Tx, v *TVar[A]) A {
	tv := &v.v
	if w, ok := tx.writes[tv]; ok {
		return w.(A)
	}
	tv.mu.Lock()
	val := tv.value
	ver := tv.version
	tv.mu.Unlock()
	if ver > tx.readVersion {
		// The var changed after this transaction began: the snapshot is
		// no longer consistent; abort and re-run.
		panic(conflictSignal{})
	}
	if prev, seen := tx.reads[tv]; seen && prev != ver {
		panic(conflictSignal{})
	}
	tx.reads[tv] = ver
	return val.(A)
}

// Write writes v inside the transaction (buffered until commit).
func Write[A any](tx *Tx, v *TVar[A], x A) {
	tv := &v.v
	if _, ok := tx.writes[tv]; !ok {
		tx.order = append(tx.order, tv)
	}
	tx.writes[tv] = x
}

// Modify applies f to the value of v inside the transaction.
func Modify[A any](tx *Tx, v *TVar[A], f func(A) A) {
	Write(tx, v, f(Read(tx, v)))
}

// status is the outcome of one attempt.
type status int

const (
	committed status = iota
	conflicted
	retried
)

// attempt runs f once, returning the outcome. On retried the returned
// read map (TVar -> version seen) identifies what to wait on.
func attempt[A any](f func(*Tx) A) (result A, st status, reads map[*tvar]uint64) {
	tx := &Tx{
		readVersion: globalClock.Load(),
		reads:       make(map[*tvar]uint64),
		writes:      make(map[*tvar]any),
	}
	st = committed
	func() {
		defer func() {
			switch r := recover(); r.(type) {
			case nil:
			case retrySignal:
				st = retried
			case conflictSignal:
				st = conflicted
			default:
				panic(r)
			}
		}()
		result = f(tx)
	}()
	switch st {
	case conflicted:
		return result, conflicted, nil
	case retried:
		return result, retried, tx.reads
	}
	if !commit(tx) {
		return result, conflicted, nil
	}
	return result, committed, nil
}

// commit locks the write set in id order, validates the read set, and
// publishes the writes under a new version. It reports success.
func commit(tx *Tx) bool {
	if len(tx.writes) == 0 {
		// Read-only: validate that the read snapshot is still current.
		for tv, ver := range tx.reads {
			tv.mu.Lock()
			ok := tv.version == ver
			tv.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	}
	locked := tx.order
	sort.Slice(locked, func(i, j int) bool { return locked[i].id < locked[j].id })
	for _, tv := range locked {
		tv.mu.Lock()
	}
	unlock := func() {
		for _, tv := range locked {
			tv.mu.Unlock()
		}
	}
	// Validate reads against the locked state. Vars we did not write are
	// probed with TryLock: blocking here could deadlock against a
	// committer holding them in a different order, and a held lock means
	// a concurrent commit is touching the var anyway — abort and re-run.
	for tv, ver := range tx.reads {
		if _, ours := tx.writes[tv]; ours {
			if tv.version != ver {
				unlock()
				return false
			}
			continue
		}
		if !tv.mu.TryLock() {
			unlock()
			return false
		}
		ok := tv.version == ver
		tv.mu.Unlock()
		if !ok {
			unlock()
			return false
		}
	}
	writeVersion := globalClock.Add(1)
	var toWake []*waiter
	for _, tv := range locked {
		tv.value = tx.writes[tv]
		tv.version = writeVersion
		if len(tv.waiters) > 0 {
			toWake = append(toWake, tv.waiters...)
			tv.waiters = nil
		}
	}
	unlock()
	for _, w := range toWake {
		if w.fired.CompareAndSwap(false, true) {
			w.wake()
		}
	}
	return true
}

// subscribe parks a wake hook on every TVar in the read map, re-checking
// versions so a commit that raced ahead of the subscription still
// triggers the wake. It is fire-once across the whole set.
func subscribe(reads map[*tvar]uint64, wake func()) {
	w := &waiter{wake: wake}
	for tv, seen := range reads {
		tv.mu.Lock()
		changed := tv.version != seen
		if !changed {
			tv.waiters = append(tv.waiters, w)
		}
		tv.mu.Unlock()
		if changed {
			if w.fired.CompareAndSwap(false, true) {
				wake()
			}
			return
		}
	}
}

// attemptOr implements GHC's orElse at the attempt level: run f1; if it
// retries, run f2; if both retry, the composite retries on the union of
// both read sets. A TVar read at different versions by the two attempts
// has changed in between — the composite conflicts and re-runs.
func attemptOr[A any](f1, f2 func(*Tx) A) (A, status, map[*tvar]uint64) {
	v1, st1, r1 := attempt(f1)
	if st1 != retried {
		return v1, st1, r1
	}
	v2, st2, r2 := attempt(f2)
	if st2 != retried {
		return v2, st2, r2
	}
	union := make(map[*tvar]uint64, len(r1)+len(r2))
	for tv, ver := range r1 {
		union[tv] = ver
	}
	for tv, ver := range r2 {
		if prev, seen := union[tv]; seen && prev != ver {
			var zero A
			return zero, conflicted, nil
		}
		union[tv] = ver
	}
	return v2, retried, union
}

// atomicallyFrom builds the monadic retry loop around any attempt
// function (single transaction or an orElse composite).
func atomicallyFrom[A any](attemptFn func() (A, status, map[*tvar]uint64)) core.M[A] {
	var once func() core.M[A]
	once = func() core.M[A] {
		type outcome struct {
			val   A
			st    status
			reads map[*tvar]uint64
		}
		return core.Bind(
			core.NBIO(func() outcome {
				val, st, reads := attemptFn()
				return outcome{val: val, st: st, reads: reads}
			}),
			func(o outcome) core.M[A] {
				switch o.st {
				case committed:
					return core.Return(o.val)
				case conflicted:
					return once() // immediate re-run (bounces via NBIO)
				default: // retried
					if len(o.reads) == 0 {
						// Retry with an empty read set can never wake.
						panic("stm: Retry with empty read set would block forever")
					}
					return core.Then(
						core.Suspend(func(resume func(core.Unit)) {
							subscribe(o.reads, func() { resume(core.Unit{}) })
						}),
						once(),
					)
				}
			},
		)
	}
	return once()
}

// Atomically runs f as a transaction from a monadic thread. Conflicts
// re-run the transaction; Retry parks the thread until a TVar in the read
// set changes. The transaction function must be pure apart from TVar
// access — it may run several times.
func Atomically[A any](f func(*Tx) A) core.M[A] {
	return atomicallyFrom(func() (A, status, map[*tvar]uint64) { return attempt(f) })
}

// AtomicallyOr is GHC's orElse: run f1 as a transaction; if it calls
// Retry, its effects are discarded and f2 runs instead; if both retry,
// the thread parks until any TVar read by either changes.
func AtomicallyOr[A any](f1, f2 func(*Tx) A) core.M[A] {
	return atomicallyFrom(func() (A, status, map[*tvar]uint64) { return attemptOr(f1, f2) })
}

// AtomicallyBlocking runs f as a transaction from an ordinary goroutine,
// blocking the goroutine on Retry. Intended for tests and for code outside
// the hybrid runtime.
func AtomicallyBlocking[A any](f func(*Tx) A) A {
	return blockingFrom(func() (A, status, map[*tvar]uint64) { return attempt(f) })
}

// AtomicallyOrBlocking is the goroutine-blocking form of AtomicallyOr.
func AtomicallyOrBlocking[A any](f1, f2 func(*Tx) A) A {
	return blockingFrom(func() (A, status, map[*tvar]uint64) { return attemptOr(f1, f2) })
}

func blockingFrom[A any](attemptFn func() (A, status, map[*tvar]uint64)) A {
	for {
		val, st, rs := attemptFn()
		switch st {
		case committed:
			return val
		case conflicted:
			continue
		case retried:
			ch := make(chan struct{})
			subscribe(rs, func() { close(ch) })
			<-ch
		}
	}
}

// ReadNow reads a TVar outside any transaction (a consistent single read).
func ReadNow[A any](v *TVar[A]) A {
	v.v.mu.Lock()
	defer v.v.mu.Unlock()
	return v.v.value.(A)
}

// WriteNow writes a TVar outside any transaction, as its own tiny
// transaction (it bumps the version clock and wakes retry-ers).
func WriteNow[A any](v *TVar[A], x A) {
	AtomicallyBlocking(func(tx *Tx) core.Unit {
		Write(tx, v, x)
		return core.Unit{}
	})
}
