package stm

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"hybrid/internal/core"
)

func TestReadWriteRoundTrip(t *testing.T) {
	v := NewTVar(10)
	got := AtomicallyBlocking(func(tx *Tx) int {
		Write(tx, v, Read(tx, v)+1)
		return Read(tx, v)
	})
	if got != 11 || ReadNow(v) != 11 {
		t.Fatalf("got %d, now %d", got, ReadNow(v))
	}
}

func TestModify(t *testing.T) {
	v := NewTVar("a")
	AtomicallyBlocking(func(tx *Tx) core.Unit {
		Modify(tx, v, func(s string) string { return s + "b" })
		return core.Unit{}
	})
	if ReadNow(v) != "ab" {
		t.Fatalf("v = %q", ReadNow(v))
	}
}

func TestWriteNow(t *testing.T) {
	v := NewTVar(1)
	WriteNow(v, 9)
	if ReadNow(v) != 9 {
		t.Fatal("WriteNow lost")
	}
}

func TestTransactionIsolation(t *testing.T) {
	// A transaction's writes are invisible until commit.
	v := NewTVar(0)
	inTx := make(chan struct{})
	release := make(chan struct{})
	go AtomicallyBlocking(func(tx *Tx) core.Unit {
		Write(tx, v, 42)
		select {
		case <-inTx: // already closed on a re-run
		default:
			close(inTx)
		}
		<-release
		return core.Unit{}
	})
	<-inTx
	if ReadNow(v) != 0 {
		t.Fatal("uncommitted write visible")
	}
	close(release)
}

func TestConcurrentCountersLinearizable(t *testing.T) {
	// The classic torture test: G goroutines each increment N times; the
	// final value must be exactly G*N.
	v := NewTVar(0)
	const g, n = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n; j++ {
				AtomicallyBlocking(func(tx *Tx) core.Unit {
					Write(tx, v, Read(tx, v)+1)
					return core.Unit{}
				})
			}
		}()
	}
	wg.Wait()
	if got := ReadNow(v); got != g*n {
		t.Fatalf("counter = %d, want %d (lost updates)", got, g*n)
	}
}

func TestMultiVarInvariantPreserved(t *testing.T) {
	// Transfers between two accounts keep the total constant under
	// concurrency — serializability across multiple TVars.
	a := NewTVar(1000)
	b := NewTVar(1000)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		dir := i%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				AtomicallyBlocking(func(tx *Tx) core.Unit {
					from, to := a, b
					if !dir {
						from, to = b, a
					}
					x := Read(tx, from)
					Write(tx, from, x-1)
					Write(tx, to, Read(tx, to)+1)
					return core.Unit{}
				})
			}
		}()
	}
	// Concurrent observers must never see a torn total.
	stop := make(chan struct{})
	var torn atomic.Bool
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := AtomicallyBlocking(func(tx *Tx) int {
				return Read(tx, a) + Read(tx, b)
			})
			if total != 2000 {
				torn.Store(true)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	if torn.Load() {
		t.Fatal("observer saw inconsistent total")
	}
	if total := ReadNow(a) + ReadNow(b); total != 2000 {
		t.Fatalf("final total = %d", total)
	}
}

func TestRetryBlocksUntilWrite(t *testing.T) {
	v := NewTVar(0)
	got := make(chan int, 1)
	started := make(chan struct{})
	var once sync.Once
	go func() {
		got <- AtomicallyBlocking(func(tx *Tx) int {
			once.Do(func() { close(started) })
			x := Read(tx, v)
			if x == 0 {
				tx.Retry()
			}
			return x
		})
	}()
	<-started
	select {
	case <-got:
		t.Fatal("retry returned before write")
	default:
	}
	WriteNow(v, 7)
	if x := <-got; x != 7 {
		t.Fatalf("woke with %d", x)
	}
}

func TestRetryWakeOnAnyReadVar(t *testing.T) {
	a := NewTVar(0)
	b := NewTVar(0)
	got := make(chan int, 1)
	go func() {
		got <- AtomicallyBlocking(func(tx *Tx) int {
			x, y := Read(tx, a), Read(tx, b)
			if x == 0 && y == 0 {
				tx.Retry()
			}
			return x + y
		})
	}()
	WriteNow(b, 5)
	if x := <-got; x != 5 {
		t.Fatalf("woke with %d", x)
	}
}

// ---------------------------------------------------------------------------
// Monadic integration
// ---------------------------------------------------------------------------

func runRT(t *testing.T, workers int, m core.M[core.Unit]) {
	t.Helper()
	rt := core.NewRuntime(core.Options{Workers: workers})
	t.Cleanup(rt.Shutdown)
	rt.Run(m)
}

func TestAtomicallyFromThreads(t *testing.T) {
	v := NewTVar(0)
	const n = 200
	runRT(t, 4, core.ForN(n, func(int) core.M[core.Unit] {
		return core.Fork(core.Then(
			Atomically(func(tx *Tx) core.Unit {
				Write(tx, v, Read(tx, v)+1)
				return core.Unit{}
			}),
			core.Skip,
		))
	}))
	if got := ReadNow(v); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
}

func TestAtomicallyRetryParksThread(t *testing.T) {
	// A consumer thread retries until a producer thread fills the TVar —
	// the producer-consumer pattern as blocking STM inside the scheduler.
	v := NewTVar(0)
	var consumed atomic.Int64
	runRT(t, 2, core.Seq(
		core.Fork(core.Bind(
			Atomically(func(tx *Tx) int {
				x := Read(tx, v)
				if x == 0 {
					tx.Retry()
				}
				return x
			}),
			func(x int) core.M[core.Unit] {
				return core.Do(func() { consumed.Store(int64(x)) })
			},
		)),
		core.ForN(100, func(int) core.M[core.Unit] { return core.Yield() }),
		Atomically(func(tx *Tx) core.Unit {
			Write(tx, v, 33)
			return core.Unit{}
		}),
	))
	if consumed.Load() != 33 {
		t.Fatalf("consumed = %d", consumed.Load())
	}
}

func TestAtomicallySTMQueue(t *testing.T) {
	// A bounded STM queue: producers retry when full, consumers when
	// empty; all items delivered exactly once.
	q := NewTVar([]int{})
	const cap = 4
	push := func(x int) core.M[core.Unit] {
		return Atomically(func(tx *Tx) core.Unit {
			xs := Read(tx, q)
			if len(xs) >= cap {
				tx.Retry()
			}
			Write(tx, q, append(append([]int{}, xs...), x))
			return core.Unit{}
		})
	}
	pop := Atomically(func(tx *Tx) int {
		xs := Read(tx, q)
		if len(xs) == 0 {
			tx.Retry()
		}
		Write(tx, q, append([]int{}, xs[1:]...))
		return xs[0]
	})
	var mu sync.Mutex
	var got []int
	const n = 100
	runRT(t, 2, core.Seq(
		core.Fork(core.ForN(n, func(i int) core.M[core.Unit] { return push(i) })),
		core.ForN(n, func(int) core.M[core.Unit] {
			return core.Bind(pop, func(x int) core.M[core.Unit] {
				return core.Do(func() {
					mu.Lock()
					got = append(got, x)
					mu.Unlock()
				})
			})
		}),
	))
	if len(got) != n {
		t.Fatalf("popped %d items", len(got))
	}
	for i, x := range got {
		if x != i {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

// Property: any batch of concurrent transfers over a random set of
// accounts conserves the total balance.
func TestTransfersConserveProperty(t *testing.T) {
	check := func(nAccounts, nOps uint8, seed int64) bool {
		n := int(nAccounts%6) + 2
		ops := int(nOps%64) + 1
		accounts := make([]*TVar[int], n)
		for i := range accounts {
			accounts[i] = NewTVar(100)
		}
		rng := seed
		next := func() int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int(rng >> 33)
			if v < 0 {
				v = -v
			}
			return v
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			from := accounts[next()%n]
			to := accounts[next()%n]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					AtomicallyBlocking(func(tx *Tx) core.Unit {
						x := Read(tx, from)
						Write(tx, from, x-1)
						Write(tx, to, Read(tx, to)+1)
						return core.Unit{}
					})
				}
			}()
		}
		wg.Wait()
		total := 0
		for _, a := range accounts {
			total += ReadNow(a)
		}
		return total == n*100
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- OrElse (GHC's orElse) ---------------------------------------------------

func TestOrElseFirstWins(t *testing.T) {
	v := NewTVar(5)
	got := AtomicallyOrBlocking(
		func(tx *Tx) int { return Read(tx, v) },
		func(*Tx) int { return -1 },
	)
	if got != 5 {
		t.Fatalf("got %d, want first branch's 5", got)
	}
}

func TestOrElseFallsThroughOnRetry(t *testing.T) {
	empty := NewTVar(0)
	backup := NewTVar(9)
	got := AtomicallyOrBlocking(
		func(tx *Tx) int {
			if Read(tx, empty) == 0 {
				tx.Retry()
			}
			return Read(tx, empty)
		},
		func(tx *Tx) int { return Read(tx, backup) },
	)
	if got != 9 {
		t.Fatalf("got %d, want fallback 9", got)
	}
}

func TestOrElseDiscardsFirstBranchWrites(t *testing.T) {
	a := NewTVar(0)
	b := NewTVar(0)
	AtomicallyOrBlocking(
		func(tx *Tx) core.Unit {
			Write(tx, a, 111) // must be discarded on retry
			tx.Retry()
			return core.Unit{}
		},
		func(tx *Tx) core.Unit {
			Write(tx, b, 222)
			return core.Unit{}
		},
	)
	if ReadNow(a) != 0 {
		t.Fatalf("retried branch's write leaked: a = %d", ReadNow(a))
	}
	if ReadNow(b) != 222 {
		t.Fatalf("fallback write lost: b = %d", ReadNow(b))
	}
}

func TestOrElseBlocksOnUnionOfReadSets(t *testing.T) {
	// Both branches retry; a write to *either* read set must wake the
	// transaction.
	for branch := 0; branch < 2; branch++ {
		qa := NewTVar(0)
		qb := NewTVar(0)
		take := func(v *TVar[int]) func(*Tx) int {
			return func(tx *Tx) int {
				x := Read(tx, v)
				if x == 0 {
					tx.Retry()
				}
				Write(tx, v, 0)
				return x
			}
		}
		got := make(chan int, 1)
		go func() { got <- AtomicallyOrBlocking(take(qa), take(qb)) }()
		select {
		case x := <-got:
			t.Fatalf("returned %d before any write", x)
		case <-time.After(10 * time.Millisecond):
		}
		if branch == 0 {
			WriteNow(qa, 7)
		} else {
			WriteNow(qb, 8)
		}
		if x := <-got; x != 7+branch {
			t.Fatalf("branch %d: woke with %d", branch, x)
		}
	}
}

func TestOrElseMonadicQueuePair(t *testing.T) {
	// A consumer draining whichever of two STM queues has data first —
	// the canonical orElse idiom — inside the hybrid scheduler.
	qa := NewTVar([]int{})
	qb := NewTVar([]int{})
	pop := func(q *TVar[[]int]) func(*Tx) int {
		return func(tx *Tx) int {
			xs := Read(tx, q)
			if len(xs) == 0 {
				tx.Retry()
			}
			Write(tx, q, append([]int{}, xs[1:]...))
			return xs[0]
		}
	}
	push := func(q *TVar[[]int], x int) core.M[core.Unit] {
		return Atomically(func(tx *Tx) core.Unit {
			Write(tx, q, append(append([]int{}, Read(tx, q)...), x))
			return core.Unit{}
		})
	}
	var mu sync.Mutex
	var got []int
	rt := core.NewRuntime(core.Options{Workers: 2})
	defer rt.Shutdown()
	rt.Run(core.Seq(
		core.Fork(core.ForN(10, func(i int) core.M[core.Unit] {
			if i%2 == 0 {
				return push(qa, i)
			}
			return push(qb, i)
		})),
		core.ForN(10, func(int) core.M[core.Unit] {
			return core.Bind(AtomicallyOr(pop(qa), pop(qb)), func(x int) core.M[core.Unit] {
				return core.Do(func() {
					mu.Lock()
					got = append(got, x)
					mu.Unlock()
				})
			})
		}),
	))
	if len(got) != 10 {
		t.Fatalf("drained %d of 10", len(got))
	}
	seen := map[int]bool{}
	for _, x := range got {
		if seen[x] {
			t.Fatalf("duplicate %d in %v", x, got)
		}
		seen[x] = true
	}
}
