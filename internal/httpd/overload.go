package httpd

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/kernel"
	"hybrid/internal/overload"
	"hybrid/internal/vclock"
)

// OverloadConfig turns on the server's overload machinery: listener-side
// admission control, circuit-broken load shedding on the disk path,
// per-connection supervision, and graceful drain. Nil (the default)
// leaves every request's trace shape byte-identical to the plain server.
type OverloadConfig struct {
	// MaxConns bounds in-flight connections: the accept loop stops
	// accepting (parking on the limiter) once this many connections are
	// being served, so the kernel backlog fills and further connects are
	// refused with a counted ECONNREFUSED instead of melting the ready
	// queue. 0 means unbounded.
	MaxConns int
	// AcceptRate, when > 0, paces accepts with a token bucket at this
	// many connections per second (AcceptBurst deep, default 1).
	AcceptRate  float64
	AcceptBurst int
	// Backlog, when > 0, overrides the listen backlog (plain servers use
	// 1024). Overloaded servers want it small: a connection the server
	// cannot serve soon is better refused — the client can back off —
	// than parked holding an unanswered request.
	Backlog int
	// Breaker, when non-nil, wraps the blocking-disk request path in a
	// circuit breaker: when it trips, uncached GETs are shed with an
	// immediate 503 while cached requests keep flowing.
	Breaker *overload.BreakerConfig
	// SuperviseConns isolates per-connection panics with core.Supervise:
	// a poisoned handler thread is counted and its connection closed,
	// instead of the panic reaching the runtime's uncaught-error path.
	// Requires core.Options.TrapPanics on the runtime.
	SuperviseConns bool
	// DrainPoll is how often Drain re-checks the connection table
	// (default 1ms — on the virtual clock this is simulation time).
	DrainPoll vclock.Duration
}

func (c *OverloadConfig) withDefaults() *OverloadConfig {
	if c == nil {
		return nil
	}
	cc := *c
	if cc.DrainPoll <= 0 {
		cc.DrainPoll = time.Millisecond
	}
	return &cc
}

// overloadState is everything the overload machinery hangs off Server.
type overloadState struct {
	cfg     *OverloadConfig
	limiter *overload.Limiter // nil unless MaxConns or AcceptRate set
	breaker *overload.Breaker // nil unless cfg.Breaker set

	mu       sync.Mutex
	conns    map[uint64]Transport // in-flight connections, for Drain
	nextConn uint64
	lfd      kernel.FD
	haveLFD  bool

	draining    atomic.Bool
	drainForced atomic.Bool
}

func newOverloadState(clk vclock.Clock, cfg *OverloadConfig) *overloadState {
	o := &overloadState{cfg: cfg, conns: make(map[uint64]Transport)}
	if cfg.MaxConns > 0 || cfg.AcceptRate > 0 {
		o.limiter = overload.NewLimiter(clk, overload.LimiterConfig{
			MaxInflight: cfg.MaxConns,
			Rate:        cfg.AcceptRate,
			Burst:       cfg.AcceptBurst,
		})
	}
	if cfg.Breaker != nil {
		o.breaker = overload.NewBreaker(clk, *cfg.Breaker)
	}
	return o
}

// Limiter exposes the admission limiter (nil when admission is off) so
// benchmarks can merge its metrics.
func (s *Server) Limiter() *overload.Limiter {
	if s.ovl == nil {
		return nil
	}
	return s.ovl.limiter
}

// Breaker exposes the disk-path breaker (nil when off).
func (s *Server) Breaker() *overload.Breaker {
	if s.ovl == nil {
		return nil
	}
	return s.ovl.breaker
}

// acquireSlot blocks in the accept loop until admission allows one more
// connection. No-op when admission is unconfigured.
func (s *Server) acquireSlot() core.M[core.Unit] {
	if s.ovl.limiter == nil {
		return core.Skip
	}
	return s.ovl.limiter.Acquire()
}

func (s *Server) releaseSlot() {
	if s.ovl.limiter != nil {
		s.ovl.limiter.Release()
	}
}

// serveAdmitted is the overload-mode connection wrapper: the transport is
// registered for Drain, the admission slot rides an Ensure frame (so a
// panicking handler still gives it back), and — when configured — the
// whole connection is supervised so a panic is an accounted event, not an
// uncaught error.
func (s *Server) serveAdmitted(t Transport) core.M[core.Unit] {
	o := s.ovl
	o.mu.Lock()
	o.nextConn++
	id := o.nextConn
	o.mu.Unlock()

	body := core.Then(
		core.Do(func() {
			o.mu.Lock()
			o.conns[id] = t
			o.mu.Unlock()
		}),
		s.ServeTransport(t),
	)
	body = core.Ensure(func() {
		o.mu.Lock()
		delete(o.conns, id)
		o.mu.Unlock()
		s.releaseSlot()
	}, body)
	if !o.cfg.SuperviseConns {
		return body
	}
	// Connections hold client state that a restart cannot recover, so the
	// policy is pure isolation: zero restarts, failures counted, the
	// transport closed best-effort.
	return core.Supervise(s.io.Clock(), core.RestartPolicy{
		MaxRestarts: 0,
		OnGiveUp:    func(error) { s.connPanics.Add(1) },
	}, body)
}

// shedDisk decides one uncached GET's fate under the breaker. Called at
// request-service time.
func (s *Server) shedDisk() (admit, probe bool) {
	if s.ovl == nil || s.ovl.breaker == nil {
		return true, false
	}
	admit, probe = s.ovl.breaker.Allow()
	if !admit {
		s.shedFast.Add(1)
	}
	return admit, probe
}

// observeDisk wraps the disk-path response with the breaker's outcome
// observation: latency is measured on the server's clock, and an
// exception is a failure (re-raised unchanged).
func (s *Server) observeDisk(m core.M[bool]) core.M[bool] {
	b := s.ovl.breaker
	clk := s.io.Clock()
	return core.Bind(core.NBIO(clk.Now), func(start vclock.Time) core.M[bool] {
		return core.Bind(
			core.Catch(m, func(err error) core.M[bool] {
				b.Observe(vclock.Duration(clk.Now()-start), err)
				return core.Throw[bool](err)
			}),
			func(keep bool) core.M[bool] {
				b.Observe(vclock.Duration(clk.Now()-start), nil)
				return core.Return(keep)
			},
		)
	})
}

// Draining reports whether Drain has begun (new connections are refused
// once the listener closes).
func (s *Server) Draining() bool { return s.ovl != nil && s.ovl.draining.Load() }

// Drain gracefully stops an overload-mode server: it closes the
// listener (ending the accept loop), waits up to deadline for in-flight
// connections to finish, then force-closes the stragglers' transports
// and waits for their handler threads to unwind. After Drain completes
// the runtime holds no server threads, so Runtime.Shutdown is clean.
// Only available when ServerConfig.Overload is set.
func (s *Server) Drain(deadline vclock.Duration) core.M[core.Unit] {
	o := s.ovl
	if o == nil {
		return core.Throw[core.Unit](errors.New("httpd: Drain requires ServerConfig.Overload"))
	}
	clk := s.io.Clock()

	type lfdInfo struct {
		fd kernel.FD
		ok bool
	}
	closeListener := core.Bind(core.NBIO(func() lfdInfo {
		o.draining.Store(true)
		o.mu.Lock()
		defer o.mu.Unlock()
		return lfdInfo{o.lfd, o.haveLFD}
	}), func(l lfdInfo) core.M[core.Unit] {
		if !l.ok {
			return core.Skip
		}
		return core.Catch(s.io.CloseFD(l.fd), func(error) core.M[core.Unit] { return core.Skip })
	})

	// Poll the connection table on the clock; the loop also exits when
	// the force phase begins, so an abandoned waiter (Timeout does not
	// cancel the loser) cannot spin forever.
	var wait func() core.M[core.Unit]
	wait = func() core.M[core.Unit] {
		return core.Bind(core.NBIO(func() int {
			o.mu.Lock()
			defer o.mu.Unlock()
			return len(o.conns)
		}), func(n int) core.M[core.Unit] {
			if n == 0 || o.drainForced.Load() {
				return core.Skip
			}
			return core.Bind(core.Sleep(clk, o.cfg.DrainPoll),
				func(core.Unit) core.M[core.Unit] { return wait() })
		})
	}

	forceClose := core.Bind(core.NBIO(func() []Transport {
		o.drainForced.Store(true)
		o.mu.Lock()
		defer o.mu.Unlock()
		ts := make([]Transport, 0, len(o.conns))
		for _, t := range o.conns {
			ts = append(ts, t)
		}
		return ts
	}), func(ts []Transport) core.M[core.Unit] {
		closeAll := core.Skip
		for _, t := range ts {
			t := t
			s.forcedCloses.Add(1)
			closeAll = core.Then(closeAll,
				core.Catch(core.Then(t.Close(), core.Skip),
					func(error) core.M[core.Unit] { return core.Skip }))
		}
		// The closed transports fail their handlers' pending I/O; wait
		// for the table to empty (drainForced keeps this loop bounded to
		// the handlers' unwind time).
		var settle func() core.M[core.Unit]
		settle = func() core.M[core.Unit] {
			return core.Bind(core.NBIO(func() int {
				o.mu.Lock()
				defer o.mu.Unlock()
				return len(o.conns)
			}), func(n int) core.M[core.Unit] {
				if n == 0 {
					return core.Skip
				}
				return core.Bind(core.Sleep(clk, o.cfg.DrainPoll),
					func(core.Unit) core.M[core.Unit] { return settle() })
			})
		}
		return core.Then(closeAll, settle())
	})

	return core.Then(closeListener,
		core.Bind(core.NBIO(func() vclock.Time { return clk.Now() + vclock.Time(deadline) }),
			func(dl vclock.Time) core.M[core.Unit] {
				return core.Catch(
					core.WithDeadline(clk, dl, wait()),
					func(err error) core.M[core.Unit] {
						if !errors.Is(err, core.ErrTimedOut) {
							return core.Throw[core.Unit](err)
						}
						return forceClose
					},
				)
			}))
}
