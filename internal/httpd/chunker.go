package httpd

import (
	"hybrid/internal/bufpool"
	"hybrid/internal/core"
)

// chunker owns the destination-buffer bookkeeping shared by the three
// file-streaming loops (the hybrid server's sendFile and
// sendFileDegraded, and the Apache baseline's respond). A cacheable file
// is read chunk-by-chunk directly into a single full-size destination —
// the bytes land once and the finished buffer becomes the cache entry,
// retiring the old assemble-by-append copy. An uncacheable file streams
// through one pooled scratch chunk instead.
//
// Reads are always issued over a window no longer than the bytes that
// remain, which matches the kernel's own clamp (AIOReadExtra bounds n to
// the file size before computing disk time), so the switch from a fixed
// full-length chunk changes neither read results nor virtual timing.
type chunker struct {
	size       int64
	chunkBytes int
	dest       []byte // full-size destination when cacheable, else nil
	scratch    []byte // pooled chunk when not cacheable
	filled     int64  // bytes landed in dest (for partial-file cache puts)
}

// newChunker sizes the destination for one file. cacheLimit bounds which
// files assemble for caching (pass size to cache unconditionally, as the
// Apache page-cache model does).
func newChunker(size, cacheLimit int64, chunkBytes int) *chunker {
	ck := &chunker{size: size, chunkBytes: chunkBytes}
	if size <= cacheLimit {
		ck.dest = make([]byte, size)
	} else {
		ck.scratch = bufpool.Get(chunkBytes)
	}
	return ck
}

// cacheable reports whether the streamed bytes are being assembled.
func (ck *chunker) cacheable() bool { return ck.dest != nil }

// window returns the buffer to read the chunk at off into.
func (ck *chunker) window(off int64) []byte {
	n := int64(ck.chunkBytes)
	if n > ck.size-off {
		n = ck.size - off
	}
	if ck.dest != nil {
		return ck.dest[off : off+n]
	}
	return ck.scratch[:n]
}

// view returns the n bytes just read at off, accounting them as filled.
func (ck *chunker) view(off int64, n int) []byte {
	if end := off + int64(n); end > ck.filled {
		ck.filled = end
	}
	if ck.dest != nil {
		return ck.dest[off : off+int64(n)]
	}
	return ck.scratch[:n]
}

// assembled is the contiguously filled prefix of the destination — the
// cache entry (the whole file after a complete stream, a partial prefix
// if the stream ended early on a short read).
func (ck *chunker) assembled() []byte { return ck.dest[:ck.filled] }

// release returns the pooled scratch chunk. Safe to skip on error paths:
// an unreleased chunk is garbage-collected, it just is not reused.
func (ck *chunker) release() {
	if ck.scratch != nil {
		bufpool.Put(ck.scratch)
		ck.scratch = nil
	}
}

// streamBody builds the ship/stream pair for the monadic chunked copy
// loop: stream(off) reads the chunk at off (via readAt, so callers
// inject retry policy) and ships it; ship writes a chunk already read
// and continues the stream. On completion one Do node releases the
// scratch chunk and inserts the assembled file into the cache — the same
// trace shape as the loops it replaces. A short read (n == 0) ends the
// stream without caching, adding no node.
func (s *Server) streamBody(t Transport, ck *chunker, name string,
	readAt func(off int64) core.M[int]) (ship func(n int, off int64) core.M[core.Unit], stream func(off int64) core.M[core.Unit]) {
	stream = func(off int64) core.M[core.Unit] {
		if off >= ck.size {
			return core.Do(func() {
				ck.release()
				if ck.cacheable() {
					s.cache.Put(name, ck.assembled())
				}
			})
		}
		return core.Bind(readAt(off), func(n int) core.M[core.Unit] {
			if n == 0 {
				ck.release()
				return core.Skip
			}
			return ship(n, off)
		})
	}
	ship = func(n int, off int64) core.M[core.Unit] {
		return core.Bind(t.Write(ck.view(off, n)), func(w int) core.M[core.Unit] {
			s.bytesOut.Add(uint64(w))
			return stream(off + int64(n))
		})
	}
	return ship, stream
}
