package httpd

import (
	"fmt"
	"strconv"
	"sync"

	"hybrid/internal/core"
	"hybrid/internal/timerwheel"
	"hybrid/internal/vclock"
)

// LifecycleConfig bounds each phase of a connection's life with a
// deadline parked on the server's hierarchical timer wheel. The defense
// against slow, idle, and hostile peers is structural: every connection
// carries exactly one armed timer, re-armed in O(1) at each phase
// transition, so ten thousand parked keep-alive connections cost ten
// thousand wheel slots and nothing else. A deadline that fires sheds the
// connection from outside its handler thread (Shedder); the thread's
// blocked I/O fails and it unwinds through the server's normal
// exception path.
//
// Zero fields disable that phase's deadline. A nil LifecycleConfig (the
// ServerConfig default) keeps the server's trace shape byte-identical
// to the unhardened implementation.
type LifecycleConfig struct {
	// IdleTimeout reaps keep-alive connections that sit between requests
	// (or fresh connections that never send a byte) — the idle-flood
	// defense. The clock starts when the connection opens or a response
	// completes, and stops at the first byte of the next request head.
	IdleTimeout vclock.Duration
	// HeaderTimeout is the total budget to assemble one request head,
	// counted from its first byte. It is deliberately not reset by
	// progress: a slow-loris peer trickling one byte per interval renews
	// any per-read deadline forever but exhausts this one on schedule.
	HeaderTimeout vclock.Duration
	// BodyTimeout is the total budget to drain a request's declared body
	// (Content-Length). Lifecycle mode is also what enables body
	// draining at all — the plain server serves GET/HEAD and treats
	// stray body bytes as the next request's head.
	BodyTimeout vclock.Duration
	// WriteStallTimeout bounds progress while writing the response: each
	// completed write re-arms it, so a legitimate slow client streaming
	// a large file lives on, while a peer that stops reading (a
	// read-stall attack pinning the response in the send buffer) is shed
	// once no write completes for this long.
	WriteStallTimeout vclock.Duration
}

// enabled reports whether any phase deadline is armed.
func (c *LifecycleConfig) enabled() bool {
	return c != nil && (c.IdleTimeout > 0 || c.HeaderTimeout > 0 ||
		c.BodyTimeout > 0 || c.WriteStallTimeout > 0)
}

// Shedder is an optional Transport capability: Shed tears the connection
// down immediately, synchronously, from outside its handler thread — the
// lever a lifecycle deadline pulls on expiry. Both built-in transports
// implement it; a transport that does not cannot be shed, so lifecycle
// deadlines are inert on it.
type Shedder interface {
	Shed()
}

// Shed aborts the TCP connection (RST path): pending reads and writes
// fail immediately and no TIME_WAIT state lingers for the attacker.
func (t TCPTransport) Shed() { t.Conn.Abort() }

// Shed closes the kernel socket out from under the handler.
func (s SockTransport) Shed() { _ = s.IO.Kernel().Close(s.FD) }

// Connection lifecycle phases, for deadline accounting.
const (
	phaseIdle = iota
	phaseHeader
	phaseBody
	phaseWrite
)

// connWatch is one connection's lifecycle watchdog: a single wheel timer
// plus the phase it guards. Handler-side transitions (to, progress,
// cancel) run on worker threads; fire runs from clock dispatch. The
// mutex orders them; the clock's own lock is never held while it calls
// into the watch, and the watch may call into the wheel while holding
// its lock, so there is no cycle.
type connWatch struct {
	s  *Server
	sh Shedder
	lc *LifecycleConfig

	mu    sync.Mutex
	tm    *timerwheel.Timer
	phase int
	done  bool // shed fired or connection closed: no more arming
}

// to moves the watch to a phase, re-arming the wheel timer with that
// phase's budget (or disarming it when the phase has none).
func (w *connWatch) to(phase int, d vclock.Duration) {
	w.mu.Lock()
	if w.done {
		w.mu.Unlock()
		return
	}
	if w.tm != nil {
		w.tm.Stop()
		w.tm = nil
	}
	w.phase = phase
	if d > 0 {
		w.tm = w.s.wheel.Schedule(d, w.fire)
	}
	w.mu.Unlock()
}

func (w *connWatch) toIdle() { w.to(phaseIdle, w.lc.IdleTimeout) }

// onBytes notes request bytes arriving: the first bytes of a new head
// move the watch from the idle budget to the header budget. Later reads
// of the same head leave the header deadline alone — it is a total
// budget, which is the slow-loris defense.
func (w *connWatch) onBytes() {
	w.mu.Lock()
	idle := !w.done && w.phase == phaseIdle
	w.mu.Unlock()
	if idle {
		w.to(phaseHeader, w.lc.HeaderTimeout)
	}
}

func (w *connWatch) toBody() { w.to(phaseBody, w.lc.BodyTimeout) }

// toWrite enters the response phase with no deadline armed: the stall
// clock starts at the first completed write (progress), so time the
// server spends producing the response — a queued disk read, say — is
// never charged to the peer. A peer that reads nothing still cannot
// hide: small responses fit the socket buffer, complete, and hand the
// connection to the idle deadline; large ones block a write after the
// first completion, and the armed stall deadline sheds them.
func (w *connWatch) toWrite() { w.to(phaseWrite, 0) }

// progress arms or renews the write-stall deadline after a completed
// write.
func (w *connWatch) progress() {
	w.mu.Lock()
	if w.done || w.phase != phaseWrite || w.lc.WriteStallTimeout <= 0 {
		w.mu.Unlock()
		return
	}
	if w.tm != nil {
		w.tm.Stop()
	}
	w.tm = w.s.wheel.Schedule(w.lc.WriteStallTimeout, w.fire)
	w.mu.Unlock()
}

// cancel disarms the watch for good (connection closing normally or
// through the exception path).
func (w *connWatch) cancel() {
	w.mu.Lock()
	w.done = true
	if w.tm != nil {
		w.tm.Stop()
		w.tm = nil
	}
	w.mu.Unlock()
}

// fire is the deadline expiry: count the phase, then shed. It runs from
// clock dispatch, so it must not block; Shed is synchronous teardown.
func (w *connWatch) fire() {
	w.mu.Lock()
	if w.done {
		w.mu.Unlock()
		return
	}
	w.done = true
	w.tm = nil
	phase := w.phase
	w.mu.Unlock()
	switch phase {
	case phaseIdle:
		w.s.reapedIdle.Add(1)
	case phaseHeader:
		w.s.shedHeader.Add(1)
	case phaseBody:
		w.s.shedBody.Add(1)
	case phaseWrite:
		w.s.shedWrite.Add(1)
	}
	w.sh.Shed()
}

// LifecycleStats is a snapshot of the lifecycle defense counters.
type LifecycleStats struct {
	ReapedIdle uint64 // idle/keep-alive connections reaped
	ShedHeader uint64 // slow header assembly (slow-loris) sheds
	ShedBody   uint64 // slow body drain sheds
	ShedWrite  uint64 // write-stall (peer stopped reading) sheds
}

// Total is every connection the lifecycle machinery tore down.
func (l LifecycleStats) Total() uint64 {
	return l.ReapedIdle + l.ShedHeader + l.ShedBody + l.ShedWrite
}

// LifecycleStats reports the lifecycle defense counters.
func (s *Server) LifecycleStats() LifecycleStats {
	return LifecycleStats{
		ReapedIdle: s.reapedIdle.Load(),
		ShedHeader: s.shedHeader.Load(),
		ShedBody:   s.shedBody.Load(),
		ShedWrite:  s.shedWrite.Load(),
	}
}

// watchConn attaches a lifecycle watch to a connection's transport,
// returning the wrapped transport (whose writes renew the write-stall
// deadline) and the watch. Transports that cannot be shed get no watch:
// there is no safe lever to pull on expiry.
func (s *Server) watchConn(t Transport) (Transport, *connWatch) {
	if !s.cfg.Lifecycle.enabled() {
		return t, nil
	}
	sh, ok := t.(Shedder)
	if !ok {
		return t, nil
	}
	w := &connWatch{s: s, sh: sh, lc: s.cfg.Lifecycle}
	wt := watchedTransport{t: t, w: w}
	if vw, ok := t.(VectorWriter); ok {
		return watchedVectorTransport{watchedTransport: wt, vw: vw}, w
	}
	return wt, w
}

// watchedTransport threads write completions to the lifecycle watch. The
// wrapping is pure continuation composition (core.Map adds no trace
// nodes), so the watched connection schedules exactly like the plain one.
type watchedTransport struct {
	t Transport
	w *connWatch
}

func (x watchedTransport) Read(p []byte) core.M[int] { return x.t.Read(p) }

func (x watchedTransport) Write(p []byte) core.M[int] {
	return core.Map(x.t.Write(p), func(n int) int { x.w.progress(); return n })
}

func (x watchedTransport) Close() core.M[core.Unit] { return x.t.Close() }

// Shed passes through so overload Drain and nested wrappers still reach
// the real lever.
func (x watchedTransport) Shed() { x.w.sh.Shed() }

// watchedVectorTransport additionally preserves the zero-copy write
// capability of the underlying transport.
type watchedVectorTransport struct {
	watchedTransport
	vw VectorWriter
}

func (x watchedVectorTransport) WriteOwned(p []byte) core.M[int] {
	return core.Map(x.vw.WriteOwned(p), func(n int) int { x.w.progress(); return n })
}

// drainBody discards a request's declared body under the body-phase
// deadline, so a trickled body cannot wedge the connection and stray
// body bytes cannot desync the next request's framing. Returns nil when
// the request declares no body (the caller skips straight to respond).
// Only lifecycle mode drains bodies; the plain server's behavior — and
// trace shape — is untouched.
func (s *Server) drainBody(t Transport, hb *HeadBuffer, req *Request, w *connWatch, buf []byte) core.M[core.Unit] {
	cl, err := strconv.ParseInt(req.Headers["content-length"], 10, 64)
	if err != nil || cl <= 0 {
		return nil
	}
	w.toBody()
	// Body bytes read together with the head are already buffered.
	remaining := cl - int64(hb.Discard(int(min(cl, int64(hb.Buffered())))))
	var loop func() core.M[core.Unit]
	loop = func() core.M[core.Unit] {
		if remaining <= 0 {
			return core.Skip
		}
		return core.Bind(t.Read(buf), func(n int) core.M[core.Unit] {
			if n == 0 {
				return core.Throw[core.Unit](fmt.Errorf("%w: stream ended %d bytes into a %d-byte body",
					ErrMalformedRequest, cl-remaining, cl))
			}
			if int64(n) > remaining {
				// Pipelined bytes past the body belong to the next head.
				hb.pushBack(buf[remaining:n])
				remaining = 0
				return core.Skip
			}
			remaining -= int64(n)
			return loop()
		})
	}
	return loop()
}
