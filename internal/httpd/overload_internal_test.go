package httpd

import (
	"testing"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/kernel"
	"hybrid/internal/vclock"
)

// poisonTransport panics at effect time on the first read — a handler
// bug surfacing mid-connection.
type poisonTransport struct{}

func (poisonTransport) Read(p []byte) core.M[int] {
	return core.NBIO(func() int { panic("poisoned handler") })
}
func (poisonTransport) Write(p []byte) core.M[int] { return core.Return(len(p)) }
func (poisonTransport) Close() core.M[core.Unit]   { return core.Skip }

// A supervised connection whose handler panics is an accounted, isolated
// event: the admission slot is released, the connection table entry is
// removed, conn_panics counts it, and nothing reaches the runtime's
// uncaught-error path.
func TestSupervisedConnPanicIsIsolatedAndReleasesSlot(t *testing.T) {
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.DefaultGeometry()))
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk, TrapPanics: true})
	io := hio.New(rt, k, fs)
	defer func() {
		io.Close()
		rt.Shutdown()
	}()

	srv := NewServer(io, ServerConfig{
		Overload: &OverloadConfig{MaxConns: 1, SuperviseConns: true},
	})
	if !srv.ovl.limiter.TryAcquire() {
		t.Fatal("could not take the admission slot the accept loop would hold")
	}
	rt.Run(srv.serveAdmitted(poisonTransport{}))

	if got := srv.ovl.limiter.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after panicked connection, want 0 (leaked slot)", got)
	}
	srv.ovl.mu.Lock()
	tracked := len(srv.ovl.conns)
	srv.ovl.mu.Unlock()
	if tracked != 0 {
		t.Fatalf("connection table holds %d entries after panic, want 0", tracked)
	}
	if got := srv.connPanics.Load(); got != 1 {
		t.Fatalf("conn_panics = %d, want 1", got)
	}
	if errs := rt.UncaughtErrors(); len(errs) != 0 {
		t.Fatalf("supervised panic leaked as uncaught: %v", errs)
	}
	if busy := clk.Busy(); busy != 0 {
		t.Fatalf("vclock busy = %d, want 0", busy)
	}
}
