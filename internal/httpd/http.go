// Package httpd implements the paper's case study (§5.2): a static-file
// web server written in monadic threads over asynchronous I/O with an
// application-level cache, plus the Apache-stand-in baseline — a
// thread-per-connection blocking server on the NPTL runtime — used for
// the Figure 19 comparison.
//
// The HTTP surface is a small, self-contained HTTP/1.0-1.1 subset (GET,
// persistent connections, Content-Length framing): enough to drive the
// paper's workload, written from scratch so the whole stack remains
// application-level.
package httpd

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Version string
	Headers map[string]string
}

// KeepAlive reports whether the connection should persist after the
// response (HTTP/1.1 default yes; HTTP/1.0 requires the header).
func (r *Request) KeepAlive() bool {
	c := strings.ToLower(r.Headers["connection"])
	switch r.Version {
	case "HTTP/1.1":
		return c != "close"
	default:
		return c == "keep-alive"
	}
}

// ErrMalformedRequest reports an unparsable request head.
var ErrMalformedRequest = errors.New("httpd: malformed request")

// ParseRequest parses a request head (everything through the blank line,
// CRLF-delimited).
func ParseRequest(head string) (*Request, error) {
	lines := strings.Split(strings.TrimSuffix(head, "\r\n"), "\r\n")
	if len(lines) == 0 {
		return nil, ErrMalformedRequest
	}
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformedRequest, lines[0])
	}
	req := &Request{
		Method:  parts[0],
		Path:    parts[1],
		Version: parts[2],
		Headers: make(map[string]string, len(lines)-1),
	}
	for _, l := range lines[1:] {
		if l == "" {
			continue
		}
		i := strings.IndexByte(l, ':')
		if i < 0 {
			return nil, fmt.Errorf("%w: header %q", ErrMalformedRequest, l)
		}
		req.Headers[strings.ToLower(strings.TrimSpace(l[:i]))] = strings.TrimSpace(l[i+1:])
	}
	return req, nil
}

// HeadBuffer accumulates bytes until a full request head is available.
// It keeps any bytes past the blank line for the next request on a
// persistent connection.
type HeadBuffer struct {
	buf []byte
}

// MaxHeadBytes bounds a request head; longer heads are malformed.
const MaxHeadBytes = 16 * 1024

// Feed appends stream bytes; it returns a complete head (including the
// terminating blank line) when available, or "" to request more input.
func (h *HeadBuffer) Feed(p []byte) (head string, err error) {
	h.buf = append(h.buf, p...)
	return h.take()
}

// Pending attempts to extract a head from already-buffered bytes (for
// pipelined requests).
func (h *HeadBuffer) Pending() (head string, err error) { return h.take() }

// Buffered reports how many bytes beyond the last extracted head are
// buffered (the start of a response body, for clients).
func (h *HeadBuffer) Buffered() int { return len(h.buf) }

// Reset discards buffered bytes.
func (h *HeadBuffer) Reset() { h.buf = h.buf[:0] }

func (h *HeadBuffer) take() (string, error) {
	if i := indexCRLFCRLF(h.buf); i >= 0 {
		// Reject overlong heads even when the terminator is in the same
		// chunk, so the verdict does not depend on how the stream was
		// chunked (a feed of one big buffer vs. byte-by-byte reads).
		if i+4 > MaxHeadBytes {
			return "", fmt.Errorf("%w: head exceeds %d bytes", ErrMalformedRequest, MaxHeadBytes)
		}
		head := string(h.buf[:i+4])
		rest := h.buf[i+4:]
		h.buf = append(h.buf[:0], rest...)
		return head, nil
	}
	if len(h.buf) >= MaxHeadBytes {
		return "", fmt.Errorf("%w: head exceeds %d bytes", ErrMalformedRequest, MaxHeadBytes)
	}
	return "", nil
}

func indexCRLFCRLF(b []byte) int {
	for i := 0; i+3 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' && b[i+2] == '\r' && b[i+3] == '\n' {
			return i
		}
	}
	return -1
}

// statusText is the subset of reason phrases the server emits.
var statusText = map[int]string{
	200: "OK",
	400: "Bad Request",
	404: "Not Found",
	405: "Method Not Allowed",
	500: "Internal Server Error",
	503: "Service Unavailable",
}

// ResponseHead renders a response status line and headers for a body of
// the given length.
func ResponseHead(status int, contentLength int64, keepAlive bool) []byte {
	reason := statusText[status]
	if reason == "" {
		reason = "Unknown"
	}
	conn := "close"
	if keepAlive {
		conn = "keep-alive"
	}
	return []byte("HTTP/1.1 " + strconv.Itoa(status) + " " + reason +
		"\r\nServer: hybrid/1.0" +
		"\r\nContent-Type: application/octet-stream" +
		"\r\nContent-Length: " + strconv.FormatInt(contentLength, 10) +
		"\r\nConnection: " + conn +
		"\r\n\r\n")
}

// ParseResponseHead parses a response head and returns the status code
// and content length (used by the load generator).
func ParseResponseHead(head string) (status int, contentLength int64, err error) {
	lines := strings.Split(strings.TrimSuffix(head, "\r\n"), "\r\n")
	if len(lines) == 0 {
		return 0, 0, ErrMalformedRequest
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return 0, 0, fmt.Errorf("%w: status line %q", ErrMalformedRequest, lines[0])
	}
	status, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("%w: status %q", ErrMalformedRequest, parts[1])
	}
	contentLength = -1
	for _, l := range lines[1:] {
		if l == "" {
			continue
		}
		i := strings.IndexByte(l, ':')
		if i < 0 {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(l[:i]), "Content-Length") {
			contentLength, err = strconv.ParseInt(strings.TrimSpace(l[i+1:]), 10, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("%w: content-length", ErrMalformedRequest)
			}
		}
	}
	return status, contentLength, nil
}
