// Package httpd implements the paper's case study (§5.2): a static-file
// web server written in monadic threads over asynchronous I/O with an
// application-level cache, plus the Apache-stand-in baseline — a
// thread-per-connection blocking server on the NPTL runtime — used for
// the Figure 19 comparison.
//
// The HTTP surface is a small, self-contained HTTP/1.0-1.1 subset (GET,
// persistent connections, Content-Length framing): enough to drive the
// paper's workload, written from scratch so the whole stack remains
// application-level.
package httpd

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Version string
	Headers map[string]string
}

// KeepAlive reports whether the connection should persist after the
// response (HTTP/1.1 default yes; HTTP/1.0 requires the header).
func (r *Request) KeepAlive() bool {
	c := r.Headers["connection"]
	switch r.Version {
	case "HTTP/1.1":
		return !tokenIs(c, "close")
	default:
		return tokenIs(c, "keep-alive")
	}
}

// tokenIs reports strings.ToLower(v) == lower without allocating on the
// all-ASCII path. lower must be lowercase ASCII.
func tokenIs(v, lower string) bool {
	for i := 0; i < len(v); i++ {
		if v[i] >= 0x80 {
			// Unicode case mapping can change byte counts; defer to the
			// library for exact ToLower semantics.
			return strings.ToLower(v) == lower
		}
	}
	if len(v) != len(lower) {
		return false
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// ErrMalformedRequest reports an unparsable request head.
var ErrMalformedRequest = errors.New("httpd: malformed request")

// ParseRequest parses a request head (everything through the blank line,
// CRLF-delimited). It scans in place — header names and values are
// substrings of head, and common lowercase header names are interned —
// so a well-formed request costs only the Request, its header map, and
// the map's entries.
func ParseRequest(head string) (*Request, error) {
	req := &Request{}
	if err := ParseRequestInto(req, head); err != nil {
		return nil, err
	}
	return req, nil
}

// ParseRequestInto parses a request head into req, reusing req's header
// map across calls (cleared, not reallocated) — the flattened serve loop
// holds one Request per connection, so a steady-state keep-alive request
// parses with no per-request allocation beyond the head string itself.
// On error req's fields are unspecified.
func ParseRequestInto(req *Request, head string) error {
	s := strings.TrimSuffix(head, "\r\n")

	// Request line: exactly three space-separated fields (so exactly two
	// spaces — consecutive spaces would make an empty fourth field) with
	// an HTTP version marker.
	line, rest := nextLine(s)
	i1 := strings.IndexByte(line, ' ')
	var i2 int
	if i1 >= 0 {
		i2 = strings.IndexByte(line[i1+1:], ' ')
	}
	if i1 < 0 || i2 < 0 {
		return fmt.Errorf("%w: request line %q", ErrMalformedRequest, line)
	}
	version := line[i1+1+i2+1:]
	if strings.IndexByte(version, ' ') >= 0 || !strings.HasPrefix(version, "HTTP/") {
		return fmt.Errorf("%w: request line %q", ErrMalformedRequest, line)
	}
	req.Method = line[:i1]
	req.Path = line[i1+1 : i1+1+i2]
	req.Version = version
	if req.Headers == nil {
		req.Headers = make(map[string]string, 4)
	} else {
		clear(req.Headers)
	}
	for rest != "" {
		line, rest = nextLine(rest)
		if line == "" {
			continue
		}
		i := strings.IndexByte(line, ':')
		if i < 0 {
			return fmt.Errorf("%w: header %q", ErrMalformedRequest, line)
		}
		req.Headers[lowerHeaderKey(strings.TrimSpace(line[:i]))] = strings.TrimSpace(line[i+1:])
	}
	return nil
}

// nextLine splits s at the first CRLF; rest is empty on the last line.
func nextLine(s string) (line, rest string) {
	if i := strings.Index(s, "\r\n"); i >= 0 {
		return s[:i], s[i+2:]
	}
	return s, ""
}

// lowerHeaderKey is strings.ToLower with the allocations taken off the
// common path: an already-lowercase ASCII key is returned as is, and the
// header names this package's servers and clients actually consult are
// interned.
func lowerHeaderKey(s string) string {
	ascii, hasUpper := true, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			ascii = false
			break
		}
		if c >= 'A' && c <= 'Z' {
			hasUpper = true
		}
	}
	if ascii {
		if !hasUpper {
			return s
		}
		switch {
		case tokenIs(s, "host"):
			return "host"
		case tokenIs(s, "connection"):
			return "connection"
		case tokenIs(s, "content-length"):
			return "content-length"
		}
	}
	return strings.ToLower(s)
}

// HeadBuffer accumulates bytes until a full request head is available.
// It keeps any bytes past the blank line for the next request on a
// persistent connection.
type HeadBuffer struct {
	buf []byte
}

// MaxHeadBytes bounds a request head; longer heads are malformed.
const MaxHeadBytes = 16 * 1024

// Feed appends stream bytes; it returns a complete head (including the
// terminating blank line) when available, or "" to request more input.
func (h *HeadBuffer) Feed(p []byte) (head string, err error) {
	h.buf = append(h.buf, p...)
	return h.take()
}

// Pending attempts to extract a head from already-buffered bytes (for
// pipelined requests).
func (h *HeadBuffer) Pending() (head string, err error) { return h.take() }

// Buffered reports how many bytes beyond the last extracted head are
// buffered (the start of a response body, for clients).
func (h *HeadBuffer) Buffered() int { return len(h.buf) }

// Reset discards buffered bytes.
func (h *HeadBuffer) Reset() { h.buf = h.buf[:0] }

// Discard drops up to n buffered bytes (a request body that rode in with
// its head), returning how many were dropped.
func (h *HeadBuffer) Discard(n int) int {
	if n > len(h.buf) {
		n = len(h.buf)
	}
	h.buf = append(h.buf[:0], h.buf[n:]...)
	return n
}

// pushBack appends stream bytes without attempting head extraction (the
// body drain uses it for pipelined bytes past a request body; the next
// Pending call extracts).
func (h *HeadBuffer) pushBack(p []byte) { h.buf = append(h.buf, p...) }

func (h *HeadBuffer) take() (string, error) {
	if i := indexCRLFCRLF(h.buf); i >= 0 {
		// Reject overlong heads even when the terminator is in the same
		// chunk, so the verdict does not depend on how the stream was
		// chunked (a feed of one big buffer vs. byte-by-byte reads).
		if i+4 > MaxHeadBytes {
			return "", fmt.Errorf("%w: head exceeds %d bytes", ErrMalformedRequest, MaxHeadBytes)
		}
		head := string(h.buf[:i+4])
		rest := h.buf[i+4:]
		h.buf = append(h.buf[:0], rest...)
		return head, nil
	}
	if len(h.buf) >= MaxHeadBytes {
		return "", fmt.Errorf("%w: head exceeds %d bytes", ErrMalformedRequest, MaxHeadBytes)
	}
	return "", nil
}

func indexCRLFCRLF(b []byte) int {
	for i := 0; i+3 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' && b[i+2] == '\r' && b[i+3] == '\n' {
			return i
		}
	}
	return -1
}

// statusText is the subset of reason phrases the server emits.
var statusText = map[int]string{
	200: "OK",
	400: "Bad Request",
	404: "Not Found",
	405: "Method Not Allowed",
	500: "Internal Server Error",
	503: "Service Unavailable",
}

// ResponseHead renders a response status line and headers for a body of
// the given length. Rendered heads are memoized — a static-file workload
// cycles through a handful of (status, length, keep-alive) triples — so
// the hot path returns a shared slice that callers must treat as
// read-only (every caller writes it to a transport, which never mutates).
func ResponseHead(status int, contentLength int64, keepAlive bool) []byte {
	if status >= 0 && status < 1000 && contentLength >= 0 && contentLength < 1<<52 {
		key := int64(status)<<53 | contentLength
		if keepAlive {
			key |= 1 << 52
		}
		respHeads.mu.RLock()
		h, ok := respHeads.m[key]
		respHeads.mu.RUnlock()
		if ok {
			return h
		}
		h = renderResponseHead(status, contentLength, keepAlive)
		respHeads.mu.Lock()
		if respHeads.m == nil {
			respHeads.m = make(map[int64][]byte)
		}
		// Bound the memo so adversarial length diversity cannot grow it
		// without limit; misses past the cap just render each time.
		if len(respHeads.m) < 4096 {
			respHeads.m[key] = h
		}
		respHeads.mu.Unlock()
		return h
	}
	return renderResponseHead(status, contentLength, keepAlive)
}

var respHeads struct {
	mu sync.RWMutex
	m  map[int64][]byte
}

func renderResponseHead(status int, contentLength int64, keepAlive bool) []byte {
	reason := statusText[status]
	if reason == "" {
		reason = "Unknown"
	}
	conn := "close"
	if keepAlive {
		conn = "keep-alive"
	}
	return []byte("HTTP/1.1 " + strconv.Itoa(status) + " " + reason +
		"\r\nServer: hybrid/1.0" +
		"\r\nContent-Type: application/octet-stream" +
		"\r\nContent-Length: " + strconv.FormatInt(contentLength, 10) +
		"\r\nConnection: " + conn +
		"\r\n\r\n")
}

// ParseResponseHead parses a response head and returns the status code
// and content length (used by the load generator).
func ParseResponseHead(head string) (status int, contentLength int64, err error) {
	lines := strings.Split(strings.TrimSuffix(head, "\r\n"), "\r\n")
	if len(lines) == 0 {
		return 0, 0, ErrMalformedRequest
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return 0, 0, fmt.Errorf("%w: status line %q", ErrMalformedRequest, lines[0])
	}
	status, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("%w: status %q", ErrMalformedRequest, parts[1])
	}
	contentLength = -1
	for _, l := range lines[1:] {
		if l == "" {
			continue
		}
		i := strings.IndexByte(l, ':')
		if i < 0 {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(l[:i]), "Content-Length") {
			contentLength, err = strconv.ParseInt(strings.TrimSpace(l[i+1:]), 10, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("%w: content-length", ErrMalformedRequest)
			}
		}
	}
	return status, contentLength, nil
}
