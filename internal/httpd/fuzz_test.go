package httpd_test

import (
	"strings"
	"testing"

	"hybrid/internal/httpd"
)

// FuzzParseRequest throws arbitrary request heads at the parser: it must
// never panic, and an accepted head must satisfy the parser's own
// contract (three-part request line, HTTP/ version, lowercase header
// keys).
func FuzzParseRequest(f *testing.F) {
	f.Add("GET / HTTP/1.1\r\n\r\n")
	f.Add("GET /file-0 HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n")
	f.Add("HEAD /x HTTP/1.0\r\nconnection: Keep-Alive\r\n\r\n")
	f.Add("POST /upload HTTP/1.1\r\nContent-Length: 10\r\n\r\n")
	f.Add("NONSENSE\r\n\r\n")
	f.Add("GET  /two-spaces HTTP/1.1\r\n\r\n")
	f.Add("GET /x HTTP/1.1\r\nBad Header\r\n\r\n")
	f.Add("GET /x HTTP/1.1\r\n: empty-key\r\n\r\n")
	f.Add("\r\n\r\n")
	f.Fuzz(func(t *testing.T, head string) {
		req, err := httpd.ParseRequest(head)
		if err != nil {
			if req != nil {
				t.Fatalf("error %v with non-nil request", err)
			}
			return
		}
		if req == nil {
			t.Fatal("nil request without error")
		}
		if !strings.HasPrefix(req.Version, "HTTP/") {
			t.Fatalf("accepted version %q", req.Version)
		}
		for k := range req.Headers {
			if k != strings.ToLower(k) {
				t.Fatalf("header key %q not lowercased", k)
			}
		}
		// KeepAlive must be total on any accepted request.
		_ = req.KeepAlive()
	})
}

// FuzzHeadBuffer feeds the same stream in two different chunkings: the
// extracted heads must be identical, heads must end with the blank line,
// and buffered counts must stay consistent. This is the invariant the
// server's readHead loop relies on for pipelined requests.
func FuzzHeadBuffer(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"), 3)
	f.Add([]byte("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"), 7)
	f.Add([]byte("GET /a HTTP/1.1\r\nHost: x\r\n\r\ntrailing-body-bytes"), 1)
	f.Add([]byte("\r\n\r\n\r\n\r\n"), 2)
	f.Add([]byte(strings.Repeat("A", httpd.MaxHeadBytes+8)), 1024)
	f.Fuzz(func(t *testing.T, stream []byte, chunk int) {
		if chunk < 1 {
			chunk = 1
		}
		collect := func(feedAll bool) ([]string, error) {
			hb := &httpd.HeadBuffer{}
			var heads []string
			drainPending := func() error {
				for {
					head, err := hb.Pending()
					if err != nil {
						return err
					}
					if head == "" {
						return nil
					}
					heads = append(heads, head)
				}
			}
			feedOne := func(p []byte) error {
				head, err := hb.Feed(p)
				if err != nil {
					return err
				}
				if head != "" {
					heads = append(heads, head)
				}
				return drainPending()
			}
			if feedAll {
				if err := feedOne(stream); err != nil {
					return heads, err
				}
				return heads, nil
			}
			for off := 0; off < len(stream); off += chunk {
				end := off + chunk
				if end > len(stream) {
					end = len(stream)
				}
				if err := feedOne(stream[off:end]); err != nil {
					return heads, err
				}
			}
			return heads, nil
		}

		whole, errW := collect(true)
		parts, errP := collect(false)
		if (errW == nil) != (errP == nil) {
			t.Fatalf("chunking changed the verdict: whole=%v chunked=%v", errW, errP)
		}
		if errW != nil {
			return // both overflowed; nothing more to check
		}
		if len(whole) != len(parts) {
			t.Fatalf("chunking changed head count: %d vs %d", len(whole), len(parts))
		}
		for i := range whole {
			if whole[i] != parts[i] {
				t.Fatalf("head %d differs:\nwhole:   %q\nchunked: %q", i, whole[i], parts[i])
			}
			if !strings.HasSuffix(whole[i], "\r\n\r\n") {
				t.Fatalf("head %d missing terminator: %q", i, whole[i])
			}
		}
	})
}

// FuzzParseResponseHead: the response-head parser (the client half) must
// never panic and must keep status/content-length within what the head
// actually says.
func FuzzParseResponseHead(f *testing.F) {
	f.Add("HTTP/1.1 200 OK\r\nContent-Length: 16384\r\n\r\n")
	f.Add("HTTP/1.1 503 Service Unavailable\r\nContent-Length: 24\r\nConnection: close\r\n\r\n")
	f.Add("HTTP/1.1 404\r\n\r\n")
	f.Add("HTTP/1.1 abc Bad\r\n\r\n")
	f.Add("junk\r\n\r\n")
	f.Fuzz(func(t *testing.T, head string) {
		status, length, err := httpd.ParseResponseHead(head)
		if err != nil {
			return
		}
		if length < -1 {
			t.Fatalf("content-length %d below the no-header sentinel", length)
		}
		_ = status
	})
}
