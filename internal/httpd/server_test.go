package httpd_test

import (
	"testing"

	"hybrid/internal/httpd"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/netsim"
	"hybrid/internal/nptl"
	"hybrid/internal/tcp"
	"hybrid/internal/vclock"
)

// runAndWait runs m to completion without requiring the whole runtime to
// go idle (servers keep accept-loop threads parked forever).
func runAndWait(rt *core.Runtime, m core.M[core.Unit]) {
	done := make(chan struct{})
	rt.Spawn(core.Then(m, core.Do(func() { close(done) })))
	<-done
}

// site is a complete serving stack on a virtual clock.
type site struct {
	clk *vclock.VirtualClock
	k   *kernel.Kernel
	fs  *kernel.FS
	rt  *core.Runtime
	io  *hio.IO
}

func newSite(t *testing.T, files, fileSize int) *site {
	t.Helper()
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.DefaultGeometry()))
	for i := 0; i < files; i++ {
		if _, err := fs.Create(loadgen.FileName(i), int64(fileSize), false); err != nil {
			t.Fatal(err)
		}
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	io := hio.New(rt, k, fs)
	t.Cleanup(func() {
		io.Close()
		rt.Shutdown()
	})
	return &site{clk: clk, k: k, fs: fs, rt: rt, io: io}
}

func TestServerServesFileOverSockets(t *testing.T) {
	s := newSite(t, 4, 1024)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{CacheBytes: 1 << 20})
	s.rt.Spawn(srv.ListenAndServe("web:80"))

	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 1, Files: 4, RequestsPerClient: 8, Seed: 42,
	})
	runAndWait(s.rt, gen.Run())
	if gen.Errors.Load() != 0 {
		t.Fatalf("client errors: %d", gen.Errors.Load())
	}
	if got := gen.Requests.Load(); got != 8 {
		t.Fatalf("requests = %d, want 8", got)
	}
	if got := gen.Bytes.Load(); got != 8*1024 {
		t.Fatalf("bytes = %d, want %d", got, 8*1024)
	}
	if gen.Statuses[2].Load() != 8 {
		t.Fatalf("2xx = %d", gen.Statuses[2].Load())
	}
	if srv.Requests() != 8 {
		t.Fatalf("server requests = %d", srv.Requests())
	}
}

func TestServerCachesFiles(t *testing.T) {
	s := newSite(t, 1, 16384)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{CacheBytes: 1 << 20})
	s.rt.Spawn(srv.ListenAndServe("web:80"))
	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 1, Files: 1, RequestsPerClient: 5, Seed: 1,
	})
	runAndWait(s.rt, gen.Run())
	hits, misses, _ := srv.Cache().Stats()
	if misses != 1 || hits != 4 {
		t.Fatalf("cache hits=%d misses=%d, want 4/1", hits, misses)
	}
	// Cached requests take no disk time: total disk requests == 1 file.
	if d := s.fs.Disk().Snapshot(); d.Requests != 1 {
		t.Fatalf("disk requests = %d, want 1", d.Requests)
	}
}

func TestServer404(t *testing.T) {
	s := newSite(t, 1, 512)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{})
	s.rt.Spawn(srv.ListenAndServe("web:80"))
	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 1, Files: 99, RequestsPerClient: 4, Seed: 3,
	})
	runAndWait(s.rt, gen.Run())
	if gen.Statuses[4].Load() == 0 {
		t.Fatal("no 4xx responses for missing files")
	}
	if gen.Errors.Load() != 0 {
		t.Fatalf("client errors: %d (404s must not kill the connection)", gen.Errors.Load())
	}
}

func TestServerManyClients(t *testing.T) {
	s := newSite(t, 32, 4096)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{CacheBytes: 1 << 20})
	s.rt.Spawn(srv.ListenAndServe("web:80"))
	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 64, Files: 32, RequestsPerClient: 4, Seed: 9,
	})
	runAndWait(s.rt, gen.Run())
	if gen.Errors.Load() != 0 {
		t.Fatalf("client errors: %d", gen.Errors.Load())
	}
	if got := gen.Requests.Load(); got != 64*4 {
		t.Fatalf("requests = %d, want %d", got, 64*4)
	}
	// Server-side handlers observe client EOFs asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ActiveConns = %d after drain", srv.ActiveConns())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerNetDelayAdvancesClock(t *testing.T) {
	s := newSite(t, 1, 16384)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{})
	s.rt.Spawn(srv.ListenAndServe("web:80"))
	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 1, Files: 1, RequestsPerClient: 3, Seed: 1,
		RTT: time.Millisecond, Bandwidth: 100_000_000 / 8,
	})
	runAndWait(s.rt, gen.Run())
	// 3 requests × (1ms RTT + 16KB/12.5MBps ≈ 1.3ms) ≥ 6ms, plus disk.
	if got := time.Duration(s.clk.Now()); got < 6*time.Millisecond {
		t.Fatalf("virtual time %v too small for modelled network", got)
	}
}

// TestServerOverTCPStack runs the hybrid server over the application-
// level TCP stack end to end: monadic client ↔ TCP/netsim ↔ monadic
// server — the paper's §4.8 configuration.
func TestServerOverTCPStack(t *testing.T) {
	clk := vclock.NewVirtual()
	net := netsim.New(clk, 5)
	hostS, err := net.Host("server", netsim.Ethernet100())
	if err != nil {
		t.Fatal(err)
	}
	hostC, err := net.Host("client", netsim.Ethernet100())
	if err != nil {
		t.Fatal(err)
	}
	stackS := tcp.NewStack(hostS, tcp.Config{})
	stackC := tcp.NewStack(hostC, tcp.Config{})

	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.DefaultGeometry()))
	if _, err := fs.Create("file-0", 16384, false); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	io := hio.New(rt, k, fs)
	defer func() {
		io.Close()
		rt.Shutdown()
	}()

	srv := httpd.NewServer(io, httpd.ServerConfig{})
	l, err := stackS.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	rt.Spawn(srv.ServeTCP(l))

	var status int
	var got int
	client := core.Bind(stackC.ConnectM("server", 80), func(c *tcp.Conn) core.M[core.Unit] {
		req := []byte("GET /file-0 HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n")
		return core.Then(
			core.Bind(c.WriteM(req), func(int) core.M[core.Unit] { return core.Skip }),
			func() core.M[core.Unit] {
				buf := make([]byte, 4096)
				var loop func() core.M[core.Unit]
				loop = func() core.M[core.Unit] {
					return core.Bind(c.ReadM(buf), func(n int) core.M[core.Unit] {
						if n == 0 {
							return c.CloseM()
						}
						if status == 0 {
							st, _, err := httpd.ParseResponseHead(string(buf[:n]))
							if err == nil {
								status = st
							}
						}
						got += n
						return loop()
					})
				}
				return loop()
			}(),
		)
	})
	runAndWait(rt, client)
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	wantMin := 16384
	if got < wantMin {
		t.Fatalf("received %d bytes, want >= %d", got, wantMin)
	}
	if errs := rt.UncaughtErrors(); len(errs) != 0 {
		t.Fatalf("uncaught: %v", errs)
	}
}

// ---------------------------------------------------------------------------
// Apache-like baseline
// ---------------------------------------------------------------------------

func TestApacheLikeServes(t *testing.T) {
	s := newSite(t, 8, 2048)
	nrt := nptl.New(s.k, s.fs, nptl.Config{MemoryBudget: -1, StackTouch: -1})
	ap := httpd.NewApacheLike(nrt, s.k, s.fs, httpd.ApacheConfig{PageCacheBytes: 1 << 20})
	if err := ap.ListenAndServe("web:80"); err != nil {
		t.Fatal(err)
	}
	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 4, Files: 8, RequestsPerClient: 6, Seed: 11,
	})
	runAndWait(s.rt, gen.Run())
	if gen.Errors.Load() != 0 {
		t.Fatalf("client errors: %d", gen.Errors.Load())
	}
	if got := gen.Requests.Load(); got != 24 {
		t.Fatalf("requests = %d", got)
	}
	if ap.Requests() != 24 {
		t.Fatalf("server requests = %d", ap.Requests())
	}
}

func TestApacheLikeCacheSqueeze(t *testing.T) {
	s := newSite(t, 2, 1024)
	nrt := nptl.New(s.k, s.fs, nptl.Config{
		StackSize: 256 * 1024, MemoryBudget: -1, StackTouch: -1,
	})
	ap := httpd.NewApacheLike(nrt, s.k, s.fs, httpd.ApacheConfig{PageCacheBytes: 1 << 20})
	if err := ap.ListenAndServe("web:80"); err != nil {
		t.Fatal(err)
	}
	before := ap.Cache().Capacity()
	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 3, Files: 2, RequestsPerClient: 2, Seed: 2,
	})
	runAndWait(s.rt, gen.Run())
	// During the run, 1 acceptor + up to 3 connection threads reserved
	// 256 KB stacks each, squeezing the 1 MB cache.
	if before != 1<<20 {
		t.Fatalf("initial capacity = %d", before)
	}
	if gen.Errors.Load() != 0 {
		t.Fatalf("client errors: %d", gen.Errors.Load())
	}
}

func TestServerHEADReturnsNoBody(t *testing.T) {
	s := newSite(t, 1, 16384)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{})
	s.rt.Spawn(srv.ListenAndServe("web:80"))

	var status int
	var length int64
	var extra int
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		req := []byte("HEAD /file-0 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
		return core.Seq(
			core.Bind(s.io.SockSend(fd, req), func(int) core.M[core.Unit] { return core.Skip }),
			func() core.M[core.Unit] {
				buf := make([]byte, 8192)
				var loop func(seen []byte) core.M[core.Unit]
				loop = func(seen []byte) core.M[core.Unit] {
					return core.Bind(s.io.SockRead(fd, buf), func(n int) core.M[core.Unit] {
						if n == 0 {
							st, cl, err := httpd.ParseResponseHead(string(seen))
							if err == nil {
								status, length = st, cl
							}
							// Anything after the blank line would be an
							// (incorrect) body.
							if i := indexBlank(seen); i >= 0 {
								extra = len(seen) - i - 4
							}
							return s.io.CloseFD(fd)
						}
						return loop(append(seen, buf[:n]...))
					})
				}
				return loop(nil)
			}(),
		)
	})
	runAndWait(s.rt, client)
	if status != 200 || length != 16384 {
		t.Fatalf("HEAD: status=%d length=%d", status, length)
	}
	if extra != 0 {
		t.Fatalf("HEAD response carried %d body bytes", extra)
	}
}

func indexBlank(b []byte) int {
	for i := 0; i+3 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' && b[i+2] == '\r' && b[i+3] == '\n' {
			return i
		}
	}
	return -1
}

func TestServerPipelinedRequests(t *testing.T) {
	// Two GETs in one write: both must be answered, in order, on the
	// same connection.
	s := newSite(t, 2, 512)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{CacheBytes: 1 << 20})
	s.rt.Spawn(srv.ListenAndServe("web:80"))

	var bodies int
	var statuses []int
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		req := []byte("GET /file-0 HTTP/1.1\r\nHost: x\r\n\r\nGET /file-1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
		return core.Seq(
			core.Bind(s.io.SockSend(fd, req), func(int) core.M[core.Unit] { return core.Skip }),
			func() core.M[core.Unit] {
				buf := make([]byte, 8192)
				var all []byte
				var loop func() core.M[core.Unit]
				loop = func() core.M[core.Unit] {
					return core.Bind(s.io.SockRead(fd, buf), func(n int) core.M[core.Unit] {
						if n == 0 {
							// Parse the concatenated responses.
							rest := all
							for len(rest) > 0 {
								i := indexBlank(rest)
								if i < 0 {
									break
								}
								st, cl, err := httpd.ParseResponseHead(string(rest[:i+4]))
								if err != nil {
									break
								}
								statuses = append(statuses, st)
								bodies += int(cl)
								rest = rest[i+4+int(cl):]
							}
							return s.io.CloseFD(fd)
						}
						all = append(all, buf[:n]...)
						return loop()
					})
				}
				return loop()
			}(),
		)
	})
	runAndWait(s.rt, client)
	if len(statuses) != 2 || statuses[0] != 200 || statuses[1] != 200 {
		t.Fatalf("statuses = %v", statuses)
	}
	if bodies != 1024 {
		t.Fatalf("total body bytes = %d, want 1024", bodies)
	}
}

func TestServerMalformedRequestClosesGracefully(t *testing.T) {
	s := newSite(t, 1, 512)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{})
	s.rt.Spawn(srv.ListenAndServe("web:80"))
	var sawEOF bool
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		return core.Seq(
			core.Bind(s.io.SockSend(fd, []byte("NONSENSE\r\n\r\n")), func(int) core.M[core.Unit] { return core.Skip }),
			core.Bind(s.io.SockRead(fd, make([]byte, 256)), func(n int) core.M[core.Unit] {
				// Either an error response or a clean close is acceptable;
				// the server must not wedge.
				sawEOF = true
				return s.io.CloseFD(fd)
			}),
		)
	})
	runAndWait(s.rt, core.Catch(client, func(error) core.M[core.Unit] {
		sawEOF = true
		return core.Skip
	}))
	if !sawEOF {
		t.Fatal("client never observed a response or close")
	}
	if srv.Errors() == 0 {
		t.Fatal("malformed request not recorded as an error")
	}
}

func TestApacheLikeHEAD(t *testing.T) {
	s := newSite(t, 1, 2048)
	nrt := nptl.New(s.k, s.fs, nptl.Config{MemoryBudget: -1, StackTouch: -1})
	ap := httpd.NewApacheLike(nrt, s.k, s.fs, httpd.ApacheConfig{PageCacheBytes: 1 << 20})
	if err := ap.ListenAndServe("web:80"); err != nil {
		t.Fatal(err)
	}
	var status int
	var length int64
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		req := []byte("HEAD /file-0 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
		return core.Seq(
			core.Bind(s.io.SockSend(fd, req), func(int) core.M[core.Unit] { return core.Skip }),
			func() core.M[core.Unit] {
				buf := make([]byte, 4096)
				var all []byte
				var loop func() core.M[core.Unit]
				loop = func() core.M[core.Unit] {
					return core.Bind(s.io.SockRead(fd, buf), func(n int) core.M[core.Unit] {
						if n == 0 {
							status, length, _ = httpd.ParseResponseHead(string(all))
							return s.io.CloseFD(fd)
						}
						all = append(all, buf[:n]...)
						return loop()
					})
				}
				return loop()
			}(),
		)
	})
	runAndWait(s.rt, client)
	if status != 200 || length != 2048 {
		t.Fatalf("HEAD via baseline: %d %d", status, length)
	}
}

func TestServerResourceAwareDiskBound(t *testing.T) {
	// With MaxDiskReaders=2, no more than two handler threads may hold
	// the disk path at once; the workload still completes fully.
	s := newSite(t, 64, 4096)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes:     1 << 20,
		MaxDiskReaders: 2,
	})
	s.rt.Spawn(srv.ListenAndServe("web:80"))
	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 16, Files: 64, RequestsPerClient: 4, Seed: 5,
	})
	runAndWait(s.rt, gen.Run())
	if gen.Errors.Load() != 0 {
		t.Fatalf("errors: %d", gen.Errors.Load())
	}
	if gen.Requests.Load() != 64 {
		t.Fatalf("requests = %d", gen.Requests.Load())
	}
	// The disk queue depth must never exceed the admission bound (plus
	// the one request the disk itself is servicing).
	if d := s.fs.Disk().Snapshot(); d.MaxQueue > 2 {
		t.Fatalf("disk queue reached %d with MaxDiskReaders=2", d.MaxQueue)
	}
	if srv.DiskAdmissions() == 0 {
		t.Fatal("no requests took the bounded disk path")
	}
}
