package httpd_test

import (
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/faults"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
)

// acceptN accepts exactly n connections and forks a handler for each,
// then lets the acceptor thread terminate — unlike AcceptLoop, which
// parks forever, this leaves the runtime able to reach WaitIdle.
func acceptN(s *site, srv *httpd.Server, addr string, n int) core.M[core.Unit] {
	return core.Bind(s.io.Listen(addr, 1024), func(lfd kernel.FD) core.M[core.Unit] {
		return core.ForN(n, func(int) core.M[core.Unit] {
			return core.Bind(s.io.SockAccept(lfd), func(conn kernel.FD) core.M[core.Unit] {
				return core.Fork(srv.ServeTransport(httpd.SockTransport{IO: s.io, FD: conn}))
			})
		})
	})
}

// waitIdleOrFatal asserts the runtime quiesces — the acceptance criterion
// that degradation must not wedge or leak threads.
func waitIdleOrFatal(t *testing.T, s *site) {
	t.Helper()
	idle := make(chan struct{})
	go func() { s.rt.WaitIdle(); close(idle) }()
	select {
	case <-idle:
	case <-time.After(30 * time.Second):
		t.Fatalf("WaitIdle wedged: %d threads still live", s.rt.Live())
	}
}

// TestServerDegradesUnderDiskFaults drives the full stack with a hostile
// disk: transient EIO on half of all reads. With DiskRetries set the
// server must keep serving (2xx present), answer dead files with 503
// instead of tearing connections, count its retries, and quiesce.
func TestServerDegradesUnderDiskFaults(t *testing.T) {
	const clients = 8
	s := newSite(t, 8, 4096)
	in := faults.New(faults.Config{
		Seed:  7,
		Rates: map[faults.Op]float64{faults.DiskRead: 0.5},
	}, s.clk)
	s.fs.Disk().SetFaults(in)

	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes:  1, // force every GET through the disk path
		DiskRetries: 2,
	})
	s.rt.Spawn(acceptN(s, srv, "web:80", clients))

	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: clients, Files: 8, RequestsPerClient: 8, Seed: 7,
	})
	done := make(chan struct{})
	s.rt.Spawn(core.Then(gen.Run(), core.Do(func() { close(done) })))
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workload wedged under disk faults")
	}

	if in.Injected(faults.DiskRead) == 0 {
		t.Fatal("fault plan injected nothing; test is vacuous")
	}
	if gen.Statuses[2].Load() == 0 {
		t.Fatal("no 2xx at all: server failed outright instead of degrading")
	}
	if gen.Statuses[5].Load() == 0 {
		t.Fatal("no 503 observed by clients despite exhausted retries")
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counter("disk_retries") == 0 {
		t.Fatal("disk_retries counter never incremented")
	}
	if snap.Counter("resp_503") == 0 {
		t.Fatal("resp_503 counter never incremented")
	}
	if snap.Counter("disk_errors") == 0 {
		t.Fatal("disk_errors counter never incremented")
	}
	// Retries are bounded: at most DiskRetries per read attempt chain.
	reads := s.fs.Disk().Snapshot().Requests
	if max := reads * 2; snap.Counter("disk_retries") > int64(max) {
		t.Fatalf("disk_retries = %d exceeds bound %d", snap.Counter("disk_retries"), max)
	}
	waitIdleOrFatal(t, s)
}

// TestServerShedsPastDeadline sets a request deadline far below the
// disk's service time: the server must answer 503, count the shed, and
// still quiesce — the straggling handler thread finishes its disk read,
// fails its late write against the closed connection, and exits.
func TestServerShedsPastDeadline(t *testing.T) {
	s := newSite(t, 1, 16384)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes:      1,
		DiskRetries:     1, // engage the read-before-head degraded path
		RequestDeadline: 50 * time.Microsecond,
	})
	s.rt.Spawn(acceptN(s, srv, "web:80", 1))

	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 1, Files: 1, RequestsPerClient: 1, Seed: 1,
	})
	done := make(chan struct{})
	s.rt.Spawn(core.Then(gen.Run(), core.Do(func() { close(done) })))
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workload wedged under request deadline")
	}

	if gen.Statuses[5].Load() != 1 {
		t.Fatalf("5xx = %d, want 1 (deadline shed)", gen.Statuses[5].Load())
	}
	if gen.Errors.Load() != 0 {
		t.Fatalf("client errors: %d (shed must be a clean 503, not a torn stream)", gen.Errors.Load())
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counter("sheds") != 1 {
		t.Fatalf("sheds = %d, want 1", snap.Counter("sheds"))
	}
	if snap.Counter("resp_503") != 1 {
		t.Fatalf("resp_503 = %d, want 1", snap.Counter("resp_503"))
	}
	waitIdleOrFatal(t, s)
}

// TestServerFaultFreeDegradationIsInvisible: with a fault-free disk, a
// server configured with retries serves exactly like the plain one.
func TestServerFaultFreeDegradationIsInvisible(t *testing.T) {
	s := newSite(t, 4, 1024)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes:  1 << 20,
		DiskRetries: 2,
	})
	s.rt.Spawn(acceptN(s, srv, "web:80", 1))
	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 1, Files: 4, RequestsPerClient: 8, Seed: 42,
	})
	done := make(chan struct{})
	s.rt.Spawn(core.Then(gen.Run(), core.Do(func() { close(done) })))
	<-done
	if gen.Errors.Load() != 0 || gen.Statuses[2].Load() != 8 {
		t.Fatalf("errors=%d 2xx=%d, want 0/8", gen.Errors.Load(), gen.Statuses[2].Load())
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counter("disk_retries") != 0 || snap.Counter("resp_503") != 0 {
		t.Fatalf("phantom degradation: retries=%d 503s=%d",
			snap.Counter("disk_retries"), snap.Counter("resp_503"))
	}
	waitIdleOrFatal(t, s)
}
