package httpd

import (
	"strings"
	"testing"
)

// Allocation pins for the per-request parsing hot path. Bounds are the
// measured cost with a little headroom — they exist to catch a change
// that quietly reintroduces per-request garbage (the old ParseRequest
// allocated a line slice, a field slice, and two lowered strings per
// header), not to lock in exact runtime internals.

const parseReq = "GET /file-123 HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n"

func TestParseRequestAllocs(t *testing.T) {
	// One Request struct + the header map (hmap + one bucket): header
	// names and values are substrings of head, interned where consulted.
	const maxAllocs = 4
	n := testing.AllocsPerRun(500, func() {
		req, err := ParseRequest(parseReq)
		if err != nil || len(req.Headers) != 2 {
			t.Fatal("parse failed")
		}
	})
	if n > maxAllocs {
		t.Fatalf("ParseRequest allocates %v per run, want <= %d", n, maxAllocs)
	}
}

func TestKeepAliveAllocs(t *testing.T) {
	req, err := ParseRequest(parseReq)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(500, func() {
		if !req.KeepAlive() {
			t.Fatal("want keep-alive")
		}
	}); n != 0 {
		t.Fatalf("KeepAlive allocates %v per run, want 0", n)
	}
}

func TestResponseHeadMemoAllocs(t *testing.T) {
	// First render populates the memo; every later request for the same
	// (status, length, keep) triple must return the shared head.
	warm := ResponseHead(200, 16384, true)
	if n := testing.AllocsPerRun(500, func() {
		h := ResponseHead(200, 16384, true)
		if len(h) != len(warm) {
			t.Fatal("head changed")
		}
	}); n != 0 {
		t.Fatalf("memoized ResponseHead allocates %v per run, want 0", n)
	}
	// Out-of-range keys bypass the memo but still render correctly.
	if h := ResponseHead(200, 1<<53, true); !strings.Contains(string(h), "Content-Length: 9007199254740992") {
		t.Fatalf("unmemoized head wrong: %q", h)
	}
}

func TestHeadBufferSteadyStateAllocs(t *testing.T) {
	// A persistent connection reusing one HeadBuffer reaches a steady
	// state where feeding a head allocates only the head string itself
	// (returned to the caller) — the accumulation buffer stops growing.
	hb := &HeadBuffer{}
	raw := []byte(parseReq)
	for i := 0; i < 4; i++ { // reach capacity steady state
		if _, err := hb.Feed(raw); err != nil {
			t.Fatal(err)
		}
	}
	const maxAllocs = 1
	n := testing.AllocsPerRun(500, func() {
		head, err := hb.Feed(raw)
		if err != nil || head == "" {
			t.Fatal("no head")
		}
	})
	if n > maxAllocs {
		t.Fatalf("steady-state Feed allocates %v per run, want <= %d", n, maxAllocs)
	}
}
