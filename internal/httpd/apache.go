package httpd

import (
	"fmt"
	"strings"
	"sync/atomic"

	"hybrid/internal/bufpool"
	"hybrid/internal/kernel"
	"hybrid/internal/nptl"
)

// ApacheLike is the Figure 19 baseline: a thread-per-connection blocking
// static-file server over the NPTL runtime, standing in for Apache 2.0.55
// in the paper's comparison. Its file cache models the OS page cache on
// the paper's 512 MB machine: thread stacks and page cache compete for
// the same memory, so the effective cache shrinks as connections (and
// therefore kernel threads) grow — one of the structural costs of the
// thread-per-connection design.
type ApacheLike struct {
	rt    *nptl.Runtime
	k     *kernel.Kernel
	fs    *kernel.FS
	cfg   ApacheConfig
	cache *Cache

	requests atomic.Uint64
	bytesOut atomic.Uint64
	errors   atomic.Uint64
}

// ApacheConfig tunes the baseline.
type ApacheConfig struct {
	// PageCacheBytes is the page cache available with zero threads.
	// Default 100 MB, matching the hybrid server's cache for a fair
	// comparison.
	PageCacheBytes int64
	// StackSqueeze subtracts each thread's stack reservation from the
	// page cache (on by default; disable for ablations).
	StackSqueezeOff bool
	// ChunkBytes is the blocking read granularity. Default 16 KB.
	ChunkBytes int
}

func (c ApacheConfig) withDefaults() ApacheConfig {
	if c.PageCacheBytes <= 0 {
		c.PageCacheBytes = 100 * 1024 * 1024
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 16 * 1024
	}
	return c
}

// NewApacheLike creates the baseline server over an NPTL runtime.
func NewApacheLike(rt *nptl.Runtime, k *kernel.Kernel, fs *kernel.FS, cfg ApacheConfig) *ApacheLike {
	cfg = cfg.withDefaults()
	return &ApacheLike{
		rt: rt, k: k, fs: fs, cfg: cfg,
		cache: NewCache(cfg.PageCacheBytes),
	}
}

// Requests reports requests served.
func (a *ApacheLike) Requests() uint64 { return a.requests.Load() }

// BytesOut reports response body bytes written.
func (a *ApacheLike) BytesOut() uint64 { return a.bytesOut.Load() }

// Errors reports connections that ended with an error.
func (a *ApacheLike) Errors() uint64 { return a.errors.Load() }

// Cache exposes the page-cache model.
func (a *ApacheLike) Cache() *Cache { return a.cache }

// squeezeCache recomputes the page cache under thread-stack pressure.
func (a *ApacheLike) squeezeCache() {
	if a.cfg.StackSqueezeOff {
		return
	}
	avail := a.cfg.PageCacheBytes - a.rt.StackMemory()
	if avail < 1<<20 {
		avail = 1 << 20
	}
	a.cache.Resize(avail)
}

// ListenAndServe binds addr and serves until the acceptor thread fails.
// It spawns the acceptor on the NPTL runtime and returns immediately.
func (a *ApacheLike) ListenAndServe(addr string) error {
	lfd, err := a.k.Listen(addr, 1024)
	if err != nil {
		return err
	}
	return a.rt.Spawn(func(t *nptl.Thread) {
		for {
			conn, err := t.Accept(lfd)
			if err != nil {
				return
			}
			// Thread per connection; spawn failure (stack budget
			// exhausted) refuses the connection, as a loaded 2006
			// Apache would.
			if err := a.rt.Spawn(func(t *nptl.Thread) {
				a.serve(t, conn)
			}); err != nil {
				t.Close(conn)
				a.errors.Add(1)
				continue
			}
			a.squeezeCache()
		}
	})
}

// serve handles one connection with blocking calls.
func (a *ApacheLike) serve(t *nptl.Thread, conn kernel.FD) {
	hb := &HeadBuffer{}
	buf := bufpool.Get(connReadBytes)
	defer func() {
		t.Close(conn)
		a.squeezeCache()
		bufpool.Put(buf)
	}()
	for {
		head, err := hb.Pending()
		if err != nil {
			a.errors.Add(1)
			return
		}
		for head == "" {
			n, rerr := t.Read(conn, buf)
			if rerr != nil || n == 0 {
				if rerr != nil {
					a.errors.Add(1)
				}
				return
			}
			head, err = hb.Feed(buf[:n])
			if err != nil {
				a.errors.Add(1)
				return
			}
		}
		req, err := ParseRequest(head)
		if err != nil {
			a.errors.Add(1)
			return
		}
		keep, err := a.respond(t, conn, req)
		if err != nil {
			a.errors.Add(1)
			return
		}
		if !keep {
			return
		}
	}
}

func (a *ApacheLike) respond(t *nptl.Thread, conn kernel.FD, req *Request) (bool, error) {
	a.requests.Add(1)
	keep := req.KeepAlive()
	if req.Method != "GET" && req.Method != "HEAD" {
		return keep, a.sendError(t, conn, 405, keep)
	}
	name := strings.TrimPrefix(req.Path, "/")
	if name == "" || strings.Contains(name, "..") {
		return keep, a.sendError(t, conn, 400, keep)
	}
	if req.Method == "HEAD" {
		f, err := a.fs.Open(name)
		if err != nil {
			return keep, a.sendError(t, conn, 404, keep)
		}
		return keep, t.WriteAll(conn, ResponseHead(200, f.Size(), keep))
	}
	if data, ok := a.cache.Get(name); ok {
		if err := t.WriteAll(conn, ResponseHead(200, int64(len(data)), keep)); err != nil {
			return false, err
		}
		if err := t.WriteAll(conn, data); err != nil {
			return false, err
		}
		a.bytesOut.Add(uint64(len(data)))
		return keep, nil
	}
	f, err := a.fs.Open(name)
	if err != nil {
		return keep, a.sendError(t, conn, 404, keep)
	}
	size := f.Size()
	if err := t.WriteAll(conn, ResponseHead(200, size, keep)); err != nil {
		return false, err
	}
	// The page-cache model caches every file it streams (Resize evicts),
	// so reads land straight in the future cache entry; a stream cut
	// short by a zero read caches the prefix delivered, as the
	// assemble-by-append loop this replaces did.
	ck := newChunker(size, size, a.cfg.ChunkBytes)
	for off := int64(0); off < size; {
		n, err := t.Pread(f, ck.window(off), off)
		if err != nil {
			return false, err
		}
		if n == 0 {
			break
		}
		if err := t.WriteAll(conn, ck.view(off, n)); err != nil {
			return false, err
		}
		a.bytesOut.Add(uint64(n))
		off += int64(n)
	}
	a.cache.Put(name, ck.assembled())
	return keep, nil
}

func (a *ApacheLike) sendError(t *nptl.Thread, conn kernel.FD, status int, keep bool) error {
	body := fmt.Sprintf("%d %s\n", status, statusText[status])
	if err := t.WriteAll(conn, ResponseHead(status, int64(len(body)), keep)); err != nil {
		return err
	}
	return t.WriteAll(conn, []byte(body))
}
