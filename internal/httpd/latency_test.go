package httpd_test

import (
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/netsim"
	"hybrid/internal/tcp"
	"hybrid/internal/vclock"
)

// TestServerOverTCPLatencyTrace guards end-to-end latency through the
// full stack (HTTP server + AIO disk + TCP + Ethernet): cold requests are
// disk-bound (~6ms), cached ones network-bound (~1.5ms). A stray
// retransmission timeout or lost wakeup shows up as a huge jump.
func TestServerOverTCPLatencyTrace(t *testing.T) {
	clk := vclock.NewVirtual()
	net := netsim.New(clk, 5)
	hostS, _ := net.Host("server", netsim.Ethernet100())
	hostC, _ := net.Host("client", netsim.Ethernet100())
	stackS := tcp.NewStack(hostS, tcp.Config{})
	stackC := tcp.NewStack(hostC, tcp.Config{})
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.BenchGeometry()))
	for i := 0; i < 4; i++ {
		fs.Create(loadgenName(i), 16384, false)
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()
	srv := httpd.NewServer(io, httpd.ServerConfig{CacheBytes: 1 << 20})
	l, _ := stackS.Listen(80)
	rt.Spawn(srv.ServeTCP(l))

	var marks []string
	var lastDone time.Duration
	done := make(chan struct{})
	client := core.Bind(stackC.ConnectM("server", 80), func(c *tcp.Conn) core.M[core.Unit] {
		buf := make([]byte, 8192)
		oneReq := func(i int) core.M[core.Unit] {
			req := []byte("GET /" + loadgenName(i%4) + " HTTP/1.1\r\nHost: s\r\n\r\n")
			var drain func(got int) core.M[core.Unit]
			drain = func(got int) core.M[core.Unit] {
				if got >= 16384 { // head+body roughly; just drain enough
					return core.Skip
				}
				return core.Bind(c.ReadM(buf), func(n int) core.M[core.Unit] {
					return drain(got + n)
				})
			}
			return core.Seq(
				core.Bind(c.WriteM(req), func(int) core.M[core.Unit] { return core.Skip }),
				drain(0),
				core.Do(func() {
					lastDone = time.Duration(clk.Now())
					marks = append(marks, lastDone.String())
				}),
			)
		}
		return core.Seq(
			oneReq(0), oneReq(1), oneReq(2), oneReq(3),
			oneReq(0), oneReq(1),
			c.CloseM(),
			core.Do(func() { close(done) }),
		)
	})
	rt.Spawn(client)
	<-done
	for i, m := range marks {
		t.Logf("request %d done at %s", i, m)
	}
	// Assert on a time captured inside the workload: after the workload
	// parks, the quiescent clock races through TIME_WAIT timers.
	if lastDone > 100*time.Millisecond {
		t.Fatalf("6 requests took %v of virtual time", lastDone)
	}
}

func loadgenName(i int) string {
	return "file-" + string(rune('0'+i))
}
