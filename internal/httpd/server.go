package httpd

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"hybrid/internal/bufpool"
	"hybrid/internal/core"
	"hybrid/internal/hio"
	"hybrid/internal/iovec"
	"hybrid/internal/kernel"
	"hybrid/internal/stats"
	"hybrid/internal/tcp"
	"hybrid/internal/timerwheel"
	"hybrid/internal/vclock"
)

// Transport abstracts a byte-stream connection for the monadic server, so
// the same server code runs over kernel stream sockets or the
// application-level TCP stack — the paper's "by editing one line of code
// in the web server, the programmer can choose between the standard
// socket library and the customized TCP library" (§5.2).
type Transport interface {
	// Read yields at least one byte, or 0 at end of stream.
	Read(p []byte) core.M[int]
	// Write sends all of p.
	Write(p []byte) core.M[int]
	// Close ends the connection.
	Close() core.M[core.Unit]
}

// SockTransport is a Transport over a kernel stream socket.
type SockTransport struct {
	IO *hio.IO
	FD kernel.FD
}

func (s SockTransport) Read(p []byte) core.M[int]  { return s.IO.SockRead(s.FD, p) }
func (s SockTransport) Write(p []byte) core.M[int] { return s.IO.SockSend(s.FD, p) }
func (s SockTransport) Close() core.M[core.Unit]   { return s.IO.CloseFD(s.FD) }

// TCPTransport is a Transport over the application-level TCP stack.
type TCPTransport struct{ Conn *tcp.Conn }

func (t TCPTransport) Read(p []byte) core.M[int]  { return t.Conn.ReadM(p) }
func (t TCPTransport) Write(p []byte) core.M[int] { return t.Conn.WriteM(p) }
func (t TCPTransport) Close() core.M[core.Unit]   { return t.Conn.CloseM() }

// VectorWriter is an optional Transport capability: WriteOwned sends a
// buffer whose storage the caller promises never to mutate, so the
// transport may alias it instead of copying. The TCP transport threads
// it through the stack's vectored send path — segments reference the
// response payload in place, the zero-copy half of §4.3's "avoiding
// unnecessary copies".
type VectorWriter interface {
	WriteOwned(p []byte) core.M[int]
}

// WriteOwned queues p by reference via the vectored write path. Its
// trace is node-for-node the same as Write's — TryWriteV accepts
// exactly the prefix TryWrite would copy — so the transport switch
// changes no scheduling decisions.
func (t TCPTransport) WriteOwned(p []byte) core.M[int] {
	return core.Map(t.Conn.WriteVM(iovec.FromBytes(p)), func(core.Unit) int { return len(p) })
}

// CellWriter is an optional Transport capability for the flattened serve
// loop: WriteCell returns a computation that, each time its trace is
// forced, writes all of the buffer *cell holds at that moment, by the
// transport's best path (by reference where it has one). The serve loop
// applies it once per connection and re-enters the trace per response,
// so steady-state responses allocate no write nodes. The emitted node
// sequence is exactly the per-request Write/WriteOwned sequence, so the
// fast path changes no scheduling decisions. *cell must be non-empty at
// entry and must not change until the count is delivered.
type CellWriter interface {
	WriteCell(cell *[]byte) core.M[int]
}

// WriteCell sends by the copying socket path, like Write.
func (s SockTransport) WriteCell(cell *[]byte) core.M[int] {
	return s.IO.SockSendCell(s.FD, cell)
}

// WriteCell queues by reference via the vectored send path, like
// WriteOwned — cached responses stay zero-copy on the fast path.
func (t TCPTransport) WriteCell(cell *[]byte) core.M[int] {
	return t.Conn.WriteCellVM(cell)
}

// ServerConfig tunes the hybrid server.
type ServerConfig struct {
	// CacheBytes is the application-level cache size; the paper's server
	// used a fixed 100 MB.
	CacheBytes int64
	// ChunkBytes is the AIO read granularity for uncached files.
	// Default 16 KB (the benchmark's file size, so one read per file).
	ChunkBytes int
	// MaxDiskReaders, when positive, bounds how many handler threads may
	// be in the disk path at once; the rest park on a semaphore. This is
	// the paper's future-work item — "implement more advanced scheduling
	// algorithms, such as resource aware scheduling used in Capriccio"
	// (§5.2) — in its simplest admission-control form: cached requests
	// never queue behind a saturated disk. Zero disables the bound.
	MaxDiskReaders int
	// DiskRetries, when positive, enables graceful degradation of the
	// disk path: each AIO read gets up to DiskRetries retries (with
	// RetryBackoff between them) before the request fails, and a file
	// whose first read fails after all retries is answered with a 503
	// instead of a wedged or torn connection. Zero keeps the original
	// fail-fast path byte-for-byte.
	DiskRetries int
	// RetryBackoff is the base delay between disk retries (doubling each
	// attempt). Default 500 µs when DiskRetries is set.
	RetryBackoff vclock.Duration
	// RequestDeadline, when positive, bounds each request's total
	// service time: past it the server sends a 503 and sheds the
	// connection. Zero disables the deadline.
	RequestDeadline vclock.Duration
	// Overload, when non-nil, enables admission control, circuit-broken
	// load shedding, connection supervision, and graceful drain (see
	// OverloadConfig). Nil keeps the server byte-identical to the plain
	// implementation.
	Overload *OverloadConfig
	// Lifecycle, when non-nil, arms per-connection phase deadlines on the
	// server's timer wheel: idle reaping, header and body read budgets,
	// and write-stall detection (see LifecycleConfig). Nil keeps the
	// server byte-identical to the plain implementation.
	Lifecycle *LifecycleConfig
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 100 * 1024 * 1024
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 16 * 1024
	}
	if c.DiskRetries > 0 && c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * time.Microsecond
	}
	return c
}

// degrading reports whether any graceful-degradation machinery is on.
// When false the server's trace shape is identical to the original
// fail-fast implementation — important for deterministic-replay tests.
func (c ServerConfig) degrading() bool {
	return c.DiskRetries > 0 || c.RequestDeadline > 0
}

// Server is the hybrid web server: one monadic thread per connection,
// asynchronous disk I/O, and an application-level cache. Its structure is
// the paper's 370-line server: an accept loop forking per-client threads
// whose control flow reads like sequential code, with failures handled by
// monadic exceptions.
type Server struct {
	io    *hio.IO
	cfg   ServerConfig
	cache *Cache
	disk  *core.Semaphore // nil unless MaxDiskReaders > 0

	requests     atomic.Uint64
	bytesOut     atomic.Uint64
	errors       atomic.Uint64
	conns        atomic.Int64
	diskWaits    atomic.Uint64
	cachedServes atomic.Uint64 // GETs answered from the cache
	aioServes    atomic.Uint64 // GETs streamed from disk via AIO

	// Degradation counters (registered only when degrading() — the
	// default server's stats snapshot is unchanged).
	diskRetries atomic.Uint64 // disk reads retried after a fault
	diskErrors  atomic.Uint64 // disk reads that failed after all retries
	sheds       atomic.Uint64 // connections shed (503) by the deadline
	unavailable atomic.Uint64 // 503 responses sent

	// Lifecycle state and counters (nil / registered only when
	// cfg.Lifecycle arms at least one deadline).
	wheel      *timerwheel.Wheel
	reapedIdle atomic.Uint64 // idle keep-alive connections reaped
	shedHeader atomic.Uint64 // slow-loris header sheds
	shedBody   atomic.Uint64 // slow body-drain sheds
	shedWrite  atomic.Uint64 // write-stall sheds

	// Overload state and counters (nil / registered only when
	// cfg.Overload is set).
	ovl          *overloadState
	shedFast     atomic.Uint64 // uncached GETs shed by the open breaker
	connPanics   atomic.Uint64 // supervised connection threads that panicked
	forcedCloses atomic.Uint64 // connections force-closed by Drain
	classCached  atomic.Uint64 // requests in the cached cost class
	classDisk    atomic.Uint64 // requests in the blocking-disk cost class
	classMeta    atomic.Uint64 // metadata-only requests (HEAD)

	metrics *stats.Registry
}

// NewServer creates a server over the given I/O layer (whose FS holds the
// document tree).
func NewServer(io *hio.IO, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{io: io, cfg: cfg, cache: NewCache(cfg.CacheBytes)}
	if cfg.MaxDiskReaders > 0 {
		s.disk = core.NewSemaphore(cfg.MaxDiskReaders)
	}
	s.metrics = stats.NewRegistry()
	s.metrics.CounterFunc("requests", s.requests.Load)
	s.metrics.CounterFunc("bytes_out", s.bytesOut.Load)
	s.metrics.CounterFunc("errors", s.errors.Load)
	s.metrics.CounterFunc("cached_serves", s.cachedServes.Load)
	s.metrics.CounterFunc("aio_serves", s.aioServes.Load)
	s.metrics.CounterFunc("disk_admissions", s.diskWaits.Load)
	s.metrics.GaugeFunc("active_conns", s.conns.Load)
	s.metrics.CounterFunc("cache_hits", func() uint64 { h, _, _ := s.cache.Stats(); return h })
	s.metrics.CounterFunc("cache_misses", func() uint64 { _, m, _ := s.cache.Stats(); return m })
	s.metrics.CounterFunc("cache_evictions", func() uint64 { _, _, e := s.cache.Stats(); return e })
	s.metrics.GaugeFunc("cache_bytes", s.cache.Used)
	if cfg.degrading() {
		s.metrics.CounterFunc("disk_retries", s.diskRetries.Load)
		s.metrics.CounterFunc("disk_errors", s.diskErrors.Load)
		s.metrics.CounterFunc("sheds", s.sheds.Load)
		s.metrics.CounterFunc("resp_503", s.unavailable.Load)
	}
	if cfg.Lifecycle.enabled() {
		s.wheel = timerwheel.New(io.Clock())
		s.metrics.CounterFunc("reaped_idle", s.reapedIdle.Load)
		s.metrics.CounterFunc("shed_header", s.shedHeader.Load)
		s.metrics.CounterFunc("shed_body", s.shedBody.Load)
		s.metrics.CounterFunc("shed_write", s.shedWrite.Load)
	}
	if cfg.Overload != nil {
		s.ovl = newOverloadState(io.Clock(), cfg.Overload.withDefaults())
		s.metrics.CounterFunc("shed_fast", s.shedFast.Load)
		s.metrics.CounterFunc("conn_panics", s.connPanics.Load)
		s.metrics.CounterFunc("forced_closes", s.forcedCloses.Load)
		s.metrics.CounterFunc("class_cached", s.classCached.Load)
		s.metrics.CounterFunc("class_disk", s.classDisk.Load)
		s.metrics.CounterFunc("class_meta", s.classMeta.Load)
	}
	return s
}

// Metrics exposes the server's registry for the observability layer.
func (s *Server) Metrics() *stats.Registry { return s.metrics }

// Cache exposes the server's cache (for benchmarks and tests).
func (s *Server) Cache() *Cache { return s.cache }

// Requests reports the number of requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// BytesOut reports response body bytes written.
func (s *Server) BytesOut() uint64 { return s.bytesOut.Load() }

// Errors reports connections that ended with an I/O exception.
func (s *Server) Errors() uint64 { return s.errors.Load() }

// ActiveConns reports currently served connections.
func (s *Server) ActiveConns() int64 { return s.conns.Load() }

// ListenAndServe binds addr on the kernel socket layer and serves
// forever. Run it in its own monadic thread.
func (s *Server) ListenAndServe(addr string) core.M[core.Unit] {
	backlog := 1024
	if s.ovl != nil && s.ovl.cfg.Backlog > 0 {
		backlog = s.ovl.cfg.Backlog
	}
	return core.Bind(s.io.Listen(addr, backlog), func(lfd kernel.FD) core.M[core.Unit] {
		return s.serveListener(lfd)
	})
}

// BindAndServe binds addr synchronously and returns the serving program
// to spawn. Unlike ListenAndServe — which binds inside the spawned
// thread — the listener exists before this returns, so a harness may
// start client threads on other workers without racing the bind: their
// connects queue in the kernel backlog until the accept loop runs. With
// ListenAndServe under parallel workers, a client thread scheduled ahead
// of the server thread finds no listener and every connect is refused.
func (s *Server) BindAndServe(addr string) (core.M[core.Unit], error) {
	backlog := 1024
	if s.ovl != nil && s.ovl.cfg.Backlog > 0 {
		backlog = s.ovl.cfg.Backlog
	}
	lfd, err := s.io.Kernel().Listen(addr, backlog)
	if err != nil {
		return nil, err
	}
	return s.serveListener(lfd), nil
}

// serveListener records the listener for overload drain and returns the
// accept loop.
func (s *Server) serveListener(lfd kernel.FD) core.M[core.Unit] {
	if s.ovl != nil {
		s.ovl.mu.Lock()
		s.ovl.lfd = lfd
		s.ovl.haveLFD = true
		s.ovl.mu.Unlock()
	}
	return s.AcceptLoop(lfd)
}

// AcceptLoop accepts connections forever, forking a handler thread per
// client — the server function of the paper's Figure 4. In overload mode
// the loop first passes the admission gate (in-flight bound plus accept
// pacing), so a saturated server stops accepting and the kernel backlog
// carries the back-pressure; when Drain closes the listener, the loop
// ends cleanly instead of raising.
func (s *Server) AcceptLoop(lfd kernel.FD) core.M[core.Unit] {
	if s.ovl == nil {
		return core.Forever(
			core.Bind(s.io.SockAccept(lfd), func(conn kernel.FD) core.M[core.Unit] {
				return core.Fork(s.ServeTransport(SockTransport{IO: s.io, FD: conn}))
			}),
		)
	}
	loop := core.Forever(
		core.Then(s.acquireSlot(),
			core.OnException(
				core.Bind(s.io.SockAccept(lfd), func(conn kernel.FD) core.M[core.Unit] {
					return core.Fork(s.serveAdmitted(SockTransport{IO: s.io, FD: conn}))
				}),
				core.Do(s.releaseSlot),
			)),
	)
	return core.Catch(loop, func(err error) core.M[core.Unit] {
		if s.Draining() {
			return core.Skip
		}
		return core.Throw[core.Unit](err)
	})
}

// ServeTCP accepts connections from an application-level TCP listener
// forever — the one-line transport switch. Overload mode applies the
// same admission gate as the socket accept loop.
func (s *Server) ServeTCP(l *tcp.Listener) core.M[core.Unit] {
	if s.ovl == nil {
		return core.Forever(
			core.Bind(l.AcceptM(), func(conn *tcp.Conn) core.M[core.Unit] {
				return core.Fork(s.ServeTransport(TCPTransport{Conn: conn}))
			}),
		)
	}
	return core.Forever(
		core.Then(s.acquireSlot(),
			core.OnException(
				core.Bind(l.AcceptM(), func(conn *tcp.Conn) core.M[core.Unit] {
					return core.Fork(s.serveAdmitted(TCPTransport{Conn: conn}))
				}),
				core.Do(s.releaseSlot),
			)),
	)
}

// connReadBytes is the per-connection input buffer size (a bufpool
// class, so the buffer recycles across connections).
const connReadBytes = 4096

// ServeTransport handles one connection: parse requests, serve files,
// repeat while keep-alive, and on any I/O exception close cleanly.
//
// The request loop is written in direct trace style: its nodes and
// continuations are allocated once per connection and reused for every
// keep-alive request, instead of reconstructing an equivalent closure
// graph per request the way the combinator spelling does. Trace nodes
// are immutable to the scheduler (forcing one only calls its Effect), so
// re-entering the pending node IS serving the next request. Values that
// vary between runs (the last read count, the last extracted head)
// thread through connection-local variables that earlier nodes set
// before later nodes read. The emitted node sequence is exactly the one
// the combinator spelling produced.
func (s *Server) ServeTransport(t Transport) core.M[core.Unit] {
	s.conns.Add(1)
	hb := &HeadBuffer{}
	buf := bufpool.Get(connReadBytes)
	t, w := s.watchConn(t)
	if w != nil {
		w.toIdle() // budget for the first request's first byte
	}

	serveLoop := func(k func(core.Unit) core.Trace) core.Trace {
		var (
			nRead   int    // set by the read step, consumed by the feed node
			headStr string // set when a full head is extracted, consumed by parse
		)
		// The connection ends at most once, so its close trace can be
		// built up front (building an M is pure; only forcing it acts).
		closeTrace := core.Then(t.Close(), core.Do(func() {
			if w != nil {
				w.cancel()
			}
			s.conns.Add(-1)
			bufpool.Put(buf)
		}))(k)

		var pendingNode, feedNode, parseNode *core.NBIONode
		afterRespond := func(keep bool) core.Trace {
			if keep {
				if w != nil {
					w.toIdle() // response done: next deadline is the idle reap
				}
				return pendingNode // next request on this connection
			}
			return closeTrace
		}

		// Flattened cached-GET fast path. When the transport can write
		// through a cell (CellWriter) and no request deadline wraps
		// responses in a timeout race, the whole cached response — head
		// write, body write, byte accounting, keep-alive decision — is two
		// trace re-entries of computations applied here, once per
		// connection: the parse effect stores the response buffers in the
		// cells and jumps to the pre-applied head-write trace. The request
		// struct and its header map are reused across requests for the
		// same reason (safe exactly because no deadline path can retain
		// the request beyond its response). Counters fire at the same
		// positions respond() fires them, and the node sequence is
		// identical to the per-request spelling, so figure output does not
		// move. Everything else — HEAD, bad requests, cache misses,
		// deadline-bounded serving — falls back to respondBounded.
		var (
			cellHead, cellData []byte
			cellKeep           bool
			fastReq            Request
			fastHead           core.Trace
		)
		useFast := false
		if cw, ok := t.(CellWriter); ok && s.cfg.RequestDeadline <= 0 {
			useFast = true
			dataTrace := cw.WriteCell(&cellData)(func(n int) core.Trace {
				s.bytesOut.Add(uint64(n))
				return afterRespond(cellKeep)
			})
			fastHead = cw.WriteCell(&cellHead)(func(int) core.Trace { return dataTrace })
		}
		respondTrace := func(req *Request) core.Trace {
			if useFast && req.Method == "GET" {
				name := strings.TrimPrefix(req.Path, "/")
				if name == "" || strings.Contains(name, "..") {
					s.requests.Add(1)
					return s.sendError(t, 400, req.KeepAlive())(afterRespond)
				}
				s.requests.Add(1)
				keep := req.KeepAlive()
				if data, ok := s.cache.Get(name); ok {
					s.cachedServes.Add(1)
					if s.ovl != nil {
						s.classCached.Add(1)
					}
					cellKeep = keep
					cellHead = ResponseHead(200, int64(len(data)), keep)
					cellData = data
					return fastHead
				}
				return s.respondMiss(t, name, keep)(afterRespond)
			}
			return s.respondBounded(t, req)(afterRespond)
		}

		parseNode = &core.NBIONode{Effect: func() core.Trace {
			var req *Request
			var err error
			if useFast {
				req, err = &fastReq, ParseRequestInto(&fastReq, headStr)
			} else {
				req, err = ParseRequest(headStr)
			}
			if err != nil {
				return &core.ThrowNode{Err: err}
			}
			if w != nil {
				if drain := s.drainBody(t, hb, req, w, buf); drain != nil {
					return drain(func(core.Unit) core.Trace {
						w.toWrite()
						return respondTrace(req)
					})
				}
				w.toWrite()
			}
			return respondTrace(req)
		}}
		feedNode = &core.NBIONode{Effect: func() core.Trace {
			head, err := hb.Feed(buf[:nRead])
			if err != nil {
				return &core.ThrowNode{Err: err}
			}
			if head == "" {
				return pendingNode // need more input for this head
			}
			headStr = head
			return parseNode
		}}
		readTrace := t.Read(buf)(func(n int) core.Trace {
			if n == 0 {
				return closeTrace // clean EOF
			}
			if w != nil {
				w.onBytes() // first bytes of a head: idle -> header budget
			}
			nRead = n
			return feedNode
		})
		pendingNode = &core.NBIONode{Effect: func() core.Trace {
			head, err := hb.Pending()
			if err != nil {
				return &core.ThrowNode{Err: err}
			}
			if head != "" {
				headStr = head
				return parseNode
			}
			return readTrace
		}}
		return pendingNode
	}

	// Any exception (EPIPE, reset, malformed request) ends the
	// connection gracefully — the paper's "I/O errors are handled
	// gracefully using exceptions". The exception path never reached the
	// close trace's accounting node, so the read buffer is recycled here.
	return core.Catch(core.M[core.Unit](serveLoop), func(err error) core.M[core.Unit] {
		if s.ovl != nil && s.ovl.cfg.SuperviseConns {
			var pe *core.PanicError
			if errors.As(err, &pe) {
				// A trapped panic is a handler bug, not an I/O error:
				// close the transport and re-raise for the supervisor in
				// serveAdmitted to account for it. The buffer is left to
				// the garbage collector — after a panic mid-handler its
				// state is not worth reasoning about.
				if w != nil {
					w.cancel()
				}
				s.conns.Add(-1)
				return core.Then(
					core.Catch(core.Then(t.Close(), core.Skip),
						func(error) core.M[core.Unit] { return core.Skip }),
					core.Throw[core.Unit](err),
				)
			}
		}
		if w != nil {
			w.cancel()
		}
		s.errors.Add(1)
		s.conns.Add(-1)
		bufpool.Put(buf)
		return core.Catch(
			core.Then(t.Close(), core.Skip),
			func(error) core.M[core.Unit] { return core.Skip },
		)
	})
}

// respondBounded applies the configured request deadline around respond.
// Past the deadline the server answers 503 and sheds the connection; per
// the runtime's no-cancellation semantics (FirstOf), the straggling
// handler keeps running in its own thread and its late writes fail
// harmlessly once the connection closes.
func (s *Server) respondBounded(t Transport, req *Request) core.M[bool] {
	if s.cfg.RequestDeadline <= 0 {
		return s.respond(t, req)
	}
	return core.Catch(
		core.Timeout(s.io.Clock(), s.cfg.RequestDeadline, s.respond(t, req)),
		func(err error) core.M[bool] {
			if !errors.Is(err, core.ErrTimedOut) {
				return core.Throw[bool](err)
			}
			s.sheds.Add(1)
			return core.Catch(s.sendError(t, 503, false),
				func(error) core.M[bool] { return core.Return(false) })
		},
	)
}

// respond serves one request and reports whether to keep the connection.
func (s *Server) respond(t Transport, req *Request) core.M[bool] {
	s.requests.Add(1)
	keep := req.KeepAlive()
	if req.Method != "GET" && req.Method != "HEAD" {
		return s.sendError(t, 405, keep)
	}
	name := strings.TrimPrefix(req.Path, "/")
	if name == "" || strings.Contains(name, "..") {
		return s.sendError(t, 400, keep)
	}

	// HEAD: metadata only; the blocking open runs on the blio pool.
	if req.Method == "HEAD" {
		if s.ovl != nil {
			s.classMeta.Add(1)
		}
		return core.Bind(
			core.Catch(
				core.Map(s.io.FileOpen(name), func(f *kernel.File) int64 { return f.Size() }),
				func(error) core.M[int64] { return core.Return(int64(-1)) },
			),
			func(size int64) core.M[bool] {
				if size < 0 {
					return s.sendError(t, 404, keep)
				}
				return core.Then(
					core.Bind(t.Write(ResponseHead(200, size, keep)),
						func(int) core.M[core.Unit] { return core.Skip }),
					core.Return(keep),
				)
			},
		)
	}

	// Cache hit path: purely nonblocking. Cache entries and memoized
	// response heads are immutable, so a transport that can send by
	// reference (VectorWriter) serves the hit zero-copy: the bytes the
	// client receives were written exactly once, at cache fill. The two
	// writes are sequenced in direct trace style — head write, body
	// write, deliver keep — the same nodes the combinator spelling
	// emits, minus its intermediate closures on the hottest path.
	if data, ok := s.cache.Get(name); ok {
		s.cachedServes.Add(1)
		if s.ovl != nil {
			s.classCached.Add(1)
		}
		head := ResponseHead(200, int64(len(data)), keep)
		var writeHead, writeData core.M[int]
		if vw, ok := t.(VectorWriter); ok {
			writeHead, writeData = vw.WriteOwned(head), vw.WriteOwned(data)
		} else {
			writeHead, writeData = t.Write(head), t.Write(data)
		}
		return func(k func(bool) core.Trace) core.Trace {
			return writeHead(func(int) core.Trace {
				return writeData(func(n int) core.Trace {
					s.bytesOut.Add(uint64(n))
					return k(keep)
				})
			})
		}
	}

	return s.respondMiss(t, name, keep)
}

// respondMiss serves a cache-missing GET: the blocking-disk cost class.
// Under an open breaker the request is shed with an immediate 503 —
// cached requests never reach this point, so shedding protects exactly
// the expensive path. It is shared by respond and the flattened serve
// loop's fast path (whose own cache probe already counted the miss).
func (s *Server) respondMiss(t Transport, name string, keep bool) core.M[bool] {
	if s.ovl != nil {
		s.classDisk.Add(1)
		if s.ovl.breaker != nil {
			if admit, _ := s.shedDisk(); !admit {
				return s.sendError(t, 503, keep)
			}
			return s.observeDisk(s.respondDisk(t, name, keep))
		}
	}
	return s.respondDisk(t, name, keep)
}

// respondDisk serves a cache-missing GET: open (blocking pool) and
// stream via AIO, exactly the paper's send_file (Figure 13) with cleanup
// handled by Catch in the caller.
func (s *Server) respondDisk(t Transport, name string, keep bool) core.M[bool] {
	return core.Bind(
		core.Catch(
			core.Map(s.io.FileOpen(name), func(f *kernel.File) *kernel.File { return f }),
			func(err error) core.M[*kernel.File] {
				return core.Return[*kernel.File](nil) // 404 below
			},
		),
		func(f *kernel.File) core.M[bool] {
			if f == nil {
				return s.sendError(t, 404, keep)
			}
			s.aioServes.Add(1)
			if s.cfg.DiskRetries > 0 {
				// Degrading path: bounded retries, 503 on a dead file.
				send := s.sendFileDegraded(t, f, name, keep)
				if s.disk != nil {
					s.diskWaits.Add(1)
					send = core.Then(s.disk.Acquire(), core.Finally(send, s.disk.Release()))
				}
				return send
			}
			send := s.sendFile(t, f, name)
			if s.disk != nil {
				// Resource-aware admission: bound concurrent disk-path
				// handlers so the disk queue cannot absorb every thread.
				s.diskWaits.Add(1)
				send = core.Then(s.disk.Acquire(), core.Finally(send, s.disk.Release()))
			}
			return core.Then(send, core.Return(keep))
		},
	)
}

// DiskAdmissions reports how many requests entered the bounded disk path.
func (s *Server) DiskAdmissions() uint64 { return s.diskWaits.Load() }

// sendFile streams a file: header first, then AIO reads landing directly
// in the chunker's destination buffer (one write per byte — no
// assemble-by-append second copy); small files' destinations become
// their cache entries afterwards.
func (s *Server) sendFile(t Transport, f *kernel.File, name string) core.M[core.Unit] {
	size := f.Size()
	ck := newChunker(size, s.cfg.CacheBytes, s.cfg.ChunkBytes)
	readAt := func(off int64) core.M[int] { return s.io.AIORead(f, off, ck.window(off)) }
	_, stream := s.streamBody(t, ck, name, readAt)

	return core.Then(
		core.Bind(t.Write(ResponseHead(200, size, true)), func(int) core.M[core.Unit] { return core.Skip }),
		stream(0),
	)
}

// sendFileDegraded is sendFile with the recovery combinators threaded
// in: every AIO read gets bounded retries with backoff, and — crucially
// — the FIRST chunk is read before the status line is committed, so a
// file the disk cannot deliver degrades to a clean 503 instead of a
// torn 200. A read that exhausts its retries mid-stream can only abort
// the connection (the head already promised size bytes); the caller's
// Catch closes it.
func (s *Server) sendFileDegraded(t Transport, f *kernel.File, name string, keep bool) core.M[bool] {
	size := f.Size()
	ck := newChunker(size, s.cfg.CacheBytes, s.cfg.ChunkBytes)
	bo := core.Backoff{Attempts: s.cfg.DiskRetries + 1, Base: s.cfg.RetryBackoff, Factor: 2}
	readAt := func(off int64) core.M[int] {
		// The retry predicate runs once per failed attempt that will be
		// retried; the OnException hook fires only when retries are
		// exhausted and the failure escapes.
		return core.OnException(
			core.RetryIf(s.io.Clock(), bo,
				func(error) bool { s.diskRetries.Add(1); return true },
				s.io.AIORead(f, off, ck.window(off))),
			core.Do(func() { s.diskErrors.Add(1) }),
		)
	}
	ship, _ := s.streamBody(t, ck, name, readAt)

	return core.Bind(
		core.Catch(readAt(0), func(error) core.M[int] { return core.Return(-1) }),
		func(n0 int) core.M[bool] {
			if n0 < 0 {
				ck.release()
				return s.sendError(t, 503, false) // degrade: shed this connection
			}
			body := core.Skip
			if n0 > 0 {
				body = ship(n0, 0)
			} else {
				ck.release()
			}
			return core.Then(
				core.Bind(t.Write(ResponseHead(200, size, true)),
					func(int) core.M[core.Unit] { return core.Skip }),
				core.Then(body, core.Return(keep)),
			)
		},
	)
}

func (s *Server) sendError(t Transport, status int, keep bool) core.M[bool] {
	if status == 503 {
		s.unavailable.Add(1)
	}
	body := []byte(fmt.Sprintf("%d %s\n", status, statusText[status]))
	head := ResponseHead(status, int64(len(body)), keep)
	return core.Then(
		core.Bind(t.Write(head), func(int) core.M[int] { return t.Write(body) }),
		core.Return(keep),
	)
}
