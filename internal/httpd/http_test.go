package httpd

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRequestBasic(t *testing.T) {
	req, err := ParseRequest("GET /index.html HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/index.html" || req.Version != "HTTP/1.1" {
		t.Fatalf("parsed %+v", req)
	}
	if req.Headers["host"] != "example" {
		t.Fatalf("headers %+v", req.Headers)
	}
	if req.KeepAlive() {
		t.Fatal("Connection: close parsed as keep-alive")
	}
}

func TestParseRequestKeepAliveDefaults(t *testing.T) {
	r11, _ := ParseRequest("GET / HTTP/1.1\r\n\r\n")
	if !r11.KeepAlive() {
		t.Fatal("HTTP/1.1 should default keep-alive")
	}
	r10, _ := ParseRequest("GET / HTTP/1.0\r\n\r\n")
	if r10.KeepAlive() {
		t.Fatal("HTTP/1.0 should default close")
	}
	r10ka, _ := ParseRequest("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
	if !r10ka.KeepAlive() {
		t.Fatal("HTTP/1.0 with keep-alive header should persist")
	}
}

func TestParseRequestMalformed(t *testing.T) {
	for _, head := range []string{
		"\r\n\r\n",
		"GET /\r\n\r\n",
		"GET / NOTHTTP\r\n\r\n",
		"GET / HTTP/1.1\r\nbadheader\r\n\r\n",
	} {
		if _, err := ParseRequest(head); !errors.Is(err, ErrMalformedRequest) {
			t.Fatalf("head %q: err = %v", head, err)
		}
	}
}

func TestHeadBufferSplitDelivery(t *testing.T) {
	hb := &HeadBuffer{}
	head, err := hb.Feed([]byte("GET / HTT"))
	if err != nil || head != "" {
		t.Fatalf("partial: %q %v", head, err)
	}
	head, err = hb.Feed([]byte("P/1.1\r\nHost: x\r\n\r\nGET /next"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(head, "GET / HTTP/1.1") {
		t.Fatalf("head %q", head)
	}
	if hb.Buffered() != len("GET /next") {
		t.Fatalf("buffered = %d", hb.Buffered())
	}
}

func TestHeadBufferPipelined(t *testing.T) {
	hb := &HeadBuffer{}
	h1, err := hb.Feed([]byte("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"))
	if err != nil || !strings.Contains(h1, "/a") {
		t.Fatalf("h1 %q %v", h1, err)
	}
	h2, err := hb.Pending()
	if err != nil || !strings.Contains(h2, "/b") {
		t.Fatalf("h2 %q %v", h2, err)
	}
}

func TestHeadBufferOverflow(t *testing.T) {
	hb := &HeadBuffer{}
	_, err := hb.Feed(make([]byte, MaxHeadBytes+8))
	if !errors.Is(err, ErrMalformedRequest) {
		t.Fatalf("overflow err = %v", err)
	}
}

func TestResponseHeadRoundTrip(t *testing.T) {
	head := string(ResponseHead(200, 16384, true))
	status, length, err := ParseResponseHead(head)
	if err != nil || status != 200 || length != 16384 {
		t.Fatalf("round trip: %d %d %v", status, length, err)
	}
	if !strings.Contains(head, "keep-alive") {
		t.Fatal("keep-alive missing")
	}
	head = string(ResponseHead(404, 0, false))
	status, _, _ = ParseResponseHead(head)
	if status != 404 || !strings.Contains(head, "close") {
		t.Fatalf("404 head %q", head)
	}
}

// Property: a head split at any byte boundary parses identically.
func TestHeadBufferSplitProperty(t *testing.T) {
	full := "GET /some/path HTTP/1.1\r\nHost: h\r\nX-A: 1\r\n\r\n"
	check := func(cut uint8) bool {
		i := int(cut) % len(full)
		hb := &HeadBuffer{}
		h1, err := hb.Feed([]byte(full[:i]))
		if err != nil {
			return false
		}
		if h1 == "" {
			h2, err := hb.Feed([]byte(full[i:]))
			if err != nil || h2 != full {
				return false
			}
			return true
		}
		return h1 == full
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

func TestCachePutGet(t *testing.T) {
	c := NewCache(100)
	c.Put("a", []byte("hello"))
	got, ok := c.Get("a")
	if !ok || string(got) != "hello" {
		t.Fatalf("get = %q %v", got, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("phantom hit")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(10)
	c.Put("a", []byte("aaaa"))
	c.Put("b", []byte("bbbb"))
	c.Get("a")                 // a is now most recent
	c.Put("c", []byte("cccc")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
}

func TestCacheOversizedObjectSkipped(t *testing.T) {
	c := NewCache(4)
	c.Put("big", []byte("toobig"))
	if c.Len() != 0 {
		t.Fatal("oversized object cached")
	}
}

func TestCacheReplaceSameKey(t *testing.T) {
	c := NewCache(100)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("longer-v2"))
	got, _ := c.Get("k")
	if string(got) != "longer-v2" {
		t.Fatalf("got %q", got)
	}
	if c.Used() != int64(len("longer-v2")) {
		t.Fatalf("used = %d", c.Used())
	}
}

func TestCacheResizeEvicts(t *testing.T) {
	c := NewCache(100)
	for i := 0; i < 10; i++ {
		c.Put(string(rune('a'+i)), make([]byte, 10))
	}
	c.Resize(25)
	if c.Used() > 25 {
		t.Fatalf("used %d after resize", c.Used())
	}
	if c.Len() != 2 {
		t.Fatalf("len %d after resize to 25", c.Len())
	}
}

// Property: Used never exceeds capacity, and a Get right after Put hits
// (when the object fits).
func TestCacheInvariantProperty(t *testing.T) {
	check := func(ops []uint16) bool {
		c := NewCache(64)
		for _, op := range ops {
			key := string(rune('a' + op%13))
			size := int(op>>8) % 40
			if op%3 == 0 {
				c.Get(key)
			} else {
				c.Put(key, make([]byte, size))
				if int64(size) <= 64 {
					if _, ok := c.Get(key); !ok {
						return false
					}
				}
			}
			if c.Used() > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
