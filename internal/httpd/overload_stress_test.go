package httpd_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"hybrid/internal/faults"
	"hybrid/internal/httpd"
	"hybrid/internal/loadgen"
	"hybrid/internal/overload"
)

// TestStressOverloadReplayIsDeterministic drives a seeded 4× load burst
// through the full overload stack — admission bound, shallow backlog,
// accept pacing, a breaker over a faulty disk, then a drain — twice
// with the same seed, and requires every overload counter to replay
// bit-for-bit. The seed is logged on each run; replay a failure exactly
// with STRESS_SEED=<seed> make overload-stress.
func TestStressOverloadReplayIsDeterministic(t *testing.T) {
	seed := uint64(time.Now().UnixNano())
	if s := os.Getenv("STRESS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad STRESS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("stress seed %d (replay with STRESS_SEED=%d)", seed, seed)

	a := overloadStressCounters(t, seed)
	b := overloadStressCounters(t, seed)
	for name, av := range a {
		if bv := b[name]; av != bv {
			t.Errorf("[seed %d] counter %s: %d then %d across replays", seed, name, av, bv)
		}
	}
	if t.Failed() {
		t.Fatalf("overload counters did not replay; full snapshots:\nrun A: %v\nrun B: %v", a, b)
	}
	if a["gen.requests"] == 0 {
		t.Fatal("burst completed zero requests; stress is vacuous")
	}
	if a["breaker.trips"] == 0 {
		t.Fatalf("[seed %d] breaker never tripped over a 75%% faulty disk", seed)
	}
}

// overloadStressCounters runs one seeded burst and snapshots every
// overload-related counter.
func overloadStressCounters(t *testing.T, seed uint64) map[string]int64 {
	t.Helper()
	const capacity = 4
	s := newSite(t, 32, 4096)
	in := faults.New(faults.Config{
		Seed:  seed,
		Rates: map[faults.Op]float64{faults.DiskRead: 0.75},
	}, s.clk)
	s.fs.Disk().SetFaults(in)

	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes: 1, // every GET takes the disk path
		Overload: &httpd.OverloadConfig{
			MaxConns:    capacity,
			AcceptRate:  4000,
			AcceptBurst: 2,
			Backlog:     4,
			Breaker: &overload.BreakerConfig{
				FailureThreshold: 3,
				Cooldown:         5 * time.Millisecond,
			},
		},
	})
	s.rt.Spawn(srv.ListenAndServe("web:80"))

	gen := loadgen.New(s.io, loadgen.Config{
		Addr:              "web:80",
		Clients:           4 * capacity, // the 4× burst
		Files:             32,
		RequestsPerClient: 4,
		Seed:              seed,
		ConnectRetries:    100,
		ConnectBackoff:    200 * time.Microsecond,
	})
	runAndWait(s.rt, gen.Run())
	runAndWait(s.rt, srv.Drain(5*time.Millisecond))
	waitIdleOrFatal(t, s)

	out := map[string]int64{
		"gen.requests":           int64(gen.Requests.Load()),
		"gen.errors":             int64(gen.Errors.Load()),
		"gen.2xx":                int64(gen.Statuses[2].Load()),
		"gen.5xx":                int64(gen.Statuses[5].Load()),
		"kernel.backlog_rejects": s.k.Metrics().Snapshot().Counter("backlog_rejects"),
	}
	hs := srv.Metrics().Snapshot()
	for _, c := range []string{"shed_fast", "conn_panics", "forced_closes", "class_cached", "class_disk", "class_meta"} {
		out["httpd."+c] = hs.Counter(c)
	}
	ls := srv.Limiter().Metrics().Snapshot()
	out["admission.admitted"] = ls.Counter("admitted")
	out["admission.paced"] = ls.Counter("paced")
	bs := srv.Breaker().Metrics().Snapshot()
	for _, c := range []string{"breaker_trips", "breaker_sheds", "breaker_probes", "breaker_closes"} {
		out["breaker."+trimBreakerPrefix(c)] = bs.Counter(c)
	}
	return out
}

func trimBreakerPrefix(c string) string {
	const p = "breaker_"
	return c[len(p):]
}
