package httpd_test

import (
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/faults"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/overload"
	"hybrid/internal/vclock"
)

// Admission control: with MaxConns=2 and 16 eager clients, every request
// is eventually served, but never more than two connections at once — the
// rest wait in the kernel backlog instead of the server's queues.
func TestAdmissionBoundsInflightConns(t *testing.T) {
	s := newSite(t, 8, 2048)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes: 1 << 20,
		Overload:   &httpd.OverloadConfig{MaxConns: 2},
	})
	s.rt.Spawn(srv.ListenAndServe("web:80"))

	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 16, Files: 8, RequestsPerClient: 2, Seed: 7,
	})
	runAndWait(s.rt, gen.Run())

	if gen.Errors.Load() != 0 {
		t.Fatalf("client errors: %d", gen.Errors.Load())
	}
	if got := gen.Requests.Load(); got != 16*2 {
		t.Fatalf("requests = %d, want %d", got, 16*2)
	}
	lim := srv.Limiter()
	if lim == nil {
		t.Fatal("Limiter() nil with MaxConns set")
	}
	snap := lim.Metrics().Snapshot()
	if max := snap["inflight"].Max; max > 2 {
		t.Fatalf("inflight high-water %d exceeds MaxConns 2", max)
	}
	// One slot per connection, plus the accept loop's look-ahead slot for
	// the connection that never arrives.
	if snap.Counter("admitted") != 17 {
		t.Fatalf("admitted = %d, want 17 (16 conns + the loop's held slot)", snap.Counter("admitted"))
	}
}

// Accept pacing: at 1000 accepts/s (one per millisecond, burst 1), four
// connections take at least 3ms of virtual time, deterministically.
func TestAcceptRatePacesVirtualTime(t *testing.T) {
	s := newSite(t, 4, 512)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes: 1 << 20,
		Overload:   &httpd.OverloadConfig{AcceptRate: 1000, AcceptBurst: 1},
	})
	s.rt.Spawn(srv.ListenAndServe("web:80"))

	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 4, Files: 4, RequestsPerClient: 1, Seed: 3,
	})
	runAndWait(s.rt, gen.Run())

	if gen.Errors.Load() != 0 {
		t.Fatalf("client errors: %d", gen.Errors.Load())
	}
	if now := s.clk.Now(); now < vclock.Time(3*time.Millisecond) {
		t.Fatalf("virtual time %v after 4 paced accepts, want >= 3ms", now)
	}
	// The first accept rides the burst; the next three pace at 1ms each,
	// and the loop's look-ahead acquire paces once more.
	snap := srv.Limiter().Metrics().Snapshot()
	if snap.Counter("paced") != 4 {
		t.Fatalf("paced = %d, want 4", snap.Counter("paced"))
	}
}

// Load shedding: with the disk path always failing, the breaker trips
// after its failure threshold and later uncached GETs are shed with fast
// 503s — they never reach the disk, and the runtime stays clean.
func TestBreakerShedsFailingDiskPath(t *testing.T) {
	s := newSite(t, 8, 4096)
	in := faults.New(faults.Config{
		Seed:  11,
		Rates: map[faults.Op]float64{faults.DiskRead: 1.0},
	}, s.clk)
	s.fs.Disk().SetFaults(in)

	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes: 1, // force every GET through the disk path
		Overload: &httpd.OverloadConfig{
			// MaxConns serializes connections so that requests arriving
			// after the trip exist to be shed — without admission every
			// client would be in the disk path before the first failure
			// is even observed.
			MaxConns: 2,
			Breaker: &overload.BreakerConfig{
				FailureThreshold: 2,
				Cooldown:         time.Second, // beyond the workload's span
			},
		},
	})
	s.rt.Spawn(srv.ListenAndServe("web:80"))

	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 12, Files: 8, RequestsPerClient: 2, Seed: 11,
	})
	done := make(chan struct{})
	s.rt.Spawn(core.Then(gen.Run(), core.Do(func() { close(done) })))
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workload wedged under breaker shedding")
	}

	b := srv.Breaker()
	if b == nil {
		t.Fatal("Breaker() nil with Breaker config set")
	}
	bs := b.Metrics().Snapshot()
	if bs.Counter("breaker_trips") < 1 {
		t.Fatal("breaker never tripped with a 100% failing disk")
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counter("shed_fast") == 0 {
		t.Fatal("no requests shed after the breaker tripped")
	}
	if gen.Statuses[5].Load() == 0 {
		t.Fatal("clients saw no 503s from shedding")
	}
	// Shedding happens before the disk: shed requests add no disk traffic.
	if snap.Counter("class_disk") <= snap.Counter("shed_fast") {
		t.Fatalf("class_disk=%d shed_fast=%d: shed requests must be a strict subset",
			snap.Counter("class_disk"), snap.Counter("shed_fast"))
	}
	// Drain ends the accept loop so the whole runtime can quiesce.
	runAndWait(s.rt, srv.Drain(10*time.Millisecond))
	waitIdleOrFatal(t, s)
}

// Graceful drain: after the workload completes, Drain closes the
// listener (later connects are refused) and returns with nothing forced.
func TestDrainGraceful(t *testing.T) {
	s := newSite(t, 4, 1024)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes: 1 << 20,
		Overload:   &httpd.OverloadConfig{MaxConns: 4},
	})
	s.rt.Spawn(srv.ListenAndServe("web:80"))

	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 4, Files: 4, RequestsPerClient: 2, Seed: 5,
	})
	runAndWait(s.rt, gen.Run())
	if gen.Errors.Load() != 0 {
		t.Fatalf("client errors before drain: %d", gen.Errors.Load())
	}

	runAndWait(s.rt, srv.Drain(10*time.Millisecond))
	if !srv.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if got := srv.Metrics().Snapshot().Counter("forced_closes"); got != 0 {
		t.Fatalf("forced_closes = %d for an idle drain, want 0", got)
	}

	// The listener is gone: a new client is refused cleanly.
	late := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 1, Files: 4, RequestsPerClient: 1, Seed: 6,
	})
	runAndWait(s.rt, late.Run())
	if late.Errors.Load() != 1 {
		t.Fatalf("late client errors = %d, want 1 (connection refused)", late.Errors.Load())
	}
	waitIdleOrFatal(t, s)
}

// Drain past its deadline force-closes straggling connections: an idle
// client that never sends a request is cut off, its handler unwinds, and
// the connection table empties.
func TestDrainForceClosesStragglers(t *testing.T) {
	s := newSite(t, 1, 512)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes: 1 << 20,
		Overload:   &httpd.OverloadConfig{MaxConns: 4},
	})
	s.rt.Spawn(srv.ListenAndServe("web:80"))

	// An idle client connects, holds the connection without ever sending
	// a request, and only wakes long after the drain deadline. Once the
	// server has the connection, a coordinator thread starts the drain.
	drained := make(chan struct{})
	s.rt.Spawn(core.Bind(s.io.SockConnect("web:80"), func(conn kernel.FD) core.M[core.Unit] {
		coordinator := core.Then(
			waitConns(s, srv, 1),
			core.Then(srv.Drain(5*time.Millisecond), core.Do(func() { close(drained) })),
		)
		return core.Then(core.Fork(coordinator),
			core.Then(s.io.Sleep(50*time.Millisecond),
				core.Catch(s.io.CloseFD(conn), func(error) core.M[core.Unit] { return core.Skip })))
	}))

	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("Drain wedged on an idle connection")
	}
	snap := srv.Metrics().Snapshot()
	if got := snap.Counter("forced_closes"); got != 1 {
		t.Fatalf("forced_closes = %d, want 1", got)
	}
	if srv.ActiveConns() != 0 {
		t.Fatalf("ActiveConns = %d after forced drain, want 0", srv.ActiveConns())
	}
	waitIdleOrFatal(t, s)
}

// waitConns polls (on the virtual clock) until the server is serving n
// connections.
func waitConns(s *site, srv *httpd.Server, n int64) core.M[core.Unit] {
	var loop func() core.M[core.Unit]
	loop = func() core.M[core.Unit] {
		return core.Bind(core.NBIO(srv.ActiveConns), func(got int64) core.M[core.Unit] {
			if got >= n {
				return core.Skip
			}
			return core.Bind(s.io.Sleep(100*time.Microsecond),
				func(core.Unit) core.M[core.Unit] { return loop() })
		})
	}
	return loop()
}
