package httpd

import "sync"

// Cache is a byte-bounded LRU of file contents. The paper's web server
// "implements its own caching" to exploit Linux AIO (§5.2) with a fixed
// 100 MB cache; the Apache stand-in uses the same structure as its page
// cache, with capacity squeezed by thread stacks (see apache.go).
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[string]*cacheEntry
	// Intrusive LRU list; head.next is most recent.
	head, tail cacheEntry

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key        string
	data       []byte
	prev, next *cacheEntry
}

// NewCache creates a cache bounded to capacity bytes.
func NewCache(capacity int64) *Cache {
	c := &Cache{capacity: capacity, entries: make(map[string]*cacheEntry)}
	c.head.next = &c.tail
	c.tail.prev = &c.head
	return c
}

// Resize changes the capacity, evicting as needed.
func (c *Cache) Resize(capacity int64) {
	c.mu.Lock()
	c.capacity = capacity
	c.evictLocked()
	c.mu.Unlock()
}

// Get returns the cached bytes for key, marking it most recently used.
// The returned slice must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.unlink(e)
	c.pushFront(e)
	return e.data, true
}

// Put stores bytes under key, evicting least-recently-used entries to
// stay under capacity. Objects larger than the capacity are not cached.
func (c *Cache) Put(key string, data []byte) {
	if int64(len(data)) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.used -= int64(len(old.data))
		old.data = data
		c.used += int64(len(data))
		c.unlink(old)
		c.pushFront(old)
	} else {
		e := &cacheEntry{key: key, data: data}
		c.entries[key] = e
		c.used += int64(len(data))
		c.pushFront(e)
	}
	c.evictLocked()
}

// Len reports the number of cached objects.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Used reports the cached byte total.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity reports the current capacity in bytes.
func (c *Cache) Capacity() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Stats reports hits, misses, and evictions.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

func (c *Cache) evictLocked() {
	for c.used > c.capacity {
		lru := c.tail.prev
		if lru == &c.head {
			return
		}
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.used -= int64(len(lru.data))
		c.evictions++
	}
}

func (c *Cache) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = &c.head
	e.next = c.head.next
	c.head.next.prev = e
	c.head.next = e
}
