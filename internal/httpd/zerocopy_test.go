package httpd_test

import (
	"bytes"
	"testing"

	"hybrid/internal/core"
	"hybrid/internal/httpd"
)

// The zero-copy response path (VectorWriter.WriteOwned) must be
// observationally identical to the plain copying Write path: same bytes,
// same order, for any request sequence. These tests serve the same
// scripted request stream through two otherwise-identical servers — one
// over a transport that only implements Write, one over a transport that
// also implements VectorWriter — and require the output streams to match
// byte for byte.

// replayTransport feeds scripted read chunks and records everything
// written. Chunks must fit the server's read buffer.
type replayTransport struct {
	chunks [][]byte
	i      int
	out    bytes.Buffer
	closed bool
}

func (r *replayTransport) Read(p []byte) core.M[int] {
	return core.NBIO(func() int {
		if r.i >= len(r.chunks) {
			return 0
		}
		c := r.chunks[r.i]
		r.i++
		return copy(p, c)
	})
}

func (r *replayTransport) Write(p []byte) core.M[int] {
	return core.NBIO(func() int {
		r.out.Write(p)
		return len(p)
	})
}

func (r *replayTransport) Close() core.M[core.Unit] {
	return core.Do(func() { r.closed = true })
}

// vectorReplayTransport adds the zero-copy capability; owned counts how
// many writes took the by-reference path.
type vectorReplayTransport struct {
	replayTransport
	owned int
}

func (v *vectorReplayTransport) WriteOwned(p []byte) core.M[int] {
	return core.NBIO(func() int {
		v.owned++
		v.out.Write(p)
		return len(p)
	})
}

var _ httpd.VectorWriter = (*vectorReplayTransport)(nil)

// requestTemplates is the request mix the equivalence check draws from:
// cache hits (the zero-copy path), disk misses, 404s, HEADs, and a
// non-GET error response.
var requestTemplates = []string{
	"GET /file-0 HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
	"GET /file-1 HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
	"GET /missing HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
	"HEAD /file-0 HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
	"POST /file-0 HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
	"GET /file-0 HTTP/1.0\r\n\r\n", // no keep-alive: closes the connection
}

// serveScript runs one request stream through a fresh server over the
// given transport and returns the bytes the server wrote.
func serveScript(t *testing.T, chunks [][]byte, vector bool) (out []byte, owned int) {
	t.Helper()
	s := newSite(t, 2, 1024)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{CacheBytes: 1 << 20})
	if vector {
		tr := &vectorReplayTransport{replayTransport: replayTransport{chunks: chunks}}
		runAndWait(s.rt, srv.ServeTransport(tr))
		return tr.out.Bytes(), tr.owned
	}
	tr := &replayTransport{chunks: chunks}
	runAndWait(s.rt, srv.ServeTransport(tr))
	return tr.out.Bytes(), 0
}

// script turns fuzz bytes into a chunked request stream: each byte picks
// a template, and the low bits pick a split point so heads arrive both
// whole and fragmented.
func script(sel []byte) [][]byte {
	var chunks [][]byte
	for _, b := range sel {
		req := requestTemplates[int(b)%len(requestTemplates)]
		if cut := int(b) % len(req); b%3 == 0 && cut > 0 {
			chunks = append(chunks, []byte(req[:cut]), []byte(req[cut:]))
		} else {
			chunks = append(chunks, []byte(req))
		}
	}
	return chunks
}

func TestVectorWriterMatchesCopyPath(t *testing.T) {
	sel := []byte{0, 0, 1, 2, 3, 4, 0, 3, 6, 9, 12, 1, 0, 5}
	plain, _ := serveScript(t, script(sel), false)
	vec, owned := serveScript(t, script(sel), true)
	if owned == 0 {
		t.Fatal("vector transport never took the zero-copy path")
	}
	if !bytes.Equal(plain, vec) {
		t.Fatalf("response streams differ: copy %d bytes, zero-copy %d bytes", len(plain), len(vec))
	}
}

func FuzzVectorWriterEquivalence(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{5, 0})
	f.Add([]byte{3, 3, 3, 0, 0, 0, 2, 2, 2})
	f.Fuzz(func(t *testing.T, sel []byte) {
		if len(sel) == 0 || len(sel) > 32 {
			t.Skip()
		}
		chunks := script(sel)
		plain, _ := serveScript(t, chunks, false)
		vec, _ := serveScript(t, chunks, true)
		if !bytes.Equal(plain, vec) {
			t.Fatalf("response streams differ for %v: copy %d bytes, zero-copy %d bytes",
				sel, len(plain), len(vec))
		}
	})
}
