package httpd_test

import (
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/netsim"
	"hybrid/internal/tcp"
	"hybrid/internal/vclock"
)

// lifecycleSite starts a lifecycle-hardened server and returns it with its
// site. Timeouts not set by the caller stay disabled.
func lifecycleSite(t *testing.T, files, fileSize int, lc httpd.LifecycleConfig) (*site, *httpd.Server) {
	t.Helper()
	s := newSite(t, files, fileSize)
	srv := httpd.NewServer(s.io, httpd.ServerConfig{
		CacheBytes: 1 << 20,
		Lifecycle:  &lc,
	})
	s.rt.Spawn(srv.ListenAndServe("web:80"))
	return s, srv
}

// readUntilClosed drains fd until EOF or error, returning everything read.
func readUntilClosed(io interface {
	SockRead(kernel.FD, []byte) core.M[int]
}, fd kernel.FD, out *[]byte) core.M[core.Unit] {
	buf := make([]byte, 4096)
	var loop func() core.M[core.Unit]
	loop = func() core.M[core.Unit] {
		return core.Bind(io.SockRead(fd, buf), func(n int) core.M[core.Unit] {
			if n == 0 {
				return core.Skip
			}
			*out = append(*out, buf[:n]...)
			return loop()
		})
	}
	return loop()
}

func TestLifecycleIdleReapFreshConnection(t *testing.T) {
	// A connection that never sends a byte is reaped at IdleTimeout.
	s, srv := lifecycleSite(t, 1, 512, httpd.LifecycleConfig{
		IdleTimeout: 10 * time.Millisecond,
	})
	var closed bool
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		return core.Bind(s.io.SockRead(fd, make([]byte, 64)), func(n int) core.M[core.Unit] {
			closed = n == 0
			return s.io.CloseFD(fd)
		})
	})
	runAndWait(s.rt, core.Catch(client, func(error) core.M[core.Unit] {
		closed = true
		return core.Skip
	}))
	if !closed {
		t.Fatal("idle connection was never torn down")
	}
	if got := srv.LifecycleStats(); got.ReapedIdle != 1 || got.Total() != 1 {
		t.Fatalf("lifecycle stats = %+v, want exactly one idle reap", got)
	}
	if got := time.Duration(s.clk.Now()); got < 10*time.Millisecond {
		t.Fatalf("reaped at %v, before the 10ms idle budget", got)
	}
}

func TestLifecycleIdleReapBetweenRequests(t *testing.T) {
	// A keep-alive connection that goes quiet after a completed request is
	// reaped, and the completed request is unaffected.
	s, srv := lifecycleSite(t, 1, 512, httpd.LifecycleConfig{
		IdleTimeout: 10 * time.Millisecond,
	})
	var got []byte
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		req := []byte("GET /file-0 HTTP/1.1\r\nHost: x\r\n\r\n")
		return core.Seq(
			core.Bind(s.io.SockSend(fd, req), func(int) core.M[core.Unit] { return core.Skip }),
			readUntilClosed(s.io, fd, &got), // EOF arrives only via the reap
			s.io.CloseFD(fd),
		)
	})
	runAndWait(s.rt, core.Catch(client, func(error) core.M[core.Unit] { return core.Skip }))
	status, length, err := httpd.ParseResponseHead(string(got))
	if err != nil || status != 200 || length != 512 {
		t.Fatalf("request before the idle gap: status=%d length=%d err=%v", status, length, err)
	}
	if st := srv.LifecycleStats(); st.ReapedIdle != 1 || st.Total() != 1 {
		t.Fatalf("lifecycle stats = %+v, want exactly one idle reap", st)
	}
}

func TestLifecycleSlowLorisShed(t *testing.T) {
	// A peer trickling header bytes renews any per-read deadline forever;
	// the header budget is total, so it is shed on schedule.
	s, srv := lifecycleSite(t, 1, 512, httpd.LifecycleConfig{
		HeaderTimeout: 20 * time.Millisecond,
	})
	head := []byte("GET /file-0 HTTP/1.1\r\nHost: x\r\n\r\n")
	var sent int
	var closed bool
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		var drip func(i int) core.M[core.Unit]
		drip = func(i int) core.M[core.Unit] {
			if i >= len(head) {
				// The full head went through — the shed failed.
				return s.io.CloseFD(fd)
			}
			return core.Seq(
				core.Bind(
					core.Catch(s.io.SockSend(fd, head[i:i+1]), func(error) core.M[int] {
						closed = true
						return core.Return(0)
					}),
					func(n int) core.M[core.Unit] { sent += n; return core.Skip },
				),
				func() core.M[core.Unit] {
					if closed {
						return core.Skip
					}
					return core.Then(s.io.Sleep(5*time.Millisecond), drip(i+1))
				}(),
			)
		}
		return drip(0)
	})
	runAndWait(s.rt, core.Catch(client, func(error) core.M[core.Unit] {
		closed = true
		return core.Skip
	}))
	if !closed {
		t.Fatalf("slow-loris client sent the whole head (%d bytes) without being shed", sent)
	}
	if sent >= len(head) {
		t.Fatalf("all %d header bytes accepted before shed", sent)
	}
	if st := srv.LifecycleStats(); st.ShedHeader != 1 || st.Total() != 1 {
		t.Fatalf("lifecycle stats = %+v, want exactly one header shed", st)
	}
}

func TestLifecycleSlowButLegitimateHeaderSurvives(t *testing.T) {
	// A head split across a few reads that completes inside the budget is
	// served normally — the defense keys on total time, not chunking.
	s, srv := lifecycleSite(t, 1, 512, httpd.LifecycleConfig{
		HeaderTimeout: 50 * time.Millisecond,
	})
	head := []byte("GET /file-0 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
	half := len(head) / 2
	var got []byte
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		return core.Seq(
			core.Bind(s.io.SockSend(fd, head[:half]), func(int) core.M[core.Unit] { return core.Skip }),
			s.io.Sleep(10*time.Millisecond),
			core.Bind(s.io.SockSend(fd, head[half:]), func(int) core.M[core.Unit] { return core.Skip }),
			readUntilClosed(s.io, fd, &got),
			s.io.CloseFD(fd),
		)
	})
	runAndWait(s.rt, client)
	status, length, err := httpd.ParseResponseHead(string(got))
	if err != nil || status != 200 || length != 512 {
		t.Fatalf("status=%d length=%d err=%v", status, length, err)
	}
	if st := srv.LifecycleStats(); st.Total() != 0 {
		t.Fatalf("lifecycle stats = %+v, want no sheds", st)
	}
}

func TestLifecycleBodyDrainKeepsFraming(t *testing.T) {
	// A request body (Content-Length) is drained so the pipelined request
	// behind it is parsed from the right offset. Without the drain the
	// body bytes would be misread as the next head.
	s, srv := lifecycleSite(t, 1, 512, httpd.LifecycleConfig{
		BodyTimeout: 50 * time.Millisecond,
	})
	body := make([]byte, 300)
	for i := range body {
		body[i] = 'x'
	}
	req := append([]byte("POST /file-0 HTTP/1.1\r\nHost: x\r\nContent-Length: 300\r\n\r\n"), body...)
	req = append(req, []byte("GET /file-0 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")...)
	var got []byte
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		return core.Seq(
			core.Bind(s.io.SockSend(fd, req), func(int) core.M[core.Unit] { return core.Skip }),
			readUntilClosed(s.io, fd, &got),
			s.io.CloseFD(fd),
		)
	})
	runAndWait(s.rt, client)
	var statuses []int
	rest := got
	for len(rest) > 0 {
		i := indexBlank(rest)
		if i < 0 {
			break
		}
		st, cl, err := httpd.ParseResponseHead(string(rest[:i+4]))
		if err != nil {
			break
		}
		statuses = append(statuses, st)
		if cl < 0 {
			cl = 0
		}
		rest = rest[i+4+int(cl):]
	}
	if len(statuses) != 2 || statuses[0] != 405 || statuses[1] != 200 {
		t.Fatalf("statuses = %v, want [405 200] (drained body, then pipelined GET)", statuses)
	}
	if st := srv.LifecycleStats(); st.Total() != 0 {
		t.Fatalf("lifecycle stats = %+v, want no sheds", st)
	}
}

func TestLifecycleTrickledBodyShed(t *testing.T) {
	// A peer that declares a body and then stalls is shed at BodyTimeout.
	s, srv := lifecycleSite(t, 1, 512, httpd.LifecycleConfig{
		BodyTimeout: 20 * time.Millisecond,
	})
	head := []byte("POST /file-0 HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\nonly-ten-b")
	var closed bool
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		return core.Seq(
			core.Bind(s.io.SockSend(fd, head), func(int) core.M[core.Unit] { return core.Skip }),
			core.Bind(s.io.SockRead(fd, make([]byte, 256)), func(n int) core.M[core.Unit] {
				closed = n == 0
				return s.io.CloseFD(fd)
			}),
		)
	})
	runAndWait(s.rt, core.Catch(client, func(error) core.M[core.Unit] {
		closed = true
		return core.Skip
	}))
	if !closed {
		t.Fatal("stalled body sender was never torn down")
	}
	if st := srv.LifecycleStats(); st.ShedBody != 1 || st.Total() != 1 {
		t.Fatalf("lifecycle stats = %+v, want exactly one body shed", st)
	}
}

func TestLifecycleWriteStallShed(t *testing.T) {
	// A peer that requests a large file and stops reading pins the
	// response in the socket buffer; once no write completes for
	// WriteStallTimeout the connection is shed.
	s, srv := lifecycleSite(t, 1, 256*1024, httpd.LifecycleConfig{
		WriteStallTimeout: 20 * time.Millisecond,
	})
	var clientDone bool
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		req := []byte("GET /file-0 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
		return core.Seq(
			core.Bind(s.io.SockSend(fd, req), func(int) core.M[core.Unit] { return core.Skip }),
			// Read nothing: park until the server gives up, then observe
			// the teardown via our own close.
			s.io.Sleep(200*time.Millisecond),
			core.Do(func() { clientDone = true }),
			s.io.CloseFD(fd),
		)
	})
	runAndWait(s.rt, core.Catch(client, func(error) core.M[core.Unit] {
		clientDone = true
		return core.Skip
	}))
	if !clientDone {
		t.Fatal("client never finished")
	}
	if st := srv.LifecycleStats(); st.ShedWrite != 1 || st.Total() != 1 {
		t.Fatalf("lifecycle stats = %+v, want exactly one write-stall shed", st)
	}
}

func TestLifecycleSlowReaderSurvivesWriteStall(t *testing.T) {
	// A legitimately slow reader keeps the write-stall deadline renewed:
	// each completed write re-arms it, so steady sub-deadline progress is
	// never shed even when the whole transfer takes many times the budget.
	s, srv := lifecycleSite(t, 1, 256*1024, httpd.LifecycleConfig{
		WriteStallTimeout: 20 * time.Millisecond,
	})
	var total int
	client := core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
		req := []byte("GET /file-0 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
		buf := make([]byte, 16*1024)
		var loop func() core.M[core.Unit]
		loop = func() core.M[core.Unit] {
			return core.Bind(s.io.SockRead(fd, buf), func(n int) core.M[core.Unit] {
				if n == 0 {
					return s.io.CloseFD(fd)
				}
				total += n
				// Drain in 16 KB sips, 10ms apart: the transfer takes
				// ~170ms against a 20ms stall budget.
				return core.Then(s.io.Sleep(10*time.Millisecond), loop())
			})
		}
		return core.Seq(
			core.Bind(s.io.SockSend(fd, req), func(int) core.M[core.Unit] { return core.Skip }),
			loop(),
		)
	})
	runAndWait(s.rt, client)
	if total < 256*1024 {
		t.Fatalf("slow reader got %d bytes, want full 256 KB response", total)
	}
	if st := srv.LifecycleStats(); st.Total() != 0 {
		t.Fatalf("lifecycle stats = %+v, want no sheds", st)
	}
}

func TestLifecycleWellBehavedLoadUnaffected(t *testing.T) {
	// A normal workload under the full lifecycle config sees zero sheds
	// and identical results.
	s, srv := lifecycleSite(t, 8, 2048, httpd.LifecycleConfig{
		IdleTimeout:       200 * time.Millisecond,
		HeaderTimeout:     100 * time.Millisecond,
		BodyTimeout:       100 * time.Millisecond,
		WriteStallTimeout: 100 * time.Millisecond,
	})
	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 8, Files: 8, RequestsPerClient: 6, Seed: 7,
	})
	runAndWait(s.rt, gen.Run())
	if gen.Errors.Load() != 0 {
		t.Fatalf("client errors: %d", gen.Errors.Load())
	}
	if got := gen.Requests.Load(); got != 48 {
		t.Fatalf("requests = %d, want 48", got)
	}
	if st := srv.LifecycleStats(); st.Total() != 0 {
		t.Fatalf("lifecycle stats = %+v, want no sheds under a well-behaved load", st)
	}
}

func TestLifecycleOverTCPStackShedsIdle(t *testing.T) {
	// The same defenses work over the application-level TCP transport,
	// where Shed aborts the connection (RST) instead of closing an FD —
	// no TIME_WAIT lingers for the attacker.
	clk := vclock.NewVirtual()
	net := netsim.New(clk, 5)
	hostS, err := net.Host("server", netsim.Ethernet100())
	if err != nil {
		t.Fatal(err)
	}
	hostC, err := net.Host("client", netsim.Ethernet100())
	if err != nil {
		t.Fatal(err)
	}
	stackS := tcp.NewStack(hostS, tcp.Config{})
	stackC := tcp.NewStack(hostC, tcp.Config{})

	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.DefaultGeometry()))
	if _, err := fs.Create("file-0", 512, false); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	io := hio.New(rt, k, fs)
	defer func() {
		io.Close()
		rt.Shutdown()
	}()

	srv := httpd.NewServer(io, httpd.ServerConfig{
		Lifecycle: &httpd.LifecycleConfig{IdleTimeout: 10 * time.Millisecond},
	})
	l, err := stackS.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	rt.Spawn(srv.ServeTCP(l))

	var torndown bool
	client := core.Bind(stackC.ConnectM("server", 80), func(c *tcp.Conn) core.M[core.Unit] {
		// Say nothing; the idle reap aborts the connection and our
		// blocked read observes the reset (or EOF).
		return core.Catch(
			core.Bind(c.ReadM(make([]byte, 64)), func(n int) core.M[core.Unit] {
				torndown = n == 0
				return c.CloseM()
			}),
			func(error) core.M[core.Unit] {
				torndown = true
				return core.Skip
			},
		)
	})
	runAndWait(rt, client)
	if !torndown {
		t.Fatal("idle TCP connection was never torn down")
	}
	if st := srv.LifecycleStats(); st.ReapedIdle != 1 || st.Total() != 1 {
		t.Fatalf("lifecycle stats = %+v, want exactly one idle reap", st)
	}
}

func lifecycleCounterRun(t *testing.T, seed uint64) httpd.LifecycleStats {
	t.Helper()
	s, srv := lifecycleSite(t, 4, 1024, httpd.LifecycleConfig{
		IdleTimeout:   15 * time.Millisecond,
		HeaderTimeout: 15 * time.Millisecond,
	})
	// Mix of idlers (connect, never speak) and one well-behaved client.
	idler := func() core.M[core.Unit] {
		return core.Bind(s.io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
			return core.Catch(
				core.Bind(s.io.SockRead(fd, make([]byte, 16)), func(int) core.M[core.Unit] {
					return s.io.CloseFD(fd)
				}),
				func(error) core.M[core.Unit] { return core.Skip },
			)
		})
	}
	gen := loadgen.New(s.io, loadgen.Config{
		Addr: "web:80", Clients: 2, Files: 4, RequestsPerClient: 3, Seed: seed,
	})
	done := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		s.rt.Spawn(core.Then(idler(), core.Do(func() { done <- struct{}{} })))
	}
	runAndWait(s.rt, gen.Run())
	for i := 0; i < 3; i++ {
		<-done
	}
	if gen.Errors.Load() != 0 {
		t.Fatalf("well-behaved clients saw %d errors", gen.Errors.Load())
	}
	return srv.LifecycleStats()
}

func TestLifecycleCountersDeterministic(t *testing.T) {
	// Two identical runs on fresh virtual worlds produce identical shed
	// and reap counters — the defense is replayable, not racy.
	a := lifecycleCounterRun(t, 21)
	b := lifecycleCounterRun(t, 21)
	if a != b {
		t.Fatalf("lifecycle counters diverged: %+v vs %+v", a, b)
	}
	if a.ReapedIdle != 3 {
		t.Fatalf("reaped %d idlers, want all 3", a.ReapedIdle)
	}
}
