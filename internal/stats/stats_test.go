package stats

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dispatches")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(4)
	g.Add(-6)
	if g.Load() != 1 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d, want 1 max 7", g.Load(), g.Max())
	}
	// Same name returns the same instance.
	if r.Counter("dispatches") != c {
		t.Fatal("Counter not idempotent")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("depth", 1, 2, 4, 8)
	for _, v := range []int64{0, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	m := snap["depth"]
	if m.Kind != "histogram" || m.Count != 7 || m.Sum != 120 || m.Max != 100 {
		t.Fatalf("metric = %+v", m)
	}
	want := map[int64]uint64{1: 2, 2: 1, 4: 1, 8: 1, InfBucket: 2}
	for _, b := range m.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
		delete(want, b.Le)
	}
	if len(want) != 0 {
		t.Fatalf("buckets missing: %v (got %+v)", want, m.Buckets)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex // simulate a subsystem lock taken by the callback
	n := uint64(41)
	r.CounterFunc("reads", func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		return n
	})
	r.GaugeFunc("open_fds", func() int64 { return 3 })
	n++
	snap := r.Snapshot()
	if snap.Counter("reads") != 42 || snap.Counter("open_fds") != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestSnapshotMergeAndJSON(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("dispatches").Add(10)
	r2.Histogram("seek", 100, 1000).Observe(250)

	snap := Snapshot{}
	snap.Merge("sched", r1.Snapshot())
	snap.Merge("disk", r2.Snapshot())
	if snap.Counter("sched.dispatches") != 10 {
		t.Fatalf("merged snapshot = %+v", snap)
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]Metric
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if back["sched.dispatches"].Value != 10 || back["disk.seek"].Count != 1 {
		t.Fatalf("round trip = %+v", back)
	}
	// Deterministic output: two marshals are identical.
	var buf2 bytes.Buffer
	if err := snap.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WriteJSON not deterministic")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", 4, 16, 64)
	g := r.Gauge("g")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				c.Inc()
				h.Observe(i % 100)
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter %d histogram %d, want 8000", c.Load(), h.Count())
	}
	if g.Load() != 0 || g.Max() < 1 {
		t.Fatalf("gauge %d max %d", g.Load(), g.Max())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}
