package stats

import "testing"

// The stats layer sits on every hot path (request accounting, latency
// observation), so its update operations must not allocate. These pins
// fail if a future change adds a per-update allocation.

func TestCounterUpdateAllocs(t *testing.T) {
	c := NewRegistry().Counter("reqs")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
	}); n != 0 {
		t.Fatalf("counter update allocates %v per run, want 0", n)
	}
}

func TestGaugeUpdateAllocs(t *testing.T) {
	g := NewRegistry().Gauge("conns")
	if n := testing.AllocsPerRun(1000, func() {
		g.Add(1)
		g.Set(7)
		g.Add(-1)
	}); n != 0 {
		t.Fatalf("gauge update allocates %v per run, want 0", n)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewRegistry().Histogram("lat", PowersOfTwo(1<<20)...)
	v := int64(1)
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v = (v * 5) % (1 << 21)
	}); n != 0 {
		t.Fatalf("histogram observe allocates %v per run, want 0", n)
	}
}
