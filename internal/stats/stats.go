// Package stats is the runtime's observability layer: cheap,
// allocation-free metric primitives (atomic counters, gauges, and
// fixed-bucket histograms) gathered into named registries with a
// Snapshot/WriteJSON API.
//
// The paper's central claim is that an application-level runtime makes
// scheduler behaviour programmable *and inspectable* — the event loops of
// Figure 14 are ordinary code, so every queue, wait, and dispatch can be
// measured without kernel tooling. This package is that inspection
// surface: internal/core, internal/kernel, internal/disk, internal/tcp,
// and internal/httpd each own a Registry, the bench harnesses merge the
// snapshots into one JSON block per run, and cmd binaries dump them with
// -stats.
//
// Hot-path discipline: updating a Counter, Gauge, or Histogram is one or
// two atomic operations and never allocates; registration and Snapshot
// allocate and take locks, so they belong at setup and reporting time.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct{ n atomic.Uint64 }

// Inc adds one and returns the new value.
func (c *Counter) Inc() uint64 { return c.n.Add(1) }

// Add increases the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Load reports the current value.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Gauge is an instantaneous level with a high-water mark.
type Gauge struct {
	v  atomic.Int64
	hi atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.raiseMax(v)
}

// Add moves the gauge by d and returns the new value.
func (g *Gauge) Add(d int64) int64 {
	v := g.v.Add(d)
	g.raiseMax(v)
	return v
}

// Load reports the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max reports the high-water mark.
func (g *Gauge) Max() int64 { return g.hi.Load() }

func (g *Gauge) raiseMax(v int64) {
	for {
		old := g.hi.Load()
		if v <= old || g.hi.CompareAndSwap(old, v) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution of int64 observations. Bounds
// are inclusive upper edges in ascending order; one implicit overflow
// bucket catches everything above the last bound. Observe is a linear
// scan over a small bounds slice plus three atomic adds — no allocation,
// no lock.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the total of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max reports the largest observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts:
// it returns the upper bound of the bucket where the cumulative count
// crosses q·Count, so the estimate errs toward the pessimistic side —
// the right bias for latency SLO reporting. Observations in the overflow
// bucket report the observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max.Load()
		}
	}
	return h.max.Load()
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// PowersOfTwo builds histogram bounds {1, 2, 4, …} up to and including
// the first power of two >= max — the usual shape for queue depths and
// batch sizes.
func PowersOfTwo(max int64) []int64 {
	var out []int64
	for b := int64(1); ; b *= 2 {
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

type metric struct {
	kind      metricKind
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() int64
}

// Registry is a named collection of metrics belonging to one subsystem.
// Metric names are local to the registry (no package prefix); callers
// that merge several registries add prefixes at snapshot time.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{metrics: make(map[string]*metric)} }

func (r *Registry) get(name string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("stats: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{kind: kind}
	r.metrics[name] = m
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	m := r.get(name, kindCounter)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.get(name, kindGauge)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	m := r.get(name, kindHistogram)
	if m.hist == nil {
		m.hist = newHistogram(bounds)
	}
	return m.hist
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time — the bridge for subsystems that already keep their own
// counters under a lock. fn must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.get(name, kindCounterFunc).counterFn = fn
}

// GaugeFunc registers a gauge read from fn at snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.get(name, kindGaugeFunc).gaugeFn = fn
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

// InfBucket marks the overflow bucket's upper bound in snapshots.
const InfBucket = int64(math.MaxInt64)

// Bucket is one histogram bucket: observations <= Le (and greater than
// the previous bucket's Le).
type Bucket struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// Metric is the frozen value of one metric.
type Metric struct {
	Kind    string   `json:"kind"` // "counter" | "gauge" | "histogram"
	Value   int64    `json:"value"`
	Max     int64    `json:"max,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Mean    float64  `json:"mean,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry (or several merged
// registries), keyed by metric name. It marshals to deterministic JSON
// (encoding/json sorts map keys).
type Snapshot map[string]Metric

// Snapshot freezes the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	metrics := make([]*metric, 0, len(r.metrics))
	for name, m := range r.metrics {
		names = append(names, name)
		metrics = append(metrics, m)
	}
	r.mu.Unlock()

	// Func metrics run outside r.mu: their callbacks may take subsystem
	// locks that must never nest inside the registry's.
	out := make(Snapshot, len(names))
	for i, m := range metrics {
		out[names[i]] = m.freeze()
	}
	return out
}

func (m *metric) freeze() Metric {
	switch m.kind {
	case kindCounter:
		return Metric{Kind: "counter", Value: int64(m.counter.Load())}
	case kindCounterFunc:
		return Metric{Kind: "counter", Value: int64(m.counterFn())}
	case kindGauge:
		return Metric{Kind: "gauge", Value: m.gauge.Load(), Max: m.gauge.Max()}
	case kindGaugeFunc:
		return Metric{Kind: "gauge", Value: m.gaugeFn()}
	case kindHistogram:
		h := m.hist
		out := Metric{Kind: "histogram", Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
		if out.Count > 0 {
			out.Mean = float64(out.Sum) / float64(out.Count)
		}
		out.Buckets = make([]Bucket, 0, len(h.counts))
		for i := range h.counts {
			n := h.counts[i].Load()
			if n == 0 {
				continue // keep snapshots compact; absent buckets are zero
			}
			le := InfBucket
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			out.Buckets = append(out.Buckets, Bucket{Le: le, Count: n})
		}
		return out
	}
	panic("stats: unknown metric kind")
}

// Merge copies other into s with every key prefixed by "prefix.".
// An empty prefix copies keys unchanged.
func (s Snapshot) Merge(prefix string, other Snapshot) {
	for name, m := range other {
		if prefix != "" {
			name = prefix + "." + name
		}
		s[name] = m
	}
}

// Counter reads a counter or gauge value by name (0 if absent) —
// convenience for tests and report code.
func (s Snapshot) Counter(name string) int64 { return s[name].Value }

// WriteJSON writes the snapshot as indented JSON with sorted keys.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJSON snapshots the registry and writes it as JSON.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }
