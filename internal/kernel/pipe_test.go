package kernel

import (
	"errors"
	"testing"
)

// These tests pin the close-wake contract a lifecycle shed depends on:
// closing a descriptor must wake waiters parked on that descriptor's
// *own* ends, not only the peer's. Before this contract, Kernel().Close
// from a deadline callback left the victim's handler thread parked on
// its own read — slot held — until the peer happened to close, which is
// exactly the latency a shed exists to avoid.

// socketPair returns a connected (client, server) fd pair.
func socketPair(t *testing.T, k *Kernel) (FD, FD) {
	t.Helper()
	lfd, err := k.Listen("pair:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfd, err := k.Connect("pair:1")
	if err != nil {
		t.Fatal(err)
	}
	sfd, err := k.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Close(lfd); err != nil {
		t.Fatal(err)
	}
	return cfd, sfd
}

func TestCloseWakesOwnReader(t *testing.T) {
	k := newKernel()
	_, sfd := socketPair(t, k)
	ep := k.NewEpoll()
	// Park a read watch on the server's own fd with no data pending.
	if err := ep.Register(sfd, EventRead, nil); err != nil {
		t.Fatal(err)
	}
	if evs := ep.TryWait(); len(evs) != 0 {
		t.Fatalf("idle socket reported ready: %+v", evs)
	}
	// A shed closes the fd out from under its parked reader.
	if err := k.Close(sfd); err != nil {
		t.Fatal(err)
	}
	evs := ep.TryWait()
	if len(evs) != 1 || evs[0].Events&EventHup == 0 {
		t.Fatalf("events = %+v, want HUP on the closed fd's own reader", evs)
	}
	if _, err := k.Read(sfd, make([]byte, 1)); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read after own close: %v, want ErrBadFD", err)
	}
	ep.Done()
}

func TestCloseWakesOwnWriter(t *testing.T) {
	k := newKernel()
	_, sfd := socketPair(t, k)
	// Fill the server's transmit buffer so a write watch parks.
	buf := make([]byte, DefaultSocketBuffer)
	for {
		if _, err := k.Write(sfd, buf); err != nil {
			if !errors.Is(err, ErrAgain) {
				t.Fatal(err)
			}
			break
		}
	}
	ep := k.NewEpoll()
	if err := ep.Register(sfd, EventWrite, nil); err != nil {
		t.Fatal(err)
	}
	if evs := ep.TryWait(); len(evs) != 0 {
		t.Fatalf("full socket reported writable: %+v", evs)
	}
	if err := k.Close(sfd); err != nil {
		t.Fatal(err)
	}
	evs := ep.TryWait()
	if len(evs) != 1 || evs[0].Events&EventHup == 0 {
		t.Fatalf("events = %+v, want HUP on the closed fd's own writer", evs)
	}
	if _, err := k.Write(sfd, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Fatalf("write after own close: %v, want ErrBadFD", err)
	}
	ep.Done()
}
