// Package kernel simulates the slice of a Unix kernel that the paper's
// evaluation exercises: a file-descriptor table, FIFO pipes with bounded
// buffers and EAGAIN semantics, an epoll-style readiness-notification
// device, stream sockets with an optional link model, and files backed by
// the disk model in internal/disk.
//
// The real experiments ran against Linux 2.6.15; this package substitutes
// a deterministic, in-process kernel that preserves the behaviours the
// paper's mechanisms depend on — nonblocking system calls that return
// EAGAIN exactly where Linux would, level-triggered readiness events, and
// idle waiters that cost nothing — while remaining usable from both timing
// domains (see internal/vclock).
package kernel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hybrid/internal/bufpool"
	"hybrid/internal/faults"
	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// Errno values mirror the Unix errors the paper's wrappers test for.
var (
	// ErrAgain is EAGAIN/EWOULDBLOCK: the nonblocking operation cannot
	// proceed; wait for readiness and retry (paper Figure 10).
	ErrAgain = errors.New("resource temporarily unavailable (EAGAIN)")
	// ErrBadFD is EBADF: the descriptor is closed or invalid.
	ErrBadFD = errors.New("bad file descriptor (EBADF)")
	// ErrPipe is EPIPE: writing to a pipe or socket whose read side is
	// closed.
	ErrPipe = errors.New("broken pipe (EPIPE)")
	// ErrInvalid is EINVAL: the operation does not apply to this
	// descriptor (for example writing the read end of a pipe).
	ErrInvalid = errors.New("invalid argument (EINVAL)")
	// ErrConnRefused is ECONNREFUSED: no listener at the address.
	ErrConnRefused = errors.New("connection refused (ECONNREFUSED)")
	// ErrAddrInUse is EADDRINUSE: the listen address is taken.
	ErrAddrInUse = errors.New("address already in use (EADDRINUSE)")
	// ErrClosed reports an operation on a closed kernel object.
	ErrClosed = errors.New("use of closed descriptor")
	// ErrIntr is EINTR: the call was interrupted before it could start;
	// retry immediately. Only produced under fault injection.
	ErrIntr = errors.New("interrupted system call (EINTR)")
	// ErrIO is EIO: a low-level I/O error. Only produced under fault
	// injection.
	ErrIO = errors.New("input/output error (EIO)")
	// ErrConnAborted is ECONNABORTED: the pending connection was torn
	// down before accept could return it; retry the accept. Only
	// produced under fault injection.
	ErrConnAborted = errors.New("software caused connection abort (ECONNABORTED)")
)

// FD is a virtual file descriptor.
type FD int

// Event is a readiness bitmask, the kernel's EPOLLIN/EPOLLOUT.
type Event uint8

const (
	// EventRead indicates the descriptor is readable (data buffered, a
	// connection pending, EOF, or an error condition).
	EventRead Event = 1 << iota
	// EventWrite indicates the descriptor is writable (buffer space
	// available or an error condition).
	EventWrite
	// EventHup indicates the peer closed; delivered with either mask.
	EventHup
)

func (e Event) String() string {
	s := ""
	if e&EventRead != 0 {
		s += "R"
	}
	if e&EventWrite != 0 {
		s += "W"
	}
	if e&EventHup != 0 {
		s += "H"
	}
	if s == "" {
		return "-"
	}
	return s
}

// endpoint is any kernel object an FD can refer to.
type endpoint interface {
	// read and write are the nonblocking data-plane operations; objects
	// that do not support one return ErrInvalid.
	read(p []byte) (int, error)
	write(p []byte) (int, error)
	// closeEnd tears down this FD's view of the object.
	closeEnd() error
	// readiness reports the current level-triggered readiness.
	readiness() Event
	// addWatch registers a one-shot readiness watch. If the watch's mask
	// is already satisfied the object must fire it immediately.
	addWatch(w *watch)
}

// fdShardCount stripes the descriptor table. 64 shards keeps the map
// behind any one lock small and makes cross-FD contention vanishingly
// unlikely at realistic descriptor counts; it must stay a power of two so
// shard selection is a mask, not a divide.
const fdShardCount = 64

// fdShard is one stripe of the descriptor table. Lookups (every
// sys_read/sys_write) take the read lock; only allocate and close take
// the write lock. The pad spaces shards a cache line apart so two hot
// descriptors on adjacent shards do not false-share.
type fdShard struct {
	mu  sync.RWMutex
	fds map[FD]endpoint
	_   [40]byte
}

// Kernel is a simulated OS kernel instance. Independent benchmarks create
// independent kernels.
type Kernel struct {
	clock vclock.Clock

	// shards stripe the FD table by descriptor number. Per-FD object
	// state (pipe rings, listener backlogs) lives behind each endpoint's
	// own lock, so two threads on distinct descriptors touch disjoint
	// locks end to end.
	shards [fdShardCount]fdShard
	next   atomic.Int64 // last allocated FD; seeded so the first is 3

	lmu       sync.Mutex // guards listeners only
	listeners map[string]*Listener

	// counters track system calls for the evaluation harness. They are
	// plain atomics — the old single statsMu serialized every read and
	// write in the kernel against every other.
	counters kernelCounters

	// metrics mirrors the counters for the observability layer and adds
	// the ready-set size distribution (updated in Epoll.Wait).
	metrics  *stats.Registry
	readySet *stats.Histogram

	// faults, when non-nil, injects syscall failures and delayed epoll
	// readiness per its deterministic plan. Nil-safe: the zero kernel
	// behaves exactly as before.
	faults *faults.Injector
}

// kernelCounters is the hot-path mirror of Stats: one atomic per field,
// no shared lock.
type kernelCounters struct {
	reads           atomic.Uint64
	writes          atomic.Uint64
	bytesRead       atomic.Uint64
	bytesWrote      atomic.Uint64
	eagains         atomic.Uint64
	pipeEAGAINs     atomic.Uint64
	epollWaits      atomic.Uint64
	wakeups         atomic.Uint64
	spuriousWakeups atomic.Uint64
	backlogRejects  atomic.Uint64
}

// Stats are monotonically increasing counters of kernel activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	BytesRead   uint64
	BytesWrote  uint64
	EAGAINs     uint64
	PipeEAGAINs uint64
	EpollWaits  uint64
	Wakeups     uint64
	// SpuriousWakeups counts epoll waiters that woke and found an empty
	// ready list. With targeted signaling this stays at zero; it exists
	// to pin the absence of thundering-herd rechecks in tests.
	SpuriousWakeups uint64
	// BacklogRejects counts connections refused because the listener's
	// backlog was full — the kernel-side symptom of an overloaded accept
	// loop, and the back-pressure signal admission control relies on.
	BacklogRejects uint64
}

// New creates a kernel in the given timing domain.
func New(clock vclock.Clock) *Kernel {
	if clock == nil {
		clock = vclock.NewReal()
	}
	k := &Kernel{
		clock:     clock,
		listeners: make(map[string]*Listener),
		metrics:   stats.NewRegistry(),
	}
	for i := range k.shards {
		k.shards[i].fds = make(map[FD]endpoint)
	}
	k.next.Store(2) // 0,1,2 reserved, as tradition demands
	k.readySet = k.metrics.Histogram("ready_set", stats.PowersOfTwo(4096)...)
	// The syscall counters live on atomics; bridge them as func metrics
	// rather than double-counting on the data path.
	counters := []struct {
		name string
		c    *atomic.Uint64
	}{
		{"reads", &k.counters.reads},
		{"writes", &k.counters.writes},
		{"bytes_read", &k.counters.bytesRead},
		{"bytes_written", &k.counters.bytesWrote},
		{"eagains", &k.counters.eagains},
		{"pipe_eagains", &k.counters.pipeEAGAINs},
		{"epoll_waits", &k.counters.epollWaits},
		{"wakeups", &k.counters.wakeups},
		{"spurious_wakeups", &k.counters.spuriousWakeups},
		{"backlog_rejects", &k.counters.backlogRejects},
	}
	for _, c := range counters {
		ctr := c.c
		k.metrics.CounterFunc(c.name, ctr.Load)
	}
	k.metrics.GaugeFunc("open_fds", func() int64 { return int64(k.OpenFDs()) })
	// Elastic-ring segment traffic. The segment pool is process-global
	// (like bufpool's other classes), but it is the kernel that draws on
	// it — every pipe and socket ring chunks through it — so the kernel's
	// registry is where capacity investigations look first.
	k.metrics.CounterFunc("segment_gets", bufpool.SegGets)
	k.metrics.CounterFunc("segment_puts", bufpool.SegPuts)
	k.metrics.CounterFunc("segment_misses", bufpool.SegMisses)
	k.metrics.GaugeFunc("segment_outstanding", bufpool.SegOutstanding)
	return k
}

// Clock reports the kernel's timing domain.
func (k *Kernel) Clock() vclock.Clock { return k.clock }

// SetFaults attaches a fault injector: subsequent reads, writes, and
// accepts may fail with EINTR/EAGAIN/EIO (ECONNABORTED for accept) and
// epoll readiness may be delivered late, per the injector's plan. Call
// during setup, before the kernel is shared between goroutines.
func (k *Kernel) SetFaults(in *faults.Injector) { k.faults = in }

// Snapshot returns a copy of the kernel's counters.
func (k *Kernel) Snapshot() Stats {
	return Stats{
		Reads:           k.counters.reads.Load(),
		Writes:          k.counters.writes.Load(),
		BytesRead:       k.counters.bytesRead.Load(),
		BytesWrote:      k.counters.bytesWrote.Load(),
		EAGAINs:         k.counters.eagains.Load(),
		PipeEAGAINs:     k.counters.pipeEAGAINs.Load(),
		EpollWaits:      k.counters.epollWaits.Load(),
		Wakeups:         k.counters.wakeups.Load(),
		SpuriousWakeups: k.counters.spuriousWakeups.Load(),
		BacklogRejects:  k.counters.backlogRejects.Load(),
	}
}

// Metrics exposes the kernel's registry for the observability layer.
func (k *Kernel) Metrics() *stats.Registry { return k.metrics }

// shard maps a descriptor to its table stripe.
func (k *Kernel) shard(fd FD) *fdShard {
	return &k.shards[uint64(fd)&(fdShardCount-1)]
}

func (k *Kernel) install(e endpoint) FD {
	fd := FD(k.next.Add(1))
	sh := k.shard(fd)
	sh.mu.Lock()
	sh.fds[fd] = e
	sh.mu.Unlock()
	return fd
}

func (k *Kernel) lookup(fd FD) (endpoint, error) {
	sh := k.shard(fd)
	sh.mu.RLock()
	e, ok := sh.fds[fd]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fd %d: %w", fd, ErrBadFD)
	}
	return e, nil
}

// Read performs a nonblocking read on fd. It returns ErrAgain when no
// data is available, and (0, nil) at end of stream.
func (k *Kernel) Read(fd FD, p []byte) (int, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	// Injected failures happen before the endpoint is touched, like a
	// signal landing before the syscall moves data. EAGAIN is safe to
	// forge because readiness is level-triggered: the retry path's epoll
	// registration fires immediately if data really is there.
	if err := k.faults.FireErr(faults.KernelRead, ErrIntr, ErrAgain, ErrIO); err != nil {
		k.countIO(&k.counters.reads, &k.counters.bytesRead, 0, err, e)
		return 0, err
	}
	n, err := e.read(p)
	k.countIO(&k.counters.reads, &k.counters.bytesRead, n, err, e)
	return n, err
}

// countIO updates the syscall counters for one read or write. op and
// bytes point into k.counters; callers pass which side they are.
func (k *Kernel) countIO(op, bytes *atomic.Uint64, n int, err error, e endpoint) {
	op.Add(1)
	if n > 0 {
		bytes.Add(uint64(n))
	}
	if errors.Is(err, ErrAgain) {
		k.counters.eagains.Add(1)
		if isPipeEnd(e) {
			k.counters.pipeEAGAINs.Add(1)
		}
	}
}

// Write performs a nonblocking write on fd. It may write fewer bytes than
// requested; it returns ErrAgain when no buffer space is available.
func (k *Kernel) Write(fd FD, p []byte) (int, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	if err := k.faults.FireErr(faults.KernelWrite, ErrIntr, ErrAgain, ErrIO); err != nil {
		k.countIO(&k.counters.writes, &k.counters.bytesWrote, 0, err, e)
		return 0, err
	}
	n, err := e.write(p)
	k.countIO(&k.counters.writes, &k.counters.bytesWrote, n, err, e)
	return n, err
}

// isPipeEnd reports whether the endpoint is either end of a FIFO pipe;
// EAGAINs on pipes are tracked separately because they measure inter-thread
// flow-control pressure rather than network or disk backpressure.
func isPipeEnd(e endpoint) bool {
	switch e.(type) {
	case *pipeReadEnd, *pipeWriteEnd:
		return true
	}
	return false
}

// Close releases fd. Further operations on it return ErrBadFD.
func (k *Kernel) Close(fd FD) error {
	sh := k.shard(fd)
	sh.mu.Lock()
	e, ok := sh.fds[fd]
	if ok {
		delete(sh.fds, fd)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("fd %d: %w", fd, ErrBadFD)
	}
	return e.closeEnd()
}

// Readiness reports the current readiness of fd (diagnostics and tests).
func (k *Kernel) Readiness(fd FD) (Event, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	return e.readiness(), nil
}

// OpenFDs reports the number of live descriptors.
func (k *Kernel) OpenFDs() int {
	n := 0
	for i := range k.shards {
		sh := &k.shards[i]
		sh.mu.RLock()
		n += len(sh.fds)
		sh.mu.RUnlock()
	}
	return n
}
