// Package kernel simulates the slice of a Unix kernel that the paper's
// evaluation exercises: a file-descriptor table, FIFO pipes with bounded
// buffers and EAGAIN semantics, an epoll-style readiness-notification
// device, stream sockets with an optional link model, and files backed by
// the disk model in internal/disk.
//
// The real experiments ran against Linux 2.6.15; this package substitutes
// a deterministic, in-process kernel that preserves the behaviours the
// paper's mechanisms depend on — nonblocking system calls that return
// EAGAIN exactly where Linux would, level-triggered readiness events, and
// idle waiters that cost nothing — while remaining usable from both timing
// domains (see internal/vclock).
package kernel

import (
	"errors"
	"fmt"
	"sync"

	"hybrid/internal/faults"
	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// Errno values mirror the Unix errors the paper's wrappers test for.
var (
	// ErrAgain is EAGAIN/EWOULDBLOCK: the nonblocking operation cannot
	// proceed; wait for readiness and retry (paper Figure 10).
	ErrAgain = errors.New("resource temporarily unavailable (EAGAIN)")
	// ErrBadFD is EBADF: the descriptor is closed or invalid.
	ErrBadFD = errors.New("bad file descriptor (EBADF)")
	// ErrPipe is EPIPE: writing to a pipe or socket whose read side is
	// closed.
	ErrPipe = errors.New("broken pipe (EPIPE)")
	// ErrInvalid is EINVAL: the operation does not apply to this
	// descriptor (for example writing the read end of a pipe).
	ErrInvalid = errors.New("invalid argument (EINVAL)")
	// ErrConnRefused is ECONNREFUSED: no listener at the address.
	ErrConnRefused = errors.New("connection refused (ECONNREFUSED)")
	// ErrAddrInUse is EADDRINUSE: the listen address is taken.
	ErrAddrInUse = errors.New("address already in use (EADDRINUSE)")
	// ErrClosed reports an operation on a closed kernel object.
	ErrClosed = errors.New("use of closed descriptor")
	// ErrIntr is EINTR: the call was interrupted before it could start;
	// retry immediately. Only produced under fault injection.
	ErrIntr = errors.New("interrupted system call (EINTR)")
	// ErrIO is EIO: a low-level I/O error. Only produced under fault
	// injection.
	ErrIO = errors.New("input/output error (EIO)")
	// ErrConnAborted is ECONNABORTED: the pending connection was torn
	// down before accept could return it; retry the accept. Only
	// produced under fault injection.
	ErrConnAborted = errors.New("software caused connection abort (ECONNABORTED)")
)

// FD is a virtual file descriptor.
type FD int

// Event is a readiness bitmask, the kernel's EPOLLIN/EPOLLOUT.
type Event uint8

const (
	// EventRead indicates the descriptor is readable (data buffered, a
	// connection pending, EOF, or an error condition).
	EventRead Event = 1 << iota
	// EventWrite indicates the descriptor is writable (buffer space
	// available or an error condition).
	EventWrite
	// EventHup indicates the peer closed; delivered with either mask.
	EventHup
)

func (e Event) String() string {
	s := ""
	if e&EventRead != 0 {
		s += "R"
	}
	if e&EventWrite != 0 {
		s += "W"
	}
	if e&EventHup != 0 {
		s += "H"
	}
	if s == "" {
		return "-"
	}
	return s
}

// endpoint is any kernel object an FD can refer to.
type endpoint interface {
	// read and write are the nonblocking data-plane operations; objects
	// that do not support one return ErrInvalid.
	read(p []byte) (int, error)
	write(p []byte) (int, error)
	// closeEnd tears down this FD's view of the object.
	closeEnd() error
	// readiness reports the current level-triggered readiness.
	readiness() Event
	// addWatch registers a one-shot readiness watch. If the watch's mask
	// is already satisfied the object must fire it immediately.
	addWatch(w *watch)
}

// Kernel is a simulated OS kernel instance. Independent benchmarks create
// independent kernels.
type Kernel struct {
	clock vclock.Clock

	mu   sync.Mutex
	fds  map[FD]endpoint
	next FD

	listeners map[string]*Listener

	// stats counts system calls for the evaluation harness.
	statsMu sync.Mutex
	stats   Stats

	// metrics mirrors stats for the observability layer and adds the
	// ready-set size distribution (updated in Epoll.Wait).
	metrics  *stats.Registry
	readySet *stats.Histogram

	// faults, when non-nil, injects syscall failures and delayed epoll
	// readiness per its deterministic plan. Nil-safe: the zero kernel
	// behaves exactly as before.
	faults *faults.Injector
}

// Stats are monotonically increasing counters of kernel activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	BytesRead   uint64
	BytesWrote  uint64
	EAGAINs     uint64
	PipeEAGAINs uint64
	EpollWaits  uint64
	Wakeups     uint64
	// BacklogRejects counts connections refused because the listener's
	// backlog was full — the kernel-side symptom of an overloaded accept
	// loop, and the back-pressure signal admission control relies on.
	BacklogRejects uint64
}

// New creates a kernel in the given timing domain.
func New(clock vclock.Clock) *Kernel {
	if clock == nil {
		clock = vclock.NewReal()
	}
	k := &Kernel{
		clock:     clock,
		fds:       make(map[FD]endpoint),
		next:      3, // 0,1,2 reserved, as tradition demands
		listeners: make(map[string]*Listener),
		metrics:   stats.NewRegistry(),
	}
	k.readySet = k.metrics.Histogram("ready_set", stats.PowersOfTwo(4096)...)
	// The syscall counters already live in Stats under statsMu; bridge
	// them as func metrics rather than double-counting on the data path.
	counters := []struct {
		name string
		get  func(*Stats) uint64
	}{
		{"reads", func(s *Stats) uint64 { return s.Reads }},
		{"writes", func(s *Stats) uint64 { return s.Writes }},
		{"bytes_read", func(s *Stats) uint64 { return s.BytesRead }},
		{"bytes_written", func(s *Stats) uint64 { return s.BytesWrote }},
		{"eagains", func(s *Stats) uint64 { return s.EAGAINs }},
		{"pipe_eagains", func(s *Stats) uint64 { return s.PipeEAGAINs }},
		{"epoll_waits", func(s *Stats) uint64 { return s.EpollWaits }},
		{"wakeups", func(s *Stats) uint64 { return s.Wakeups }},
		{"backlog_rejects", func(s *Stats) uint64 { return s.BacklogRejects }},
	}
	for _, c := range counters {
		get := c.get
		k.metrics.CounterFunc(c.name, func() uint64 {
			k.statsMu.Lock()
			defer k.statsMu.Unlock()
			return get(&k.stats)
		})
	}
	k.metrics.GaugeFunc("open_fds", func() int64 { return int64(k.OpenFDs()) })
	return k
}

// Clock reports the kernel's timing domain.
func (k *Kernel) Clock() vclock.Clock { return k.clock }

// SetFaults attaches a fault injector: subsequent reads, writes, and
// accepts may fail with EINTR/EAGAIN/EIO (ECONNABORTED for accept) and
// epoll readiness may be delivered late, per the injector's plan. Call
// during setup, before the kernel is shared between goroutines.
func (k *Kernel) SetFaults(in *faults.Injector) { k.faults = in }

// Snapshot returns a copy of the kernel's counters.
func (k *Kernel) Snapshot() Stats {
	k.statsMu.Lock()
	defer k.statsMu.Unlock()
	return k.stats
}

// Metrics exposes the kernel's registry for the observability layer.
func (k *Kernel) Metrics() *stats.Registry { return k.metrics }

func (k *Kernel) install(e endpoint) FD {
	k.mu.Lock()
	fd := k.next
	k.next++
	k.fds[fd] = e
	k.mu.Unlock()
	return fd
}

func (k *Kernel) lookup(fd FD) (endpoint, error) {
	k.mu.Lock()
	e, ok := k.fds[fd]
	k.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fd %d: %w", fd, ErrBadFD)
	}
	return e, nil
}

// Read performs a nonblocking read on fd. It returns ErrAgain when no
// data is available, and (0, nil) at end of stream.
func (k *Kernel) Read(fd FD, p []byte) (int, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	// Injected failures happen before the endpoint is touched, like a
	// signal landing before the syscall moves data. EAGAIN is safe to
	// forge because readiness is level-triggered: the retry path's epoll
	// registration fires immediately if data really is there.
	if err := k.faults.FireErr(faults.KernelRead, ErrIntr, ErrAgain, ErrIO); err != nil {
		k.countIO(&k.stats.Reads, &k.stats.BytesRead, 0, err, e)
		return 0, err
	}
	n, err := e.read(p)
	k.countIO(&k.stats.Reads, &k.stats.BytesRead, n, err, e)
	return n, err
}

// countIO updates the syscall counters for one read or write. op and
// bytes point into k.stats; callers pass which side they are.
func (k *Kernel) countIO(op, bytes *uint64, n int, err error, e endpoint) {
	k.statsMu.Lock()
	*op++
	*bytes += uint64(n)
	if errors.Is(err, ErrAgain) {
		k.stats.EAGAINs++
		if isPipeEnd(e) {
			k.stats.PipeEAGAINs++
		}
	}
	k.statsMu.Unlock()
}

// Write performs a nonblocking write on fd. It may write fewer bytes than
// requested; it returns ErrAgain when no buffer space is available.
func (k *Kernel) Write(fd FD, p []byte) (int, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	if err := k.faults.FireErr(faults.KernelWrite, ErrIntr, ErrAgain, ErrIO); err != nil {
		k.countIO(&k.stats.Writes, &k.stats.BytesWrote, 0, err, e)
		return 0, err
	}
	n, err := e.write(p)
	k.countIO(&k.stats.Writes, &k.stats.BytesWrote, n, err, e)
	return n, err
}

// isPipeEnd reports whether the endpoint is either end of a FIFO pipe;
// EAGAINs on pipes are tracked separately because they measure inter-thread
// flow-control pressure rather than network or disk backpressure.
func isPipeEnd(e endpoint) bool {
	switch e.(type) {
	case *pipeReadEnd, *pipeWriteEnd:
		return true
	}
	return false
}

// Close releases fd. Further operations on it return ErrBadFD.
func (k *Kernel) Close(fd FD) error {
	k.mu.Lock()
	e, ok := k.fds[fd]
	if ok {
		delete(k.fds, fd)
	}
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("fd %d: %w", fd, ErrBadFD)
	}
	return e.closeEnd()
}

// Readiness reports the current readiness of fd (diagnostics and tests).
func (k *Kernel) Readiness(fd FD) (Event, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	return e.readiness(), nil
}

// OpenFDs reports the number of live descriptors.
func (k *Kernel) OpenFDs() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.fds)
}
