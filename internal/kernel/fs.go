package kernel

import (
	"fmt"
	"sync"

	"hybrid/internal/disk"
	"hybrid/internal/vclock"
)

// FS is a flat filesystem whose files live contiguously on a disk model.
// Data access (the bytes) is immediate; timing (when a request completes)
// is charged by the disk. Files opened through FS are read with AIO-style
// asynchronous requests — the paper's benchmark configuration opens files
// with O_DIRECT, so there is deliberately no page cache here; servers that
// want caching build their own (as the paper's web server does, §5.2).
type FS struct {
	d *disk.Disk
	// mu is a read-write lock: Open/Exists run on every request and only
	// read the table, so lookups on distinct files never serialize;
	// Create (setup-time) takes the write side.
	mu sync.RWMutex
	// nextBlock is the allocation frontier.
	nextBlock int64
	files     map[string]*File
}

// File is an open file handle.
type File struct {
	fs   *FS
	name string
	size int64
	base int64 // first disk block

	mu   sync.Mutex
	data []byte // nil for pattern-backed files
}

// NewFS creates a filesystem on the given disk.
func NewFS(d *disk.Disk) *FS {
	return &FS{d: d, files: make(map[string]*File)}
}

// Disk reports the underlying device.
func (fs *FS) Disk() *disk.Disk { return fs.d }

// Create allocates a file of the given size. If materialize is true the
// contents are stored in memory (writable, reads return stored bytes);
// otherwise the file is pattern-backed: reads return a deterministic byte
// pattern derived from the offset, so benchmark filesets of many gigabytes
// cost no host memory.
func (fs *FS) Create(name string, size int64, materialize bool) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("fs: create %q: negative size", name)
	}
	blocks := (size + disk.BlockSize - 1) / disk.BlockSize
	if blocks == 0 {
		blocks = 1
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, exists := fs.files[name]; exists {
		return nil, fmt.Errorf("fs: create %q: file exists", name)
	}
	if fs.nextBlock+blocks > fs.d.Geometry().Blocks {
		return nil, fmt.Errorf("fs: create %q: device full", name)
	}
	f := &File{fs: fs, name: name, size: size, base: fs.nextBlock}
	if materialize {
		f.data = make([]byte, size)
	}
	fs.nextBlock += blocks
	fs.files[name] = f
	return f, nil
}

// Open looks up a file by name.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("fs: open %q: no such file", name)
	}
	return f, nil
}

// Exists reports whether name exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

// Name reports the file's name.
func (f *File) Name() string { return f.name }

// Size reports the file's length in bytes.
func (f *File) Size() int64 { return f.size }

// contentsAt fills p with the file's bytes at off, without timing.
func (f *File) contentsAt(p []byte, off int64) int {
	if off >= f.size {
		return 0
	}
	n := len(p)
	if int64(n) > f.size-off {
		n = int(f.size - off)
	}
	if f.data != nil {
		f.mu.Lock()
		copy(p[:n], f.data[off:off+int64(n)])
		f.mu.Unlock()
		return n
	}
	// Pattern-backed: a cheap deterministic function of the absolute
	// offset, so any reader can validate what it got.
	for i := 0; i < n; i++ {
		p[i] = PatternByte(f.name, off+int64(i))
	}
	return n
}

// PatternByte is the deterministic content of pattern-backed files: the
// byte of file name at absolute offset off.
func PatternByte(name string, off int64) byte {
	h := uint64(off) * 0x9E3779B97F4A7C15
	if len(name) > 0 {
		h ^= uint64(name[int(uint64(off)%uint64(len(name)))])
	}
	return byte(h >> 56)
}

// WriteAt stores bytes into a materialized file (immediate, untimed; use
// AIOWrite for the timed path). Pattern-backed files reject writes.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if f.data == nil {
		return 0, fmt.Errorf("fs: %q is pattern-backed and read-only", f.name)
	}
	if off < 0 || off >= f.size {
		return 0, fmt.Errorf("fs: write %q at %d: out of range", f.name, off)
	}
	n := len(p)
	if int64(n) > f.size-off {
		n = int(f.size - off)
	}
	f.mu.Lock()
	copy(f.data[off:off+int64(n)], p[:n])
	f.mu.Unlock()
	return n, nil
}

// blockRange converts a byte range to disk blocks.
func (f *File) blockRange(off int64, n int) (block int64, count int) {
	first := off / disk.BlockSize
	last := (off + int64(n) - 1) / disk.BlockSize
	return f.base + first, int(last - first + 1)
}

// AIORead submits an asynchronous read of len(p) bytes at off. done
// receives the byte count (0 at EOF) or an error; it runs on the disk's
// completion context, so it should hand work onward rather than compute.
// This is the paper's sys_aio_read at the kernel boundary.
func (fs *FS) AIORead(f *File, off int64, p []byte, done func(n int, err error)) {
	fs.AIOReadExtra(f, off, p, 0, done)
}

// AIOReadExtra is AIORead with extra per-request service time charged to
// the device; the NPTL baseline uses it to model the kernel-thread wakeup
// that follows every blocking read.
func (fs *FS) AIOReadExtra(f *File, off int64, p []byte, extra vclock.Duration, done func(n int, err error)) {
	if off < 0 {
		done(0, fmt.Errorf("fs: read %q at %d: negative offset", f.name, off))
		return
	}
	if off >= f.size || len(p) == 0 {
		done(0, nil) // EOF
		return
	}
	n := len(p)
	if int64(n) > f.size-off {
		n = int(f.size - off)
	}
	block, count := f.blockRange(off, n)
	err := fs.d.Submit(&disk.Request{
		Block: block,
		Count: count,
		Extra: extra,
		Done: func() {
			done(f.contentsAt(p[:n], off), nil)
		},
		Fail: func(derr error) { done(0, derr) },
	})
	if err != nil {
		done(0, err)
	}
}

// AIOWrite submits an asynchronous write of p at off into a materialized
// file.
func (fs *FS) AIOWrite(f *File, off int64, p []byte, done func(n int, err error)) {
	if f.data == nil {
		done(0, fmt.Errorf("fs: %q is pattern-backed and read-only", f.name))
		return
	}
	if off < 0 || off >= f.size {
		done(0, fmt.Errorf("fs: write %q at %d: out of range", f.name, off))
		return
	}
	n := len(p)
	if int64(n) > f.size-off {
		n = int(f.size - off)
	}
	block, count := f.blockRange(off, n)
	err := fs.d.Submit(&disk.Request{
		Block: block,
		Count: count,
		Write: true,
		Done: func() {
			m, werr := f.WriteAt(p[:n], off)
			done(m, werr)
		},
		Fail: func(derr error) { done(0, derr) },
	})
	if err != nil {
		done(0, err)
	}
}
