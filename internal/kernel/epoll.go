package kernel

import (
	"sync"
	"sync/atomic"
	"time"

	"hybrid/internal/faults"
)

// This file implements the kernel's readiness-notification device, the
// stand-in for Linux epoll (§4.5). Registration is one-shot and
// level-triggered: if the descriptor already satisfies the mask, the event
// fires immediately; otherwise it fires on the state change that first
// satisfies it. One-shot registration matches how the paper uses epoll —
// each sys_epoll_wait registers the waiting thread's continuation and the
// event carries it back to the scheduler.

// ReadyEvent is one harvested readiness notification. Data is whatever
// the registrant attached — in the hybrid runtime, the parked thread's
// resume hook, "a reference to c, the child node that is the continuation
// of the application thread".
type ReadyEvent struct {
	FD     FD
	Events Event
	Data   any
}

// watch is a registered one-shot readiness subscription. A watch may be
// parked on more than one wait list (a socket watching both directions);
// claim arbitrates so it fires exactly once.
type watch struct {
	ep   *Epoll
	fd   FD
	mask Event
	data any
	dead atomic.Bool // claimed (fired) or cancelled
}

// claim marks the watch fired; it reports whether the caller won the
// right to deliver it.
func (w *watch) claim() bool { return w.dead.CompareAndSwap(false, true) }

// Epoll is an epoll instance: a queue of ready events harvested by an
// event loop (the paper's worker_epoll, Figure 16), or — in immediate
// mode — dispatched synchronously at the point of readiness.
type Epoll struct {
	k       *Kernel
	mu      sync.Mutex
	cond    *sync.Cond
	ready   []ReadyEvent
	waiting int // waiters blocked in cond.Wait, for targeted signaling
	closed  bool

	// immediate switches delivery from the harvested queue to a
	// synchronous callback: deliver invokes the watch's data (which must
	// be a func(Event)) inline instead of queueing a ReadyEvent for Wait.
	// Virtual-time runs use this so readiness resumes happen at a
	// deterministic point in the instruction stream — either inside the
	// thread action that caused the readiness or inside the clock's
	// (when, seq)-ordered dispatch batch — with no harvest goroutine's
	// host scheduling in between.
	immediate bool
}

// NewEpoll creates an epoll instance on the kernel.
func (k *Kernel) NewEpoll() *Epoll {
	ep := &Epoll{k: k}
	ep.cond = sync.NewCond(&ep.mu)
	return ep
}

// SetImmediate switches the instance to immediate (synchronous) delivery.
// Call before the first Register; watches registered afterwards must
// carry a func(Event) as their data.
func (ep *Epoll) SetImmediate() { ep.immediate = true }

// Register subscribes for a one-shot readiness event on fd. If fd is
// already ready for mask, the event is queued immediately. data rides
// along on the delivered ReadyEvent.
func (ep *Epoll) Register(fd FD, mask Event, data any) error {
	e, err := ep.k.lookup(fd)
	if err != nil {
		return err
	}
	w := &watch{ep: ep, fd: fd, mask: mask | EventHup, data: data}
	// The object checks current readiness under its own lock and either
	// fires the watch now or parks it on its wait list.
	e.addWatch(w)
	return nil
}

// maxEpollDelay bounds an injected readiness delay: long enough to
// reorder wakeups against I/O completions, short enough that workloads
// still make progress.
const maxEpollDelay = time.Millisecond

// fire queues the event and wakes a waiter. Called by kernel objects when
// a watch's mask becomes satisfied; the caller has already removed the
// watch from its wait list (one-shot).
func (w *watch) fire(ev Event) {
	ep := w.ep
	// An injected delay postpones delivery on the clock. No busy hold is
	// taken for the interim: the pending timer is what keeps virtual time
	// from idling past the wakeup, and the hold is taken in deliver as
	// usual (the timer callback runs with its own hold, so the transfer
	// is seamless).
	if d := ep.k.faults.Latency(faults.EpollDelay, maxEpollDelay); d > 0 {
		ep.k.clock.After(d, func() { ep.deliver(w, ev) })
		return
	}
	ep.deliver(w, ev)
}

// deliver hands the (possibly delayed) event over: synchronously in
// immediate mode, else queued with one waiter woken.
func (ep *Epoll) deliver(w *watch, ev Event) {
	if ep.immediate {
		ep.k.counters.wakeups.Add(1)
		if fn, ok := w.data.(func(Event)); ok {
			fn(ev)
		}
		return
	}
	// Every undelivered ready event holds the clock busy: in the virtual
	// domain time must not advance past a wakeup that has been earned but
	// not yet delivered to the scheduler.
	ep.k.clock.Enter()
	ep.mu.Lock()
	ep.ready = append(ep.ready, ReadyEvent{FD: w.fd, Events: ev, Data: w.data})
	ep.mu.Unlock()
	ep.cond.Signal()
	ep.k.counters.wakeups.Add(1)
}

// deliverAll queues a batch of coalesced events under one lock acquisition
// and wakes at most one waiter per event — a targeted Signal per pending
// event instead of a Broadcast, so no waiter wakes to find nothing.
func (ep *Epoll) deliverAll(evs []ReadyEvent) {
	for range evs {
		ep.k.clock.Enter()
	}
	ep.mu.Lock()
	ep.ready = append(ep.ready, evs...)
	sig := len(evs)
	if ep.waiting < sig {
		sig = ep.waiting
	}
	ep.mu.Unlock()
	for i := 0; i < sig; i++ {
		ep.cond.Signal()
	}
	ep.k.counters.wakeups.Add(uint64(len(evs)))
}

// DefaultWaitBatch bounds how many events one Wait returns, like the
// maxevents argument of epoll_wait. Leftovers stay queued and re-signal
// another waiter.
const DefaultWaitBatch = 512

// Wait blocks until at least one event is ready (or the instance is
// closed, in which case ok is false) and returns up to DefaultWaitBatch
// pending events.
//
// Each returned event carries a busy hold on the kernel's clock; the
// caller must call Done once per event after dispatching it.
func (ep *Epoll) Wait() (events []ReadyEvent, ok bool) {
	ep.mu.Lock()
	for len(ep.ready) == 0 && !ep.closed {
		ep.waiting++
		ep.cond.Wait()
		ep.waiting--
		if len(ep.ready) == 0 && !ep.closed {
			// Woke to an empty queue: the thundering-herd symptom the
			// targeted Signal exists to eliminate. Counted so tests can
			// pin its absence.
			ep.k.counters.spuriousWakeups.Add(1)
		}
	}
	if len(ep.ready) > DefaultWaitBatch {
		events = ep.ready[:DefaultWaitBatch:DefaultWaitBatch]
		ep.ready = ep.ready[DefaultWaitBatch:]
	} else {
		events = ep.ready
		ep.ready = nil
	}
	closed := ep.closed
	resignal := len(ep.ready) > 0 && ep.waiting > 0
	ep.mu.Unlock()
	if resignal {
		ep.cond.Signal()
	}
	ep.k.counters.epollWaits.Add(1)
	if len(events) > 0 {
		ep.k.readySet.Observe(int64(len(events)))
	}
	return events, !closed || len(events) > 0
}

// TryWait returns pending events without blocking.
func (ep *Epoll) TryWait() []ReadyEvent {
	ep.mu.Lock()
	events := ep.ready
	ep.ready = nil
	ep.mu.Unlock()
	return events
}

// Done releases the busy hold carried by one delivered event. Call it
// after the event's thread has been re-enqueued (or otherwise disposed of).
func (ep *Epoll) Done() { ep.k.clock.Exit() }

// Close wakes all waiters; subsequent Waits return ok=false once drained.
// Each blocked waiter gets exactly one targeted Signal — new arrivals see
// the closed flag before sleeping, so a Broadcast would only add
// thundering-herd wakeups.
func (ep *Epoll) Close() {
	ep.mu.Lock()
	ep.closed = true
	n := ep.waiting
	ep.mu.Unlock()
	for i := 0; i < n; i++ {
		ep.cond.Signal()
	}
}

// waitList is the per-object list of parked watches, embedded in every
// pollable kernel object. Methods must be called with the object's lock
// held; fire-outs are returned so the caller can invoke them after
// unlocking (watch.fire takes the epoll lock, and lock ordering is always
// object → epoll).
type waitList struct{ watches []*watch }

// add parks a watch.
func (wl *waitList) add(w *watch) { wl.watches = append(wl.watches, w) }

// collect removes and returns the watches whose mask intersects ev,
// claiming each so a copy parked on another list cannot also fire. Stale
// (already-claimed) watches encountered along the way are dropped.
func (wl *waitList) collect(ev Event) []*watch {
	if len(wl.watches) == 0 {
		return nil
	}
	var fired []*watch
	kept := wl.watches[:0]
	for _, w := range wl.watches {
		switch {
		case w.dead.Load():
			// stale: drop
		case ev != 0 && w.mask&ev != 0 && w.claim():
			fired = append(fired, w)
		default:
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(wl.watches); i++ {
		wl.watches[i] = nil
	}
	wl.watches = kept
	return fired
}

// fireAll dispatches ev to each collected watch. Call without holding the
// object lock. Contiguous runs of watches on the same epoll instance are
// delivered as one batch — one lock acquisition and one coalesced signal
// round instead of a lock+signal per watch — which is the edge-coalescing
// half of batched epoll dispatch. Injected latency draws happen per watch
// in list order, so fault plans replay identically to one-at-a-time fire.
func fireAll(watches []*watch, ev Event) {
	for i := 0; i < len(watches); {
		ep := watches[i].ep
		j := i + 1
		for j < len(watches) && watches[j].ep == ep {
			j++
		}
		ep.fireBatch(watches[i:j], ev)
		i = j
	}
}

// fireBatch delivers ev to a run of watches that share this epoll
// instance. Watches with an injected readiness delay peel off onto clock
// timers; the rest land in the ready queue in one deliverAll.
func (ep *Epoll) fireBatch(ws []*watch, ev Event) {
	if ep.immediate {
		// Synchronous dispatch in list order; each watch still takes its
		// latency draw (inside fire), so fault plans replay identically.
		// Delayed watches peel onto clock timers and fire in (when, seq)
		// order at their due timestamps.
		for _, w := range ws {
			w.fire(ev)
		}
		return
	}
	if len(ws) == 1 {
		ws[0].fire(ev)
		return
	}
	var now []ReadyEvent
	for _, w := range ws {
		if d := ep.k.faults.Latency(faults.EpollDelay, maxEpollDelay); d > 0 {
			w := w
			ep.k.clock.After(d, func() { ep.deliver(w, ev) })
			continue
		}
		now = append(now, ReadyEvent{FD: w.fd, Events: ev, Data: w.data})
	}
	if len(now) > 0 {
		ep.deliverAll(now)
	}
}
