package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hybrid/internal/bufpool"
)

// pipeModel is the executable specification the elastic chunked ring is
// checked against: a flat byte queue with a logical capacity and the
// exact close/EOF/EPIPE ordering rules of the original flat-ring
// implementation. Every observable of pipe — the (n, err) of each read
// and write, the bytes delivered, and both ends' readiness — must match
// this model under arbitrary interleavings.
type pipeModel struct {
	cp          int
	buf         []byte
	readClosed  bool
	writeClosed bool
}

func (m *pipeModel) read(n int) ([]byte, error) {
	if m.readClosed {
		return nil, ErrBadFD
	}
	if len(m.buf) == 0 {
		if m.writeClosed {
			return nil, nil // EOF
		}
		return nil, ErrAgain
	}
	if n > len(m.buf) {
		n = len(m.buf)
	}
	out := append([]byte(nil), m.buf[:n]...)
	m.buf = m.buf[n:]
	return out, nil
}

func (m *pipeModel) write(b []byte) (int, error) {
	if m.writeClosed {
		return 0, ErrBadFD
	}
	if m.readClosed {
		return 0, ErrPipe
	}
	space := m.cp - len(m.buf)
	if space == 0 {
		return 0, ErrAgain
	}
	n := len(b)
	if n > space {
		n = space
	}
	m.buf = append(m.buf, b[:n]...)
	return n, nil
}

func (m *pipeModel) closeRead() error {
	if m.readClosed {
		return ErrClosed
	}
	m.readClosed = true
	m.buf = nil
	return nil
}

func (m *pipeModel) closeWrite() error {
	if m.writeClosed {
		return ErrClosed
	}
	m.writeClosed = true
	return nil
}

func (m *pipeModel) readReadiness() Event {
	var ev Event
	if len(m.buf) > 0 || m.writeClosed {
		ev |= EventRead
	}
	if m.writeClosed {
		ev |= EventHup
	}
	return ev
}

func (m *pipeModel) writeReadiness() Event {
	var ev Event
	if len(m.buf) < m.cp || m.readClosed {
		ev |= EventWrite
	}
	if m.readClosed {
		ev |= EventHup
	}
	return ev
}

func sameErr(a, b error) bool {
	if a == nil || b == nil {
		return a == b
	}
	return errors.Is(a, b)
}

// TestPipeMatchesFlatModel drives the elastic ring and the flat model
// through the same random operation sequences — reads and writes of
// sizes straddling segment boundaries and the logical capacity, plus
// close interleavings — and requires identical observables at every
// step. Capacities are chosen to cover sub-segment pipes, non-multiples
// of the segment size, exact multiples, and the default socket ring.
func TestPipeMatchesFlatModel(t *testing.T) {
	caps := []int{
		1, 5, 100, 4095, 4096, 4097, 10000,
		DefaultPipeBuffer, 3 * bufpool.SegSize, DefaultSocketBuffer,
	}
	for _, cp := range caps {
		cp := cp
		t.Run(fmt.Sprintf("cap=%d", cp), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed*7919 + int64(cp)))
				p := newPipe(cp)
				m := &pipeModel{cp: cp}
				var next byte // deterministic payload stream
				for step := 0; step < 2000; step++ {
					switch op := rng.Intn(100); {
					case op < 45: // write
						n := rng.Intn(cp+bufpool.SegSize) + 1
						b := make([]byte, n)
						for i := range b {
							b[i] = next
							next++
						}
						gn, gerr := p.writeData(b)
						wn, werr := m.write(b)
						if gn != wn || !sameErr(gerr, werr) {
							t.Fatalf("seed %d step %d: write(%d) = (%d, %v), model (%d, %v)",
								seed, step, n, gn, gerr, wn, werr)
						}
						if gn < n {
							// Short write: resync the payload stream so the
							// model and pipe stay aligned.
							next -= byte(n - gn)
						}
					case op < 90: // read
						n := rng.Intn(cp+bufpool.SegSize) + 1
						b := make([]byte, n)
						gn, gerr := p.readData(b)
						want, werr := m.read(n)
						if gn != len(want) || !sameErr(gerr, werr) {
							t.Fatalf("seed %d step %d: read(%d) = (%d, %v), model (%d, %v)",
								seed, step, n, gn, gerr, len(want), werr)
						}
						if !bytes.Equal(b[:gn], want) {
							t.Fatalf("seed %d step %d: read bytes diverge from model", seed, step)
						}
					case op < 93 && !m.readClosed: // close read end
						gerr := p.closeRead()
						werr := m.closeRead()
						if !sameErr(gerr, werr) {
							t.Fatalf("seed %d step %d: closeRead = %v, model %v", seed, step, gerr, werr)
						}
					case op < 96 && !m.writeClosed: // close write end
						gerr := p.closeWrite()
						werr := m.closeWrite()
						if !sameErr(gerr, werr) {
							t.Fatalf("seed %d step %d: closeWrite = %v, model %v", seed, step, gerr, werr)
						}
					}
					p.mu.Lock()
					rr, wr := p.readReadiness(), p.writeReadiness()
					count := p.count
					nsegs := len(p.segs)
					p.mu.Unlock()
					if rr != m.readReadiness() || wr != m.writeReadiness() {
						t.Fatalf("seed %d step %d: readiness (R=%v W=%v), model (R=%v W=%v)",
							seed, step, rr, wr, m.readReadiness(), m.writeReadiness())
					}
					if count != len(m.buf) {
						t.Fatalf("seed %d step %d: count %d, model %d", seed, step, count, len(m.buf))
					}
					// Elasticity: allocation tracks occupancy, never the
					// logical capacity, and a drained pipe holds nothing.
					if want := (count + bufpool.SegSize - 1) / bufpool.SegSize; nsegs > want+1 {
						t.Fatalf("seed %d step %d: %d segments held for %d bytes", seed, step, nsegs, count)
					}
					if count == 0 && nsegs != 0 && !m.readClosed {
						t.Fatalf("seed %d step %d: drained pipe holds %d segments", seed, step, nsegs)
					}
				}
			}
		})
	}
}

// TestPipeShrinksToZero pins the capacity claim directly: filling a
// socket-sized pipe allocates segments on demand, draining it returns
// every one, and a freshly created pipe allocates none at all.
func TestPipeShrinksToZero(t *testing.T) {
	p := newPipe(DefaultSocketBuffer)
	if got := p.allocatedBytes(); got != 0 {
		t.Fatalf("new pipe holds %d buffer bytes, want 0", got)
	}
	payload := make([]byte, DefaultSocketBuffer)
	if n, err := p.writeData(payload); n != DefaultSocketBuffer || err != nil {
		t.Fatalf("fill = (%d, %v)", n, err)
	}
	if got := p.allocatedBytes(); got != DefaultSocketBuffer {
		t.Fatalf("full pipe holds %d buffer bytes, want %d", got, DefaultSocketBuffer)
	}
	// Partial drain frees the drained prefix's segments.
	if _, err := p.readData(payload[:3*bufpool.SegSize+1]); err != nil {
		t.Fatal(err)
	}
	if got, max := p.allocatedBytes(), DefaultSocketBuffer-3*bufpool.SegSize; got > max {
		t.Fatalf("partially drained pipe holds %d buffer bytes, want <= %d", got, max)
	}
	for {
		n, err := p.readData(payload)
		if errors.Is(err, ErrAgain) {
			break
		}
		if err != nil || n == 0 {
			t.Fatalf("drain = (%d, %v)", n, err)
		}
	}
	if got := p.allocatedBytes(); got != 0 {
		t.Fatalf("drained pipe holds %d buffer bytes, want 0", got)
	}
}

// TestPipeCloseReleasesBufferedData pins the close path: data parked in a
// pipe whose read side closes can never be delivered, so its segments go
// back to the pool immediately rather than riding the descriptor until
// the peer notices.
func TestPipeCloseReleasesBufferedData(t *testing.T) {
	p := newPipe(DefaultSocketBuffer)
	if _, err := p.writeData(make([]byte, 9000)); err != nil {
		t.Fatal(err)
	}
	if p.allocatedBytes() == 0 {
		t.Fatal("buffered pipe holds no segments")
	}
	if err := p.closeRead(); err != nil {
		t.Fatal(err)
	}
	if got := p.allocatedBytes(); got != 0 {
		t.Fatalf("closed pipe holds %d buffer bytes, want 0", got)
	}
	if _, err := p.writeData([]byte("x")); !errors.Is(err, ErrPipe) {
		t.Fatalf("write after closeRead: %v, want EPIPE", err)
	}
}

// BenchmarkPipeThroughput measures the hot copy path: streaming through
// a socket-sized pipe in MSS-shaped writes against a draining reader.
// The flat ring moved every byte through a per-byte modulo; the chunked
// ring copies at most one contiguous run per spanned segment.
func BenchmarkPipeThroughput(b *testing.B) {
	p := newPipe(DefaultSocketBuffer)
	wbuf := make([]byte, 1460)
	rbuf := make([]byte, 4096)
	b.SetBytes(int64(len(wbuf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			if _, err := p.writeData(wbuf); !errors.Is(err, ErrAgain) {
				break
			}
			// Full: drain a chunk and retry.
			if _, err := p.readData(rbuf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	for {
		if _, err := p.readData(rbuf); errors.Is(err, ErrAgain) {
			break
		}
	}
}

// BenchmarkPipeLargeWrite measures full-buffer writes and reads — the
// worst case for the old per-byte loop (65536 modulo operations per
// call), the best case for contiguous segment copies.
func BenchmarkPipeLargeWrite(b *testing.B) {
	p := newPipe(DefaultSocketBuffer)
	buf := make([]byte, DefaultSocketBuffer)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := p.writeData(buf); n != len(buf) || err != nil {
			b.Fatalf("write = (%d, %v)", n, err)
		}
		if n, err := p.readData(buf); n != len(buf) || err != nil {
			b.Fatalf("read = (%d, %v)", n, err)
		}
	}
}
