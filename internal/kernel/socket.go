package kernel

import (
	"fmt"
	"sync"

	"hybrid/internal/faults"
)

// Stream sockets: a connected socket is a pair of pipes cross-connected
// between the two endpoints; a listener holds a backlog of accepted-but-
// unclaimed connections. Connection setup is instantaneous — the kernel
// socket layer models the loopback path of the paper's testbed, while the
// timed network path goes through internal/netsim and the application-
// level TCP stack (§4.8).

// DefaultSocketBuffer is the per-direction socket buffer size.
const DefaultSocketBuffer = 65536

// socketEnd is one endpoint of a connected stream socket.
type socketEnd struct {
	rx *pipe // data flowing toward this endpoint
	tx *pipe // data flowing away from this endpoint
}

func (s *socketEnd) read(b []byte) (int, error)  { return s.rx.readData(b) }
func (s *socketEnd) write(b []byte) (int, error) { return s.tx.writeData(b) }

func (s *socketEnd) closeEnd() error {
	// Closing a socket tears down both directions from this side: our
	// receive path stops accepting data and our transmit path signals EOF.
	errR := s.rx.closeRead()
	errW := s.tx.closeWrite()
	if errR != nil {
		return errR
	}
	return errW
}

func (s *socketEnd) readiness() Event {
	s.rx.mu.Lock()
	ev := s.rx.readReadiness()
	s.rx.mu.Unlock()
	s.tx.mu.Lock()
	ev |= s.tx.writeReadiness()
	s.tx.mu.Unlock()
	return ev
}

func (s *socketEnd) addWatch(w *watch) {
	// Fast path: already ready for some requested event.
	if ev := s.readiness() & w.mask; ev != 0 {
		if w.claim() {
			w.fire(ev)
		}
		return
	}
	// Park on the lists matching the mask. A watch on both directions is
	// parked twice; claim() guarantees it fires at most once and the
	// stale copy is dropped at the next collect.
	if w.mask&(EventRead|EventHup) != 0 {
		s.rx.mu.Lock()
		s.rx.readers.add(w)
		ready := s.rx.readReadiness() & w.mask
		s.rx.mu.Unlock()
		if ready != 0 {
			// Raced with a writer between the fast path and parking.
			if w.claim() {
				w.fire(ready)
			}
			return
		}
	}
	if w.mask&EventWrite != 0 {
		s.tx.mu.Lock()
		s.tx.writers.add(w)
		ready := s.tx.writeReadiness() & w.mask
		s.tx.mu.Unlock()
		if ready != 0 {
			if w.claim() {
				w.fire(ready)
			}
		}
	}
}

// Listener accepts stream connections at a named address.
type Listener struct {
	k       *Kernel
	addr    string
	mu      sync.Mutex
	backlog []*socketEnd
	max     int
	closed  bool
	waiters waitList
}

func (l *Listener) read([]byte) (int, error)  { return 0, ErrInvalid }
func (l *Listener) write([]byte) (int, error) { return 0, ErrInvalid }

func (l *Listener) closeEnd() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	fired := l.waiters.collect(EventRead | EventHup)
	l.mu.Unlock()
	l.k.lmu.Lock()
	delete(l.k.listeners, l.addr)
	l.k.lmu.Unlock()
	fireAll(fired, EventRead|EventHup)
	return nil
}

func (l *Listener) readiness() Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readinessLocked()
}

func (l *Listener) addWatch(w *watch) {
	l.mu.Lock()
	if ev := l.readinessLocked() & w.mask; ev != 0 {
		l.mu.Unlock()
		if w.claim() {
			w.fire(ev)
		}
		return
	}
	l.waiters.add(w)
	l.mu.Unlock()
}

func (l *Listener) readinessLocked() Event {
	var ev Event
	if len(l.backlog) > 0 || l.closed {
		ev |= EventRead
	}
	if l.closed {
		ev |= EventHup
	}
	return ev
}

// DefaultBacklog is the backlog capacity used when Listen is called with
// backlog 0, mirroring the SOMAXCONN default.
const DefaultBacklog = 128

// Listen binds a listener to addr with the given backlog capacity and
// returns its descriptor (watchable for EventRead = connection pending).
// A backlog of 0 selects DefaultBacklog; a negative backlog is EINVAL —
// it used to be clamped silently, hiding caller bugs where a computed
// limit went negative.
func (k *Kernel) Listen(addr string, backlog int) (FD, error) {
	if backlog < 0 {
		return 0, fmt.Errorf("listen %s: backlog %d: %w", addr, backlog, ErrInvalid)
	}
	if backlog == 0 {
		backlog = DefaultBacklog
	}
	k.lmu.Lock()
	if _, taken := k.listeners[addr]; taken {
		k.lmu.Unlock()
		return 0, fmt.Errorf("listen %s: %w", addr, ErrAddrInUse)
	}
	l := &Listener{k: k, addr: addr, max: backlog}
	k.listeners[addr] = l
	k.lmu.Unlock()
	return k.install(l), nil
}

// Accept takes a pending connection off listenFD's backlog, returning
// ErrAgain when none is pending (wrap with epoll exactly like the paper's
// sock_accept in Figure 10).
func (k *Kernel) Accept(listenFD FD) (FD, error) {
	e, err := k.lookup(listenFD)
	if err != nil {
		return 0, err
	}
	l, ok := e.(*Listener)
	if !ok {
		return 0, ErrInvalid
	}
	// Only the retryable accept errors are injected — an EIO here would
	// kill a server's accept loop rather than exercise its retry path.
	if err := k.faults.FireErr(faults.KernelAccept, ErrIntr, ErrConnAborted); err != nil {
		return 0, err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if len(l.backlog) == 0 {
		l.mu.Unlock()
		return 0, ErrAgain
	}
	conn := l.backlog[0]
	l.backlog = l.backlog[1:]
	l.mu.Unlock()
	return k.install(conn), nil
}

// Connect establishes a stream connection to addr, returning the client
// descriptor. Setup is instantaneous; a full backlog or missing listener
// refuses the connection.
func (k *Kernel) Connect(addr string) (FD, error) {
	k.lmu.Lock()
	l := k.listeners[addr]
	k.lmu.Unlock()
	if l == nil {
		return 0, fmt.Errorf("connect %s: %w", addr, ErrConnRefused)
	}
	c2s := newPipe(DefaultSocketBuffer)
	s2c := newPipe(DefaultSocketBuffer)
	client := &socketEnd{rx: s2c, tx: c2s}
	server := &socketEnd{rx: c2s, tx: s2c}
	l.mu.Lock()
	if l.closed || len(l.backlog) >= l.max {
		full := !l.closed
		l.mu.Unlock()
		if full {
			k.counters.backlogRejects.Add(1)
		}
		return 0, fmt.Errorf("connect %s: %w", addr, ErrConnRefused)
	}
	l.backlog = append(l.backlog, server)
	fired := l.waiters.collect(EventRead)
	l.mu.Unlock()
	fireAll(fired, EventRead)
	return k.install(client), nil
}

// SocketPair creates a connected pair of stream sockets directly, without
// a listener (useful in tests and examples).
func (k *Kernel) SocketPair() (FD, FD) {
	ab := newPipe(DefaultSocketBuffer)
	ba := newPipe(DefaultSocketBuffer)
	a := &socketEnd{rx: ba, tx: ab}
	b := &socketEnd{rx: ab, tx: ba}
	return k.install(a), k.install(b)
}
