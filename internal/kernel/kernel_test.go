package kernel

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hybrid/internal/disk"
	"hybrid/internal/vclock"
)

func newKernel() *Kernel { return New(vclock.NewReal()) }

// ---------------------------------------------------------------------------
// Pipes
// ---------------------------------------------------------------------------

func TestPipeWriteThenRead(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(0)
	n, err := k.Write(w, []byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	buf := make([]byte, 16)
	n, err = k.Read(r, buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
}

func TestPipeEmptyReadEAGAIN(t *testing.T) {
	k := newKernel()
	r, _ := k.NewPipe(0)
	_, err := k.Read(r, make([]byte, 4))
	if !errors.Is(err, ErrAgain) {
		t.Fatalf("read of empty pipe: %v, want EAGAIN", err)
	}
}

func TestPipeFullWriteEAGAIN(t *testing.T) {
	k := newKernel()
	_, w := k.NewPipe(8)
	if n, err := k.Write(w, make([]byte, 16)); err != nil || n != 8 {
		t.Fatalf("first write = %d, %v; want short write of 8", n, err)
	}
	_, err := k.Write(w, []byte("x"))
	if !errors.Is(err, ErrAgain) {
		t.Fatalf("write to full pipe: %v, want EAGAIN", err)
	}
}

func TestPipeEOFAfterWriterClose(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(0)
	if _, err := k.Write(w, []byte("ab")); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(w); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, err := k.Read(r, buf)
	if err != nil || n != 2 {
		t.Fatalf("drain read = %d, %v", n, err)
	}
	n, err = k.Read(r, buf)
	if n != 0 || err != nil {
		t.Fatalf("EOF read = %d, %v; want 0, nil", n, err)
	}
}

func TestPipeEPIPEAfterReaderClose(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(0)
	if err := k.Close(r); err != nil {
		t.Fatal(err)
	}
	_, err := k.Write(w, []byte("x"))
	if !errors.Is(err, ErrPipe) {
		t.Fatalf("write after reader close: %v, want EPIPE", err)
	}
}

func TestPipeWrongDirection(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(0)
	if _, err := k.Write(r, []byte("x")); !errors.Is(err, ErrInvalid) {
		t.Fatalf("write to read end: %v", err)
	}
	if _, err := k.Read(w, make([]byte, 1)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("read from write end: %v", err)
	}
}

func TestBadFD(t *testing.T) {
	k := newKernel()
	if _, err := k.Read(99, make([]byte, 1)); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read bad fd: %v", err)
	}
	if err := k.Close(99); !errors.Is(err, ErrBadFD) {
		t.Fatalf("close bad fd: %v", err)
	}
	if k.OpenFDs() != 0 {
		t.Fatalf("OpenFDs = %d, want 0", k.OpenFDs())
	}
}

func TestPipeRingWraparound(t *testing.T) {
	// Interleaved reads and writes force the ring indices to wrap; bytes
	// must come out in order.
	k := newKernel()
	r, w := k.NewPipe(7)
	var wrote, got []byte
	next := byte(0)
	buf := make([]byte, 3)
	for i := 0; i < 50; i++ {
		chunk := []byte{next, next + 1}
		next += 2
		if n, err := k.Write(w, chunk); err == nil {
			wrote = append(wrote, chunk[:n]...)
			if n < len(chunk) {
				next-- // second byte not accepted
			}
		} else if !errors.Is(err, ErrAgain) {
			t.Fatal(err)
		} else {
			next -= 2
		}
		if n, err := k.Read(r, buf); err == nil {
			got = append(got, buf[:n]...)
		} else if !errors.Is(err, ErrAgain) {
			t.Fatal(err)
		}
	}
	for {
		n, err := k.Read(r, buf)
		if errors.Is(err, ErrAgain) || n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(wrote, got) {
		t.Fatalf("FIFO violated: wrote %v got %v", wrote, got)
	}
}

// Property: for any sequence of write/read chunk sizes, bytes are
// conserved and delivered in FIFO order.
func TestPipeFIFOProperty(t *testing.T) {
	check := func(sizes []uint8) bool {
		k := newKernel()
		r, w := k.NewPipe(64)
		var wrote, got []byte
		seq := byte(0)
		for _, s := range sizes {
			n := int(s % 32)
			chunk := make([]byte, n)
			for i := range chunk {
				chunk[i] = seq + byte(i)
			}
			wn, err := k.Write(w, chunk)
			if err != nil && !errors.Is(err, ErrAgain) {
				return false
			}
			wrote = append(wrote, chunk[:wn]...)
			seq += byte(wn) // unaccepted bytes are re-numbered next round
			buf := make([]byte, int(s%16)+1)
			rn, err := k.Read(r, buf)
			if err != nil && !errors.Is(err, ErrAgain) {
				return false
			}
			got = append(got, buf[:rn]...)
		}
		for {
			buf := make([]byte, 16)
			rn, err := k.Read(r, buf)
			if err != nil || rn == 0 {
				break
			}
			got = append(got, buf[:rn]...)
		}
		return bytes.Equal(wrote, got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Epoll
// ---------------------------------------------------------------------------

func TestEpollImmediateReadiness(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(0)
	if _, err := k.Write(w, []byte("x")); err != nil {
		t.Fatal(err)
	}
	ep := k.NewEpoll()
	if err := ep.Register(r, EventRead, "tag"); err != nil {
		t.Fatal(err)
	}
	evs := ep.TryWait()
	if len(evs) != 1 || evs[0].FD != r || evs[0].Data != "tag" {
		t.Fatalf("events = %+v", evs)
	}
	ep.Done()
}

func TestEpollFiresOnWrite(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(0)
	ep := k.NewEpoll()
	if err := ep.Register(r, EventRead, nil); err != nil {
		t.Fatal(err)
	}
	if len(ep.TryWait()) != 0 {
		t.Fatal("event fired before data")
	}
	if _, err := k.Write(w, []byte("x")); err != nil {
		t.Fatal(err)
	}
	evs := ep.TryWait()
	if len(evs) != 1 || evs[0].Events&EventRead == 0 {
		t.Fatalf("events = %+v", evs)
	}
	ep.Done()
}

func TestEpollOneShot(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(0)
	ep := k.NewEpoll()
	if err := ep.Register(r, EventRead, nil); err != nil {
		t.Fatal(err)
	}
	k.Write(w, []byte("a"))
	if evs := ep.TryWait(); len(evs) != 1 {
		t.Fatalf("first write: %d events", len(evs))
	}
	ep.Done()
	k.Write(w, []byte("b"))
	if evs := ep.TryWait(); len(evs) != 0 {
		t.Fatalf("one-shot watch fired twice: %+v", evs)
	}
}

func TestEpollWriteReadiness(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(4)
	if _, err := k.Write(w, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	ep := k.NewEpoll()
	if err := ep.Register(w, EventWrite, nil); err != nil {
		t.Fatal(err)
	}
	if len(ep.TryWait()) != 0 {
		t.Fatal("full pipe reported writable")
	}
	if _, err := k.Read(r, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}
	evs := ep.TryWait()
	if len(evs) != 1 || evs[0].Events&EventWrite == 0 {
		t.Fatalf("events = %+v", evs)
	}
	ep.Done()
}

func TestEpollHupOnClose(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(0)
	ep := k.NewEpoll()
	if err := ep.Register(r, EventRead, nil); err != nil {
		t.Fatal(err)
	}
	k.Close(w)
	evs := ep.TryWait()
	if len(evs) != 1 || evs[0].Events&EventHup == 0 {
		t.Fatalf("events = %+v, want HUP", evs)
	}
	ep.Done()
}

func TestEpollWaitBlocksUntilEvent(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(0)
	ep := k.NewEpoll()
	if err := ep.Register(r, EventRead, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan []ReadyEvent, 1)
	go func() {
		evs, _ := ep.Wait()
		done <- evs
	}()
	k.Write(w, []byte("x"))
	evs := <-done
	if len(evs) != 1 {
		t.Fatalf("events = %+v", evs)
	}
	ep.Done()
}

func TestEpollManyIdleWatches(t *testing.T) {
	// The Figure 18 situation: thousands of idle watches on empty pipes
	// must not produce events, and one active pipe must.
	k := newKernel()
	ep := k.NewEpoll()
	const idle = 10000
	for i := 0; i < idle; i++ {
		r, _ := k.NewPipe(0)
		if err := ep.Register(r, EventRead, i); err != nil {
			t.Fatal(err)
		}
	}
	r, w := k.NewPipe(0)
	if err := ep.Register(r, EventRead, "active"); err != nil {
		t.Fatal(err)
	}
	k.Write(w, []byte("x"))
	evs := ep.TryWait()
	if len(evs) != 1 || evs[0].Data != "active" {
		t.Fatalf("events = %d, want exactly the active one", len(evs))
	}
	ep.Done()
}

func TestEpollRegisterBadFD(t *testing.T) {
	k := newKernel()
	ep := k.NewEpoll()
	if err := ep.Register(1234, EventRead, nil); !errors.Is(err, ErrBadFD) {
		t.Fatalf("register bad fd: %v", err)
	}
}

func TestEpollCloseWakesWaiter(t *testing.T) {
	k := newKernel()
	ep := k.NewEpoll()
	done := make(chan bool, 1)
	go func() {
		_, ok := ep.Wait()
		done <- ok
	}()
	ep.Close()
	if ok := <-done; ok {
		t.Fatal("Wait returned ok=true after Close with no events")
	}
}

// ---------------------------------------------------------------------------
// Sockets
// ---------------------------------------------------------------------------

func TestListenConnectAccept(t *testing.T) {
	k := newKernel()
	lfd, err := k.Listen("srv:80", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Accept(lfd); !errors.Is(err, ErrAgain) {
		t.Fatalf("accept with empty backlog: %v", err)
	}
	cfd, err := k.Connect("srv:80")
	if err != nil {
		t.Fatal(err)
	}
	sfd, err := k.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	// Bidirectional transfer.
	if _, err := k.Write(cfd, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if n, err := k.Read(sfd, buf); err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}
	if _, err := k.Write(sfd, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if n, err := k.Read(cfd, buf); err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("client read %q, %v", buf[:n], err)
	}
}

func TestConnectNoListener(t *testing.T) {
	k := newKernel()
	if _, err := k.Connect("nowhere:1"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("connect: %v", err)
	}
}

func TestListenAddrInUse(t *testing.T) {
	k := newKernel()
	if _, err := k.Listen("a:1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Listen("a:1", 1); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("second listen: %v", err)
	}
}

func TestBacklogOverflowRefused(t *testing.T) {
	k := newKernel()
	if _, err := k.Listen("b:1", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := k.Connect("b:1"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Connect("b:1"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("overflow connect: %v", err)
	}
	// The refusal is counted as back-pressure, distinct from no-listener
	// and closed-listener refusals.
	if got := k.Snapshot().BacklogRejects; got != 1 {
		t.Fatalf("BacklogRejects = %d, want 1", got)
	}
	if _, err := k.Connect("nowhere:0"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("no-listener connect: %v", err)
	}
	if got := k.Snapshot().BacklogRejects; got != 1 {
		t.Fatalf("BacklogRejects counted a no-listener refusal: %d", got)
	}
	snap := k.Metrics().Snapshot()
	if got := snap.Counter("backlog_rejects"); got != 1 {
		t.Fatalf("backlog_rejects metric = %d, want 1", got)
	}
}

// Regression (PR 3): Listen used to clamp any backlog <= 0 to the default,
// so a caller whose computed limit went negative listened with a 128-deep
// backlog instead of failing. Zero still selects the default.
func TestListenBacklogValidation(t *testing.T) {
	k := newKernel()
	if _, err := k.Listen("neg:1", -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative backlog: %v, want EINVAL", err)
	}
	// The failed listen must not claim the address.
	lfd, err := k.Listen("neg:1", 0)
	if err != nil {
		t.Fatalf("zero backlog (default): %v", err)
	}
	l := func() *Listener {
		e, err := k.lookup(lfd)
		if err != nil {
			t.Fatal(err)
		}
		return e.(*Listener)
	}()
	if l.max != DefaultBacklog {
		t.Fatalf("zero backlog gave capacity %d, want DefaultBacklog %d", l.max, DefaultBacklog)
	}
}

func TestListenerEpollReadiness(t *testing.T) {
	k := newKernel()
	lfd, _ := k.Listen("c:1", 4)
	ep := k.NewEpoll()
	if err := ep.Register(lfd, EventRead, nil); err != nil {
		t.Fatal(err)
	}
	if len(ep.TryWait()) != 0 {
		t.Fatal("listener ready before any connection")
	}
	if _, err := k.Connect("c:1"); err != nil {
		t.Fatal(err)
	}
	if evs := ep.TryWait(); len(evs) != 1 {
		t.Fatalf("listener events = %d, want 1", len(evs))
	}
	ep.Done()
}

func TestSocketCloseGivesPeerEOFAndEPIPE(t *testing.T) {
	k := newKernel()
	a, b := k.SocketPair()
	k.Write(a, []byte("bye"))
	k.Close(a)
	buf := make([]byte, 8)
	if n, err := k.Read(b, buf); err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("drain: %q, %v", buf[:n], err)
	}
	if n, err := k.Read(b, buf); n != 0 || err != nil {
		t.Fatalf("EOF: %d, %v", n, err)
	}
	if _, err := k.Write(b, []byte("x")); !errors.Is(err, ErrPipe) {
		t.Fatalf("write to closed peer: %v", err)
	}
}

func TestListenerCloseRemovesAddress(t *testing.T) {
	k := newKernel()
	lfd, _ := k.Listen("d:1", 1)
	if err := k.Close(lfd); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Connect("d:1"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("connect after close: %v", err)
	}
	if _, err := k.Listen("d:1", 1); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
}

func TestSocketWatchBothDirectionsFiresOnce(t *testing.T) {
	k := newKernel()
	a, b := k.SocketPair()
	// Fill a's send buffer so EventWrite is not immediately ready.
	for {
		if _, err := k.Write(a, make([]byte, 4096)); errors.Is(err, ErrAgain) {
			break
		}
	}
	ep := k.NewEpoll()
	if err := ep.Register(a, EventRead|EventWrite, nil); err != nil {
		t.Fatal(err)
	}
	if len(ep.TryWait()) != 0 {
		t.Fatal("watch fired with nothing ready")
	}
	// Make both directions ready at once.
	k.Write(b, []byte("data"))     // a readable
	k.Read(b, make([]byte, DefaultSocketBuffer)) // a writable
	if evs := ep.TryWait(); len(evs) != 1 {
		t.Fatalf("one-shot dual watch fired %d times", len(evs))
	}
	ep.Done()
}

// ---------------------------------------------------------------------------
// Stats, readiness probes
// ---------------------------------------------------------------------------

func TestKernelStats(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(0)
	k.Write(w, []byte("abcd"))
	k.Read(r, make([]byte, 4))
	k.Read(r, make([]byte, 4)) // EAGAIN
	s := k.Snapshot()
	if s.Writes != 1 || s.Reads != 2 || s.BytesRead != 4 || s.BytesWrote != 4 || s.EAGAINs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReadinessProbe(t *testing.T) {
	k := newKernel()
	r, w := k.NewPipe(4)
	ev, err := k.Readiness(r)
	if err != nil || ev != 0 {
		t.Fatalf("empty pipe read end: %v %v", ev, err)
	}
	ev, _ = k.Readiness(w)
	if ev&EventWrite == 0 {
		t.Fatalf("empty pipe write end: %v", ev)
	}
	k.Write(w, make([]byte, 4))
	if ev, _ = k.Readiness(r); ev&EventRead == 0 {
		t.Fatalf("nonempty pipe read end: %v", ev)
	}
	if ev, _ = k.Readiness(w); ev&EventWrite != 0 {
		t.Fatalf("full pipe write end: %v", ev)
	}
}

// ---------------------------------------------------------------------------
// Filesystem
// ---------------------------------------------------------------------------

func newFS(t *testing.T) (*FS, *vclock.VirtualClock) {
	t.Helper()
	clk := vclock.NewVirtual()
	d := disk.New(clk, disk.DefaultGeometry())
	return NewFS(d), clk
}

func TestFSCreateOpen(t *testing.T) {
	fs, _ := newFS(t)
	f, err := fs.Create("a.txt", 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100 || f.Name() != "a.txt" {
		t.Fatalf("file = %q size %d", f.Name(), f.Size())
	}
	if _, err := fs.Create("a.txt", 1, true); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	g, err := fs.Open("a.txt")
	if err != nil || g != f {
		t.Fatalf("open: %v", err)
	}
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if !fs.Exists("a.txt") || fs.Exists("b") {
		t.Fatal("Exists wrong")
	}
}

func TestFSAIOReadMaterialized(t *testing.T) {
	fs, _ := newFS(t)
	f, _ := fs.Create("data", 10, true)
	if _, err := f.WriteAt([]byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	var gotN int
	var gotErr error
	fs.AIORead(f, 3, buf, func(n int, err error) { gotN, gotErr = n, err })
	// Virtual clock: completion ran synchronously once the clock
	// quiesced (the submitting goroutine holds no busy count here).
	if gotErr != nil || gotN != 4 || string(buf) != "3456" {
		t.Fatalf("AIORead = %d %v %q", gotN, gotErr, buf)
	}
}

func TestFSAIOReadPastEOF(t *testing.T) {
	fs, _ := newFS(t)
	f, _ := fs.Create("data", 10, true)
	var gotN int
	fs.AIORead(f, 10, make([]byte, 4), func(n int, err error) { gotN = n })
	if gotN != 0 {
		t.Fatalf("read at EOF = %d", gotN)
	}
	// Short read at the boundary.
	var shortN int
	fs.AIORead(f, 8, make([]byte, 4), func(n int, err error) { shortN = n })
	if shortN != 2 {
		t.Fatalf("short read = %d, want 2", shortN)
	}
}

func TestFSPatternFile(t *testing.T) {
	fs, _ := newFS(t)
	f, _ := fs.Create("big", 1<<20, false)
	buf1 := make([]byte, 64)
	buf2 := make([]byte, 64)
	fs.AIORead(f, 12345, buf1, func(int, error) {})
	fs.AIORead(f, 12345, buf2, func(int, error) {})
	if !bytes.Equal(buf1, buf2) {
		t.Fatal("pattern file reads not deterministic")
	}
	if _, err := f.WriteAt([]byte("x"), 0); err == nil {
		t.Fatal("write to pattern file succeeded")
	}
}

func TestFSAIOReadTakesDiskTime(t *testing.T) {
	fs, clk := newFS(t)
	f, _ := fs.Create("timed", 1<<20, false)
	before := clk.Now()
	done := false
	fs.AIORead(f, 0, make([]byte, 4096), func(int, error) { done = true })
	if !done {
		t.Fatal("completion did not run")
	}
	if clk.Now() == before {
		t.Fatal("AIO read consumed no virtual time")
	}
}

func TestFSAIOWrite(t *testing.T) {
	fs, _ := newFS(t)
	f, _ := fs.Create("w", 16, true)
	var gotN int
	fs.AIOWrite(f, 4, []byte("abcd"), func(n int, err error) { gotN = n })
	if gotN != 4 {
		t.Fatalf("AIOWrite = %d", gotN)
	}
	buf := make([]byte, 4)
	fs.AIORead(f, 4, buf, func(int, error) {})
	if string(buf) != "abcd" {
		t.Fatalf("read back %q", buf)
	}
}

func TestFSDeviceFull(t *testing.T) {
	clk := vclock.NewVirtual()
	g := disk.DefaultGeometry()
	g.Blocks = 4
	d := disk.New(clk, g)
	fs := NewFS(d)
	if _, err := fs.Create("a", 3*disk.BlockSize, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("b", 2*disk.BlockSize, false); err == nil {
		t.Fatal("create on full device succeeded")
	}
}

func TestEventStringAndMisc(t *testing.T) {
	if s := (EventRead | EventWrite | EventHup).String(); s != "RWH" {
		t.Fatalf("event string = %q", s)
	}
	if s := Event(0).String(); s != "-" {
		t.Fatalf("zero event = %q", s)
	}
	k := New(nil) // nil clock defaults to a real clock
	if k.Clock() == nil {
		t.Fatal("nil clock not defaulted")
	}
}

func TestListenerIsNotAStream(t *testing.T) {
	k := newKernel()
	lfd, _ := k.Listen("x:1", 1)
	if _, err := k.Read(lfd, make([]byte, 1)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("read on listener: %v", err)
	}
	if _, err := k.Write(lfd, []byte("x")); !errors.Is(err, ErrInvalid) {
		t.Fatalf("write on listener: %v", err)
	}
	if _, err := k.Accept(r0(k)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("accept on non-listener: %v", err)
	}
}

// r0 returns a pipe read end to misuse as an accept target.
func r0(k *Kernel) FD {
	r, _ := k.NewPipe(0)
	return r
}

func TestSocketWriteWatchParksUntilDrain(t *testing.T) {
	// Covers the socket addWatch write-side parking path.
	k := newKernel()
	a, b := k.SocketPair()
	for {
		if _, err := k.Write(a, make([]byte, 8192)); errors.Is(err, ErrAgain) {
			break
		}
	}
	ep := k.NewEpoll()
	if err := ep.Register(a, EventWrite, nil); err != nil {
		t.Fatal(err)
	}
	if len(ep.TryWait()) != 0 {
		t.Fatal("full socket reported writable")
	}
	k.Read(b, make([]byte, 1024))
	if evs := ep.TryWait(); len(evs) != 1 {
		t.Fatalf("drain produced %d events", len(evs))
	}
	ep.Done()
}

func TestFSDiskAccessor(t *testing.T) {
	clk := vclock.NewVirtual()
	d := disk.New(clk, disk.DefaultGeometry())
	fs := NewFS(d)
	if fs.Disk() != d {
		t.Fatal("Disk() wrong")
	}
}

func TestAIOWriteOutOfRange(t *testing.T) {
	fs, _ := newFS(t)
	f, _ := fs.Create("w", 16, true)
	var gotErr error
	fs.AIOWrite(f, 99, []byte("x"), func(n int, err error) { gotErr = err })
	if gotErr == nil {
		t.Fatal("out-of-range AIOWrite succeeded")
	}
	fs.AIOWrite(f, -1, []byte("x"), func(n int, err error) { gotErr = err })
	if gotErr == nil {
		t.Fatal("negative-offset AIOWrite succeeded")
	}
	// Short write at the end of the file.
	var gotN int
	fs.AIOWrite(f, 14, []byte("abcd"), func(n int, err error) { gotN = n })
	if gotN != 2 {
		t.Fatalf("short AIOWrite = %d, want 2", gotN)
	}
}
