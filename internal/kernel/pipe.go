package kernel

import "sync"

// DefaultPipeBuffer is the FIFO pipe capacity used throughout the
// evaluation; the paper's pipes buffer 4 KB.
const DefaultPipeBuffer = 4096

// pipe is a unidirectional FIFO byte stream with a bounded ring buffer,
// the kernel object behind both FIFO pipes and each direction of a stream
// socket.
type pipe struct {
	mu          sync.Mutex
	buf         []byte
	head, count int
	readClosed  bool
	writeClosed bool
	readers     waitList // watches on the read end
	writers     waitList // watches on the write end
}

func newPipe(size int) *pipe {
	if size <= 0 {
		size = DefaultPipeBuffer
	}
	return &pipe{buf: make([]byte, size)}
}

// readReadiness computes the read end's level-triggered readiness. Called
// with p.mu held.
func (p *pipe) readReadiness() Event {
	var ev Event
	if p.count > 0 || p.writeClosed {
		ev |= EventRead
	}
	if p.writeClosed {
		ev |= EventHup
	}
	return ev
}

// writeReadiness computes the write end's readiness. Called with p.mu held.
func (p *pipe) writeReadiness() Event {
	var ev Event
	if p.count < len(p.buf) || p.readClosed {
		ev |= EventWrite
	}
	if p.readClosed {
		ev |= EventHup
	}
	return ev
}

// readData copies up to len(b) buffered bytes out, returning EAGAIN when
// the pipe is empty and not EOF.
func (p *pipe) readData(b []byte) (int, error) {
	p.mu.Lock()
	if p.readClosed {
		p.mu.Unlock()
		return 0, ErrBadFD
	}
	if p.count == 0 {
		if p.writeClosed {
			p.mu.Unlock()
			return 0, nil // EOF
		}
		p.mu.Unlock()
		return 0, ErrAgain
	}
	n := len(b)
	if n > p.count {
		n = p.count
	}
	for i := 0; i < n; i++ {
		b[i] = p.buf[(p.head+i)%len(p.buf)]
	}
	p.head = (p.head + n) % len(p.buf)
	p.count -= n
	// Space became available: wake write-side waiters. The readiness
	// recomputation (and the fire-out below) is skipped entirely when no
	// watch is parked — the common case once a poll round has already
	// drained this edge.
	var fired []*watch
	if len(p.writers.watches) > 0 {
		fired = p.writers.collect(p.writeReadiness())
	}
	p.mu.Unlock()
	fireAll(fired, EventWrite)
	return n, nil
}

// writeData copies up to len(b) bytes in, returning a short count when
// the buffer fills and EAGAIN when it was already full.
func (p *pipe) writeData(b []byte) (int, error) {
	p.mu.Lock()
	if p.writeClosed {
		p.mu.Unlock()
		return 0, ErrBadFD
	}
	if p.readClosed {
		p.mu.Unlock()
		return 0, ErrPipe
	}
	space := len(p.buf) - p.count
	if space == 0 {
		p.mu.Unlock()
		return 0, ErrAgain
	}
	n := len(b)
	if n > space {
		n = space
	}
	tail := (p.head + p.count) % len(p.buf)
	for i := 0; i < n; i++ {
		p.buf[(tail+i)%len(p.buf)] = b[i]
	}
	p.count += n
	var fired []*watch
	if len(p.readers.watches) > 0 {
		fired = p.readers.collect(p.readReadiness())
	}
	p.mu.Unlock()
	fireAll(fired, EventRead)
	return n, nil
}

func (p *pipe) closeRead() error {
	p.mu.Lock()
	if p.readClosed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.readClosed = true
	// Writers see EPIPE from now on; wake them with HUP. Waiters parked
	// on the read end itself are woken too: a descriptor closed out from
	// under a blocked reader (a lifecycle shed) must fail that read now,
	// not when the peer eventually closes its side.
	fired := p.writers.collect(EventWrite | EventHup)
	orphaned := p.readers.collect(EventRead | EventHup)
	p.mu.Unlock()
	fireAll(fired, EventWrite|EventHup)
	fireAll(orphaned, EventRead|EventHup)
	return nil
}

func (p *pipe) closeWrite() error {
	p.mu.Lock()
	if p.writeClosed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.writeClosed = true
	// Readers now see EOF once drained; that counts as readable. Waiters
	// parked on the write end itself are woken for the same reason as in
	// closeRead: their next write must fail immediately.
	fired := p.readers.collect(EventRead | EventHup)
	orphaned := p.writers.collect(EventWrite | EventHup)
	p.mu.Unlock()
	fireAll(fired, EventRead|EventHup)
	fireAll(orphaned, EventWrite|EventHup)
	return nil
}

// pipeReadEnd and pipeWriteEnd adapt one pipe to the two descriptors.

type pipeReadEnd struct{ p *pipe }

func (e *pipeReadEnd) read(b []byte) (int, error) { return e.p.readData(b) }
func (e *pipeReadEnd) write([]byte) (int, error)  { return 0, ErrInvalid }
func (e *pipeReadEnd) closeEnd() error            { return e.p.closeRead() }
func (e *pipeReadEnd) readiness() Event {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	return e.p.readReadiness()
}
func (e *pipeReadEnd) addWatch(w *watch) {
	e.p.mu.Lock()
	ev := e.p.readReadiness() & w.mask
	if ev != 0 {
		e.p.mu.Unlock()
		if w.claim() {
			w.fire(ev)
		}
		return
	}
	e.p.readers.add(w)
	e.p.mu.Unlock()
}

type pipeWriteEnd struct{ p *pipe }

func (e *pipeWriteEnd) read([]byte) (int, error)    { return 0, ErrInvalid }
func (e *pipeWriteEnd) write(b []byte) (int, error) { return e.p.writeData(b) }
func (e *pipeWriteEnd) closeEnd() error             { return e.p.closeWrite() }
func (e *pipeWriteEnd) readiness() Event {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	return e.p.writeReadiness()
}
func (e *pipeWriteEnd) addWatch(w *watch) {
	e.p.mu.Lock()
	ev := e.p.writeReadiness() & w.mask
	if ev != 0 {
		e.p.mu.Unlock()
		if w.claim() {
			w.fire(ev)
		}
		return
	}
	e.p.writers.add(w)
	e.p.mu.Unlock()
}

// NewPipe creates a FIFO pipe with the given buffer size (0 means
// DefaultPipeBuffer) and returns its read and write descriptors.
func (k *Kernel) NewPipe(bufSize int) (r FD, w FD) {
	p := newPipe(bufSize)
	return k.install(&pipeReadEnd{p: p}), k.install(&pipeWriteEnd{p: p})
}
