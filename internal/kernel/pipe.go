package kernel

import (
	"sync"

	"hybrid/internal/bufpool"
)

// DefaultPipeBuffer is the FIFO pipe capacity used throughout the
// evaluation; the paper's pipes buffer 4 KB.
const DefaultPipeBuffer = 4096

// pipe is a unidirectional FIFO byte stream with a bounded elastic
// buffer, the kernel object behind both FIFO pipes and each direction of
// a stream socket.
//
// The buffer is an elastic chunked ring: a deque of fixed-size segments
// (bufpool.SegSize) drawn from the shared segment pool, allocated lazily
// on first write, grown on demand up to the pipe's logical capacity, and
// released back to the pool as they drain — a fully drained pipe holds no
// buffer memory at all. This is the difference between ~137 KB and ~7 KB
// per parked connection at C10M scale: the old implementation eagerly
// allocated a flat 64 KB ring per direction at socket creation, whether
// or not a byte ever flowed.
//
// All flow-control semantics key off the LOGICAL capacity (cp), never the
// allocated bytes: readiness, EAGAIN boundaries, and short-write counts
// are byte-for-byte identical to the flat ring, so figure outputs and
// trace shapes do not move.
//
// Segment layout invariants (guarded by mu):
//   - segs[0] is read from offset head; segs[len(segs)-1] is written at
//     offset tail; interior segments are full.
//   - with one segment, the filled range is [head, tail).
//   - count is the total filled bytes; len(segs) == 0 implies
//     count == 0 && head == 0 && tail == 0.
type pipe struct {
	mu          sync.Mutex
	cp          int      // logical capacity (the EAGAIN/readiness boundary)
	segs        [][]byte // chunk deque; nil/empty when drained
	head        int      // read offset into segs[0]
	tail        int      // write offset into segs[len(segs)-1]
	count       int
	readClosed  bool
	writeClosed bool
	readers     waitList // watches on the read end
	writers     waitList // watches on the write end
}

func newPipe(size int) *pipe {
	if size <= 0 {
		size = DefaultPipeBuffer
	}
	return &pipe{cp: size}
}

// readReadiness computes the read end's level-triggered readiness. Called
// with p.mu held.
func (p *pipe) readReadiness() Event {
	var ev Event
	if p.count > 0 || p.writeClosed {
		ev |= EventRead
	}
	if p.writeClosed {
		ev |= EventHup
	}
	return ev
}

// writeReadiness computes the write end's readiness. Called with p.mu held.
func (p *pipe) writeReadiness() Event {
	var ev Event
	if p.count < p.cp || p.readClosed {
		ev |= EventWrite
	}
	if p.readClosed {
		ev |= EventHup
	}
	return ev
}

// releaseHeadLocked returns the fully drained front segment to the pool.
// Called with p.mu held.
func (p *pipe) releaseHeadLocked() {
	s := p.segs[0]
	n := len(p.segs)
	if n == 1 {
		p.segs[0] = nil
		p.segs = p.segs[:0]
		p.head, p.tail = 0, 0
	} else {
		copy(p.segs, p.segs[1:])
		p.segs[n-1] = nil
		p.segs = p.segs[:n-1]
		p.head = 0
	}
	bufpool.PutSeg(s)
}

// releaseAllLocked drops every segment: the data can never be read again
// (the read side closed). Called with p.mu held.
func (p *pipe) releaseAllLocked() {
	for _, s := range p.segs {
		bufpool.PutSeg(s)
	}
	for i := range p.segs {
		p.segs[i] = nil
	}
	p.segs = nil
	p.head, p.tail, p.count = 0, 0, 0
}

// readData copies up to len(b) buffered bytes out, returning EAGAIN when
// the pipe is empty and not EOF.
func (p *pipe) readData(b []byte) (int, error) {
	p.mu.Lock()
	if p.readClosed {
		p.mu.Unlock()
		return 0, ErrBadFD
	}
	if p.count == 0 {
		if p.writeClosed {
			p.mu.Unlock()
			return 0, nil // EOF
		}
		p.mu.Unlock()
		return 0, ErrAgain
	}
	n := len(b)
	if n > p.count {
		n = p.count
	}
	// One copy per spanned segment; drained segments go straight back to
	// the pool, so a read that empties the pipe leaves it holding nothing.
	got := 0
	for got < n {
		s := p.segs[0]
		end := bufpool.SegSize
		if len(p.segs) == 1 {
			end = p.tail
		}
		c := copy(b[got:n], s[p.head:end])
		p.head += c
		got += c
		if p.head == end {
			p.releaseHeadLocked()
		}
	}
	p.count -= n
	// Space became available: wake write-side waiters. The readiness
	// recomputation (and the fire-out below) is skipped entirely when no
	// watch is parked — the common case once a poll round has already
	// drained this edge.
	var fired []*watch
	if len(p.writers.watches) > 0 {
		fired = p.writers.collect(p.writeReadiness())
	}
	p.mu.Unlock()
	fireAll(fired, EventWrite)
	return n, nil
}

// writeData copies up to len(b) bytes in, returning a short count when
// the logical capacity fills and EAGAIN when it was already full.
func (p *pipe) writeData(b []byte) (int, error) {
	p.mu.Lock()
	if p.writeClosed {
		p.mu.Unlock()
		return 0, ErrBadFD
	}
	if p.readClosed {
		p.mu.Unlock()
		return 0, ErrPipe
	}
	space := p.cp - p.count
	if space == 0 {
		p.mu.Unlock()
		return 0, ErrAgain
	}
	n := len(b)
	if n > space {
		n = space
	}
	// One copy per spanned segment; the tail segment is topped up before
	// a new one is drawn from the pool.
	src := b[:n]
	for len(src) > 0 {
		if len(p.segs) == 0 || p.tail == bufpool.SegSize {
			p.segs = append(p.segs, bufpool.GetSeg())
			p.tail = 0
		}
		t := p.segs[len(p.segs)-1]
		c := copy(t[p.tail:], src)
		p.tail += c
		src = src[c:]
	}
	p.count += n
	var fired []*watch
	if len(p.readers.watches) > 0 {
		fired = p.readers.collect(p.readReadiness())
	}
	p.mu.Unlock()
	fireAll(fired, EventRead)
	return n, nil
}

func (p *pipe) closeRead() error {
	p.mu.Lock()
	if p.readClosed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.readClosed = true
	// Buffered data can never be delivered now; give its segments back.
	p.releaseAllLocked()
	// Writers see EPIPE from now on; wake them with HUP. Waiters parked
	// on the read end itself are woken too: a descriptor closed out from
	// under a blocked reader (a lifecycle shed) must fail that read now,
	// not when the peer eventually closes its side.
	fired := p.writers.collect(EventWrite | EventHup)
	orphaned := p.readers.collect(EventRead | EventHup)
	p.mu.Unlock()
	fireAll(fired, EventWrite|EventHup)
	fireAll(orphaned, EventRead|EventHup)
	return nil
}

func (p *pipe) closeWrite() error {
	p.mu.Lock()
	if p.writeClosed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.writeClosed = true
	// Readers now see EOF once drained; that counts as readable. Waiters
	// parked on the write end itself are woken for the same reason as in
	// closeRead: their next write must fail immediately.
	fired := p.readers.collect(EventRead | EventHup)
	orphaned := p.writers.collect(EventWrite | EventHup)
	p.mu.Unlock()
	fireAll(fired, EventRead|EventHup)
	fireAll(orphaned, EventWrite|EventHup)
	return nil
}

// allocatedBytes reports the buffer memory currently held by the pipe
// (diagnostics and tests; the capacity a parked connection actually
// costs, as opposed to the logical cp it may grow to).
func (p *pipe) allocatedBytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.segs) * bufpool.SegSize
}

// pipeReadEnd and pipeWriteEnd adapt one pipe to the two descriptors.

type pipeReadEnd struct{ p *pipe }

func (e *pipeReadEnd) read(b []byte) (int, error) { return e.p.readData(b) }
func (e *pipeReadEnd) write([]byte) (int, error)  { return 0, ErrInvalid }
func (e *pipeReadEnd) closeEnd() error            { return e.p.closeRead() }
func (e *pipeReadEnd) readiness() Event {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	return e.p.readReadiness()
}
func (e *pipeReadEnd) addWatch(w *watch) {
	e.p.mu.Lock()
	ev := e.p.readReadiness() & w.mask
	if ev != 0 {
		e.p.mu.Unlock()
		if w.claim() {
			w.fire(ev)
		}
		return
	}
	e.p.readers.add(w)
	e.p.mu.Unlock()
}

type pipeWriteEnd struct{ p *pipe }

func (e *pipeWriteEnd) read([]byte) (int, error)    { return 0, ErrInvalid }
func (e *pipeWriteEnd) write(b []byte) (int, error) { return e.p.writeData(b) }
func (e *pipeWriteEnd) closeEnd() error             { return e.p.closeWrite() }
func (e *pipeWriteEnd) readiness() Event {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	return e.p.writeReadiness()
}
func (e *pipeWriteEnd) addWatch(w *watch) {
	e.p.mu.Lock()
	ev := e.p.writeReadiness() & w.mask
	if ev != 0 {
		e.p.mu.Unlock()
		if w.claim() {
			w.fire(ev)
		}
		return
	}
	e.p.writers.add(w)
	e.p.mu.Unlock()
}

// NewPipe creates a FIFO pipe with the given buffer size (0 means
// DefaultPipeBuffer) and returns its read and write descriptors.
func (k *Kernel) NewPipe(bufSize int) (r FD, w FD) {
	p := newPipe(bufSize)
	return k.install(&pipeReadEnd{p: p}), k.install(&pipeWriteEnd{p: p})
}
