package kernel

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"hybrid/internal/vclock"
)

// ---------------------------------------------------------------------------
// Targeted epoll signaling (thundering-herd regression)
// ---------------------------------------------------------------------------

// N waiters block on one epoll instance; events are delivered one at a
// time, gated so each is harvested before the next is sent. Each event
// must wake exactly one waiter: every waiter returns from its single Wait
// with exactly one event, and the spurious-wakeup counter (woke with an
// empty ready queue) stays at zero. Each waiter waits once and exits — a
// waiter looping back into Wait could barge ahead of the signaled one and
// legitimately leave it a spurious wake, which is a property of condition
// variables, not of the signaling discipline under test. Under the old
// cond.Broadcast, every delivery would wake all parked waiters and the
// spurious counter would read ~(waiters-1) per event.
func TestEpollTargetedSignalNoThunderingHerd(t *testing.T) {
	k := newKernel()
	ep := k.NewEpoll()
	r, w := k.NewPipe(64)

	const waiters = 8

	var mu sync.Mutex
	woke := 0 // events harvested across all waiters
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			evs, ok := ep.Wait()
			if !ok {
				t.Error("Wait returned closed before its event")
				return
			}
			mu.Lock()
			woke += len(evs)
			mu.Unlock()
			for range evs {
				ep.Done()
			}
		}()
	}

	parked := func() int {
		ep.mu.Lock()
		defer ep.mu.Unlock()
		return ep.waiting
	}
	buf := make([]byte, 8)
	for i := 0; i < waiters; i++ {
		// Deliver only once every not-yet-woken waiter is parked: a waiter
		// still on its way into Wait could otherwise take the event ahead
		// of the one the Signal chose (benign barging, but it would show
		// up as a spurious wake and muddy the assertion).
		want := waiters - i
		waitFor(t, func() bool { return parked() == want })
		// One-shot watch, then satisfy it: exactly one delivery.
		if err := ep.Register(r, EventRead, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(w, []byte("x")); err != nil {
			t.Fatal(err)
		}
		// Wait for the harvest, then drain the pipe so the next
		// registration parks instead of firing on stale readiness.
		waitFor(t, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return woke == i+1
		})
		if _, err := k.Read(r, buf); err != nil {
			t.Fatal(err)
		}
	}

	wg.Wait()
	ep.Close()

	if woke != waiters {
		t.Fatalf("harvested %d events, want %d", woke, waiters)
	}
	if n := k.Snapshot().SpuriousWakeups; n != 0 {
		t.Fatalf("spurious wakeups = %d, want 0 (thundering herd)", n)
	}
}

// ---------------------------------------------------------------------------
// Batched delivery order under parallel workers
// ---------------------------------------------------------------------------

// Immediate-mode epoll with delayed deliveries must surface events in
// (when, seq) order regardless of host parallelism. Sixty-four watches
// become ready via clock timers, four sharing each virtual timestamp;
// the clock's epoch barrier pops each timestamp's batch and fans it out
// in seq (registration) order, and immediate delivery records inline. A
// squad of goroutines hammers Enter/Exit at GOMAXPROCS=4 the whole time,
// so the advance loop is repeatedly preempted mid-epoch and resumed from
// a different goroutine — the recorded order must not care.
func TestEpollImmediateDeliveryPreservesEventOrder(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	clk := vclock.NewVirtual()
	k := New(clk)
	ep := k.NewEpoll()
	ep.SetImmediate()

	const events = 64
	type pipePair struct{ r, w FD }
	pipes := make([]pipePair, events)
	var mu sync.Mutex
	var got []int
	for i := range pipes {
		r, w := k.NewPipe(64)
		pipes[i] = pipePair{r, w}
		i := i
		if err := ep.Register(r, EventRead, func(Event) {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	for w := 0; w < 4; w++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				clk.Enter()
				runtime.Gosched()
				clk.Exit()
			}
		}()
	}

	// Register all timers under one hold so (when, seq) is fixed by this
	// loop alone; releasing the hold lets the epoch barrier start popping.
	clk.Enter()
	for i := 0; i < events; i++ {
		d := time.Duration(i/4+1) * time.Millisecond
		i := i
		clk.After(d, func() {
			if _, err := k.Write(pipes[i].w, []byte("x")); err != nil {
				t.Error(err)
			}
		})
	}
	clk.Exit()

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == events
	})
	close(stop)
	churn.Wait()

	for i, g := range got {
		if g != i {
			t.Fatalf("delivery order diverged at position %d: got watch %d (full order %v)", i, g, got)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// ---------------------------------------------------------------------------
// FD table sharding
// ---------------------------------------------------------------------------

// Two FDs in different shards must not serialize: with one shard's write
// lock held, I/O on an FD in another shard still completes. Under the old
// single kernel.mu this deadlocks (the read would block on the table
// lock), so the test doubles as a probe that lookups take only their own
// shard's lock.
func TestShardedLookupsDoNotSerialize(t *testing.T) {
	k := newKernel()
	r1, w1 := k.NewPipe(64)
	// Find a second pipe whose FDs land in different shards from r1's.
	var r2, w2 FD
	for {
		r2, w2 = k.NewPipe(64)
		if k.shard(r2) != k.shard(r1) && k.shard(w2) != k.shard(r1) {
			break
		}
	}
	_ = w1

	// Hold r1's shard exclusively, as Close would.
	sh := k.shard(r1)
	sh.mu.Lock()
	done := make(chan error, 1)
	go func() {
		if _, err := k.Write(w2, []byte("ping")); err != nil {
			done <- err
			return
		}
		buf := make([]byte, 8)
		_, err := k.Read(r2, buf)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cross-shard I/O failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		sh.mu.Unlock()
		t.Fatal("I/O on a different shard blocked behind a held shard lock")
	}
	sh.mu.Unlock()

	// And the held shard really is exclusive: TryLock must fail.
	if sh.mu.TryLock() {
		sh.mu.Unlock()
	} else {
		t.Fatal("shard lock unexpectedly held after test")
	}
}

// Concurrent I/O on many distinct FDs with -race: the sharded table and
// atomic counters must tolerate full parallelism.
func TestShardedConcurrentIOStress(t *testing.T) {
	k := newKernel()
	const pipes = 64
	type pair struct{ r, w FD }
	ps := make([]pair, pipes)
	for i := range ps {
		r, w := k.NewPipe(256)
		ps[i] = pair{r, w}
	}
	var wg sync.WaitGroup
	for _, p := range ps {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 16)
			for i := 0; i < 200; i++ {
				if _, err := k.Write(p.w, []byte("0123456789abcdef")); err != nil {
					t.Error(err)
					return
				}
				if _, err := k.Read(p.r, buf); err != nil {
					t.Error(err)
					return
				}
			}
			_ = k.Close(p.r)
			_ = k.Close(p.w)
		}()
	}
	wg.Wait()
	if got := k.OpenFDs(); got != 0 {
		t.Fatalf("open FDs after close-all: %d", got)
	}
	st := k.Snapshot()
	if st.Reads != pipes*200 || st.Writes != pipes*200 {
		t.Fatalf("reads=%d writes=%d, want %d each", st.Reads, st.Writes, pipes*200)
	}
}
