// Package vclock provides the two timing domains used by the runtime and
// the simulated OS kernel: real wall-clock time and deterministic virtual
// (discrete-event) time.
//
// The paper's evaluation mixes CPU-bound benchmarks (measured in wall-clock
// time) with I/O-bound benchmarks whose results are dominated by device
// latencies (disk seeks, network transfers). The original experiments used
// 2006 hardware; this reproduction replaces the devices with models that
// schedule completion events on a Clock. A VirtualClock advances only when
// every runnable activity in the system has quiesced, which makes the
// I/O-bound experiments deterministic and host-independent.
//
// Ownership discipline: the clock maintains a "busy" count of runnable
// activities. Time may only advance when busy == 0. Any component that
// hands work to another component transfers ownership of a busy hold:
// the sender calls Enter before publishing the work and the receiver calls
// Exit once the work has either completed or been re-registered (for
// example as a pending device event). Event callbacks scheduled with After
// run while the clock holds busy on their behalf, so a callback that wakes
// a thread can safely transfer that hold to the thread it wakes.
package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a point in simulated or real time, in nanoseconds from an
// arbitrary epoch (the creation of the clock).
type Time int64

// Duration is a span of time in nanoseconds. It converts directly to and
// from time.Duration.
type Duration = time.Duration

// Clock abstracts over real and virtual time. Device models (disk,
// network) and runtimes are written against this interface so the same
// code runs in both timing domains.
type Clock interface {
	// Now reports the current time.
	Now() Time
	// Enter declares one more runnable activity. Virtual time cannot
	// advance while any activity is runnable.
	Enter()
	// Exit declares that a runnable activity has quiesced. On a virtual
	// clock, the call that drops the count to zero advances time to the
	// next pending event and runs its callbacks.
	Exit()
	// After schedules fn to run d from now. The callback runs with a busy
	// hold on its behalf; if it hands work onward it must transfer that
	// hold (Enter before publishing) because the hold is released when fn
	// returns.
	After(d Duration, fn func()) *Timer
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	owner   timerOwner
	when    Time
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index; -1 when not in the heap
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was stopped before firing.
func (t *Timer) Stop() bool {
	if t == nil || t.owner == nil {
		return false
	}
	switch o := t.owner.(type) {
	case *VirtualClock:
		return o.stopTimer(t)
	case *realTimer:
		return o.t.Stop()
	}
	return false
}

// timerOwner points back at whichever clock created the timer so Stop can
// dispatch without the caller caring which domain it is in.
type timerOwner interface{ isTimerOwner() }

func (*VirtualClock) isTimerOwner() {}

type realTimer struct{ t *time.Timer }

func (*realTimer) isTimerOwner() {}

// ---------------------------------------------------------------------------
// Virtual clock
// ---------------------------------------------------------------------------

// VirtualClock is a discrete-event simulation clock. Time advances in
// jumps to the next scheduled event, and only when the busy count is zero.
//
// The busy count and current time live on atomics so Enter/Exit — called
// once per queued thread, per delivered event, per syscall retry — never
// contend on the heap lock. Under the ownership discipline above, Enter is
// only ever called by an activity that itself holds a busy count (work is
// handed off, never conjured), so an atomic increment cannot race a
// concurrent advance: while anyone could call Enter, busy was already
// nonzero and the advance loop was not running. Only the 0-transition in
// Exit takes the lock, to walk the event heap.
type VirtualClock struct {
	busy atomic.Int64
	now  atomic.Int64 // written under mu; read lock-free

	mu      sync.Mutex
	seq     uint64
	events  eventHeap
	running bool // an advance loop is executing callbacks

	// OnIdle, if non-nil, is invoked (with the clock unlocked) when the
	// busy count reaches zero and no events are pending. This usually
	// indicates deadlock in a simulation and is invaluable in tests.
	OnIdle func()
}

// NewVirtual returns a virtual clock at time zero.
func NewVirtual() *VirtualClock { return &VirtualClock{} }

// Now reports the current virtual time.
func (c *VirtualClock) Now() Time { return Time(c.now.Load()) }

// Enter increments the busy count.
func (c *VirtualClock) Enter() { c.busy.Add(1) }

// Exit decrements the busy count and, if it reaches zero, advances time.
func (c *VirtualClock) Exit() {
	n := c.busy.Add(-1)
	if n < 0 {
		panic("vclock: Exit without matching Enter")
	}
	if n == 0 {
		c.mu.Lock()
		c.advanceLocked()
		c.mu.Unlock()
	}
}

// After schedules fn to run at Now()+d. The callback runs with a busy
// hold taken on its behalf.
func (c *VirtualClock) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.seq++
	t := &Timer{owner: c, when: Time(c.now.Load()) + Time(d), seq: c.seq, fn: fn, index: -1}
	heap.Push(&c.events, t)
	// If the system is already quiescent, this event is immediately due
	// to advance.
	c.advanceLocked()
	c.mu.Unlock()
	return t
}

func (c *VirtualClock) stopTimer(t *Timer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.stopped || t.index < 0 {
		return false
	}
	heap.Remove(&c.events, t.index)
	t.stopped = true
	return true
}

// advanceLocked runs due events while the system is quiescent. Called
// with c.mu held; temporarily unlocks around callbacks.
func (c *VirtualClock) advanceLocked() {
	if c.running {
		// A callback is already being dispatched higher in the stack;
		// it will observe any new state when it finishes.
		return
	}
	c.running = true
	for c.busy.Load() == 0 && len(c.events) > 0 {
		t := heap.Pop(&c.events).(*Timer)
		if t.when > Time(c.now.Load()) {
			c.now.Store(int64(t.when))
		}
		// Run the callback with a busy hold on its behalf so nested
		// Exit calls cannot re-enter the advance loop concurrently.
		c.busy.Add(1)
		c.mu.Unlock()
		t.fn()
		c.mu.Lock()
		c.busy.Add(-1)
	}
	c.running = false
	if c.busy.Load() == 0 && len(c.events) == 0 && c.OnIdle != nil {
		fn := c.OnIdle
		c.mu.Unlock()
		fn()
		c.mu.Lock()
	}
}

// Pending reports the number of scheduled, unfired events. Intended for
// tests and deadlock reports.
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Busy reports the current busy count. Intended for tests.
func (c *VirtualClock) Busy() int64 { return c.busy.Load() }

// eventHeap is a min-heap ordered by (when, seq) so simultaneous events
// fire in scheduling order, which keeps simulations deterministic.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// ---------------------------------------------------------------------------
// Real clock
// ---------------------------------------------------------------------------

// RealClock measures wall-clock time. Enter and Exit are no-ops: in the
// real domain, time advances regardless of what the program does.
type RealClock struct {
	start time.Time
	seq   atomic.Uint64
}

// NewReal returns a wall-clock Clock with its epoch at the call.
func NewReal() *RealClock { return &RealClock{start: time.Now()} }

// Now reports nanoseconds since the clock was created.
func (c *RealClock) Now() Time { return Time(time.Since(c.start)) }

// Enter is a no-op on a real clock.
func (c *RealClock) Enter() {}

// Exit is a no-op on a real clock.
func (c *RealClock) Exit() {}

// After schedules fn on a new goroutine after d of wall-clock time.
func (c *RealClock) After(d Duration, fn func()) *Timer {
	rt := &realTimer{}
	rt.t = time.AfterFunc(d, fn)
	return &Timer{owner: rt}
}

func (t Time) String() string { return fmt.Sprintf("t+%s", time.Duration(t)) }
