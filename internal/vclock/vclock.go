// Package vclock provides the two timing domains used by the runtime and
// the simulated OS kernel: real wall-clock time and deterministic virtual
// (discrete-event) time.
//
// The paper's evaluation mixes CPU-bound benchmarks (measured in wall-clock
// time) with I/O-bound benchmarks whose results are dominated by device
// latencies (disk seeks, network transfers). The original experiments used
// 2006 hardware; this reproduction replaces the devices with models that
// schedule completion events on a Clock. A VirtualClock advances only when
// every runnable activity in the system has quiesced, which makes the
// I/O-bound experiments deterministic and host-independent.
//
// # Ownership discipline
//
// The clock maintains a count of shared holds ("runnable activities").
// Time may only advance when the count is zero AND every registered
// quiescer agrees the system is idle. Any component that hands work to
// another component transfers ownership of a hold: the sender calls Enter
// before publishing the work and the receiver calls Exit once the work has
// either completed or been re-registered (for example as a pending device
// event).
//
// # Conservative parallel advancement
//
// This is a conservative parallel discrete-event clock. Scheduler workers
// do not touch the clock at all on their dispatch hot path; instead the
// scheduler's ready queue registers a quiescer (RegisterQuiescer) that
// reports, from per-worker cache-line-padded park flags, whether every
// worker has drained its runnable threads. Advancement is a two-phase
// epoch barrier:
//
//  1. Rendezvous: workers drain runnable work within the current
//     timestamp. When a worker runs dry it parks and pokes Advance. Time
//     can move only when the hold count is zero and all quiescers report
//     idle — so no Enter can race the advance (Enter and the advance loop
//     serialize on the clock mutex, and once Enter returns, Now is frozen
//     until the matching Exit).
//  2. Dispatch: one coordinator (whichever goroutine observed quiescence)
//     pops the entire batch of events sharing the minimum timestamp from
//     the merged timer heap and fires them in deterministic (when, seq)
//     order. While the batch fires, the dispatch gate is closed: workers
//     woken by the batch's enqueues wait on the gate (Gate) rather than
//     popping mid-batch, so the work fanned out by one timestamp is fully
//     staged before any worker consumes it. The gate then opens and the
//     workers drain the new timestamp in parallel.
package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a point in simulated or real time, in nanoseconds from an
// arbitrary epoch (the creation of the clock).
type Time int64

// Duration is a span of time in nanoseconds. It converts directly to and
// from time.Duration.
type Duration = time.Duration

// Clock abstracts over real and virtual time. Device models (disk,
// network) and runtimes are written against this interface so the same
// code runs in both timing domains.
type Clock interface {
	// Now reports the current time.
	Now() Time
	// Enter declares one more runnable activity. Virtual time cannot
	// advance while any activity is runnable.
	Enter()
	// Exit declares that a runnable activity has quiesced. On a virtual
	// clock, the call that drops the count to zero advances time to the
	// next pending event and runs its callbacks.
	Exit()
	// After schedules fn to run d from now. The callback runs during a
	// dispatch batch while the gate is closed; if it hands work onward to
	// an activity that outlives the callback it must transfer a hold
	// (Enter before publishing).
	After(d Duration, fn func()) *Timer
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	owner   timerOwner
	when    Time
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index; -1 when not in the heap
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was stopped before firing.
func (t *Timer) Stop() bool {
	if t == nil || t.owner == nil {
		return false
	}
	switch o := t.owner.(type) {
	case *VirtualClock:
		return o.stopTimer(t)
	case *realTimer:
		if o.stopped {
			return false
		}
		if o.t.Stop() {
			o.stopped = true
			return true
		}
		return false
	}
	return false
}

// timerOwner points back at whichever clock created the timer so Stop can
// dispatch without the caller caring which domain it is in.
type timerOwner interface{ isTimerOwner() }

func (*VirtualClock) isTimerOwner() {}

type realTimer struct {
	t       *time.Timer
	stopped bool
}

func (*realTimer) isTimerOwner() {}

// ---------------------------------------------------------------------------
// Virtual clock
// ---------------------------------------------------------------------------

// VirtualClock is a conservative parallel discrete-event clock. Time
// advances in jumps to the next scheduled timestamp, and only at an epoch
// barrier: the shared hold count is zero and every registered quiescer
// reports idle. All events sharing the minimum timestamp fire as one
// batch in (when, seq) order behind a closed dispatch gate.
//
// All hold-count mutation happens under mu, which closes the race the old
// lock-free design had: an Exit 0-transition could begin advancing while
// a concurrent hand-off Enter was in flight, so time moved under a held
// Enter. Here the advance loop and Enter serialize on mu — once Enter
// returns, Now cannot change until the matching Exit.
type VirtualClock struct {
	now atomic.Int64 // written under mu; read lock-free

	mu        sync.Mutex
	shared    int64 // hold count (Enter/Exit, Defer tickets)
	seq       uint64
	events    eventHeap
	running   bool // a dispatch loop is executing batches
	quiescers []func() bool
	batchBuf  []*Timer

	// Dispatch gate: closed while a batch of same-timestamp events is
	// firing, so workers woken mid-batch stage behind Gate instead of
	// consuming a half-fanned-out timestamp.
	gateClosed atomic.Bool
	gateMu     sync.Mutex
	gateCond   *sync.Cond

	// OnIdle, if non-nil, is invoked (with the clock unlocked) when the
	// system is quiescent and no events are pending. This usually
	// indicates deadlock in a simulation and is invaluable in tests.
	OnIdle func()
}

// NewVirtual returns a virtual clock at time zero.
func NewVirtual() *VirtualClock {
	c := &VirtualClock{}
	c.gateCond = sync.NewCond(&c.gateMu)
	return c
}

// Now reports the current virtual time.
func (c *VirtualClock) Now() Time { return Time(c.now.Load()) }

// Enter increments the hold count. Once Enter returns, Now is frozen
// until the matching Exit.
func (c *VirtualClock) Enter() {
	c.mu.Lock()
	c.shared++
	c.mu.Unlock()
}

// Exit decrements the hold count and, on the 0-transition, attempts an
// epoch advance.
func (c *VirtualClock) Exit() {
	c.mu.Lock()
	if c.shared <= 0 {
		c.mu.Unlock()
		panic("vclock: Exit without matching Enter")
	}
	c.shared--
	if c.shared == 0 {
		c.maybeAdvanceLocked()
	}
	c.mu.Unlock()
}

// RegisterQuiescer adds a predicate consulted before any time advance:
// the clock is quiescent only when the hold count is zero and every
// quiescer returns true. The scheduler's ready queue registers one that
// reports whether all workers are parked with no queued threads.
func (c *VirtualClock) RegisterQuiescer(fn func() bool) {
	c.mu.Lock()
	c.quiescers = append(c.quiescers, fn)
	c.mu.Unlock()
}

// After schedules fn to run at Now()+d in (when, seq) order.
func (c *VirtualClock) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.seq++
	t := &Timer{owner: c, when: Time(c.now.Load()) + Time(d), seq: c.seq, fn: fn, index: -1}
	heap.Push(&c.events, t)
	// If the system is already quiescent, this event is immediately due.
	c.maybeAdvanceLocked()
	c.mu.Unlock()
	return t
}

// ReserveSeq allocates and returns the next sequence number without
// scheduling anything. External timer structures (the hierarchical timer
// wheel) reserve a position in the global event order at scheduling time,
// park the callback outside the heap, and later hand it back via
// ScheduleReserved — so deferring heap insertion never changes the order
// in which same-timestamp events fire.
func (c *VirtualClock) ReserveSeq() uint64 {
	c.mu.Lock()
	c.seq++
	s := c.seq
	c.mu.Unlock()
	return s
}

// ScheduleReserved schedules fn at the absolute time when under a
// sequence number previously obtained from ReserveSeq. The event fires
// exactly as if it had been scheduled with After at reservation time:
// (when, seq) ordering is preserved no matter how late the handoff
// happens, as long as when has not yet been reached.
func (c *VirtualClock) ScheduleReserved(when Time, seq uint64, fn func()) *Timer {
	c.mu.Lock()
	if int64(when) < c.now.Load() {
		when = Time(c.now.Load())
	}
	t := &Timer{owner: c, when: when, seq: seq, fn: fn, index: -1}
	heap.Push(&c.events, t)
	c.maybeAdvanceLocked()
	c.mu.Unlock()
	return t
}

// Advance attempts an epoch advance if the system is quiescent. Workers
// call it (via the ready queue's idle hook) after draining their run
// queues; it returns without effect when holds are outstanding, another
// dispatch loop is running, or any quiescer reports activity.
func (c *VirtualClock) Advance() {
	c.mu.Lock()
	c.maybeAdvanceLocked()
	c.mu.Unlock()
}

// Gate blocks while a dispatch batch is firing. Queue pop loops call it
// before consuming work so a timestamp's events are fully fanned out
// before any worker starts on them. The fast path is one atomic load.
func (c *VirtualClock) Gate() {
	if !c.gateClosed.Load() {
		return
	}
	c.gateMu.Lock()
	for c.gateClosed.Load() {
		c.gateCond.Wait()
	}
	c.gateMu.Unlock()
}

// GateClosed reports whether a dispatch batch is currently firing.
func (c *VirtualClock) GateClosed() bool { return c.gateClosed.Load() }

func (c *VirtualClock) closeGate() {
	c.gateMu.Lock()
	c.gateClosed.Store(true)
	c.gateMu.Unlock()
}

func (c *VirtualClock) openGate() {
	c.gateMu.Lock()
	c.gateClosed.Store(false)
	c.gateCond.Broadcast()
	c.gateMu.Unlock()
}

func (c *VirtualClock) stopTimer(t *Timer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.stopped || t.index < 0 {
		return false
	}
	heap.Remove(&c.events, t.index)
	t.stopped = true
	t.fn = nil // release captured TCBs/buffers immediately
	return true
}

// quiescentLocked reports whether every registered quiescer agrees the
// system is idle. Called with c.mu held; quiescers may take their own
// locks (the ready queue's), never the clock's.
func (c *VirtualClock) quiescentLocked() bool {
	for _, q := range c.quiescers {
		if !q() {
			return false
		}
	}
	return true
}

// maybeAdvanceLocked is the epoch barrier's second phase. Called with
// c.mu held; temporarily unlocks around callbacks and OnIdle.
//
// Each loop iteration: verify quiescence (hold count zero, all quiescers
// idle), advance now to the minimum pending timestamp, pop the entire
// batch of events at that timestamp, close the dispatch gate, and fire
// the batch in (when, seq) order. Workers woken by the batch's enqueues
// stage behind the gate until the whole batch has fired. The loop then
// re-checks: if the batch handed work to workers or took holds,
// advancement stops until the system re-quiesces.
func (c *VirtualClock) maybeAdvanceLocked() {
	if c.running {
		// A dispatch loop is already executing higher in the stack or on
		// another goroutine; it re-checks quiescence after every batch.
		return
	}
	c.running = true
	for c.shared == 0 && c.quiescentLocked() {
		if len(c.events) == 0 {
			c.running = false
			if c.OnIdle != nil {
				fn := c.OnIdle
				c.mu.Unlock()
				fn()
				c.mu.Lock()
			}
			return
		}
		minWhen := c.events[0].when
		if int64(minWhen) > c.now.Load() {
			c.now.Store(int64(minWhen))
		}
		batch := c.batchBuf[:0]
		for len(c.events) > 0 && c.events[0].when == minWhen {
			batch = append(batch, heap.Pop(&c.events).(*Timer))
		}
		c.closeGate()
		c.mu.Unlock()
		for _, t := range batch {
			fn := t.fn
			t.fn = nil // fired: drop the closure so dead entries hold nothing
			if fn != nil {
				fn()
			}
		}
		c.mu.Lock()
		for i := range batch {
			batch[i] = nil
		}
		c.batchBuf = batch[:0]
		c.openGate()
	}
	c.running = false
}

// Pending reports the number of scheduled, unfired events. Intended for
// tests and deadlock reports.
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Busy reports the current hold count. Intended for tests.
func (c *VirtualClock) Busy() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shared
}

// ---------------------------------------------------------------------------
// Deferred completion tickets
// ---------------------------------------------------------------------------

// Pending is a deferred-completion ticket: a hold on the clock plus a
// reserved position in the event order. Work submitted to a real thread
// pool (the blio workers) completes in host-scheduler order; tickets make
// the *visible* completion order deterministic by firing every ticket's
// callback at the next quiescence in submission-sequence order, no matter
// which pool worker finished first.
type Pending struct {
	c    *VirtualClock
	seq  uint64
	done bool
}

// Defer takes a hold and reserves the next sequence number.
func (c *VirtualClock) Defer() *Pending {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shared++
	c.seq++
	return &Pending{c: c, seq: c.seq}
}

// Complete schedules fn at the current timestamp under the ticket's
// reserved sequence number and releases the hold. fn fires at the next
// epoch barrier, ordered among other completions by submission sequence.
func (p *Pending) Complete(fn func()) {
	c := p.c
	c.mu.Lock()
	if p.done {
		c.mu.Unlock()
		panic("vclock: Pending completed twice")
	}
	p.done = true
	t := &Timer{owner: c, when: Time(c.now.Load()), seq: p.seq, fn: fn, index: -1}
	heap.Push(&c.events, t)
	if c.shared <= 0 {
		c.mu.Unlock()
		panic("vclock: Pending.Complete without hold")
	}
	c.shared--
	if c.shared == 0 {
		c.maybeAdvanceLocked()
	}
	c.mu.Unlock()
}

// Cancel releases the ticket's hold without scheduling anything. Used
// when the submitted work is discarded (shutdown).
func (p *Pending) Cancel() {
	c := p.c
	c.mu.Lock()
	if p.done {
		c.mu.Unlock()
		return
	}
	p.done = true
	if c.shared <= 0 {
		c.mu.Unlock()
		panic("vclock: Pending.Cancel without hold")
	}
	c.shared--
	if c.shared == 0 {
		c.maybeAdvanceLocked()
	}
	c.mu.Unlock()
}

// eventHeap is a min-heap ordered by (when, seq) so simultaneous events
// fire in scheduling order, which keeps simulations deterministic.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// ---------------------------------------------------------------------------
// Real clock
// ---------------------------------------------------------------------------

// RealClock measures wall-clock time. Enter and Exit are no-ops: in the
// real domain, time advances regardless of what the program does.
type RealClock struct {
	start time.Time
	seq   atomic.Uint64
}

// NewReal returns a wall-clock Clock with its epoch at the call.
func NewReal() *RealClock { return &RealClock{start: time.Now()} }

// Now reports nanoseconds since the clock was created.
func (c *RealClock) Now() Time { return Time(time.Since(c.start)) }

// Enter is a no-op on a real clock.
func (c *RealClock) Enter() {}

// Exit is a no-op on a real clock.
func (c *RealClock) Exit() {}

// After schedules fn on a new goroutine after d of wall-clock time.
func (c *RealClock) After(d Duration, fn func()) *Timer {
	rt := &realTimer{}
	rt.t = time.AfterFunc(d, fn)
	return &Timer{owner: rt}
}

func (t Time) String() string { return fmt.Sprintf("t+%s", time.Duration(t)) }
