package vclock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEnterBlocksAdvanceUnderParallelism is the regression test for the
// Exit/Enter hand-off race: in the old lock-free design, the Exit
// 0-transition's advance loop checked busy==0 and then stored the new
// time non-atomically with respect to a concurrent Enter, so an activity
// that had already entered could observe virtual time moving underneath
// it. The invariant under test: once Enter returns, Now() is frozen until
// the matching Exit.
//
// Run with -race and GOMAXPROCS>=4; on the old implementation the
// mismatch fires statistically within a few hundred iterations.
func TestEnterBlocksAdvanceUnderParallelism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const iters = 2000
	var mismatches atomic.Int64
	for iter := 0; iter < iters; iter++ {
		c := NewVirtual()
		c.Enter() // main's hold; its Exit below races the reader's Enter
		// A ladder of pending events: each advance step re-checks the busy
		// count, so more events widen the race window on the old code.
		for i := 0; i < 64; i++ {
			c.After(time.Duration(i+1)*time.Microsecond, func() {})
		}
		var wg sync.WaitGroup
		wg.Add(2)
		start := make(chan struct{})
		go func() {
			defer wg.Done()
			<-start
			c.Enter()
			a := c.Now()
			for i := 0; i < 50; i++ {
				runtime.Gosched()
				if b := c.Now(); b != a {
					mismatches.Add(1)
					break
				}
			}
			c.Exit()
		}()
		go func() {
			defer wg.Done()
			<-start
			c.Exit()
		}()
		close(start)
		wg.Wait()
		// Drain: whoever exited last advanced through any remaining events.
		if c.Busy() != 0 {
			t.Fatalf("iter %d: Busy() = %d after both exits", iter, c.Busy())
		}
	}
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("Now() changed under a held Enter in %d/%d iterations", n, iters)
	}
}
