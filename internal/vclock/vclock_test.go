package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtZero(t *testing.T) {
	c := NewVirtual()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestVirtualAdvancesToEvent(t *testing.T) {
	c := NewVirtual()
	fired := false
	c.After(5*time.Millisecond, func() { fired = true })
	if !fired {
		t.Fatal("event did not fire on quiescent clock")
	}
	if got := c.Now(); got != Time(5*time.Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
}

func TestVirtualDoesNotAdvanceWhileBusy(t *testing.T) {
	c := NewVirtual()
	c.Enter()
	fired := false
	c.After(time.Millisecond, func() { fired = true })
	if fired {
		t.Fatal("event fired while busy")
	}
	c.Exit()
	if !fired {
		t.Fatal("event did not fire after Exit")
	}
}

func TestVirtualEventOrder(t *testing.T) {
	c := NewVirtual()
	c.Enter()
	var order []int
	c.After(3*time.Millisecond, func() { order = append(order, 3) })
	c.After(1*time.Millisecond, func() { order = append(order, 1) })
	c.After(2*time.Millisecond, func() { order = append(order, 2) })
	c.Exit()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", order)
	}
}

func TestVirtualSimultaneousEventsFIFO(t *testing.T) {
	c := NewVirtual()
	c.Enter()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(time.Millisecond, func() { order = append(order, i) })
	}
	c.Exit()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", order)
		}
	}
}

func TestVirtualNestedScheduling(t *testing.T) {
	c := NewVirtual()
	c.Enter()
	var times []Time
	c.After(time.Millisecond, func() {
		times = append(times, c.Now())
		c.After(time.Millisecond, func() {
			times = append(times, c.Now())
		})
	})
	c.Exit()
	if len(times) != 2 {
		t.Fatalf("got %d events, want 2", len(times))
	}
	if times[0] != Time(time.Millisecond) || times[1] != Time(2*time.Millisecond) {
		t.Fatalf("event times = %v, want [1ms 2ms]", times)
	}
}

func TestVirtualCallbackTransfersHold(t *testing.T) {
	// A callback wakes a "thread": it Enters on the thread's behalf before
	// returning, and the second event must not fire until the thread Exits.
	c := NewVirtual()
	c.Enter()
	secondFired := false
	c.After(2*time.Millisecond, func() { secondFired = true })
	woke := false
	c.After(time.Millisecond, func() {
		woke = true
		c.Enter() // transfer to the woken thread
	})
	c.Exit() // quiesce: fires the 1ms event, which leaves busy=1
	if !woke {
		t.Fatal("wake event did not fire")
	}
	if secondFired {
		t.Fatal("second event fired while transferred hold outstanding")
	}
	c.Exit() // the woken thread quiesces
	if !secondFired {
		t.Fatal("second event did not fire after thread exit")
	}
}

func TestTimerStop(t *testing.T) {
	c := NewVirtual()
	c.Enter()
	fired := false
	tm := c.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	c.Exit()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d after stop, want 0", c.Pending())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	c := NewVirtual()
	tm := c.After(0, func() {})
	if tm.Stop() {
		t.Fatal("Stop returned true for fired timer")
	}
}

func TestExitWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVirtual().Exit()
}

func TestOnIdle(t *testing.T) {
	c := NewVirtual()
	idled := false
	c.OnIdle = func() { idled = true }
	c.Enter()
	c.Exit()
	if !idled {
		t.Fatal("OnIdle not invoked on quiescence with no events")
	}
}

func TestVirtualConcurrentEnterExit(t *testing.T) {
	c := NewVirtual()
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	c.Enter() // keep clock busy while goroutines race
	for i := 0; i < 32; i++ {
		wg.Add(1)
		c.Enter()
		go func() {
			defer wg.Done()
			c.After(time.Millisecond, func() {
				mu.Lock()
				total++
				mu.Unlock()
			})
			c.Exit()
		}()
	}
	wg.Wait()
	c.Exit()
	mu.Lock()
	defer mu.Unlock()
	if total != 32 {
		t.Fatalf("fired %d events, want 32", total)
	}
}

func TestRealClockNow(t *testing.T) {
	c := NewReal()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("real clock did not advance: %v -> %v", a, b)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := NewReal()
	done := make(chan struct{})
	c.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
}

func TestRealClockTimerStop(t *testing.T) {
	c := NewReal()
	fired := make(chan struct{}, 1)
	tm := c.After(50*time.Millisecond, func() { fired <- struct{}{} })
	if !tm.Stop() {
		t.Fatal("Stop returned false")
	}
	select {
	case <-fired:
		t.Fatal("stopped real timer fired")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestTimeString(t *testing.T) {
	if s := Time(time.Second).String(); s != "t+1s" {
		t.Fatalf("String() = %q", s)
	}
}
