package faults

import (
	"errors"
	"testing"
	"time"

	"hybrid/internal/vclock"
)

// drainPlan records the first n decisions for an op as a bitstring.
func drainPlan(in *Injector, op Op, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = in.Fire(op)
	}
	return out
}

// TestSameSeedSamePlan is the determinism law: two injectors built from
// the same config draw identical decision sequences for every op class.
func TestSameSeedSamePlan(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.3}
	a, b := New(cfg, nil), New(cfg, nil)
	for _, op := range AllOps {
		pa, pb := drainPlan(a, op, 500), drainPlan(b, op, 500)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("op %s: plans diverge at draw %d", op, i)
			}
		}
	}
}

// TestSeedChangesPlan: different seeds must give different plans (with
// overwhelming probability at rate 0.5 over 500 draws).
func TestSeedChangesPlan(t *testing.T) {
	a := New(Config{Seed: 1, Rate: 0.5}, nil)
	b := New(Config{Seed: 2, Rate: 0.5}, nil)
	pa, pb := drainPlan(a, DiskRead, 500), drainPlan(b, DiskRead, 500)
	same := 0
	for i := range pa {
		if pa[i] == pb[i] {
			same++
		}
	}
	if same == len(pa) {
		t.Fatal("seeds 1 and 2 produced identical 500-draw plans")
	}
}

// TestRateZeroNeverFires / TestRateOneAlwaysFires pin the endpoints.
func TestRateZeroNeverFires(t *testing.T) {
	in := New(Config{Seed: 7}, nil) // Rate 0
	for _, op := range AllOps {
		for i := 0; i < 200; i++ {
			if in.Fire(op) {
				t.Fatalf("op %s fired at rate 0", op)
			}
		}
	}
	if got := in.Injected(DiskRead); got != 0 {
		t.Fatalf("injected counter = %d at rate 0", got)
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in := New(Config{Seed: 7, Rate: 1}, nil)
	for i := 0; i < 200; i++ {
		if !in.Fire(KernelRead) {
			t.Fatalf("draw %d did not fire at rate 1", i)
		}
	}
}

// TestRateRoughlyHolds: the empirical rate over many draws should be in
// the right neighbourhood (deterministic given the seed, so no flake).
func TestRateRoughlyHolds(t *testing.T) {
	in := New(Config{Seed: 99, Rate: 0.1}, nil)
	fired := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if in.Fire(NetDrop) {
			fired++
		}
	}
	if fired < n/20 || fired > n/5 {
		t.Fatalf("rate 0.1: %d/%d fired", fired, n)
	}
}

// TestOneShot: a one-shot fires exactly at the configured operation
// count, and nowhere else when the rate is zero.
func TestOneShot(t *testing.T) {
	in := New(Config{Seed: 3, OneShots: map[Op][]uint64{DiskWrite: {5, 9}}}, nil)
	for i := 1; i <= 20; i++ {
		fired := in.Fire(DiskWrite)
		want := i == 5 || i == 9
		if fired != want {
			t.Fatalf("op %d: fired=%v want %v", i, fired, want)
		}
	}
	if got := in.Injected(DiskWrite); got != 2 {
		t.Fatalf("injected = %d, want 2", got)
	}
}

// TestPerOpRatesOverride: Rates[op] overrides the default Rate, and 0
// disables a class even when the default is 1.
func TestPerOpRatesOverride(t *testing.T) {
	in := New(Config{Seed: 5, Rate: 1, Rates: map[Op]float64{TCPDrop: 0}}, nil)
	for i := 0; i < 50; i++ {
		if in.Fire(TCPDrop) {
			t.Fatal("TCPDrop fired despite rate override 0")
		}
		if !in.Fire(TCPReset) {
			t.Fatal("TCPReset did not fire at default rate 1")
		}
	}
}

// TestFireErrDeterministicChoice: FireErr picks among the errors
// deterministically — two same-seed injectors return identical error
// sequences.
func TestFireErrDeterministicChoice(t *testing.T) {
	e1, e2, e3 := errors.New("a"), errors.New("b"), errors.New("c")
	cfg := Config{Seed: 11, Rate: 0.8}
	a, b := New(cfg, nil), New(cfg, nil)
	seenDistinct := map[error]bool{}
	for i := 0; i < 300; i++ {
		ea := a.FireErr(KernelWrite, e1, e2, e3)
		eb := b.FireErr(KernelWrite, e1, e2, e3)
		if ea != eb {
			t.Fatalf("draw %d: error choice diverged: %v vs %v", i, ea, eb)
		}
		if ea != nil {
			seenDistinct[ea] = true
		}
	}
	if len(seenDistinct) < 2 {
		t.Fatalf("error choice never varied: %v", seenDistinct)
	}
}

// TestLatencyBounds: injected latency is always in (0, max] and zero
// when the draw does not fire.
func TestLatencyBounds(t *testing.T) {
	in := New(Config{Seed: 13, Rate: 0.5}, nil)
	const max = 20 * time.Millisecond
	fired := 0
	for i := 0; i < 500; i++ {
		d := in.Latency(DiskLatency, max)
		if d < 0 || d > max {
			t.Fatalf("latency %v out of (0, %v]", d, max)
		}
		if d > 0 {
			fired++
		}
	}
	if fired == 0 || fired == 500 {
		t.Fatalf("latency fired %d/500 at rate 0.5", fired)
	}
}

// TestHardKeyStable: the bad-key set is a pure function of (seed, key) —
// repeated queries agree, different seeds give different sets.
func TestHardKeyStable(t *testing.T) {
	in := New(Config{Seed: 17, Rates: map[Op]float64{DiskHard: 0.2}}, nil)
	first := make([]bool, 200)
	bad := 0
	for k := range first {
		first[k] = in.HardKey(DiskHard, uint64(k))
		if first[k] {
			bad++
		}
	}
	if bad == 0 || bad == len(first) {
		t.Fatalf("hard-key rate 0.2 marked %d/200 keys", bad)
	}
	for trial := 0; trial < 3; trial++ {
		for k := range first {
			if in.HardKey(DiskHard, uint64(k)) != first[k] {
				t.Fatalf("key %d changed verdict on re-query", k)
			}
		}
	}
	other := New(Config{Seed: 18, Rates: map[Op]float64{DiskHard: 0.2}}, nil)
	diff := 0
	for k := range first {
		if other.HardKey(DiskHard, uint64(k)) != first[k] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 17 and 18 agree on every hard key")
	}
}

// TestClockMixesIntoDraws: the same op counter at different virtual times
// can draw differently — time is part of the key (this is what makes a
// replay require the same schedule, not just the same seed).
func TestClockMixesIntoDraws(t *testing.T) {
	clk := vclock.NewVirtual()
	cfg := Config{Seed: 23, Rate: 0.5}
	a := New(cfg, clk)
	planAtT0 := drainPlan(a, NetDup, 200)

	clk.Enter()
	clk.After(time.Second, func() {})
	clk.Exit() // advances to t=1s
	b := New(cfg, clk)
	planAtT1 := drainPlan(b, NetDup, 200)
	same := 0
	for i := range planAtT0 {
		if planAtT0[i] == planAtT1[i] {
			same++
		}
	}
	if same == len(planAtT0) {
		t.Fatal("plans identical across different virtual times")
	}
}

// TestNilInjectorSafe: every method is a no-op on nil.
func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Fire(DiskRead) {
		t.Fatal("nil injector fired")
	}
	if err := in.FireErr(KernelRead, errors.New("x")); err != nil {
		t.Fatal("nil injector returned error")
	}
	if d := in.Latency(DiskLatency, time.Second); d != 0 {
		t.Fatal("nil injector returned latency")
	}
	if in.HardKey(DiskHard, 1) {
		t.Fatal("nil injector marked a hard key")
	}
	if in.Metrics() != nil || in.Seed() != 0 || in.Injected(DiskRead) != 0 {
		t.Fatal("nil injector accessors not zero")
	}
	if in.Summary() != "faults: off" {
		t.Fatalf("nil summary = %q", in.Summary())
	}
}

// TestMetricsCounters: checked.* counts every draw, injected.* only hits.
func TestMetricsCounters(t *testing.T) {
	in := New(Config{Seed: 29, Rate: 1}, nil)
	for i := 0; i < 10; i++ {
		in.Fire(DiskRead)
	}
	snap := in.Metrics().Snapshot()
	if got := snap.Counter("checked.disk.read"); got != 10 {
		t.Fatalf("checked = %d, want 10", got)
	}
	if got := snap.Counter("injected.disk.read"); got != 10 {
		t.Fatalf("injected = %d, want 10", got)
	}
	if got := snap.Counter("injected.disk.write"); got != 0 {
		t.Fatalf("disk.write injected = %d, want 0", got)
	}
}

func TestConfigActive(t *testing.T) {
	var nilCfg *Config
	cases := []struct {
		name string
		cfg  *Config
		want bool
	}{
		{"nil", nilCfg, false},
		{"zero", &Config{Seed: 1}, false},
		{"rate", &Config{Rate: 0.1}, true},
		{"perOp", &Config{Rates: map[Op]float64{DiskRead: 0.5}}, true},
		{"perOpZero", &Config{Rates: map[Op]float64{DiskRead: 0}}, false},
		{"oneshot", &Config{OneShots: map[Op][]uint64{DiskRead: {1}}}, true},
	}
	for _, c := range cases {
		if got := c.cfg.Active(); got != c.want {
			t.Errorf("%s: Active() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	if cfg, err := ParseSpec(""); err != nil || cfg != nil {
		t.Fatalf("empty spec: %v, %v", cfg, err)
	}
	if cfg, err := ParseSpec("off"); err != nil || cfg != nil {
		t.Fatalf("off spec: %v, %v", cfg, err)
	}
	cfg, err := ParseSpec("seed=7,rate=0.01,disk.read=0.5,oneshot:tcp.reset=3")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Rate != 0.01 {
		t.Fatalf("seed/rate = %d/%v", cfg.Seed, cfg.Rate)
	}
	if cfg.Rates[DiskRead] != 0.5 {
		t.Fatalf("per-op rate = %v", cfg.Rates[DiskRead])
	}
	if shots := cfg.OneShots[TCPReset]; len(shots) != 1 || shots[0] != 3 {
		t.Fatalf("oneshots = %v", cfg.OneShots)
	}
	if !cfg.Active() {
		t.Fatal("parsed spec not active")
	}
	for _, bad := range []string{"nope", "seed=x", "rate=2", "bogus.op=0.5", "oneshot:disk.read=0", "oneshot:bogus=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
	// Default seed is 1 when only a rate is given.
	cfg, err = ParseSpec("rate=0.5")
	if err != nil || cfg.Seed != 1 {
		t.Fatalf("default seed: %v, %v", cfg, err)
	}
}
