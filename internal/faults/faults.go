// Package faults is the deterministic fault-injection layer for the
// simulated OS. The paper's pitch for the hybrid model is that every OS
// interaction flows through one trace interpreter, so the runtime can
// absorb "as many scenarios as you can imagine" — but a simulation that
// only models the happy path never exercises the exception machinery
// (§3.3) or the server's robustness claims (§5.2). This package supplies
// the hostile scenarios: a seed-driven fault plan consulted by the
// simulated kernel (EINTR/EAGAIN/EIO, delayed epoll readiness), the disk
// model (transient and hard sector errors, latency spikes), the packet
// network (drop, duplication, reorder), and the TCP stack (segment loss,
// forged resets).
//
// Determinism is the design constraint: every decision is a pure function
// of (seed, operation class, per-class operation counter, virtual time)
// through a splitmix64-style mixer, so a given seed replays bit-for-bit
// on the virtual clock — a failing stress run is reproduced exactly by
// re-running with the printed seed. A nil *Injector is valid everywhere
// and injects nothing, so subsystems thread one pointer and pay a nil
// check on the happy path.
package faults

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// Op names one class of injectable operation. Rates and counters are kept
// per class, so a plan can make disk reads flaky while leaving the network
// alone.
type Op string

// The operation classes wired through the simulated OS.
const (
	// KernelRead/KernelWrite fail nonblocking reads and writes with
	// EINTR, EAGAIN, or EIO before the endpoint is touched.
	KernelRead  Op = "kernel.read"
	KernelWrite Op = "kernel.write"
	// KernelAccept fails accept with EINTR or ECONNABORTED (the
	// retryable accept errors a real server must absorb).
	KernelAccept Op = "kernel.accept"
	// EpollDelay postpones delivery of a readiness event by a drawn
	// duration instead of failing anything — late wakeups, not errors.
	EpollDelay Op = "epoll.delay"
	// DiskRead/DiskWrite fail one request with a transient I/O error.
	DiskRead  Op = "disk.read"
	DiskWrite Op = "disk.write"
	// DiskHard marks sectors permanently bad: the decision is a pure
	// function of the block number, so the same blocks fail on every
	// access (retries cannot help; the layer above must degrade).
	DiskHard Op = "disk.hard"
	// DiskLatency adds a service-time spike to one request (a remapped
	// sector, a recalibration) without failing it.
	DiskLatency Op = "disk.latency"
	// NetDrop/NetDup/NetReorder inject packet loss, duplication, and
	// extra per-packet delay on top of whatever the link model does.
	NetDrop    Op = "net.drop"
	NetDup     Op = "net.dup"
	NetReorder Op = "net.reorder"
	// TCPDrop discards an inbound segment before the state machine sees
	// it (corruption); TCPReset forges an RST onto an inbound segment,
	// aborting the connection mid-stream.
	TCPDrop  Op = "tcp.drop"
	TCPReset Op = "tcp.reset"
)

// AllOps lists every operation class the simulated OS consults, in the
// order they are registered and reported.
var AllOps = []Op{
	KernelRead, KernelWrite, KernelAccept, EpollDelay,
	DiskRead, DiskWrite, DiskHard, DiskLatency,
	NetDrop, NetDup, NetReorder,
	TCPDrop, TCPReset,
}

// Config is a fault plan: a seed plus per-class probabilities and
// one-shot triggers. The zero value injects nothing.
type Config struct {
	// Seed keys the PRNG. Two runs with the same Config and the same
	// virtual-time schedule make identical decisions.
	Seed uint64
	// Rate is the default probability applied to every class in AllOps
	// that has no entry in Rates.
	Rate float64
	// Rates overrides the probability per class (0 disables a class even
	// when Rate is set).
	Rates map[Op]float64
	// OneShots fires a class unconditionally at the listed operation
	// counts (1-based): {DiskRead: {3}} fails exactly the third disk
	// read. One-shots fire regardless of the class's rate.
	OneShots map[Op][]uint64
}

// Active reports whether the plan can inject anything at all. Callers use
// it to decide whether to enable recovery machinery (retries, deadlines)
// whose trace shape would otherwise perturb fault-free runs.
func (c *Config) Active() bool {
	if c == nil {
		return false
	}
	if c.Rate > 0 || len(c.OneShots) > 0 {
		return true
	}
	for _, r := range c.Rates {
		if r > 0 {
			return true
		}
	}
	return false
}

// ParseSpec parses the -faults flag grammar: a comma-separated list of
// "seed=N", "rate=R" (default probability for every class), "<op>=R"
// (per-class probability), and "oneshot:<op>=N" (fire at the Nth
// operation) entries. An empty spec or "off" returns nil (no faults).
func ParseSpec(spec string) (*Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	cfg := &Config{Seed: 1}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q is not key=value", item)
		}
		switch {
		case key == "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: seed %q: %v", val, err)
			}
			cfg.Seed = n
		case key == "rate":
			r, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			cfg.Rate = r
		case strings.HasPrefix(key, "oneshot:"):
			op := Op(strings.TrimPrefix(key, "oneshot:"))
			if !knownOp(op) {
				return nil, fmt.Errorf("faults: unknown op %q", op)
			}
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("faults: oneshot count %q must be a positive integer", val)
			}
			if cfg.OneShots == nil {
				cfg.OneShots = make(map[Op][]uint64)
			}
			cfg.OneShots[op] = append(cfg.OneShots[op], n)
		default:
			op := Op(key)
			if !knownOp(op) {
				return nil, fmt.Errorf("faults: unknown op %q (known: %v)", op, AllOps)
			}
			r, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			if cfg.Rates == nil {
				cfg.Rates = make(map[Op]float64)
			}
			cfg.Rates[op] = r
		}
	}
	return cfg, nil
}

func parseRate(val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil || r < 0 || r > 1 {
		return 0, fmt.Errorf("faults: rate %q must be in [0,1]", val)
	}
	return r, nil
}

func knownOp(op Op) bool {
	for _, o := range AllOps {
		if o == op {
			return true
		}
	}
	return false
}

// opState is the per-class injection state: the effective rate, the
// operation counter the PRNG is keyed on, and the injected-fault counter
// surfaced through the metrics registry.
type opState struct {
	hash     uint64 // FNV-1a of the op name, mixed into every draw
	rate     float64
	oneshots map[uint64]bool
	count    atomic.Uint64
	injected *stats.Counter
}

// Injector draws deterministic fault decisions for a plan. All methods
// are safe on a nil receiver (inject nothing) and safe for concurrent use
// from any goroutine: the hot path is one atomic add plus integer mixing.
type Injector struct {
	seed    uint64
	clock   vclock.Clock
	ops     map[Op]*opState
	metrics *stats.Registry
}

// New builds an injector for the plan. clock keys draws on virtual time
// (nil is allowed and reads as time zero — useful in plan-replay tests).
func New(cfg Config, clock vclock.Clock) *Injector {
	in := &Injector{
		seed:    cfg.Seed,
		clock:   clock,
		ops:     make(map[Op]*opState, len(AllOps)),
		metrics: stats.NewRegistry(),
	}
	for _, op := range AllOps {
		rate := cfg.Rate
		if r, ok := cfg.Rates[op]; ok {
			rate = r
		}
		st := &opState{hash: fnv1a(string(op)), rate: rate}
		if shots := cfg.OneShots[op]; len(shots) > 0 {
			st.oneshots = make(map[uint64]bool, len(shots))
			for _, n := range shots {
				st.oneshots[n] = true
			}
		}
		st.injected = in.metrics.Counter("injected." + string(op))
		in.metrics.CounterFunc("checked."+string(op), func() uint64 {
			return st.count.Load()
		})
		in.ops[op] = st
	}
	return in
}

// Seed reports the plan's seed (printed so failures can be replayed).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Metrics exposes the injector's registry: per-class injected.<op> and
// checked.<op> counters, merged into run snapshots as "faults.*".
func (in *Injector) Metrics() *stats.Registry {
	if in == nil {
		return nil
	}
	return in.metrics
}

// Injected reports how many faults of the class have fired.
func (in *Injector) Injected(op Op) uint64 {
	if in == nil {
		return 0
	}
	if st := in.ops[op]; st != nil {
		return st.injected.Load()
	}
	return 0
}

// Summary renders the nonzero injected counters in a stable order, for
// end-of-run reports.
func (in *Injector) Summary() string {
	if in == nil {
		return "faults: off"
	}
	var parts []string
	for _, op := range AllOps {
		if n := in.Injected(op); n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", op, n))
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return fmt.Sprintf("faults: seed=%d, none injected", in.seed)
	}
	return fmt.Sprintf("faults: seed=%d injected %s", in.seed, strings.Join(parts, " "))
}

// Fire advances the class's operation counter and reports whether this
// operation should fail (or be delayed, for latency classes).
func (in *Injector) Fire(op Op) bool {
	_, _, hit := in.fire(op)
	return hit
}

// FireErr is Fire with a deterministic error choice: nil when the
// operation proceeds, otherwise one of errs selected by a second draw.
func (in *Injector) FireErr(op Op, errs ...error) error {
	st, n, hit := in.fire(op)
	if !hit || len(errs) == 0 {
		return nil
	}
	return errs[in.draw(st.hash^pickSalt, n)%uint64(len(errs))]
}

// Latency is Fire with a drawn magnitude: zero when the operation runs at
// full speed, otherwise a duration in (0, max].
func (in *Injector) Latency(op Op, max time.Duration) time.Duration {
	st, n, hit := in.fire(op)
	if !hit || max <= 0 {
		return 0
	}
	return time.Duration(1 + in.draw(st.hash^latencySalt, n)%uint64(max))
}

// HardKey reports whether key (a block number, an object id) is in the
// class's permanently-bad set. The decision is stateless — a pure
// function of (seed, op, key) — so the same keys fail on every access,
// which is what distinguishes a hard sector error from a transient one.
func (in *Injector) HardKey(op Op, key uint64) bool {
	if in == nil {
		return false
	}
	st := in.ops[op]
	if st == nil || st.rate <= 0 {
		return false
	}
	if unit(splitmix64(in.seed^st.hash^splitmix64(key))) >= st.rate {
		return false
	}
	st.injected.Inc()
	return true
}

// fire draws the decision for the next operation of the class.
func (in *Injector) fire(op Op) (st *opState, n uint64, hit bool) {
	if in == nil {
		return nil, 0, false
	}
	st = in.ops[op]
	if st == nil {
		return nil, 0, false
	}
	n = st.count.Add(1)
	if st.oneshots != nil && st.oneshots[n] {
		st.injected.Inc()
		return st, n, true
	}
	if st.rate <= 0 {
		return st, n, false
	}
	if unit(in.draw(st.hash, n)) >= st.rate {
		return st, n, false
	}
	st.injected.Inc()
	return st, n, true
}

// draw mixes the seed, the operation class, the operation counter, and
// the current virtual time into one 64-bit value.
func (in *Injector) draw(ophash, n uint64) uint64 {
	var now uint64
	if in.clock != nil {
		now = uint64(in.clock.Now())
	}
	return splitmix64(in.seed ^ ophash ^ splitmix64(n) ^ bits.RotateLeft64(now, 31))
}

const (
	pickSalt    = 0xA5A5A5A5A5A5A5A5
	latencySalt = 0x5A5A5A5A5A5A5A5A
)

// unit maps a draw onto [0,1) with 53 bits of precision.
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// splitmix64 is the SplitMix64 finalizer (Steele et al.), the standard
// stateless mixer for counter-keyed streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv1a hashes an op name at registration time.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
