package bench

import (
	"fmt"
	"math/rand"
	"time"

	"hybrid/internal/netsim"
	"hybrid/internal/tcp"
	"hybrid/internal/tcp/tracecheck"
)

// Fig20Config parameterizes the loss-recovery comparison: one connection
// transfers TransferBytes over a WAN-shaped link while an exact,
// seed-derived set of data packets is dropped, for each recovery variant.
// The drop set is positional (packet indices, not coin flips per
// transmission), so every variant loses exactly the same original packets
// and the curves isolate the recovery machinery rather than the luck of
// each variant's retransmission-perturbed RNG stream.
type Fig20Config struct {
	// TransferBytes per trial.
	TransferBytes int
	// Trials per (variant, loss) cell; goodputs are averaged. Each trial
	// uses a different drop-set seed, the same across variants.
	Trials int
	// LossPermille is the x axis: drop probability per data packet in
	// tenths of a percent (50 = 5% loss).
	LossPermille []int
	// Link shapes both hosts' egress; zero value uses a 10 Mbps / 2 ms WAN.
	Link netsim.LinkParams
	// Base is the stack configuration shared by all variants; the variant
	// switches (SACK, NewReno, Controller) are overlaid on it.
	Base tcp.Config
	// Seed is the netsim RNG seed.
	Seed int64
}

// DefaultFig20 is the committed figure's configuration.
func DefaultFig20() Fig20Config {
	return Fig20Config{
		TransferBytes: 256 * 1024,
		Trials:        5,
		LossPermille:  []int{0, 5, 10, 20, 50},
		Base: tcp.Config{
			RTOMin:     50 * time.Millisecond,
			InitialRTO: 100 * time.Millisecond,
			MaxRetries: 16,
		},
		Seed: 1,
	}
}

// Fig20Quick is reduced for tests and the bench trajectory.
func Fig20Quick() Fig20Config {
	c := DefaultFig20()
	c.TransferBytes = 64 * 1024
	c.Trials = 3
	c.LossPermille = []int{0, 10, 20, 50}
	return c
}

// fig20Link is the default WAN: 10 Mbps, 2 ms one-way propagation.
func fig20Link() netsim.LinkParams {
	return netsim.LinkParams{Bandwidth: 10_000_000 / 8, Latency: 2 * time.Millisecond}
}

// Fig20Variants lists the recovery variants in figure order.
var Fig20Variants = []string{"reno", "newreno", "sack-reno", "sack-cubic"}

// fig20Cfg overlays one variant's switches on the base configuration.
func fig20Cfg(base tcp.Config, variant string) tcp.Config {
	switch variant {
	case "reno":
	case "newreno":
		base.NewReno = true
	case "sack-reno":
		base.SACK = true
	case "sack-cubic":
		base.SACK = true
		base.Controller = "cubic"
	default:
		panic("bench: unknown fig20 variant " + variant)
	}
	return base
}

// fig20Drops derives the trial's positional drop set: client→server path
// packet indices sampled at the cell's loss rate across the span of the
// transfer. Indices 0 and 1 (SYN, handshake ACK) are never dropped — the
// figure measures data recovery, not connection establishment.
func fig20Drops(cfg Fig20Config, permille int, trial int) []uint64 {
	mss := cfg.Base.MSS
	if mss <= 0 {
		mss = 1460
	}
	span := uint64(cfg.TransferBytes/mss) + 4
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(trial)*8191 + int64(permille)))
	var out []uint64
	for i := uint64(2); i < 2+span; i++ {
		if rng.Float64()*1000 < float64(permille) {
			out = append(out, i)
		}
	}
	return out
}

// Fig20Cell runs one (variant, loss) cell: Trials transfers, each under
// that trial's drop set, returning mean goodput in MB/s of virtual time.
// Goodput divides by the transfer's completion time (server EOF), not the
// connection's full lifetime — TIME_WAIT drain is recovery-independent
// noise at this scale.
func Fig20Cell(cfg Fig20Config, variant string, permille int) float64 {
	link := cfg.Link
	if link == (netsim.LinkParams{}) {
		link = fig20Link()
	}
	sum := 0.0
	for trial := 0; trial < cfg.Trials; trial++ {
		r, err := tracecheck.Run(tracecheck.Scenario{
			Cfg:       fig20Cfg(cfg.Base, variant),
			Link:      link,
			Seed:      cfg.Seed,
			SendBytes: cfg.TransferBytes,
			DropC2S:   fig20Drops(cfg, permille, trial),
		})
		if err != nil {
			panic(fmt.Sprintf("fig20 %s @%d‰ trial %d: %v", variant, permille, trial, err))
		}
		sum += float64(cfg.TransferBytes) / float64(MB) / r.Done.Seconds()
	}
	return sum / float64(cfg.Trials)
}

// Fig20Point is one loss rate's goodput across the four variants.
type Fig20Point struct {
	LossPermille int
	Goodput      map[string]float64 // variant name → mean MB/s
}

// Fig20Loss runs the full figure: goodput vs loss rate for plain Reno,
// NewReno, SACK+Reno, and SACK+CUBIC.
func Fig20Loss(cfg Fig20Config) []Fig20Point {
	out := make([]Fig20Point, 0, len(cfg.LossPermille))
	for _, pm := range cfg.LossPermille {
		p := Fig20Point{LossPermille: pm, Goodput: make(map[string]float64, len(Fig20Variants))}
		for _, v := range Fig20Variants {
			p.Goodput[v] = Fig20Cell(cfg, v, pm)
		}
		out = append(out, p)
	}
	return out
}
