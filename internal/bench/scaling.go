package bench

import (
	"time"

	"hybrid/internal/httpd"
	"hybrid/internal/stats"
)

// This file measures what the rest of the figure suite deliberately holds
// fixed: how the hybrid runtime's wall-clock throughput moves with the
// worker count. The scaling figure is a *wall-time* measurement of the
// simulator itself: the cached (disk-free) workload, where the ready
// queue, kernel FD table, and epoll dispatch are the contended structures.
// Virtual throughput (MBps) is pinned at Workers=1 — the epoch-barrier
// clock makes that configuration byte-reproducible at any GOMAXPROCS. At
// Workers>1 it may drift slightly: all events sharing a timestamp fire in
// (when, seq) order, but which worker drains which runnable thread within
// the timestamp is host-scheduled, and that interleaving feeds back into
// request ordering through the shared-bandwidth link model.

// ScalingPoint is one run of the worker-scaling benchmark.
type ScalingPoint struct {
	// Workers is the worker_main count for this run.
	Workers int
	// Stealing reports whether per-worker deques with stealing were used.
	Stealing bool
	// VirtMBps is throughput in virtual time — a determinism check, not a
	// performance number. At Workers=1 it is byte-reproducible across
	// runs; at Workers>1 intra-timestamp worker interleaving may move it
	// slightly (see the package comment above).
	VirtMBps float64
	// WallMS is the wall-clock duration of the run.
	WallMS float64
	// WallMBps is bytes served per wall-clock second — the number that
	// should scale.
	WallMBps float64
	// Speedup is WallMBps relative to the Workers=1 run of the same
	// stealing mode (1.0 for the baseline itself).
	Speedup float64
	// Stats is the merged metrics snapshot at the end of the run.
	Stats stats.Snapshot
}

// fig19ScaleRun is one wall-timed cached-workload run: the same server and
// load as Fig19HybridStats, with bytes-served captured so the caller can
// compute wall throughput.
func fig19ScaleRun(cfg Fig19Config, conns int) (virtMBps float64, bytes uint64, wall time.Duration, snap stats.Snapshot) {
	clk, k, fs, rt, io := fig19Site(cfg)
	defer rt.Shutdown()
	defer io.Close()
	srv := httpd.NewServer(io, httpd.ServerConfig{
		CacheBytes: cfg.CacheBytes,
		ChunkBytes: int(cfg.FileBytes),
	})
	serve, err := srv.BindAndServe("web:80")
	if err != nil {
		panic(err)
	}
	rt.Spawn(serve)
	start := time.Now()
	mbps, gen := runLoadGen(clk, rt, io, cfg, conns, false)
	wall = time.Since(start)
	// Quiesce to the accept-loop thread before reading counters: handler
	// retirements may still be in flight on other workers.
	rt.WaitLive(1)
	snap = stats.Snapshot{}
	snap.Merge("sched", rt.Stats().Snapshot())
	snap.Merge("kernel", k.Metrics().Snapshot())
	snap.Merge("disk", fs.Disk().Metrics().Snapshot())
	snap.Merge("httpd", srv.Metrics().Snapshot())
	return mbps, gen.Bytes.Load(), wall, snap
}

// Fig19Scaling runs the cached workload at each worker count and reports
// wall-clock throughput and speedup versus the Workers=1 run. The cached
// working set is forced on (Cached=true) so the disk model — a serial
// device that would cap any speedup — stays out of the hot path. Speedup
// is computed within the run, so points in one table share a machine
// state; compare tables across machines only by their Speedup columns.
func Fig19Scaling(cfg Fig19Config, conns int, workerCounts []int, stealing bool) []ScalingPoint {
	cfg.Cached = true
	cfg.WorkStealing = stealing
	out := make([]ScalingPoint, 0, len(workerCounts))
	var base float64
	for _, w := range workerCounts {
		cfg.Workers = w
		virt, bytes, wall, snap := fig19ScaleRun(cfg, conns)
		p := ScalingPoint{
			Workers:  w,
			Stealing: stealing,
			VirtMBps: virt,
			WallMS:   float64(wall.Milliseconds()),
			Stats:    snap,
		}
		if wall > 0 {
			p.WallMBps = float64(bytes) / float64(MB) / wall.Seconds()
		}
		if w == 1 && base == 0 {
			base = p.WallMBps
		}
		if base > 0 {
			p.Speedup = p.WallMBps / base
		}
		out = append(out, p)
	}
	return out
}
