package bench

import (
	"bytes"
	"testing"

	"hybrid/internal/faults"
)

// TestFig17InactiveFaultsAreInvisible: a config carrying a zero-rate
// fault plan must reproduce the no-faults run exactly — same
// throughput, same metrics snapshot, byte for byte.
func TestFig17InactiveFaultsAreInvisible(t *testing.T) {
	base := Fig17Quick()
	mbpsA, snapA := Fig17HybridStats(base, 16)

	withOff := base
	withOff.Faults = &faults.Config{Seed: 99, Rate: 0}
	mbpsB, snapB := Fig17HybridStats(withOff, 16)

	if mbpsA != mbpsB {
		t.Fatalf("rate=0 changed throughput: %.6f vs %.6f MB/s", mbpsA, mbpsB)
	}
	var a, b bytes.Buffer
	if err := snapA.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := snapB.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rate=0 changed the metrics snapshot:\n--- no faults ---\n%s\n--- rate=0 ---\n%s", a.String(), b.String())
	}
}

// TestFig17FaultReplayIsDeterministic: the same seeded fault plan must
// replay bit-for-bit — two runs yield identical throughput and
// identical snapshots, including every faults.* counter.
func TestFig17FaultReplayIsDeterministic(t *testing.T) {
	cfg := Fig17Quick()
	cfg.Faults = &faults.Config{
		Seed:  5,
		Rates: map[faults.Op]float64{faults.DiskRead: 0.02},
	}
	mbpsA, snapA := Fig17HybridStats(cfg, 16)
	mbpsB, snapB := Fig17HybridStats(cfg, 16)

	if snapA.Counter("faults.injected.disk.read") == 0 {
		t.Fatal("plan injected no disk faults; replay test is vacuous")
	}
	if mbpsA != mbpsB {
		t.Fatalf("same seed, different throughput: %.6f vs %.6f MB/s", mbpsA, mbpsB)
	}
	var a, b bytes.Buffer
	if err := snapA.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := snapB.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same seed, different snapshots:\n--- run A ---\n%s\n--- run B ---\n%s", a.String(), b.String())
	}
	// A different seed must give a different plan (else the seed is dead).
	cfg.Faults = &faults.Config{Seed: 6, Rates: map[faults.Op]float64{faults.DiskRead: 0.02}}
	_, snapC := Fig17HybridStats(cfg, 16)
	if snapC.Counter("faults.injected.disk.read") == snapA.Counter("faults.injected.disk.read") &&
		snapC.Counter("disk.requests") == snapA.Counter("disk.requests") {
		t.Log("note: seeds 5 and 6 coincided on injected counts (possible but unlikely)")
	}
}

// TestFig19DegradesUnderDiskFaults: the hybrid web server keeps serving
// under a 1% transient disk-error rate — retries absorb most faults,
// exhausted ones surface as 503s, and the run completes.
func TestFig19DegradesUnderDiskFaults(t *testing.T) {
	cfg := Fig19Quick()
	cfg.TotalRequests = 512
	cfg.Faults = &faults.Config{
		Seed:  11,
		Rates: map[faults.Op]float64{faults.DiskRead: 0.30},
	}
	mbps, snap := Fig19HybridStats(cfg, 16)
	if !(mbps > 0) {
		t.Fatalf("throughput = %v under faults", mbps)
	}
	if snap.Counter("faults.injected.disk.read") == 0 {
		t.Fatal("no faults injected; test is vacuous")
	}
	if snap.Counter("httpd.disk_retries") == 0 {
		t.Fatal("server never retried a faulted read")
	}
	if snap.Counter("httpd.requests") == 0 {
		t.Fatal("server served nothing under faults")
	}
	// Retried reads show up as extra disk traffic, never as wedged
	// clients: every handler either finishes its file or sheds with 503.
	if got := snap.Counter("httpd.resp_503"); got == 0 {
		t.Fatal("30% disk-error rate with 2 retries produced no 503s")
	}
}
