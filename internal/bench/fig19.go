package bench

import (
	"math"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/faults"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/nptl"
	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// Fig19Config parameterizes the web-server comparison: "each client
// thread repeatedly requests a file chosen at random from among 128K
// possible files available on the server; each file is 16KB in size …
// Our web server used a fixed cache size of 100MB," over a 100 Mbps
// link, with the Linux disk cache flushed before each run.
type Fig19Config struct {
	// Files in the set. Paper: 128 K.
	Files int
	// FileBytes each. Paper: 16 KB.
	FileBytes int64
	// CacheBytes for both servers. Paper: 100 MB.
	CacheBytes int64
	// TotalRequests per run (split across connections).
	TotalRequests int
	// RTT and Bandwidth model the client-server Ethernet.
	RTT       time.Duration
	Bandwidth int64
	// Seed for client request streams.
	Seed uint64
	// Cached, when true, shrinks the working set to fit the cache — the
	// paper's "mostly-cached workloads (not shown in the figure)".
	Cached bool
	// Faults, when active, attaches a deterministic fault injector to
	// the hybrid run's kernel and disk and enables the server's
	// graceful-degradation path (bounded retries, 503 on a dead file).
	// The Apache baseline always runs fault-free.
	Faults *faults.Config
	// Workers is the hybrid runtime's worker_main count; zero means 1,
	// the deterministic single-worker configuration every figure uses.
	Workers int
	// WorkStealing switches the hybrid runtime to per-worker deques with
	// stealing; only meaningful with Workers > 1.
	WorkStealing bool
}

// DefaultFig19 is the paper's configuration.
func DefaultFig19() Fig19Config {
	return Fig19Config{
		Files:         128 * 1024,
		FileBytes:     16 * 1024,
		CacheBytes:    100 << 20,
		TotalRequests: 8192,
		RTT:           300 * time.Microsecond,
		Bandwidth:     100_000_000 / 8,
		Seed:          7,
	}
}

// Fig19Quick is reduced for tests.
func Fig19Quick() Fig19Config {
	c := DefaultFig19()
	c.Files = 2048
	c.CacheBytes = 2 << 20
	c.TotalRequests = 512
	return c
}

// effectiveFiles applies the Cached switch: a working set that fits the
// cache.
func (c Fig19Config) effectiveFiles() int {
	if !c.Cached {
		return c.Files
	}
	fit := int(c.CacheBytes / c.FileBytes / 2)
	if fit < 1 {
		fit = 1
	}
	if fit > c.Files {
		fit = c.Files
	}
	return fit
}

// fig19Site builds the shared substrate: kernel, fileset, client runtime.
func fig19Site(cfg Fig19Config) (*vclock.VirtualClock, *kernel.Kernel, *kernel.FS, *core.Runtime, *hio.IO) {
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.BenchGeometry()))
	if err := loadgen.MakeFileset(fs, cfg.Files, cfg.FileBytes); err != nil {
		panic(err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	rt := core.NewRuntime(core.Options{Workers: workers, WorkStealing: cfg.WorkStealing, Clock: clk})
	io := hio.New(rt, k, fs)
	return clk, k, fs, rt, io
}

// runLoad drives the generator to completion and returns MB/s of virtual
// time.
func runLoad(clk *vclock.VirtualClock, rt *core.Runtime, io *hio.IO, cfg Fig19Config, conns int) float64 {
	mbps, _ := runLoadGen(clk, rt, io, cfg, conns, false)
	return mbps
}

// runLoadGen is runLoad exposing the generator (for latency readings).
// measure enables per-request latency observation; it adds clock-read
// nodes to every request's trace, so measured runs are a separate
// trajectory from the plain figures.
func runLoadGen(clk *vclock.VirtualClock, rt *core.Runtime, io *hio.IO, cfg Fig19Config, conns int, measure bool) (float64, *loadgen.Generator) {
	per := cfg.TotalRequests / conns
	if per < 1 {
		per = 1
	}
	gen := loadgen.New(io, loadgen.Config{
		Addr:              "web:80",
		Clients:           conns,
		Files:             cfg.effectiveFiles(),
		RequestsPerClient: per,
		Seed:              cfg.Seed,
		RTT:               cfg.RTT,
		Bandwidth:         cfg.Bandwidth,
		MeasureLatency:    measure,
	})
	start := clk.Now()
	done := make(chan struct{})
	var end vclock.Time
	// Capture the end time inside the workload: once the generator's
	// last thread parks, the quiescent clock races through any pending
	// timers before this goroutine could observe Now().
	rt.Spawn(core.Then(gen.Run(), core.Do(func() {
		end = clk.Now()
		close(done)
	})))
	<-done
	elapsed := time.Duration(end - start)
	if elapsed <= 0 || gen.Requests.Load() == 0 {
		return math.NaN(), gen
	}
	return float64(gen.Bytes.Load()) / float64(MB) / elapsed.Seconds(), gen
}

// Fig19Hybrid measures the paper's web server: monadic threads, AIO,
// application-level cache.
func Fig19Hybrid(cfg Fig19Config, conns int) float64 {
	mbps, _ := Fig19HybridStats(cfg, conns)
	return mbps
}

// Fig19HybridStats runs Fig19Hybrid and also returns the merged metrics
// snapshot (sched.*, kernel.*, disk.*, httpd.*) taken at the end of the
// run.
func Fig19HybridStats(cfg Fig19Config, conns int) (float64, stats.Snapshot) {
	clk, k, fs, rt, io := fig19Site(cfg)
	defer rt.Shutdown()
	defer io.Close()
	scfg := httpd.ServerConfig{
		CacheBytes: cfg.CacheBytes,
		ChunkBytes: int(cfg.FileBytes),
	}
	var in *faults.Injector
	if cfg.Faults.Active() {
		in = faults.New(*cfg.Faults, clk)
		k.SetFaults(in)
		fs.Disk().SetFaults(in)
		scfg.DiskRetries = 2
	}
	srv := httpd.NewServer(io, scfg)
	serve, err := srv.BindAndServe("web:80")
	if err != nil {
		panic(err)
	}
	rt.Spawn(serve)
	mbps := runLoad(clk, rt, io, cfg, conns)
	// Quiesce to the accept-loop thread alone before snapshotting: the
	// load generator's completion is signalled from inside a trace, so
	// handler retirements may still be in flight on other workers.
	rt.WaitLive(1)
	snap := stats.Snapshot{}
	snap.Merge("sched", rt.Stats().Snapshot())
	snap.Merge("kernel", k.Metrics().Snapshot())
	snap.Merge("disk", fs.Disk().Metrics().Snapshot())
	snap.Merge("httpd", srv.Metrics().Snapshot())
	if in != nil {
		snap.Merge("faults", in.Metrics().Snapshot())
	}
	return mbps, snap
}

// Fig19Perf is one measured hybrid run for the perf trajectory: virtual
// throughput, the virtual-time p99 request latency, total bytes served,
// and the merged snapshot. Latency measurement is on, so the request
// traces carry extra clock reads — compare Fig19Perf runs only with
// other Fig19Perf runs.
type Fig19Perf struct {
	MBps  float64
	P99Us int64
	Bytes uint64
	Stats stats.Snapshot
}

// Fig19HybridPerf runs the hybrid server like Fig19HybridStats but with
// per-request latency measurement enabled.
func Fig19HybridPerf(cfg Fig19Config, conns int) Fig19Perf {
	clk, k, fs, rt, io := fig19Site(cfg)
	defer rt.Shutdown()
	defer io.Close()
	scfg := httpd.ServerConfig{
		CacheBytes: cfg.CacheBytes,
		ChunkBytes: int(cfg.FileBytes),
	}
	srv := httpd.NewServer(io, scfg)
	serve, err := srv.BindAndServe("web:80")
	if err != nil {
		panic(err)
	}
	rt.Spawn(serve)
	mbps, gen := runLoadGen(clk, rt, io, cfg, conns, true)
	rt.WaitLive(1)
	snap := stats.Snapshot{}
	snap.Merge("sched", rt.Stats().Snapshot())
	snap.Merge("kernel", k.Metrics().Snapshot())
	snap.Merge("disk", fs.Disk().Metrics().Snapshot())
	snap.Merge("httpd", srv.Metrics().Snapshot())
	return Fig19Perf{
		MBps:  mbps,
		P99Us: gen.Latency().Quantile(0.99),
		Bytes: gen.Bytes.Load(),
		Stats: snap,
	}
}

// Fig19Apache measures the baseline: thread-per-connection blocking
// server whose page cache is squeezed by thread stacks.
func Fig19Apache(cfg Fig19Config, conns int) float64 {
	clk, k, fs, rt, io := fig19Site(cfg)
	defer rt.Shutdown()
	defer io.Close()
	nrt := nptl.New(k, fs, nptl.Config{MemoryBudget: 512 << 20, StackTouch: -1})
	ap := httpd.NewApacheLike(nrt, k, fs, httpd.ApacheConfig{
		PageCacheBytes: cfg.CacheBytes,
		ChunkBytes:     int(cfg.FileBytes),
	})
	if err := ap.ListenAndServe("web:80"); err != nil {
		panic(err)
	}
	return runLoad(clk, rt, io, cfg, conns)
}

// Fig19 runs both servers across the connection counts.
func Fig19(cfg Fig19Config, connCounts []int) []Point {
	out := make([]Point, 0, len(connCounts))
	for _, n := range connCounts {
		out = append(out, Point{X: n, Hybrid: Fig19Hybrid(cfg, n), NPTL: Fig19Apache(cfg, n)})
	}
	return out
}
