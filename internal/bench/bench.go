// Package bench contains the harnesses that regenerate the paper's
// evaluation (§5): the thread memory-consumption test, the disk
// head-scheduling test (Figure 17), the FIFO-pipe scalability test
// (Figure 18), and the web-server comparison (Figure 19), each with the
// hybrid runtime and the NPTL baseline side by side.
//
// Each harness returns a series of points; cmd/ binaries print them as
// the rows of the corresponding figure, and bench_test.go exposes them as
// testing.B benchmarks. Disk- and network-bound experiments run on the
// deterministic virtual clock; CPU/memory-bound experiments run on the
// wall clock, as in the paper.
package bench

import (
	"fmt"
	"io"
	"math"
)

// Point is one x-position of a figure with the two competing systems'
// measurements. A NaN means the system could not run at that x (the
// paper's NPTL curves stop at 16K threads).
type Point struct {
	X      int     // threads / idle threads / connections
	Hybrid float64 // MB/s
	NPTL   float64 // MB/s
}

// MB is 2^20 bytes, the unit of every figure's y-axis.
const MB = 1 << 20

// PrintSeries renders points as an aligned table.
func PrintSeries(w io.Writer, xLabel string, points []Point, hybridName, nptlName string) {
	fmt.Fprintf(w, "%-12s %14s %14s\n", xLabel, hybridName, nptlName)
	for _, p := range points {
		fmt.Fprintf(w, "%-12d %14s %14s\n", p.X, cell(p.Hybrid), cell(p.NPTL))
	}
}

// PrintHybridSeries renders only the hybrid column. The default figure
// output uses this: the baseline columns run kernel threads whose
// interleaving is host-scheduled (goroutine arrival order at the disk and
// the spawn budget), so they are only printed under the -realtime flag,
// keeping default output byte-for-byte reproducible.
func PrintHybridSeries(w io.Writer, xLabel string, points []Point, hybridName string) {
	fmt.Fprintf(w, "%-12s %14s\n", xLabel, hybridName)
	for _, p := range points {
		fmt.Fprintf(w, "%-12d %14s\n", p.X, cell(p.Hybrid))
	}
}

func cell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f MB/s", v)
}
