package bench

import (
	"math"
	"strings"
	"testing"
)

// The harness tests verify the *shape* of each figure at reduced volume:
// who wins, what rises, and where the baseline hits its wall.

func TestFig17ThroughputRisesWithThreads(t *testing.T) {
	cfg := Fig17Quick()
	t1 := Fig17Hybrid(cfg, 1)
	t64 := Fig17Hybrid(cfg, 64)
	if !(t64 > t1) {
		t.Fatalf("hybrid disk throughput did not rise with threads: 1→%.3f 64→%.3f", t1, t64)
	}
	// Calibration: the paper's band is ~0.52-0.68 MB/s.
	if t1 < 0.3 || t1 > 0.9 {
		t.Errorf("1-thread throughput %.3f MB/s outside calibration band", t1)
	}
}

func TestFig17NPTLComparable(t *testing.T) {
	cfg := Fig17Quick()
	h := Fig17Hybrid(cfg, 64)
	n := Fig17NPTL(cfg, 64)
	if math.IsNaN(n) {
		t.Fatal("NPTL failed below its thread budget")
	}
	// The paper: comparable, hybrid slightly ahead at high concurrency.
	if !(h >= n) {
		t.Fatalf("hybrid %.3f < NPTL %.3f at 64 threads", h, n)
	}
	if n < h*0.8 {
		t.Fatalf("NPTL %.3f implausibly far behind hybrid %.3f", n, h)
	}
}

func TestFig17NPTLWallAt16K(t *testing.T) {
	cfg := Fig17Quick()
	cfg.NPTLBudget = 64 * 32 * 1024 // 64 threads worth of stacks
	if v := Fig17NPTL(cfg, 64); math.IsNaN(v) {
		t.Fatal("NPTL failed at its exact budget")
	}
	if v := Fig17NPTL(cfg, 65); !math.IsNaN(v) {
		t.Fatalf("NPTL exceeded its stack budget: %.3f", v)
	}
}

func TestFig18HybridFlatUnderIdleLoad(t *testing.T) {
	cfg := Fig18Quick()
	// The flattened FIFO pump finishes the quick shape in ~3ms, which is
	// inside scheduler noise for a wall-clock ratio; lengthen the run so
	// the comparison measures throughput, not jitter.
	cfg.Rounds *= 4
	base := Fig18Hybrid(cfg, 0)
	loaded := Fig18Hybrid(cfg, 2000)
	if base <= 0 || loaded <= 0 {
		t.Fatalf("throughputs: %f %f", base, loaded)
	}
	// Idle threads must be near-free: allow 40% noise on a tiny run.
	if loaded < base*0.6 {
		t.Fatalf("2000 idle threads collapsed throughput: %.1f → %.1f MB/s", base, loaded)
	}
}

func TestFig18NPTLRunsAndIsSlower(t *testing.T) {
	cfg := Fig18Quick()
	h := Fig18Hybrid(cfg, 100)
	n := Fig18NPTL(cfg, 100)
	if math.IsNaN(n) || n <= 0 {
		t.Fatalf("NPTL throughput = %f", n)
	}
	// The paper reports the hybrid ~30% ahead; require it at least not
	// to lose by much on a small run.
	if h < n*0.7 {
		t.Fatalf("hybrid %.1f MB/s far behind NPTL %.1f MB/s", h, n)
	}
}

func TestFig18NPTLBudgetWall(t *testing.T) {
	cfg := Fig18Quick()
	cfg.NPTLBudget = 64 * 32 * 1024
	if v := Fig18NPTL(cfg, 1000); !math.IsNaN(v) {
		t.Fatalf("NPTL ran with 1000 idle threads on a 64-thread budget: %f", v)
	}
}

func TestFig19ThroughputRisesWithConnections(t *testing.T) {
	cfg := Fig19Quick()
	t1 := Fig19Hybrid(cfg, 1)
	t64 := Fig19Hybrid(cfg, 64)
	if !(t64 > t1) {
		t.Fatalf("web throughput did not rise: 1 conn %.3f, 64 conns %.3f MB/s", t1, t64)
	}
}

func TestFig19HybridBeatsApacheAtHighConcurrency(t *testing.T) {
	cfg := Fig19Quick()
	h := Fig19Hybrid(cfg, 64)
	a := Fig19Apache(cfg, 64)
	if math.IsNaN(a) || a <= 0 {
		t.Fatalf("apache throughput = %f", a)
	}
	if !(h >= a) {
		t.Fatalf("hybrid %.3f < apache-like %.3f at 64 conns", h, a)
	}
}

func TestFig19CachedWorkloadFaster(t *testing.T) {
	cfg := Fig19Quick()
	cold := Fig19Hybrid(cfg, 16)
	cfg.Cached = true
	warm := Fig19Hybrid(cfg, 16)
	if !(warm > cold*2) {
		t.Fatalf("cached workload %.3f not clearly faster than disk-bound %.3f", warm, cold)
	}
}

func TestMemTestPerThreadSmall(t *testing.T) {
	p := MemTest(100_000)
	if p.BytesPerThread <= 0 {
		t.Fatalf("bytes/thread = %f", p.BytesPerThread)
	}
	// The paper reports 48 bytes in Haskell; Go closures and the TCB are
	// heavier, but a monadic thread must stay well under a kilobyte —
	// orders of magnitude below goroutine or kernel-thread stacks.
	if p.BytesPerThread > 1024 {
		t.Fatalf("bytes/thread = %.1f, want < 1024", p.BytesPerThread)
	}
}

func TestPrintSeries(t *testing.T) {
	var sb strings.Builder
	PrintSeries(&sb, "threads", []Point{
		{X: 1, Hybrid: 0.5, NPTL: 0.4},
		{X: 100000, Hybrid: 0.7, NPTL: math.NaN()},
	}, "Hybrid", "NPTL")
	out := sb.String()
	if !strings.Contains(out, "threads") || !strings.Contains(out, "0.500 MB/s") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatal("NaN not rendered as absent")
	}
}

func TestFig17Series(t *testing.T) {
	cfg := Fig17Quick()
	pts := Fig17(cfg, []int{1, 16})
	if len(pts) != 2 || pts[0].X != 1 || pts[1].X != 16 {
		t.Fatalf("points: %+v", pts)
	}
}

// ABL-ELEVATOR: concurrency without the elevator buys nothing — the
// FCFS-disk ablation stays flat while C-LOOK rises.
func TestFig17ElevatorAblation(t *testing.T) {
	cfg := Fig17Quick()
	clook := Fig17Hybrid(cfg, 256)
	fcfs := Fig17HybridFCFS(cfg, 256)
	if !(clook > fcfs*1.1) {
		t.Fatalf("elevator advantage missing at depth 256: C-LOOK %.3f vs FCFS %.3f", clook, fcfs)
	}
	fcfs1 := Fig17HybridFCFS(cfg, 1)
	if fcfs > fcfs1*1.1 {
		t.Fatalf("FCFS improved with concurrency (%.3f -> %.3f); it should stay flat", fcfs1, fcfs)
	}
}
