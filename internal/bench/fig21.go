package bench

import (
	"math"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/vclock"
)

// Fig21Config parameterizes the adversarial-robustness figure: a fixed
// population of well-behaved closed-loop clients shares a
// connection-limited server with a fleet of hostile clients, and the
// figure contrasts the good clients' goodput with the connection-
// lifecycle defenses off versus on. The server is sized so the attack
// decides the outcome: attackers alone can pin every connection slot,
// and only the timer-wheel deadlines give the slots back.
type Fig21Config struct {
	// Files and FileBytes shape the (fully cached) fileset.
	Files     int
	FileBytes int64
	// CacheBytes comfortably holds the whole fileset: the figure is
	// about connection slots, not disk contention.
	CacheBytes int64
	// GoodClients run closed-loop sessions of SessionRequests requests
	// each for the whole horizon.
	GoodClients     int
	SessionRequests int
	// Attackers is the hostile client population — enough to occupy
	// MaxConns entirely when nothing evicts them.
	Attackers int
	// AttackInterval paces each attacker (byte trickle, reconnect gap).
	AttackInterval vclock.Duration
	// Horizon is the measured virtual-time window.
	Horizon vclock.Duration
	// MaxConns and Backlog bound the server: MaxConns in-flight
	// connections, Backlog connects parked behind them.
	MaxConns int
	Backlog  int
	// RTT and Bandwidth model the client-server link.
	RTT       time.Duration
	Bandwidth int64
	// Seed drives both populations' request streams and pacing jitter.
	Seed uint64
	// Lifecycle is the defended configuration (the "on" rows).
	Lifecycle httpd.LifecycleConfig
}

// DefaultFig21 sizes the contest so defenses are decisive: 64 attackers
// against 64 connection slots pin the server solid when left alone,
// while 10ms phase deadlines against a 20ms reconnect pace cap each
// hostile connection's slot duty-cycle near one quarter — leaving the
// 32 good clients slack to run near full speed.
func DefaultFig21() Fig21Config {
	return Fig21Config{
		Files:           64,
		FileBytes:       16 * 1024,
		CacheBytes:      4 << 20,
		GoodClients:     32,
		SessionRequests: 8,
		Attackers:       64,
		AttackInterval:  20 * time.Millisecond,
		Horizon:         time.Second,
		MaxConns:        64,
		Backlog:         32,
		RTT:             300 * time.Microsecond,
		Bandwidth:       100_000_000 / 8,
		Seed:            11,
		Lifecycle: httpd.LifecycleConfig{
			IdleTimeout:       10 * time.Millisecond,
			HeaderTimeout:     10 * time.Millisecond,
			BodyTimeout:       10 * time.Millisecond,
			WriteStallTimeout: 10 * time.Millisecond,
		},
	}
}

// Fig21Quick is reduced for tests and the determinism gate.
func Fig21Quick() Fig21Config {
	c := DefaultFig21()
	c.GoodClients = 16
	c.Attackers = 32
	c.MaxConns = 32
	c.Horizon = 250 * time.Millisecond
	return c
}

// Fig21Modes are the attack columns, in figure order. "none" is the
// no-attack baseline every other row is judged against.
var Fig21Modes = []string{"none", "slowloris", "idle", "read-stall", "churn"}

func fig21Mode(name string) (loadgen.AttackMode, bool) {
	switch name {
	case "slowloris":
		return loadgen.AttackSlowloris, true
	case "idle":
		return loadgen.AttackIdle, true
	case "read-stall":
		return loadgen.AttackReadStall, true
	case "churn":
		return loadgen.AttackChurn, true
	}
	return 0, false
}

// Fig21Point is one cell: an attack mode against one defense setting.
type Fig21Point struct {
	// Mode is the attack ("none" for the baseline).
	Mode string
	// Defended reports whether the lifecycle deadlines were armed.
	Defended bool
	// GoodputMBps is the well-behaved clients' delivered 2xx bytes per
	// second of virtual time across the horizon.
	GoodputMBps float64
	// GoodRequests and GoodErrors are the good clients' totals.
	GoodRequests uint64
	GoodErrors   uint64
	// P99Us is the good clients' p99 request latency (µs, virtual).
	P99Us int64
	// AttackConns and Torndown count hostile connections opened and torn
	// down by the server.
	AttackConns uint64
	Torndown    uint64
	// Sheds breaks the server's defense firings down by phase.
	Sheds httpd.LifecycleStats
}

// Fig21Run measures one cell.
func Fig21Run(cfg Fig21Config, mode string, defended bool) Fig21Point {
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.BenchGeometry()))
	if err := loadgen.MakeFileset(fs, cfg.Files, cfg.FileBytes); err != nil {
		panic(err)
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()

	scfg := httpd.ServerConfig{
		CacheBytes: cfg.CacheBytes,
		ChunkBytes: int(cfg.FileBytes),
		Overload: &httpd.OverloadConfig{
			MaxConns: cfg.MaxConns,
			Backlog:  cfg.Backlog,
		},
	}
	if defended {
		lc := cfg.Lifecycle
		scfg.Lifecycle = &lc
	}
	srv := httpd.NewServer(io, scfg)
	serve, err := srv.BindAndServe("web:80")
	if err != nil {
		panic(err)
	}
	rt.Spawn(serve)

	// Warm the cache: the figure measures connection-slot contention
	// under attack, not cold-start disk behavior, so every request in
	// the horizon is a cache hit.
	for i := 0; i < cfg.Files; i++ {
		name := loadgen.FileName(i)
		data := make([]byte, cfg.FileBytes)
		for j := range data {
			data[j] = kernel.PatternByte(name, int64(j))
		}
		srv.Cache().Put(name, data)
	}

	gen := loadgen.New(io, loadgen.Config{
		Addr:            "web:80",
		Clients:         cfg.GoodClients,
		Files:           cfg.Files,
		Seed:            cfg.Seed,
		RTT:             cfg.RTT,
		Bandwidth:       cfg.Bandwidth,
		MeasureLatency:  true,
		Horizon:         cfg.Horizon,
		SessionRequests: cfg.SessionRequests,
		ConnectBackoff:  2 * time.Millisecond,
		// A session wedged behind attacker-held slots is abandoned fast:
		// healthy sessions finish in ~10ms, so 50ms is generous for them
		// and cheap for the stuck.
		SessionTimeout: 50 * time.Millisecond,
	})

	var adv *loadgen.Adversary
	if am, ok := fig21Mode(mode); ok {
		adv = loadgen.NewAdversary(io, loadgen.AttackConfig{
			Addr:      "web:80",
			Attackers: cfg.Attackers,
			Mode:      am,
			Seed:      cfg.Seed * 1_000_003,
			Interval:  cfg.AttackInterval,
			Duration:  cfg.Horizon,
			Files:     cfg.Files,
		})
	}

	start := clk.Now()
	var end vclock.Time
	genDone := make(chan struct{})
	advDone := make(chan struct{})
	// Goodput is measured over the generator's own window — the
	// adversary's wind-down past the horizon must not dilute it.
	genBody := core.Then(gen.Run(), core.Do(func() {
		end = clk.Now()
		close(genDone)
	}))
	// Both populations launch from a single root thread, not separate
	// Spawns: a second Spawn from the host goroutine races the worker,
	// which can drain the first population to quiescence — arming timers
	// and advancing virtual time — before the second is published. Forking
	// inside the worker keeps the launch order (and so every (when, seq)
	// assignment) deterministic at any GOMAXPROCS.
	if adv != nil {
		advBody := core.Then(adv.Run(), core.Do(func() { close(advDone) }))
		rt.Spawn(core.Then(core.Fork(advBody), genBody))
	} else {
		close(advDone)
		rt.Spawn(genBody)
	}
	<-genDone
	<-advDone
	// Drain to the accept loop before snapshotting: sessions abandoned by
	// the generator's SessionTimeout leave their racer threads running
	// (FirstOf has no cancellation), and those stragglers are still
	// bumping the error and goodput counters when the done channels close.
	// The measurement window is unaffected — end was captured inside the
	// generator's own completion effect.
	rt.WaitLive(1)

	elapsed := time.Duration(end - start)
	goodput := math.NaN()
	if elapsed > 0 {
		goodput = float64(gen.Goodput.Load()) / float64(MB) / elapsed.Seconds()
	}
	p := Fig21Point{
		Mode:         mode,
		Defended:     defended,
		GoodputMBps:  goodput,
		GoodRequests: gen.Requests.Load(),
		GoodErrors:   gen.Errors.Load(),
		P99Us:        gen.Latency().Quantile(0.99),
		Sheds:        srv.LifecycleStats(),
	}
	if adv != nil {
		p.AttackConns = adv.Conns.Load()
		p.Torndown = adv.Torndown.Load()
	}
	return p
}

// Fig21 runs the full grid: the no-attack baseline and every attack
// mode, each with defenses off and on.
func Fig21(cfg Fig21Config) []Fig21Point {
	out := make([]Fig21Point, 0, 2*len(Fig21Modes))
	for _, mode := range Fig21Modes {
		for _, defended := range []bool{false, true} {
			out = append(out, Fig21Run(cfg, mode, defended))
		}
	}
	return out
}
