package bench

import (
	"runtime"
	"testing"
)

// The scaling table must (a) produce finite wall throughput at every
// worker count, and (b) anchor Speedup at 1.0 for the Workers=1 baseline.
// Virtual throughput at Workers>1 is allowed to drift — worker
// interleaving reorders requests through the shared-bandwidth link model —
// which is exactly why the figures pin Workers=1; see the determinism
// test below.
func TestFig19ScalingSmoke(t *testing.T) {
	cfg := Fig19Quick()
	cfg.TotalRequests = 256
	pts := Fig19Scaling(cfg, 16, []int{1, 2}, false)
	if len(pts) != 2 {
		t.Fatalf("points: %+v", pts)
	}
	if pts[0].Workers != 1 || pts[1].Workers != 2 {
		t.Fatalf("worker counts: %d, %d", pts[0].Workers, pts[1].Workers)
	}
	for _, p := range pts {
		if !(p.WallMBps > 0) {
			t.Fatalf("workers=%d: wall throughput %.3f not positive", p.Workers, p.WallMBps)
		}
		if !(p.VirtMBps > 0) {
			t.Fatalf("workers=%d: virtual throughput %.3f not positive", p.Workers, p.VirtMBps)
		}
	}
	if pts[0].Speedup != 1.0 {
		t.Fatalf("baseline speedup = %.3f, want 1.0", pts[0].Speedup)
	}
}

// The determinism canary: two Workers=1 runs of the same workload must
// land on bit-identical virtual throughput — the invariant every figure
// in the repository depends on.
//
// The test deliberately runs at GOMAXPROCS=4. Determinism used to be
// conditioned on a single P (the worker, the epoll harvester, and the
// clock's timer goroutine raced their enqueue order); the epoch-barrier
// clock removed every host-scheduled actor from the virtual domain —
// readiness resumes dispatch synchronously, timers fire in (when, seq)
// order behind the dispatch gate — so Workers=1 runs must now reproduce
// under real parallelism. This is the same property the CI determinism
// gate checks end to end on the figure CLIs.
func TestFig19ScalingWorker1Deterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	cfg := Fig19Quick()
	cfg.TotalRequests = 256
	a := Fig19Scaling(cfg, 16, []int{1}, false)
	b := Fig19Scaling(cfg, 16, []int{1}, false)
	if a[0].VirtMBps != b[0].VirtMBps {
		t.Fatalf("Workers=1 virtual throughput not reproducible at GOMAXPROCS=4: %.9f vs %.9f",
			a[0].VirtMBps, b[0].VirtMBps)
	}
}

// Stealing mode exercises the per-worker-deque pushBatch path end to end.
func TestFig19ScalingStealingSmoke(t *testing.T) {
	cfg := Fig19Quick()
	cfg.TotalRequests = 128
	pts := Fig19Scaling(cfg, 8, []int{2}, true)
	if len(pts) != 1 || !pts[0].Stealing {
		t.Fatalf("points: %+v", pts)
	}
	if !(pts[0].WallMBps > 0) {
		t.Fatalf("wall throughput %.3f not positive", pts[0].WallMBps)
	}
}
