package bench

import (
	"testing"

	"hybrid/internal/bufpool"
	"hybrid/internal/iovec"
	"hybrid/internal/tcp"
)

// Allocation budgets for the hot paths this package benchmarks. The
// bounds carry headroom over the measured numbers (recorded in
// EXPERIMENTS.md) so scheduler noise does not flake them, while still
// failing loudly if a change reverts the zero-copy or
// continuation-flattening work: the cached-serve path cost 59 allocs/op
// before the zero-copy PR, 15 before the flattened serve loop, and 1
// after it; the segment roundtrip allocated a fresh wire buffer and
// payload copy per segment.

func TestServeCachedAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed budget check")
	}
	r := testing.Benchmark(BenchServeCached)
	const maxAllocs, maxBytes = 10, 512
	if a := r.AllocsPerOp(); a > maxAllocs {
		t.Fatalf("cached serve: %d allocs/op, budget %d", a, maxAllocs)
	}
	if b := r.AllocedBytesPerOp(); b > maxBytes {
		t.Fatalf("cached serve: %d B/op, budget %d", b, maxBytes)
	}
}

func TestSegmentRoundtripAllocs(t *testing.T) {
	payload := make([]byte, 1024)
	v := iovec.FromBytes(payload)
	// One allocation per roundtrip: the decoded *Segment. The wire
	// buffer is pooled and the payload is a borrowed view on both sides.
	const maxAllocs = 2
	n := testing.AllocsPerRun(500, func() {
		seg := &tcp.Segment{
			SrcPort: 4242, DstPort: 80, Seq: 7, Ack: 8,
			Flags: tcp.FlagACK, Window: 1 << 16, Payload: v,
		}
		wire := bufpool.Get(seg.WireLen())
		seg.EncodeTo(wire)
		d, err := tcp.Decode(wire)
		if err != nil || d.Payload.Len() != len(payload) {
			t.Fatal("roundtrip failed")
		}
		bufpool.Put(wire)
	})
	if n > maxAllocs {
		t.Fatalf("segment roundtrip allocates %v per run, want <= %d", n, maxAllocs)
	}
}
