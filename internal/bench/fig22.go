package bench

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/vclock"
)

// Fig22Config parameterizes the million-connection capacity figure: a
// fleet of parked keep-alive connections (each established, served one
// request, and left idle with an armed timer-wheel deadline) while a
// small background population trickles requests over the same server.
// The figure reports bytes per parked connection and the background
// mix's p99 — the paper's scalability claim pushed to the CPC regime
// where per-connection memory, not scheduling, is the binding
// constraint.
type Fig22Config struct {
	// Conns is the sweep of parked-fleet sizes (the x axis).
	Conns []int
	// ActiveClients and RequestsPerClient shape the background mix: a
	// closed-loop population issuing its budget over persistent
	// connections while the fleet sits parked.
	ActiveClients     int
	RequestsPerClient int
	// Files and FileBytes shape the (fully cached) fileset.
	Files     int
	FileBytes int64
	// CacheBytes comfortably holds the fileset: the figure is about
	// connection state, not disk contention.
	CacheBytes int64
	// RTT and Bandwidth model the client-server link for the background
	// mix (the parked fleet pays them once, at establishment).
	RTT       time.Duration
	Bandwidth int64
	// Seed drives the background mix's request stream.
	Seed uint64
	// MeasureMemory controls the host-side heap measurement. The
	// parked-bytes figure is read from the Go runtime's allocator, so it
	// is not virtual-time deterministic; the determinism gate runs with
	// it off and compares only the virtual-time columns.
	MeasureMemory bool
}

// DefaultFig22 sweeps 10k → 1M parked connections — the capstone scale.
// 64 background clients × 32 requests keep the trickle light: the
// point is that a million parked connections neither crowd them out of
// memory nor stretch their tail.
func DefaultFig22() Fig22Config {
	return Fig22Config{
		Conns:             []int{10_000, 100_000, 1_000_000},
		ActiveClients:     64,
		RequestsPerClient: 32,
		Files:             16,
		FileBytes:         4096,
		CacheBytes:        1 << 20,
		RTT:               300 * time.Microsecond,
		Bandwidth:         100_000_000 / 8,
		Seed:              22,
		MeasureMemory:     true,
	}
}

// Fig22Quick is reduced for tests and the determinism gate.
func Fig22Quick() Fig22Config {
	c := DefaultFig22()
	c.Conns = []int{1000, 4000}
	c.ActiveClients = 16
	c.RequestsPerClient = 8
	return c
}

// NPTLModelStackBytes is the NPTL baseline's per-connection memory at
// this scale: one kernel thread per parked connection at the paper's
// 32 KB configured stack (internal/nptl's default). Unlike figures 17
// and 18 the baseline here is reservation arithmetic, not a run — the
// nptl runtime refuses fleets past its 512 MB budget (16 K threads),
// which is itself the point: the sweep's upper rows are two orders of
// magnitude beyond where a thread-per-connection server stops
// admitting connections at all.
const NPTLModelStackBytes = 32 * 1024

// Fig22Point is one sweep cell: the cost and service quality of one
// parked-fleet size.
type Fig22Point struct {
	// Conns is the parked-fleet size.
	Conns int
	// ParkedBytesPerConn is the live-heap cost of one parked keep-alive
	// connection, measured after the fleet is fully established and
	// before the background mix starts. NaN when MeasureMemory is off.
	ParkedBytesPerConn float64
	// NPTLModelBytesPerConn is the modelled thread-per-connection
	// baseline cost: NPTLModelStackBytes, constant in the fleet size.
	// Reported next to the measured column in the non-deterministic
	// figure output only (it is a memory-model column, like
	// ParkedBytesPerConn, not a virtual-time result).
	NPTLModelBytesPerConn float64
	// P99Us is the background mix's p99 request latency (µs, virtual).
	P99Us int64
	// Requests and Errors are the background mix's totals.
	Requests uint64
	Errors   uint64
	// GoodputMBps is the background mix's delivered 2xx bytes per second
	// of virtual time over its own window.
	GoodputMBps float64
}

// Fig22Run measures one sweep cell. The phase structure mirrors
// bench.ConnMemTest: the host freezes virtual time, establishes the
// fleet (connect, one fully drained keep-alive request, park in a
// Suspend that never resumes), measures the parked heap, then releases
// the clock for the background mix. The mix's completion effect
// re-freezes the clock from inside the worker — deterministically, at
// the virtual instant the last response lands — so the fleet's
// hour-scale idle deadlines are pinned wheel state throughout rather
// than a reaping storm the moment the mix stops holding time back.
func Fig22Run(cfg Fig22Config, conns int) Fig22Point {
	clk := vclock.NewVirtual()
	// Freeze virtual time for establishment. The hold is released once
	// the background mix is spawned, and re-taken by the mix's
	// completion effect — so exactly one hold is this function's at any
	// point, and the single deferred Exit balances it. Registered first,
	// it runs after the teardown defers below: shutdown happens under a
	// frozen clock and the fleet's idle deadlines never fire.
	clk.Enter()
	defer clk.Exit()

	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.BenchGeometry()))
	if err := loadgen.MakeFileset(fs, cfg.Files, cfg.FileBytes); err != nil {
		panic(err)
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()

	srv := httpd.NewServer(io, httpd.ServerConfig{
		CacheBytes: cfg.CacheBytes,
		ChunkBytes: int(cfg.FileBytes),
		// The backlog must hold the whole fleet: every connect lands
		// before the accept loop's first dispatch turn, and with virtual
		// time frozen a refused connect cannot back off and retry.
		Overload: &httpd.OverloadConfig{Backlog: conns + cfg.ActiveClients + 64},
		Lifecycle: &httpd.LifecycleConfig{
			IdleTimeout:       time.Hour,
			HeaderTimeout:     time.Hour,
			WriteStallTimeout: time.Hour,
		},
	})
	serve, err := srv.BindAndServe("web:80")
	if err != nil {
		panic(err)
	}
	rt.Spawn(serve)
	for i := 0; i < cfg.Files; i++ {
		name := loadgen.FileName(i)
		data := make([]byte, cfg.FileBytes)
		for j := range data {
			data[j] = kernel.PatternByte(name, int64(j))
		}
		srv.Cache().Put(name, data)
	}

	runtime.GC()
	var before runtime.MemStats
	if cfg.MeasureMemory {
		runtime.ReadMemStats(&before)
	}

	// The fleet launches from a single root thread (launch discipline:
	// forking inside the worker keeps every (when, seq) assignment
	// deterministic at any GOMAXPROCS). Each client issues one fully
	// drained keep-alive request, then parks in a Suspend whose retained
	// resume hook pins the client half, exactly as MemTest pins threads.
	var mu sync.Mutex
	holders := make([]func(core.Unit), 0, conns)
	park := core.Suspend(func(resume func(core.Unit)) {
		mu.Lock()
		holders = append(holders, resume)
		mu.Unlock()
	})
	fleetClient := func(i int) core.M[core.Unit] {
		name := loadgen.FileName(i % cfg.Files)
		return core.Bind(io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
			return core.Then(fig22Request(io, fd, name), park)
		})
	}
	rt.Spawn(core.ForN(conns, func(i int) core.M[core.Unit] {
		return core.Fork(fleetClient(i))
	}))
	for {
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		n := len(holders)
		mu.Unlock()
		if n >= conns {
			break
		}
	}
	time.Sleep(50 * time.Millisecond)

	parked := math.NaN()
	if cfg.MeasureMemory {
		runtime.GC()
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		parked = float64(after.HeapAlloc-before.HeapAlloc) / float64(conns)
	}

	// Background mix: a plain-mode generator (every client one
	// persistent connection, a fixed request budget, no horizon) so Run
	// returns exactly when the budget is delivered — no straggler
	// threads to drain. Its completion effect re-freezes the clock
	// before the host observes completion.
	gen := loadgen.New(io, loadgen.Config{
		Addr:              "web:80",
		Clients:           cfg.ActiveClients,
		Files:             cfg.Files,
		RequestsPerClient: cfg.RequestsPerClient,
		Seed:              cfg.Seed,
		RTT:               cfg.RTT,
		Bandwidth:         cfg.Bandwidth,
		MeasureLatency:    true,
	})
	start := clk.Now()
	var end vclock.Time
	genDone := make(chan struct{})
	rt.Spawn(core.Then(gen.Run(), core.Do(func() {
		end = clk.Now()
		clk.Enter()
		close(genDone)
	})))
	clk.Exit()
	<-genDone

	elapsed := time.Duration(end - start)
	goodput := math.NaN()
	if elapsed > 0 {
		goodput = float64(gen.Goodput.Load()) / float64(MB) / elapsed.Seconds()
	}
	runtime.KeepAlive(holders)
	return Fig22Point{
		Conns:                 conns,
		ParkedBytesPerConn:    parked,
		NPTLModelBytesPerConn: NPTLModelStackBytes,
		P99Us:                 gen.Latency().Quantile(0.99),
		Requests:              gen.Requests.Load(),
		Errors:                gen.Errors.Load(),
		GoodputMBps:           goodput,
	}
}

// fig22Request issues one GET and drains the response exactly — head
// parse, Content-Length, full body — so the parked connection's receive
// ring is empty and holds no segments. (Draining "enough" bytes instead
// would strand the response tail in the ring and charge every parked
// connection one 4 KB segment it never reads.)
func fig22Request(io *hio.IO, fd kernel.FD, name string) core.M[core.Unit] {
	req := []byte("GET /" + name + " HTTP/1.1\r\nHost: fig22\r\nConnection: keep-alive\r\n\r\n")
	hb := &httpd.HeadBuffer{}
	buf := make([]byte, 2048)
	var readHead func() core.M[string]
	readHead = func() core.M[string] {
		return core.Bind(io.SockRead(fd, buf), func(n int) core.M[string] {
			if n == 0 {
				return core.Throw[string](fmt.Errorf("fig22: connection closed mid-response"))
			}
			return core.Bind(
				core.NBIOe(func() (string, error) { return hb.Feed(buf[:n]) }),
				func(head string) core.M[string] {
					if head == "" {
						return readHead()
					}
					return core.Return(head)
				},
			)
		})
	}
	var drain func(remaining int64) core.M[core.Unit]
	drain = func(remaining int64) core.M[core.Unit] {
		if remaining <= 0 {
			return core.Skip
		}
		want := int64(len(buf))
		if want > remaining {
			want = remaining
		}
		return core.Bind(io.SockRead(fd, buf[:want]), func(n int) core.M[core.Unit] {
			if n == 0 {
				return core.Throw[core.Unit](fmt.Errorf("fig22: truncated body"))
			}
			return drain(remaining - int64(n))
		})
	}
	send := core.Bind(io.SockSend(fd, req), func(int) core.M[core.Unit] { return core.Skip })
	return core.Bind(core.Then(send, readHead()), func(head string) core.M[core.Unit] {
		return core.Bind(
			core.NBIOe(func() (int64, error) {
				_, length, err := httpd.ParseResponseHead(head)
				return length, err
			}),
			func(length int64) core.M[core.Unit] {
				buffered := int64(hb.Buffered())
				hb.Reset()
				return drain(length - buffered)
			},
		)
	})
}

// Fig22 runs the full sweep.
func Fig22(cfg Fig22Config) []Fig22Point {
	out := make([]Fig22Point, 0, len(cfg.Conns))
	for _, n := range cfg.Conns {
		out = append(out, Fig22Run(cfg, n))
	}
	return out
}
