package bench

import (
	"testing"

	"hybrid/internal/httpd"
)

// TestFig21Deterministic: a cell is a pure function of its configuration —
// adversarial runs replay to the last counter (the figure is a
// determinism gate like fig17/fig19/fig20).
func TestFig21Deterministic(t *testing.T) {
	cfg := Fig21Quick()
	a := Fig21Run(cfg, "slowloris", true)
	b := Fig21Run(cfg, "slowloris", true)
	if a != b {
		t.Fatalf("fig21 cell not reproducible:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFig21DefensesDecideTheOutcome pins the figure's claim on the
// slot-pinning attacks: undefended, the attackers collapse the good
// clients' goodput several-fold; defended, goodput holds within 10% of
// the no-attack baseline and the sheds land on the matching lifecycle
// counter.
func TestFig21DefensesDecideTheOutcome(t *testing.T) {
	cfg := Fig21Quick()
	base := Fig21Run(cfg, "none", false)
	for _, tc := range []struct {
		mode  string
		count func(httpd.LifecycleStats) uint64
	}{
		{"slowloris", func(s httpd.LifecycleStats) uint64 { return s.ShedHeader }},
		{"idle", func(s httpd.LifecycleStats) uint64 { return s.ReapedIdle }},
		{"read-stall", func(s httpd.LifecycleStats) uint64 { return s.ShedWrite }},
	} {
		off := Fig21Run(cfg, tc.mode, false)
		on := Fig21Run(cfg, tc.mode, true)
		if off.GoodputMBps > base.GoodputMBps/4 {
			t.Errorf("%s undefended: goodput %.3f did not collapse (baseline %.3f)",
				tc.mode, off.GoodputMBps, base.GoodputMBps)
		}
		if on.GoodputMBps < base.GoodputMBps*0.9 {
			t.Errorf("%s defended: goodput %.3f below 90%% of baseline %.3f",
				tc.mode, on.GoodputMBps, base.GoodputMBps)
		}
		if off.Sheds.Total() != 0 {
			t.Errorf("%s undefended: lifecycle sheds %+v with defenses off", tc.mode, off.Sheds)
		}
		if n := tc.count(on.Sheds); n == 0 {
			t.Errorf("%s defended: no sheds on the matching counter: %+v", tc.mode, on.Sheds)
		}
	}
}

// TestFig21DefensesInvisibleWithoutAttack: with no attacker, the defended
// and undefended baselines agree exactly — the lifecycle deadlines cost
// well-behaved clients nothing.
func TestFig21DefensesInvisibleWithoutAttack(t *testing.T) {
	cfg := Fig21Quick()
	off := Fig21Run(cfg, "none", false)
	on := Fig21Run(cfg, "none", true)
	if off.GoodputMBps != on.GoodputMBps || off.GoodRequests != on.GoodRequests ||
		off.P99Us != on.P99Us {
		t.Fatalf("defenses changed the no-attack baseline:\noff %+v\non  %+v", off, on)
	}
	if on.Sheds.Total() != 0 {
		t.Fatalf("sheds fired without an attacker: %+v", on.Sheds)
	}
}
