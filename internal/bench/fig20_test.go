package bench

import "testing"

// TestFig20Deterministic: a cell is a pure function of its configuration —
// two runs must agree to the last bit (the figure is a determinism gate).
func TestFig20Deterministic(t *testing.T) {
	cfg := Fig20Quick()
	a := Fig20Cell(cfg, "sack-cubic", 50)
	b := Fig20Cell(cfg, "sack-cubic", 50)
	if a != b {
		t.Fatalf("fig20 cell not reproducible: %v vs %v", a, b)
	}
}

// TestFig20SackBeatsRenoUnderLoss pins the figure's claim at its highest
// loss rate: both SACK variants strictly out-deliver the legacy Reno
// machine at 5% loss.
func TestFig20SackBeatsRenoUnderLoss(t *testing.T) {
	cfg := Fig20Quick()
	reno := Fig20Cell(cfg, "reno", 50)
	for _, v := range []string{"sack-reno", "sack-cubic"} {
		if g := Fig20Cell(cfg, v, 50); g <= reno {
			t.Errorf("%s goodput %v not above reno's %v at 5%% loss", v, g, reno)
		}
	}
}

func TestFig20UnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("fig20Cfg accepted an unknown variant")
		}
	}()
	Fig20Cell(Fig20Quick(), "vegas", 0)
}
