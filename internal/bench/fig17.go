package bench

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/faults"
	"hybrid/internal/hio"
	"hybrid/internal/kernel"
	"hybrid/internal/nptl"
	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// Fig17Config parameterizes the disk head-scheduling test: "each thread
// randomly reads a 4KB block from a 1GB file opened using O_DIRECT
// without caching. Each test reads a total of 512MB."
type Fig17Config struct {
	// FileBytes is the file size. Paper: 1 GB.
	FileBytes int64
	// TotalReadBytes per run. Paper: 512 MB.
	TotalReadBytes int64
	// BlockBytes per read. Paper: 4 KB.
	BlockBytes int
	// NPTLBudget caps baseline stack memory (paper machine: 512 MB →
	// 16 K threads at 32 KB).
	NPTLBudget int64
	// Seed for the offset streams.
	Seed uint64
	// Faults, when active, attaches a deterministic fault injector to
	// the kernel and disk of the hybrid run; reads then get bounded
	// retries, and a block whose retries are exhausted is skipped. Nil
	// or inactive leaves the run byte-for-byte identical to no faults.
	Faults *faults.Config
}

// DefaultFig17 is the paper's configuration.
func DefaultFig17() Fig17Config {
	return Fig17Config{
		FileBytes:      1 << 30,
		TotalReadBytes: 512 << 20,
		BlockBytes:     4096,
		NPTLBudget:     512 << 20,
		Seed:           1,
	}
}

// scaled shrinks the experiment for quick runs, preserving shape.
func (c Fig17Config) scaled(factor int64) Fig17Config {
	c.TotalReadBytes /= factor
	if c.TotalReadBytes < int64(c.BlockBytes)*64 {
		c.TotalReadBytes = int64(c.BlockBytes) * 64
	}
	return c
}

// Fig17Quick is a reduced-volume configuration for tests and testing.B.
func Fig17Quick() Fig17Config { return DefaultFig17().scaled(256) }

// offsets produces the deterministic random block offsets for a thread.
func fig17Offsets(cfg Fig17Config, thread int, reads int) []int64 {
	rng := cfg.Seed ^ (uint64(thread)+1)*0x9E3779B97F4A7C15
	out := make([]int64, reads)
	blocks := cfg.FileBytes / int64(cfg.BlockBytes)
	for i := range out {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		out[i] = int64(rng%uint64(blocks)) * int64(cfg.BlockBytes)
	}
	return out
}

// Fig17Hybrid measures the hybrid runtime: threads monadic, reads via
// sys_aio_read, disk elevator shared. Returns MB/s of virtual time.
func Fig17Hybrid(cfg Fig17Config, threads int) float64 {
	mbps, _ := fig17HybridStats(cfg, threads, disk.CLOOK)
	return mbps
}

// Fig17HybridStats runs Fig17Hybrid and also returns the merged metrics
// snapshot (sched.*, kernel.*, disk.*) taken at the end of the run.
func Fig17HybridStats(cfg Fig17Config, threads int) (float64, stats.Snapshot) {
	return fig17HybridStats(cfg, threads, disk.CLOOK)
}

// Fig17HybridSupervised is the robustness variant: the same workload on
// a panic-trapping runtime, each reader thread under core.Supervise.
// Where the plain run skips a block whose retries are exhausted, the
// supervised run lets the failure kill the thread and the supervisor
// restart it (bounded, with backoff) — the snapshot's supervise.restarts
// and supervise.give_ups count the recoveries. Fault-free, the two
// variants do identical work.
func Fig17HybridSupervised(cfg Fig17Config, threads int) (float64, stats.Snapshot) {
	return fig17Stats(cfg, threads, disk.CLOOK, true)
}

func fig17HybridStats(cfg Fig17Config, threads int, sched disk.Scheduler) (float64, stats.Snapshot) {
	return fig17Stats(cfg, threads, sched, false)
}

func fig17Stats(cfg Fig17Config, threads int, sched disk.Scheduler, supervised bool) (float64, stats.Snapshot) {
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	d := disk.NewWithScheduler(clk, disk.BenchGeometry(), sched)
	fs := kernel.NewFS(d)
	f, err := fs.Create("big", cfg.FileBytes, false)
	if err != nil {
		panic(err)
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk, TrapPanics: supervised})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()
	var in *faults.Injector
	if cfg.Faults.Active() {
		in = faults.New(*cfg.Faults, clk)
		k.SetFaults(in)
		d.SetFaults(in)
	}
	var sup *superviseStats
	if supervised {
		sup = newSuperviseStats()
	}
	mbps := fig17Run(cfg, threads, clk, rt, io, f, in, sup)
	// The run's end is signalled from inside the last thread's trace; the
	// worker is still retiring that thread when the signal arrives, so
	// quiesce before snapshotting or the completion counters race.
	rt.WaitIdle()
	snap := stats.Snapshot{}
	snap.Merge("sched", rt.Stats().Snapshot())
	snap.Merge("kernel", k.Metrics().Snapshot())
	snap.Merge("disk", d.Metrics().Snapshot())
	if in != nil {
		snap.Merge("faults", in.Metrics().Snapshot())
	}
	if sup != nil {
		snap.Merge("supervise", sup.reg.Snapshot())
	}
	return mbps, snap
}

// superviseStats counts the supervisor's restart decisions across the
// run's threads.
type superviseStats struct {
	restarts atomic.Uint64
	giveUps  atomic.Uint64
	reg      *stats.Registry
}

func newSuperviseStats() *superviseStats {
	s := &superviseStats{reg: stats.NewRegistry()}
	s.reg.CounterFunc("restarts", s.restarts.Load)
	s.reg.CounterFunc("give_ups", s.giveUps.Load)
	return s
}

// fig17Run drives the monadic read workload and reports MB/s. With an
// injector attached, each read gets bounded retries with backoff; a
// block the disk refuses to deliver is skipped so the run completes —
// unless sup is non-nil, in which case the exhausted failure kills the
// thread and its supervisor restarts it from the top of its read list.
func fig17Run(cfg Fig17Config, threads int, clk *vclock.VirtualClock, rt *core.Runtime, io *hio.IO, f *kernel.File, in *faults.Injector, sup *superviseStats) float64 {
	totalReads := int(cfg.TotalReadBytes / int64(cfg.BlockBytes))
	perThread, extra := totalReads/threads, totalReads%threads

	var start vclock.Time
	done := make(chan vclock.Time, 1)
	wg := core.NewWaitGroup(threads)
	prog := core.Seq(
		core.Do(func() { start = clk.Now() }),
		core.ForN(threads, func(ti int) core.M[core.Unit] {
			reads := perThread
			if ti < extra {
				reads++
			}
			offs := fig17Offsets(cfg, ti, reads)
			buf := make([]byte, cfg.BlockBytes)
			body := core.ForN(reads, func(i int) core.M[core.Unit] {
				read := io.AIORead(f, offs[i], buf)
				if in != nil {
					read = core.Retry(clk, core.Backoff{
						Attempts: 4,
						Base:     100 * time.Microsecond,
						Factor:   2,
					}, read)
					if sup == nil {
						// Plain degradation: skip the block, keep going.
						read = core.Catch(read, func(error) core.M[int] { return core.Return(0) })
					}
				}
				return core.Bind(read, func(int) core.M[core.Unit] {
					return core.Skip
				})
			})
			if sup != nil {
				// Supervised degradation: a dead thread restarts from the
				// top of its read list, a few times, with backoff.
				body = core.Supervise(clk, core.RestartPolicy{
					MaxRestarts: 3,
					Backoff:     core.Backoff{Base: 200 * time.Microsecond, Factor: 2},
					OnRestart:   func(int, error) { sup.restarts.Add(1) },
					OnGiveUp:    func(error) { sup.giveUps.Add(1) },
				}, body)
			}
			return core.Fork(core.Finally(body, wg.Done()))
		}),
		wg.Wait(),
		core.Do(func() { done <- clk.Now() }),
	)
	rt.Spawn(prog)
	end := <-done
	elapsed := time.Duration(end - start)
	if elapsed <= 0 {
		return math.NaN()
	}
	return float64(cfg.TotalReadBytes) / float64(MB) / elapsed.Seconds()
}

// Fig17NPTL measures the baseline: one kernel thread per concurrent read,
// blocking pread, 32 KB stacks under the memory budget. Returns MB/s or
// NaN when the thread count cannot be spawned (the paper's 16 K wall).
func Fig17NPTL(cfg Fig17Config, threads int) float64 {
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.BenchGeometry()))
	f, err := fs.Create("big", cfg.FileBytes, false)
	if err != nil {
		panic(err)
	}
	rt := nptl.New(k, fs, nptl.Config{MemoryBudget: cfg.NPTLBudget, StackTouch: -1})

	totalReads := int(cfg.TotalReadBytes / int64(cfg.BlockBytes))
	perThread, extra := totalReads/threads, totalReads%threads

	start := clk.Now()
	var spawnFailed bool
	var mu sync.Mutex
	// Freeze virtual time for the whole spawn loop. Without this, threads
	// spawned early could run to completion (their reads finishing on the
	// advancing clock) and release stack budget before the loop ends, so
	// whether a given count fit the budget depended on the host scheduler
	// — the spawn-budget race. With the clock held, no disk completion
	// fires until every thread is spawned, making the budget verdict a
	// pure function of the thread count.
	clk.Enter()
	for ti := 0; ti < threads; ti++ {
		reads := perThread
		if ti < extra {
			reads++
		}
		offs := fig17Offsets(cfg, ti, reads)
		err := rt.Spawn(func(t *nptl.Thread) {
			buf := make([]byte, cfg.BlockBytes)
			for i := 0; i < reads; i++ {
				if _, err := t.Pread(f, buf, offs[i]); err != nil {
					mu.Lock()
					spawnFailed = true
					mu.Unlock()
					return
				}
			}
		})
		if err != nil {
			spawnFailed = true
			break
		}
	}
	clk.Exit()
	rt.Wait()
	if spawnFailed {
		return math.NaN()
	}
	elapsed := time.Duration(clk.Now() - start)
	if elapsed <= 0 {
		return math.NaN()
	}
	return float64(cfg.TotalReadBytes) / float64(MB) / elapsed.Seconds()
}

// Fig17 runs both systems across the given thread counts.
func Fig17(cfg Fig17Config, threadCounts []int) []Point {
	out := make([]Point, 0, len(threadCounts))
	for _, n := range threadCounts {
		out = append(out, Point{X: n, Hybrid: Fig17Hybrid(cfg, n), NPTL: Fig17NPTL(cfg, n)})
	}
	return out
}

// Fig17HybridFCFS is the ablation run: the same hybrid workload on a disk
// that services requests in arrival order. The gap between this and
// Fig17Hybrid isolates the elevator as the mechanism behind the figure.
func Fig17HybridFCFS(cfg Fig17Config, threads int) float64 {
	mbps, _ := fig17HybridStats(cfg, threads, disk.FCFS)
	return mbps
}
