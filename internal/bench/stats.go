package bench

import (
	"encoding/json"
	"io"
	"math"

	"hybrid/internal/stats"
)

// RunStats is the machine-readable record of one benchmark run: which
// figure, which system, the x-position, the headline throughput, and the
// merged metrics snapshot collected at the end of the run. Tools consume
// these blocks to correlate a figure's curve with the scheduler and I/O
// behaviour underneath it (e.g. Figure 17's rising MB/s against
// disk.queue_depth and disk.seek_blocks).
type RunStats struct {
	Figure string         `json:"figure"`
	System string         `json:"system"`
	X      int            `json:"x"`
	MBps   float64        `json:"mbps"`
	Stats  stats.Snapshot `json:"stats"`
}

// WriteRunStats emits rs as one indented JSON object followed by a
// newline. A NaN throughput (a system that could not run at this x) is
// written as -1, since JSON has no NaN.
func WriteRunStats(w io.Writer, rs RunStats) error {
	if math.IsNaN(rs.MBps) {
		rs.MBps = -1
	}
	b, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
