package bench

import (
	"encoding/json"
	"io"
	"math"

	"hybrid/internal/stats"
)

// RunStats is the machine-readable record of one benchmark run: which
// figure, which system, the x-position, the headline throughput, and the
// merged metrics snapshot collected at the end of the run. Tools consume
// these blocks to correlate a figure's curve with the scheduler and I/O
// behaviour underneath it (e.g. Figure 17's rising MB/s against
// disk.queue_depth and disk.seek_blocks).
//
// MBps is throughput in *virtual* time — the deterministic model the
// figures are drawn in; it cannot move when only allocation behaviour
// changes. The optional fields carry the wall-clock side of a run
// (BENCH_fig17.json / BENCH_fig19.json perf trajectory): WallMS and
// WallMBps measure the real cost of simulating the run, P99Us is the
// virtual-time request latency tail, and NsPerOp/AllocsPerOp/BytesPerOp
// record a Go microbenchmark's -benchmem triple.
type RunStats struct {
	Figure string  `json:"figure"`
	System string  `json:"system"`
	Label  string  `json:"label,omitempty"` // trajectory tag, e.g. "pre-pr4"
	X      int     `json:"x"`
	MBps   float64 `json:"mbps"`

	P99Us       int64   `json:"p99_us,omitempty"`        // virtual-time p99 request latency
	WallMS      float64 `json:"wall_ms,omitempty"`       // wall-clock duration of the run
	WallMBps    float64 `json:"wall_mbps,omitempty"`     // bytes served per wall-clock second
	NsPerOp      int64   `json:"ns_per_op,omitempty"`      // microbenchmark wall ns/op
	AllocsPerOp  int64   `json:"allocs_per_op,omitempty"`  // microbenchmark heap allocations/op
	BytesPerOp   int64   `json:"bytes_per_op,omitempty"`   // microbenchmark heap bytes/op
	Speedup      float64 `json:"speedup,omitempty"`        // wall throughput relative to Workers=1
	BytesPerConn float64 `json:"bytes_per_conn,omitempty"` // live heap per parked connection (fig22)

	Stats stats.Snapshot `json:"stats,omitempty"`
}

// WriteRunStats emits rs as one indented JSON object followed by a
// newline. A NaN throughput (a system that could not run at this x) is
// written as -1, since JSON has no NaN.
func WriteRunStats(w io.Writer, rs RunStats) error {
	if math.IsNaN(rs.MBps) {
		rs.MBps = -1
	}
	b, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
