package bench

import (
	"math"
	"sync"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/hio"
	"hybrid/internal/kernel"
	"hybrid/internal/nptl"
	"hybrid/internal/vclock"
)

// Fig18Config parameterizes the FIFO-pipe scalability test: "128 pairs of
// active threads … one thread sends 32KB data to the other thread,
// receives 32KB data from the other thread and repeats this conversation.
// The buffer size of each FIFO pipe is 4KB. In addition … there are many
// idle threads in the program waiting for epoll events on idle FIFO
// pipes." This benchmark is CPU/memory-bound and runs on the wall clock.
type Fig18Config struct {
	// Pairs of active threads. Paper: 128.
	Pairs int
	// MessageBytes per direction per round. Paper: 32 KB.
	MessageBytes int
	// PipeBytes is the FIFO buffer. Paper: 4 KB.
	PipeBytes int
	// Rounds per pair per run (the paper transfers 64 GB per run; scale
	// with this).
	Rounds int
	// NPTLBudget caps baseline thread stacks (512 MB → 16 K threads).
	NPTLBudget int64
	// Workers is the hybrid scheduler's worker count.
	Workers int
}

// DefaultFig18 is a practical configuration (the paper's full 64 GB per
// run is scaled down; throughput is a rate, so volume only affects noise).
func DefaultFig18() Fig18Config {
	return Fig18Config{
		Pairs:        128,
		MessageBytes: 32 * 1024,
		PipeBytes:    4096,
		Rounds:       32,
		NPTLBudget:   512 << 20,
		Workers:      2,
	}
}

// Fig18Quick is reduced for tests.
func Fig18Quick() Fig18Config {
	c := DefaultFig18()
	c.Pairs = 16
	c.Rounds = 8
	return c
}

// totalBytes is the volume counted toward throughput (both directions of
// every pair).
func (c Fig18Config) totalBytes() int64 {
	return int64(c.Pairs) * int64(c.Rounds) * int64(c.MessageBytes) * 2
}

// Fig18Hybrid measures the hybrid runtime with the given number of idle
// threads parked in sys_epoll_wait.
func Fig18Hybrid(cfg Fig18Config, idle int) float64 {
	clk := vclock.NewReal()
	k := kernel.New(clk)
	rt := core.NewRuntime(core.Options{Workers: cfg.Workers, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, nil)
	defer io.Close()

	// Idle threads: one per idle pipe, waiting for an event that never
	// comes.
	for i := 0; i < idle; i++ {
		rfd, _ := k.NewPipe(cfg.PipeBytes)
		rt.Spawn(core.Then(io.EpollWait(rfd, kernel.EventRead), core.Skip))
	}

	wg := core.NewWaitGroup(cfg.Pairs * 2)
	done := make(chan struct{})
	var prog core.M[core.Unit] = core.Skip
	for p := 0; p < cfg.Pairs; p++ {
		aToB1, aToB2 := k.NewPipe(cfg.PipeBytes) // r, w
		bToA1, bToA2 := k.NewPipe(cfg.PipeBytes)
		bufA := make([]byte, cfg.MessageBytes)
		bufB := make([]byte, cfg.MessageBytes)
		// Thread A: send then receive; thread B: receive then send. Each
		// side is a flat pump over two cell computations applied once per
		// thread, so a round re-forces cached traces instead of rebuilding
		// the Figure-10 retry closures per 4 KB pipe-buffer transfer.
		threadA := core.Finally(fifoPumpM(
			io.SockSendCell(aToB2, &bufA), io.SockReadFullCell(bToA1, &bufA),
			cfg.Rounds), wg.Done())
		threadB := core.Finally(fifoPumpM(
			io.SockReadFullCell(aToB1, &bufB), io.SockSendCell(bToA2, &bufB),
			cfg.Rounds), wg.Done())
		prog = core.Seq(prog, core.Fork(threadA), core.Fork(threadB))
	}
	start := time.Now()
	rt.Spawn(core.Seq(prog, wg.Wait(), core.Do(func() { close(done) })))
	<-done
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return math.NaN()
	}
	return float64(cfg.totalBytes()) / float64(MB) / elapsed.Seconds()
}

// fifoPumpM is the hand-flattened state machine for one fig18 endpoint:
// run first then second, cfg.Rounds times. Both halves are applied to
// their continuations exactly once, at M-application time, and their
// traces re-forced every round through the pump's embedded trampoline
// node — the whole conversation allocates one pump, one send state, and
// one receive state per thread, regardless of round count or message
// size. The node sequence matches the naive
// ForN(rounds, Then(first, second)) spelling.
func fifoPumpM(first, second core.M[int], rounds int) core.M[core.Unit] {
	if rounds <= 0 {
		return core.Skip
	}
	return func(k func(core.Unit) core.Trace) core.Trace {
		s := &fifoPump{rounds: rounds, k: k}
		s.node.Effect = s.bounce
		s.second = second(s.afterSecond)
		s.first = first(s.afterFirst)
		return s.first
	}
}

type fifoPump struct {
	first  core.Trace
	second core.Trace
	round  int
	rounds int
	k      func(core.Unit) core.Trace
	node   core.NBIONode
}

func (s *fifoPump) afterFirst(int) core.Trace  { return s.second }
func (s *fifoPump) afterSecond(int) core.Trace { return &s.node }

func (s *fifoPump) bounce() core.Trace {
	round := s.round + 1
	if round >= s.rounds {
		s.round = 0 // reset: a retained trace may replay this pump
		return s.k(core.Unit{})
	}
	s.round = round
	return s.first
}

// Fig18NPTL measures the baseline: one kernel thread per endpoint with
// blocking pipe I/O, stack-touch cache pollution per switch, and idle
// threads blocked in reads on idle pipes.
func Fig18NPTL(cfg Fig18Config, idle int) float64 {
	clk := vclock.NewReal()
	k := kernel.New(clk)
	rt := nptl.New(k, nil, nptl.Config{MemoryBudget: cfg.NPTLBudget})

	// Idle threads block reading pipes that never fill. They are
	// released at the end by closing the write ends.
	idleWrites := make([]kernel.FD, 0, idle)
	for i := 0; i < idle; i++ {
		rfd, wfd := k.NewPipe(cfg.PipeBytes)
		idleWrites = append(idleWrites, wfd)
		if err := rt.Spawn(func(t *nptl.Thread) {
			buf := make([]byte, 1)
			t.Read(rfd, buf)
		}); err != nil {
			return math.NaN() // over the thread budget: no data point
		}
	}

	var wg sync.WaitGroup
	spawn := func(fn func(t *nptl.Thread)) bool {
		wg.Add(1)
		err := rt.Spawn(func(t *nptl.Thread) {
			defer wg.Done()
			fn(t)
		})
		if err != nil {
			wg.Done()
			return false
		}
		return true
	}

	ok := true
	start := time.Now()
	for p := 0; p < cfg.Pairs && ok; p++ {
		aToB1, aToB2 := k.NewPipe(cfg.PipeBytes)
		bToA1, bToA2 := k.NewPipe(cfg.PipeBytes)
		ok = ok && spawn(func(t *nptl.Thread) {
			buf := make([]byte, cfg.MessageBytes)
			for r := 0; r < cfg.Rounds; r++ {
				t.WriteAll(aToB2, buf)
				t.ReadFull(bToA1, buf)
			}
		})
		ok = ok && spawn(func(t *nptl.Thread) {
			buf := make([]byte, cfg.MessageBytes)
			for r := 0; r < cfg.Rounds; r++ {
				t.ReadFull(aToB1, buf)
				t.WriteAll(bToA2, buf)
			}
		})
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, wfd := range idleWrites {
		k.Close(wfd)
	}
	rt.Wait()
	if !ok {
		return math.NaN()
	}
	if elapsed <= 0 {
		return math.NaN()
	}
	return float64(cfg.totalBytes()) / float64(MB) / elapsed.Seconds()
}

// Fig18 runs both systems across the idle-thread counts.
func Fig18(cfg Fig18Config, idleCounts []int) []Point {
	out := make([]Point, 0, len(idleCounts))
	for _, n := range idleCounts {
		out = append(out, Point{X: n, Hybrid: Fig18Hybrid(cfg, n), NPTL: Fig18NPTL(cfg, n)})
	}
	return out
}
