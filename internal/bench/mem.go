package bench

import (
	"runtime"
	"sync"
	"time"

	"hybrid/internal/core"
)

// MemPoint is one measurement of the thread memory test (§5.1): the live
// heap cost of N parked monadic threads.
type MemPoint struct {
	Threads        int
	BytesPerThread float64
	TotalBytes     uint64
}

// MemTest reproduces the paper's memory-consumption experiment: launch N
// monadic threads whose whole state is a trace and an empty handler
// stack, and measure live heap per thread after garbage collection. The
// paper's threads "just loop calling sys_yield" and were measured after
// major GC at 48 bytes each; here the threads yield a few times and then
// park in a Suspend that never resumes, which pins exactly the same
// per-thread state (TCB + continuation closure) while letting the heap
// quiesce for a stable measurement.
func MemTest(threads int) MemPoint {
	rt := core.NewRuntime(core.Options{Workers: 1, BatchSteps: 1024})
	defer rt.Shutdown()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Each parked thread's resume hook is retained, as a real event
	// source (epoll registration, mutex queue) would retain it: the live
	// set measured below is TCB + suspended continuation, the same state
	// the paper counts at 48 bytes per Haskell thread.
	holders := make([]func(core.Unit), 0, threads)
	var mu sync.Mutex
	park := core.Suspend(func(resume func(core.Unit)) {
		mu.Lock()
		holders = append(holders, resume)
		mu.Unlock()
	})
	thread := core.Seq(core.Yield(), core.Yield(), park)
	for i := 0; i < threads; i++ {
		rt.Spawn(thread)
	}
	// A sentinel spawned last: the shared ready queue is FIFO and Yield
	// requeues at the back, so when the sentinel finishes its third
	// dispatch every earlier thread has finished its third (the park).
	done := make(chan struct{})
	rt.Spawn(core.Seq(core.Yield(), core.Yield(), core.Do(func() { close(done) })))
	<-done
	// Let the last dispatches drain, then force a major GC and measure.
	time.Sleep(50 * time.Millisecond)
	runtime.GC()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	live := after.HeapAlloc - before.HeapAlloc
	runtime.KeepAlive(holders)
	return MemPoint{
		Threads:        threads,
		BytesPerThread: float64(live) / float64(threads),
		TotalBytes:     live,
	}
}
