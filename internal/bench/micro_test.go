package bench

import "testing"

// go test -bench wrappers over the shared benchmark bodies (micro.go);
// cmd/benchjson runs the same bodies programmatically.

func BenchmarkServeCached(b *testing.B)      { BenchServeCached(b) }
func BenchmarkSegmentRoundtrip(b *testing.B) { BenchSegmentRoundtrip(b) }
func BenchmarkSpawnRecycle(b *testing.B)     { BenchSpawnRecycle(b) }
func BenchmarkTimerWheelRearm(b *testing.B)  { BenchTimerWheelRearm(b) }
func BenchmarkStepsPerSec(b *testing.B)      { BenchStepsPerSec(b) }
func BenchmarkStepsPerSecNaive(b *testing.B) { BenchStepsPerSecNaive(b) }
