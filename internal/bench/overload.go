package bench

import (
	"time"

	"hybrid/internal/core"
	"hybrid/internal/faults"
	"hybrid/internal/httpd"
	"hybrid/internal/loadgen"
	"hybrid/internal/overload"
	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// This file is the overload companion to Figure 19: instead of sweeping
// connection counts at a matched load, it holds the server's capacity
// fixed and multiplies the offered load past it — the regime the paper's
// figure stops short of, where a robust server must degrade gracefully
// rather than collapse. The "protected" runs enable the httpd overload
// machinery (admission bound at the capacity point plus a circuit
// breaker armed on the disk path); the unprotected runs are the plain
// server from Fig19Hybrid. The headline numbers are goodput (bytes from
// 2xx responses over virtual elapsed time) and client-observed p99
// latency.

// OverloadRun is one cell of the overload table.
type OverloadRun struct {
	// Conns is the capacity point: the admission bound (protected runs)
	// and the 1× client count.
	Conns int
	// OfferedX multiplies the offered load: Conns*OfferedX concurrent
	// clients, each with the same per-client request budget.
	OfferedX int
	// Protected reports whether the overload machinery was on.
	Protected bool

	GoodputMBps float64
	P99         time.Duration
	Requests    uint64
	Errors      uint64
	Shed        uint64 // fast 503s from the tripped breaker
	Snapshot    stats.Snapshot
}

// Fig19Overload runs the web-server workload at OfferedX times the
// capacity point. Clients retry refused connects with backoff (an
// overloaded listener's backlog fills by design), so every client
// eventually gets its requests in or fails for a real reason.
func Fig19Overload(cfg Fig19Config, conns, offeredX int, protected bool) OverloadRun {
	clk, k, fs, rt, io := fig19Site(cfg)
	defer rt.Shutdown()
	defer io.Close()
	scfg := httpd.ServerConfig{
		CacheBytes: cfg.CacheBytes,
		ChunkBytes: int(cfg.FileBytes),
	}
	if protected {
		scfg.Overload = &httpd.OverloadConfig{
			MaxConns: conns,
			// A shallow backlog keeps excess load out of the building:
			// a connection the server cannot serve soon is refused (the
			// client backs off and retries) instead of queueing with an
			// unanswered request — that queue wait is exactly what blows
			// up the unprotected p99.
			Backlog: 2,
			// The breaker guards the blocking-disk path: under pure
			// overload admission keeps disk latency in budget and the
			// breaker stays closed; with faults injected it trips and
			// sheds uncached GETs as fast 503s.
			Breaker: &overload.BreakerConfig{
				FailureThreshold: 8,
				Cooldown:         10 * time.Millisecond,
				ProbeSuccesses:   2,
			},
		}
	}
	var in *faults.Injector
	if cfg.Faults.Active() {
		in = faults.New(*cfg.Faults, clk)
		k.SetFaults(in)
		fs.Disk().SetFaults(in)
		scfg.DiskRetries = 2
	}
	srv := httpd.NewServer(io, scfg)
	serve, err := srv.BindAndServe("web:80")
	if err != nil {
		panic(err)
	}
	rt.Spawn(serve)

	per := cfg.TotalRequests / conns
	if per < 1 {
		per = 1
	}
	gen := loadgen.New(io, loadgen.Config{
		Addr:              "web:80",
		Clients:           conns * offeredX,
		Files:             cfg.effectiveFiles(),
		RequestsPerClient: per,
		Seed:              cfg.Seed,
		RTT:               cfg.RTT,
		Bandwidth:         cfg.Bandwidth,
		MeasureLatency: true,
		// Refused connects retry for a long time (the schedule caps at
		// 100× the base): under admission control the whole excess wave
		// must eventually fit through the capacity point.
		ConnectRetries: 400,
		ConnectBackoff: time.Millisecond,
	})
	start := clk.Now()
	done := make(chan struct{})
	var end vclock.Time
	rt.Spawn(core.Then(gen.Run(), core.Do(func() {
		end = clk.Now() // capture before the idle clock races ahead
		close(done)
	})))
	<-done
	elapsed := time.Duration(end - start)
	// Quiesce to the accept-loop thread before reading counters: handler
	// retirements may still be in flight on other workers.
	rt.WaitLive(1)

	run := OverloadRun{
		Conns:     conns,
		OfferedX:  offeredX,
		Protected: protected,
		Requests:  gen.Requests.Load(),
		Errors:    gen.Errors.Load(),
		P99:       time.Duration(gen.Latency().Quantile(0.99)) * time.Microsecond,
	}
	if elapsed > 0 {
		run.GoodputMBps = float64(gen.Goodput.Load()) / float64(MB) / elapsed.Seconds()
	}
	snap := stats.Snapshot{}
	snap.Merge("sched", rt.Stats().Snapshot())
	snap.Merge("kernel", k.Metrics().Snapshot())
	snap.Merge("disk", fs.Disk().Metrics().Snapshot())
	snap.Merge("httpd", srv.Metrics().Snapshot())
	if lim := srv.Limiter(); lim != nil {
		snap.Merge("admission", lim.Metrics().Snapshot())
	}
	if b := srv.Breaker(); b != nil {
		snap.Merge("breaker", b.Metrics().Snapshot())
	}
	if in != nil {
		snap.Merge("faults", in.Metrics().Snapshot())
	}
	run.Shed = uint64(snap.Counter("httpd.shed_fast"))
	run.Snapshot = snap
	return run
}

// Fig19OverloadTable runs the full grid: each offered-load factor with
// protection off and on.
func Fig19OverloadTable(cfg Fig19Config, conns int, factors []int) []OverloadRun {
	out := make([]OverloadRun, 0, 2*len(factors))
	for _, x := range factors {
		out = append(out, Fig19Overload(cfg, conns, x, false))
		out = append(out, Fig19Overload(cfg, conns, x, true))
	}
	return out
}
