package bench

import (
	"testing"

	"hybrid/internal/faults"
)

// The overload table's headline claim: at 4× the capacity point, the
// protected server's goodput stays within 20% of its 1× figure and its
// client-observed p99 stays at the 1× level, while the unprotected
// server's tail stretches with the offered load.
func TestFig19OverloadProtectionBoundsTail(t *testing.T) {
	cfg := Fig19Quick()
	const conns = 32

	base := Fig19Overload(cfg, conns, 1, true)
	over := Fig19Overload(cfg, conns, 4, true)
	bare := Fig19Overload(cfg, conns, 4, false)

	if base.Errors != 0 || over.Errors != 0 {
		t.Fatalf("client errors under protection: 1x=%d 4x=%d", base.Errors, over.Errors)
	}
	if over.GoodputMBps < 0.8*base.GoodputMBps {
		t.Fatalf("goodput collapsed under 4x load: %.2f MB/s vs %.2f at 1x",
			over.GoodputMBps, base.GoodputMBps)
	}
	// The histogram's power-of-two buckets make "same bucket" the
	// precise version of "p99 did not grow": allow one bucket of slack.
	if over.P99 > 2*base.P99 {
		t.Fatalf("p99 %v at protected 4x, want <= 2x the 1x p99 %v", over.P99, base.P99)
	}
	if bare.P99 <= over.P99 {
		t.Fatalf("unprotected 4x p99 %v not worse than protected %v — overload regime not reached",
			bare.P99, over.P99)
	}
	// Back-pressure is visible where it should be: refused connects at
	// the shallow backlog, zero at the unprotected server.
	if over.Snapshot.Counter("kernel.backlog_rejects") == 0 {
		t.Fatal("no backlog rejects at 4x under admission control")
	}
	if r := over.Requests; r != bare.Requests {
		t.Fatalf("protected run completed %d requests, unprotected %d — retries lost work",
			r, bare.Requests)
	}
}

// Fault-free, the supervised Figure 17 run does exactly the plain run's
// work: same throughput, zero restarts.
func TestFig17SupervisedMatchesPlainWhenFaultFree(t *testing.T) {
	cfg := Fig17Quick()
	plain := Fig17Hybrid(cfg, 16)
	sup, snap := Fig17HybridSupervised(cfg, 16)
	if sup != plain {
		t.Fatalf("supervised %.6f MB/s != plain %.6f with no faults", sup, plain)
	}
	if r := snap.Counter("supervise.restarts"); r != 0 {
		t.Fatalf("restarts = %d with no faults, want 0", r)
	}
}

// With an aggressive fault plan, some reader threads exhaust their read
// retries; under supervision those deaths become counted restarts and
// the run still completes.
func TestFig17SupervisedRestartsUnderFaults(t *testing.T) {
	cfg := Fig17Quick()
	cfg.Faults = &faults.Config{
		Seed:  5,
		Rates: map[faults.Op]float64{faults.DiskRead: 0.55},
	}
	mbps, snap := Fig17HybridSupervised(cfg, 16)
	if mbps <= 0 {
		t.Fatalf("supervised faulty run reported %.6f MB/s", mbps)
	}
	restarts := snap.Counter("supervise.restarts")
	if restarts == 0 {
		t.Fatal("no supervisor restarts at a 55% disk fault rate; test is vacuous")
	}
	// Give-ups are allowed (the budget is bounded) but must be counted,
	// never leaked as uncaught errors — the run returning at all attests
	// to that, since an uncaught error would leave the WaitGroup short.
	t.Logf("restarts=%d give_ups=%d", restarts, snap.Counter("supervise.give_ups"))
}
