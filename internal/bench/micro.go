package bench

import (
	"fmt"
	"testing"

	"hybrid/internal/bufpool"
	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/iovec"
	"hybrid/internal/kernel"
	"hybrid/internal/tcp"
	"hybrid/internal/timerwheel"
	"hybrid/internal/vclock"
)

// This file holds the hot-path microbenchmark bodies. They live in a
// non-test file so cmd/benchjson can run them programmatically via
// testing.Benchmark and record allocs/op and bytes/op into the
// BENCH_*.json trajectory; internal/bench's *_test.go wraps them as
// ordinary BenchmarkXxx functions for `go test -bench`.

// MicroFileBytes is the payload size served by BenchServeCached — the
// figures' 16 KB file.
const MicroFileBytes = 16 * 1024

// scriptedTransport is an httpd.Transport whose reads replay the same
// request head n times and whose writes are discarded after accounting.
// It isolates the server's per-request serve path (head parse, cache
// lookup, response assembly) from any socket machinery.
type scriptedTransport struct {
	req    []byte
	n      int
	wrote  uint64
	closed bool
}

func (s *scriptedTransport) Read(p []byte) core.M[int] {
	return core.NBIO(func() int {
		if s.n == 0 {
			return 0
		}
		s.n--
		return copy(p, s.req)
	})
}

func (s *scriptedTransport) Write(p []byte) core.M[int] {
	return core.NBIO(func() int {
		s.wrote += uint64(len(p))
		return len(p)
	})
}

func (s *scriptedTransport) Close() core.M[core.Unit] {
	return core.Do(func() { s.closed = true })
}

// WriteCell makes scriptedTransport an httpd.CellWriter so BenchServeCached
// exercises the server's flattened fast path the way socket transports do:
// the M is applied once per connection and its trace re-forced per response,
// reading whatever *cell holds at force time.
func (s *scriptedTransport) WriteCell(cell *[]byte) core.M[int] {
	return core.NBIO(func() int {
		p := *cell
		s.wrote += uint64(len(p))
		return len(p)
	})
}

// BenchServeCached measures the cached-serve path end to end: one
// persistent connection issuing b.N keep-alive GETs that all hit the
// cache. Per op: request head parse, cache lookup, response head, body
// write — the path Figure 19's mostly-cached workload spends its time
// on.
func BenchServeCached(b *testing.B) {
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.BenchGeometry()))
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()
	srv := httpd.NewServer(io, httpd.ServerConfig{CacheBytes: 1 << 20})

	payload := make([]byte, MicroFileBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	srv.Cache().Put("file-0", payload)
	req := []byte("GET /file-0 HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n")

	b.SetBytes(MicroFileBytes)
	b.ReportAllocs()
	b.ResetTimer()
	t := &scriptedTransport{req: req, n: b.N}
	done := make(chan struct{})
	rt.Spawn(core.Then(srv.ServeTransport(t), core.Do(func() { close(done) })))
	<-done
	b.StopTimer()
	want := uint64(b.N) * uint64(MicroFileBytes)
	if t.wrote < want {
		b.Fatalf("served %d body bytes, want >= %d", t.wrote, want)
	}
}

// BenchSegmentRoundtrip measures one TCP segment's trip through the wire
// boundary exactly as the stack performs it: encode into a pooled wire
// buffer (the sender path), decode and verify with the payload aliasing
// the buffer (the receiver path). The pooled buffer is returned only
// after the decoded view is dropped, like a receiver consuming in place.
func BenchSegmentRoundtrip(b *testing.B) {
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	v := iovec.FromBytes(payload)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		seg := &tcp.Segment{
			SrcPort: 4242, DstPort: 80,
			Seq: uint32(i), Ack: uint32(i) + 1,
			Flags: tcp.FlagACK, Window: 1 << 16,
			Payload: v,
		}
		wire := bufpool.Get(seg.WireLen())
		seg.EncodeTo(wire)
		d, err := tcp.Decode(wire)
		if err != nil {
			b.Fatal(err)
		}
		sink += d.Seq + uint32(d.Payload.Len())
		bufpool.Put(wire)
	}
	if sink == 1 {
		b.Fatal("impossible") // keep the loop's results live
	}
}

// BenchSpawnRecycle measures thread spawn/death overhead: b.N trivial
// threads through the scheduler (TCB allocation, enqueue, dispatch,
// termination accounting).
func BenchSpawnRecycle(b *testing.B) {
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: vclock.NewVirtual()})
	defer rt.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Spawn(core.Skip)
	}
	rt.WaitIdle()
}

// BenchTimerWheelRearm measures the per-ACK timer maintenance the TCP
// sender performs on every acknowledgement: cancel the pending RTO and
// arm a fresh one. The wheel is pre-loaded with 64k live deadlines — a
// fleet of idle connections each holding a reap timer — so the op cost
// is pinned at population, where a binary heap would pay O(log n) per
// rearm and the wheel pays a pointer splice.
func BenchTimerWheelRearm(b *testing.B) {
	clk := vclock.NewVirtual()
	clk.Enter() // Schedule/Stop require holding the clock; time stays frozen
	defer clk.Exit()
	w := timerwheel.New(clk)
	nop := func() {}
	const pending = 64 * 1024
	for i := 0; i < pending; i++ {
		// Spread the background deadlines across slots and levels the way
		// a mixed idle/retransmit population does.
		w.Schedule(vclock.Duration(10+i%4096)*1e6, nop)
	}
	rto := 200 * vclock.Duration(1e6)
	t := w.Schedule(rto, nop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Stop()
		t = w.Schedule(rto+vclock.Duration(i%64)*1e6, nop)
	}
	b.StopTimer()
	if got := w.Stats().Stopped; got < uint64(b.N) {
		b.Fatalf("stopped %d timers, want >= %d", got, b.N)
	}
}

// benchSpin runs a tight loop of b.N NBIO probes under the given loop
// combinator on a one-worker virtual-clock runtime and reports trampoline
// steps/sec and allocs/step. Each iteration costs two trace nodes (the
// body's NBIO probe and the loop's trampoline bounce), so steps = 2·b.N.
func benchSpin(b *testing.B, loop func(core.M[bool]) core.M[core.Unit]) {
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: vclock.NewVirtual()})
	defer rt.Shutdown()
	n := 0
	body := core.NBIO(func() bool {
		n++
		return n < b.N
	})
	done := make(chan struct{})
	b.ReportAllocs()
	b.ResetTimer()
	rt.Spawn(core.Then(loop(body), core.Do(func() { close(done) })))
	<-done
	b.StopTimer()
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "steps/sec")
	if n < b.N {
		b.Fatalf("loop ran %d iterations, want %d", n, b.N)
	}
}

// BenchStepsPerSec measures raw trampoline throughput of the fused Loop
// spine: a thread spinning on an NBIO probe, zero allocations per
// iteration in steady state.
func BenchStepsPerSec(b *testing.B) { benchSpin(b, core.Loop) }

// BenchStepsPerSecNaive is the same spin through the naive closure-built
// Loop spelling — the "before" row of the fused/naive pair, and a live
// measurement of what continuation flattening buys.
func BenchStepsPerSecNaive(b *testing.B) { benchSpin(b, core.NaiveLoop) }

// Micro is one microbenchmark with the name its test wrapper exports.
type Micro struct {
	Name string
	Fn   func(*testing.B)
}

// Micros lists the hot-path microbenchmarks in a stable order for the
// JSON harness.
func Micros() []Micro {
	return []Micro{
		{"BenchmarkServeCached", BenchServeCached},
		{"BenchmarkSegmentRoundtrip", BenchSegmentRoundtrip},
		{"BenchmarkSpawnRecycle", BenchSpawnRecycle},
		{"BenchmarkTimerWheelRearm", BenchTimerWheelRearm},
	}
}

// CoreMicros lists the monadic-core microbenchmarks recorded in
// BENCH_core.json (Figure "core"): the fused trampoline spin and its
// naive-closure counterpart, kept as a pair so the trajectory shows the
// flattening delta directly.
func CoreMicros() []Micro {
	return []Micro{
		{"BenchmarkStepsPerSec", BenchStepsPerSec},
		{"BenchmarkStepsPerSecNaive", BenchStepsPerSecNaive},
	}
}

// RunMicro executes one microbenchmark with testing.Benchmark and
// returns its result as a RunStats row (Figure "micro").
func RunMicro(m Micro, label string) RunStats {
	r := testing.Benchmark(m.Fn)
	mbps := 0.0
	if r.T > 0 && r.Bytes > 0 {
		mbps = float64(r.Bytes) * float64(r.N) / float64(MB) / r.T.Seconds()
	}
	return RunStats{
		Figure:      "micro",
		System:      m.Name,
		Label:       label,
		X:           r.N,
		MBps:        mbps,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// FormatMicro renders a benchmark row like `go test -bench` output.
func FormatMicro(rs RunStats) string {
	return fmt.Sprintf("%-28s %10d ops %10d ns/op %8.2f MB/s %8d B/op %6d allocs/op",
		rs.System, rs.X, rs.NsPerOp, rs.MBps, rs.BytesPerOp, rs.AllocsPerOp)
}
