package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/vclock"
)

// ConnMemPoint is one measurement of per-connection memory: the live heap
// cost of N established server connections, parked versus active.
type ConnMemPoint struct {
	Conns int
	// ParkedBytesPerConn is the cost of an idle keep-alive connection:
	// one served request behind it, the handler parked on the next head,
	// and (lifecycle mode) one armed timer-wheel idle deadline.
	ParkedBytesPerConn float64
	// ActiveBytesPerConn is the cost of a connection mid-response: the
	// peer is not reading, so the handler is blocked in a write with the
	// socket buffer full and a response chunk in flight.
	ActiveBytesPerConn float64
}

// ConnMemTest measures per-connection live heap for parked and active
// connections — the first capacity measurement for the C10M target. Each
// phase builds a fresh lifecycle-enabled server, establishes conns
// connections into the target state, freezes virtual time (so armed
// wheel deadlines are pinned state, not events), and measures major-GC
// live heap against the empty-server baseline.
//
// The figure includes both halves of each connection — the kernel-sim
// socket rings plus the client thread — so it measures the whole
// simulated connection. The rings are elastic chunked buffers
// (internal/kernel/pipe.go): logical capacity 64 KB per direction, but
// segments are pooled and released on drain, so a parked keep-alive
// connection holds no ring memory at all and the figure is dominated by
// what remains — the handler's pooled read buffer, the client's drain
// buffer, two monadic threads, the FD table entries, and an armed wheel
// timer. (The old flat rings allocated 2 × 64 KB eagerly at connect and
// put the parked figure at 137.7 KB/conn; elastic rings put it under
// 8 KB, which is what makes the Figure 22 million-connection sweep fit
// in memory.) An active connection still pays for the buffered bytes
// actually in flight: a stalled 256 KB response fills the server's send
// ring to its logical capacity.
func ConnMemTest(conns int) ConnMemPoint {
	return ConnMemPoint{
		Conns:              conns,
		ParkedBytesPerConn: connMemPhase(conns, false),
		ActiveBytesPerConn: connMemPhase(conns, true),
	}
}

func connMemPhase(conns int, active bool) float64 {
	clk := vclock.NewVirtual()
	// Freeze virtual time for the whole phase: connection setup and
	// cache-hit serving need no clock, and the hold keeps every armed
	// lifecycle deadline parked on the wheel instead of firing while the
	// heap is being measured.
	clk.Enter()
	defer clk.Exit()

	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.DefaultGeometry()))
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()

	// Parked connections finish one small response; active ones stall
	// inside a response bigger than the socket buffer's logical capacity.
	size := int64(512)
	if active {
		size = 256 * 1024
	}
	if _, err := fs.Create("conn-mem", size, false); err != nil {
		panic(err)
	}
	srv := httpd.NewServer(io, httpd.ServerConfig{
		CacheBytes: 1 << 20,
		// The listen backlog must hold every client: all conns connect
		// before the accept loop gets a dispatch turn, and with virtual
		// time frozen a refused connect cannot back off and retry.
		Overload: &httpd.OverloadConfig{Backlog: conns + 16},
		Lifecycle: &httpd.LifecycleConfig{
			IdleTimeout:       time.Hour,
			HeaderTimeout:     time.Hour,
			WriteStallTimeout: time.Hour,
		},
	})
	serve, err := srv.BindAndServe("web:80")
	if err != nil {
		panic(err)
	}
	rt.Spawn(serve)
	data := make([]byte, size)
	for j := range data {
		data[j] = kernel.PatternByte("conn-mem", int64(j))
	}
	srv.Cache().Put("conn-mem", data)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Each client drives its connection into the target state, then parks
	// in a Suspend that never resumes; the retained resume hooks pin the
	// client half exactly as MemTest pins its threads.
	holders := make([]func(core.Unit), 0, conns)
	var mu sync.Mutex
	park := core.Suspend(func(resume func(core.Unit)) {
		mu.Lock()
		holders = append(holders, resume)
		mu.Unlock()
	})
	req := []byte("GET /conn-mem HTTP/1.1\r\nHost: mem\r\nConnection: keep-alive\r\n\r\n")
	client := func() core.M[core.Unit] {
		return core.Bind(io.SockConnect("web:80"), func(fd kernel.FD) core.M[core.Unit] {
			send := core.Bind(io.SockSend(fd, req), func(int) core.M[core.Unit] { return core.Skip })
			if active {
				// Send and never read: the server blocks mid-response.
				return core.Then(send, park)
			}
			// Consume the full response, then idle on the keep-alive
			// connection. The response head is ~130 bytes; draining
			// size+64 guarantees the whole body arrived without parsing.
			buf := make([]byte, 2048)
			want := int(size) + 64
			var drain func(got int) core.M[core.Unit]
			drain = func(got int) core.M[core.Unit] {
				if got >= want {
					return park
				}
				return core.Bind(io.SockRead(fd, buf), func(n int) core.M[core.Unit] {
					if n == 0 {
						return core.Throw[core.Unit](fmt.Errorf("connmem: response truncated at %d bytes", got))
					}
					return drain(got + n)
				})
			}
			return core.Then(send, drain(0))
		})
	}
	for i := 0; i < conns; i++ {
		rt.Spawn(client())
	}

	// Quiesce: virtual time is frozen, so the system is done when the
	// workers drain — every client parked (or blocked sending) and every
	// handler parked on its next read or stalled write.
	for {
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		n := len(holders)
		mu.Unlock()
		if n >= conns {
			break
		}
	}
	time.Sleep(50 * time.Millisecond)

	runtime.GC()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	live := after.HeapAlloc - before.HeapAlloc
	runtime.KeepAlive(holders)
	return float64(live) / float64(conns)
}
