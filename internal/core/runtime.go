package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// TCB is a thread control block: everything the runtime keeps per monadic
// thread. As in the paper (§5.1), the entire thread-local state is the
// trace (a chain of closures standing in for the lazy thunk) and the
// exception-handler stack; this is why the threads are so light.
type TCB struct {
	id         uint64
	trace      Trace
	handlers   []func(error) Trace
	cleanups   []func()        // Ensure frames, run LIFO on abnormal death
	blioEffect func() Trace    // set while the thread is queued for the blio pool
	blioTicket *vclock.Pending // virtual-clock completion ticket for the queued effect
}

// ID reports the thread's identifier, unique within its runtime.
func (t *TCB) ID() uint64 { return t.id }

// BlioInline disables the blocking-I/O pool when assigned to
// Options.BlioWorkers: blocking effects run inline on the worker event
// loop. Only safe when nothing actually blocks (deterministic tests,
// workloads with no sys_blio calls) — an inline blocking call stalls one
// of the scheduler's event loops.
const BlioInline = -1

// Options configures a Runtime.
type Options struct {
	// Workers is the number of worker_main event loops (§4.4). Each runs
	// on its own goroutine (the stand-in for the paper's OS threads), so
	// more than one exploits SMP. Default 1.
	Workers int
	// BatchSteps is how many trace nodes a worker interprets before
	// putting a thread back on the ready queue, the paper's "a thread is
	// executed for a large number of steps before switching to another
	// thread to improve locality" (§4.2). Default 128.
	BatchSteps int
	// BlioWorkers is the size of the blocking-I/O thread pool (§4.6).
	// Zero selects the default of 2; BlioInline (-1) disables the pool so
	// blocking effects run inline on the worker loop.
	BlioWorkers int
	// WorkStealing enables one ready deque per worker with stealing, the
	// load-balancing improvement the paper sketches at the end of §4.4.
	// Default off: one shared queue, as in the paper's implementation.
	WorkStealing bool
	// Clock is the timing domain the runtime participates in. Default a
	// fresh real (wall-clock) clock.
	Clock vclock.Clock
	// Uncaught is invoked when an exception propagates off the top of a
	// thread; the thread terminates either way. Default: collect the
	// error (see Runtime.UncaughtErrors).
	Uncaught func(threadID uint64, err error)
	// TrapPanics converts Go panics inside NBIO/Blio effects into monadic
	// exceptions of type *PanicError instead of crashing the worker.
	TrapPanics bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.BatchSteps <= 0 {
		o.BatchSteps = 128
	}
	if o.BlioWorkers < 0 {
		o.BlioWorkers = 0 // BlioInline (or any negative): no pool
	} else if o.BlioWorkers == 0 {
		o.BlioWorkers = 2
	}
	if o.Clock == nil {
		o.Clock = vclock.NewReal()
	}
	return o
}

// PanicError wraps a Go panic recovered from a thread's effect when
// Options.TrapPanics is set.
type PanicError struct{ Value any }

func (e *PanicError) Error() string { return fmt.Sprintf("panic in thread effect: %v", e.Value) }

// schedMetrics caches the scheduler's metric instruments so hot paths
// touch atomics directly instead of looking names up in the registry.
type schedMetrics struct {
	dispatches *stats.Counter   // TCBs handed to a worker (== Switches)
	steals     *stats.Counter   // dispatches that came from another worker's deque
	yields     *stats.Counter   // sys_yield reschedules
	parks      *stats.Counter   // threads parked by sys_suspend
	resumes    *stats.Counter   // parked threads made runnable again
	forks      *stats.Counter   // sys_fork children created
	completed  *stats.Counter   // threads that terminated
	uncaught   *stats.Counter   // exceptions that reached the top of a thread
	rejected   *stats.Counter   // enqueues refused by a closed queue (Spawn vs Shutdown)
	cleanups   *stats.Counter   // Ensure cleanups run on the abort path
	panicKills *stats.Counter   // panics that escaped a trace and killed only their thread
	batchFull  *stats.Counter   // dispatches that exhausted their step budget
	batchUsed  *stats.Histogram // trace nodes interpreted per dispatch
	readyDepth *stats.Histogram // ready-queue depth sampled every 16th dispatch
	blioSubmit *stats.Counter   // effects handed to the blocking-I/O pool
	blioInline *stats.Counter   // blio effects run inline (no pool)
	blioDepth  *stats.Histogram // blio queue depth sampled at submit
	flushes    *stats.Counter   // non-empty Batch.Flush calls
	flushSize  *stats.Histogram // threads re-enqueued per flush

	workerDispatches []*stats.Counter // per worker_main loop
	workerSteals     []*stats.Counter
}

func newSchedMetrics(r *stats.Registry, workers int) *schedMetrics {
	m := &schedMetrics{
		dispatches: r.Counter("dispatches"),
		steals:     r.Counter("steals"),
		yields:     r.Counter("yields"),
		parks:      r.Counter("parks"),
		resumes:    r.Counter("resumes"),
		forks:      r.Counter("forks"),
		completed:  r.Counter("completed"),
		uncaught:   r.Counter("uncaught"),
		rejected:   r.Counter("enqueue_rejected"),
		cleanups:   r.Counter("abort_cleanups"),
		panicKills: r.Counter("panic_kills"),
		batchFull:  r.Counter("batch_full"),
		batchUsed:  r.Histogram("batch_used", stats.PowersOfTwo(1024)...),
		readyDepth: r.Histogram("ready_depth", stats.PowersOfTwo(1<<20)...),
		blioSubmit: r.Counter("blio_submits"),
		blioInline: r.Counter("blio_inline"),
		blioDepth:  r.Histogram("blio_depth", stats.PowersOfTwo(1<<16)...),
		flushes:    r.Counter("batch_flushes"),
		flushSize:  r.Histogram("flush_size", stats.PowersOfTwo(4096)...),
	}
	for i := 0; i < workers; i++ {
		m.workerDispatches = append(m.workerDispatches,
			r.Counter(fmt.Sprintf("worker%02d.dispatches", i)))
		m.workerSteals = append(m.workerSteals,
			r.Counter(fmt.Sprintf("worker%02d.steals", i)))
	}
	return m
}

// Runtime is the event-driven system of the paper's Figure 14: worker
// event loops draining a ready queue of traces, plus a blocking-I/O pool.
// Event sources (epoll, AIO, timers, TCP) are plugged in from outside via
// Suspend; the runtime itself is I/O-agnostic.
type Runtime struct {
	opts  Options
	clock vclock.Clock
	vc    *vclock.VirtualClock // non-nil when clock is virtual: tickets, quiescer binding

	ready readyQueue
	blio  *sharedQueue // unbounded queue feeding the blocking-I/O pool

	nextID  atomic.Uint64
	live    atomic.Int64
	spawned atomic.Uint64

	metrics *stats.Registry
	m       *schedMetrics

	idleMu      sync.Mutex
	idleCond    *sync.Cond
	idleWaiters atomic.Int64 // WaitLive waiters needing a broadcast per retirement

	uncaughtMu   sync.Mutex
	uncaught     []uncaughtRecord
	uncaughtSeen map[uint64]struct{}

	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewRuntime starts a runtime: Options.Workers worker event loops and a
// blocking-I/O pool, all waiting for threads.
func NewRuntime(opts Options) *Runtime {
	opts = opts.withDefaults()
	rt := &Runtime{opts: opts, clock: opts.Clock, metrics: stats.NewRegistry()}
	rt.m = newSchedMetrics(rt.metrics, opts.Workers)
	rt.metrics.GaugeFunc("live", rt.Live)
	rt.metrics.CounterFunc("spawned", rt.spawned.Load)
	rt.idleCond = sync.NewCond(&rt.idleMu)
	rt.vc, _ = opts.Clock.(*vclock.VirtualClock)
	if opts.WorkStealing {
		rt.ready = newStealingQueue(opts.Workers)
	} else {
		rt.ready = newSharedQueue()
	}
	if rt.vc != nil {
		// The ready queue becomes the clock's quiescer: virtual time
		// advances only when every worker is parked with nothing queued.
		// The blio queue is deliberately unbound — pending blocking
		// effects pin the clock through their completion tickets instead.
		rt.ready.bindClock(rt.vc, opts.Workers)
	}
	for i := 0; i < opts.Workers; i++ {
		rt.wg.Add(1)
		go rt.workerMain(i)
	}
	if opts.BlioWorkers > 0 {
		rt.blio = newSharedQueue()
		for i := 0; i < opts.BlioWorkers; i++ {
			rt.wg.Add(1)
			go rt.workerBlio()
		}
	}
	return rt
}

// Clock reports the runtime's timing domain.
func (rt *Runtime) Clock() vclock.Clock { return rt.clock }

// Stats reports the scheduler's metrics registry: dispatch, steal, park,
// and batch counters plus queue-depth histograms. Snapshot it (or merge
// it with other subsystems' registries) to explain a benchmark curve.
func (rt *Runtime) Stats() *stats.Registry { return rt.metrics }

// Spawn creates a new monadic thread running m. It may be called from
// outside the runtime or from effects within it.
func (rt *Runtime) Spawn(m M[Unit]) {
	rt.spawnTrace(BuildTrace(m))
}

// tcbPool recycles thread control blocks through thread death and spawn,
// so the dominant spawn/exit churn of short-lived threads (one per
// request, per timer, per fork) stops allocating. A recycled TCB gets a
// fresh id; the pool holds only fully-dead blocks whose trace, handler,
// and cleanup state were cleared by threadDone.
var tcbPool = sync.Pool{New: func() any { return new(TCB) }}

// newTCB allocates or recycles a control block for a fresh thread.
func (rt *Runtime) newTCB(tr Trace) *TCB {
	tcb := tcbPool.Get().(*TCB)
	tcb.id = rt.nextID.Add(1)
	tcb.trace = tr
	return tcb
}

func (rt *Runtime) spawnTrace(tr Trace) {
	tcb := rt.newTCB(tr)
	rt.live.Add(1)
	rt.spawned.Add(1)
	// Spawn may come from outside any worker or event callback (main
	// goroutine, an NPTL thread): hold the clock across the publish so a
	// concurrently-quiescing system cannot advance or report idle while
	// the thread is in flight to the queue.
	rt.clock.Enter()
	rt.enqueue(tcb)
	rt.clock.Exit()
}

// enqueue makes a thread runnable. The clock is not touched: queued
// threads pin virtual time through the ready queue's quiescer (the clock
// cannot advance while anything is queued or any worker is unparked), so
// the per-enqueue Enter/Exit pair the old design paid on every dispatch
// is gone from the hot path. Callers pushing from outside the runtime's
// workers and event callbacks (external Spawn) must bracket the push with
// their own clock hold so quiescence cannot be declared mid-publish. If
// the queue rejects the thread (Shutdown racing a Spawn or a resume), the
// thread is accounted as done here — the rejection path must leave the
// clock and the live count exactly as a completed thread would.
func (rt *Runtime) enqueue(tcb *TCB) {
	if !rt.ready.push(tcb) {
		rt.discard(tcb)
	}
}

// enqueueLocal is enqueue with worker affinity, used when a worker
// re-queues the thread it was just executing (batch exhaustion): on a
// work-stealing queue the thread lands on that worker's own deque.
func (rt *Runtime) enqueueLocal(worker int, tcb *TCB) {
	if !rt.ready.pushLocal(worker, tcb) {
		rt.discard(tcb)
	}
}

// Batch accumulates threads made runnable by one event-harvest round so
// they reach the ready queue in a single pushBatch — one lock acquisition
// and at most one targeted Signal per thread, instead of a lock+signal per
// resume. Event loops create one with NewBatch, pass it to SuspendB
// resumes as they dispatch a poll round, and Flush at the end of the
// round. A Batch is single-goroutine state; it must not be shared.
type Batch struct {
	rt   *Runtime
	tcbs []*TCB
}

// NewBatch returns an empty re-enqueue batch for this runtime.
func (rt *Runtime) NewBatch() *Batch { return &Batch{rt: rt} }

// add stages a resumed thread. Batches are filled inside event-loop
// callbacks, which run while the clock is pinned (a dispatch batch in the
// virtual domain, a kernel-held event in the queued one), so staged
// threads need no hold of their own.
func (b *Batch) add(tcb *TCB) {
	b.tcbs = append(b.tcbs, tcb)
}

// Len reports staged threads (diagnostics and tests).
func (b *Batch) Len() int { return len(b.tcbs) }

// Flush lands every staged thread on the ready queue in one push. If the
// queue closed in the meantime, each thread is discarded with the same
// accounting as a rejected enqueue. The batch is empty afterwards and may
// be reused.
func (b *Batch) Flush() {
	if len(b.tcbs) == 0 {
		return
	}
	b.rt.m.flushes.Inc()
	b.rt.m.flushSize.Observe(int64(len(b.tcbs)))
	if !b.rt.ready.pushBatch(b.tcbs) {
		for _, t := range b.tcbs {
			b.rt.discard(t)
		}
	}
	for i := range b.tcbs {
		b.tcbs[i] = nil
	}
	b.tcbs = b.tcbs[:0]
}

// discard accounts for a thread rejected by a closed queue: any
// deferred-completion ticket it carried is cancelled (releasing its clock
// hold) and the thread counted as done, so WaitIdle and virtual-clock
// quiescence see the same state as if the thread had completed.
func (rt *Runtime) discard(tcb *TCB) {
	rt.m.rejected.Inc()
	tcb.blioEffect = nil
	if tk := tcb.blioTicket; tk != nil {
		tcb.blioTicket = nil
		tk.Cancel()
	}
	rt.threadDone(tcb)
}

// Live reports the number of threads that have been spawned and not yet
// terminated (including parked threads).
func (rt *Runtime) Live() int64 { return rt.live.Load() }

// Spawned reports the total number of threads ever spawned.
func (rt *Runtime) Spawned() uint64 { return rt.spawned.Load() }

// Switches reports how many times a worker dispatched a thread; the
// difference between two readings measures context-switch traffic.
func (rt *Runtime) Switches() uint64 { return rt.m.dispatches.Load() }

// QueueDepth reports the number of threads currently runnable but not
// being executed (diagnostics; the paper's event-loop queues made
// visible).
func (rt *Runtime) QueueDepth() int { return rt.ready.size() }

// uncaughtRecord ties an uncaught exception to the thread that raised
// it, so the collection can deduplicate and order deterministically.
type uncaughtRecord struct {
	thread uint64
	err    error
}

// UncaughtErrors returns the exceptions that reached the top of a thread,
// when no Options.Uncaught hook was installed. Each thread appears at
// most once, and the slice is ordered by thread id — spawn order — so
// concurrent workers reporting panics produce a deterministic result.
func (rt *Runtime) UncaughtErrors() []error {
	rt.uncaughtMu.Lock()
	recs := make([]uncaughtRecord, len(rt.uncaught))
	copy(recs, rt.uncaught)
	rt.uncaughtMu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].thread < recs[j].thread })
	out := make([]error, len(recs))
	for i, r := range recs {
		out[i] = r.err
	}
	return out
}

// WaitIdle blocks until no live threads remain. Parked threads count as
// live, so a system that deadlocks never becomes idle (use the virtual
// clock's OnIdle hook to detect that in tests).
func (rt *Runtime) WaitIdle() {
	rt.idleMu.Lock()
	for rt.live.Load() != 0 {
		rt.idleCond.Wait()
	}
	rt.idleMu.Unlock()
}

// WaitLive blocks until at most n live threads remain. A harness whose
// system keeps permanent threads (a server's accept loop) uses this to
// quiesce before reading metrics: a workload signalling completion from
// inside a thread's trace returns to the host before the worker has
// retired that thread, so counters like completed and live are still
// moving — under parallel workers the host would snapshot mid-retirement.
func (rt *Runtime) WaitLive(n int64) {
	rt.idleMu.Lock()
	rt.idleWaiters.Add(1)
	for rt.live.Load() > n {
		rt.idleCond.Wait()
	}
	rt.idleWaiters.Add(-1)
	rt.idleMu.Unlock()
}

// Run spawns m and waits until every thread in the runtime (m and
// anything it forked) has terminated.
func (rt *Runtime) Run(m M[Unit]) {
	rt.Spawn(m)
	rt.WaitIdle()
}

// Shutdown stops the worker loops. Threads still queued are discarded —
// with their completion tickets cancelled and the live count decremented,
// so a post-Shutdown WaitIdle cannot wedge on them — but call WaitIdle
// first for a clean drain. Parked threads whose resume never fires remain
// live. Shutdown is idempotent.
func (rt *Runtime) Shutdown() {
	if !rt.closed.CompareAndSwap(false, true) {
		return
	}
	for _, tcb := range rt.ready.close() {
		rt.discard(tcb)
	}
	if rt.blio != nil {
		for _, tcb := range rt.blio.close() {
			rt.discard(tcb)
		}
	}
	rt.wg.Wait()
}

func (rt *Runtime) threadDone(tcb *TCB) {
	// Whatever killed the thread — RetNode, uncaught exception, trapped
	// panic, or a Shutdown discard — its still-registered Ensure cleanups
	// run now, LIFO, so descriptors and admission slots held by a dead
	// thread are always given back. A balanced thread reaches here with an
	// empty stack; the loop costs nothing then.
	for i := len(tcb.cleanups) - 1; i >= 0; i-- {
		fn := tcb.cleanups[i]
		tcb.cleanups[i] = nil
		rt.m.cleanups.Inc()
		func() {
			defer func() { recover() }() // a broken cleanup must not block the rest
			fn()
		}()
	}
	tcb.cleanups = nil
	rt.m.completed.Inc()
	if rt.live.Add(-1) == 0 || rt.idleWaiters.Load() != 0 {
		rt.idleMu.Lock()
		rt.idleCond.Broadcast()
		rt.idleMu.Unlock()
	}
	// The block is fully dead: no caller touches it after threadDone.
	// Clear every reference (a discarded thread can die mid-Catch with
	// handlers still pushed) and recycle it for the next spawn.
	tcb.trace = nil
	tcb.handlers = nil
	tcb.blioEffect = nil
	tcb.blioTicket = nil
	tcbPool.Put(tcb)
}

func (rt *Runtime) reportUncaught(tcb *TCB, err error) {
	rt.m.uncaught.Inc()
	if rt.opts.Uncaught != nil {
		rt.opts.Uncaught(tcb.id, err)
		return
	}
	rt.uncaughtMu.Lock()
	// A thread terminates when its exception reaches the top, so it can
	// report at most once; the guard keeps that invariant even if a buggy
	// event source resumes a dead thread into a second throw.
	if _, dup := rt.uncaughtSeen[tcb.id]; !dup {
		if rt.uncaughtSeen == nil {
			rt.uncaughtSeen = make(map[uint64]struct{})
		}
		rt.uncaughtSeen[tcb.id] = struct{}{}
		rt.uncaught = append(rt.uncaught, uncaughtRecord{thread: tcb.id, err: err})
	}
	rt.uncaughtMu.Unlock()
}

// workerMain is the scheduler event loop (the paper's Figure 11): fetch a
// trace from the ready queue, force nodes to execute the thread, perform
// the requested system calls, and put continuations back on queues.
func (rt *Runtime) workerMain(id int) {
	defer rt.wg.Done()
	for {
		tcb, stolen, ok := rt.ready.pop(id)
		if !ok {
			return
		}
		rt.m.workerDispatches[id].Inc()
		if stolen {
			rt.m.steals.Inc()
			rt.m.workerSteals[id].Inc()
		}
		if n := rt.m.dispatches.Inc(); n&0xF == 0 {
			// Sampled, not per-dispatch: size() takes the queue lock.
			rt.m.readyDepth.Observe(int64(rt.ready.size()))
		}
		rt.step(id, tcb)
	}
}

// step interprets up to BatchSteps nodes of tcb's trace and records how
// much of the budget the dispatch used. On return the thread has been
// re-enqueued, parked, or terminated. The clock is untouched: an
// executing worker is unparked, which by itself keeps virtual time from
// advancing.
//
// With TrapPanics set, step is also the runtime's last line of defense:
// runEffect traps panics inside NBIO/Blio effects, but a panic raised
// while building a trace — in a Catch handler, a continuation, or a
// Suspend registration — escapes interpret. Seed behaviour was to let it
// kill the worker goroutine (and with it the process); now the panic
// kills only the offending thread: its Ensure cleanups run, the panic is
// reported as an uncaught *PanicError, and the live count is released
// exactly as for a completed thread.
func (rt *Runtime) step(worker int, tcb *TCB) {
	if rt.opts.TrapPanics {
		defer func() {
			if v := recover(); v != nil {
				rt.m.panicKills.Inc()
				rt.reportUncaught(tcb, &PanicError{Value: v})
				rt.threadDone(tcb)
			}
		}()
	}
	used, retired := rt.interpret(worker, tcb)
	rt.m.batchUsed.Observe(int64(used))
	// Retirement happens after the dispatch's own accounting: threadDone
	// releases WaitIdle/WaitLive, and a waiter snapshotting metrics must
	// not observe the final dispatch half-recorded (counted in dispatches
	// but missing from batch_used).
	if retired {
		rt.threadDone(tcb)
	}
}

// interpret is the case analysis at the heart of the hybrid model: each
// arm is one system call. It returns the number of trace nodes executed,
// and whether the thread terminated (the caller runs threadDone after
// recording the dispatch, so retirement is the last observable effect).
func (rt *Runtime) interpret(worker int, tcb *TCB) (used int, retired bool) {
	tr := tcb.trace
	tcb.trace = nil
	for budget := rt.opts.BatchSteps; budget > 0; budget-- {
		used++
		switch n := tr.(type) {
		case *NBIONode:
			tr = rt.runEffect(n.Effect)

		case *ForkNode:
			child := rt.newTCB(n.Child)
			rt.live.Add(1)
			rt.spawned.Add(1)
			rt.m.forks.Inc()
			rt.enqueue(child)
			tr = n.Cont

		case *YieldNode:
			rt.m.yields.Inc()
			tcb.trace = n.Cont
			rt.enqueue(tcb)
			return used, false

		case *RetNode:
			return used, true

		case *ThrowNode:
			if len(tcb.handlers) == 0 {
				rt.reportUncaught(tcb, n.Err)
				return used, true
			}
			h := tcb.handlers[len(tcb.handlers)-1]
			tcb.handlers = tcb.handlers[:len(tcb.handlers)-1]
			tr = h(n.Err)

		case *CatchNode:
			tcb.handlers = append(tcb.handlers, n.Handler)
			tr = n.Body

		case *PopCatchNode:
			if len(tcb.handlers) == 0 {
				panic("core: PopCatchNode with empty handler stack")
			}
			tcb.handlers = tcb.handlers[:len(tcb.handlers)-1]
			tr = n.Cont

		case *CleanupNode:
			tcb.cleanups = append(tcb.cleanups, n.Fn)
			tr = n.Cont

		case *PopCleanupNode:
			if len(tcb.cleanups) == 0 {
				panic("core: PopCleanupNode with empty cleanup stack")
			}
			fn := tcb.cleanups[len(tcb.cleanups)-1]
			tcb.cleanups = tcb.cleanups[:len(tcb.cleanups)-1]
			if n.Run {
				fn()
			}
			tr = n.Cont

		case *SuspendNode:
			// Park the thread. The resume closure re-enqueues it; while we
			// are inside Park this worker is unparked, so virtual time
			// cannot slip even if resume runs synchronously. A resume
			// firing later runs inside an event callback (dispatch batch),
			// which equally pins the clock.
			rt.m.parks.Inc()
			id := tcb.id
			if n.ParkB != nil {
				// Batch-aware park: the resume may carry the event loop's
				// current Batch, staging the thread for a single pushBatch
				// at the end of the poll round instead of enqueueing now.
				n.ParkB(func(next Trace, b *Batch) {
					if tcb.id != id {
						return
					}
					rt.m.resumes.Inc()
					tcb.trace = next
					if b != nil {
						b.add(tcb)
					} else {
						rt.enqueue(tcb)
					}
				})
			} else {
				n.Park(func(next Trace) {
					if tcb.id != id {
						// Stale resume from a buggy event source: the thread
						// already died and its TCB was recycled for another.
						return
					}
					rt.m.resumes.Inc()
					tcb.trace = next
					rt.enqueue(tcb)
				})
			}
			return used, false

		case *BlioNode:
			if rt.blio == nil {
				// No pool configured (BlioInline): run on the worker loop.
				rt.m.blioInline.Inc()
				tr = rt.runEffect(n.Effect)
				continue
			}
			tcb.blioEffect = n.Effect
			// In the virtual domain the queued effect carries a
			// deferred-completion ticket: a clock hold plus a reserved
			// event sequence number, so pool workers finishing in host
			// order still surface their resumes in submission order at the
			// next epoch barrier. A rejected push (Shutdown already closed
			// the pool) must not leak the ticket — discard cancels it.
			if rt.vc != nil {
				tcb.blioTicket = rt.vc.Defer()
			}
			rt.m.blioSubmit.Inc()
			rt.m.blioDepth.Observe(int64(rt.blio.size()))
			if !rt.blio.push(tcb) {
				rt.discard(tcb)
			}
			return used, false

		case nil:
			panic("core: nil trace node (thread resumed without a continuation?)")

		default:
			panic(fmt.Sprintf("core: unknown trace node %T", tr))
		}
	}
	// Batch exhausted: requeue behind other ready threads, on this
	// worker's own deque when stealing is enabled (cache locality — the
	// thread's working set is hot right here).
	rt.m.batchFull.Inc()
	tcb.trace = tr
	rt.enqueueLocal(worker, tcb)
	return used, false
}

// runEffect performs a nonblocking effect, optionally trapping panics into
// monadic exceptions.
func (rt *Runtime) runEffect(effect func() Trace) (tr Trace) {
	if !rt.opts.TrapPanics {
		return effect()
	}
	defer func() {
		if v := recover(); v != nil {
			tr = &ThrowNode{Err: &PanicError{Value: v}}
		}
	}()
	return effect()
}

// workerBlio is one thread of the blocking-I/O pool (§4.6): it repeatedly
// fetches blocking requests and performs them, so the main event loops
// never stall.
func (rt *Runtime) workerBlio() {
	defer rt.wg.Done()
	for {
		tcb, _, ok := rt.blio.pop(0)
		if !ok {
			return
		}
		effect := tcb.blioEffect
		tcb.blioEffect = nil
		tk := tcb.blioTicket
		tcb.blioTicket = nil
		tcb.trace = rt.runEffect(effect)
		if tk != nil {
			// Virtual domain: surface the completion through the ticket so
			// the resume fires at the next epoch barrier in submission
			// order, independent of which pool worker finished first.
			tk.Complete(func() { rt.enqueue(tcb) })
		} else {
			rt.enqueue(tcb)
		}
	}
}
