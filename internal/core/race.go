package core

import (
	"errors"
	"sync"

	"hybrid/internal/vclock"
)

// ErrTimedOut is raised by Timeout when the deadline wins the race.
var ErrTimedOut = errors.New("core: operation timed out")

// FirstOf runs two computations in freshly forked threads and produces
// the outcome — result or exception — of whichever finishes first.
//
// The paper's model has no thread cancellation (a trace is consumed, not
// killed), so the loser keeps running to completion in its own thread and
// its outcome is discarded. Use it only with computations that are safe
// to let finish, or that park harmlessly (a Sleep, an EpollWait on a
// quiet descriptor).
func FirstOf[A any](a, b M[A]) M[A] {
	return func(k func(A) Trace) Trace {
		// The gate lives per-execution, created when the trace is built:
		// re-running the returned computation races fresh threads.
		type outcome struct {
			val A
			err error
		}
		g := struct {
			mu     sync.Mutex
			fired  bool
			have   bool
			first  outcome
			resume func(outcome)
		}{}
		fire := func(o outcome) {
			g.mu.Lock()
			if g.fired {
				g.mu.Unlock()
				return
			}
			g.fired = true
			if g.resume != nil {
				resume := g.resume
				g.mu.Unlock()
				resume(o)
				return
			}
			g.first = o
			g.have = true
			g.mu.Unlock()
		}
		arm := func(m M[A]) M[Unit] {
			// The child reports its outcome, success or exception.
			return Bind(
				Catch(
					Map(m, func(x A) outcome { return outcome{val: x} }),
					func(err error) M[outcome] { return Return(outcome{err: err}) },
				),
				func(o outcome) M[Unit] { return Do(func() { fire(o) }) },
			)
		}
		race := Seq(
			Fork(arm(a)),
			Fork(arm(b)),
		)
		wait := Suspend(func(resume func(outcome)) {
			g.mu.Lock()
			if g.have {
				o := g.first
				g.mu.Unlock()
				resume(o)
				return
			}
			g.resume = resume
			g.mu.Unlock()
		})
		m := Then(race, Bind(wait, func(o outcome) M[A] {
			if o.err != nil {
				return Throw[A](o.err)
			}
			return Return(o.val)
		}))
		return m(k)
	}
}

// Timeout runs m with a deadline on the given clock: if d elapses first,
// it raises ErrTimedOut. Per FirstOf's semantics, m itself is not
// cancelled — it keeps running in its thread and its eventual outcome is
// discarded.
func Timeout[A any](clk vclock.Clock, d vclock.Duration, m M[A]) M[A] {
	return FirstOf(m, Then(Sleep(clk, d), Throw[A](ErrTimedOut)))
}
