package core

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

func TestMutexMutualExclusion(t *testing.T) {
	// N threads increment a shared counter under a mutex with yields
	// inside the critical section; mutual exclusion means no lost updates
	// and no overlap.
	rt := NewRuntime(Options{Workers: 4, BatchSteps: 1})
	defer rt.Shutdown()
	m := NewMutex()
	var inside atomic.Int32
	var maxInside atomic.Int32
	counter := 0
	const n = 200
	rt.Run(ForN(n, func(int) M[Unit] {
		return Fork(m.WithLock(Seq(
			Do(func() {
				v := inside.Add(1)
				for {
					old := maxInside.Load()
					if v <= old || maxInside.CompareAndSwap(old, v) {
						break
					}
				}
			}),
			Yield(),
			Do(func() { counter++ }),
			Yield(),
			Do(func() { inside.Add(-1) }),
		)))
	}))
	if counter != n {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, n)
	}
	if maxInside.Load() != 1 {
		t.Fatalf("max threads inside critical section = %d", maxInside.Load())
	}
}

func TestMutexFIFOFairness(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1, BatchSteps: 1})
	defer rt.Shutdown()
	m := NewMutex()
	var l logger
	hold := NewMVar[Unit]()
	// Thread 0 takes the lock and holds it until released; threads 1..4
	// queue up in order; when thread 0 unlocks they must enter FIFO.
	rt.Spawn(Seq(m.Lock(), Bind(hold.Take(), func(Unit) M[Unit] { return Skip }), m.Unlock()))
	waitFor(t, func() bool { return rt.Live() == 1 })
	for i := 1; i <= 4; i++ {
		i := i
		rt.Spawn(Seq(m.Lock(), l.add(i), m.Unlock()))
		// Ensure deterministic queue order: wait until this thread parks.
		waitFor(t, func() bool { return rt.Live() == int64(1+i) })
	}
	rt.Spawn(hold.Put(Unit{}))
	rt.WaitIdle()
	if !equalInts(l.values(), []int{1, 2, 3, 4}) {
		t.Fatalf("lock acquisition order = %v, want FIFO", l.values())
	}
}

func TestMutexTryLock(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	m := NewMutex()
	var first, second atomic.Bool
	rt.Run(Seq(
		Bind(m.TryLock(), func(ok bool) M[Unit] { return Do(func() { first.Store(ok) }) }),
		Bind(m.TryLock(), func(ok bool) M[Unit] { return Do(func() { second.Store(ok) }) }),
		m.Unlock(),
	))
	if !first.Load() || second.Load() {
		t.Fatalf("TryLock results = %v, %v; want true, false", first.Load(), second.Load())
	}
}

func TestMutexWithLockReleasesOnThrow(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	m := NewMutex()
	var reacquired atomic.Bool
	rt.Run(Seq(
		Catch(m.WithLock(Throw[Unit](errBoom)), func(error) M[Unit] { return Skip }),
		m.WithLock(Do(func() { reacquired.Store(true) })),
	))
	if !reacquired.Load() {
		t.Fatal("mutex not released after exception in critical section")
	}
}

func TestMutexUnlockUnlockedPanics(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1, TrapPanics: true})
	defer rt.Shutdown()
	m := NewMutex()
	var err atomic.Value
	rt.Run(Catch(m.Unlock(), func(e error) M[Unit] {
		err.Store(e)
		return Skip
	}))
	if _, ok := err.Load().(*PanicError); !ok {
		t.Fatalf("got %T, want *PanicError", err.Load())
	}
}

// ---------------------------------------------------------------------------
// MVar
// ---------------------------------------------------------------------------

func TestMVarTakePutRoundTrip(t *testing.T) {
	got, _ := observe(t, func(*logger) M[int] {
		v := NewFullMVar(41)
		return Bind(v.Take(), func(x int) M[int] { return Return(x + 1) })
	})
	if got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestMVarTakeBlocksUntilPut(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	v := NewMVar[int]()
	var l logger
	rt.Spawn(Bind(v.Take(), func(x int) M[Unit] { return l.add(x) }))
	waitFor(t, func() bool { return rt.Live() == 1 }) // taker parked
	if len(l.values()) != 0 {
		t.Fatal("Take returned before Put")
	}
	rt.Spawn(v.Put(5))
	rt.WaitIdle()
	if !equalInts(l.values(), []int{5}) {
		t.Fatalf("log = %v", l.values())
	}
}

func TestMVarPutBlocksWhileFull(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	v := NewFullMVar(1)
	var l logger
	rt.Spawn(Seq(v.Put(2), l.add(100)))
	waitFor(t, func() bool { return rt.Live() == 1 }) // putter parked
	if len(l.values()) != 0 {
		t.Fatal("Put completed on a full MVar")
	}
	rt.Spawn(Bind(v.Take(), l.add))
	rt.WaitIdle()
	// Taker gets 1; blocked putter refills with 2.
	log := l.values()
	if len(log) != 2 {
		t.Fatalf("log = %v", log)
	}
	rt2 := NewRuntime(Options{Workers: 1})
	defer rt2.Shutdown()
	var got atomic.Int64
	rt2.Run(Bind(v.Take(), func(x int) M[Unit] { return Do(func() { got.Store(int64(x)) }) }))
	if got.Load() != 2 {
		t.Fatalf("MVar holds %d after blocked put, want 2", got.Load())
	}
}

func TestMVarTryTake(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	v := NewFullMVar(9)
	var a, b struct {
		Value int
		OK    bool
	}
	rt.Run(Seq(
		Bind(v.TryTake(), func(r struct {
			Value int
			OK    bool
		}) M[Unit] {
			return Do(func() { a = r })
		}),
		Bind(v.TryTake(), func(r struct {
			Value int
			OK    bool
		}) M[Unit] {
			return Do(func() { b = r })
		}),
	))
	if !a.OK || a.Value != 9 {
		t.Fatalf("first TryTake = %+v", a)
	}
	if b.OK {
		t.Fatalf("second TryTake = %+v, want empty", b)
	}
}

func TestMVarProducerConsumer(t *testing.T) {
	// The paper's producer-consumer model: values arrive in order,
	// exactly once.
	rt := NewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	v := NewMVar[int]()
	var l logger
	const n = 100
	rt.Run(Seq(
		Fork(ForN(n, func(i int) M[Unit] { return v.Put(i) })),
		ForN(n, func(int) M[Unit] { return Bind(v.Take(), l.add) }),
	))
	want := make([]int, n)
	for i := range want {
		want[i] = i
	}
	if !equalInts(l.values(), want) {
		t.Fatalf("received %v", l.values())
	}
}

// ---------------------------------------------------------------------------
// Chan
// ---------------------------------------------------------------------------

func TestChanFIFO(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	ch := NewChan[int](4)
	var l logger
	rt.Run(Seq(
		Fork(ForN(10, func(i int) M[Unit] { return ch.Send(i) })),
		ForN(10, func(int) M[Unit] { return Bind(ch.Recv(), l.add) }),
	))
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !equalInts(l.values(), want) {
		t.Fatalf("recv order = %v", l.values())
	}
}

func TestChanBoundedSendBlocks(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	ch := NewChan[int](2)
	var sent atomic.Int32
	rt.Spawn(ForN(5, func(i int) M[Unit] {
		return Then(ch.Send(i), Do(func() { sent.Add(1) }))
	}))
	waitFor(t, func() bool { return rt.Live() == 1 && sent.Load() == 2 })
	if sent.Load() != 2 {
		t.Fatalf("sent %d into capacity-2 channel", sent.Load())
	}
	var got atomic.Int32
	rt.Spawn(ForN(5, func(int) M[Unit] {
		return Bind(ch.Recv(), func(int) M[Unit] { return Do(func() { got.Add(1) }) })
	}))
	rt.WaitIdle()
	if got.Load() != 5 || sent.Load() != 5 {
		t.Fatalf("got %d sent %d, want 5 and 5", got.Load(), sent.Load())
	}
}

func TestChanRendezvous(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	ch := NewChan[int](0)
	var l logger
	rt.Run(Seq(
		Fork(Seq(ch.Send(1), l.add(10))),
		Bind(ch.Recv(), l.add),
	))
	log := l.values()
	if len(log) != 2 {
		t.Fatalf("log = %v", log)
	}
}

func TestChanLen(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	ch := NewChan[int](8)
	var n atomic.Int64
	rt.Run(Seq(
		ch.Send(1), ch.Send(2), ch.Send(3),
		Bind(ch.Len(), func(l int) M[Unit] { return Do(func() { n.Store(int64(l)) }) }),
	))
	if n.Load() != 3 {
		t.Fatalf("Len = %d, want 3", n.Load())
	}
}

// Property: for any interleaving of producers and consumers, every sent
// value is received exactly once (conservation).
func TestChanConservationProperty(t *testing.T) {
	check := func(producers, itemsPer uint8, capacity uint8) bool {
		p := int(producers%4) + 1
		n := int(itemsPer%16) + 1
		ch := NewChan[int](int(capacity % 8))
		rt := NewRuntime(Options{Workers: 2, BatchSteps: 3})
		defer rt.Shutdown()
		var l logger
		rt.Run(Seq(
			ForN(p, func(pi int) M[Unit] {
				return Fork(ForN(n, func(i int) M[Unit] { return ch.Send(pi*1000 + i) }))
			}),
			ForN(p*n, func(int) M[Unit] { return Bind(ch.Recv(), l.add) }),
		))
		got := l.values()
		if len(got) != p*n {
			return false
		}
		seen := make(map[int]bool, len(got))
		for _, v := range got {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Semaphore and WaitGroup
// ---------------------------------------------------------------------------

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	rt := NewRuntime(Options{Workers: 4, BatchSteps: 1})
	defer rt.Shutdown()
	sem := NewSemaphore(3)
	var inside, maxInside atomic.Int32
	rt.Run(ForN(50, func(int) M[Unit] {
		return Fork(Seq(
			sem.Acquire(),
			Do(func() {
				v := inside.Add(1)
				for {
					old := maxInside.Load()
					if v <= old || maxInside.CompareAndSwap(old, v) {
						break
					}
				}
			}),
			Yield(),
			Do(func() { inside.Add(-1) }),
			sem.Release(),
		))
	}))
	if m := maxInside.Load(); m > 3 || m < 1 {
		t.Fatalf("max concurrent holders = %d, want 1..3", m)
	}
}

func TestWaitGroupReleasesAfterAllDone(t *testing.T) {
	rt := NewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	wg := NewWaitGroup(5)
	var l logger
	rt.Run(Seq(
		ForN(5, func(i int) M[Unit] {
			return Fork(Seq(Yield(), l.add(i), wg.Done()))
		}),
		wg.Wait(),
		l.add(100),
	))
	log := l.values()
	if len(log) != 6 || log[5] != 100 {
		t.Fatalf("log = %v; Wait must come last", log)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	wg := NewWaitGroup(0)
	var done atomic.Bool
	rt.Run(Seq(wg.Wait(), Do(func() { done.Store(true) })))
	if !done.Load() {
		t.Fatal("Wait on zero count blocked")
	}
}

func TestWaitGroupMultipleWaiters(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	wg := NewWaitGroup(1)
	var count atomic.Int32
	rt.Run(Seq(
		ForN(4, func(int) M[Unit] {
			return Fork(Seq(wg.Wait(), Do(func() { count.Add(1) })))
		}),
		wg.Done(),
	))
	if count.Load() != 4 {
		t.Fatalf("released %d waiters, want 4", count.Load())
	}
}
