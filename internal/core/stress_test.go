package core_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/vclock"
)

// TestStressRandomized pounds the scheduler with randomized
// spawn/sleep/channel/exception/shutdown sequences. The seed is logged
// on every run and printed with any failure; replay a failure exactly
// with STRESS_SEED=<seed> go test -run StressRandomized -race ./internal/core/.
func TestStressRandomized(t *testing.T) {
	seed := uint64(time.Now().UnixNano())
	if s := os.Getenv("STRESS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad STRESS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("stress seed %d (replay with STRESS_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(int64(seed)))
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		stressRound(t, rng, seed, round)
		if t.Failed() {
			return
		}
	}
}

func stressRound(t *testing.T, rng *rand.Rand, seed uint64, round int) {
	fail := func(format string, args ...interface{}) {
		t.Helper()
		t.Fatalf("[seed %d round %d] %s", seed, round, fmt.Sprintf(format, args...))
	}

	clk := vclock.NewVirtual()
	rt := core.NewRuntime(core.Options{
		Workers:      1 + rng.Intn(4),
		BatchSteps:   1 + rng.Intn(64),
		WorkStealing: rng.Intn(2) == 0,
		Clock:        clk,
		TrapPanics:   true,
	})
	defer rt.Shutdown()

	groups := 2 + rng.Intn(6)
	var produced, consumed, thrown atomic.Uint64
	var sum, want atomic.Int64
	wg := core.NewWaitGroup(groups * 2)

	for g := 0; g < groups; g++ {
		ch := core.NewChan[int](rng.Intn(4)) // rendezvous through small buffers
		items := 1 + rng.Intn(48)
		maySleep := rng.Intn(2) == 0
		mayYield := rng.Intn(2) == 0
		mayThrow := rng.Intn(3) == 0
		// Per-thread RNG streams: monadic threads interleave on workers,
		// so they must not share the test's rand.Rand.
		pseed, cseed := rng.Int63(), rng.Int63()

		producer := func() core.M[core.Unit] {
			r := rand.New(rand.NewSource(pseed))
			return core.ForN(items, func(i int) core.M[core.Unit] {
				want.Add(int64(i))
				step := core.Then(ch.Send(i), core.Do(func() { produced.Add(1) }))
				if maySleep && r.Intn(4) == 0 {
					step = core.Then(core.Sleep(clk, vclock.Duration(1+r.Intn(500))*time.Microsecond), step)
				}
				if mayThrow && r.Intn(8) == 0 {
					// A caught exception inside the loop must not disturb
					// the stream: the item is still sent afterwards.
					thrown.Add(1)
					step = core.Then(
						core.Catch(
							core.Throw[core.Unit](errors.New("stress: injected")),
							func(error) core.M[core.Unit] { return core.Skip },
						),
						step,
					)
				}
				return step
			})
		}
		consumer := func() core.M[core.Unit] {
			r := rand.New(rand.NewSource(cseed))
			return core.ForN(items, func(int) core.M[core.Unit] {
				step := core.Bind(ch.Recv(), func(v int) core.M[core.Unit] {
					consumed.Add(1)
					sum.Add(int64(v))
					return core.Skip
				})
				if mayYield && r.Intn(4) == 0 {
					step = core.Then(core.Yield(), step)
				}
				return step
			})
		}
		rt.Spawn(core.Finally(producer(), wg.Done()))
		rt.Spawn(core.Finally(consumer(), wg.Done()))
	}

	// A few fork bombs on the side: trees of short-lived threads whose
	// leaves all report in.
	forks := rng.Intn(3)
	var leaves atomic.Uint64
	wantLeaves := uint64(0)
	forkWG := core.NewWaitGroup(forks * 8)
	for f := 0; f < forks; f++ {
		wantLeaves += 8
		rt.Spawn(core.ForN(8, func(int) core.M[core.Unit] {
			return core.Fork(core.Finally(
				core.Then(core.Yield(), core.Do(func() { leaves.Add(1) })),
				forkWG.Done(),
			))
		}))
	}

	done := make(chan struct{})
	rt.Spawn(core.Then(core.Then(wg.Wait(), forkWG.Wait()), core.Do(func() { close(done) })))
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		fail("wedged: %d live threads, %d/%d produced/consumed",
			rt.Live(), produced.Load(), consumed.Load())
	}

	idle := make(chan struct{})
	go func() { rt.WaitIdle(); close(idle) }()
	select {
	case <-idle:
	case <-time.After(30 * time.Second):
		fail("WaitIdle wedged with %d live threads", rt.Live())
	}

	if produced.Load() != consumed.Load() {
		fail("produced %d != consumed %d", produced.Load(), consumed.Load())
	}
	if sum.Load() != want.Load() {
		fail("checksum %d != %d: channel dropped or duplicated a value", sum.Load(), want.Load())
	}
	if leaves.Load() != wantLeaves {
		fail("fork leaves %d != %d", leaves.Load(), wantLeaves)
	}
	if errs := rt.UncaughtErrors(); len(errs) != 0 {
		fail("uncaught errors escaped their Catch: %v", errs)
	}
	// Shutdown with everything drained must be clean and idempotent.
	rt.Shutdown()
	rt.Shutdown()
}

// TestStressShutdownMidFlight repeatedly shuts a runtime down while
// threads are still being spawned and parked: no panic, no wedge, and
// the clock's busy count must return to zero so time can move on.
func TestStressShutdownMidFlight(t *testing.T) {
	seed := uint64(time.Now().UnixNano())
	if s := os.Getenv("STRESS_SEED"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			seed = v
		}
	}
	t.Logf("stress seed %d", seed)
	rng := rand.New(rand.NewSource(int64(seed)))
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		clk := vclock.NewVirtual()
		rt := core.NewRuntime(core.Options{
			Workers:      1 + rng.Intn(4),
			WorkStealing: rng.Intn(2) == 0,
			Clock:        clk,
		})
		n := 16 + rng.Intn(128)
		for i := 0; i < n; i++ {
			d := vclock.Duration(rng.Intn(2000)) * time.Microsecond
			rt.Spawn(core.Then(core.Sleep(clk, d), core.Yield()))
		}
		// Shut down somewhere in the middle of the storm.
		if rng.Intn(2) == 0 {
			time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
		}
		rt.Shutdown()
		// The clock must not be left busy by discarded threads: a held
		// busy count would freeze virtual time for any later user.
		idle := make(chan struct{})
		go func() {
			for clk.Busy() != 0 {
				time.Sleep(50 * time.Microsecond)
			}
			close(idle)
		}()
		select {
		case <-idle:
		case <-time.After(30 * time.Second):
			t.Fatalf("[seed %d round %d] clock busy=%d after Shutdown", seed, round, clk.Busy())
		}
	}
}
