package core

import (
	"errors"
	"testing"
)

// The fused spines in fuse.go claim node-sequence equivalence with the
// naive closure spellings in monad.go (the executable spec). These tests
// check it two ways: the effect log must match, and — run at
// BatchSteps=1, where every interpreted node costs one dispatch — the
// scheduler's dispatch counter must match, which pins the node count the
// virtual-time figures depend on.

// runDispatches executes m on a fresh single-worker runtime interpreting
// one node per dispatch and returns the dispatch count.
func runDispatches(t *testing.T, m M[Unit]) int64 {
	t.Helper()
	rt := NewRuntime(Options{Workers: 1, BatchSteps: 1, BlioWorkers: BlioInline})
	defer rt.Shutdown()
	rt.Run(m)
	return rt.Stats().Snapshot().Counter("dispatches")
}

// checkEquivalent runs matched fused/naive programs and requires equal
// effect logs and equal node (dispatch) counts.
func checkEquivalent(t *testing.T, name string, fused, naive func(l *logger) M[Unit]) {
	t.Helper()
	var lf, ln logger
	df := runDispatches(t, fused(&lf))
	dn := runDispatches(t, naive(&ln))
	if !equalInts(lf.values(), ln.values()) {
		t.Fatalf("%s: effect logs differ\nfused %v\nnaive %v", name, lf.values(), ln.values())
	}
	if df != dn {
		t.Fatalf("%s: node counts differ: fused %d dispatches, naive %d", name, df, dn)
	}
}

func TestFusedSeqEquivalence(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		mk := func(seq func(...M[Unit]) M[Unit]) func(l *logger) M[Unit] {
			return func(l *logger) M[Unit] {
				ms := make([]M[Unit], n)
				for i := range ms {
					ms[i] = l.add(i)
				}
				return seq(ms...)
			}
		}
		checkEquivalent(t, "Seq", mk(Seq), mk(NaiveSeq))
	}
}

func TestFusedLoopEquivalence(t *testing.T) {
	mk := func(loop func(M[bool]) M[Unit]) func(l *logger) M[Unit] {
		return func(l *logger) M[Unit] {
			n := 0
			return loop(Then(l.add(7), NBIO(func() bool {
				n++
				return n < 5
			})))
		}
	}
	checkEquivalent(t, "Loop", mk(Loop), mk(NaiveLoop))
}

func TestFusedForNEquivalence(t *testing.T) {
	for _, n := range []int{0, 1, 4} {
		mk := func(forN func(int, func(int) M[Unit]) M[Unit]) func(l *logger) M[Unit] {
			return func(l *logger) M[Unit] {
				return forN(n, func(i int) M[Unit] { return l.add(i * 10) })
			}
		}
		checkEquivalent(t, "ForN", mk(ForN), mk(NaiveForN))
	}
}

func TestRepeatNEquivalence(t *testing.T) {
	// RepeatN's spec is ForN with a constant body.
	checkEquivalent(t, "RepeatN",
		func(l *logger) M[Unit] { return RepeatN(4, l.add(3)) },
		func(l *logger) M[Unit] { return NaiveForN(4, func(int) M[Unit] { return l.add(3) }) })
}

func TestFusedWhileEquivalence(t *testing.T) {
	mk := func(while func(M[bool], M[Unit]) M[Unit]) func(l *logger) M[Unit] {
		return func(l *logger) M[Unit] {
			n := 0
			cond := NBIO(func() bool {
				n++
				return n <= 4
			})
			return while(cond, l.add(9))
		}
	}
	checkEquivalent(t, "While", mk(While), mk(NaiveWhile))
}

func TestFusedFoldNEquivalence(t *testing.T) {
	mk := func(fold func(int, int, func(int, int) M[int]) M[int]) func(l *logger) M[Unit] {
		return func(l *logger) M[Unit] {
			m := fold(5, 100, func(i, acc int) M[int] {
				return Then(l.add(i), Return(acc+i))
			})
			return Bind(m, func(acc int) M[Unit] { return l.add(acc) })
		}
	}
	checkEquivalent(t, "FoldN", mk(FoldN[int]), mk(NaiveFoldN[int]))
}

func TestBindChainEquivalence(t *testing.T) {
	mk := func(chain func(M[int], ...func(int) M[int]) M[int]) func(l *logger) M[Unit] {
		return func(l *logger) M[Unit] {
			fs := make([]func(int) M[int], 4)
			for j := range fs {
				j := j
				fs[j] = func(x int) M[int] { return Then(l.add(j), Return(x+j)) }
			}
			m := chain(Return(1), fs...)
			return Bind(m, func(x int) M[Unit] { return l.add(x) })
		}
	}
	checkEquivalent(t, "BindChain", mk(BindChain[int]), mk(NaiveBindChain[int]))
}

// TestFusedLoopReplay checks replay safety: a fused loop trace retained
// inside a RepeatN body is re-forced from the head after completing, and
// must run in full each time (the spine resets its cursor at the k
// handoff).
func TestFusedLoopReplay(t *testing.T) {
	var l logger
	inner := ForN(3, func(i int) M[Unit] { return l.add(i) })
	run(t, RepeatN(2, inner))
	if !equalInts(l.values(), []int{0, 1, 2, 0, 1, 2}) {
		t.Fatalf("replayed ForN log = %v", l.values())
	}
	l.xs = nil
	n := 0
	loop := Loop(NBIO(func() bool {
		n++
		l.mu.Lock()
		l.xs = append(l.xs, n)
		l.mu.Unlock()
		return n%3 != 0
	}))
	run(t, RepeatN(2, loop))
	if !equalInts(l.values(), []int{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("replayed Loop log = %v", l.values())
	}
}

// TestFusedCatchInteraction: a fused Seq inside Catch must unwind to the
// handler exactly like the naive spelling when an element throws.
func TestFusedCatchInteraction(t *testing.T) {
	sentinel := errors.New("boom")
	mk := func(seq func(...M[Unit]) M[Unit]) func(l *logger) M[Unit] {
		return func(l *logger) M[Unit] {
			return Catch(
				seq(l.add(1), Throw[Unit](sentinel), l.add(2)),
				func(err error) M[Unit] {
					if !errors.Is(err, sentinel) {
						return Throw[Unit](err)
					}
					return l.add(3)
				},
			)
		}
	}
	checkEquivalent(t, "Seq-in-Catch", mk(Seq), mk(NaiveSeq))
}

// ---------------------------------------------------------------------------
// Allocation pins for the fused fast path (the blocking core-alloc CI leg).
// ---------------------------------------------------------------------------

// spinAllocs measures allocations per iteration of a 400-iteration spin
// under the given loop constructor on a warm runtime.
func spinAllocs(t *testing.T, mkLoop func(iters int, probe M[bool]) M[Unit]) float64 {
	t.Helper()
	rt := NewRuntime(Options{Workers: 1, BlioWorkers: BlioInline})
	t.Cleanup(rt.Shutdown)
	const iters = 400
	total := testing.AllocsPerRun(10, func() {
		n := 0
		probe := NBIO(func() bool {
			n++
			return n < iters
		})
		rt.Run(mkLoop(iters, probe))
	})
	return total / iters
}

// TestAllocFusedLoopSpin pins the tentpole claim: a fused Loop iteration
// allocates nothing. The whole 400-iteration run is allowed the fixed
// spine/thread setup cost only.
func TestAllocFusedLoopSpin(t *testing.T) {
	per := spinAllocs(t, func(_ int, probe M[bool]) M[Unit] { return Loop(probe) })
	if per > 0.05 {
		t.Fatalf("fused Loop allocates %.3f allocs/iteration, want 0", per)
	}
}

// TestAllocFusedForNSpin pins ForN's spine: with an allocation-free body
// the per-iteration cost is zero.
func TestAllocFusedForNSpin(t *testing.T) {
	per := spinAllocs(t, func(iters int, _ M[bool]) M[Unit] {
		return ForN(iters, func(int) M[Unit] { return Skip })
	})
	if per > 0.05 {
		t.Fatalf("fused ForN allocates %.3f allocs/iteration, want 0", per)
	}
}

// TestAllocRepeatNSpin pins the constant-body cache: RepeatN re-forces
// one cached body trace with no per-iteration allocation.
func TestAllocRepeatNSpin(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1, BlioWorkers: BlioInline})
	t.Cleanup(rt.Shutdown)
	const iters = 400
	var n int
	body := Do(func() { n++ })
	total := testing.AllocsPerRun(10, func() {
		n = 0
		rt.Run(RepeatN(iters, body))
		if n != iters {
			t.Fatalf("RepeatN ran %d iterations, want %d", n, iters)
		}
	})
	if per := total / iters; per > 0.05 {
		t.Fatalf("RepeatN allocates %.3f allocs/iteration, want 0", per)
	}
}
