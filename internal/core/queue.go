package core

import (
	"sync"
	"sync/atomic"

	"hybrid/internal/vclock"
)

// readyQueue abstracts the scheduler's task queue (Figure 14's arrows).
// The default sharedQueue is the paper's single ready_queue; stealingQueue
// implements the per-scheduler queues with work stealing that §4.4
// sketches as an improvement.
//
// When the runtime runs in the virtual timing domain, the ready queue is
// bound to the clock (bindClock) and becomes the clock's quiescer: it
// tracks which workers are parked in per-worker cache-line-padded flags,
// and virtual time advances only when every worker is parked and no
// thread is queued anywhere. Workers entering pop also stage behind the
// clock's dispatch gate, so a timestamp's event batch is fully fanned out
// before any worker consumes the threads it made runnable.
type readyQueue interface {
	// push appends a runnable thread. It reports whether the thread was
	// accepted: a closed queue rejects, and the caller must then account
	// for the thread itself (mark it done, release any deferred-completion
	// ticket) — silently dropping a TCB wedges WaitIdle and virtual-clock
	// quiescence.
	push(t *TCB) bool
	// pushLocal appends a runnable thread with affinity to the given
	// worker: a work-stealing queue puts it on that worker's own deque
	// (locality for batch-exhausted threads); the shared queue ignores
	// the hint. Same rejection contract as push.
	pushLocal(worker int, t *TCB) bool
	// pushBatch appends a batch of runnable threads under one lock
	// acquisition, waking at most one blocked worker per thread (targeted
	// Signal, never Broadcast). All-or-none: a closed queue rejects the
	// whole batch and the caller accounts for every thread.
	pushBatch(ts []*TCB) bool
	// pop removes a thread for the given worker, blocking until one is
	// available. stolen reports that the thread came from another
	// worker's deque. It returns ok=false once the queue is closed and
	// there is nothing further to do.
	pop(worker int) (t *TCB, stolen bool, ok bool)
	// close releases all blocked workers and returns the threads still
	// queued, so the caller can account for each discarded one.
	close() []*TCB
	// size reports the number of queued threads (diagnostics).
	size() int
	// bindClock makes the queue the virtual clock's quiescer for the
	// given number of workers. Must be called before any worker pops.
	bindClock(vc *vclock.VirtualClock, workers int)
}

// parkFlag is one worker's parked indicator, padded out to its own cache
// line so adjacent workers' flags do not false-share. The flags (and the
// nparked aggregate) are maintained under the queue lock: a worker is
// "parked" from the moment it finds the queue dry until it takes work or
// exits, including the window where it is driving the clock's dispatch
// loop — it holds no threads then, so it does not obstruct quiescence.
type parkFlag struct {
	parked bool
	_      [63]byte
}

// ---------------------------------------------------------------------------
// sharedQueue: one global FIFO ring, the paper's ready_queue (a Chan in
// the Haskell implementation).
// ---------------------------------------------------------------------------

type sharedQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ring    []*TCB
	head    int
	count   int
	waiting int // workers blocked in pop, for targeted batch signaling
	closed  bool

	// Virtual-clock binding (nil for the blio pool and real-clock runs).
	vc      *vclock.VirtualClock
	workers int
	parked  []parkFlag
	nparked int
	exited  int // workers gone after close; they count as parked forever
}

func newSharedQueue() *sharedQueue {
	q := &sharedQueue{ring: make([]*TCB, 64)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *sharedQueue) bindClock(vc *vclock.VirtualClock, workers int) {
	q.vc = vc
	q.workers = workers
	q.parked = make([]parkFlag, workers)
	vc.RegisterQuiescer(q.idle)
}

// idle is the clock's quiescer: no queued threads and every worker parked
// (or exited). Any activity that could make new work runnable while all
// workers are parked must hold the clock (Enter before publishing), so
// once this reports true under the clock lock, it stays true until the
// clock dispatches.
func (q *sharedQueue) idle() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count == 0 && q.nparked+q.exited == q.workers
}

func (q *sharedQueue) push(t *TCB) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.grow()
	q.ring[(q.head+q.count)%len(q.ring)] = t
	q.count++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// pushLocal ignores the affinity hint: there is only one queue.
func (q *sharedQueue) pushLocal(_ int, t *TCB) bool { return q.push(t) }

// pushBatch appends every thread under one lock acquisition and signals
// once per thread, capped at the number of blocked workers.
func (q *sharedQueue) pushBatch(ts []*TCB) bool {
	if len(ts) == 0 {
		return true
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	for _, t := range ts {
		q.grow()
		q.ring[(q.head+q.count)%len(q.ring)] = t
		q.count++
	}
	sig := min(len(ts), q.waiting)
	q.mu.Unlock()
	for i := 0; i < sig; i++ {
		q.cond.Signal()
	}
	return true
}

// grow doubles the ring when full. Called with q.mu held.
func (q *sharedQueue) grow() {
	if q.count < len(q.ring) {
		return
	}
	bigger := make([]*TCB, len(q.ring)*2)
	for i := 0; i < q.count; i++ {
		bigger[i] = q.ring[(q.head+i)%len(q.ring)]
	}
	q.ring = bigger
	q.head = 0
}

func (q *sharedQueue) pop(worker int) (*TCB, bool, bool) {
	q.mu.Lock()
	if q.vc == nil {
		// Classic path: blio pool and real-clock runtimes.
		for q.count == 0 && !q.closed {
			q.waiting++
			q.cond.Wait()
			q.waiting--
		}
		if q.count == 0 {
			q.mu.Unlock()
			return nil, false, false
		}
		t := q.take()
		q.mu.Unlock()
		return t, false, true
	}
	// Clock-bound path: the worker is one leg of the epoch barrier.
	for {
		if q.count == 0 && q.closed {
			q.exited++
			q.mu.Unlock()
			// Final advance: pending timers may still fire; their resumes
			// hit the closed queue and are discarded with full accounting.
			q.vc.Advance()
			return nil, false, false
		}
		if q.vc.GateClosed() {
			// A timestamp's event batch is mid-flight: stage until the
			// whole batch has fanned out.
			q.mu.Unlock()
			q.vc.Gate()
			q.mu.Lock()
			continue
		}
		if q.count > 0 {
			t := q.take()
			q.mu.Unlock()
			return t, false, true
		}
		// Dry: park and offer to drive the clock. While inside Advance the
		// worker stays counted as parked — it holds no work.
		q.parked[worker].parked = true
		q.nparked++
		q.mu.Unlock()
		q.vc.Advance()
		q.mu.Lock()
		if q.count > 0 || q.closed || q.vc.GateClosed() {
			q.parked[worker].parked = false
			q.nparked--
			continue
		}
		q.waiting++
		q.cond.Wait()
		q.waiting--
		q.parked[worker].parked = false
		q.nparked--
	}
}

// take removes the oldest thread. Called with q.mu held and count > 0.
func (q *sharedQueue) take() *TCB {
	t := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) % len(q.ring)
	q.count--
	return t
}

func (q *sharedQueue) close() []*TCB {
	q.mu.Lock()
	q.closed = true
	var drained []*TCB
	for q.count > 0 {
		drained = append(drained, q.take())
	}
	q.mu.Unlock()
	q.cond.Broadcast()
	return drained
}

func (q *sharedQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// ---------------------------------------------------------------------------
// stealingQueue: one deque per worker; a worker drains its own deque and
// steals from the others when it runs dry. Pushes from outside any worker
// are distributed round-robin; pushLocal targets the calling worker's own
// deque. A single lock guards all deques — adequate at this repository's
// scale and keeps the stealing logic obviously correct; the ablation
// benchmark compares queue disciplines, not lock implementations.
// ---------------------------------------------------------------------------

type stealingQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]*TCB
	rr      int
	total   int
	waiting int // workers blocked in pop, for targeted batch signaling
	closed  bool

	// Virtual-clock binding (nil on real-clock runs).
	vc      *vclock.VirtualClock
	parked  []parkFlag
	nparked int
	exited  int

	// slots[w] is worker w's one-thread buffer, the pushLocal fast path:
	// pushLocal(w) is called only from worker w's goroutine (batch
	// exhaustion), and pop(w) drains the slot first, so the common
	// re-enqueue→dispatch cycle never touches the lock. The pointer is
	// atomic because idle foreign workers and close() may still steal from
	// a slot when every deque is dry. closedMirror and slotCount shadow
	// closed/total so the lock-free paths can consult them.
	//
	// The slot fast path needs no dispatch-gate check: the gate closes
	// only when every worker is parked, and a worker with a loaded slot
	// was running an instant ago — the quiescer cannot have reported idle
	// (slotCount was nonzero and the worker unparked), so no batch starts
	// while any slot is in play.
	slots        []ownerSlot
	slotCount    atomic.Int64
	closedMirror atomic.Bool
}

// ownerSlot is one worker's buffer, padded out to its own cache line so
// adjacent workers' slots do not false-share. streak is owner-private.
type ownerSlot struct {
	t      atomic.Pointer[TCB]
	streak int // consecutive slot dispatches, for fairness
	_      [40]byte
}

func newStealingQueue(workers int) *stealingQueue {
	q := &stealingQueue{
		deques: make([][]*TCB, workers),
		slots:  make([]ownerSlot, workers),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *stealingQueue) bindClock(vc *vclock.VirtualClock, workers int) {
	q.vc = vc
	q.parked = make([]parkFlag, len(q.deques))
	vc.RegisterQuiescer(q.idle)
}

// idle is the clock's quiescer; see sharedQueue.idle.
func (q *stealingQueue) idle() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total == 0 && q.slotCount.Load() == 0 && q.nparked+q.exited == len(q.deques)
}

func (q *stealingQueue) push(t *TCB) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	i := q.rr % len(q.deques)
	q.rr++
	q.deques[i] = append(q.deques[i], t)
	q.total++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// pushLocal hands a batch-exhausted thread back to the worker that was
// just running it. Fast path: the worker's own slot, an atomic CAS with
// no lock acquisition — the thread resumes on the core whose cache it
// just warmed. If a Shutdown races the closedMirror read, the thread
// lands in the slot anyway; close() and the owner's next pop both drain
// slots, so it is either discarded or executes once more and is then
// accounted normally — nothing leaks.
func (q *stealingQueue) pushLocal(worker int, t *TCB) bool {
	w := worker % len(q.deques)
	if !q.closedMirror.Load() && q.slots[w].t.CompareAndSwap(nil, t) {
		q.slotCount.Add(1)
		q.cond.Signal() // an idle foreign worker may steal from the slot
		return true
	}
	return q.pushLocalSlow(w, t)
}

// pushBatch spreads the batch round-robin across the deques under one
// lock acquisition — the epoll harvest loop lands a whole poll round of
// unblocked threads here in one push — and wakes at most one blocked
// worker per thread.
func (q *stealingQueue) pushBatch(ts []*TCB) bool {
	if len(ts) == 0 {
		return true
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	for _, t := range ts {
		i := q.rr % len(q.deques)
		q.rr++
		q.deques[i] = append(q.deques[i], t)
	}
	q.total += len(ts)
	sig := min(len(ts), q.waiting)
	q.mu.Unlock()
	for i := 0; i < sig; i++ {
		q.cond.Signal()
	}
	return true
}

// pushLocalSlow appends to the worker's deque under the lock: the slot was
// occupied or being flushed for fairness. Reports false when closed.
func (q *stealingQueue) pushLocalSlow(w int, t *TCB) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.deques[w] = append(q.deques[w], t)
	q.total++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

func (q *stealingQueue) pop(worker int) (*TCB, bool, bool) {
	w := worker % len(q.deques)
	s := &q.slots[w]
	// Owner slot first (lock-free). A thread could monopolize its worker
	// by exhausting every batch straight back into the slot, so only one
	// consecutive dispatch comes from it; the next one flushes the slot
	// into the shared deque and fetches FIFO, restoring round-robin at a
	// granularity of two batches.
	if t := s.t.Swap(nil); t != nil {
		q.slotCount.Add(-1)
		if s.streak == 0 {
			s.streak = 1
			return t, false, true
		}
		s.streak = 0
		if !q.pushLocalSlow(w, t) {
			// Closed: nobody will drain the deque, so run the thread this
			// one last time; its completion accounts for it.
			return t, false, true
		}
	} else {
		s.streak = 0
	}
	q.mu.Lock()
	for {
		if q.vc != nil && q.vc.GateClosed() {
			q.mu.Unlock()
			q.vc.Gate()
			q.mu.Lock()
			continue
		}
		if q.total == 0 && q.slotCount.Load() == 0 {
			if q.closed {
				if q.vc == nil {
					q.mu.Unlock()
					return nil, false, false
				}
				q.exited++
				q.mu.Unlock()
				q.vc.Advance()
				return nil, false, false
			}
			// Dry: park, and with a clock bound, offer to drive it.
			if q.vc != nil {
				q.parked[w].parked = true
				q.nparked++
				q.mu.Unlock()
				q.vc.Advance()
				q.mu.Lock()
				if q.total > 0 || q.slotCount.Load() != 0 || q.closed || q.vc.GateClosed() {
					q.parked[w].parked = false
					q.nparked--
					continue
				}
				q.waiting++
				q.cond.Wait()
				q.waiting--
				q.parked[w].parked = false
				q.nparked--
				continue
			}
			q.waiting++
			q.cond.Wait()
			q.waiting--
			continue
		}
		// Own deque first (FIFO for round-robin fairness within a worker)…
		if len(q.deques[w]) > 0 {
			t := q.popFrom(w)
			q.mu.Unlock()
			return t, false, true
		}
		// …then steal from the victim with the most queued work.
		victim, best := -1, 0
		for i, d := range q.deques {
			if len(d) > best {
				victim, best = i, len(d)
			}
		}
		if victim >= 0 {
			t := q.popFrom(victim)
			q.mu.Unlock()
			return t, true, true
		}
		if q.total > 0 {
			// total says there is work but every deque is empty: the
			// counter drifted. Resynchronize and re-check under the wait
			// loop instead of panicking inside popFrom(-1).
			q.total = 0
			for _, d := range q.deques {
				q.total += len(d)
			}
			continue
		}
		// Deques dry but a slot holds a thread: take our own (not a
		// steal), else raid another worker's.
		if t := s.t.Swap(nil); t != nil {
			q.slotCount.Add(-1)
			q.mu.Unlock()
			return t, false, true
		}
		for i := range q.slots {
			if i == w {
				continue
			}
			if t := q.slots[i].t.Swap(nil); t != nil {
				q.slotCount.Add(-1)
				q.mu.Unlock()
				return t, true, true
			}
		}
		// Raced with another popper for the slot contents; loop back to
		// the dry branch and wait.
	}
}

// popFrom removes the oldest thread from deque i. Called with q.mu held
// and the deque known non-empty.
func (q *stealingQueue) popFrom(i int) *TCB {
	d := q.deques[i]
	t := d[0]
	d[0] = nil
	q.deques[i] = d[1:]
	if len(q.deques[i]) == 0 {
		q.deques[i] = nil // let the backing array be collected
	}
	q.total--
	return t
}

func (q *stealingQueue) close() []*TCB {
	q.mu.Lock()
	q.closed = true
	q.closedMirror.Store(true)
	var drained []*TCB
	for i, d := range q.deques {
		drained = append(drained, d...)
		q.deques[i] = nil
	}
	for i := range q.slots {
		if t := q.slots[i].t.Swap(nil); t != nil {
			q.slotCount.Add(-1)
			drained = append(drained, t)
		}
	}
	q.total = 0
	q.mu.Unlock()
	q.cond.Broadcast()
	return drained
}

func (q *stealingQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total + int(q.slotCount.Load())
}
