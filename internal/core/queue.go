package core

import "sync"

// readyQueue abstracts the scheduler's task queue (Figure 14's arrows).
// The default sharedQueue is the paper's single ready_queue; stealingQueue
// implements the per-scheduler queues with work stealing that §4.4
// sketches as an improvement.
type readyQueue interface {
	// push appends a runnable thread.
	push(t *TCB)
	// pop removes a thread for the given worker, blocking until one is
	// available. It returns ok=false once the queue is closed and,
	// for the shared queue, drained of nothing further to do.
	pop(worker int) (*TCB, bool)
	// close releases all blocked workers.
	close()
	// size reports the number of queued threads (diagnostics).
	size() int
}

// ---------------------------------------------------------------------------
// sharedQueue: one global FIFO ring, the paper's ready_queue (a Chan in
// the Haskell implementation).
// ---------------------------------------------------------------------------

type sharedQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []*TCB
	head   int
	count  int
	closed bool
}

func newSharedQueue() *sharedQueue {
	q := &sharedQueue{ring: make([]*TCB, 64)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *sharedQueue) push(t *TCB) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.grow()
	q.ring[(q.head+q.count)%len(q.ring)] = t
	q.count++
	q.mu.Unlock()
	q.cond.Signal()
}

// grow doubles the ring when full. Called with q.mu held.
func (q *sharedQueue) grow() {
	if q.count < len(q.ring) {
		return
	}
	bigger := make([]*TCB, len(q.ring)*2)
	for i := 0; i < q.count; i++ {
		bigger[i] = q.ring[(q.head+i)%len(q.ring)]
	}
	q.ring = bigger
	q.head = 0
}

func (q *sharedQueue) pop(int) (*TCB, bool) {
	q.mu.Lock()
	for q.count == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.count == 0 {
		q.mu.Unlock()
		return nil, false
	}
	t := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) % len(q.ring)
	q.count--
	q.mu.Unlock()
	return t, true
}

func (q *sharedQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *sharedQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// ---------------------------------------------------------------------------
// stealingQueue: one deque per worker; a worker drains its own deque and
// steals from the others when it runs dry. Pushes from outside any worker
// are distributed round-robin. A single lock guards all deques — adequate
// at this repository's scale and keeps the stealing logic obviously
// correct; the ablation benchmark compares queue disciplines, not lock
// implementations.
// ---------------------------------------------------------------------------

type stealingQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]*TCB
	rr     int
	total  int
	closed bool
}

func newStealingQueue(workers int) *stealingQueue {
	q := &stealingQueue{deques: make([][]*TCB, workers)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *stealingQueue) push(t *TCB) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	i := q.rr % len(q.deques)
	q.rr++
	q.deques[i] = append(q.deques[i], t)
	q.total++
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *stealingQueue) pop(worker int) (*TCB, bool) {
	q.mu.Lock()
	for q.total == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.total == 0 {
		q.mu.Unlock()
		return nil, false
	}
	// Own deque first (FIFO for round-robin fairness within a worker)…
	if w := worker % len(q.deques); len(q.deques[w]) > 0 {
		t := q.popFrom(w)
		q.mu.Unlock()
		return t, true
	}
	// …then steal from the victim with the most queued work.
	victim, best := -1, 0
	for i, d := range q.deques {
		if len(d) > best {
			victim, best = i, len(d)
		}
	}
	t := q.popFrom(victim)
	q.mu.Unlock()
	return t, true
}

// popFrom removes the oldest thread from deque i. Called with q.mu held
// and the deque known non-empty.
func (q *stealingQueue) popFrom(i int) *TCB {
	d := q.deques[i]
	t := d[0]
	d[0] = nil
	q.deques[i] = d[1:]
	if len(q.deques[i]) == 0 {
		q.deques[i] = nil // let the backing array be collected
	}
	q.total--
	return t
}

func (q *stealingQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *stealingQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}
