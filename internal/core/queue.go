package core

import "sync"

// readyQueue abstracts the scheduler's task queue (Figure 14's arrows).
// The default sharedQueue is the paper's single ready_queue; stealingQueue
// implements the per-scheduler queues with work stealing that §4.4
// sketches as an improvement.
type readyQueue interface {
	// push appends a runnable thread. It reports whether the thread was
	// accepted: a closed queue rejects, and the caller must then account
	// for the thread itself (release its clock hold, mark it done) —
	// silently dropping a TCB leaks the busy hold taken at enqueue and
	// wedges WaitIdle and virtual-clock quiescence.
	push(t *TCB) bool
	// pushLocal appends a runnable thread with affinity to the given
	// worker: a work-stealing queue puts it on that worker's own deque
	// (locality for batch-exhausted threads); the shared queue ignores
	// the hint. Same rejection contract as push.
	pushLocal(worker int, t *TCB) bool
	// pop removes a thread for the given worker, blocking until one is
	// available. stolen reports that the thread came from another
	// worker's deque. It returns ok=false once the queue is closed and
	// there is nothing further to do.
	pop(worker int) (t *TCB, stolen bool, ok bool)
	// close releases all blocked workers and returns the threads still
	// queued, so the caller can account for each discarded one.
	close() []*TCB
	// size reports the number of queued threads (diagnostics).
	size() int
}

// ---------------------------------------------------------------------------
// sharedQueue: one global FIFO ring, the paper's ready_queue (a Chan in
// the Haskell implementation).
// ---------------------------------------------------------------------------

type sharedQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []*TCB
	head   int
	count  int
	closed bool
}

func newSharedQueue() *sharedQueue {
	q := &sharedQueue{ring: make([]*TCB, 64)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *sharedQueue) push(t *TCB) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.grow()
	q.ring[(q.head+q.count)%len(q.ring)] = t
	q.count++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// pushLocal ignores the affinity hint: there is only one queue.
func (q *sharedQueue) pushLocal(_ int, t *TCB) bool { return q.push(t) }

// grow doubles the ring when full. Called with q.mu held.
func (q *sharedQueue) grow() {
	if q.count < len(q.ring) {
		return
	}
	bigger := make([]*TCB, len(q.ring)*2)
	for i := 0; i < q.count; i++ {
		bigger[i] = q.ring[(q.head+i)%len(q.ring)]
	}
	q.ring = bigger
	q.head = 0
}

func (q *sharedQueue) pop(int) (*TCB, bool, bool) {
	q.mu.Lock()
	for q.count == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.count == 0 {
		q.mu.Unlock()
		return nil, false, false
	}
	t := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) % len(q.ring)
	q.count--
	q.mu.Unlock()
	return t, false, true
}

func (q *sharedQueue) close() []*TCB {
	q.mu.Lock()
	q.closed = true
	var drained []*TCB
	for q.count > 0 {
		drained = append(drained, q.ring[q.head])
		q.ring[q.head] = nil
		q.head = (q.head + 1) % len(q.ring)
		q.count--
	}
	q.mu.Unlock()
	q.cond.Broadcast()
	return drained
}

func (q *sharedQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// ---------------------------------------------------------------------------
// stealingQueue: one deque per worker; a worker drains its own deque and
// steals from the others when it runs dry. Pushes from outside any worker
// are distributed round-robin; pushLocal targets the calling worker's own
// deque. A single lock guards all deques — adequate at this repository's
// scale and keeps the stealing logic obviously correct; the ablation
// benchmark compares queue disciplines, not lock implementations.
// ---------------------------------------------------------------------------

type stealingQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]*TCB
	rr     int
	total  int
	closed bool
}

func newStealingQueue(workers int) *stealingQueue {
	q := &stealingQueue{deques: make([][]*TCB, workers)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *stealingQueue) push(t *TCB) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	i := q.rr % len(q.deques)
	q.rr++
	q.deques[i] = append(q.deques[i], t)
	q.total++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// pushLocal appends to the worker's own deque, so a batch-exhausted
// thread resumes on the core whose cache it just warmed.
func (q *stealingQueue) pushLocal(worker int, t *TCB) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	i := worker % len(q.deques)
	q.deques[i] = append(q.deques[i], t)
	q.total++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

func (q *stealingQueue) pop(worker int) (*TCB, bool, bool) {
	q.mu.Lock()
	for {
		for q.total == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.total == 0 {
			q.mu.Unlock()
			return nil, false, false
		}
		// Own deque first (FIFO for round-robin fairness within a worker)…
		if w := worker % len(q.deques); len(q.deques[w]) > 0 {
			t := q.popFrom(w)
			q.mu.Unlock()
			return t, false, true
		}
		// …then steal from the victim with the most queued work.
		victim, best := -1, 0
		for i, d := range q.deques {
			if len(d) > best {
				victim, best = i, len(d)
			}
		}
		if victim == -1 {
			// total says there is work but every deque is empty: the
			// counter drifted. Resynchronize and re-check under the wait
			// loop instead of panicking inside popFrom(-1).
			q.total = 0
			for _, d := range q.deques {
				q.total += len(d)
			}
			continue
		}
		t := q.popFrom(victim)
		q.mu.Unlock()
		return t, true, true
	}
}

// popFrom removes the oldest thread from deque i. Called with q.mu held
// and the deque known non-empty.
func (q *stealingQueue) popFrom(i int) *TCB {
	d := q.deques[i]
	t := d[0]
	d[0] = nil
	q.deques[i] = d[1:]
	if len(q.deques[i]) == 0 {
		q.deques[i] = nil // let the backing array be collected
	}
	q.total--
	return t
}

func (q *stealingQueue) close() []*TCB {
	q.mu.Lock()
	q.closed = true
	var drained []*TCB
	for i, d := range q.deques {
		drained = append(drained, d...)
		q.deques[i] = nil
	}
	q.total = 0
	q.mu.Unlock()
	q.cond.Broadcast()
	return drained
}

func (q *stealingQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}
