package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hybrid/internal/vclock"
)

func TestFirstOfImmediateWinner(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	var got atomic.Int64
	rt.Spawn(Bind(
		FirstOf(Return(1), Then(Sleep(clk, time.Second), Return(2))),
		func(x int) M[Unit] { return Do(func() { got.Store(int64(x)) }) },
	))
	waitFor(t, func() bool { return got.Load() == 1 })
}

func TestFirstOfSleeperOrdering(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	var got atomic.Int64
	done := make(chan struct{})
	rt.Spawn(Bind(
		FirstOf(
			Then(Sleep(clk, 30*time.Millisecond), Return(30)),
			Then(Sleep(clk, 10*time.Millisecond), Return(10)),
		),
		func(x int) M[Unit] {
			return Do(func() { got.Store(int64(x)); close(done) })
		},
	))
	<-done
	if got.Load() != 10 {
		t.Fatalf("winner = %d, want the 10ms sleeper", got.Load())
	}
}

func TestFirstOfErrorWins(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	boom := errors.New("fast failure")
	var caught atomic.Value
	done := make(chan struct{})
	rt.Spawn(Catch(
		Then(FirstOf(Throw[int](boom), Then(Sleep(clk, time.Second), Return(1))), Skip),
		func(err error) M[Unit] {
			return Do(func() { caught.Store(err); close(done) })
		},
	))
	<-done
	if !errors.Is(caught.Load().(error), boom) {
		t.Fatalf("caught %v", caught.Load())
	}
}

func TestFirstOfLoserKeepsRunning(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	var loserRan atomic.Bool
	done := make(chan struct{})
	rt.Spawn(Then(
		FirstOf(
			Return(1),
			Then(Sleep(clk, time.Millisecond), NBIO(func() int {
				loserRan.Store(true)
				return 2
			})),
		),
		Do(func() { close(done) }),
	))
	<-done
	rt.WaitIdle() // the loser thread drains on its own
	if !loserRan.Load() {
		t.Fatal("loser thread was cancelled; the model has no cancellation")
	}
}

func TestTimeoutExpires(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	never := Suspend(func(func(int)) {}) // parks forever
	var caught atomic.Value
	done := make(chan struct{})
	rt.Spawn(Catch(
		Then(Timeout(clk, 50*time.Millisecond, never), Skip),
		func(err error) M[Unit] {
			return Do(func() { caught.Store(err); close(done) })
		},
	))
	<-done
	if !errors.Is(caught.Load().(error), ErrTimedOut) {
		t.Fatalf("caught %v", caught.Load())
	}
	if clk.Now() != vclock.Time(50*time.Millisecond) {
		t.Fatalf("timed out at %v", clk.Now())
	}
}

func TestTimeoutCompletesInTime(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	var got atomic.Int64
	done := make(chan struct{})
	rt.Spawn(Bind(
		Timeout(clk, time.Second, Then(Sleep(clk, 10*time.Millisecond), Return(7))),
		func(x int) M[Unit] { return Do(func() { got.Store(int64(x)); close(done) }) },
	))
	<-done
	if got.Load() != 7 {
		t.Fatalf("got %d", got.Load())
	}
}

func TestFirstOfReusableComputation(t *testing.T) {
	// The same FirstOf value executed twice must race fresh threads.
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	race := FirstOf(Return("a"), Then(Sleep(clk, time.Hour), Return("b")))
	var got [2]string
	done := make(chan struct{})
	rt.Spawn(Bind(race, func(x string) M[Unit] {
		return Bind(race, func(y string) M[Unit] {
			return Do(func() { got[0], got[1] = x, y; close(done) })
		})
	}))
	<-done
	if got[0] != "a" || got[1] != "a" {
		t.Fatalf("got %v", got)
	}
}
