package core

import (
	"sync"
	"testing"
	"testing/quick"
)

// run executes a single program in a fresh single-worker runtime and waits
// for every thread to finish.
func run(t *testing.T, m M[Unit]) *Runtime {
	t.Helper()
	rt := NewRuntime(Options{Workers: 1})
	t.Cleanup(rt.Shutdown)
	rt.Run(m)
	return rt
}

// logger collects values appended by threads; the observable effect log
// used to compare programs.
type logger struct {
	mu sync.Mutex
	xs []int
}

func (l *logger) add(x int) M[Unit] {
	return Do(func() {
		l.mu.Lock()
		l.xs = append(l.xs, x)
		l.mu.Unlock()
	})
}

func (l *logger) values() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int, len(l.xs))
	copy(out, l.xs)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// observe runs a computation and returns its result plus the effect log.
func observe[A any](t *testing.T, mk func(l *logger) M[A]) (A, []int) {
	t.Helper()
	var (
		l      logger
		result A
	)
	run(t, Bind(mk(&l), func(a A) M[Unit] {
		return Do(func() { result = a })
	}))
	return result, l.values()
}

func TestReturnYieldsValue(t *testing.T) {
	got, _ := observe(t, func(*logger) M[int] { return Return(42) })
	if got != 42 {
		t.Fatalf("Return(42) produced %d", got)
	}
}

func TestBindSequencesEffects(t *testing.T) {
	_, log := observe(t, func(l *logger) M[int] {
		return Bind(Then(l.add(1), Return(10)), func(x int) M[int] {
			return Then(l.add(2), Return(x+1))
		})
	})
	if !equalInts(log, []int{1, 2}) {
		t.Fatalf("effect order = %v, want [1 2]", log)
	}
}

// Monad laws, observed through both the result value and the effect log.
// The generator draws small effectful computations; programs are compared
// by running them in fresh runtimes.

func effectful(l *logger, tag, val int) M[int] {
	return Then(l.add(tag), NBIO(func() int { return val }))
}

func TestMonadLeftIdentity(t *testing.T) {
	// Bind(Return(x), f) == f(x)
	check := func(x int8) bool {
		f := func(v int) M[int] {
			return func(k func(int) Trace) Trace { return k(int(v) * 2) }
		}
		lhsVal, _ := observe(t, func(*logger) M[int] { return Bind(Return(int(x)), f) })
		rhsVal, _ := observe(t, func(*logger) M[int] { return f(int(x)) })
		return lhsVal == rhsVal
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonadRightIdentity(t *testing.T) {
	// Bind(m, Return) == m — for effectful m: same value, same effects.
	check := func(tag, val int8) bool {
		lhsVal, lhsLog := observe(t, func(l *logger) M[int] {
			return Bind(effectful(l, int(tag), int(val)), Return[int])
		})
		rhsVal, rhsLog := observe(t, func(l *logger) M[int] {
			return effectful(l, int(tag), int(val))
		})
		return lhsVal == rhsVal && equalInts(lhsLog, rhsLog)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonadAssociativity(t *testing.T) {
	// Bind(Bind(m, f), g) == Bind(m, func(x){ return Bind(f(x), g) })
	check := func(a, b, c int8) bool {
		mk := func(l *logger) (M[int], func(int) M[int], func(int) M[int]) {
			m := effectful(l, 1, int(a))
			f := func(x int) M[int] { return effectful(l, 2, x+int(b)) }
			g := func(x int) M[int] { return effectful(l, 3, x*int(c)) }
			return m, f, g
		}
		lhsVal, lhsLog := observe(t, func(l *logger) M[int] {
			m, f, g := mk(l)
			return Bind(Bind(m, f), g)
		})
		rhsVal, rhsLog := observe(t, func(l *logger) M[int] {
			m, f, g := mk(l)
			return Bind(m, func(x int) M[int] { return Bind(f(x), g) })
		})
		return lhsVal == rhsVal && equalInts(lhsLog, rhsLog)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapAppliesFunction(t *testing.T) {
	got, _ := observe(t, func(*logger) M[int] { return Map(Return(20), func(x int) int { return x + 1 }) })
	if got != 21 {
		t.Fatalf("Map result = %d, want 21", got)
	}
}

func TestSeqRunsInOrder(t *testing.T) {
	_, log := observe(t, func(l *logger) M[Unit] {
		return Seq(l.add(1), l.add(2), l.add(3))
	})
	if !equalInts(log, []int{1, 2, 3}) {
		t.Fatalf("Seq order = %v", log)
	}
}

func TestSeqEmpty(t *testing.T) {
	_, log := observe(t, func(*logger) M[Unit] { return Seq() })
	if len(log) != 0 {
		t.Fatalf("empty Seq produced effects: %v", log)
	}
}

func TestForNOrderAndCount(t *testing.T) {
	_, log := observe(t, func(l *logger) M[Unit] {
		return ForN(5, func(i int) M[Unit] { return l.add(i) })
	})
	if !equalInts(log, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("ForN log = %v", log)
	}
}

func TestForNZero(t *testing.T) {
	_, log := observe(t, func(l *logger) M[Unit] {
		return ForN(0, func(i int) M[Unit] { return l.add(i) })
	})
	if len(log) != 0 {
		t.Fatalf("ForN(0) produced effects: %v", log)
	}
}

func TestForEach(t *testing.T) {
	_, log := observe(t, func(l *logger) M[Unit] {
		return ForEach([]int{7, 8, 9}, l.add)
	})
	if !equalInts(log, []int{7, 8, 9}) {
		t.Fatalf("ForEach log = %v", log)
	}
}

func TestWhile(t *testing.T) {
	i := 0
	_, log := observe(t, func(l *logger) M[Unit] {
		return While(
			NBIO(func() bool { return i < 3 }),
			Bind(NBIO(func() int { i++; return i }), l.add),
		)
	})
	if !equalInts(log, []int{1, 2, 3}) {
		t.Fatalf("While log = %v", log)
	}
}

func TestFoldN(t *testing.T) {
	got, _ := observe(t, func(*logger) M[int] {
		return FoldN(5, 0, func(i, acc int) M[int] { return Return(acc + i) })
	})
	if got != 10 {
		t.Fatalf("FoldN sum = %d, want 10", got)
	}
}

// A pure loop of a million iterations must not overflow the Go stack:
// the loop combinators bounce through the scheduler each iteration.
func TestLoopStackSafety(t *testing.T) {
	const n = 1_000_000
	count := 0
	run(t, ForN(n, func(int) M[Unit] {
		count++
		return Skip
	}))
	if count != n {
		t.Fatalf("loop ran %d times, want %d", count, n)
	}
}

func TestFoldNStackSafety(t *testing.T) {
	const n = 500_000
	got, _ := observe(t, func(*logger) M[int] {
		return FoldN(n, 0, func(_, acc int) M[int] { return Return(acc + 1) })
	})
	if got != n {
		t.Fatalf("FoldN = %d, want %d", got, n)
	}
}

func TestForeverWithHalt(t *testing.T) {
	count := 0
	run(t, Forever(Bind(NBIO(func() int { count++; return count }), func(c int) M[Unit] {
		if c >= 10 {
			return Halt[Unit]()
		}
		return Skip
	})))
	if count != 10 {
		t.Fatalf("Forever ran %d times before Halt, want 10", count)
	}
}

func TestBuildTraceProducesNodes(t *testing.T) {
	tr := BuildTrace(Then(Yield(), Skip))
	y, ok := tr.(*YieldNode)
	if !ok {
		t.Fatalf("trace head = %T, want *YieldNode", tr)
	}
	if _, ok := y.Cont.(*RetNode); !ok {
		t.Fatalf("trace tail = %T, want *RetNode", y.Cont)
	}
}

// The trace of the paper's Figure 4 server: sys_call_1; fork client; …
// must produce an NBIO node, then a fork whose child is the client trace.
func TestTraceShapeMatchesFigure4(t *testing.T) {
	client := Do(func() {})
	var server func(depth int) M[Unit]
	server = func(depth int) M[Unit] {
		if depth == 0 {
			return Skip
		}
		return Seq(Do(func() {}), Fork(client), server(depth-1))
	}
	tr := BuildTrace(server(2))
	n1, ok := tr.(*NBIONode)
	if !ok {
		t.Fatalf("node 1 = %T, want *NBIONode (sys_call_1)", tr)
	}
	n2, ok := n1.Effect().(*ForkNode)
	if !ok {
		t.Fatalf("node 2 not a fork")
	}
	if _, ok := n2.Child.(*NBIONode); !ok {
		t.Fatalf("fork child = %T, want *NBIONode (sys_call_2)", n2.Child)
	}
	if _, ok := n2.Cont.(*NBIONode); !ok {
		t.Fatalf("fork cont = %T, want *NBIONode (recursive server)", n2.Cont)
	}
}
