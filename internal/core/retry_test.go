package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hybrid/internal/vclock"
)

// TestRetryPureSuccessIsIdentity is the first retry law: wrapping a
// computation that succeeds changes neither its result nor virtual time.
func TestRetryPureSuccessIsIdentity(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	var got atomic.Int64
	var runs atomic.Int64
	done := make(chan struct{})
	body := NBIO(func() int { runs.Add(1); return 42 })
	rt.Spawn(Bind(
		Retry(clk, Backoff{Attempts: 5, Base: time.Second}, body),
		func(x int) M[Unit] { return Do(func() { got.Store(int64(x)); close(done) }) },
	))
	<-done
	if got.Load() != 42 {
		t.Fatalf("result = %d, want 42", got.Load())
	}
	if runs.Load() != 1 {
		t.Fatalf("body ran %d times, want 1", runs.Load())
	}
	if clk.Now() != 0 {
		t.Fatalf("retry of a success advanced virtual time to %v", clk.Now())
	}
}

// TestRetryBoundedAttempts: a body that always fails runs exactly
// Attempts times and the final error propagates unchanged.
func TestRetryBoundedAttempts(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	boom := errors.New("persistent failure")
	var runs atomic.Int64
	var caught atomic.Value
	done := make(chan struct{})
	body := NBIOe(func() (int, error) { runs.Add(1); return 0, boom })
	rt.Spawn(Catch(
		Then(Retry(clk, Backoff{Attempts: 4, Base: time.Millisecond}, body), Skip),
		func(err error) M[Unit] { return Do(func() { caught.Store(err); close(done) }) },
	))
	<-done
	if runs.Load() != 4 {
		t.Fatalf("body ran %d times, want 4", runs.Load())
	}
	if !errors.Is(caught.Load().(error), boom) {
		t.Fatalf("caught %v, want the body's error", caught.Load())
	}
	// 3 sleeps of 1ms each (constant backoff, Factor defaults to 1).
	if clk.Now() != vclock.Time(3*time.Millisecond) {
		t.Fatalf("virtual time = %v, want 3ms", clk.Now())
	}
}

// TestRetryRecoversMidway: failures followed by a success produce the
// success, with only the failed tries sleeping.
func TestRetryRecoversMidway(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	var runs atomic.Int64
	var got atomic.Int64
	done := make(chan struct{})
	body := NBIOe(func() (int, error) {
		if runs.Add(1) < 3 {
			return 0, errors.New("transient")
		}
		return 7, nil
	})
	rt.Spawn(Bind(
		Retry(clk, Backoff{Attempts: 5, Base: 2 * time.Millisecond}, body),
		func(x int) M[Unit] { return Do(func() { got.Store(int64(x)); close(done) }) },
	))
	<-done
	if got.Load() != 7 || runs.Load() != 3 {
		t.Fatalf("got %d after %d runs", got.Load(), runs.Load())
	}
	if clk.Now() != vclock.Time(4*time.Millisecond) {
		t.Fatalf("virtual time = %v, want 4ms (two 2ms backoffs)", clk.Now())
	}
}

// TestRetryExponentialBackoff: Factor grows the delay, Max caps it.
func TestRetryExponentialBackoff(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	body := NBIOe(func() (int, error) { return 0, errors.New("nope") })
	done := make(chan struct{})
	rt.Spawn(Catch(
		Then(Retry(clk, Backoff{
			Attempts: 5, Base: time.Millisecond, Factor: 2, Max: 3 * time.Millisecond,
		}, body), Skip),
		func(error) M[Unit] { return Do(func() { close(done) }) },
	))
	<-done
	// Delays: 1ms, 2ms, 3ms (capped), 3ms (capped) = 9ms.
	if clk.Now() != vclock.Time(9*time.Millisecond) {
		t.Fatalf("virtual time = %v, want 9ms", clk.Now())
	}
}

// TestRetryIfNonRetryableStops: a predicate miss propagates immediately
// with no sleep and no further tries.
func TestRetryIfNonRetryableStops(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	fatal := errors.New("fatal")
	var runs atomic.Int64
	var caught atomic.Value
	done := make(chan struct{})
	body := NBIOe(func() (int, error) { runs.Add(1); return 0, fatal })
	rt.Spawn(Catch(
		Then(RetryIf(clk, Backoff{Attempts: 5, Base: time.Second},
			func(err error) bool { return !errors.Is(err, fatal) }, body), Skip),
		func(err error) M[Unit] { return Do(func() { caught.Store(err); close(done) }) },
	))
	<-done
	if runs.Load() != 1 {
		t.Fatalf("body ran %d times after a non-retryable error", runs.Load())
	}
	if clk.Now() != 0 {
		t.Fatalf("non-retryable error slept: clock at %v", clk.Now())
	}
	if !errors.Is(caught.Load().(error), fatal) {
		t.Fatalf("caught %v", caught.Load())
	}
}

// TestTimeoutNeverFiresBeforeDeadline is the timeout law: a body that
// finishes at the deadline's edge still wins; the timer cannot fire
// early in virtual time.
func TestTimeoutNeverFiresBeforeDeadline(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	// Sweep bodies that finish strictly before the 10ms deadline: none
	// may observe ErrTimedOut. (At exactly d the race is a scheduling
	// tie; strictly-before is the guarantee.)
	for _, lead := range []time.Duration{1, 5 * time.Millisecond, 10*time.Millisecond - 1} {
		var got atomic.Int64
		done := make(chan struct{})
		rt.Spawn(Bind(
			Catch(
				Timeout(clk, 10*time.Millisecond, Then(Sleep(clk, lead), Return(1))),
				func(err error) M[int] { return Return(-1) },
			),
			func(x int) M[Unit] { return Do(func() { got.Store(int64(x)); close(done) }) },
		))
		<-done
		if got.Load() != 1 {
			t.Fatalf("body finishing %v before the deadline lost the race", 10*time.Millisecond-lead)
		}
	}
}

// TestWithDeadlineExpired: a deadline already in the past throws without
// running the body at all.
func TestWithDeadlineExpired(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	// Advance the clock to 1s.
	step := make(chan struct{})
	rt.Spawn(Then(Sleep(clk, time.Second), Do(func() { close(step) })))
	<-step
	var ran atomic.Bool
	var caught atomic.Value
	done := make(chan struct{})
	body := NBIO(func() int { ran.Store(true); return 1 })
	rt.Spawn(Catch(
		Then(WithDeadline(clk, vclock.Time(500*time.Millisecond), body), Skip),
		func(err error) M[Unit] { return Do(func() { caught.Store(err); close(done) }) },
	))
	<-done
	if ran.Load() {
		t.Fatal("body ran despite an expired deadline")
	}
	if !errors.Is(caught.Load().(error), ErrTimedOut) {
		t.Fatalf("caught %v, want ErrTimedOut", caught.Load())
	}
}

// TestWithDeadlineFuture: a future deadline behaves like Timeout for the
// remaining duration.
func TestWithDeadlineFuture(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	never := Suspend(func(func(int)) {}) // parks forever
	var caught atomic.Value
	done := make(chan struct{})
	rt.Spawn(Catch(
		Then(WithDeadline(clk, vclock.Time(30*time.Millisecond), never), Skip),
		func(err error) M[Unit] { return Do(func() { caught.Store(err); close(done) }) },
	))
	<-done
	if !errors.Is(caught.Load().(error), ErrTimedOut) {
		t.Fatalf("caught %v", caught.Load())
	}
	if clk.Now() != vclock.Time(30*time.Millisecond) {
		t.Fatalf("deadline fired at %v, want exactly 30ms", clk.Now())
	}
}

// TestRetryReusableComputation: the same Retry value executed twice
// starts from a fresh attempt count each time.
func TestRetryReusableComputation(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	var calls atomic.Int64
	// Fails on every odd global call: each execution fails once then
	// succeeds on its retry.
	body := NBIOe(func() (int, error) {
		if calls.Add(1)%2 == 1 {
			return 0, errors.New("transient")
		}
		return 9, nil
	})
	m := Retry(clk, Backoff{Attempts: 2, Base: time.Millisecond}, body)
	var got [2]int64
	done := make(chan struct{})
	rt.Spawn(Bind(m, func(x int) M[Unit] {
		return Bind(m, func(y int) M[Unit] {
			return Do(func() { got[0], got[1] = int64(x), int64(y); close(done) })
		})
	}))
	<-done
	if got[0] != 9 || got[1] != 9 {
		t.Fatalf("got %v", got)
	}
	if calls.Load() != 4 {
		t.Fatalf("body ran %d times, want 4 (two executions × fail+retry)", calls.Load())
	}
}

// TestWithDeadlineExpiresMidBackoff: WithDeadline composed around Retry,
// with the deadline landing inside a between-attempts sleep. The caller
// sees ErrTimedOut at the deadline's exact virtual time — not the
// body's error, and not after the backoff completes. The losing retry
// thread is not cancelled (FirstOf discards the loser); it finishes its
// schedule in the background and its final failure is absorbed, never
// reaching the uncaught-error hook.
func TestWithDeadlineExpiresMidBackoff(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()

	boom := errors.New("still failing")
	var runs atomic.Int64
	body := NBIOe(func() (int, error) { runs.Add(1); return 0, boom })
	// Attempts land at t=0, 10ms, 30ms, 70ms, 150ms; the 15ms deadline
	// falls inside the second backoff sleep (10ms → 30ms).
	retry := Retry(clk, Backoff{Attempts: 5, Base: 10 * time.Millisecond, Factor: 2}, body)

	var caught atomic.Value
	var whenFired atomic.Int64
	var runsAtFire atomic.Int64
	done := make(chan struct{})
	rt.Spawn(Catch(
		Then(WithDeadline(clk, vclock.Time(15*time.Millisecond), retry), Skip),
		func(err error) M[Unit] {
			return Do(func() {
				caught.Store(err)
				whenFired.Store(int64(clk.Now()))
				runsAtFire.Store(runs.Load())
				close(done)
			})
		},
	))
	<-done
	if !errors.Is(caught.Load().(error), ErrTimedOut) {
		t.Fatalf("caught %v, want ErrTimedOut (the body's error must not win)", caught.Load())
	}
	if got := vclock.Time(whenFired.Load()); got != vclock.Time(15*time.Millisecond) {
		t.Fatalf("deadline fired at %v, want exactly 15ms", got)
	}
	if got := runsAtFire.Load(); got != 2 {
		t.Fatalf("body ran %d times before the deadline, want 2 (t=0 and t=10ms)", got)
	}

	// The abandoned retry drains its remaining schedule harmlessly.
	rt.WaitIdle()
	if got := runs.Load(); got != 5 {
		t.Fatalf("abandoned retry ran %d attempts total, want its full 5", got)
	}
	if errs := rt.UncaughtErrors(); len(errs) != 0 {
		t.Fatalf("abandoned retry's failure leaked as uncaught: %v", errs)
	}
}
