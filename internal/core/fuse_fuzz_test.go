package core

import (
	"errors"
	"testing"
)

// FuzzFusedEquivalence builds random combinator trees from the fuzz
// input and renders each twice — once over the fused spines (Seq, ForN,
// RepeatN, Loop, While, FoldN, BindChain) and once over the naive
// closure spellings (the executable spec in monad.go) — then runs both
// on single-worker runtimes at BatchSteps=1 and requires identical
// effect logs and identical dispatch (= trace node) counts. Node-count
// equivalence is the property every virtual-time figure rests on: the
// scheduler yields on a node budget, so a fused combinator that emitted
// one node more or less would shift every downstream scheduling
// decision.
func FuzzFusedEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{2, 2, 0})
	f.Add([]byte{4, 3, 0, 5, 2, 0})
	f.Add([]byte{7, 1, 0, 8, 0, 6, 4})
	f.Add([]byte{9, 3, 1, 2, 0, 0, 3, 2, 0, 6, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		tree := parseFuseTree(&fuzzReader{data: data})
		var lf, ln logger
		fused := renderFuseTree(tree, &lf, true)
		naive := renderFuseTree(tree, &ln, false)
		df := runDispatches(t, fused)
		dn := runDispatches(t, naive)
		if !equalInts(lf.values(), ln.values()) {
			t.Fatalf("effect logs differ\nfused %v\nnaive %v", lf.values(), ln.values())
		}
		if df != dn {
			t.Fatalf("node counts differ: fused %d dispatches, naive %d", df, dn)
		}
	})
}

type fuzzReader struct {
	data []byte
	pos  int
	ops  int
}

func (r *fuzzReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// fuseTree is the generator's AST: op selects the combinator, n its
// iteration/arity knob, kids its sub-programs.
type fuseTree struct {
	op   byte
	n    int
	kids []fuseTree
}

const (
	opEff       = iota // leaf effect
	opSeq              // Seq(kids...)
	opForN             // ForN(n, body from kid)
	opRepeatN          // RepeatN(n, kid)
	opLoop             // Loop over kid, n iterations
	opWhile            // While(counter cond, kid)
	opFoldN            // FoldN(n) with logged accumulator
	opCatch            // Catch(Seq(kid, Throw, kid), handler kid)
	opFinally          // Finally(kid, effect)
	opBindChain        // BindChain of n logged steps
	opCount
)

// parseFuseTree consumes fuzz bytes into a bounded tree: depth ≤ 4 and
// at most 48 combinator nodes, so every input terminates quickly.
func parseFuseTree(r *fuzzReader) fuseTree {
	return parseFuseNode(r, 4)
}

func parseFuseNode(r *fuzzReader, depth int) fuseTree {
	r.ops++
	if depth <= 0 || r.ops > 48 {
		return fuseTree{op: opEff}
	}
	nd := fuseTree{op: r.next() % opCount, n: int(r.next()%3) + 1}
	switch nd.op {
	case opEff, opWhile, opFoldN, opBindChain:
		// leaf, or combinators whose body is synthesized from n
		if nd.op == opWhile {
			nd.kids = []fuseTree{parseFuseNode(r, depth-1)}
		}
	case opSeq:
		k := int(r.next()%3) + 2
		for i := 0; i < k; i++ {
			nd.kids = append(nd.kids, parseFuseNode(r, depth-1))
		}
	case opCatch:
		nd.kids = []fuseTree{parseFuseNode(r, depth-1), parseFuseNode(r, depth-1)}
	default: // opForN, opRepeatN, opLoop, opFinally
		nd.kids = []fuseTree{parseFuseNode(r, depth-1)}
	}
	return nd
}

var errFuzzSentinel = errors.New("fuse fuzz sentinel")

// renderFuseTree renders the tree over the fused combinators when fused
// is true, over the naive spellings otherwise. Both renderings traverse
// the tree identically, so effect ids line up one-to-one.
func renderFuseTree(nd fuseTree, l *logger, fused bool) M[Unit] {
	id := 0
	var render func(nd fuseTree) M[Unit]
	render = func(nd fuseTree) M[Unit] {
		id++
		base := id * 100
		switch nd.op {
		case opSeq:
			ms := make([]M[Unit], len(nd.kids))
			for i, kid := range nd.kids {
				ms[i] = render(kid)
			}
			if fused {
				return Seq(ms...)
			}
			return NaiveSeq(ms...)
		case opForN:
			kid := render(nd.kids[0])
			body := func(i int) M[Unit] { return Then(l.add(base+i), kid) }
			if fused {
				return ForN(nd.n, body)
			}
			return NaiveForN(nd.n, body)
		case opRepeatN:
			kid := render(nd.kids[0])
			if fused {
				return RepeatN(nd.n, kid)
			}
			return NaiveForN(nd.n, func(int) M[Unit] { return kid })
		case opLoop:
			kid := render(nd.kids[0])
			n, limit := 0, nd.n
			body := Bind(kid, func(Unit) M[bool] {
				return NBIO(func() bool {
					n++
					return n < limit
				})
			})
			if fused {
				return Loop(body)
			}
			return NaiveLoop(body)
		case opWhile:
			kid := render(nd.kids[0])
			n, limit := 0, nd.n
			cond := NBIO(func() bool {
				n++
				return n <= limit
			})
			if fused {
				return While(cond, kid)
			}
			return NaiveWhile(cond, kid)
		case opFoldN:
			body := func(i, acc int) M[int] {
				return Then(l.add(base+i), Return(acc+i+1))
			}
			var m M[int]
			if fused {
				m = FoldN(nd.n, base, body)
			} else {
				m = NaiveFoldN(nd.n, base, body)
			}
			return Bind(m, func(acc int) M[Unit] { return l.add(acc) })
		case opCatch:
			body := render(nd.kids[0])
			handler := render(nd.kids[1])
			var seq M[Unit]
			if fused {
				seq = Seq(body, l.add(base), Throw[Unit](errFuzzSentinel))
			} else {
				seq = NaiveSeq(body, l.add(base), Throw[Unit](errFuzzSentinel))
			}
			return Catch(seq, func(err error) M[Unit] {
				if !errors.Is(err, errFuzzSentinel) {
					return Throw[Unit](err)
				}
				return Then(l.add(base+1), handler)
			})
		case opFinally:
			kid := render(nd.kids[0])
			return Finally(kid, l.add(base))
		case opBindChain:
			fs := make([]func(int) M[int], nd.n)
			for j := 0; j < nd.n; j++ {
				j := j
				fs[j] = func(x int) M[int] { return Then(l.add(base+j), Return(x+j)) }
			}
			var m M[int]
			if fused {
				m = BindChain(Return(base), fs...)
			} else {
				m = NaiveBindChain(Return(base), fs...)
			}
			return Bind(m, func(x int) M[Unit] { return l.add(x) })
		default: // opEff
			return l.add(base)
		}
	}
	return render(nd)
}
