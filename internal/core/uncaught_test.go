package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestUncaughtConcurrentPanicsSurfaceOnce: many threads across several
// workers all panic "simultaneously" (released by a shared gate); every
// one must appear in UncaughtErrors exactly once, in spawn order —
// regardless of which worker reported first.
func TestUncaughtConcurrentPanicsSurfaceOnce(t *testing.T) {
	const n = 64
	rt := NewRuntime(Options{Workers: 4, WorkStealing: true, TrapPanics: true})
	defer rt.Shutdown()
	gate := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		rt.Spawn(Then(
			Blio(func() Unit { <-gate; return Unit{} }), // hold all threads at the gate
			NBIO(func() Unit { panic(fmt.Sprintf("boom-%d", i)) }),
		))
	}
	close(gate)
	rt.WaitIdle()

	errs := rt.UncaughtErrors()
	if len(errs) != n {
		t.Fatalf("got %d uncaught errors, want %d: %v", len(errs), n, errs)
	}
	// Exactly-once: every boom-i present, none twice.
	seen := make(map[string]int, n)
	for _, err := range errs {
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("unexpected error type %T: %v", err, err)
		}
		seen[pe.Value.(string)]++
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("boom-%d", i)
		if seen[key] != 1 {
			t.Fatalf("%s surfaced %d times, want exactly once", key, seen[key])
		}
	}
	// Deterministic order: thread ids are assigned in spawn order, so the
	// payload indices must come back ascending.
	last := -1
	for _, err := range errs {
		var pe *PanicError
		errors.As(err, &pe)
		idx, _ := strconv.Atoi(strings.TrimPrefix(pe.Value.(string), "boom-"))
		if idx <= last {
			t.Fatalf("errors not in spawn order: %d after %d", idx, last)
		}
		last = idx
	}
}

// TestUncaughtTwoSimultaneousThrows is the minimal regression shape from
// the issue: two threads throwing at the same instant both surface,
// exactly once each, in spawn order.
func TestUncaughtTwoSimultaneousThrows(t *testing.T) {
	rt := NewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	gate := make(chan struct{})
	first, second := errors.New("first"), errors.New("second")
	rt.Spawn(Then(Blio(func() Unit { <-gate; return Unit{} }), Throw[Unit](first)))
	rt.Spawn(Then(Blio(func() Unit { <-gate; return Unit{} }), Throw[Unit](second)))
	close(gate)
	rt.WaitIdle()
	errs := rt.UncaughtErrors()
	if len(errs) != 2 {
		t.Fatalf("uncaught = %v, want both throws", errs)
	}
	if !errors.Is(errs[0], first) || !errors.Is(errs[1], second) {
		t.Fatalf("order = [%v, %v], want [first, second]", errs[0], errs[1])
	}
	// Stable across repeated reads.
	again := rt.UncaughtErrors()
	if len(again) != 2 || !errors.Is(again[0], first) || !errors.Is(again[1], second) {
		t.Fatalf("second read differs: %v", again)
	}
}
