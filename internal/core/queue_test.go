package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

func mkTCBs(n int) []*TCB {
	out := make([]*TCB, n)
	for i := range out {
		out[i] = &TCB{id: uint64(i + 1)}
	}
	return out
}

func TestSharedQueueFIFO(t *testing.T) {
	q := newSharedQueue()
	tcbs := mkTCBs(5)
	for _, tcb := range tcbs {
		q.push(tcb)
	}
	for i := 0; i < 5; i++ {
		got, _, ok := q.pop(0)
		if !ok || got.id != uint64(i+1) {
			t.Fatalf("pop %d = %v, %v", i, got, ok)
		}
	}
	if q.size() != 0 {
		t.Fatalf("size = %d", q.size())
	}
}

func TestSharedQueueGrowsAcrossWrap(t *testing.T) {
	// Fill past the initial ring capacity with the head displaced, so
	// growth must relocate a wrapped ring correctly.
	q := newSharedQueue()
	tcbs := mkTCBs(200)
	for i := 0; i < 40; i++ {
		q.push(tcbs[i])
	}
	for i := 0; i < 30; i++ {
		got, _, _ := q.pop(0)
		if got.id != uint64(i+1) {
			t.Fatalf("warmup pop got %d", got.id)
		}
	}
	for i := 40; i < 200; i++ {
		q.push(tcbs[i])
	}
	for i := 30; i < 200; i++ {
		got, _, ok := q.pop(0)
		if !ok || got.id != uint64(i+1) {
			t.Fatalf("pop %d = id %d, ok %v", i, got.id, ok)
		}
	}
}

func TestSharedQueueCloseReleasesPoppers(t *testing.T) {
	q := newSharedQueue()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, ok := q.pop(0); ok {
				t.Error("pop returned ok after close with empty queue")
			}
		}()
	}
	q.close()
	wg.Wait()
	// Pushes after close are dropped.
	q.push(&TCB{id: 1})
	if q.size() != 0 {
		t.Fatal("push after close retained a thread")
	}
}

func TestStealingQueueDeliversEverything(t *testing.T) {
	q := newStealingQueue(3)
	const n = 300
	for _, tcb := range mkTCBs(n) {
		q.push(tcb)
	}
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		got, _, ok := q.pop(i % 3)
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if seen[got.id] {
			t.Fatalf("duplicate delivery of %d", got.id)
		}
		seen[got.id] = true
	}
	if q.size() != 0 {
		t.Fatalf("size = %d", q.size())
	}
}

func TestStealingQueueStealsFromBusyVictim(t *testing.T) {
	q := newStealingQueue(2)
	// Round-robin placement: ids 1,3,5 land on deque 0; 2,4,6 on deque 1.
	for _, tcb := range mkTCBs(6) {
		q.push(tcb)
	}
	// Worker 0 drains its own deque first…
	for i := 0; i < 3; i++ {
		got, _, _ := q.pop(0)
		if got.id%2 != 1 {
			t.Fatalf("worker 0 popped foreign thread %d first", got.id)
		}
	}
	// …then steals the rest from worker 1's deque.
	for i := 0; i < 3; i++ {
		got, _, ok := q.pop(0)
		if !ok || got.id%2 != 0 {
			t.Fatalf("steal %d = id %d, ok %v", i, got.id, ok)
		}
	}
}

func TestStealingQueueClose(t *testing.T) {
	q := newStealingQueue(2)
	done := make(chan bool, 1)
	go func() {
		_, _, ok := q.pop(0)
		done <- ok
	}()
	q.close()
	if <-done {
		t.Fatal("pop returned ok after close")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers != 1 || o.BatchSteps != 128 || o.BlioWorkers != 2 || o.Clock == nil {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{BlioWorkers: -1}.withDefaults()
	if o2.BlioWorkers != 0 {
		t.Fatalf("negative BlioWorkers should disable the pool, got %d", o2.BlioWorkers)
	}
}

func TestQueueDepthVisible(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1, BatchSteps: 1})
	defer rt.Shutdown()
	gate := NewMVar[Unit]()
	// One thread holds the single worker hostage; others pile up.
	rt.Spawn(Bind(gate.Take(), func(Unit) M[Unit] { return Skip }))
	waitFor(t, func() bool { return rt.Live() == 1 })
	for i := 0; i < 5; i++ {
		rt.Spawn(Bind(gate.Take(), func(Unit) M[Unit] { return Skip }))
	}
	waitFor(t, func() bool { return rt.QueueDepth() == 0 }) // all parked
	for i := 0; i < 6; i++ {
		rt.Spawn(gate.Put(Unit{}))
	}
	rt.WaitIdle()
}

// ---------------------------------------------------------------------------
// Parallel stress (run with -race; `make stress` picks these up by name)
// ---------------------------------------------------------------------------

// Eight workers pop and re-push locally while producers push singles and
// batches from outside: every path into the stealing queue — push,
// pushLocal (owner slot and slow path), pushBatch, pop, steal — runs
// concurrently. The invariant is conservation: every produced thread is
// eventually consumed exactly once (re-pushed threads once more).
func TestStealingQueueParallelStress(t *testing.T) {
	const (
		workers     = 8
		producers   = 4
		perProducer = 500
		batches     = 64
		batchSize   = 8
	)
	total := producers*perProducer + batches*batchSize
	q := newStealingQueue(workers)

	repushed := make([]atomic.Bool, total+1)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tcb, _, ok := q.pop(w)
				if !ok {
					return
				}
				// A third of the threads go around once more via the
				// owner-local path (the batch-exhausted hand-back).
				if tcb.id%3 == 0 && repushed[tcb.id].CompareAndSwap(false, true) {
					if q.pushLocal(w, tcb) {
						continue
					}
				}
				consumed.Add(1)
			}
		}()
	}

	var prod sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		prod.Add(1)
		go func() {
			defer prod.Done()
			for i := 0; i < perProducer; i++ {
				q.push(&TCB{id: uint64(p*perProducer + i + 1)})
			}
		}()
	}
	base := producers * perProducer
	prod.Add(1)
	go func() {
		defer prod.Done()
		for b := 0; b < batches; b++ {
			ts := make([]*TCB, batchSize)
			for i := range ts {
				ts[i] = &TCB{id: uint64(base + b*batchSize + i + 1)}
			}
			if !q.pushBatch(ts) {
				t.Error("pushBatch rejected while open")
				return
			}
		}
	}()
	prod.Wait()
	waitFor(t, func() bool { return consumed.Load() == int64(total) })
	q.close()
	wg.Wait()
	if got := consumed.Load(); got != int64(total) {
		t.Fatalf("consumed %d threads, want %d", got, total)
	}
}

// The shared queue's pushBatch under the same parallel load.
func TestSharedQueuePushBatchParallelStress(t *testing.T) {
	const (
		workers   = 8
		batches   = 200
		batchSize = 16
	)
	total := batches * batchSize
	q := newSharedQueue()
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, _, ok := q.pop(0)
				if !ok {
					return
				}
				consumed.Add(1)
			}
		}()
	}
	for b := 0; b < batches; b++ {
		ts := mkTCBs(batchSize)
		if !q.pushBatch(ts) {
			t.Fatal("pushBatch rejected while open")
		}
	}
	waitFor(t, func() bool { return consumed.Load() == int64(total) })
	q.close()
	wg.Wait()
}

// pushBatch after close must reject the whole batch (all-or-none), on
// both queue kinds.
func TestPushBatchOnClosedQueue(t *testing.T) {
	sq := newSharedQueue()
	sq.close()
	if sq.pushBatch(mkTCBs(3)) {
		t.Fatal("sharedQueue.pushBatch accepted after close")
	}
	st := newStealingQueue(2)
	st.close()
	if st.pushBatch(mkTCBs(3)) {
		t.Fatal("stealingQueue.pushBatch accepted after close")
	}
}

// A Batch staged through SuspendB resumes land on the scheduler in one
// flush; every staged thread must run to completion.
func TestBatchFlushResumesThreads(t *testing.T) {
	rt := NewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	const n = 16
	var mu sync.Mutex
	resumes := make([]func(int, *Batch), 0, n)
	var ran atomic.Int64
	for i := 0; i < n; i++ {
		rt.Spawn(Bind(
			SuspendB(func(resume func(int, *Batch)) {
				mu.Lock()
				resumes = append(resumes, resume)
				mu.Unlock()
			}),
			func(int) M[Unit] { ran.Add(1); return Skip },
		))
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(resumes) == n })
	b := rt.NewBatch()
	mu.Lock()
	for i, r := range resumes {
		r(i, b)
	}
	mu.Unlock()
	if b.Len() != n {
		t.Fatalf("staged %d threads, want %d", b.Len(), n)
	}
	b.Flush()
	if b.Len() != 0 {
		t.Fatalf("batch not empty after flush: %d", b.Len())
	}
	rt.WaitIdle()
	if got := ran.Load(); got != n {
		t.Fatalf("%d threads ran, want %d", got, n)
	}
}
