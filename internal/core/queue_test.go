package core

import (
	"sync"
	"testing"
)

func mkTCBs(n int) []*TCB {
	out := make([]*TCB, n)
	for i := range out {
		out[i] = &TCB{id: uint64(i + 1)}
	}
	return out
}

func TestSharedQueueFIFO(t *testing.T) {
	q := newSharedQueue()
	tcbs := mkTCBs(5)
	for _, tcb := range tcbs {
		q.push(tcb)
	}
	for i := 0; i < 5; i++ {
		got, _, ok := q.pop(0)
		if !ok || got.id != uint64(i+1) {
			t.Fatalf("pop %d = %v, %v", i, got, ok)
		}
	}
	if q.size() != 0 {
		t.Fatalf("size = %d", q.size())
	}
}

func TestSharedQueueGrowsAcrossWrap(t *testing.T) {
	// Fill past the initial ring capacity with the head displaced, so
	// growth must relocate a wrapped ring correctly.
	q := newSharedQueue()
	tcbs := mkTCBs(200)
	for i := 0; i < 40; i++ {
		q.push(tcbs[i])
	}
	for i := 0; i < 30; i++ {
		got, _, _ := q.pop(0)
		if got.id != uint64(i+1) {
			t.Fatalf("warmup pop got %d", got.id)
		}
	}
	for i := 40; i < 200; i++ {
		q.push(tcbs[i])
	}
	for i := 30; i < 200; i++ {
		got, _, ok := q.pop(0)
		if !ok || got.id != uint64(i+1) {
			t.Fatalf("pop %d = id %d, ok %v", i, got.id, ok)
		}
	}
}

func TestSharedQueueCloseReleasesPoppers(t *testing.T) {
	q := newSharedQueue()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, ok := q.pop(0); ok {
				t.Error("pop returned ok after close with empty queue")
			}
		}()
	}
	q.close()
	wg.Wait()
	// Pushes after close are dropped.
	q.push(&TCB{id: 1})
	if q.size() != 0 {
		t.Fatal("push after close retained a thread")
	}
}

func TestStealingQueueDeliversEverything(t *testing.T) {
	q := newStealingQueue(3)
	const n = 300
	for _, tcb := range mkTCBs(n) {
		q.push(tcb)
	}
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		got, _, ok := q.pop(i % 3)
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if seen[got.id] {
			t.Fatalf("duplicate delivery of %d", got.id)
		}
		seen[got.id] = true
	}
	if q.size() != 0 {
		t.Fatalf("size = %d", q.size())
	}
}

func TestStealingQueueStealsFromBusyVictim(t *testing.T) {
	q := newStealingQueue(2)
	// Round-robin placement: ids 1,3,5 land on deque 0; 2,4,6 on deque 1.
	for _, tcb := range mkTCBs(6) {
		q.push(tcb)
	}
	// Worker 0 drains its own deque first…
	for i := 0; i < 3; i++ {
		got, _, _ := q.pop(0)
		if got.id%2 != 1 {
			t.Fatalf("worker 0 popped foreign thread %d first", got.id)
		}
	}
	// …then steals the rest from worker 1's deque.
	for i := 0; i < 3; i++ {
		got, _, ok := q.pop(0)
		if !ok || got.id%2 != 0 {
			t.Fatalf("steal %d = id %d, ok %v", i, got.id, ok)
		}
	}
}

func TestStealingQueueClose(t *testing.T) {
	q := newStealingQueue(2)
	done := make(chan bool, 1)
	go func() {
		_, _, ok := q.pop(0)
		done <- ok
	}()
	q.close()
	if <-done {
		t.Fatal("pop returned ok after close")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers != 1 || o.BatchSteps != 128 || o.BlioWorkers != 2 || o.Clock == nil {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{BlioWorkers: -1}.withDefaults()
	if o2.BlioWorkers != 0 {
		t.Fatalf("negative BlioWorkers should disable the pool, got %d", o2.BlioWorkers)
	}
}

func TestQueueDepthVisible(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1, BatchSteps: 1})
	defer rt.Shutdown()
	gate := NewMVar[Unit]()
	// One thread holds the single worker hostage; others pile up.
	rt.Spawn(Bind(gate.Take(), func(Unit) M[Unit] { return Skip }))
	waitFor(t, func() bool { return rt.Live() == 1 })
	for i := 0; i < 5; i++ {
		rt.Spawn(Bind(gate.Take(), func(Unit) M[Unit] { return Skip }))
	}
	waitFor(t, func() bool { return rt.QueueDepth() == 0 }) // all parked
	for i := 0; i < 6; i++ {
		rt.Spawn(gate.Put(Unit{}))
	}
	rt.WaitIdle()
}
