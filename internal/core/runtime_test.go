package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybrid/internal/vclock"
)

func TestForkRunsChild(t *testing.T) {
	var ran atomic.Bool
	run(t, Fork(Do(func() { ran.Store(true) })))
	if !ran.Load() {
		t.Fatal("forked child did not run")
	}
}

func TestForkManyChildren(t *testing.T) {
	const n = 1000
	var count atomic.Int64
	rt := run(t, ForN(n, func(int) M[Unit] {
		return Fork(Do(func() { count.Add(1) }))
	}))
	if count.Load() != n {
		t.Fatalf("ran %d children, want %d", count.Load(), n)
	}
	if got := rt.Spawned(); got != n+1 {
		t.Fatalf("Spawned() = %d, want %d", got, n+1)
	}
}

func TestYieldInterleavesThreads(t *testing.T) {
	// Two threads alternating yields on a single worker must interleave.
	var l logger
	body := func(base int) M[Unit] {
		return ForN(3, func(i int) M[Unit] {
			return Then(l.add(base+i), Yield())
		})
	}
	rt := NewRuntime(Options{Workers: 1, BatchSteps: 1})
	defer rt.Shutdown()
	rt.Spawn(Seq(Fork(body(10)), Fork(body(20))))
	rt.WaitIdle()
	log := l.values()
	if len(log) != 6 {
		t.Fatalf("log = %v", log)
	}
	// With BatchSteps=1 and round-robin scheduling, the two threads must
	// strictly alternate: 10,20,11,21,12,22.
	want := []int{10, 20, 11, 21, 12, 22}
	if !equalInts(log, want) {
		t.Fatalf("interleaving = %v, want %v", log, want)
	}
}

func TestBatchStepsLimitsRun(t *testing.T) {
	// With a large batch, a thread that never blocks hogs the worker and
	// the effect log is NOT interleaved.
	var l logger
	body := func(base int) M[Unit] {
		return ForN(3, func(i int) M[Unit] { return l.add(base + i) })
	}
	rt := NewRuntime(Options{Workers: 1, BatchSteps: 1 << 20})
	defer rt.Shutdown()
	rt.Spawn(Seq(Fork(body(10)), Fork(body(20))))
	rt.WaitIdle()
	want := []int{10, 11, 12, 20, 21, 22}
	if !equalInts(l.values(), want) {
		t.Fatalf("log = %v, want %v (no interleaving within batch)", l.values(), want)
	}
}

func TestHaltStopsThreadOnly(t *testing.T) {
	var after, sibling atomic.Bool
	run(t, Seq(
		Fork(Seq(Halt[Unit](), Do(func() { after.Store(true) }))),
		Fork(Do(func() { sibling.Store(true) })),
	))
	if after.Load() {
		t.Fatal("code after Halt ran")
	}
	if !sibling.Load() {
		t.Fatal("sibling thread was affected by Halt")
	}
}

func TestLiveCount(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	release := NewMVar[Unit]()
	const n = 10
	for i := 0; i < n; i++ {
		rt.Spawn(Bind(release.Take(), func(Unit) M[Unit] { return Skip }))
	}
	waitFor(t, func() bool { return rt.Live() == n })
	for i := 0; i < n; i++ {
		rt.Spawn(release.Put(Unit{}))
	}
	rt.WaitIdle()
	if rt.Live() != 0 {
		t.Fatalf("Live() = %d after drain", rt.Live())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// Exceptions (§4.3)
// ---------------------------------------------------------------------------

var errBoom = errors.New("boom")

func TestCatchHandlesThrow(t *testing.T) {
	got, _ := observe(t, func(*logger) M[int] {
		return Catch(Throw[int](errBoom), func(err error) M[int] {
			if err != errBoom {
				return Return(-1)
			}
			return Return(7)
		})
	})
	if got != 7 {
		t.Fatalf("handler result = %d, want 7", got)
	}
}

func TestCatchPassesBodyResult(t *testing.T) {
	got, _ := observe(t, func(*logger) M[int] {
		return Catch(Return(5), func(error) M[int] { return Return(-1) })
	})
	if got != 5 {
		t.Fatalf("got %d, want 5 (handler must not run)", got)
	}
}

func TestThrowSkipsRestOfBody(t *testing.T) {
	_, log := observe(t, func(l *logger) M[int] {
		return Catch(
			Then(Seq(l.add(1), Then(Throw[Unit](errBoom), l.add(2))), Return(0)),
			func(error) M[int] { return Then(l.add(3), Return(0)) },
		)
	})
	if !equalInts(log, []int{1, 3}) {
		t.Fatalf("log = %v, want [1 3]", log)
	}
}

func TestNestedCatchInnerFirst(t *testing.T) {
	_, log := observe(t, func(l *logger) M[Unit] {
		return Catch(
			Catch(Throw[Unit](errBoom), func(error) M[Unit] { return l.add(1) }),
			func(error) M[Unit] { return l.add(2) },
		)
	})
	if !equalInts(log, []int{1}) {
		t.Fatalf("log = %v, want [1] (inner handler only)", log)
	}
}

func TestRethrowReachesOuterHandler(t *testing.T) {
	// The paper's send_file pattern: inner handler cleans up and rethrows.
	_, log := observe(t, func(l *logger) M[Unit] {
		return Catch(
			Catch(Throw[Unit](errBoom), func(err error) M[Unit] {
				return Then(l.add(1), Throw[Unit](err))
			}),
			func(error) M[Unit] { return l.add(2) },
		)
	})
	if !equalInts(log, []int{1, 2}) {
		t.Fatalf("log = %v, want [1 2]", log)
	}
}

func TestExceptionAfterCatchBlockNotCaught(t *testing.T) {
	// A throw in the continuation *after* a Catch must not hit that
	// Catch's handler: the frame is popped when the body completes.
	var handled atomic.Int32
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	rt.Run(Then(
		Catch(Skip, func(error) M[Unit] {
			handled.Add(1)
			return Skip
		}),
		Throw[Unit](errBoom),
	))
	if handled.Load() != 0 {
		t.Fatal("popped handler caught a later exception")
	}
	errs := rt.UncaughtErrors()
	if len(errs) != 1 || errs[0] != errBoom {
		t.Fatalf("uncaught = %v, want [boom]", errs)
	}
}

func TestUncaughtExceptionKillsOnlyThread(t *testing.T) {
	var other atomic.Bool
	var uncaughtID atomic.Uint64
	rt := NewRuntime(Options{
		Workers:  1,
		Uncaught: func(id uint64, err error) { uncaughtID.Store(id) },
	})
	defer rt.Shutdown()
	rt.Run(Seq(
		Fork(Throw[Unit](errBoom)),
		Fork(Do(func() { other.Store(true) })),
	))
	if !other.Load() {
		t.Fatal("unrelated thread did not run")
	}
	if uncaughtID.Load() == 0 {
		t.Fatal("Uncaught hook not invoked")
	}
}

func TestFinallyRunsOnSuccess(t *testing.T) {
	got, log := observe(t, func(l *logger) M[int] {
		return Finally(Then(l.add(1), Return(3)), l.add(2))
	})
	if got != 3 || !equalInts(log, []int{1, 2}) {
		t.Fatalf("got %d log %v", got, log)
	}
}

func TestFinallyRunsOnThrowAndRethrows(t *testing.T) {
	_, log := observe(t, func(l *logger) M[Unit] {
		return Catch(
			Finally(Throw[Unit](errBoom), l.add(1)),
			func(error) M[Unit] { return l.add(2) },
		)
	})
	if !equalInts(log, []int{1, 2}) {
		t.Fatalf("log = %v, want [1 2]", log)
	}
}

func TestCatchAcrossYieldAndFork(t *testing.T) {
	// Handler frames are per-thread state and must survive scheduling.
	got, _ := observe(t, func(*logger) M[int] {
		return Catch(
			Then(Seq(Yield(), Yield(), Then(Throw[Unit](errBoom), Skip)), Return(0)),
			func(error) M[int] { return Return(99) },
		)
	})
	if got != 99 {
		t.Fatalf("got %d, want 99", got)
	}
}

func TestForkedChildDoesNotInheritHandlers(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	var parentHandled atomic.Bool
	rt.Run(Bind(
		Catch(Fork(Throw[Unit](errBoom)), func(error) M[Unit] {
			parentHandled.Store(true)
			return Skip
		}),
		func(Unit) M[Unit] { return Skip },
	))
	if parentHandled.Load() {
		t.Fatal("child exception hit parent's handler")
	}
	if len(rt.UncaughtErrors()) != 1 {
		t.Fatalf("uncaught = %v", rt.UncaughtErrors())
	}
}

func TestNBIOeThrows(t *testing.T) {
	got, _ := observe(t, func(*logger) M[int] {
		return Catch(
			NBIOe(func() (int, error) { return 0, errBoom }),
			func(error) M[int] { return Return(55) },
		)
	})
	if got != 55 {
		t.Fatalf("got %d, want 55", got)
	}
}

func TestTrapPanics(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1, TrapPanics: true})
	defer rt.Shutdown()
	var caught atomic.Value
	rt.Run(Catch(
		Do(func() { panic("kaboom") }),
		func(err error) M[Unit] {
			caught.Store(err)
			return Skip
		},
	))
	pe, ok := caught.Load().(*PanicError)
	if !ok {
		t.Fatalf("caught %T, want *PanicError", caught.Load())
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if pe.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestCatchDepthProperty(t *testing.T) {
	// For any nesting depth, a throw lands in the innermost handler and
	// rethrowing d times escalates through all d frames in order.
	for depth := 1; depth <= 8; depth++ {
		var l logger
		prog := Throw[Unit](errBoom)
		for i := depth; i >= 1; i-- {
			i := i
			inner := prog
			prog = Catch(inner, func(err error) M[Unit] {
				return Then(l.add(i), Throw[Unit](err))
			})
		}
		rt := NewRuntime(Options{Workers: 1})
		rt.Run(Catch(prog, func(error) M[Unit] { return l.add(0) }))
		rt.Shutdown()
		want := make([]int, 0, depth+1)
		for i := depth; i >= 1; i-- {
			want = append(want, i)
		}
		want = append(want, 0)
		if !equalInts(l.values(), want) {
			t.Fatalf("depth %d: log = %v, want %v", depth, l.values(), want)
		}
	}
}

// ---------------------------------------------------------------------------
// Suspend, Blio, Sleep
// ---------------------------------------------------------------------------

func TestSuspendResumeFromOutside(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	var resume atomic.Value
	var got atomic.Int64
	rt.Spawn(Bind(
		Suspend(func(r func(int)) { resume.Store(r) }),
		func(x int) M[Unit] { return Do(func() { got.Store(int64(x)) }) },
	))
	waitFor(t, func() bool { return resume.Load() != nil })
	resume.Load().(func(int))(123)
	rt.WaitIdle()
	if got.Load() != 123 {
		t.Fatalf("resumed value = %d, want 123", got.Load())
	}
}

func TestSuspendSynchronousResume(t *testing.T) {
	got, _ := observe(t, func(*logger) M[int] {
		return Suspend(func(resume func(int)) { resume(9) })
	})
	if got != 9 {
		t.Fatalf("got %d, want 9", got)
	}
}

func TestSuspendDoubleResumePanics(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()
	var resume atomic.Value
	rt.Spawn(Bind(Suspend(func(r func(int)) { resume.Store(r) }), func(int) M[Unit] { return Skip }))
	waitFor(t, func() bool { return resume.Load() != nil })
	r := resume.Load().(func(int))
	r(1)
	rt.WaitIdle()
	defer func() {
		if recover() == nil {
			t.Fatal("second resume did not panic")
		}
	}()
	r(2)
}

func TestBlioRunsOffWorker(t *testing.T) {
	// A blocking effect must not stall the worker loop: while one thread
	// blocks in Blio, another thread must keep running.
	rt := NewRuntime(Options{Workers: 1, BlioWorkers: 1})
	defer rt.Shutdown()
	gate := make(chan struct{})
	var progressed atomic.Bool
	rt.Spawn(Bind(Blio(func() int { <-gate; return 1 }), func(int) M[Unit] { return Skip }))
	rt.Spawn(Do(func() { progressed.Store(true) }))
	waitFor(t, func() bool { return progressed.Load() })
	close(gate)
	rt.WaitIdle()
}

func TestBlioeThrows(t *testing.T) {
	got, _ := observe(t, func(*logger) M[int] {
		return Catch(
			Blioe(func() (int, error) { return 0, errBoom }),
			func(error) M[int] { return Return(77) },
		)
	})
	if got != 77 {
		t.Fatalf("got %d, want 77", got)
	}
}

func TestSleepVirtualClock(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	var woke atomic.Int64
	rt.Run(Seq(
		Sleep(clk, 5*time.Millisecond),
		Do(func() { woke.Store(int64(clk.Now())) }),
	))
	if woke.Load() != int64(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", time.Duration(woke.Load()))
	}
}

func TestSleepOrderingVirtualClock(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	var l logger
	rt.Run(Seq(
		Fork(Then(Sleep(clk, 3*time.Millisecond), l.add(3))),
		Fork(Then(Sleep(clk, 1*time.Millisecond), l.add(1))),
		Fork(Then(Sleep(clk, 2*time.Millisecond), l.add(2))),
	))
	if !equalInts(l.values(), []int{1, 2, 3}) {
		t.Fatalf("wake order = %v, want [1 2 3]", l.values())
	}
}

func TestSleepRealClock(t *testing.T) {
	clk := vclock.NewReal()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	start := time.Now()
	rt.Run(Sleep(clk, 10*time.Millisecond))
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("slept only %v", elapsed)
	}
}

// ---------------------------------------------------------------------------
// SMP: multiple workers (§4.4)
// ---------------------------------------------------------------------------

func TestMultipleWorkersRunAllThreads(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rt := NewRuntime(Options{Workers: workers})
			defer rt.Shutdown()
			const n = 5000
			var count atomic.Int64
			rt.Run(ForN(n, func(int) M[Unit] {
				return Fork(Then(Yield(), Do(func() { count.Add(1) })))
			}))
			if count.Load() != n {
				t.Fatalf("ran %d threads, want %d", count.Load(), n)
			}
		})
	}
}

func TestWorkStealingRunsAllThreads(t *testing.T) {
	rt := NewRuntime(Options{Workers: 4, WorkStealing: true})
	defer rt.Shutdown()
	const n = 5000
	var count atomic.Int64
	rt.Run(ForN(n, func(int) M[Unit] {
		return Fork(Then(Yield(), Do(func() { count.Add(1) })))
	}))
	if count.Load() != n {
		t.Fatalf("ran %d threads, want %d", count.Load(), n)
	}
}

func TestManyThreadsSmoke(t *testing.T) {
	// 100k threads each yielding a few times: the memory-test workload in
	// miniature.
	rt := NewRuntime(Options{Workers: 2})
	defer rt.Shutdown()
	const n = 100_000
	var count atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			rt.Spawn(Seq(Yield(), Yield(), Do(func() { count.Add(1) })))
		}
	}()
	wg.Wait()
	rt.WaitIdle()
	if count.Load() != n {
		t.Fatalf("completed %d, want %d", count.Load(), n)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	rt.Run(Skip)
	rt.Shutdown()
	rt.Shutdown()
}

func TestSwitchesCounter(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1, BatchSteps: 1})
	defer rt.Shutdown()
	before := rt.Switches()
	rt.Run(Seq(Yield(), Yield(), Yield()))
	if got := rt.Switches() - before; got < 4 {
		t.Fatalf("Switches delta = %d, want >= 4", got)
	}
}
