package core

// Regression tests for the enqueue/shutdown lifecycle: a TCB rejected or
// discarded by a closed queue must release its virtual-clock hold and
// decrement the live count, or WaitIdle and vclock quiescence wedge
// forever. Plus coverage for pushLocal affinity, the stealingQueue
// invariant guard, the BlioInline sentinel, and the scheduler stats.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybrid/internal/vclock"
)

// A Spawn that loses the race with Shutdown must not leak the clock hold
// taken in enqueue. On the pre-fix runtime the push was silently dropped:
// live stayed at 1, the vclock busy count stayed at 1, and WaitIdle hung.
func TestSpawnRacingShutdownReleasesClockHold(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	rt.Shutdown()

	rt.Spawn(Do(func() {}))

	if got := rt.Live(); got != 0 {
		t.Fatalf("Live = %d after a rejected Spawn, want 0", got)
	}
	if busy := clk.Busy(); busy != 0 {
		t.Fatalf("vclock busy = %d after a rejected Spawn, want 0 (leaked hold)", busy)
	}
	done := make(chan struct{})
	go func() {
		rt.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitIdle wedged by a Spawn racing Shutdown")
	}
}

// Shutdown discards threads still queued; each discarded thread must give
// back its clock hold and its live count, exactly as if it had completed.
func TestShutdownDiscardsQueuedThreadsCleanly(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, BlioWorkers: BlioInline, Clock: clk})

	gate := make(chan struct{})
	started := make(chan struct{})
	rt.Spawn(Do(func() { close(started); <-gate }))
	<-started

	// The single worker is occupied; these ten pile up in the ready queue.
	for i := 0; i < 10; i++ {
		rt.Spawn(Do(func() {}))
	}
	waitFor(t, func() bool { return rt.QueueDepth() == 10 })

	shutdownDone := make(chan struct{})
	go func() {
		rt.Shutdown()
		close(shutdownDone)
	}()
	// Shutdown drains the ten queued threads immediately; only the thread
	// held hostage in the worker remains live.
	waitFor(t, func() bool { return rt.Live() == 1 })
	close(gate)
	<-shutdownDone

	if got := rt.Live(); got != 0 {
		t.Fatalf("Live = %d after Shutdown, want 0", got)
	}
	if busy := clk.Busy(); busy != 0 {
		t.Fatalf("vclock busy = %d after Shutdown, want 0", busy)
	}
	if got := rt.Stats().Snapshot().Counter("enqueue_rejected"); got != 10 {
		t.Fatalf("enqueue_rejected = %d, want 10 discarded threads", got)
	}
}

// Concurrent Spawn and Shutdown must neither race (run with -race) nor
// miscount: every accepted thread runs or is discarded with its live
// count released.
func TestConcurrentSpawnAndShutdown(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		rt := NewRuntime(Options{Workers: 4, WorkStealing: true})
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					rt.Spawn(Then(Yield(), Do(func() {})))
				}
			}()
		}
		time.Sleep(time.Millisecond)
		rt.Shutdown()
		close(stop)
		wg.Wait()
		// Spawns that raced the close were rejected-and-accounted; the
		// rest ran or were drained. Nothing may remain live.
		if got := rt.Live(); got != 0 {
			t.Fatalf("iter %d: Live = %d after Shutdown and spawner drain, want 0", iter, got)
		}
	}
}

// pushLocal keeps a thread on the pushing worker's own deque; the same
// thread arriving at another worker counts as a steal.
func TestStealingQueuePushLocalAffinity(t *testing.T) {
	q := newStealingQueue(3)
	tcbs := mkTCBs(6)
	for _, tcb := range tcbs {
		q.pushLocal(1, tcb)
	}
	for i := 0; i < 6; i++ {
		got, stolen, ok := q.pop(1)
		if !ok || stolen || got.id != uint64(i+1) {
			t.Fatalf("pop %d = id %d stolen %v ok %v, want own-deque FIFO", i, got.id, stolen, ok)
		}
	}
	// Same placement, foreign consumer: every delivery is a steal.
	for _, tcb := range tcbs {
		q.pushLocal(2, tcb)
	}
	for i := 0; i < 6; i++ {
		got, stolen, ok := q.pop(0)
		if !ok || !stolen {
			t.Fatalf("foreign pop %d = id %d stolen %v ok %v, want steal", i, got.id, stolen, ok)
		}
	}
}

// A drifted total/deque invariant must resynchronize instead of panicking
// in popFrom(-1).
func TestStealingQueueTotalDriftDoesNotPanic(t *testing.T) {
	q := newStealingQueue(2)
	q.mu.Lock()
	q.total = 3 // simulated corruption: counter says work, deques are empty
	q.mu.Unlock()

	done := make(chan bool, 1)
	go func() {
		_, _, ok := q.pop(0)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	if <-done {
		t.Fatal("pop delivered a thread from a drifted-empty queue")
	}
}

// BlioInline requests no blocking-I/O pool; zero still means the default.
func TestBlioInlineSentinel(t *testing.T) {
	if o := (Options{}).withDefaults(); o.BlioWorkers != 2 {
		t.Fatalf("zero BlioWorkers defaulted to %d, want 2", o.BlioWorkers)
	}
	if o := (Options{BlioWorkers: BlioInline}).withDefaults(); o.BlioWorkers != 0 {
		t.Fatalf("BlioInline resolved to %d workers, want 0", o.BlioWorkers)
	}

	rt := NewRuntime(Options{Workers: 1, BlioWorkers: BlioInline})
	defer rt.Shutdown()
	var got atomic.Int64
	rt.Run(Bind(Blio(func() int { return 7 }), func(v int) M[Unit] {
		return Do(func() { got.Store(int64(v)) })
	}))
	if got.Load() != 7 {
		t.Fatalf("inline Blio result = %d, want 7", got.Load())
	}
	snap := rt.Stats().Snapshot()
	if snap.Counter("blio_inline") != 1 || snap.Counter("blio_submits") != 0 {
		t.Fatalf("inline=%d submits=%d, want the effect to run on the worker loop",
			snap.Counter("blio_inline"), snap.Counter("blio_submits"))
	}
}

// Regression (PR 3): a panic that escapes trace construction — here, a
// Catch handler that panics — used to kill the worker goroutine and the
// process with it; the thread's resources (descriptors tracked by Ensure)
// were unreleasable. Now the panic kills only the thread: its Ensure
// cleanups run, the panic is reported uncaught, and the vclock hold and
// live count balance exactly as for a completed thread.
func TestHandlerPanicKillsOnlyThreadAndRunsCleanups(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk, TrapPanics: true})
	defer rt.Shutdown()

	// A stand-in FD table: the cleanup releases the thread's descriptor.
	var fds atomic.Int64
	fds.Add(1)
	rt.Spawn(Ensure(func() { fds.Add(-1) },
		Catch(
			Do(func() { panic("inner effect panic") }),
			func(error) M[Unit] { panic("handler panic") }, // escapes interpret
		),
	))
	rt.WaitIdle()

	if got := fds.Load(); got != 0 {
		t.Fatalf("fd leaked by panicking thread: %d still open", got)
	}
	if got := rt.Live(); got != 0 {
		t.Fatalf("Live = %d after panic-killed thread, want 0", got)
	}
	if busy := clk.Busy(); busy != 0 {
		t.Fatalf("vclock busy = %d after panic-killed thread, want 0 (leaked hold)", busy)
	}
	errs := rt.UncaughtErrors()
	if len(errs) != 1 {
		t.Fatalf("UncaughtErrors = %v, want the handler panic", errs)
	}
	var pe *PanicError
	if !asPanicError(errs[0], &pe) {
		t.Fatalf("uncaught error %v is not a *PanicError", errs[0])
	}
	snap := rt.Stats().Snapshot()
	if snap.Counter("panic_kills") != 1 || snap.Counter("abort_cleanups") != 1 {
		t.Fatalf("panic_kills=%d abort_cleanups=%d, want 1/1",
			snap.Counter("panic_kills"), snap.Counter("abort_cleanups"))
	}
	// The worker survived: the runtime still executes threads.
	var alive atomic.Bool
	rt.Run(Do(func() { alive.Store(true) }))
	if !alive.Load() {
		t.Fatal("worker loop died with the panicking thread")
	}
}

func asPanicError(err error, target **PanicError) bool {
	pe, ok := err.(*PanicError)
	if ok {
		*target = pe
	}
	return ok
}

// Regression (PR 3): an uncaught exception releases the thread's Ensure
// cleanups on the abort path — previously only a monadic Finally could
// release resources, and only when the trace kept running.
func TestEnsureRunsOnUncaughtException(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()

	var released atomic.Bool
	rt.Spawn(Ensure(func() { released.Store(true) },
		Throw[Unit](errKaboom)))
	rt.WaitIdle()

	if !released.Load() {
		t.Fatal("Ensure cleanup did not run for an uncaught exception")
	}
	if busy := clk.Busy(); busy != 0 {
		t.Fatalf("vclock busy = %d, want 0", busy)
	}
}

var errKaboom = &PanicError{Value: "kaboom"}

// Regression (PR 3): a thread discarded from the blio queue at Shutdown
// runs its registered cleanups — a dead thread's descriptors and
// admission slots are given back even though its trace never resumes.
func TestShutdownDiscardRunsCleanups(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, BlioWorkers: 1, Clock: clk})

	// Occupy the only blio pool worker.
	gate := make(chan struct{})
	started := make(chan struct{})
	rt.Spawn(Then(Blio(func() int { close(started); <-gate; return 0 }), Skip))
	<-started

	// This thread registers a cleanup, then queues behind the hostage in
	// the blio pool; Shutdown discards it from the queue.
	var released atomic.Bool
	rt.Spawn(Ensure(func() { released.Store(true) },
		Then(Blio(func() int { return 1 }), Skip)))
	// Wait until the worker has interpreted the thread past its Ensure
	// node and parked it in the blio queue — Live()==2 holds from spawn
	// time, before the cleanup is even registered.
	waitFor(t, func() bool {
		return rt.Stats().Snapshot().Counter("blio_submits") == 2
	})

	shutdownDone := make(chan struct{})
	go func() {
		rt.Shutdown()
		close(shutdownDone)
	}()
	waitFor(t, func() bool { return released.Load() })
	close(gate)
	<-shutdownDone

	if got := rt.Live(); got != 0 {
		t.Fatalf("Live = %d after Shutdown, want 0", got)
	}
	if busy := clk.Busy(); busy != 0 {
		t.Fatalf("vclock busy = %d after Shutdown, want 0", busy)
	}
}

// Ensure composes with ordinary control flow: success and caught
// exceptions each run the cleanup exactly once, in LIFO order when
// nested.
func TestEnsureBalancedPaths(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1})
	defer rt.Shutdown()

	var order []string
	var mu sync.Mutex
	log := func(s string) func() {
		return func() { mu.Lock(); order = append(order, s); mu.Unlock() }
	}
	rt.Run(Seq(
		// Success path.
		Then(Ensure(log("a"), Ensure(log("b"), Return(1))), Skip),
		// Exception path: cleanup runs before the handler.
		Catch(
			Then(Ensure(log("c"), Throw[int](errKaboom)), Skip),
			func(error) M[Unit] { return Do(log("handler")) },
		),
	))
	mu.Lock()
	defer mu.Unlock()
	want := []string{"b", "a", "c", "handler"}
	if len(order) != len(want) {
		t.Fatalf("cleanup order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("cleanup order %v, want %v", order, want)
		}
	}
	snap := rt.Stats().Snapshot()
	if snap.Counter("abort_cleanups") != 0 {
		t.Fatalf("balanced Ensure paths hit the abort path: abort_cleanups=%d",
			snap.Counter("abort_cleanups"))
	}
}

// Acceptance: a WorkStealing runtime reports non-zero steal and dispatch
// counters through Runtime.Stats().Snapshot().
func TestWorkStealingStatsCounters(t *testing.T) {
	rt := NewRuntime(Options{Workers: 2, WorkStealing: true})
	defer rt.Shutdown()

	// Occupy one worker; the free worker must drain its own deque and
	// then steal everything that round-robin placed on the hostage's.
	gate := make(chan struct{})
	started := make(chan struct{})
	rt.Spawn(Do(func() { close(started); <-gate }))
	<-started
	for i := 0; i < 20; i++ {
		rt.Spawn(Do(func() {}))
	}
	waitFor(t, func() bool { return rt.Live() == 1 })

	snap := rt.Stats().Snapshot()
	if d := snap.Counter("dispatches"); d < 21 {
		t.Fatalf("dispatches = %d, want >= 21", d)
	}
	if s := snap.Counter("steals"); s < 10 {
		t.Fatalf("steals = %d, want >= 10 (free worker must raid the occupied one)", s)
	}
	perWorker := snap.Counter("worker00.dispatches") + snap.Counter("worker01.dispatches")
	if perWorker != snap.Counter("dispatches") {
		t.Fatalf("per-worker dispatches sum %d != total %d", perWorker, snap.Counter("dispatches"))
	}
	close(gate)
	rt.WaitIdle()
}

// The scheduler's park/resume and batch instrumentation must see traffic.
func TestSchedulerStatsObserveParksAndBatches(t *testing.T) {
	rt := NewRuntime(Options{Workers: 1, BatchSteps: 4})
	defer rt.Shutdown()

	mv := NewMVar[int]()
	rt.Spawn(Bind(mv.Take(), func(int) M[Unit] { return Skip })) // parks
	rt.Spawn(Seq(
		ForN(64, func(int) M[Unit] { return Do(func() {}) }), // exhausts 4-step batches
		mv.Put(1), // resumes the parked thread
	))
	rt.WaitIdle()

	snap := rt.Stats().Snapshot()
	for _, name := range []string{"parks", "resumes", "batch_full", "completed"} {
		if snap.Counter(name) == 0 {
			t.Fatalf("%s = 0, want non-zero (snapshot %+v)", name, snap)
		}
	}
	if m := snap["batch_used"]; m.Count == 0 || m.Sum == 0 {
		t.Fatalf("batch_used histogram empty: %+v", m)
	}
}
