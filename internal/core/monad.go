package core

// M is the CPS concurrency monad: a computation that produces a value of
// type A, represented as a function from the rest of the thread (the
// continuation, of type func(A) Trace) to the thread's trace. This is the
// paper's
//
//	newtype M a = M ((a -> Trace) -> Trace)
//
// written with Go generics. Go has no higher-kinded types, so return and
// bind are top-level generic functions rather than methods of a Monad
// class, and there is no do-notation: threads are written by chaining Bind
// and the loop combinators below (the "monadic style forced" trade-off of
// this reproduction).
type M[A any] func(k func(A) Trace) Trace

// Return lifts a value into the monad: given a continuation, it simply
// invokes it on the value.
func Return[A any](x A) M[A] {
	return func(k func(A) Trace) Trace { return k(x) }
}

// Bind sequentially composes two computations, threading the continuation
// through both: Bind(m, f) runs m, passes its result to f, and runs the
// resulting computation.
func Bind[A, B any](m M[A], f func(A) M[B]) M[B] {
	return func(k func(B) Trace) Trace {
		return m(func(a A) Trace { return f(a)(k) })
	}
}

// Then sequences two computations, discarding the result of the first
// (Haskell's >>).
func Then[A, B any](m M[A], n M[B]) M[B] {
	return func(k func(B) Trace) Trace {
		return m(func(A) Trace { return n(k) })
	}
}

// Map applies a pure function to the result of a computation (fmap).
func Map[A, B any](m M[A], f func(A) B) M[B] {
	return func(k func(B) Trace) Trace {
		return m(func(a A) Trace { return k(f(a)) })
	}
}

// Skip is the unit computation: it does nothing (Haskell's return ()).
var Skip M[Unit] = Return(Unit{})

// Seq sequences unit computations in order, a stand-in for a do-block of
// statements.
func Seq(ms ...M[Unit]) M[Unit] {
	switch len(ms) {
	case 0:
		return Skip
	case 1:
		return ms[0]
	}
	return func(k func(Unit) Trace) Trace {
		var step func(i int) Trace
		step = func(i int) Trace {
			if i == len(ms)-1 {
				return ms[i](k)
			}
			return ms[i](func(Unit) Trace { return step(i + 1) })
		}
		return step(0)
	}
}

// BuildTrace converts a thread into its trace by supplying the final
// continuation (a leaf RetNode), exactly as the paper's build_trace.
func BuildTrace(m M[Unit]) Trace {
	return m(func(Unit) Trace { return ret })
}

// ---------------------------------------------------------------------------
// Stack-safe loop combinators
// ---------------------------------------------------------------------------
//
// CPS in Go pushes a stack frame per bind even for tail calls, so a pure
// loop written by naive recursion would overflow the Go stack. The loop
// combinators below bounce each iteration through a trampoline node (a
// pure NBIONode), which unwinds the Go stack to the scheduler between
// iterations; the scheduler's batching (Options.BatchSteps) keeps the
// bounce cheap. Any loop containing a real system call gets the same
// unwinding for free.

// Loop runs body repeatedly for as long as it returns true.
func Loop(body M[bool]) M[Unit] {
	return func(k func(Unit) Trace) Trace {
		var iter func() Trace
		iter = func() Trace {
			return body(func(again bool) Trace {
				if !again {
					return k(Unit{})
				}
				return &NBIONode{Effect: iter}
			})
		}
		return iter()
	}
}

// Forever runs body repeatedly, never returning. The thread can still end
// via Halt or Throw inside the body.
func Forever(body M[Unit]) M[Unit] {
	return Loop(Then(body, Return(true)))
}

// ForN runs body(0), body(1), …, body(n-1) in order.
func ForN(n int, body func(i int) M[Unit]) M[Unit] {
	return func(k func(Unit) Trace) Trace {
		var iter func(i int) Trace
		iter = func(i int) Trace {
			if i >= n {
				return k(Unit{})
			}
			return body(i)(func(Unit) Trace {
				return &NBIONode{Effect: func() Trace { return iter(i + 1) }}
			})
		}
		return iter(0)
	}
}

// ForEach runs body on each element of xs in order.
func ForEach[A any](xs []A, body func(A) M[Unit]) M[Unit] {
	return ForN(len(xs), func(i int) M[Unit] { return body(xs[i]) })
}

// While runs body repeatedly for as long as cond returns true. cond is an
// effectful computation, so it can inspect shared state via NBIO.
func While(cond M[bool], body M[Unit]) M[Unit] {
	return Loop(Bind(cond, func(ok bool) M[bool] {
		if !ok {
			return Return(false)
		}
		return Then(body, Return(true))
	}))
}

// FoldN threads an accumulator through n iterations of body, returning the
// final accumulator. It is stack-safe like the other loop combinators.
func FoldN[A any](n int, acc A, body func(i int, acc A) M[A]) M[A] {
	return func(k func(A) Trace) Trace {
		var iter func(i int, acc A) Trace
		iter = func(i int, acc A) Trace {
			if i >= n {
				return k(acc)
			}
			return body(i, acc)(func(next A) Trace {
				return &NBIONode{Effect: func() Trace { return iter(i+1, next) }}
			})
		}
		return iter(0, acc)
	}
}
