package core

// M is the CPS concurrency monad: a computation that produces a value of
// type A, represented as a function from the rest of the thread (the
// continuation, of type func(A) Trace) to the thread's trace. This is the
// paper's
//
//	newtype M a = M ((a -> Trace) -> Trace)
//
// written with Go generics. Go has no higher-kinded types, so return and
// bind are top-level generic functions rather than methods of a Monad
// class, and there is no do-notation: threads are written by chaining Bind
// and the loop combinators in fuse.go (the "monadic style forced" trade-off
// of this reproduction).
type M[A any] func(k func(A) Trace) Trace

// Return lifts a value into the monad: given a continuation, it simply
// invokes it on the value.
func Return[A any](x A) M[A] {
	return func(k func(A) Trace) Trace { return k(x) }
}

// Bind sequentially composes two computations, threading the continuation
// through both: Bind(m, f) runs m, passes its result to f, and runs the
// resulting computation.
func Bind[A, B any](m M[A], f func(A) M[B]) M[B] {
	return func(k func(B) Trace) Trace {
		return m(func(a A) Trace { return f(a)(k) })
	}
}

// Then sequences two computations, discarding the result of the first
// (Haskell's >>).
func Then[A, B any](m M[A], n M[B]) M[B] {
	return func(k func(B) Trace) Trace {
		return m(func(A) Trace { return n(k) })
	}
}

// Map applies a pure function to the result of a computation (fmap).
func Map[A, B any](m M[A], f func(A) B) M[B] {
	return func(k func(B) Trace) Trace {
		return m(func(a A) Trace { return k(f(a)) })
	}
}

// Skip is the unit computation: it does nothing (Haskell's return ()).
var Skip M[Unit] = Return(Unit{})

// BuildTrace converts a thread into its trace by supplying the final
// continuation (a leaf RetNode), exactly as the paper's build_trace.
func BuildTrace(m M[Unit]) Trace {
	return m(func(Unit) Trace { return ret })
}

// ---------------------------------------------------------------------------
// Naive (closure-spine) reference combinators
// ---------------------------------------------------------------------------
//
// These are the original closure spellings of Seq and the stack-safe loop
// combinators: every iteration rebuilds its continuation closure and
// allocates a fresh trampoline NBIONode. They are retained as the
// executable specification for the fused fast paths in fuse.go — the
// FuzzFusedEquivalence differential test asserts the fused combinators
// produce the same effect order and results, and BenchmarkStepsPerSecNaive
// pins the before side of the flattening win. New code should use the
// unprefixed combinators.

// NaiveSeq is the closure-spine reference for Seq.
func NaiveSeq(ms ...M[Unit]) M[Unit] {
	switch len(ms) {
	case 0:
		return Skip
	case 1:
		return ms[0]
	}
	return func(k func(Unit) Trace) Trace {
		var step func(i int) Trace
		step = func(i int) Trace {
			if i == len(ms)-1 {
				return ms[i](k)
			}
			return ms[i](func(Unit) Trace { return step(i + 1) })
		}
		return step(0)
	}
}

// NaiveLoop is the closure-spine reference for Loop: it re-applies body to
// a freshly allocated continuation and bounces through a fresh NBIONode on
// every iteration.
func NaiveLoop(body M[bool]) M[Unit] {
	return func(k func(Unit) Trace) Trace {
		var iter func() Trace
		iter = func() Trace {
			return body(func(again bool) Trace {
				if !again {
					return k(Unit{})
				}
				return &NBIONode{Effect: iter}
			})
		}
		return iter()
	}
}

// NaiveForever is the closure-spine reference for Forever.
func NaiveForever(body M[Unit]) M[Unit] {
	return NaiveLoop(Then(body, Return(true)))
}

// NaiveForN is the closure-spine reference for ForN.
func NaiveForN(n int, body func(i int) M[Unit]) M[Unit] {
	return func(k func(Unit) Trace) Trace {
		var iter func(i int) Trace
		iter = func(i int) Trace {
			if i >= n {
				return k(Unit{})
			}
			return body(i)(func(Unit) Trace {
				return &NBIONode{Effect: func() Trace { return iter(i + 1) }}
			})
		}
		return iter(0)
	}
}

// NaiveWhile is the closure-spine reference for While.
func NaiveWhile(cond M[bool], body M[Unit]) M[Unit] {
	return NaiveLoop(Bind(cond, func(ok bool) M[bool] {
		if !ok {
			return Return(false)
		}
		return Then(body, Return(true))
	}))
}

// NaiveFoldN is the closure-spine reference for FoldN.
func NaiveFoldN[A any](n int, acc A, body func(i int, acc A) M[A]) M[A] {
	return func(k func(A) Trace) Trace {
		var iter func(i int, acc A) Trace
		iter = func(i int, acc A) Trace {
			if i >= n {
				return k(acc)
			}
			return body(i, acc)(func(next A) Trace {
				return &NBIONode{Effect: func() Trace { return iter(i+1, next) }}
			})
		}
		return iter(0, acc)
	}
}

// NaiveBindChain is the right-nested Bind spelling of BindChain: each step
// allocates one continuation closure per link per run.
func NaiveBindChain[A any](m M[A], fs ...func(A) M[A]) M[A] {
	out := m
	for _, f := range fs {
		out = Bind(out, f)
	}
	return out
}
