package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hybrid/internal/vclock"
)

// A supervised body that always fails runs MaxRestarts+1 times with the
// backoff schedule between runs, then the failure goes to OnGiveUp and
// the thread ends cleanly (no uncaught error).
func TestSuperviseBoundedRestartsWithBackoff(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()

	boom := errors.New("poisoned")
	var runs, restarts atomic.Int64
	var gaveUp atomic.Value
	body := NBIOe(func() (Unit, error) { runs.Add(1); return Unit{}, boom })
	rt.Run(Supervise(clk, RestartPolicy{
		MaxRestarts: 3,
		Backoff:     Backoff{Base: time.Millisecond, Factor: 2},
		OnRestart:   func(int, error) { restarts.Add(1) },
		OnGiveUp:    func(err error) { gaveUp.Store(err) },
	}, Then(body, Skip)))

	if runs.Load() != 4 {
		t.Fatalf("body ran %d times, want 4 (1 + 3 restarts)", runs.Load())
	}
	if restarts.Load() != 3 {
		t.Fatalf("OnRestart fired %d times, want 3", restarts.Load())
	}
	if err, _ := gaveUp.Load().(error); !errors.Is(err, boom) {
		t.Fatalf("OnGiveUp got %v, want the body's error", gaveUp.Load())
	}
	if got := rt.UncaughtErrors(); len(got) != 0 {
		t.Fatalf("supervised failure leaked as uncaught: %v", got)
	}
	// Backoff 1ms, 2ms, 4ms between the four runs.
	if clk.Now() != vclock.Time(7*time.Millisecond) {
		t.Fatalf("virtual time = %v, want 7ms of restart backoff", clk.Now())
	}
}

// A body that recovers mid-schedule stops consuming restart budget.
func TestSuperviseRecovers(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()

	var runs atomic.Int64
	var gaveUp atomic.Bool
	body := NBIOe(func() (Unit, error) {
		if runs.Add(1) < 3 {
			return Unit{}, errors.New("transient")
		}
		return Unit{}, nil
	})
	rt.Run(Supervise(clk, RestartPolicy{
		MaxRestarts: 5,
		Backoff:     Backoff{Base: time.Millisecond},
		OnGiveUp:    func(error) { gaveUp.Store(true) },
	}, Then(body, Skip)))

	if runs.Load() != 3 || gaveUp.Load() {
		t.Fatalf("runs=%d gaveUp=%v, want recovery on run 3", runs.Load(), gaveUp.Load())
	}
}

// RestartIf gates the budget: a non-restartable failure goes straight to
// give-up without sleeping.
func TestSuperviseNonRestartableGivesUpImmediately(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()

	fatal := errors.New("fatal")
	var runs atomic.Int64
	var gaveUp atomic.Value
	rt.Run(Supervise(clk, RestartPolicy{
		MaxRestarts: 5,
		Backoff:     Backoff{Base: time.Second},
		RestartIf:   func(err error) bool { return !errors.Is(err, fatal) },
		OnGiveUp:    func(err error) { gaveUp.Store(err) },
	}, Then(NBIOe(func() (Unit, error) { runs.Add(1); return Unit{}, fatal }), Skip)))

	if runs.Load() != 1 {
		t.Fatalf("body ran %d times after a fatal error, want 1", runs.Load())
	}
	if clk.Now() != 0 {
		t.Fatalf("non-restartable failure slept: clock at %v", clk.Now())
	}
	if err, _ := gaveUp.Load().(error); !errors.Is(err, fatal) {
		t.Fatalf("OnGiveUp got %v", gaveUp.Load())
	}
}

// With TrapPanics, a panicking body is a restartable failure like any
// other: the supervisor sees *PanicError and restarts — one poisoned
// thread never kills the runtime.
func TestSuperviseIsolatesPanics(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk, TrapPanics: true})
	defer rt.Shutdown()

	var runs atomic.Int64
	var gaveUp atomic.Value
	rt.Run(Supervise(clk, RestartPolicy{
		MaxRestarts: 2,
		OnGiveUp:    func(err error) { gaveUp.Store(err) },
	}, Do(func() { runs.Add(1); panic("poison pill") })))

	if runs.Load() != 3 {
		t.Fatalf("panicking body ran %d times, want 3", runs.Load())
	}
	var pe *PanicError
	if err, _ := gaveUp.Load().(error); !errors.As(err, &pe) {
		t.Fatalf("OnGiveUp got %v, want *PanicError", gaveUp.Load())
	}
	// The runtime survived: it can still run ordinary threads.
	var alive atomic.Bool
	rt.Run(Do(func() { alive.Store(true) }))
	if !alive.Load() {
		t.Fatal("runtime dead after supervised panics")
	}
}

// Nil OnGiveUp re-raises, so supervisors nest: the outer one sees the
// inner one's final failure.
func TestSuperviseNests(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := NewRuntime(Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()

	boom := errors.New("boom")
	var runs atomic.Int64
	var outer atomic.Value
	inner := Supervise(clk, RestartPolicy{MaxRestarts: 1},
		Then(NBIOe(func() (Unit, error) { runs.Add(1); return Unit{}, boom }), Skip))
	rt.Run(Supervise(clk, RestartPolicy{
		MaxRestarts: 1,
		OnGiveUp:    func(err error) { outer.Store(err) },
	}, inner))

	// Inner runs twice per outer run; outer restarts once: 4 total.
	if runs.Load() != 4 {
		t.Fatalf("body ran %d times, want 4 (2 inner × 2 outer)", runs.Load())
	}
	if err, _ := outer.Load().(error); !errors.Is(err, boom) {
		t.Fatalf("outer OnGiveUp got %v", outer.Load())
	}
}
