package core

import (
	"hybrid/internal/vclock"
)

// This file adds the recovery combinators the paper's exception story
// (§3.3) implies but never spells out: bounded retry with backoff and
// deadline enforcement, built from Catch, Sleep, and FirstOf — ordinary
// monadic code, no new trace nodes. They are the thread-side answer to
// the fault-injection layer: a simulated kernel that can say EINTR needs
// servers that can absorb it.

// Backoff describes a bounded retry schedule. The zero value means "one
// extra attempt, immediately"; withDefaults fills the rest.
type Backoff struct {
	// Attempts is the total number of tries, including the first.
	// Values below 1 read as 1 (no retry).
	Attempts int
	// Base is the sleep before the first retry.
	Base vclock.Duration
	// Factor multiplies the delay after each failure (values below 1
	// read as 1: constant backoff).
	Factor float64
	// Max caps the delay; 0 means uncapped.
	Max vclock.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Attempts < 1 {
		b.Attempts = 1
	}
	if b.Factor < 1 {
		b.Factor = 1
	}
	return b
}

// delay reports the sleep before retry number try (1-based: the sleep
// after the try-th failure).
func (b Backoff) delay(try int) vclock.Duration {
	d := float64(b.Base)
	for i := 1; i < try; i++ {
		d *= b.Factor
		if b.Max > 0 && d > float64(b.Max) {
			return b.Max
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		return b.Max
	}
	return vclock.Duration(d)
}

// RetryIf runs m, and on an exception for which retryable returns true,
// sleeps per the backoff schedule and runs it again, up to b.Attempts
// total tries. The last failure (or the first non-retryable one)
// propagates unchanged. A nil retryable retries every exception.
//
// M values are recipes, not futures — re-running m re-executes it from
// the start — so m must be safe to repeat (idempotent reads, or writes
// the layer above can deduplicate).
func RetryIf[A any](clk vclock.Clock, b Backoff, retryable func(error) bool, m M[A]) M[A] {
	b = b.withDefaults()
	var attempt func(try int) M[A]
	attempt = func(try int) M[A] {
		if try >= b.Attempts {
			return m // last try: let any exception propagate
		}
		return Catch(m, func(err error) M[A] {
			if retryable != nil && !retryable(err) {
				return Throw[A](err)
			}
			return Then(Sleep(clk, b.delay(try)), attempt(try+1))
		})
	}
	return attempt(1)
}

// Retry is RetryIf with every exception considered retryable.
func Retry[A any](clk vclock.Clock, b Backoff, m M[A]) M[A] {
	return RetryIf(clk, b, nil, m)
}

// WithDeadline runs m with an absolute deadline on the clock: if the
// deadline passes first, it raises ErrTimedOut. A deadline already in
// the past fails without running m at all. Like Timeout, m itself is not
// cancelled when it loses the race — it finishes in its own thread and
// its outcome is discarded.
func WithDeadline[A any](clk vclock.Clock, deadline vclock.Time, m M[A]) M[A] {
	return Bind(NBIO(func() vclock.Duration {
		return vclock.Duration(deadline - clk.Now())
	}), func(remaining vclock.Duration) M[A] {
		if remaining <= 0 {
			return Throw[A](ErrTimedOut)
		}
		return Timeout(clk, remaining, m)
	})
}
