package core

// Fused (defunctionalized) combinator spines.
//
// The closure spellings in monad.go rebuild their continuation graph on
// every invocation of the returned M: each Seq element costs a fresh
// closure, and each loop iteration costs a fresh continuation closure plus
// a freshly allocated trampoline NBIONode. Following the CPC line of work
// (Kerneis & Chroboczek, "Compiling threads to events through
// continuations"), the combinators below compile the same control
// structure once, at application time, into a small mutable state struct —
// a flat step cursor plus an embedded, reused trampoline node — that a
// fixed pair of closures interprets. Steady-state iterations then touch
// only the state struct: zero allocations per iteration, and for the
// constant-body loops (Loop, Forever, While, RepeatN) zero allocations per
// replay of the cached body trace as well.
//
// Invariants (the fast-path rules; see DESIGN.md "Continuation
// flattening"):
//
//   - Node-sequence equivalence. A fused combinator must emit exactly the
//     node sequence its naive spelling emits — same node kinds, same
//     counts, same positions relative to the body's own nodes. The
//     scheduler charges its BatchSteps budget per node, so an extra or
//     missing trampoline bounce changes yield points, which changes
//     scheduling, which changes every virtual-time figure. The
//     FuzzFusedEquivalence differential fuzz target enforces this.
//
//   - One application, one spine. Applying the M to a continuation
//     allocates a fresh spine state; spines are never shared between
//     applications, and a thread forces its own trace sequentially, so
//     spine state needs no synchronization.
//
//   - Replay safety (arena recycling). Traces in this codebase may be
//     retained and re-forced from the head after completing — the httpd
//     serve loop does it per keep-alive request, and the fused
//     constant-body loops below do it per iteration. A spine is therefore
//     an arena owned by its trace, recycled by *resetting its cursor at
//     completion* rather than by returning it to a pool: a sync.Pool
//     release would let a retained trace re-enter a spine after it was
//     re-leased to an unrelated thread. The reset target is the cursor
//     position of the trace head, not zero — node-free prefixes (Skip,
//     Return) evaluate eagerly at application time, so the head trace
//     may sit past element zero (FuzzFusedEquivalence found this). (Thread-granularity pooling — the
//     scheduler's generation-guarded TCB pool — remains the recycling
//     story for per-thread state.)
//
//   - Constant-body caching. Loop, Forever, While, and RepeatN apply
//     their body M once and re-force the resulting trace every iteration.
//     This is sound because building an M is pure (forcing acts) and all
//     primitive traces are replayable: NBIO/Blio effects re-run, Suspend
//     re-parks with a fresh once-guard, Catch re-pushes its handler. ForN,
//     ForEach, and FoldN cannot cache — their bodies take the iteration
//     index or accumulator — so they fall back to re-applying the body
//     per iteration (the body application is the only per-iteration cost;
//     the spine itself allocates nothing).

// Seq sequences unit computations in order, a stand-in for a do-block of
// statements. Fused: one spine holds the element cursor; elements after
// the first are applied as the cursor reaches them, all to the same
// shared continuation.
func Seq(ms ...M[Unit]) M[Unit] {
	switch len(ms) {
	case 0:
		return Skip
	case 1:
		return ms[0]
	}
	return func(k func(Unit) Trace) Trace {
		s := &seqSpine{ms: ms, k: k}
		s.cont = s.step
		// Node-free elements (Skip, Return) evaluate their continuation
		// at application time, so the cursor may already have advanced
		// past them when the head trace comes back. The replay reset
		// must restore the cursor to the head's position, not to zero.
		head := ms[0](s.cont)
		s.i0 = s.i
		return head
	}
}

type seqSpine struct {
	ms   []M[Unit]
	i    int
	i0   int // cursor position of the trace head (see Seq)
	k    func(Unit) Trace
	cont func(Unit) Trace // s.step, allocated once per spine
}

func (s *seqSpine) step(Unit) Trace {
	i := s.i + 1
	if i == len(s.ms)-1 {
		s.i = s.i0 // reset: a retained trace may replay this spine
		return s.ms[i](s.k)
	}
	s.i = i
	return s.ms[i](s.cont)
}

// Loop runs body repeatedly for as long as it returns true. Fused: body
// is applied once and its trace is re-forced each iteration through the
// spine's embedded trampoline node — zero allocations per iteration.
func Loop(body M[bool]) M[Unit] {
	return func(k func(Unit) Trace) Trace {
		s := &loopSpine{k: k}
		s.node.Effect = s.bounce
		s.body = body(s.step)
		return s.body
	}
}

type loopSpine struct {
	body Trace
	k    func(Unit) Trace
	node NBIONode
}

func (s *loopSpine) step(again bool) Trace {
	if !again {
		return s.k(Unit{})
	}
	return &s.node
}

func (s *loopSpine) bounce() Trace { return s.body }

// Forever runs body repeatedly, never returning. The thread can still end
// via Halt or Throw inside the body. Fused like Loop, without the
// per-iteration continue check.
func Forever(body M[Unit]) M[Unit] {
	return func(k func(Unit) Trace) Trace {
		s := &foreverSpine{}
		s.node.Effect = s.bounce
		s.body = body(s.step)
		return s.body
	}
}

type foreverSpine struct {
	body Trace
	node NBIONode
}

func (s *foreverSpine) step(Unit) Trace { return &s.node }
func (s *foreverSpine) bounce() Trace   { return s.body }

// While runs body repeatedly for as long as cond returns true. cond is an
// effectful computation, so it can inspect shared state via NBIO. Fused:
// both constant computations are applied once; the spine alternates
// between their cached traces with one trampoline bounce per iteration,
// exactly where the naive Loop spelling bounced.
func While(cond M[bool], body M[Unit]) M[Unit] {
	return func(k func(Unit) Trace) Trace {
		s := &whileSpine{k: k}
		s.node.Effect = s.bounce
		s.body = body(s.afterBody)
		s.cond = cond(s.afterCond)
		return s.cond
	}
}

type whileSpine struct {
	cond Trace
	body Trace
	k    func(Unit) Trace
	node NBIONode
}

func (s *whileSpine) afterCond(ok bool) Trace {
	if !ok {
		return s.k(Unit{})
	}
	return s.body
}

func (s *whileSpine) afterBody(Unit) Trace { return &s.node }
func (s *whileSpine) bounce() Trace        { return s.cond }

// ForN runs body(0), body(1), …, body(n-1) in order. The spine allocates
// nothing per iteration; body(i) is applied fresh each iteration (its
// result depends on i, so its trace cannot be cached).
func ForN(n int, body func(i int) M[Unit]) M[Unit] {
	if n <= 0 {
		return Skip
	}
	return func(k func(Unit) Trace) Trace {
		s := &forSpine{n: n, body: body, k: k}
		s.cont = s.step
		s.node.Effect = s.bounce
		return body(0)(s.cont)
	}
}

type forSpine struct {
	i    int
	n    int
	body func(int) M[Unit]
	k    func(Unit) Trace
	cont func(Unit) Trace // s.step, allocated once per spine
	node NBIONode
}

func (s *forSpine) step(Unit) Trace { return &s.node }

func (s *forSpine) bounce() Trace {
	i := s.i + 1
	if i >= s.n {
		s.i = 0 // reset: a retained trace may replay this spine
		return s.k(Unit{})
	}
	s.i = i
	return s.body(i)(s.cont)
}

// ForEach runs body on each element of xs in order.
func ForEach[A any](xs []A, body func(A) M[Unit]) M[Unit] {
	return ForN(len(xs), func(i int) M[Unit] { return body(xs[i]) })
}

// RepeatN runs body n times. It is ForN for the common constant-body
// case: because body does not see the iteration index, its trace is
// cached like Loop's and every iteration is allocation-free. The node
// sequence is identical to ForN(n, func(int) M[Unit] { return body }).
func RepeatN(n int, body M[Unit]) M[Unit] {
	if n <= 0 {
		return Skip
	}
	return func(k func(Unit) Trace) Trace {
		s := &repeatSpine{n: n, k: k}
		s.node.Effect = s.bounce
		s.body = body(s.step)
		return s.body
	}
}

type repeatSpine struct {
	body Trace
	i    int
	n    int
	k    func(Unit) Trace
	node NBIONode
}

func (s *repeatSpine) step(Unit) Trace { return &s.node }

func (s *repeatSpine) bounce() Trace {
	i := s.i + 1
	if i >= s.n {
		s.i = 0 // reset: a retained trace may replay this spine
		return s.k(Unit{})
	}
	s.i = i
	return s.body
}

// FoldN threads an accumulator through n iterations of body, returning
// the final accumulator. It is stack-safe like the other loop
// combinators. The spine allocates nothing per iteration beyond the
// body's own application.
func FoldN[A any](n int, acc A, body func(i int, acc A) M[A]) M[A] {
	if n <= 0 {
		return Return(acc)
	}
	return func(k func(A) Trace) Trace {
		s := &foldSpine[A]{n: n, acc: acc, body: body, k: k}
		s.cont = s.step
		s.node.Effect = s.bounce
		// A node-free body(0) (a bare Return) runs step eagerly at
		// application time; the replay reset must restore the
		// accumulator the head trace was built with, not the input.
		head := body(0, acc)(s.cont)
		s.accR = s.acc
		return head
	}
}

type foldSpine[A any] struct {
	i    int
	n    int
	accR A // accumulator at the trace head, restored for replay
	acc  A
	body func(int, A) M[A]
	k    func(A) Trace
	cont func(A) Trace // s.step, allocated once per spine
	node NBIONode
}

func (s *foldSpine[A]) step(next A) Trace {
	s.acc = next
	return &s.node
}

func (s *foldSpine[A]) bounce() Trace {
	i := s.i + 1
	if i >= s.n {
		acc := s.acc
		s.i, s.acc = 0, s.accR // reset: a retained trace may replay this spine
		return s.k(acc)
	}
	s.i = i
	return s.body(i, s.acc)(s.cont)
}

// BindChain compiles the right-nested chain Bind(…Bind(Bind(m, fs[0]),
// fs[1])…, fs[n-1]) into a flat step array interpreted by one shared
// continuation: the spine allocates twice at application and nothing per
// link, where the nested spelling allocates one closure per link per run.
// The chain is homogeneous in A; heterogeneous pipelines still use Bind.
func BindChain[A any](m M[A], fs ...func(A) M[A]) M[A] {
	if len(fs) == 0 {
		return m
	}
	return func(k func(A) Trace) Trace {
		s := &chainSpine[A]{fs: fs, k: k}
		s.cont = s.step
		// A node-free head (Return) or node-free links run step eagerly
		// at application time; the replay reset must restore the cursor
		// to the head trace's position, not to zero.
		head := m(s.cont)
		s.i0 = s.i
		return head
	}
}

type chainSpine[A any] struct {
	fs   []func(A) M[A]
	i    int
	i0   int // cursor position of the trace head (see BindChain)
	k    func(A) Trace
	cont func(A) Trace // s.step, allocated once per spine
}

func (s *chainSpine[A]) step(a A) Trace {
	i := s.i
	if i == len(s.fs) {
		s.i = s.i0 // reset: a retained trace may replay this spine
		return s.k(a)
	}
	s.i = i + 1
	return s.fs[i](a)(s.cont)
}
