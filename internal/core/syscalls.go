package core

import (
	"sync/atomic"

	"hybrid/internal/vclock"
)

// This file implements the paper's "system calls": monad operations that
// create one trace node each, with the continuation of the current
// computation filled into the node's sub-trace fields (Figure 9 in the
// paper). Blocking I/O interfaces — epoll, AIO, mutexes, TCP — are built
// on Suspend in their own packages, keeping the scheduler open to new
// event sources exactly as the paper advertises.

// NBIO performs a nonblocking effect on the scheduler's event loop and
// returns its result (the paper's sys_nbio). f must not block.
func NBIO[A any](f func() A) M[A] {
	return func(k func(A) Trace) Trace {
		return &NBIONode{Effect: func() Trace { return k(f()) }}
	}
}

// NBIOe performs a nonblocking effect that may fail; a non-nil error is
// raised as a monadic exception, so callers handle it with Catch just like
// any other failure.
func NBIOe[A any](f func() (A, error)) M[A] {
	return func(k func(A) Trace) Trace {
		return &NBIONode{Effect: func() Trace {
			a, err := f()
			if err != nil {
				return &ThrowNode{Err: err}
			}
			return k(a)
		}}
	}
}

// Do runs an effect for its side effects only. Equivalent to NBIO with a
// Unit result.
func Do(f func()) M[Unit] {
	return NBIO(func() Unit { f(); return Unit{} })
}

// Fork creates a new thread running child (the paper's sys_fork). The
// child starts with an empty exception-handler stack.
func Fork(child M[Unit]) M[Unit] {
	return func(k func(Unit) Trace) Trace {
		return &ForkNode{Child: BuildTrace(child), Cont: k(Unit{})}
	}
}

// Yield moves the current thread to the back of the ready queue, letting
// other threads run (the paper's sys_yield).
func Yield() M[Unit] {
	return func(k func(Unit) Trace) Trace {
		return &YieldNode{Cont: k(Unit{})}
	}
}

// Halt terminates the current thread immediately (the paper's sys_ret).
// It is polymorphic in its result type because control never returns.
func Halt[A any]() M[A] {
	return func(func(A) Trace) Trace { return ret }
}

// Throw raises an exception in the current thread (the paper's
// sys_throw). Control transfers to the nearest enclosing Catch; if there
// is none, the thread terminates and the runtime's Uncaught hook runs.
func Throw[A any](err error) M[A] {
	return func(func(A) Trace) Trace { return &ThrowNode{Err: err} }
}

// Catch runs body with handler installed for exceptions thrown during it
// (the paper's sys_catch). The handler receives the exception and its
// result replaces the body's. Exceptions thrown by the handler itself
// propagate outward, which is how the paper's send_file re-raises after
// cleanup.
func Catch[A any](body M[A], handler func(error) M[A]) M[A] {
	return func(k func(A) Trace) Trace {
		return &CatchNode{
			Body:    body(func(a A) Trace { return &PopCatchNode{Cont: k(a)} }),
			Handler: func(err error) Trace { return handler(err)(k) },
		}
	}
}

// Finally runs body and then cleanup, whether body completed or threw; an
// exception from body is re-raised after cleanup.
func Finally[A any](body M[A], cleanup M[Unit]) M[A] {
	return Bind(
		Catch(body, func(err error) M[A] {
			return Then(cleanup, Throw[A](err))
		}),
		func(a A) M[A] { return Then(cleanup, Return(a)) },
	)
}

// OnException runs body; if it throws, handler runs for its effects and
// the exception is re-raised.
func OnException[A any](body M[A], handler M[Unit]) M[A] {
	return Catch(body, func(err error) M[A] {
		return Then(handler, Throw[A](err))
	})
}

// Ensure runs body with cleanup registered on the thread's cleanup stack:
// cleanup runs exactly once, whether body completes, throws, or the thread
// dies abnormally — an uncaught exception, a panic trapped by the runtime,
// or a discard when Shutdown drains the queues. It is the stronger sibling
// of Finally, for releasing external resources (descriptors, admission
// slots, semaphore permits) that a dead thread's trace can never give
// back; cleanup is a plain function because it may run outside the
// thread, on the runtime's abort path. Cleanup must be brief, must not
// block, and must not call back into the monad.
func Ensure[A any](cleanup func(), body M[A]) M[A] {
	return Bind(pushCleanup(cleanup), func(Unit) M[A] {
		return Bind(
			Catch(body, func(err error) M[A] {
				return Then(popCleanup(true), Throw[A](err))
			}),
			func(a A) M[A] { return Then(popCleanup(true), Return(a)) },
		)
	})
}

// pushCleanup registers fn on the current thread's cleanup stack.
func pushCleanup(fn func()) M[Unit] {
	return func(k func(Unit) Trace) Trace {
		return &CleanupNode{Fn: fn, Cont: k(Unit{})}
	}
}

// popCleanup removes the most recent cleanup frame, running it when run is
// set.
func popCleanup(run bool) M[Unit] {
	return func(k func(Unit) Trace) Trace {
		return &PopCleanupNode{Run: run, Cont: k(Unit{})}
	}
}

// Suspend parks the thread until an external event supplies a value of
// type A. register is called with a typed resume function; whichever event
// loop, device model, or callback owns the event must call it exactly once.
// All blocking system calls in this repository — epoll waits, AIO
// completions, mutex queues, timers, TCP operations — are Suspend at the
// trace level, which is what lets the scheduler treat them uniformly as
// events.
func Suspend[A any](register func(resume func(A))) M[A] {
	return func(k func(A) Trace) Trace {
		return &SuspendNode{Park: func(resume func(Trace)) {
			var done atomic.Bool
			register(func(a A) {
				if !done.CompareAndSwap(false, true) {
					panic("core: Suspend resumed twice")
				}
				resume(k(a))
			})
		}}
	}
}

// SuspendB is Suspend for event sources that deliver wakeups in batches:
// the registered resume additionally accepts the event loop's current
// *Batch, staging the thread for one coalesced ready-queue push per poll
// round rather than an enqueue per event. Pass nil when no batch is in
// flight (a delayed or out-of-band wakeup) and the thread enqueues
// immediately, exactly as with Suspend.
func SuspendB[A any](register func(resume func(A, *Batch))) M[A] {
	return func(k func(A) Trace) Trace {
		return &SuspendNode{ParkB: func(resume func(Trace, *Batch)) {
			var done atomic.Bool
			register(func(a A, b *Batch) {
				if !done.CompareAndSwap(false, true) {
					panic("core: Suspend resumed twice")
				}
				resume(k(a), b)
			})
		}}
	}
}

// Blio performs a blocking effect on the runtime's blocking-I/O thread
// pool (the paper's sys_blio, §4.6), so worker event loops are never
// stalled by synchronous OS interfaces.
func Blio[A any](f func() A) M[A] {
	return func(k func(A) Trace) Trace {
		return &BlioNode{Effect: func() Trace { return k(f()) }}
	}
}

// Blioe is Blio for effects that may fail; a non-nil error is raised as a
// monadic exception.
func Blioe[A any](f func() (A, error)) M[A] {
	return func(k func(A) Trace) Trace {
		return &BlioNode{Effect: func() Trace {
			a, err := f()
			if err != nil {
				return &ThrowNode{Err: err}
			}
			return k(a)
		}}
	}
}

// Sleep suspends the thread for d on the given clock. On a virtual clock
// this advances simulation time; on a real clock it is a timer wait. It is
// the basis for timeouts and for the TCP stack's timer events.
func Sleep(clk vclock.Clock, d vclock.Duration) M[Unit] {
	// The timer callback runs with a busy hold; resuming enqueues the
	// thread, and the runtime takes its own hold for every queued thread,
	// so no explicit transfer is needed here.
	return Suspend(func(resume func(Unit)) {
		clk.After(d, func() { resume(Unit{}) })
	})
}
