package core

import "sync"

// This file implements the paper's blocking synchronization primitives
// (§4.7): a mutex is "a memory reference that points to a pair (l, q)
// where l indicates whether the mutex is locked, and q is a linked list of
// thread traces blocking on this mutex". Each primitive keeps a queue of
// parked resume functions and dispatches them to the scheduler's ready
// queue, exactly the paper's design, generalized through Suspend.
//
// A plain Go sync.Mutex guards each primitive's own state; it is held only
// for pointer manipulation, never across a blocking point, so it is safe
// to use from any worker event loop.

// Mutex is a blocking mutual-exclusion lock for monadic threads (the
// paper's sys_mutex).
type Mutex struct {
	mu      sync.Mutex
	locked  bool
	waiters []func(Unit)
}

// NewMutex returns an unlocked mutex.
func NewMutex() *Mutex { return &Mutex{} }

// Lock acquires the mutex, parking the thread behind earlier waiters if
// it is held. Wakeups are FIFO, so the lock is fair.
func (m *Mutex) Lock() M[Unit] {
	return Suspend(func(resume func(Unit)) {
		m.mu.Lock()
		if !m.locked {
			m.locked = true
			m.mu.Unlock()
			resume(Unit{})
			return
		}
		m.waiters = append(m.waiters, resume)
		m.mu.Unlock()
	})
}

// Unlock releases the mutex. If threads are waiting, ownership passes
// directly to the oldest waiter, which is dispatched to the ready queue.
func (m *Mutex) Unlock() M[Unit] {
	return Do(func() {
		m.mu.Lock()
		if !m.locked {
			m.mu.Unlock()
			panic("core: Unlock of unlocked Mutex")
		}
		if len(m.waiters) == 0 {
			m.locked = false
			m.mu.Unlock()
			return
		}
		next := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.mu.Unlock()
		next(Unit{}) // lock stays held; ownership transfers
	})
}

// WithLock runs body while holding the mutex, releasing it on success or
// exception.
func (m *Mutex) WithLock(body M[Unit]) M[Unit] {
	return Then(m.Lock(), Finally(body, m.Unlock()))
}

// TryLock acquires the mutex only if it is free, reporting whether it did.
func (m *Mutex) TryLock() M[bool] {
	return NBIO(func() bool {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.locked {
			return false
		}
		m.locked = true
		return true
	})
}

// ---------------------------------------------------------------------------
// MVar: Concurrent Haskell's one-place buffer, which §4.7 notes "can also
// be similarly implemented" as a scheduler extension.
// ---------------------------------------------------------------------------

// MVar is a synchronized one-place buffer: Take blocks while empty, Put
// blocks while full.
type MVar[A any] struct {
	mu      sync.Mutex
	full    bool
	value   A
	takers  []func(A)
	putters []mvarPut[A]
}

type mvarPut[A any] struct {
	value  A
	resume func(Unit)
}

// NewMVar returns an empty MVar.
func NewMVar[A any]() *MVar[A] { return &MVar[A]{} }

// NewFullMVar returns an MVar holding x.
func NewFullMVar[A any](x A) *MVar[A] { return &MVar[A]{full: true, value: x} }

// Take removes and returns the value, blocking while the MVar is empty.
func (v *MVar[A]) Take() M[A] {
	return Suspend(func(resume func(A)) {
		v.mu.Lock()
		if !v.full {
			v.takers = append(v.takers, resume)
			v.mu.Unlock()
			return
		}
		x := v.value
		var zero A
		v.value = zero
		v.full = false
		// A blocked putter can refill immediately.
		if len(v.putters) > 0 {
			p := v.putters[0]
			v.putters = v.putters[1:]
			v.value = p.value
			v.full = true
			v.mu.Unlock()
			p.resume(Unit{})
		} else {
			v.mu.Unlock()
		}
		resume(x)
	})
}

// Put stores a value, blocking while the MVar is full.
func (v *MVar[A]) Put(x A) M[Unit] {
	return Suspend(func(resume func(Unit)) {
		v.mu.Lock()
		if len(v.takers) > 0 {
			// Hand the value straight to the oldest taker.
			taker := v.takers[0]
			v.takers = v.takers[1:]
			v.mu.Unlock()
			taker(x)
			resume(Unit{})
			return
		}
		if !v.full {
			v.value = x
			v.full = true
			v.mu.Unlock()
			resume(Unit{})
			return
		}
		v.putters = append(v.putters, mvarPut[A]{value: x, resume: resume})
		v.mu.Unlock()
	})
}

// TryTake removes the value if present, returning ok=false otherwise.
func (v *MVar[A]) TryTake() M[struct {
	Value A
	OK    bool
}] {
	type res = struct {
		Value A
		OK    bool
	}
	return NBIO(func() res {
		v.mu.Lock()
		defer v.mu.Unlock()
		if !v.full {
			return res{}
		}
		x := v.value
		var zero A
		v.value = zero
		v.full = false
		return res{Value: x, OK: true}
	})
}

// ---------------------------------------------------------------------------
// Chan: a bounded FIFO channel between monadic threads, the natural
// producer-consumer primitive on top of Mutex/MVar-style queues.
// ---------------------------------------------------------------------------

// Chan is a bounded FIFO channel. Send blocks while full; Recv blocks
// while empty. Capacity zero makes it a rendezvous channel.
type Chan[A any] struct {
	mu      sync.Mutex
	cap     int
	buf     []A
	senders []chanSend[A]
	readers []func(A)
}

type chanSend[A any] struct {
	value  A
	resume func(Unit)
}

// NewChan returns a channel with the given capacity (>= 0).
func NewChan[A any](capacity int) *Chan[A] {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan[A]{cap: capacity}
}

// Send enqueues x, blocking while the channel is full.
func (c *Chan[A]) Send(x A) M[Unit] {
	return Suspend(func(resume func(Unit)) {
		c.mu.Lock()
		if len(c.readers) > 0 {
			r := c.readers[0]
			c.readers = c.readers[1:]
			c.mu.Unlock()
			r(x)
			resume(Unit{})
			return
		}
		if len(c.buf) < c.cap {
			c.buf = append(c.buf, x)
			c.mu.Unlock()
			resume(Unit{})
			return
		}
		c.senders = append(c.senders, chanSend[A]{value: x, resume: resume})
		c.mu.Unlock()
	})
}

// Recv dequeues a value, blocking while the channel is empty.
func (c *Chan[A]) Recv() M[A] {
	return Suspend(func(resume func(A)) {
		c.mu.Lock()
		if len(c.buf) > 0 {
			x := c.buf[0]
			c.buf = c.buf[1:]
			// Admit a blocked sender into the freed slot.
			if len(c.senders) > 0 {
				s := c.senders[0]
				c.senders = c.senders[1:]
				c.buf = append(c.buf, s.value)
				c.mu.Unlock()
				s.resume(Unit{})
			} else {
				c.mu.Unlock()
			}
			resume(x)
			return
		}
		if len(c.senders) > 0 { // rendezvous (capacity 0)
			s := c.senders[0]
			c.senders = c.senders[1:]
			c.mu.Unlock()
			s.resume(Unit{})
			resume(s.value)
			return
		}
		c.readers = append(c.readers, resume)
		c.mu.Unlock()
	})
}

// Len reports the number of buffered values.
func (c *Chan[A]) Len() M[int] {
	return NBIO(func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.buf)
	})
}

// ---------------------------------------------------------------------------
// Semaphore and WaitGroup: small conveniences in the same style.
// ---------------------------------------------------------------------------

// Semaphore is a counting semaphore for monadic threads.
type Semaphore struct {
	mu      sync.Mutex
	permits int
	waiters []func(Unit)
}

// NewSemaphore returns a semaphore with the given number of permits.
func NewSemaphore(permits int) *Semaphore { return &Semaphore{permits: permits} }

// Acquire takes one permit, blocking while none are available.
func (s *Semaphore) Acquire() M[Unit] {
	return Suspend(func(resume func(Unit)) {
		s.mu.Lock()
		if s.permits > 0 {
			s.permits--
			s.mu.Unlock()
			resume(Unit{})
			return
		}
		s.waiters = append(s.waiters, resume)
		s.mu.Unlock()
	})
}

// Release returns one permit, waking the oldest waiter if any.
func (s *Semaphore) Release() M[Unit] {
	return Do(func() {
		s.mu.Lock()
		if len(s.waiters) > 0 {
			next := s.waiters[0]
			s.waiters = s.waiters[1:]
			s.mu.Unlock()
			next(Unit{})
			return
		}
		s.permits++
		s.mu.Unlock()
	})
}

// WaitGroup lets a thread wait for a set of other threads to call Done.
type WaitGroup struct {
	mu      sync.Mutex
	count   int
	waiters []func(Unit)
}

// NewWaitGroup returns a WaitGroup expecting n Done calls.
func NewWaitGroup(n int) *WaitGroup { return &WaitGroup{count: n} }

// Add increases the count of expected Done calls.
func (w *WaitGroup) Add(n int) M[Unit] {
	return Do(func() {
		w.mu.Lock()
		w.count += n
		w.mu.Unlock()
	})
}

// Done signals one completion; when the count reaches zero all waiters
// are released.
func (w *WaitGroup) Done() M[Unit] {
	return Do(func() {
		w.mu.Lock()
		w.count--
		if w.count > 0 {
			w.mu.Unlock()
			return
		}
		waiters := w.waiters
		w.waiters = nil
		w.mu.Unlock()
		for _, resume := range waiters {
			resume(Unit{})
		}
	})
}

// Wait blocks until the count reaches zero.
func (w *WaitGroup) Wait() M[Unit] {
	return Suspend(func(resume func(Unit)) {
		w.mu.Lock()
		if w.count <= 0 {
			w.mu.Unlock()
			resume(Unit{})
			return
		}
		w.waiters = append(w.waiters, resume)
		w.mu.Unlock()
	})
}
