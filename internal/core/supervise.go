package core

import (
	"hybrid/internal/vclock"
)

// This file adds thread supervision in the spirit of Erlang/OTP's
// one-for-one supervisors, built from the repository's own combinators:
// Catch for fault capture, RetryIf/Backoff for bounded restart schedules.
// The paper's threads die silently when an exception reaches the top
// (§3.3); a server built from thousands of per-client threads wants the
// opposite default — a poisoned thread is isolated, its failure recorded,
// and, for worker-style threads, the body restarted from scratch.
//
// Panic isolation is split between two layers: Supervise sees panics as
// *PanicError exceptions, which exist only when the runtime runs with
// Options.TrapPanics — without it a Go panic never becomes monadic. Turn
// TrapPanics on wherever supervision is in use.

// RestartPolicy bounds how a supervised thread is restarted. The zero
// value never restarts: the body runs once and any failure goes to
// OnGiveUp (or propagates).
type RestartPolicy struct {
	// MaxRestarts is how many times the body is restarted after its first
	// failure (total runs = MaxRestarts + 1). Zero means no restarts.
	MaxRestarts int
	// Backoff schedules the delay between restarts; its Attempts field is
	// ignored (MaxRestarts governs).
	Backoff Backoff
	// RestartIf, when non-nil, limits which failures are restartable; a
	// failure it rejects skips the remaining restart budget and goes
	// straight to give-up. Nil restarts every failure, panics included.
	RestartIf func(err error) bool
	// OnRestart, when non-nil, observes each restart decision (the error
	// that killed run number run, 1-based) — a hook for counters.
	OnRestart func(run int, err error)
	// OnGiveUp, when non-nil, consumes the final failure after the restart
	// budget is exhausted (or a non-restartable failure) and the supervised
	// thread ends cleanly. Nil re-raises the failure, so an enclosing
	// supervisor — or the runtime's Uncaught hook — sees it.
	OnGiveUp func(err error)
}

// Supervise runs body under the policy: failures (exceptions, and panics
// when the runtime traps them) restart the body up to p.MaxRestarts times
// with p.Backoff between runs; when the budget is exhausted the failure
// goes to p.OnGiveUp instead of tearing anything down. Restarting re-runs
// body from the start, so body must own re-acquirable resources (or
// release them with Ensure/Finally on its failure path).
//
// One-for-one supervision of a thread pool is Fork(Supervise(...)) per
// child: each child's failures restart only that child.
func Supervise(clk vclock.Clock, p RestartPolicy, body M[Unit]) M[Unit] {
	if p.MaxRestarts < 0 {
		p.MaxRestarts = 0
	}
	bo := p.Backoff
	bo.Attempts = p.MaxRestarts + 1
	var run int // touched only from this thread's trace, in order
	restartable := func(err error) bool {
		if p.RestartIf != nil && !p.RestartIf(err) {
			return false
		}
		run++
		if p.OnRestart != nil {
			p.OnRestart(run, err)
		}
		return true
	}
	supervised := RetryIf(clk, bo, restartable, body)
	return Catch(supervised, func(err error) M[Unit] {
		if p.OnGiveUp == nil {
			return Throw[Unit](err)
		}
		return Do(func() { p.OnGiveUp(err) })
	})
}
