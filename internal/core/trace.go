// Package core implements the paper's primary contribution: application-level
// concurrency primitives built from a continuation-passing-style (CPS)
// concurrency monad whose side effect is a *trace* of system calls, plus an
// event-driven runtime that schedules threads by interpreting their traces.
//
// A monadic thread is written with the combinators in monad.go and the
// system calls in syscalls.go; the runtime in runtime.go plays the role of
// the paper's worker_main event loops. The duality at the heart of the
// paper is visible in the types: a thread is a value of type M[Unit], and
// BuildTrace converts it into a Trace — a data structure that an event loop
// can traverse, suspend, store in queues, and resume like any other event.
//
// Haskell's lazy evaluation is modelled explicitly: wherever the paper's
// trace contains an unevaluated sub-trace, ours contains a closure that
// produces the next node when called. "Forcing the node" is calling the
// closure; each call runs the thread up to its next system call.
package core

// Trace is the run-time representation of (the rest of) a thread's
// execution: a list of system calls, one node per call, terminated by
// RetNode. Each node type corresponds to one of the paper's SYS_*
// constructors. A Trace is the event abstraction of the hybrid model: the
// scheduler plays the active role by examining nodes, and examining a node
// runs the suspended thread up to its next system call.
type Trace interface{ traceNode() }

// Unit is the result type of computations run purely for effect, standing
// in for Haskell's (). Threads have type M[Unit].
type Unit struct{}

// RetNode ends a trace: the thread has terminated (the paper's SYS_RET).
type RetNode struct{}

// NBIONode requests a nonblocking effect (the paper's SYS_NBIO). The
// scheduler performs Effect on a worker event loop; the returned Trace is
// the thread's continuation. Effect must not block: a blocking effect
// stalls the entire event loop it runs on (use BlioNode for those).
type NBIONode struct{ Effect func() Trace }

// ForkNode spawns a new thread (the paper's SYS_FORK). Child is the trace
// of the new thread, Cont the continuation of the parent.
type ForkNode struct {
	Child Trace
	Cont  Trace
}

// YieldNode asks the scheduler to switch to another thread (the paper's
// SYS_YIELD). The current thread is placed at the back of the ready queue.
type YieldNode struct{ Cont Trace }

// ThrowNode raises an exception (the paper's SYS_THROW). The scheduler
// unwinds the thread's handler stack; if it is empty the thread dies and
// the runtime's Uncaught hook is invoked.
type ThrowNode struct{ Err error }

// CatchNode installs an exception handler (the paper's SYS_CATCH). The
// scheduler pushes Handler on the thread's handler stack and continues
// with Body. Body's success path ends in a PopCatchNode that removes the
// frame again.
type CatchNode struct {
	Body    Trace
	Handler func(error) Trace
}

// PopCatchNode removes the most recent handler frame and continues. The
// paper reuses SYS_RET for this purpose; we need a distinct node because
// our Catch threads a typed result value through the continuation.
type PopCatchNode struct{ Cont Trace }

// SuspendNode parks the thread until an external event resumes it. It is
// the generic scheduling hook from which all blocking system calls —
// sys_epoll_wait, sys_aio_read, sys_mutex, timers, TCP operations — are
// built. The scheduler calls Park with a resume function; whichever event
// loop or callback owns the event calls resume exactly once with the
// thread's continuation, which re-enqueues the thread. Calling resume more
// than once panics: it would duplicate the thread.
//
// Park may invoke resume synchronously (the "already ready" fast path).
//
// ParkB, when non-nil, takes precedence over Park: it is the batch-aware
// variant whose resume additionally accepts the calling event loop's
// *Batch. A non-nil batch stages the thread for one coalesced pushBatch
// at the end of the poll round; a nil batch enqueues immediately, exactly
// like the plain form. Exactly one of Park/ParkB is set.
type SuspendNode struct {
	Park  func(resume func(Trace))
	ParkB func(resume func(Trace, *Batch))
}

// BlioNode requests a blocking effect (the paper's SYS_BLIO, §4.6). The
// scheduler hands Effect to the blocking-I/O thread pool so worker event
// loops are never stalled; the returned Trace is enqueued when it
// completes.
type BlioNode struct{ Effect func() Trace }

// CleanupNode pushes Fn onto the thread's cleanup stack: the runtime runs
// every still-registered cleanup, LIFO, when the thread dies abnormally —
// an uncaught exception, a trapped panic, or a discard at Shutdown. It is
// the resource-release half of Ensure; Finally cannot cover those paths
// because its cleanup is itself part of the trace, which abnormal death
// never resumes.
type CleanupNode struct {
	Fn   func()
	Cont Trace
}

// PopCleanupNode removes the most recent cleanup frame and, when Run is
// set, executes it. Ensure's success and exception paths both pop-and-run,
// so a cleanup fires exactly once whichever way the region exits.
type PopCleanupNode struct {
	Run  bool
	Cont Trace
}

func (*RetNode) traceNode()        {}
func (*NBIONode) traceNode()       {}
func (*ForkNode) traceNode()       {}
func (*YieldNode) traceNode()      {}
func (*ThrowNode) traceNode()      {}
func (*CatchNode) traceNode()      {}
func (*PopCatchNode) traceNode()   {}
func (*SuspendNode) traceNode()    {}
func (*BlioNode) traceNode()       {}
func (*CleanupNode) traceNode()    {}
func (*PopCleanupNode) traceNode() {}

// ret is the shared terminal node; threads never inspect it, so one value
// suffices and keeps per-thread allocation minimal.
var ret = &RetNode{}
