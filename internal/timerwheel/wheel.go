// Package timerwheel provides a hierarchical timer wheel for per-connection
// deadlines: O(1) schedule and cancel regardless of how many timers are
// pending, where the clock's binary heap costs O(log n) per operation. At
// millions of mostly-idle connections — every one holding a retransmit or
// idle-reap deadline that is nearly always cancelled before it fires — the
// wheel turns timer maintenance from the dominant per-ACK cost into a
// pointer splice.
//
// # Determinism
//
// The wheel is exact, not approximate. Classic wheels round deadlines to
// slot granularity; that would move every virtual-time figure in this
// repository. Instead the wheel is a staging area in front of the
// VirtualClock's event heap:
//
//   - Schedule reserves a global sequence number from the clock
//     immediately (ReserveSeq), so the timer's position in the
//     deterministic (when, seq) event order is fixed at scheduling time
//     exactly as if clock.After had been called.
//   - Timers due within the current level-0 slot go straight into the
//     clock's heap (ScheduleReserved) at their exact deadline.
//   - Farther timers are parked in slot buckets — intrusive doubly-linked
//     lists, O(1) insert and unlink — at one of several levels whose slot
//     widths grow by 64x per level.
//   - A single clock event (the "tick") is kept armed at the earliest
//     occupied slot's start time. Slots cover the half-open window
//     (start, start+width], so when the tick fires at a slot's start,
//     every deadline in the slot is still strictly in the future: level-0
//     slots hand their timers to the clock heap at exact (when, seq);
//     higher-level slots cascade theirs into finer levels. Firing order
//     and firing times are therefore byte-identical to a heap-only
//     implementation — the wheel only changes *when bookkeeping happens*,
//     never when callbacks run.
//
// The tick is disarmed whenever the last bucketed timer is cancelled, so a
// drained wheel schedules no events and cannot hold a simulation's virtual
// time hostage past its real activity (idle detection, deadlock reports
// and pinned end-of-run timestamps all stay exact).
//
// On a real clock the wheel degrades to a passthrough over clock.After:
// wall-clock timers are host-scheduled anyway, so there is no
// deterministic order to preserve.
//
// Like Clock.After, Schedule and Stop must be called either from a
// dispatch callback or while the caller holds the clock (Enter); the lock
// order is wheel mutex, then clock mutex.
package timerwheel

import (
	"math/bits"
	"sync"

	"hybrid/internal/vclock"
)

const (
	slotBits = 6
	numSlots = 1 << slotBits // 64 slots per level
	slotMask = numSlots - 1
	// numLevels at the default 1ms granularity spans ~4.6 hours before
	// the top level starts clamping (clamped timers just cascade more
	// than once; they still fire exactly on time).
	numLevels = 4
)

// DefaultGranularity is the level-0 slot width. TCP retransmit timers sit
// at tens of milliseconds and lifecycle deadlines at tens to thousands,
// so 1ms keeps near deadlines a handful of slots away while level 3 still
// covers hours.
const DefaultGranularity vclock.Duration = 1e6 // 1ms

// Stats is a snapshot of wheel activity counters, for benchmarks and the
// capacity figures.
type Stats struct {
	Scheduled uint64 // Schedule calls
	Stopped   uint64 // Stop calls that cancelled a live timer
	Direct    uint64 // timers that bypassed the buckets (due within the current slot)
	Cascaded  uint64 // timer moves out of a bucket at tick time (handoff or re-place)
	Ticks     uint64 // tick events fired (including spurious post-cancel ticks)
}

// Timer is a handle to a deadline scheduled on a Wheel.
type Timer struct {
	w    *Wheel
	fn   func()
	when vclock.Time
	seq  uint64

	// Exactly one of the following is meaningful at a time: while parked
	// in a bucket, level/slot locate it and prev/next link it; once handed
	// to the clock (directly or by cascade), vt owns it.
	level      int8
	inBucket   bool
	slot       uint8
	prev, next *Timer
	vt         *vclock.Timer
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was cancelled before firing. Bucketed timers unlink in O(1).
func (t *Timer) Stop() bool {
	if t == nil || t.w == nil {
		return false
	}
	w := t.w
	if w.vc == nil { // real-clock passthrough
		return t.vt.Stop()
	}
	w.mu.Lock()
	if t.inBucket {
		w.unlinkLocked(t)
		t.fn = nil
		w.stats.Stopped++
		if w.live == 0 && w.tick != nil {
			// Nothing left to cascade: disarm so an empty wheel
			// schedules no events.
			tick := w.tick
			w.tick = nil
			w.mu.Unlock()
			tick.Stop()
			return true
		}
		w.mu.Unlock()
		return true
	}
	vt := t.vt
	w.mu.Unlock()
	if vt != nil && vt.Stop() {
		w.mu.Lock()
		w.stats.Stopped++
		w.mu.Unlock()
		return true
	}
	return false
}

// Wheel schedules deadlines hierarchically in front of a clock. The zero
// value is not usable; construct with New.
type Wheel struct {
	clk  vclock.Clock
	vc   *vclock.VirtualClock // nil when clk is a real clock (passthrough)
	gran int64                // level-0 slot width, ns

	mu     sync.Mutex
	occ    [numLevels]uint64            // per-level occupancy bitmaps
	bucket [numLevels][numSlots]*Timer  // intrusive list heads
	live   int                          // timers currently parked in buckets
	tick   *vclock.Timer                // armed cascade event, nil when no bucket is occupied
	tickAt vclock.Time                  // slot start the tick is armed for
	stats  Stats
}

// New returns a wheel over clk with the default granularity.
func New(clk vclock.Clock) *Wheel { return NewGranular(clk, DefaultGranularity) }

// NewGranular returns a wheel whose level-0 slots are gran wide.
func NewGranular(clk vclock.Clock, gran vclock.Duration) *Wheel {
	if gran <= 0 {
		gran = DefaultGranularity
	}
	w := &Wheel{clk: clk, gran: int64(gran)}
	if vc, ok := clk.(*vclock.VirtualClock); ok {
		w.vc = vc
	}
	return w
}

// width reports the slot width of a level in ns.
func (w *Wheel) width(level int) int64 { return w.gran << (slotBits * level) }

// Schedule arranges for fn to run d from now, exactly as clk.After(d, fn)
// would, in O(1) amortized time. The callback runs during a dispatch
// batch; the same hand-off rules as Clock.After apply.
func (w *Wheel) Schedule(d vclock.Duration, fn func()) *Timer {
	if w.vc == nil {
		return &Timer{w: w, vt: w.clk.After(d, fn)}
	}
	if d < 0 {
		d = 0
	}
	// Reserve the timer's position in the global event order now; the
	// deadline may be handed to the clock's heap much later (at cascade
	// time) without changing when or in what order it fires.
	seq := w.vc.ReserveSeq()
	now := w.vc.Now()
	t := &Timer{w: w, fn: fn, when: now + vclock.Time(d), seq: seq}

	w.mu.Lock()
	w.stats.Scheduled++
	w.placeLocked(t, now)
	w.mu.Unlock()
	return t
}

// placeLocked routes a timer either straight into the clock's heap (due
// within the current level-0 slot) or into the coarsest-fitting bucket.
// now must be the current clock time. Called with w.mu held.
func (w *Wheel) placeLocked(t *Timer, now vclock.Time) {
	when := int64(t.when)
	level := 0
	for ; level < numLevels; level++ {
		wd := w.width(level)
		s := (when - 1) / wd      // slot covering (s*wd, (s+1)*wd]
		c := int64(now) / wd      // slot containing now
		d := s - c
		if level == 0 && d <= 0 {
			// Due within the current slot (or already due): the tick
			// for this window can no longer be armed in the future, so
			// hand the exact deadline to the clock immediately.
			w.stats.Direct++
			fn := t.fn
			t.fn = nil
			t.vt = w.vc.ScheduleReserved(t.when, t.seq, fn)
			return
		}
		if d < numSlots {
			w.insertLocked(t, level, s)
			return
		}
		if level == numLevels-1 {
			// Beyond the horizon: clamp into the farthest top-level
			// slot; each of its ticks re-places the timer closer.
			w.insertLocked(t, level, c+slotMask)
			return
		}
	}
}

// insertLocked links t at the head of bucket (level, s%64), where s is the
// absolute slot index, and keeps the cascade tick armed at the earliest
// occupied slot's start.
func (w *Wheel) insertLocked(t *Timer, level int, s int64) {
	idx := uint8(s & slotMask)
	t.level = int8(level)
	t.slot = idx
	t.inBucket = true
	t.prev = nil
	t.next = w.bucket[level][idx]
	if t.next != nil {
		t.next.prev = t
	}
	w.bucket[level][idx] = t
	w.occ[level] |= 1 << idx
	w.live++

	start := vclock.Time(s * w.width(level))
	if w.tick == nil || start < w.tickAt {
		if w.tick != nil {
			w.tick.Stop()
		}
		w.armTickLocked(start)
	}
}

// armTickLocked arms the cascade event at the absolute time start.
func (w *Wheel) armTickLocked(start vclock.Time) {
	w.tickAt = start
	d := vclock.Duration(start - w.vc.Now())
	if d < 0 {
		d = 0
	}
	w.tick = w.vc.After(d, w.onTick)
}

// unlinkLocked removes t from its bucket in O(1).
func (w *Wheel) unlinkLocked(t *Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		w.bucket[t.level][t.slot] = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	if w.bucket[t.level][t.slot] == nil {
		w.occ[t.level] &^= 1 << t.slot
	}
	t.prev, t.next = nil, nil
	t.inBucket = false
	w.live--
}

// nextOccupiedLocked reports the earliest occupied absolute slot at level
// whose index is >= from, or ok=false when the level is empty. Occupied
// slots always lie within [c, c+63] of the current slot c (placement
// guarantees d >= 1 and the due slot is drained at its start), so the
// absolute index is recoverable from the 64-bit occupancy map.
func (w *Wheel) nextOccupiedLocked(level int, from int64) (int64, bool) {
	occ := w.occ[level]
	if occ == 0 {
		return 0, false
	}
	base := uint(from) & slotMask
	if hi := occ >> base; hi != 0 {
		return from + int64(bits.TrailingZeros64(hi)), true
	}
	lo := occ & ((1 << base) - 1)
	return from + int64(numSlots-int(base)) + int64(bits.TrailingZeros64(lo)), true
}

// onTick is the cascade event: drain every slot whose window has started,
// then re-arm at the next occupied slot. Runs during clock dispatch (the
// gate is closed), so ScheduleReserved and After never advance time
// reentrantly here.
func (w *Wheel) onTick() {
	w.mu.Lock()
	w.tick = nil
	w.stats.Ticks++
	now := w.vc.Now()
	for level := 0; level < numLevels; level++ {
		wd := w.width(level)
		c := int64(now) / wd
		for {
			s, ok := w.nextOccupiedLocked(level, c)
			if !ok || s*wd > int64(now) {
				break
			}
			// Drain the due slot: every deadline in it lies in
			// (s*wd, (s+1)*wd], strictly after now, so re-placement
			// either hands it to the clock heap (level 0) or moves it
			// to a finer level — never to another due slot.
			idx := uint8(s & slotMask)
			head := w.bucket[level][idx]
			w.bucket[level][idx] = nil
			w.occ[level] &^= 1 << idx
			for t := head; t != nil; {
				next := t.next
				t.prev, t.next = nil, nil
				t.inBucket = false
				w.live--
				w.stats.Cascaded++
				w.placeLocked(t, now)
				t = next
			}
		}
	}
	if w.live > 0 {
		// Re-arm at the earliest occupied slot across all levels.
		best := vclock.Time(0)
		have := false
		for level := 0; level < numLevels; level++ {
			wd := w.width(level)
			if s, ok := w.nextOccupiedLocked(level, int64(now)/wd); ok {
				if start := vclock.Time(s * wd); !have || start < best {
					best, have = start, true
				}
			}
		}
		if have {
			w.armTickLocked(best)
		}
	}
	w.mu.Unlock()
}

// Len reports the number of timers currently parked in wheel buckets
// (timers already handed to the clock's heap are not counted).
func (w *Wheel) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.live
}

// Stats returns a snapshot of the wheel's activity counters.
func (w *Wheel) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
