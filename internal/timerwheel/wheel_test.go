package timerwheel

import (
	"math/rand"
	"testing"
	"time"

	"hybrid/internal/vclock"
)

// stopper abstracts wheel and clock timer handles so the same op script
// drives both implementations.
type stopper interface{ Stop() bool }

type opKind int

const (
	opSchedule opKind = iota
	opStop
)

type op struct {
	at    vclock.Time     // virtual time the op executes at
	kind  opKind
	delay vclock.Duration // schedule: deadline offset from op time
	id    int             // schedule: timer identity
	tgt   int             // stop: id of the timer to cancel
}

type fire struct {
	at vclock.Time
	id int
}

// genOps builds a deterministic op script: schedules spanning all wheel
// levels (sub-slot to multi-minute), exact slot-boundary deadlines, zero
// delays, and stops of arbitrary earlier timers.
func genOps(seed int64, n int) []op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]op, 0, n)
	var at vclock.Time
	nextID := 0
	for i := 0; i < n; i++ {
		at += vclock.Time(rng.Int63n(int64(20 * time.Millisecond)))
		if nextID > 0 && rng.Intn(4) == 0 {
			ops = append(ops, op{at: at, kind: opStop, tgt: rng.Intn(nextID)})
			continue
		}
		var d vclock.Duration
		switch rng.Intn(6) {
		case 0: // within the current level-0 slot, incl. zero
			d = vclock.Duration(rng.Int63n(int64(DefaultGranularity)))
		case 1: // level 0
			d = vclock.Duration(rng.Int63n(int64(64 * DefaultGranularity)))
		case 2: // level 1
			d = vclock.Duration(rng.Int63n(int64(64 * 64 * DefaultGranularity)))
		case 3: // level 2 territory: seconds to minutes
			d = vclock.Duration(rng.Int63n(int64(4 * time.Minute)))
		case 4: // exact slot boundaries, where off-by-one rounding would bite
			d = vclock.Duration(rng.Int63n(64)) * DefaultGranularity
		case 5: // duplicate timestamps: same-instant ordering must hold
			d = vclock.Duration(rng.Int63n(4)) * (17 * time.Millisecond)
		}
		ops = append(ops, op{at: at, kind: opSchedule, delay: d, id: nextID})
		nextID++
	}
	return ops
}

// runScript executes the op script against either the wheel or bare
// clock.After and records every firing as (virtual time, id).
func runScript(t *testing.T, ops []op, useWheel bool) []fire {
	t.Helper()
	clk := vclock.NewVirtual()
	var w *Wheel
	if useWheel {
		w = New(clk)
	}
	var fires []fire
	handles := make(map[int]stopper)

	// Hold the clock while staging the driver events so nothing
	// dispatches until the script is fully scheduled.
	clk.Enter()
	for i := range ops {
		o := ops[i]
		clk.After(vclock.Duration(o.at-clk.Now()), func() {
			switch o.kind {
			case opSchedule:
				fn := func() { fires = append(fires, fire{at: clk.Now(), id: o.id}) }
				if useWheel {
					handles[o.id] = w.Schedule(o.delay, fn)
				} else {
					handles[o.id] = clk.After(o.delay, fn)
				}
			case opStop:
				if h, ok := handles[o.tgt]; ok {
					h.Stop()
				}
			}
		})
	}
	clk.Exit() // dispatches the whole script to quiescence

	if n := clk.Pending(); n != 0 {
		t.Fatalf("useWheel=%v: %d events still pending after quiescence", useWheel, n)
	}
	return fires
}

// TestWheelMatchesHeapReference is the determinism property test: under a
// random mix of schedules (all levels, boundary and zero delays, ties)
// and cancels, the wheel must fire exactly the timers the bare clock heap
// fires, at identical virtual times, in identical order.
func TestWheelMatchesHeapReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		ops := genOps(seed, 400)
		got := runScript(t, ops, true)
		want := runScript(t, ops, false)
		if len(got) != len(want) {
			t.Fatalf("seed %d: wheel fired %d timers, reference fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing %d diverged: wheel (t=%v id=%d) vs reference (t=%v id=%d)",
					seed, i, got[i].at, got[i].id, want[i].at, want[i].id)
			}
		}
	}
}

// TestStopDisarmsTick: cancelling the last bucketed timer must remove the
// wheel's cascade event too, so an idle simulation has zero pending
// events (pinned end-of-run timestamps depend on this).
func TestStopDisarmsTick(t *testing.T) {
	clk := vclock.NewVirtual()
	w := New(clk)
	clk.Enter()
	a := w.Schedule(500*time.Millisecond, func() { t.Fatal("a fired") })
	b := w.Schedule(2*time.Second, func() { t.Fatal("b fired") })
	if clk.Pending() == 0 {
		t.Fatal("expected an armed tick while timers are bucketed")
	}
	if !a.Stop() || !b.Stop() {
		t.Fatal("Stop reported already-fired for live timers")
	}
	if n := clk.Pending(); n != 0 {
		t.Fatalf("wheel drained but %d clock events remain", n)
	}
	if a.Stop() {
		t.Fatal("second Stop reported success")
	}
	clk.Exit()
	if got := clk.Now(); got != 0 {
		t.Fatalf("time advanced to %v on an empty wheel", got)
	}
}

// TestHorizonClamp: a deadline beyond the top level's span still fires at
// the exact requested instant, via repeated cascades.
func TestHorizonClamp(t *testing.T) {
	clk := vclock.NewVirtual()
	w := New(clk)
	const d = 30 * 24 * time.Hour
	var firedAt vclock.Time = -1
	clk.Enter()
	w.Schedule(d, func() { firedAt = clk.Now() })
	clk.Exit()
	if want := vclock.Time(d); firedAt != want {
		t.Fatalf("clamped timer fired at %v, want %v", firedAt, want)
	}
}

// TestRestartPattern exercises the TCP per-ACK shape: schedule, cancel,
// reschedule thousands of times with only a bounded number of clock
// events ever materializing.
func TestRestartPattern(t *testing.T) {
	clk := vclock.NewVirtual()
	w := New(clk)
	clk.Enter()
	var tm *Timer
	for i := 0; i < 5000; i++ {
		if tm != nil {
			tm.Stop()
		}
		tm = w.Schedule(200*time.Millisecond, func() {})
	}
	if n := clk.Pending(); n > 1 {
		t.Fatalf("restart pattern left %d clock events; want <= 1 (the tick)", n)
	}
	st := w.Stats()
	if st.Scheduled != 5000 || st.Stopped != 4999 {
		t.Fatalf("stats = %+v", st)
	}
	tm.Stop()
	clk.Exit()
}

// TestRealClockPassthrough: on a wall clock the wheel defers to After.
func TestRealClockPassthrough(t *testing.T) {
	clk := vclock.NewReal()
	w := New(clk)
	ch := make(chan struct{})
	w.Schedule(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("passthrough timer never fired")
	}
	tm := w.Schedule(time.Hour, func() {})
	if !tm.Stop() {
		t.Fatal("passthrough Stop failed")
	}
}
