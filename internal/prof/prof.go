// Package prof arms Go's pprof profilers behind command-line flags shared
// by the benchmark binaries. All profiles default off; arming mutex or
// block profiling changes runtime sampling rates, so a run with any
// profile enabled is a separate trajectory from the committed figures.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start arms the requested profiles; empty paths leave that profiler off.
// The returned stop function writes the armed profiles and must be called
// exactly once (defer it). With all paths empty, Start is a no-op and
// stop does nothing — the unprofiled run is untouched.
func Start(cpuPath, mutexPath, blockPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		writeProfile("mutex", mutexPath)
		writeProfile("block", blockPath)
	}, nil
}

func writeProfile(name, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prof:", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "prof:", err)
	}
}
