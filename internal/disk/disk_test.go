package disk

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hybrid/internal/vclock"
)

func newDisk() (*Disk, *vclock.VirtualClock) {
	clk := vclock.NewVirtual()
	return New(clk, DefaultGeometry()), clk
}

func TestSingleRequestCompletes(t *testing.T) {
	d, clk := newDisk()
	done := false
	var at vclock.Time
	err := d.Submit(&Request{Block: 100, Count: 1, Done: func() {
		done = true
		at = clk.Now()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("request did not complete")
	}
	want := d.Geometry().ServiceTime(0, 100, 1)
	if at != vclock.Time(want) {
		t.Fatalf("completed at %v, want %v", at, want)
	}
}

func TestRejectOutOfRange(t *testing.T) {
	d, _ := newDisk()
	if err := d.Submit(&Request{Block: -1, Count: 1}); err == nil {
		t.Fatal("negative block accepted")
	}
	if err := d.Submit(&Request{Block: d.Geometry().Blocks, Count: 1}); err == nil {
		t.Fatal("past-end block accepted")
	}
	if err := d.Submit(&Request{Block: 0, Count: 0}); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestElevatorOrdersByBlock(t *testing.T) {
	// Hold the clock busy while queueing, so all requests are pending
	// when the disk starts; completions must then follow C-LOOK order.
	d, clk := newDisk()
	clk.Enter()
	var order []int64
	for _, b := range []int64{5000, 100, 9000, 4000} {
		b := b
		if err := d.Submit(&Request{Block: b, Count: 1, Done: func() {
			order = append(order, b)
		}}); err != nil {
			t.Fatal(err)
		}
	}
	clk.Exit()
	// Head starts at 0; the first dispatch happens on the first Submit
	// (queue then holds only block 5000), so service begins there; the
	// rest are pending by the time it completes and are swept in C-LOOK
	// order from head=5001: 9000, then wrap to 100, 4000.
	want := []int64{5000, 9000, 100, 4000}
	if len(order) != 4 {
		t.Fatalf("completed %d requests", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

func TestSeekTimeMonotone(t *testing.T) {
	g := DefaultGeometry()
	if g.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	prev := time.Duration(0)
	for _, dist := range []int64{1, 100, 10000, 1000000, g.Blocks} {
		s := g.SeekTime(dist)
		if s < prev {
			t.Fatalf("seek(%d) = %v < seek of shorter distance %v", dist, s, prev)
		}
		prev = s
	}
	if g.SeekTime(g.Blocks) > g.SeekMax+g.SeekMin {
		t.Fatalf("full-stroke seek %v exceeds SeekMax %v", g.SeekTime(g.Blocks), g.SeekMax)
	}
}

func TestAllRequestsEventuallyComplete(t *testing.T) {
	// No starvation: any batch of requests, all complete.
	check := func(blocks []uint32) bool {
		d, clk := newDisk()
		clk.Enter()
		completed := 0
		for _, b := range blocks {
			block := int64(b) % d.Geometry().Blocks
			if err := d.Submit(&Request{Block: block, Count: 1, Done: func() { completed++ }}); err != nil {
				return false
			}
		}
		clk.Exit()
		return completed == len(blocks) && d.QueueDepth() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	runOnce := func() (vclock.Time, []int64) {
		d, clk := newDisk()
		clk.Enter()
		rng := rand.New(rand.NewSource(42))
		var order []int64
		for i := 0; i < 200; i++ {
			b := rng.Int63n(d.Geometry().Blocks)
			d.Submit(&Request{Block: b, Count: 1, Done: func() { order = append(order, b) }})
		}
		clk.Exit()
		return clk.Now(), order
	}
	t1, o1 := runOnce()
	t2, o2 := runOnce()
	if t1 != t2 {
		t.Fatalf("virtual completion times differ: %v vs %v", t1, t2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("service orders differ between identical runs")
		}
	}
}

// TestDeeperQueueHigherThroughput is the mechanism behind Figure 17: with
// more requests pending at once, the elevator shortens seeks and aggregate
// throughput rises.
func TestDeeperQueueHigherThroughput(t *testing.T) {
	throughput := func(depth int) float64 {
		d, clk := newDisk()
		rng := rand.New(rand.NewSource(7))
		const total = 2000
		issued, completed := 0, 0
		var issue func()
		issue = func() {
			if issued >= total {
				return
			}
			issued++
			b := rng.Int63n(d.Geometry().Blocks)
			d.Submit(&Request{Block: b, Count: 1, Done: func() {
				completed++
				issue() // keep the queue at the target depth
			}})
		}
		clk.Enter()
		for i := 0; i < depth; i++ {
			issue()
		}
		clk.Exit()
		if completed != total {
			t.Fatalf("depth %d: completed %d of %d", depth, completed, total)
		}
		bytes := float64(total * BlockSize)
		return bytes / (float64(clk.Now()) / float64(time.Second))
	}
	t1 := throughput(1)
	t64 := throughput(64)
	t4096 := throughput(4096)
	if !(t64 > t1*1.05) {
		t.Fatalf("throughput did not rise with queue depth: depth1=%.0f depth64=%.0f", t1, t64)
	}
	if !(t4096 > t64) {
		t.Fatalf("throughput fell from depth 64 (%.0f) to 4096 (%.0f)", t64, t4096)
	}
	// Calibration: random 4 KB reads should land in the paper's band
	// (0.4–1.0 MB/s across the sweep).
	mb := 1024.0 * 1024.0
	if t1 < 0.3*mb || t1 > 0.8*mb {
		t.Errorf("depth-1 throughput %.2f MB/s outside calibration band", t1/mb)
	}
	if t4096 < 0.5*mb || t4096 > 1.2*mb {
		t.Errorf("depth-4096 throughput %.2f MB/s outside calibration band", t4096/mb)
	}
}

func TestStatsAccounting(t *testing.T) {
	d, clk := newDisk()
	clk.Enter()
	for i := 0; i < 10; i++ {
		d.Submit(&Request{Block: int64(i) * 100, Count: 2})
	}
	clk.Exit()
	s := d.Snapshot()
	if s.Requests != 10 || s.Blocks != 20 || s.Dispatches != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusyTime <= 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestExtraServiceTimeCharged(t *testing.T) {
	d1, c1 := newDisk()
	var t1 vclock.Time
	d1.Submit(&Request{Block: 0, Count: 1, Done: func() { t1 = c1.Now() }})
	d2, c2 := newDisk()
	var t2 vclock.Time
	d2.Submit(&Request{Block: 0, Count: 1, Extra: time.Millisecond, Done: func() { t2 = c2.Now() }})
	if t2-t1 != vclock.Time(time.Millisecond) {
		t.Fatalf("Extra not charged: %v vs %v", t1, t2)
	}
}

func TestQueueDepthReporting(t *testing.T) {
	d, clk := newDisk()
	clk.Enter()
	for i := 0; i < 5; i++ {
		d.Submit(&Request{Block: int64(i * 1000), Count: 1})
	}
	if got := d.QueueDepth(); got != 5 {
		t.Fatalf("QueueDepth = %d, want 5", got)
	}
	clk.Exit()
	if got := d.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth after drain = %d", got)
	}
}

func TestFCFSIgnoresBlockOrder(t *testing.T) {
	clk := vclock.NewVirtual()
	d := NewWithScheduler(clk, DefaultGeometry(), FCFS)
	if d.Scheduler() != FCFS || d.Scheduler().String() != "FCFS" {
		t.Fatal("scheduler accessor wrong")
	}
	clk.Enter()
	var order []int64
	for _, b := range []int64{5000, 100, 9000, 4000} {
		b := b
		d.Submit(&Request{Block: b, Count: 1, Done: func() { order = append(order, b) }})
	}
	clk.Exit()
	want := []int64{5000, 100, 9000, 4000} // arrival order
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FCFS order = %v, want arrival order %v", order, want)
		}
	}
}

// TestElevatorBeatsFCFS is the Figure 17 mechanism in isolation: at equal
// queue depth, C-LOOK spends less time seeking than FCFS.
func TestElevatorBeatsFCFS(t *testing.T) {
	run := func(s Scheduler) vclock.Time {
		clk := vclock.NewVirtual()
		d := NewWithScheduler(clk, DefaultGeometry(), s)
		rng := rand.New(rand.NewSource(3))
		clk.Enter()
		for i := 0; i < 500; i++ {
			d.Submit(&Request{Block: rng.Int63n(d.Geometry().Blocks), Count: 1})
		}
		clk.Exit()
		return clk.Now()
	}
	elevator := run(CLOOK)
	fcfs := run(FCFS)
	if !(elevator < fcfs) {
		t.Fatalf("elevator (%v) not faster than FCFS (%v)", elevator, fcfs)
	}
	if float64(fcfs)/float64(elevator) < 1.2 {
		t.Fatalf("elevator advantage implausibly small: %v vs %v", elevator, fcfs)
	}
}
