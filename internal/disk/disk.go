// Package disk models a single mechanical disk with an elevator (C-LOOK)
// request scheduler, the substrate behind the paper's disk-head-scheduling
// benchmark (Figure 17).
//
// The paper's test reads random 4 KB blocks from a 1 GB file on a 7200 RPM
// EIDE disk through Linux AIO, so every concurrent thread's request sits in
// the kernel's elevator queue at once; throughput rises with concurrency
// because a deeper queue lets the elevator service requests in head order,
// shortening seeks. This model reproduces exactly that mechanism: a
// request's service time is seek(distance) + rotational latency + transfer,
// requests are dispatched in C-LOOK order from the pending queue, and time
// is charged on the package's vclock.Clock so results are deterministic.
//
// Geometry defaults are calibrated so random 4 KB reads land in the
// paper's 0.52–0.68 MB/s band (see EXPERIMENTS.md).
package disk

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"hybrid/internal/faults"
	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// BlockSize is the disk's addressable unit.
const BlockSize = 4096

// Errors delivered through Request.Fail under fault injection.
var (
	// ErrIO is a transient device error: the request failed but a retry
	// of the same blocks may succeed.
	ErrIO = errors.New("disk: input/output error (EIO)")
	// ErrBadSector is an unrecoverable medium error: the fault plan
	// marks the block permanently bad, so every retry fails the same way.
	ErrBadSector = errors.New("disk: unrecoverable medium error (bad sector)")
)

// maxLatencySpike bounds an injected service-time spike — the cost of a
// drive internally retrying or remapping a marginal sector (tens of
// milliseconds on 2006 hardware).
const maxLatencySpike = 20 * time.Millisecond

// Scheduler selects the request-dispatch policy.
type Scheduler int

const (
	// CLOOK is the elevator: sweep toward higher blocks, wrap to the
	// lowest pending block (the Linux 2.6 default family; the mechanism
	// behind Figure 17's rising curve).
	CLOOK Scheduler = iota
	// FCFS services requests in arrival order — the ablation baseline
	// that shows concurrency alone buys nothing without the elevator.
	FCFS
)

func (s Scheduler) String() string {
	if s == FCFS {
		return "FCFS"
	}
	return "C-LOOK"
}

// Geometry parameterizes the service-time model.
type Geometry struct {
	// Blocks is the number of BlockSize blocks on the device.
	Blocks int64
	// SeekMin is the single-track seek time; SeekMax the full-stroke
	// seek. Intermediate distances interpolate with a square-root curve,
	// the usual first-order model of head acceleration.
	SeekMin, SeekMax time.Duration
	// RotHalf is the average rotational latency (half a revolution).
	RotHalf time.Duration
	// TransferPerByte is the media transfer rate expressed as time per
	// byte.
	TransferPerByte time.Duration
	// PerRequest is fixed per-request controller/command overhead.
	PerRequest time.Duration
}

// DefaultGeometry models the paper's 7200 RPM, 80 GB EIDE disk (2006
// vintage: ~0.8 ms track-to-track, ~8.5 ms full stroke, 4.17 ms average
// rotational latency, ~55 MB/s media rate).
func DefaultGeometry() Geometry {
	return Geometry{
		Blocks:          20 * 1024 * 1024, // 80 GB
		SeekMin:         800 * time.Microsecond,
		SeekMax:         8500 * time.Microsecond,
		RotHalf:         4170 * time.Microsecond,
		TransferPerByte: time.Second / (55 * 1024 * 1024),
		PerRequest:      200 * time.Microsecond,
	}
}

// BenchGeometry models the 4 GB benchmark partition of the same disk,
// calibrated against the paper's Figure 17 band (0.52-0.68 MB/s for
// random 4 KB reads): short seeks on 2006 EIDE hardware were dominated by
// arm settle time (~1.2 ms), and a random seek across the 1 GB test file
// cost ~3.3 ms. See EXPERIMENTS.md for the calibration arithmetic.
func BenchGeometry() Geometry {
	return Geometry{
		Blocks:          1024 * 1024, // 4 GB partition
		SeekMin:         1200 * time.Microsecond,
		SeekMax:         8600 * time.Microsecond,
		RotHalf:         4170 * time.Microsecond,
		TransferPerByte: time.Second / (55 * 1024 * 1024),
		PerRequest:      120 * time.Microsecond,
	}
}

// Request is one I/O request. Done is invoked at completion time, on the
// clock's callback context (it holds the clock busy; hand work onward
// before returning).
type Request struct {
	Block int64 // starting block
	Count int   // blocks to transfer
	Write bool
	// Extra is additional service time charged to this request; the NPTL
	// baseline uses it to model kernel-thread wakeup cost per blocking
	// I/O (see internal/nptl).
	Extra time.Duration
	// Done receives the completion callback.
	Done func()
	// Fail, if non-nil, receives the completion instead of Done when the
	// fault layer errors the request. A request with no Fail handler
	// falls back to Done (legacy callers that cannot observe errors).
	Fail func(error)

	seq      uint64 // arrival order, for deterministic tie-breaks
	faultErr error  // decided at dispatch, delivered at completion
}

// Stats counts disk activity.
type Stats struct {
	Requests   uint64
	Blocks     uint64
	SeekBlocks uint64 // total head movement
	BusyTime   time.Duration
	MaxQueue   int
	TotalQueue uint64 // sum of queue depth sampled at each dispatch
	Dispatches uint64
	Sweeps     uint64 // C-LOOK wrap-arounds (one per elevator pass)
}

// Disk is the device model. Submit may be called from any goroutine in
// either timing domain.
type Disk struct {
	geom  Geometry
	clock vclock.Clock
	sched Scheduler

	mu       sync.Mutex
	pending  []*Request // sorted by Block ascending (C-LOOK) or arrival (FCFS)
	head     int64      // current head position, in blocks
	busy     bool       // a request is in service
	seq      uint64
	stats    Stats
	inflight *Request

	// metrics: queue depth and seek distance are sampled at every
	// dispatch — the two distributions that explain Figure 17's rising
	// curve (deeper queue → shorter seeks).
	metrics   *stats.Registry
	queueHist *stats.Histogram
	seekHist  *stats.Histogram

	// faults, when non-nil, errors requests (transient EIO, permanent
	// bad sectors via the stateless hard-key set) and injects service-
	// time spikes, per its deterministic plan.
	faults *faults.Injector
}

// New creates a disk with the given geometry on the given clock, using
// the C-LOOK elevator.
func New(clock vclock.Clock, geom Geometry) *Disk {
	return NewWithScheduler(clock, geom, CLOOK)
}

// NewWithScheduler creates a disk with an explicit dispatch policy.
func NewWithScheduler(clock vclock.Clock, geom Geometry, sched Scheduler) *Disk {
	if geom.Blocks <= 0 {
		geom = DefaultGeometry()
	}
	d := &Disk{geom: geom, clock: clock, sched: sched, metrics: stats.NewRegistry()}
	d.queueHist = d.metrics.Histogram("queue_depth", stats.PowersOfTwo(1024)...)
	d.seekHist = d.metrics.Histogram("seek_blocks", stats.PowersOfTwo(geom.Blocks)...)
	counters := []struct {
		name string
		get  func(*Stats) uint64
	}{
		{"requests", func(s *Stats) uint64 { return s.Requests }},
		{"blocks", func(s *Stats) uint64 { return s.Blocks }},
		{"dispatches", func(s *Stats) uint64 { return s.Dispatches }},
		{"sweeps", func(s *Stats) uint64 { return s.Sweeps }},
	}
	for _, c := range counters {
		get := c.get
		d.metrics.CounterFunc(c.name, func() uint64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return get(&d.stats)
		})
	}
	d.metrics.GaugeFunc("pending", func() int64 { return int64(d.QueueDepth()) })
	return d
}

// Metrics exposes the disk's registry for the observability layer.
func (d *Disk) Metrics() *stats.Registry { return d.metrics }

// SetFaults attaches a fault injector: subsequent requests may fail with
// ErrIO (transient) or ErrBadSector (permanent, per the plan's stateless
// bad-block set) and may be charged extra service time. Call during
// setup, before the disk is shared between goroutines.
func (d *Disk) SetFaults(in *faults.Injector) { d.faults = in }

// Scheduler reports the dispatch policy.
func (d *Disk) Scheduler() Scheduler { return d.sched }

// Geometry reports the disk's geometry.
func (d *Disk) Geometry() Geometry { return d.geom }

// Clock reports the disk's timing domain.
func (d *Disk) Clock() vclock.Clock { return d.clock }

// Snapshot returns a copy of the activity counters.
func (d *Disk) Snapshot() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// QueueDepth reports the number of requests pending or in service.
func (d *Disk) QueueDepth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.pending)
	if d.busy {
		n++
	}
	return n
}

// SeekTime models head movement over the given distance in blocks.
func (g Geometry) SeekTime(distance int64) time.Duration {
	if distance <= 0 {
		return 0
	}
	frac := math.Sqrt(float64(distance) / float64(g.Blocks))
	return g.SeekMin + time.Duration(float64(g.SeekMax-g.SeekMin)*frac)
}

// ServiceTime reports the modelled service time for a request starting at
// block given the current head position. Exposed for calibration tests.
func (g Geometry) ServiceTime(head, block int64, count int) time.Duration {
	dist := block - head
	if dist < 0 {
		dist = -dist
	}
	transfer := time.Duration(count*BlockSize) * g.TransferPerByte
	return g.PerRequest + g.SeekTime(dist) + g.RotHalf + transfer
}

// Submit queues a request. If Block is out of range the request fails
// immediately by invoking Done after zero time (the caller sees a normal
// completion; range validation belongs to the file layer above).
func (d *Disk) Submit(r *Request) error {
	if r.Count <= 0 || r.Block < 0 || r.Block+int64(r.Count) > d.geom.Blocks {
		return fmt.Errorf("disk: request [%d,+%d) outside device of %d blocks",
			r.Block, r.Count, d.geom.Blocks)
	}
	d.mu.Lock()
	d.seq++
	r.seq = d.seq
	d.insertPending(r)
	d.stats.Requests++
	if q := len(d.pending); q > d.stats.MaxQueue {
		d.stats.MaxQueue = q
	}
	var next *Request
	var service time.Duration
	if !d.busy {
		next, service = d.dispatchLocked()
	}
	d.mu.Unlock()
	// Scheduling happens outside d.mu: on a quiescent virtual clock the
	// completion callback can run synchronously inside After, and it
	// re-acquires the lock.
	if next != nil {
		d.clock.After(service, func() { d.complete(next) })
	}
	return nil
}

// insertPending keeps the queue sorted by block for C-LOOK selection, or
// in arrival order for FCFS. Called with d.mu held.
func (d *Disk) insertPending(r *Request) {
	if d.sched == FCFS {
		d.pending = append(d.pending, r)
		return
	}
	i := sort.Search(len(d.pending), func(i int) bool {
		if d.pending[i].Block != r.Block {
			return d.pending[i].Block > r.Block
		}
		return d.pending[i].seq > r.seq
	})
	d.pending = append(d.pending, nil)
	copy(d.pending[i+1:], d.pending[i:])
	d.pending[i] = r
}

// dispatchLocked selects and starts service of the next request chosen by
// C-LOOK: the nearest pending block at or beyond the head, wrapping to the
// lowest block when none remain ahead. Called with d.mu held and d.busy
// false; the caller schedules the returned request's completion after
// releasing the lock.
func (d *Disk) dispatchLocked() (*Request, time.Duration) {
	if len(d.pending) == 0 {
		return nil, 0
	}
	var i int
	if d.sched == FCFS {
		i = 0 // arrival order
	} else {
		// First pending request at or past the head.
		i = sort.Search(len(d.pending), func(i int) bool {
			return d.pending[i].Block >= d.head
		})
		if i == len(d.pending) {
			i = 0 // wrap: C-LOOK sweeps one direction only
			d.stats.Sweeps++
		}
	}
	r := d.pending[i]
	copy(d.pending[i:], d.pending[i+1:])
	d.pending[len(d.pending)-1] = nil
	d.pending = d.pending[:len(d.pending)-1]

	service := d.geom.ServiceTime(d.head, r.Block, r.Count) + r.Extra
	if d.faults != nil {
		// The fault decision is made at dispatch (deterministic order —
		// the elevator fixes it) and delivered at completion. A faulted
		// request still charges full service time: the head moved and
		// the platter spun whether or not the data came back.
		r.faultErr = d.decideFault(r)
		service += d.faults.Latency(faults.DiskLatency, maxLatencySpike)
	}
	dist := r.Block - d.head
	if dist < 0 {
		dist = -dist
	}
	d.stats.SeekBlocks += uint64(dist)
	d.stats.Blocks += uint64(r.Count)
	d.stats.BusyTime += service
	d.stats.Dispatches++
	d.stats.TotalQueue += uint64(len(d.pending) + 1)
	d.seekHist.Observe(dist)
	d.queueHist.Observe(int64(len(d.pending) + 1))
	d.head = r.Block + int64(r.Count)
	d.busy = true
	d.inflight = r
	return r, service
}

// complete finishes a request and dispatches the next. Runs on the clock
// callback context.
func (d *Disk) complete(r *Request) {
	d.mu.Lock()
	d.busy = false
	d.inflight = nil
	next, service := d.dispatchLocked()
	d.mu.Unlock()
	if next != nil {
		d.clock.After(service, func() { d.complete(next) })
	}
	if r.faultErr != nil && r.Fail != nil {
		r.Fail(r.faultErr)
		return
	}
	if r.Done != nil {
		r.Done()
	}
}

// decideFault draws the failure verdict for a dispatched request: a
// permanently bad block anywhere in its range, else a transient error.
func (d *Disk) decideFault(r *Request) error {
	for b := r.Block; b < r.Block+int64(r.Count); b++ {
		if d.faults.HardKey(faults.DiskHard, uint64(b)) {
			return ErrBadSector
		}
	}
	op := faults.DiskRead
	if r.Write {
		op = faults.DiskWrite
	}
	if d.faults.Fire(op) {
		return ErrIO
	}
	return nil
}
