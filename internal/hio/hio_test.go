package hio

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/kernel"
	"hybrid/internal/vclock"
)

// rig is a full hybrid stack: runtime + kernel + fs + IO layer.
type rig struct {
	rt *core.Runtime
	k  *kernel.Kernel
	fs *kernel.FS
	io *IO
}

func newRig(t *testing.T, clk vclock.Clock, workers int) *rig {
	t.Helper()
	if clk == nil {
		clk = vclock.NewReal()
	}
	k := kernel.New(clk)
	d := disk.New(clk, disk.DefaultGeometry())
	fs := kernel.NewFS(d)
	rt := core.NewRuntime(core.Options{Workers: workers, Clock: clk})
	io := New(rt, k, fs)
	t.Cleanup(func() {
		io.Close()
		rt.Shutdown()
	})
	return &rig{rt: rt, k: k, fs: fs, io: io}
}

func TestEpollWaitWakesOnData(t *testing.T) {
	r := newRig(t, nil, 1)
	rfd, wfd := r.k.NewPipe(0)
	var got atomic.Int64
	r.rt.Spawn(core.Seq(
		core.Bind(r.io.EpollWait(rfd, kernel.EventRead), func(kernel.Event) core.M[core.Unit] {
			return core.Do(func() { got.Store(1) })
		}),
	))
	// Let the thread park, then make the pipe readable.
	deadline := time.Now().Add(5 * time.Second)
	for r.rt.Live() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("thread did not park")
		}
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 0 {
		t.Fatal("EpollWait returned before readiness")
	}
	if _, err := r.k.Write(wfd, []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.rt.WaitIdle()
	if got.Load() != 1 {
		t.Fatal("thread did not wake on readiness")
	}
}

func TestEpollWaitBadFDThrows(t *testing.T) {
	r := newRig(t, nil, 1)
	var caught atomic.Bool
	r.rt.Run(core.Catch(
		core.Then(r.io.EpollWait(kernel.FD(999), kernel.EventRead), core.Skip),
		func(err error) core.M[core.Unit] {
			return core.Do(func() { caught.Store(true) })
		},
	))
	if !caught.Load() {
		t.Fatal("bad-fd EpollWait did not throw")
	}
}

func TestSockSendAndReadAcrossPipe(t *testing.T) {
	// A writer thread pushes 64 KB through a 4 KB pipe to a reader thread:
	// both must repeatedly block and wake via epoll.
	r := newRig(t, nil, 2)
	rfd, wfd := r.k.NewPipe(4096)
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	received := make([]byte, 0, len(payload))
	var done atomic.Bool
	r.rt.Run(core.Seq(
		core.Fork(core.Bind(r.io.SockSend(wfd, payload), func(int) core.M[core.Unit] {
			return r.io.CloseFD(wfd)
		})),
		core.Fork(func() core.M[core.Unit] {
			buf := make([]byte, 1500)
			var loop func() core.M[core.Unit]
			loop = func() core.M[core.Unit] {
				return core.Bind(r.io.SockRead(rfd, buf), func(n int) core.M[core.Unit] {
					if n == 0 {
						return core.Do(func() { done.Store(true) })
					}
					received = append(received, buf[:n]...)
					return loop()
				})
			}
			return loop()
		}()),
	))
	if !done.Load() {
		t.Fatal("reader did not see EOF")
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("received %d bytes, want %d; content mismatch", len(received), len(payload))
	}
}

func TestAcceptConnectEcho(t *testing.T) {
	r := newRig(t, nil, 2)
	var echoed atomic.Value
	serve := func(lfd kernel.FD) core.M[core.Unit] {
		return core.Bind(r.io.SockAccept(lfd), func(conn kernel.FD) core.M[core.Unit] {
			buf := make([]byte, 128)
			return core.Bind(r.io.SockRead(conn, buf), func(n int) core.M[core.Unit] {
				return core.Then(
					core.Bind(r.io.SockSend(conn, buf[:n]), func(int) core.M[core.Unit] { return core.Skip }),
					r.io.CloseFD(conn),
				)
			})
		})
	}
	client := core.Bind(r.io.SockConnect("echo:1"), func(fd kernel.FD) core.M[core.Unit] {
		return core.Then(
			core.Bind(r.io.SockSend(fd, []byte("hello hybrid")), func(int) core.M[core.Unit] { return core.Skip }),
			core.Bind(func() core.M[int] {
				buf := make([]byte, 128)
				return core.Bind(r.io.SockReadFull(fd, buf[:12]), func(n int) core.M[int] {
					echoed.Store(string(buf[:n]))
					return core.Return(n)
				})
			}(), func(int) core.M[core.Unit] { return r.io.CloseFD(fd) }),
		)
	})
	// Listen before the client can connect, then serve concurrently.
	r.rt.Run(core.Bind(r.io.Listen("echo:1", 16), func(lfd kernel.FD) core.M[core.Unit] {
		return core.Seq(core.Fork(serve(lfd)), client)
	}))
	if echoed.Load() != "hello hybrid" {
		t.Fatalf("echoed = %v", echoed.Load())
	}
}

func TestSockAcceptWaitsForConnection(t *testing.T) {
	r := newRig(t, nil, 1)
	var accepted atomic.Bool
	r.rt.Spawn(core.Bind(r.io.Listen("late:1", 4), func(lfd kernel.FD) core.M[core.Unit] {
		return core.Bind(r.io.SockAccept(lfd), func(kernel.FD) core.M[core.Unit] {
			return core.Do(func() { accepted.Store(true) })
		})
	}))
	if accepted.Load() {
		t.Fatal("accept returned without a connection")
	}
	// Retry until the spawned thread has bound the listener.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := r.k.Connect("late:1"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("listener never appeared")
		}
		time.Sleep(time.Millisecond)
	}
	r.rt.WaitIdle()
	if !accepted.Load() {
		t.Fatal("acceptor did not wake")
	}
}

func TestSockSendToClosedPeerThrows(t *testing.T) {
	r := newRig(t, nil, 1)
	a, b := r.k.SocketPair()
	if err := r.k.Close(b); err != nil {
		t.Fatal(err)
	}
	var caught atomic.Bool
	r.rt.Run(core.Catch(
		core.Bind(r.io.SockSend(a, []byte("x")), func(int) core.M[core.Unit] { return core.Skip }),
		func(err error) core.M[core.Unit] {
			return core.Do(func() { caught.Store(true) })
		},
	))
	if !caught.Load() {
		t.Fatal("EPIPE not thrown as exception")
	}
}

func TestAIOReadFromThread(t *testing.T) {
	clk := vclock.NewVirtual()
	r := newRig(t, clk, 1)
	f, err := r.fs.Create("blob", 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	var n atomic.Int64
	var at atomic.Int64
	r.rt.Run(core.Bind(r.io.AIORead(f, 8192, buf), func(got int) core.M[core.Unit] {
		return core.Do(func() {
			n.Store(int64(got))
			at.Store(int64(clk.Now()))
		})
	}))
	if n.Load() != 4096 {
		t.Fatalf("AIORead = %d", n.Load())
	}
	if at.Load() == 0 {
		t.Fatal("AIO read took no virtual time")
	}
	// Contents must match the pattern.
	for i := range buf {
		if buf[i] != kernel.PatternByte("blob", 8192+int64(i)) {
			t.Fatalf("content mismatch at %d", i)
		}
	}
}

func TestConcurrentAIOBenefitsFromElevator(t *testing.T) {
	// Many threads reading random blocks concurrently must finish sooner
	// (in virtual time) per request than a single sequential reader — the
	// disk-head-scheduling effect the hybrid model exploits in Figure 17.
	perRequest := func(threads, reads int) time.Duration {
		clk := vclock.NewVirtual()
		r := newRig(t, clk, 1)
		f, err := r.fs.Create("f", 1<<30, false)
		if err != nil {
			t.Fatal(err)
		}
		rng := uint64(12345)
		next := func() int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int64(rng % uint64(1<<30-4096))
		}
		offsets := make([]int64, threads*reads)
		for i := range offsets {
			offsets[i] = next()
		}
		buf := make([]byte, 4096)
		var prog core.M[core.Unit] = core.Skip
		for ti := 0; ti < threads; ti++ {
			ti := ti
			prog = core.Then(prog, core.Fork(core.ForN(reads, func(i int) core.M[core.Unit] {
				off := offsets[ti*reads+i]
				return core.Bind(r.io.AIORead(f, off, buf), func(int) core.M[core.Unit] { return core.Skip })
			})))
		}
		r.rt.Run(prog)
		total := threads * reads
		return time.Duration(int64(clk.Now()) / int64(total))
	}
	seq := perRequest(1, 64)
	conc := perRequest(64, 1)
	if !(conc < seq) {
		t.Fatalf("no elevator benefit: sequential %v/req, concurrent %v/req", seq, conc)
	}
}

func TestFileOpenViaBlio(t *testing.T) {
	r := newRig(t, nil, 1)
	if _, err := r.fs.Create("exists", 10, true); err != nil {
		t.Fatal(err)
	}
	var ok, missing atomic.Bool
	r.rt.Run(core.Seq(
		core.Bind(r.io.FileOpen("exists"), func(f *kernel.File) core.M[core.Unit] {
			return core.Do(func() { ok.Store(f != nil) })
		}),
		core.Catch(
			core.Bind(r.io.FileOpen("missing"), func(*kernel.File) core.M[core.Unit] { return core.Skip }),
			func(err error) core.M[core.Unit] {
				return core.Do(func() { missing.Store(true) })
			},
		),
	))
	if !ok.Load() || !missing.Load() {
		t.Fatalf("ok=%v missing=%v", ok.Load(), missing.Load())
	}
}

func TestManyIdleEpollWaiters(t *testing.T) {
	// The Figure 18 shape in miniature: thousands of threads parked in
	// EpollWait on idle pipes while two active threads exchange data.
	r := newRig(t, nil, 2)
	const idle = 2000
	for i := 0; i < idle; i++ {
		rfd, _ := r.k.NewPipe(0)
		r.rt.Spawn(core.Then(r.io.EpollWait(rfd, kernel.EventRead), core.Skip))
	}
	rfd, wfd := r.k.NewPipe(4096)
	payload := make([]byte, 32*1024)
	var got atomic.Int64
	r.rt.Spawn(core.Bind(r.io.SockSend(wfd, payload), func(int) core.M[core.Unit] {
		return r.io.CloseFD(wfd)
	}))
	r.rt.Spawn(func() core.M[core.Unit] {
		buf := make([]byte, 4096)
		var loop func() core.M[core.Unit]
		loop = func() core.M[core.Unit] {
			return core.Bind(r.io.SockRead(rfd, buf), func(n int) core.M[core.Unit] {
				if n == 0 {
					return core.Skip
				}
				got.Add(int64(n))
				return loop()
			})
		}
		return loop()
	}())
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() != int64(len(payload)) {
		if time.Now().After(deadline) {
			t.Fatalf("transferred %d of %d with %d idle threads", got.Load(), len(payload), idle)
		}
		time.Sleep(time.Millisecond)
	}
	if live := r.rt.Live(); live != idle {
		t.Fatalf("Live = %d, want %d idle threads still parked", live, idle)
	}
}

func TestAIOWriteFromThread(t *testing.T) {
	clk := vclock.NewVirtual()
	r := newRig(t, clk, 1)
	f, err := r.fs.Create("w", 8192, true)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("written through sys_aio_write")
	var wrote atomic.Int64
	r.rt.Run(core.Bind(r.io.AIOWrite(f, 100, payload), func(n int) core.M[core.Unit] {
		return core.Do(func() { wrote.Store(int64(n)) })
	}))
	if int(wrote.Load()) != len(payload) {
		t.Fatalf("AIOWrite = %d", wrote.Load())
	}
	back := make([]byte, len(payload))
	var read atomic.Int64
	r.rt.Run(core.Bind(r.io.AIORead(f, 100, back), func(n int) core.M[core.Unit] {
		return core.Do(func() { read.Store(int64(n)) })
	}))
	if string(back) != string(payload) {
		t.Fatalf("read back %q", back)
	}
	if clk.Now() == 0 {
		t.Fatal("writes consumed no virtual time")
	}
}

func TestAIOWriteToPatternFileThrows(t *testing.T) {
	r := newRig(t, vclock.NewVirtual(), 1)
	f, _ := r.fs.Create("ro", 4096, false)
	var caught atomic.Bool
	r.rt.Run(core.Catch(
		core.Bind(r.io.AIOWrite(f, 0, []byte("x")), func(int) core.M[core.Unit] { return core.Skip }),
		func(error) core.M[core.Unit] { return core.Do(func() { caught.Store(true) }) },
	))
	if !caught.Load() {
		t.Fatal("write to read-only file did not throw")
	}
}

func TestIOSleepAdvancesKernelClock(t *testing.T) {
	clk := vclock.NewVirtual()
	r := newRig(t, clk, 1)
	r.rt.Run(r.io.Sleep(7 * time.Millisecond))
	if clk.Now() != vclock.Time(7*time.Millisecond) {
		t.Fatalf("now = %v", clk.Now())
	}
}

func TestEpollWaitWriteReadiness(t *testing.T) {
	// A thread waiting for EventWrite on a full pipe wakes when the
	// reader drains it.
	r := newRig(t, nil, 1)
	rfd, wfd := r.k.NewPipe(4)
	if _, err := r.k.Write(wfd, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	var woke atomic.Bool
	r.rt.Spawn(core.Then(
		r.io.EpollWait(wfd, kernel.EventWrite),
		core.Do(func() { woke.Store(true) }),
	))
	deadline := time.Now().Add(5 * time.Second)
	for r.rt.Live() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("thread did not park")
		}
		time.Sleep(time.Millisecond)
	}
	if woke.Load() {
		t.Fatal("woke while pipe still full")
	}
	if _, err := r.k.Read(rfd, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}
	r.rt.WaitIdle()
	if !woke.Load() {
		t.Fatal("thread did not wake on writability")
	}
}

func TestSockReadFullStopsAtEOF(t *testing.T) {
	r := newRig(t, nil, 1)
	a, b := r.k.SocketPair()
	if _, err := r.k.Write(a, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Close(a); err != nil {
		t.Fatal(err)
	}
	var got atomic.Int64
	buf := make([]byte, 10)
	r.rt.Run(core.Bind(r.io.SockReadFull(b, buf), func(n int) core.M[core.Unit] {
		return core.Do(func() { got.Store(int64(n)) })
	}))
	if got.Load() != 3 {
		t.Fatalf("ReadFull at EOF = %d, want 3", got.Load())
	}
}

func TestMultipleEventLoopsPartitionSources(t *testing.T) {
	// Figure 14 shows several event loops around one scheduler. Two IO
	// layers on the same kernel each run their own epoll device and
	// worker_epoll loop; threads waiting through either are woken
	// independently.
	clk := vclock.NewReal()
	k := kernel.New(clk)
	rt := core.NewRuntime(core.Options{Workers: 2, Clock: clk})
	defer rt.Shutdown()
	io1 := New(rt, k, nil)
	defer io1.Close()
	io2 := New(rt, k, nil)
	defer io2.Close()

	r1, w1 := k.NewPipe(0)
	r2, w2 := k.NewPipe(0)
	var woke1, woke2 atomic.Bool
	rt.Spawn(core.Then(io1.EpollWait(r1, kernel.EventRead), core.Do(func() { woke1.Store(true) })))
	rt.Spawn(core.Then(io2.EpollWait(r2, kernel.EventRead), core.Do(func() { woke2.Store(true) })))
	deadline := time.Now().Add(5 * time.Second)
	for rt.Live() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("threads did not park")
		}
		time.Sleep(time.Millisecond)
	}
	k.Write(w2, []byte("x"))
	for !woke2.Load() {
		if time.Now().After(deadline) {
			t.Fatal("loop 2 did not deliver")
		}
		time.Sleep(time.Millisecond)
	}
	if woke1.Load() {
		t.Fatal("loop 1 woke without an event")
	}
	k.Write(w1, []byte("y"))
	rt.WaitIdle()
	if !woke1.Load() {
		t.Fatal("loop 1 did not deliver")
	}
}
