// Package hio (hybrid I/O) plugs the simulated kernel's asynchronous I/O
// interfaces into the monadic runtime, following §4.5 of the paper: the
// sys_epoll_wait and sys_aio_read system calls, a dedicated worker_epoll
// event loop that harvests readiness events and feeds the scheduler's
// ready queue, and the library of blocking-style wrappers (sock_accept,
// sock_send, …, Figure 10) that hide the nonblocking retry loops from
// application threads.
package hio

import (
	"errors"

	"hybrid/internal/core"
	"hybrid/internal/kernel"
	"hybrid/internal/vclock"
)

// IO binds a monadic runtime to a kernel instance. One IO owns one epoll
// device and one worker_epoll loop; a program may create several to
// partition event sources, exactly as the paper's Figure 14 shows multiple
// event loops around the scheduler.
type IO struct {
	rt *core.Runtime
	k  *kernel.Kernel
	fs *kernel.FS
	ep *kernel.Epoll

	// immediate: the kernel runs on a virtual clock, so the epoll device
	// dispatches readiness resumes synchronously — at the point the
	// readiness arises or inside the clock's (when, seq)-ordered event
	// batch — and no worker_epoll goroutine exists. This removes the one
	// host-scheduled actor from virtual-time runs, which is what makes
	// figure output reproducible at GOMAXPROCS>1.
	immediate bool
}

// New starts an IO layer: it creates an epoll device on k and, in the
// wall-clock domain, launches the worker_epoll harvest loop. fs may be
// nil if no file I/O is used.
func New(rt *core.Runtime, k *kernel.Kernel, fs *kernel.FS) *IO {
	io := &IO{rt: rt, k: k, fs: fs, ep: k.NewEpoll()}
	if _, virtual := k.Clock().(*vclock.VirtualClock); virtual {
		io.immediate = true
		io.ep.SetImmediate()
	} else {
		go io.workerEpoll()
	}
	return io
}

// Close shuts down the epoll loop. Threads still parked in EpollWait are
// never resumed; drain the runtime first.
func (io *IO) Close() { io.ep.Close() }

// Kernel reports the bound kernel.
func (io *IO) Kernel() *kernel.Kernel { return io.k }

// FS reports the bound filesystem (nil if none).
func (io *IO) FS() *kernel.FS { return io.fs }

// Runtime reports the bound runtime.
func (io *IO) Runtime() *core.Runtime { return io.rt }

// Clock reports the kernel's timing domain.
func (io *IO) Clock() vclock.Clock { return io.k.Clock() }

// workerEpoll is the paper's Figure 16: wait for epoll events and, for
// each thread object in the results, write it to the scheduler's ready
// queue. The whole poll round is staged into one Batch so the unblocked
// threads land on the ready queue in a single push with targeted worker
// wakeups, instead of a queue lock + signal per event.
func (io *IO) workerEpoll() {
	b := io.rt.NewBatch()
	for {
		events, ok := io.ep.Wait()
		for _, ev := range events {
			switch resume := ev.Data.(type) {
			case func(kernel.Event, *core.Batch):
				resume(ev.Events, b)
			case func(kernel.Event):
				resume(ev.Events)
			}
		}
		// Flush before Done: each event's busy hold is still held while
		// its thread sits staged (Batch.add took the enqueue-side hold), so
		// releasing the delivery holds afterwards keeps virtual time pinned
		// throughout the handoff.
		b.Flush()
		for range events {
			io.ep.Done()
		}
		if !ok {
			return
		}
	}
}

// result pairs a value with an error for transport through Suspend, which
// carries a single type.
type result[A any] struct {
	val A
	err error
}

// throwResult raises the carried error as a monadic exception, or yields
// the value.
func throwResult[A any](r result[A]) core.M[A] {
	if r.err != nil {
		return core.Throw[A](r.err)
	}
	return core.Return(r.val)
}

// EpollWait blocks the thread until fd is ready for one of the events in
// mask, returning the events that fired (the paper's sys_epoll_wait).
func (io *IO) EpollWait(fd kernel.FD, mask kernel.Event) core.M[kernel.Event] {
	if io.immediate {
		// Immediate-mode epoll invokes the registered func(Event)
		// synchronously at readiness; the resume enqueues the thread
		// directly (no harvest batch exists to stage into).
		return core.Bind(
			core.SuspendB(func(resume func(result[kernel.Event], *core.Batch)) {
				err := io.ep.Register(fd, mask, func(ev kernel.Event) {
					resume(result[kernel.Event]{val: ev}, nil)
				})
				if err != nil {
					resume(result[kernel.Event]{err: err}, nil)
				}
			}),
			throwResult,
		)
	}
	return core.Bind(
		core.SuspendB(func(resume func(result[kernel.Event], *core.Batch)) {
			err := io.ep.Register(fd, mask, func(ev kernel.Event, b *core.Batch) {
				resume(result[kernel.Event]{val: ev}, b)
			})
			if err != nil {
				resume(result[kernel.Event]{err: err}, nil)
			}
		}),
		throwResult,
	)
}

// ---------------------------------------------------------------------------
// Nonblocking system calls lifted into the monad
// ---------------------------------------------------------------------------

// Read performs one nonblocking read; EAGAIN is returned as an error value
// (not thrown) because retry loops are the normal path.
func (io *IO) Read(fd kernel.FD, p []byte) core.M[ReadResult] {
	return core.NBIO(func() ReadResult {
		n, err := io.k.Read(fd, p)
		return ReadResult{N: n, Err: err}
	})
}

// ReadResult carries a nonblocking transfer count and error.
type ReadResult struct {
	N   int
	Err error
}

// CloseFD closes a descriptor.
func (io *IO) CloseFD(fd kernel.FD) core.M[core.Unit] {
	return core.Do(func() { _ = io.k.Close(fd) })
}

// ---------------------------------------------------------------------------
// Blocking-style wrappers (Figure 10)
// ---------------------------------------------------------------------------

// SockAccept accepts a connection on a listening descriptor, waiting for
// readiness when none is pending — the paper's Figure 10, verbatim logic:
// try the nonblocking accept; on EAGAIN wait for EPOLL_READ and retry.
func (io *IO) SockAccept(listenFD kernel.FD) core.M[kernel.FD] {
	var try func() core.M[kernel.FD]
	try = func() core.M[kernel.FD] {
		return core.Bind(
			core.NBIO(func() result[kernel.FD] {
				fd, err := io.k.Accept(listenFD)
				return result[kernel.FD]{val: fd, err: err}
			}),
			func(r result[kernel.FD]) core.M[kernel.FD] {
				if errors.Is(r.err, kernel.ErrAgain) {
					return core.Then(io.EpollWait(listenFD, kernel.EventRead), try())
				}
				// EINTR and ECONNABORTED retry immediately: the signal
				// landed before the accept, or the pending connection
				// died in the backlog — neither is the listener's end.
				if errors.Is(r.err, kernel.ErrIntr) || errors.Is(r.err, kernel.ErrConnAborted) {
					return try()
				}
				return throwResult(r)
			},
		)
	}
	return try()
}

// SockRead reads at least one byte into p, waiting for readiness as
// needed. It returns 0 at end of stream.
func (io *IO) SockRead(fd kernel.FD, p []byte) core.M[int] {
	var try func() core.M[int]
	try = func() core.M[int] {
		return core.Bind(io.Read(fd, p), func(r ReadResult) core.M[int] {
			if errors.Is(r.Err, kernel.ErrAgain) {
				return core.Then(io.EpollWait(fd, kernel.EventRead), try())
			}
			if errors.Is(r.Err, kernel.ErrIntr) {
				return try() // interrupted before the transfer; retry now
			}
			if r.Err != nil {
				return core.Throw[int](r.Err)
			}
			return core.Return(r.N)
		})
	}
	return try()
}

// SockReadFull reads exactly len(p) bytes unless the stream ends first;
// it returns the number read.
func (io *IO) SockReadFull(fd kernel.FD, p []byte) core.M[int] {
	var step func(got int) core.M[int]
	step = func(got int) core.M[int] {
		if got >= len(p) {
			return core.Return(got)
		}
		return core.Bind(io.SockRead(fd, p[got:]), func(n int) core.M[int] {
			if n == 0 {
				return core.Return(got) // EOF
			}
			return step(got + n)
		})
	}
	return step(0)
}

// SockReadFullCell returns a computation that, each time its trace is
// forced, reads exactly len(*cell) bytes into *cell (fewer at end of
// stream) — the defunctionalized sibling of SockReadFull for flattened
// callers that build the M once and re-force its trace per message (the
// fig18 FIFO pump). Like SockSendCell, the retry loop lives in a
// per-application state struct with one embedded NBIONode and one
// pre-applied EpollWait park trace, so steady-state receives allocate no
// nodes; the node sequence matches SockReadFull's. The count delivered
// is the total bytes read.
func (io *IO) SockReadFullCell(fd kernel.FD, cell *[]byte) core.M[int] {
	return func(k func(int) core.Trace) core.Trace {
		s := &readFullCellState{io: io, fd: fd, cell: cell, k: k}
		s.node.Effect = s.try
		s.park = io.EpollWait(fd, kernel.EventRead)(s.retry)
		return &s.node
	}
}

type readFullCellState struct {
	io   *IO
	fd   kernel.FD
	cell *[]byte
	k    func(int) core.Trace
	got  int
	node core.NBIONode
	park core.Trace // EpollWait(EventRead) resuming into node
}

func (s *readFullCellState) retry(kernel.Event) core.Trace { return &s.node }

func (s *readFullCellState) try() core.Trace {
	p := *s.cell
	n, err := s.io.k.Read(s.fd, p[s.got:])
	if err != nil {
		if errors.Is(err, kernel.ErrAgain) {
			return s.park
		}
		if errors.Is(err, kernel.ErrIntr) {
			return &s.node // interrupted before the transfer; retry now
		}
		s.got = 0
		return &core.ThrowNode{Err: err}
	}
	s.got += n
	if n > 0 && s.got < len(p) {
		return &s.node
	}
	got := s.got
	s.got = 0 // reset: the trace re-enters per message
	return s.k(got)
}

// SockSend writes all of p, waiting for buffer space as needed (the
// paper's sock_send).
func (io *IO) SockSend(fd kernel.FD, p []byte) core.M[int] {
	total := len(p)
	var try func(rest []byte) core.M[int]
	try = func(rest []byte) core.M[int] {
		if len(rest) == 0 {
			return core.Return(total)
		}
		return core.Bind(
			core.NBIO(func() result[int] {
				n, err := io.k.Write(fd, rest)
				return result[int]{val: n, err: err}
			}),
			func(r result[int]) core.M[int] {
				if errors.Is(r.err, kernel.ErrAgain) {
					return core.Then(io.EpollWait(fd, kernel.EventWrite), try(rest))
				}
				if errors.Is(r.err, kernel.ErrIntr) {
					return try(rest) // interrupted before the transfer; retry now
				}
				if r.err != nil {
					return core.Throw[int](r.err)
				}
				return try(rest[r.val:])
			},
		)
	}
	return try(p)
}

// SockSendCell returns a computation that, each time its trace is
// forced, writes all of the buffer *cell holds at that moment — the
// defunctionalized sibling of SockSend for flattened state-machine
// callers (the httpd serve loop) that build the M once per connection
// and re-enter its trace once per response. The retry loop lives in a
// per-application state struct with one embedded NBIONode and one
// pre-applied EpollWait park trace, so steady-state sends allocate no
// nodes; the emitted node sequence — one NBIO attempt per partial
// transfer, a park plus a retry attempt per EAGAIN — is exactly
// SockSend's. *cell must be non-empty at entry and must not be mutated
// until the computation delivers its count (the total bytes written).
func (io *IO) SockSendCell(fd kernel.FD, cell *[]byte) core.M[int] {
	return func(k func(int) core.Trace) core.Trace {
		s := &sendCellState{io: io, fd: fd, cell: cell, k: k}
		s.node.Effect = s.try
		s.park = io.EpollWait(fd, kernel.EventWrite)(s.retry)
		return &s.node
	}
}

type sendCellState struct {
	io     *IO
	fd     kernel.FD
	cell   *[]byte
	k      func(int) core.Trace
	rest   []byte
	total  int
	active bool
	node   core.NBIONode
	park   core.Trace // EpollWait(EventWrite) resuming into node
}

func (s *sendCellState) retry(kernel.Event) core.Trace { return &s.node }

func (s *sendCellState) try() core.Trace {
	if !s.active {
		s.active = true
		s.rest = *s.cell
		s.total = len(s.rest)
	}
	n, err := s.io.k.Write(s.fd, s.rest)
	if err != nil {
		if errors.Is(err, kernel.ErrAgain) {
			return s.park
		}
		if errors.Is(err, kernel.ErrIntr) {
			return &s.node // interrupted before the transfer; retry now
		}
		s.active, s.rest = false, nil
		return &core.ThrowNode{Err: err}
	}
	s.rest = s.rest[n:]
	if len(s.rest) > 0 {
		return &s.node
	}
	total := s.total
	s.active, s.rest = false, nil // reset: the trace re-enters per response
	return s.k(total)
}

// SockConnect opens a connection to a listener address.
func (io *IO) SockConnect(addr string) core.M[kernel.FD] {
	return core.NBIOe(func() (kernel.FD, error) { return io.k.Connect(addr) })
}

// Listen binds a listening socket.
func (io *IO) Listen(addr string, backlog int) core.M[kernel.FD] {
	return core.NBIOe(func() (kernel.FD, error) { return io.k.Listen(addr, backlog) })
}

// ---------------------------------------------------------------------------
// AIO (§4.5)
// ---------------------------------------------------------------------------

// AIORead submits an asynchronous disk read and parks the thread until it
// completes, returning the byte count (the paper's sys_aio_read).
// Completions are delivered straight to the scheduler's ready queue; the
// paper harvests them with a separate worker loop, but the observable
// behaviour — the thread resumes when the disk finishes — is identical.
func (io *IO) AIORead(f *kernel.File, off int64, p []byte) core.M[int] {
	return core.Bind(
		core.Suspend(func(resume func(result[int])) {
			io.fs.AIORead(f, off, p, func(n int, err error) {
				resume(result[int]{val: n, err: err})
			})
		}),
		throwResult,
	)
}

// AIOWrite submits an asynchronous disk write and parks the thread until
// it completes.
func (io *IO) AIOWrite(f *kernel.File, off int64, p []byte) core.M[int] {
	return core.Bind(
		core.Suspend(func(resume func(result[int])) {
			io.fs.AIOWrite(f, off, p, func(n int, err error) {
				resume(result[int]{val: n, err: err})
			})
		}),
		throwResult,
	)
}

// FileOpen resolves a file by name. Metadata operations are synchronous
// blocking interfaces in the OS (§4.6), so this goes through the
// blocking-I/O pool like the paper's sys_blio.
func (io *IO) FileOpen(name string) core.M[*kernel.File] {
	return core.Blioe(func() (*kernel.File, error) { return io.fs.Open(name) })
}

// Sleep suspends the thread for d in the kernel's timing domain.
func (io *IO) Sleep(d vclock.Duration) core.M[core.Unit] {
	return core.Sleep(io.k.Clock(), d)
}
