// Package loadgen is the paper's client workload (§5.2): a multithreaded
// load generator in which each client thread repeatedly requests a file
// chosen at random from a large fileset over a persistent connection.
// Clients run as monadic threads, so tens of thousands of them are cheap.
package loadgen

import (
	"fmt"
	"sync/atomic"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// Config parameterizes a run.
type Config struct {
	// Addr is the server's kernel-socket address.
	Addr string
	// Clients is the number of concurrent client threads.
	Clients int
	// Files is the fileset size; requests draw uniformly from
	// file-0 … file-(Files-1).
	Files int
	// RequestsPerClient bounds each client's work.
	RequestsPerClient int
	// Seed makes request sequences deterministic.
	Seed uint64
	// RTT is charged (via the clock) per request, modelling the
	// client-server network round trip the kernel socket layer does not
	// simulate. Zero disables.
	RTT time.Duration
	// Bandwidth, if nonzero, charges ResponseBytes/Bandwidth per
	// response, modelling the paper's 100 Mbps link.
	Bandwidth int64
	// MeasureLatency, when true, records each request's virtual-time
	// latency (send to last body byte, microseconds) in a histogram
	// readable via Latency(). Off by default: measuring adds clock-read
	// nodes to every request's trace.
	MeasureLatency bool
	// ConnectRetries, when > 0, retries a refused connect that many
	// times with exponential backoff (base ConnectBackoff, default 1ms)
	// before the client gives up. Off by default: under overload the
	// plain generator treats a full backlog as a dead client.
	ConnectRetries int
	ConnectBackoff time.Duration
	// Horizon, when > 0, switches every client to closed-loop sessions:
	// connect, issue SessionRequests requests, close, reconnect — until
	// the virtual clock passes start+Horizon. Failed connects and stuck
	// sessions are counted in Errors and retried after ConnectBackoff
	// instead of killing the client, so the generator measures delivered
	// goodput under contention rather than first-failure survival.
	Horizon vclock.Duration
	// SessionRequests is the requests per connection in Horizon mode
	// (default RequestsPerClient).
	SessionRequests int
	// SessionTimeout bounds one session in Horizon mode; a session that
	// cannot finish (a connection parked in a dead server's backlog, a
	// response that never comes) is abandoned, closed, and counted as one
	// error. Default 250ms.
	SessionTimeout vclock.Duration
}

// Generator drives the workload and accumulates counters.
type Generator struct {
	io  *hio.IO
	cfg Config

	Requests atomic.Uint64
	Bytes    atomic.Uint64
	Goodput  atomic.Uint64 // bytes from 2xx responses only
	Errors   atomic.Uint64
	Statuses [6]atomic.Uint64 // index status/100

	lat *stats.Histogram // nil unless cfg.MeasureLatency
}

// New creates a generator over the client-side I/O layer.
func New(io *hio.IO, cfg Config) *Generator {
	g := &Generator{io: io, cfg: cfg}
	if cfg.MeasureLatency {
		// Power-of-two microsecond buckets up to ~67s of virtual time.
		g.lat = stats.NewRegistry().Histogram("latency_us", stats.PowersOfTwo(1<<26)...)
	}
	return g
}

// Latency is the per-request latency histogram in microseconds of
// virtual time, or nil when Config.MeasureLatency is off.
func (g *Generator) Latency() *stats.Histogram { return g.lat }

// MakeFileset creates n pattern-backed files of the given size named
// file-0 … file-(n-1) on fs (the paper's 128K × 16 KB fileset).
func MakeFileset(fs *kernel.FS, n int, size int64) error {
	for i := 0; i < n; i++ {
		if _, err := fs.Create(FileName(i), size, false); err != nil {
			return err
		}
	}
	return nil
}

// FileName is the canonical fileset naming scheme.
func FileName(i int) string { return fmt.Sprintf("file-%d", i) }

// Run launches the client threads and returns when every client has
// issued its full request budget.
func (g *Generator) Run() core.M[core.Unit] {
	wg := core.NewWaitGroup(g.cfg.Clients)
	return core.Then(
		core.ForN(g.cfg.Clients, func(i int) core.M[core.Unit] {
			return core.Fork(core.Finally(g.client(i), wg.Done()))
		}),
		wg.Wait(),
	)
}

// client is one client thread: a persistent connection issuing
// RequestsPerClient GETs for randomly chosen files.
func (g *Generator) client(id int) core.M[core.Unit] {
	rng := g.cfg.Seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	// One response buffer and head accumulator per client, reused across
	// its whole request sequence (oneRequest leaves both empty).
	hb := &httpd.HeadBuffer{}
	buf := make([]byte, 8192)
	if g.cfg.Horizon > 0 {
		return g.sessions(next, hb, buf)
	}
	body := func(conn kernel.FD) core.M[core.Unit] {
		return g.requestSeq(conn, g.cfg.RequestsPerClient, next, hb, buf)
	}
	connect := g.io.SockConnect(g.cfg.Addr)
	if g.cfg.ConnectRetries > 0 {
		base := g.cfg.ConnectBackoff
		if base <= 0 {
			base = time.Millisecond
		}
		connect = core.Retry(g.io.Clock(), core.Backoff{
			Attempts: g.cfg.ConnectRetries + 1,
			Base:     base,
			Factor:   2,
			Max:      100 * base,
		}, connect)
	}
	return core.Catch(
		core.Bind(connect, func(conn kernel.FD) core.M[core.Unit] {
			return core.Finally(body(conn), g.io.CloseFD(conn))
		}),
		func(err error) core.M[core.Unit] {
			g.Errors.Add(1)
			return core.Skip
		},
	)
}

// sessions is the Horizon-mode client body: closed-loop sessions of
// SessionRequests requests each, repeated until the horizon, with every
// failure counted and survived.
func (g *Generator) sessions(next func() uint64, hb *httpd.HeadBuffer, buf []byte) core.M[core.Unit] {
	clk := g.io.Clock()
	per := g.cfg.SessionRequests
	if per <= 0 {
		per = g.cfg.RequestsPerClient
	}
	if per < 1 {
		per = 1
	}
	sto := g.cfg.SessionTimeout
	if sto <= 0 {
		sto = 250 * time.Millisecond
	}
	backoff := g.cfg.ConnectBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	work := func(conn kernel.FD) core.M[core.Unit] {
		return g.requestSeq(conn, per, next, hb, buf)
	}
	one := func() core.M[core.Unit] {
		// A stale session may have left response fragments behind.
		hb.Reset()
		return core.Bind(g.io.SockConnect(g.cfg.Addr), func(conn kernel.FD) core.M[core.Unit] {
			// The timeout sits inside the Finally: an abandoned session's
			// socket is closed immediately, which also unblocks the
			// abandoned thread so it unwinds instead of leaking.
			return core.Finally(
				core.Timeout(clk, sto, work(conn)),
				core.Catch(g.io.CloseFD(conn), func(error) core.M[core.Unit] { return core.Skip }),
			)
		})
	}
	return core.Bind(core.NBIO(clk.Now), func(start vclock.Time) core.M[core.Unit] {
		deadline := start + vclock.Time(g.cfg.Horizon)
		var loop func() core.M[core.Unit]
		loop = func() core.M[core.Unit] {
			return core.Bind(core.NBIO(clk.Now), func(now vclock.Time) core.M[core.Unit] {
				if now >= deadline {
					return core.Skip
				}
				return core.Then(
					core.Catch(one(), func(error) core.M[core.Unit] {
						g.Errors.Add(1)
						return g.io.Sleep(backoff)
					}),
					loop(),
				)
			})
		}
		return loop()
	})
}

// netDelay charges the modelled network time for a response.
func (g *Generator) netDelay(respBytes int64) core.M[core.Unit] {
	d := g.cfg.RTT
	if g.cfg.Bandwidth > 0 {
		d += time.Duration(respBytes * int64(time.Second) / g.cfg.Bandwidth)
	}
	if d <= 0 {
		return core.Skip
	}
	return g.io.Sleep(d)
}
