package loadgen_test

import (
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/vclock"
)

// attackRun drives one adversarial run against a fresh server and returns
// the adversary and the server's lifecycle stats. A nil lc runs with
// defenses off.
func attackRun(t *testing.T, mode loadgen.AttackMode, lc *httpd.LifecycleConfig) (*loadgen.Adversary, httpd.LifecycleStats) {
	t.Helper()
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.DefaultGeometry()))
	if err := loadgen.MakeFileset(fs, 4, 16384); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()
	srv := httpd.NewServer(io, httpd.ServerConfig{CacheBytes: 1 << 20, Lifecycle: lc})
	rt.Spawn(srv.ListenAndServe("web:80"))

	adv := loadgen.NewAdversary(io, loadgen.AttackConfig{
		Addr:      "web:80",
		Attackers: 4,
		Mode:      mode,
		Seed:      17,
		Interval:  2 * time.Millisecond,
		Duration:  100 * time.Millisecond,
		Files:     4,
	})
	done := make(chan struct{})
	rt.Spawn(core.Then(adv.Run(), core.Do(func() { close(done) })))
	<-done
	return adv, srv.LifecycleStats()
}

var hardened = &httpd.LifecycleConfig{
	IdleTimeout:       10 * time.Millisecond,
	HeaderTimeout:     10 * time.Millisecond,
	BodyTimeout:       10 * time.Millisecond,
	WriteStallTimeout: 10 * time.Millisecond,
}

func TestAdversarySlowlorisShedByHardenedServer(t *testing.T) {
	adv, st := attackRun(t, loadgen.AttackSlowloris, hardened)
	if st.ShedHeader == 0 {
		t.Fatalf("no header sheds against slowloris: %+v", st)
	}
	if adv.Torndown.Load() == 0 {
		t.Fatal("attackers never observed a teardown")
	}
	// Shed attackers reconnect and get shed again: the defense fires
	// repeatedly across the horizon, not just once.
	if st.ShedHeader < 8 {
		t.Fatalf("only %d header sheds over 100ms with a 10ms budget", st.ShedHeader)
	}
}

func TestAdversaryIdleFloodReaped(t *testing.T) {
	adv, st := attackRun(t, loadgen.AttackIdle, hardened)
	if st.ReapedIdle == 0 {
		t.Fatalf("no idle reaps against an idle flood: %+v", st)
	}
	if adv.Torndown.Load() == 0 {
		t.Fatal("attackers never observed a teardown")
	}
}

func TestAdversaryReadStallShed(t *testing.T) {
	_, st := attackRun(t, loadgen.AttackReadStall, hardened)
	if st.ShedWrite == 0 {
		t.Fatalf("no write-stall sheds against a read-stall attack: %+v", st)
	}
}

func TestAdversaryChurnServedWithoutSheds(t *testing.T) {
	// Churn abandons connections before any deadline can pass; the server
	// just sees EOFs. The attack still completes and counts its cycles.
	adv, _ := attackRun(t, loadgen.AttackChurn, hardened)
	if adv.Conns.Load() < 20 {
		t.Fatalf("churn opened only %d connections over 100ms", adv.Conns.Load())
	}
}

func TestAdversaryDefenselessServerNeverSheds(t *testing.T) {
	// Against an unhardened server the attackers are never torn down:
	// they pin their connections until the horizon. This is the baseline
	// the fig21 bench contrasts.
	adv, st := attackRun(t, loadgen.AttackSlowloris, nil)
	if st.Total() != 0 {
		t.Fatalf("lifecycle stats nonzero with defenses off: %+v", st)
	}
	if adv.Torndown.Load() != 0 {
		t.Fatalf("attackers torn down %d times with defenses off", adv.Torndown.Load())
	}
	if adv.Conns.Load() != 4 {
		t.Fatalf("conns = %d, want exactly one pinned connection per attacker", adv.Conns.Load())
	}
}

func TestAdversaryDeterministic(t *testing.T) {
	type result struct {
		conns, torndown, sent uint64
		st                    httpd.LifecycleStats
	}
	run := func() result {
		adv, st := attackRun(t, loadgen.AttackSlowloris, hardened)
		return result{adv.Conns.Load(), adv.Torndown.Load(), adv.Sent.Load(), st}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("adversarial runs diverged: %+v vs %+v", a, b)
	}
}
