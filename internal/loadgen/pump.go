package loadgen

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/vclock"
)

// requestSeq is the flattened client request loop: issue count GETs for
// randomly chosen files over conn, consuming each response in full. It
// replaces the closure spelling ForN(count, oneRequest) — which rebuilt
// the request bytes, the head-read recursion, the body-drain recursion,
// and every Bind/NBIO closure per request — with one pump state struct
// allocated at M-application time. A steady-state request reuses the
// pump's embedded trace nodes, its request-byte buffer, and its two
// pre-applied epoll park traces, so the only per-request allocations
// left are the modelled network Sleep (when RTT/Bandwidth are set) and
// the error path.
//
// The emitted node sequence is exactly the naive spelling's — per
// request: [clock read when latency is measured], one NBIO per send
// attempt with an epoll park per EAGAIN, one NBIO read plus one NBIO
// feed per head chunk, one NBIO parse, one NBIO read per body chunk,
// the Sleep's nodes when a delay is charged, one NBIO account, [one
// NBIO latency observe], and one loop-bounce NBIO (ForN's trailing
// bounce included) — so virtual-time figure outputs are unchanged.
func (g *Generator) requestSeq(conn kernel.FD, count int, next func() uint64, hb *httpd.HeadBuffer, buf []byte) core.M[core.Unit] {
	if count <= 0 {
		return core.Skip
	}
	return func(k func(core.Unit) core.Trace) core.Trace {
		s := &requestPump{
			g: g, kern: g.io.Kernel(), clk: g.io.Clock(),
			conn: conn, count: count, next: next, hb: hb, buf: buf, k: k,
		}
		s.latNode.Effect = s.latEffect
		s.sendNode.Effect = s.sendEffect
		s.readNode.Effect = s.readEffect
		s.feedNode.Effect = s.feedEffect
		s.parseNode.Effect = s.parseEffect
		s.accountNode.Effect = s.accountEffect
		s.observeNode.Effect = s.observeEffect
		s.bounceNode.Effect = s.bounceEffect
		s.delayCont = s.afterDelay
		s.sendPark = g.io.EpollWait(conn, kernel.EventWrite)(s.retrySend)
		s.readPark = g.io.EpollWait(conn, kernel.EventRead)(s.retryRead)
		s.begin()
		return s.entry()
	}
}

const requestTail = " HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n"

type requestPump struct {
	g    *Generator
	kern *kernel.Kernel
	clk  vclock.Clock
	conn kernel.FD

	count int
	next  func() uint64
	hb    *httpd.HeadBuffer
	buf   []byte
	k     func(core.Unit) core.Trace

	i         int
	req       []byte // rendered request bytes, reused across requests
	rest      []byte // unsent suffix of req
	readN     int    // bytes from the last head-phase read
	head      string
	draining  bool
	remaining int64
	length    int64
	status    int
	start     vclock.Time

	latNode     core.NBIONode
	sendNode    core.NBIONode
	readNode    core.NBIONode
	feedNode    core.NBIONode
	parseNode   core.NBIONode
	accountNode core.NBIONode
	observeNode core.NBIONode
	bounceNode  core.NBIONode

	sendPark  core.Trace // EpollWait(EventWrite) resuming into sendNode
	readPark  core.Trace // EpollWait(EventRead) resuming into readNode
	delayCont func(core.Unit) core.Trace
}

// begin renders the next request into the reusable buffer.
func (s *requestPump) begin() {
	name := s.next() % uint64(s.g.cfg.Files)
	s.req = append(s.req[:0], "GET /file-"...)
	s.req = strconv.AppendUint(s.req, name, 10)
	s.req = append(s.req, requestTail...)
	s.rest = s.req
	s.draining = false
}

// entry is the first node of one request.
func (s *requestPump) entry() core.Trace {
	if s.g.lat != nil {
		return &s.latNode
	}
	return &s.sendNode
}

func (s *requestPump) retrySend(kernel.Event) core.Trace { return &s.sendNode }
func (s *requestPump) retryRead(kernel.Event) core.Trace { return &s.readNode }

func (s *requestPump) latEffect() core.Trace {
	s.start = s.clk.Now()
	return &s.sendNode
}

func (s *requestPump) sendEffect() core.Trace {
	n, err := s.kern.Write(s.conn, s.rest)
	if err != nil {
		if errors.Is(err, kernel.ErrAgain) {
			return s.sendPark
		}
		if errors.Is(err, kernel.ErrIntr) {
			return &s.sendNode // interrupted before the transfer; retry now
		}
		return &core.ThrowNode{Err: err}
	}
	s.rest = s.rest[n:]
	if len(s.rest) > 0 {
		return &s.sendNode
	}
	return &s.readNode
}

func (s *requestPump) readEffect() core.Trace {
	p := s.buf
	if s.draining {
		want := int64(len(p))
		if want > s.remaining {
			want = s.remaining
		}
		p = p[:want]
	}
	n, err := s.kern.Read(s.conn, p)
	if err != nil {
		if errors.Is(err, kernel.ErrAgain) {
			return s.readPark
		}
		if errors.Is(err, kernel.ErrIntr) {
			return &s.readNode // interrupted before the transfer; retry now
		}
		return &core.ThrowNode{Err: err}
	}
	if s.draining {
		if n == 0 {
			return &core.ThrowNode{Err: fmt.Errorf("loadgen: truncated body")}
		}
		s.remaining -= int64(n)
		if s.remaining > 0 {
			return &s.readNode
		}
		return s.afterBody()
	}
	if n == 0 {
		return &core.ThrowNode{Err: fmt.Errorf("loadgen: connection closed mid-response")}
	}
	s.readN = n
	return &s.feedNode
}

func (s *requestPump) feedEffect() core.Trace {
	head, err := s.hb.Feed(s.buf[:s.readN])
	if err != nil {
		return &core.ThrowNode{Err: err}
	}
	if head == "" {
		return &s.readNode
	}
	s.head = head
	return &s.parseNode
}

func (s *requestPump) parseEffect() core.Trace {
	st, length, err := httpd.ParseResponseHead(s.head)
	s.head = ""
	if err != nil {
		return &core.ThrowNode{Err: err}
	}
	s.status = st
	if st >= 100 && st < 600 {
		s.g.Statuses[st/100].Add(1)
	}
	s.length = length
	// Part of the body may already be buffered past the head.
	buffered := int64(s.hb.Buffered())
	s.hb.Reset()
	s.remaining = length - buffered
	if s.remaining > 0 {
		s.draining = true
		return &s.readNode
	}
	return s.afterBody()
}

// afterBody charges the modelled network time, then accounts. netDelay
// is applied per request — its duration depends on the response length —
// but resolves to the allocation-free Skip when no delay is configured.
func (s *requestPump) afterBody() core.Trace {
	return s.g.netDelay(s.length)(s.delayCont)
}

func (s *requestPump) afterDelay(core.Unit) core.Trace { return &s.accountNode }

func (s *requestPump) accountEffect() core.Trace {
	g := s.g
	g.Requests.Add(1)
	g.Bytes.Add(uint64(s.length))
	if s.status/100 == 2 {
		g.Goodput.Add(uint64(s.length))
	}
	if g.lat != nil {
		return &s.observeNode
	}
	return &s.bounceNode
}

func (s *requestPump) observeEffect() core.Trace {
	s.g.lat.Observe(int64(time.Duration(s.clk.Now()-s.start) / time.Microsecond))
	return &s.bounceNode
}

func (s *requestPump) bounceEffect() core.Trace {
	i := s.i + 1
	if i >= s.count {
		s.i = 0 // reset: a retained trace may replay this pump
		return s.k(core.Unit{})
	}
	s.i = i
	s.begin()
	return s.entry()
}
