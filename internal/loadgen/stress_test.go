package loadgen_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/vclock"
)

// TestStressAdversarialReplayIsDeterministic drives a seeded adversarial
// scenario — good closed-loop clients sharing a slot-limited, hardened
// server with a hostile fleet whose attack mode is drawn from the seed —
// twice with the same seed, and requires every shed, reap, and goodput
// counter to replay bit-for-bit. The seed is logged on each run; replay
// a failure exactly with STRESS_SEED=<seed> make adversarial-smoke.
func TestStressAdversarialReplayIsDeterministic(t *testing.T) {
	seed := uint64(time.Now().UnixNano())
	if s := os.Getenv("STRESS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad STRESS_SEED %q: %v", s, err)
		}
		seed = v
	}
	modes := []loadgen.AttackMode{
		loadgen.AttackSlowloris, loadgen.AttackIdle,
		loadgen.AttackReadStall, loadgen.AttackChurn,
	}
	mode := modes[seed%uint64(len(modes))]
	t.Logf("stress seed %d, mode %s (replay with STRESS_SEED=%d)", seed, mode, seed)

	a := adversarialStressCounters(t, seed, mode)
	b := adversarialStressCounters(t, seed, mode)
	for name, av := range a {
		if bv := b[name]; av != bv {
			t.Errorf("[seed %d] counter %s: %d then %d across replays", seed, name, av, bv)
		}
	}
	if t.Failed() {
		t.Fatalf("adversarial counters did not replay; full snapshots:\nrun A: %v\nrun B: %v", a, b)
	}
	if a["gen.requests"] == 0 {
		t.Fatal("good clients completed zero requests; stress is vacuous")
	}
	if mode != loadgen.AttackChurn && a["lifecycle.total"] == 0 {
		t.Fatalf("[seed %d] hardened server never shed a %s attacker", seed, mode)
	}
}

// adversarialStressCounters runs one seeded contest and snapshots every
// lifecycle and goodput counter.
func adversarialStressCounters(t *testing.T, seed uint64, mode loadgen.AttackMode) map[string]int64 {
	t.Helper()
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.DefaultGeometry()))
	if err := loadgen.MakeFileset(fs, 4, 16384); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()
	srv := httpd.NewServer(io, httpd.ServerConfig{
		CacheBytes: 1 << 20,
		Overload:   &httpd.OverloadConfig{MaxConns: 8, Backlog: 16},
		Lifecycle: &httpd.LifecycleConfig{
			IdleTimeout:       10 * time.Millisecond,
			HeaderTimeout:     10 * time.Millisecond,
			BodyTimeout:       10 * time.Millisecond,
			WriteStallTimeout: 10 * time.Millisecond,
		},
	})
	rt.Spawn(srv.ListenAndServe("web:80"))

	adv := loadgen.NewAdversary(io, loadgen.AttackConfig{
		Addr:      "web:80",
		Attackers: 8,
		Mode:      mode,
		Seed:      seed,
		Interval:  2 * time.Millisecond,
		Duration:  100 * time.Millisecond,
		Files:     4,
	})
	gen := loadgen.New(io, loadgen.Config{
		Addr:              "web:80",
		Clients:           8,
		Files:             4,
		RequestsPerClient: 8,
		Seed:              seed,
		ConnectRetries:    200,
		ConnectBackoff:    500 * time.Microsecond,
	})
	advDone := make(chan struct{})
	genDone := make(chan struct{})
	// One root spawn, forking the adversary from inside the worker: two
	// separate Spawns race the worker at GOMAXPROCS>1 — the first
	// population can arm timers and advance virtual time before the
	// second is published, which perturbs every later (when, seq) pair.
	rt.Spawn(core.Then(
		core.Fork(core.Then(adv.Run(), core.Do(func() { close(advDone) }))),
		core.Then(gen.Run(), core.Do(func() { close(genDone) })),
	))
	<-advDone
	<-genDone
	rt.WaitLive(1)

	st := srv.LifecycleStats()
	return map[string]int64{
		"gen.requests":        int64(gen.Requests.Load()),
		"gen.errors":          int64(gen.Errors.Load()),
		"gen.2xx":             int64(gen.Statuses[2].Load()),
		"adv.conns":           int64(adv.Conns.Load()),
		"adv.torndown":        int64(adv.Torndown.Load()),
		"adv.sent":            int64(adv.Sent.Load()),
		"lifecycle.idle":      int64(st.ReapedIdle),
		"lifecycle.header":    int64(st.ShedHeader),
		"lifecycle.body":      int64(st.ShedBody),
		"lifecycle.write":     int64(st.ShedWrite),
		"lifecycle.total":     int64(st.Total()),
		"httpd.forced_closes": srv.Metrics().Snapshot().Counter("forced_closes"),
	}
}
