package loadgen

import (
	"errors"
	"sync/atomic"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/hio"
	"hybrid/internal/kernel"
	"hybrid/internal/vclock"
)

// AttackMode selects one adversarial client behavior. Each mode targets a
// different connection-lifecycle phase, matching one LifecycleConfig
// deadline; against an unhardened server each pins connection slots (and
// the paper's per-thread state) indefinitely.
type AttackMode int

const (
	// AttackSlowloris opens a connection and trickles header bytes, one
	// per Interval, never completing the request head.
	AttackSlowloris AttackMode = iota
	// AttackIdle opens a connection and never sends a byte.
	AttackIdle
	// AttackReadStall pipelines Pipeline GETs and never reads the
	// responses, pinning them in the socket buffer until the server's
	// writes stall.
	AttackReadStall
	// AttackChurn opens a connection, sends a request-line fragment, and
	// abandons it (close, reconnect) every Interval — connection-setup
	// pressure rather than slot pinning.
	AttackChurn
)

func (m AttackMode) String() string {
	switch m {
	case AttackSlowloris:
		return "slowloris"
	case AttackIdle:
		return "idle"
	case AttackReadStall:
		return "read-stall"
	case AttackChurn:
		return "churn"
	}
	return "unknown"
}

// AttackConfig parameterizes an adversarial run.
type AttackConfig struct {
	// Addr is the victim's kernel-socket address.
	Addr string
	// Attackers is the number of concurrent hostile client threads.
	Attackers int
	// Mode is the behavior every attacker exhibits.
	Mode AttackMode
	// Seed makes attacker pacing jitter deterministic.
	Seed uint64
	// Interval paces the attack: the byte-trickle period (slowloris),
	// the churn cycle, and the reconnect delay after a shed. Default 5ms.
	Interval vclock.Duration
	// Duration is the virtual-time horizon; attackers wind down once the
	// clock passes start+Duration even if the server never sheds them.
	Duration vclock.Duration
	// Files is the fileset size read-stall GETs draw from. Default 1.
	Files int
	// Pipeline is how many GETs a read-stall attacker sends without
	// reading. Default 8 (128 KB of 16 KB responses — twice the
	// per-direction socket buffer, so the victim's write always stalls).
	Pipeline int
}

func (c AttackConfig) withDefaults() AttackConfig {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.Files <= 0 {
		c.Files = 1
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 8
	}
	return c
}

// Adversary drives hostile client threads and accumulates counters. All
// pacing runs on the virtual clock, so an adversarial run is exactly as
// deterministic as a well-behaved one.
type Adversary struct {
	io  *hio.IO
	cfg AttackConfig

	// Conns counts connections the adversary opened.
	Conns atomic.Uint64
	// Torndown counts connections the victim tore down under the
	// attacker (shed, reap, or reset) — each is one defense firing.
	Torndown atomic.Uint64
	// Sent counts attack bytes that reached the socket.
	Sent atomic.Uint64
}

// NewAdversary creates an adversarial generator over the client-side I/O
// layer.
func NewAdversary(io *hio.IO, cfg AttackConfig) *Adversary {
	return &Adversary{io: io, cfg: cfg.withDefaults()}
}

// Run launches the attacker threads and returns when every one has wound
// down (shed past the horizon, or parked until the horizon expired).
func (a *Adversary) Run() core.M[core.Unit] {
	wg := core.NewWaitGroup(a.cfg.Attackers)
	clk := a.io.Clock()
	return core.Bind(core.NBIO(clk.Now), func(start vclock.Time) core.M[core.Unit] {
		deadline := start + vclock.Time(a.cfg.Duration)
		return core.Then(
			core.ForN(a.cfg.Attackers, func(i int) core.M[core.Unit] {
				return core.Fork(core.Finally(a.attacker(i, deadline), wg.Done()))
			}),
			wg.Wait(),
		)
	})
}

// attacker is one hostile client thread: attack, observe the teardown,
// reconnect, repeat until the horizon.
func (a *Adversary) attacker(id int, deadline vclock.Time) core.M[core.Unit] {
	rng := a.cfg.Seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	clk := a.io.Clock()
	var cycle func() core.M[core.Unit]
	cycle = func() core.M[core.Unit] {
		return core.Bind(core.NBIO(clk.Now), func(now vclock.Time) core.M[core.Unit] {
			if now >= deadline {
				return core.Skip
			}
			one := core.Bind(a.io.SockConnect(a.cfg.Addr), func(fd kernel.FD) core.M[core.Unit] {
				a.Conns.Add(1)
				return core.Finally(a.engage(fd, next, deadline), a.closeQuiet(fd))
			})
			// Any teardown — server shed, reset, refused reconnect — is
			// one observed defense firing; pause, then go again.
			return core.Then(
				core.Catch(one, func(err error) core.M[core.Unit] {
					// Winding down at the horizon is not a defense firing.
					if !errors.Is(err, core.ErrTimedOut) {
						a.Torndown.Add(1)
					}
					return core.Skip
				}),
				core.Then(a.io.Sleep(a.cfg.Interval), cycle()),
			)
		})
	}
	// Stagger attacker starts across one interval so a thousand attackers
	// don't phase-lock.
	jitter := vclock.Duration(next() % uint64(a.cfg.Interval))
	return core.Then(a.io.Sleep(jitter), cycle())
}

// engage runs one connection's worth of hostile behavior. It throws when
// the victim tears the connection down, and returns normally when the
// attacker abandons it (churn) or the horizon passes.
func (a *Adversary) engage(fd kernel.FD, next func() uint64, deadline vclock.Time) core.M[core.Unit] {
	clk := a.io.Clock()
	switch a.cfg.Mode {
	case AttackIdle:
		// Park on a read that only the victim can finish. The horizon
		// bounds it so defense-off runs still terminate.
		return core.WithDeadline(clk, deadline,
			core.Bind(a.io.SockRead(fd, make([]byte, 16)), func(int) core.M[core.Unit] {
				return core.Throw[core.Unit](errTorndown)
			}))

	case AttackSlowloris:
		head := "GET /" + FileName(0) + " HTTP/1.1\r\nHost: loris\r\nX-Pad: "
		var drip func(i int) core.M[core.Unit]
		drip = func(i int) core.M[core.Unit] {
			return core.Bind(core.NBIO(clk.Now), func(now vclock.Time) core.M[core.Unit] {
				if now >= deadline {
					return core.Skip
				}
				b := byte('a')
				if i < len(head) {
					b = head[i]
				}
				return core.Bind(a.io.SockSend(fd, []byte{b}), func(n int) core.M[core.Unit] {
					a.Sent.Add(uint64(n))
					return core.Then(a.io.Sleep(a.cfg.Interval), drip(i+1))
				})
			})
		}
		return drip(0)

	case AttackReadStall:
		// Pipeline enough responses to overflow the socket buffer, then
		// go silent; poke a byte down the pipe each interval so the shed
		// becomes observable as a send failure.
		var reqs []byte
		for i := 0; i < a.cfg.Pipeline; i++ {
			name := FileName(int(next() % uint64(a.cfg.Files)))
			reqs = append(reqs, []byte("GET /"+name+" HTTP/1.1\r\nHost: stall\r\nConnection: keep-alive\r\n\r\n")...)
		}
		var lurk func() core.M[core.Unit]
		lurk = func() core.M[core.Unit] {
			return core.Bind(core.NBIO(clk.Now), func(now vclock.Time) core.M[core.Unit] {
				if now >= deadline {
					return core.Skip
				}
				// Poke a byte down the pipe so a shed surfaces as a send
				// failure instead of passing silently.
				return core.Then(a.io.Sleep(a.cfg.Interval),
					core.Bind(a.io.SockSend(fd, []byte{'.'}), func(n int) core.M[core.Unit] {
						a.Sent.Add(uint64(n))
						return lurk()
					}))
			})
		}
		return core.Then(
			core.Bind(a.io.SockSend(fd, reqs), func(n int) core.M[core.Unit] {
				a.Sent.Add(uint64(n))
				return core.Skip
			}),
			lurk(),
		)

	case AttackChurn:
		// A fragment of a request line, then abandon the connection.
		frag := []byte("GET /file-")
		return core.Bind(a.io.SockSend(fd, frag), func(n int) core.M[core.Unit] {
			a.Sent.Add(uint64(n))
			return core.Skip
		})
	}
	return core.Skip
}

// closeQuiet closes fd, swallowing the error a victim-initiated teardown
// already left on it.
func (a *Adversary) closeQuiet(fd kernel.FD) core.M[core.Unit] {
	return core.Catch(a.io.CloseFD(fd), func(error) core.M[core.Unit] { return core.Skip })
}

var errTorndown = &torndownError{}

type torndownError struct{}

func (*torndownError) Error() string { return "loadgen: victim tore the connection down" }
