package loadgen_test

import (
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/vclock"
)

func TestFileNameStable(t *testing.T) {
	if loadgen.FileName(0) != "file-0" || loadgen.FileName(12345) != "file-12345" {
		t.Fatal("file naming changed; benchmarks depend on it")
	}
}

func TestMakeFileset(t *testing.T) {
	fs := kernel.NewFS(disk.New(vclock.NewVirtual(), disk.DefaultGeometry()))
	if err := loadgen.MakeFileset(fs, 10, 4096); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f, err := fs.Open(loadgen.FileName(i))
		if err != nil {
			t.Fatal(err)
		}
		if f.Size() != 4096 {
			t.Fatalf("file %d size %d", i, f.Size())
		}
	}
	if err := loadgen.MakeFileset(fs, 1, 1); err == nil {
		t.Fatal("duplicate fileset creation succeeded")
	}
}

func TestGeneratorAgainstServer(t *testing.T) {
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.DefaultGeometry()))
	if err := loadgen.MakeFileset(fs, 8, 2048); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()
	srv := httpd.NewServer(io, httpd.ServerConfig{CacheBytes: 1 << 20})
	rt.Spawn(srv.ListenAndServe("web:80"))

	gen := loadgen.New(io, loadgen.Config{
		Addr: "web:80", Clients: 4, Files: 8, RequestsPerClient: 5, Seed: 3,
		RTT: 100 * time.Microsecond,
	})
	done := make(chan struct{})
	rt.Spawn(core.Then(gen.Run(), core.Do(func() { close(done) })))
	<-done

	if gen.Errors.Load() != 0 {
		t.Fatalf("errors: %d", gen.Errors.Load())
	}
	if gen.Requests.Load() != 20 {
		t.Fatalf("requests = %d", gen.Requests.Load())
	}
	if gen.Bytes.Load() != 20*2048 {
		t.Fatalf("bytes = %d", gen.Bytes.Load())
	}
	// RTT must appear in virtual time: 5 sequential requests per client
	// × 100µs ≥ 500µs.
	if time.Duration(clk.Now()) < 500*time.Microsecond {
		t.Fatalf("virtual time %v ignores RTT", time.Duration(clk.Now()))
	}
}

func TestGeneratorDeterministicRequests(t *testing.T) {
	run := func() uint64 {
		clk := vclock.NewVirtual()
		k := kernel.New(clk)
		fs := kernel.NewFS(disk.New(clk, disk.DefaultGeometry()))
		if err := loadgen.MakeFileset(fs, 16, 1024); err != nil {
			t.Fatal(err)
		}
		rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
		defer rt.Shutdown()
		io := hio.New(rt, k, fs)
		defer io.Close()
		srv := httpd.NewServer(io, httpd.ServerConfig{CacheBytes: 4 << 20})
		rt.Spawn(srv.ListenAndServe("web:80"))
		gen := loadgen.New(io, loadgen.Config{
			Addr: "web:80", Clients: 2, Files: 16, RequestsPerClient: 8, Seed: 99,
		})
		done := make(chan struct{})
		rt.Spawn(core.Then(gen.Run(), core.Do(func() { close(done) })))
		<-done
		hits, misses, _ := srv.Cache().Stats()
		return hits*1_000_000 + misses
	}
	if run() != run() {
		t.Fatal("same seed produced different request streams")
	}
}

func TestGeneratorConnectFailureCounted(t *testing.T) {
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, nil)
	defer io.Close()
	gen := loadgen.New(io, loadgen.Config{
		Addr: "nobody:80", Clients: 3, Files: 1, RequestsPerClient: 1, Seed: 1,
	})
	done := make(chan struct{})
	rt.Spawn(core.Then(gen.Run(), core.Do(func() { close(done) })))
	<-done
	if gen.Errors.Load() != 3 {
		t.Fatalf("errors = %d, want 3", gen.Errors.Load())
	}
	if gen.Requests.Load() != 0 {
		t.Fatalf("requests = %d", gen.Requests.Load())
	}
}
