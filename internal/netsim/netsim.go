// Package netsim simulates a packet network: named hosts exchanging opaque
// datagrams over links with bandwidth, propagation latency, loss,
// duplication, and reordering. It is the substrate under the application-
// level TCP stack (paper §4.8) and stands in for the 100 Mbps Ethernet of
// the paper's testbed.
//
// All timing is charged on a vclock.Clock, so simulations are
// deterministic given a seed: egress links serialize packets at their
// bandwidth, and arrivals are delivered as clock events to the receiving
// host's handler — the packet-input events that the paper's
// worker_tcp_input loop consumes.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hybrid/internal/faults"
	"hybrid/internal/vclock"
)

// LinkParams shape a host's egress link.
type LinkParams struct {
	// Bandwidth in bytes per second; 0 means infinitely fast.
	Bandwidth int64
	// Latency is one-way propagation delay.
	Latency time.Duration
	// LossProb is the probability a packet is dropped in flight.
	LossProb float64
	// DupProb is the probability a packet is delivered twice.
	DupProb float64
	// ReorderProb is the probability a packet receives extra random
	// delay (up to 4x latency), arriving out of order.
	ReorderProb float64
	// QueueLimit bounds the egress queue in bytes; packets beyond it are
	// tail-dropped. 0 means 256 KB.
	QueueLimit int
}

func (p LinkParams) withDefaults() LinkParams {
	if p.QueueLimit == 0 {
		p.QueueLimit = 256 * 1024
	}
	return p
}

// Ethernet100 models the paper's test network: 100 Mbps, 100 µs one-way.
func Ethernet100() LinkParams {
	return LinkParams{Bandwidth: 100_000_000 / 8, Latency: 100 * time.Microsecond}
}

// Handler receives a datagram delivered to a host.
type Handler func(src string, payload []byte)

// PathSpec shapes one *directed* host pair, layered on top of the sender's
// egress link parameters. It exists for loss experiments that need
// asymmetric conditions (drop the data direction, keep the ACK path clean)
// and for exactly-replayable conformance traces: DropSeq names specific
// packets by per-path transmission index, with no randomness involved.
type PathSpec struct {
	// LossProb is an extra independent drop probability for this
	// direction, drawn from the network's seeded RNG.
	LossProb float64
	// DropSeq lists 0-based per-path packet indices to drop
	// deterministically (every Send on the path counts, including ones
	// already doomed by other loss sources).
	DropSeq []uint64
}

// pathKey identifies a directed host pair.
type pathKey struct{ src, dst string }

// pathState is the live per-direction accounting for a PathSpec.
type pathState struct {
	spec    PathSpec
	dropSet map[uint64]struct{}
	count   uint64 // packets offered on this path so far
}

// Network is a set of hosts sharing a clock and a seeded RNG.
type Network struct {
	clock vclock.Clock
	mu    sync.Mutex
	hosts map[string]*Host
	rng   *rand.Rand
	paths map[pathKey]*pathState

	// Stats
	sent, delivered, dropped, duplicated uint64
	bytesSent                            uint64

	// faults, when non-nil, injects extra loss, duplication, and reorder
	// jitter on top of the links' own parameters, per its deterministic
	// plan.
	faults *faults.Injector
}

// New creates a network on the given clock with a deterministic RNG seed.
func New(clock vclock.Clock, seed int64) *Network {
	return &Network{
		clock: clock,
		hosts: make(map[string]*Host),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Clock reports the network's timing domain.
func (n *Network) Clock() vclock.Clock { return n.clock }

// SetFaults attaches a fault injector: subsequent packets may be
// dropped, duplicated, or delayed (reordered) beyond what the link
// parameters already model. Call during setup, before traffic flows.
func (n *Network) SetFaults(in *faults.Injector) { n.faults = in }

// SetPath installs a per-direction spec for packets from src to dst.
// Call during setup, before traffic flows; paths without a spec draw no
// extra randomness, so adding one path leaves others' RNG streams (and
// any existing experiment's byte-level output) untouched.
func (n *Network) SetPath(src, dst string, spec PathSpec) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.paths == nil {
		n.paths = make(map[pathKey]*pathState)
	}
	st := &pathState{spec: spec}
	if len(spec.DropSeq) > 0 {
		st.dropSet = make(map[uint64]struct{}, len(spec.DropSeq))
		for _, i := range spec.DropSeq {
			st.dropSet[i] = struct{}{}
		}
	}
	n.paths[pathKey{src, dst}] = st
}

// Stats reports packet counters: sent, delivered, dropped, duplicated.
func (n *Network) Stats() (sent, delivered, dropped, duplicated uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.delivered, n.dropped, n.duplicated
}

// Host attaches a new host with the given egress link parameters.
func (n *Network) Host(addr string, link LinkParams) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[addr]; dup {
		return nil, fmt.Errorf("netsim: host %q already exists", addr)
	}
	h := &Host{net: n, addr: addr, link: link.withDefaults()}
	n.hosts[addr] = h
	return h, nil
}

// Host is one attached endpoint.
type Host struct {
	net  *Network
	addr string
	link LinkParams

	mu       sync.Mutex
	handler  Handler
	nextFree vclock.Time // when the egress link finishes its current packet
	queued   int         // bytes committed to the egress queue
}

// Addr reports the host's address.
func (h *Host) Addr() string { return h.addr }

// Clock reports the timing domain of the host's network.
func (h *Host) Clock() vclock.Clock { return h.net.clock }

// SetHandler installs the datagram receiver. Handlers run on the clock's
// event context (they hold the clock busy while running).
func (h *Host) SetHandler(fn Handler) {
	h.mu.Lock()
	h.handler = fn
	h.mu.Unlock()
}

// Send transmits a datagram to dst. The payload is copied, so the caller
// may reuse the buffer. Loss and overflow are silent, as on a real wire.
func (h *Host) Send(dst string, payload []byte) {
	n := h.net
	n.mu.Lock()
	peer := n.hosts[dst]
	n.sent++
	n.bytesSent += uint64(len(payload))
	if peer == nil {
		n.dropped++
		n.mu.Unlock()
		return
	}
	loss := n.rng.Float64() < h.link.LossProb
	dup := n.rng.Float64() < h.link.DupProb
	reorder := n.rng.Float64() < h.link.ReorderProb
	var jitter time.Duration
	if reorder {
		jitter = time.Duration(n.rng.Int63n(int64(4*h.link.Latency) + 1))
	}
	if st, ok := n.paths[pathKey{h.addr, dst}]; ok {
		idx := st.count
		st.count++
		if st.spec.LossProb > 0 && n.rng.Float64() < st.spec.LossProb {
			loss = true
		}
		if _, drop := st.dropSet[idx]; drop {
			loss = true
		}
	}
	n.mu.Unlock()

	// Injected faults are OR-ed onto the link model's own draws, so a
	// plan can make even a clean link hostile.
	loss = loss || n.faults.Fire(faults.NetDrop)
	dup = dup || n.faults.Fire(faults.NetDup)
	jitter += n.faults.Latency(faults.NetReorder, 4*h.link.Latency+time.Millisecond)

	h.mu.Lock()
	if h.queued+len(payload) > h.link.QueueLimit {
		h.mu.Unlock()
		n.mu.Lock()
		n.dropped++
		n.mu.Unlock()
		return
	}
	now := h.net.clock.Now()
	start := h.nextFree
	if start < now {
		start = now
	}
	var txTime time.Duration
	if h.link.Bandwidth > 0 {
		txTime = time.Duration(int64(len(payload)) * int64(time.Second) / h.link.Bandwidth)
	}
	h.nextFree = start + vclock.Time(txTime)
	h.queued += len(payload)
	depart := h.nextFree
	h.mu.Unlock()

	data := make([]byte, len(payload))
	copy(data, payload)

	// The packet leaves the queue at depart; it arrives Latency (+jitter)
	// later, unless lost.
	h.net.clock.After(time.Duration(depart-now), func() {
		h.mu.Lock()
		h.queued -= len(data)
		h.mu.Unlock()
		if loss {
			n.mu.Lock()
			n.dropped++
			n.mu.Unlock()
			return
		}
		deliver := func() {
			h.net.clock.After(h.link.Latency+jitter, func() {
				peer.deliver(h.addr, data)
			})
		}
		deliver()
		if dup {
			n.mu.Lock()
			n.duplicated++
			n.mu.Unlock()
			deliver()
		}
	})
}

func (h *Host) deliver(src string, data []byte) {
	h.mu.Lock()
	fn := h.handler
	h.mu.Unlock()
	n := h.net
	n.mu.Lock()
	n.delivered++
	n.mu.Unlock()
	if fn != nil {
		fn(src, data)
	}
}
