package netsim

import (
	"testing"
	"time"

	"hybrid/internal/vclock"
)

func pair(t *testing.T, link LinkParams) (*Network, *Host, *Host, *vclock.VirtualClock) {
	t.Helper()
	clk := vclock.NewVirtual()
	n := New(clk, 1)
	a, err := n.Host("a", link)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Host("b", link)
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b, clk
}

func TestDeliverBasic(t *testing.T) {
	_, a, b, clk := pair(t, LinkParams{Latency: time.Millisecond})
	var got []byte
	var src string
	var at vclock.Time
	b.SetHandler(func(s string, p []byte) { src, got, at = s, p, clk.Now() })
	clk.Enter()
	a.Send("b", []byte("hi"))
	clk.Exit()
	if string(got) != "hi" || src != "a" {
		t.Fatalf("got %q from %q", got, src)
	}
	if at != vclock.Time(time.Millisecond) {
		t.Fatalf("arrived at %v, want 1ms", at)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	// Two 1000-byte packets at 1 MB/s: second arrives 1 ms after first.
	_, a, b, clk := pair(t, LinkParams{Bandwidth: 1_000_000, Latency: 0})
	var times []vclock.Time
	b.SetHandler(func(string, []byte) { times = append(times, clk.Now()) })
	clk.Enter()
	a.Send("b", make([]byte, 1000))
	a.Send("b", make([]byte, 1000))
	clk.Exit()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := time.Duration(times[1] - times[0])
	if gap != time.Millisecond {
		t.Fatalf("serialization gap = %v, want 1ms", gap)
	}
}

func TestLossDropsRoughlyProportionally(t *testing.T) {
	_, a, b, clk := pair(t, LinkParams{LossProb: 0.5})
	got := 0
	b.SetHandler(func(string, []byte) { got++ })
	clk.Enter()
	const sent = 2000
	for i := 0; i < sent; i++ {
		a.Send("b", []byte{1})
	}
	clk.Exit()
	if got < sent/3 || got > 2*sent/3 {
		t.Fatalf("delivered %d of %d at 50%% loss", got, sent)
	}
}

func TestDuplication(t *testing.T) {
	_, a, b, clk := pair(t, LinkParams{DupProb: 1.0})
	got := 0
	b.SetHandler(func(string, []byte) { got++ })
	clk.Enter()
	a.Send("b", []byte{1})
	clk.Exit()
	if got != 2 {
		t.Fatalf("delivered %d copies, want 2", got)
	}
}

func TestUnknownHostDropped(t *testing.T) {
	n, a, _, clk := pair(t, LinkParams{})
	clk.Enter()
	a.Send("nowhere", []byte{1})
	clk.Exit()
	if _, _, dropped, _ := n.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestQueueOverflowTailDrop(t *testing.T) {
	_, a, b, clk := pair(t, LinkParams{Bandwidth: 1000, QueueLimit: 1500})
	got := 0
	b.SetHandler(func(string, []byte) { got++ })
	clk.Enter()
	for i := 0; i < 10; i++ {
		a.Send("b", make([]byte, 1000)) // only the first fits alongside another
	}
	clk.Exit()
	if got >= 10 {
		t.Fatalf("no tail drop: %d delivered", got)
	}
	if got == 0 {
		t.Fatal("everything dropped")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	runOnce := func() (int, vclock.Time) {
		clk := vclock.NewVirtual()
		n := New(clk, 99)
		a, _ := n.Host("a", LinkParams{LossProb: 0.3, Latency: time.Millisecond})
		b, _ := n.Host("b", LinkParams{})
		got := 0
		b.SetHandler(func(string, []byte) { got++ })
		clk.Enter()
		for i := 0; i < 500; i++ {
			a.Send("b", []byte{byte(i)})
		}
		clk.Exit()
		return got, clk.Now()
	}
	g1, t1 := runOnce()
	g2, t2 := runOnce()
	if g1 != g2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", g1, t1, g2, t2)
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	clk := vclock.NewVirtual()
	n := New(clk, 1)
	if _, err := n.Host("x", LinkParams{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Host("x", LinkParams{}); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestPayloadIsolatedFromCallerBuffer(t *testing.T) {
	_, a, b, clk := pair(t, LinkParams{Latency: time.Millisecond})
	var got []byte
	b.SetHandler(func(_ string, p []byte) { got = p })
	buf := []byte("original")
	clk.Enter()
	a.Send("b", buf)
	copy(buf, "CLOBBER!")
	clk.Exit()
	if string(got) != "original" {
		t.Fatalf("payload aliased caller buffer: %q", got)
	}
}
