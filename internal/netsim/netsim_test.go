package netsim

import (
	"testing"
	"time"

	"hybrid/internal/vclock"
)

func pair(t *testing.T, link LinkParams) (*Network, *Host, *Host, *vclock.VirtualClock) {
	t.Helper()
	clk := vclock.NewVirtual()
	n := New(clk, 1)
	a, err := n.Host("a", link)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Host("b", link)
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b, clk
}

func TestDeliverBasic(t *testing.T) {
	_, a, b, clk := pair(t, LinkParams{Latency: time.Millisecond})
	var got []byte
	var src string
	var at vclock.Time
	b.SetHandler(func(s string, p []byte) { src, got, at = s, p, clk.Now() })
	clk.Enter()
	a.Send("b", []byte("hi"))
	clk.Exit()
	if string(got) != "hi" || src != "a" {
		t.Fatalf("got %q from %q", got, src)
	}
	if at != vclock.Time(time.Millisecond) {
		t.Fatalf("arrived at %v, want 1ms", at)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	// Two 1000-byte packets at 1 MB/s: second arrives 1 ms after first.
	_, a, b, clk := pair(t, LinkParams{Bandwidth: 1_000_000, Latency: 0})
	var times []vclock.Time
	b.SetHandler(func(string, []byte) { times = append(times, clk.Now()) })
	clk.Enter()
	a.Send("b", make([]byte, 1000))
	a.Send("b", make([]byte, 1000))
	clk.Exit()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := time.Duration(times[1] - times[0])
	if gap != time.Millisecond {
		t.Fatalf("serialization gap = %v, want 1ms", gap)
	}
}

func TestLossDropsRoughlyProportionally(t *testing.T) {
	_, a, b, clk := pair(t, LinkParams{LossProb: 0.5})
	got := 0
	b.SetHandler(func(string, []byte) { got++ })
	clk.Enter()
	const sent = 2000
	for i := 0; i < sent; i++ {
		a.Send("b", []byte{1})
	}
	clk.Exit()
	if got < sent/3 || got > 2*sent/3 {
		t.Fatalf("delivered %d of %d at 50%% loss", got, sent)
	}
}

func TestDuplication(t *testing.T) {
	_, a, b, clk := pair(t, LinkParams{DupProb: 1.0})
	got := 0
	b.SetHandler(func(string, []byte) { got++ })
	clk.Enter()
	a.Send("b", []byte{1})
	clk.Exit()
	if got != 2 {
		t.Fatalf("delivered %d copies, want 2", got)
	}
}

func TestUnknownHostDropped(t *testing.T) {
	n, a, _, clk := pair(t, LinkParams{})
	clk.Enter()
	a.Send("nowhere", []byte{1})
	clk.Exit()
	if _, _, dropped, _ := n.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestQueueOverflowTailDrop(t *testing.T) {
	_, a, b, clk := pair(t, LinkParams{Bandwidth: 1000, QueueLimit: 1500})
	got := 0
	b.SetHandler(func(string, []byte) { got++ })
	clk.Enter()
	for i := 0; i < 10; i++ {
		a.Send("b", make([]byte, 1000)) // only the first fits alongside another
	}
	clk.Exit()
	if got >= 10 {
		t.Fatalf("no tail drop: %d delivered", got)
	}
	if got == 0 {
		t.Fatal("everything dropped")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	runOnce := func() (int, vclock.Time) {
		clk := vclock.NewVirtual()
		n := New(clk, 99)
		a, _ := n.Host("a", LinkParams{LossProb: 0.3, Latency: time.Millisecond})
		b, _ := n.Host("b", LinkParams{})
		got := 0
		b.SetHandler(func(string, []byte) { got++ })
		clk.Enter()
		for i := 0; i < 500; i++ {
			a.Send("b", []byte{byte(i)})
		}
		clk.Exit()
		return got, clk.Now()
	}
	g1, t1 := runOnce()
	g2, t2 := runOnce()
	if g1 != g2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", g1, t1, g2, t2)
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	clk := vclock.NewVirtual()
	n := New(clk, 1)
	if _, err := n.Host("x", LinkParams{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Host("x", LinkParams{}); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestPayloadIsolatedFromCallerBuffer(t *testing.T) {
	_, a, b, clk := pair(t, LinkParams{Latency: time.Millisecond})
	var got []byte
	b.SetHandler(func(_ string, p []byte) { got = p })
	buf := []byte("original")
	clk.Enter()
	a.Send("b", buf)
	copy(buf, "CLOBBER!")
	clk.Exit()
	if string(got) != "original" {
		t.Fatalf("payload aliased caller buffer: %q", got)
	}
}

func TestPathDropSeqDropsExactPackets(t *testing.T) {
	n, a, b, clk := pair(t, LinkParams{Latency: time.Millisecond})
	n.SetPath("a", "b", PathSpec{DropSeq: []uint64{1, 3}})
	var got []byte
	b.SetHandler(func(_ string, p []byte) { got = append(got, p...) })
	clk.Enter()
	for _, m := range []string{"0", "1", "2", "3", "4"} {
		a.Send("b", []byte(m))
	}
	clk.Exit()
	if string(got) != "024" {
		t.Fatalf("delivered %q, want packets 1 and 3 dropped", got)
	}
}

func TestPathSpecIsDirectional(t *testing.T) {
	// Loss on a->b must not touch b->a, and with LossProb=1 nothing gets
	// through in the shaped direction.
	n, a, b, clk := pair(t, LinkParams{Latency: time.Millisecond})
	n.SetPath("a", "b", PathSpec{LossProb: 1})
	var atB, atA int
	b.SetHandler(func(string, []byte) { atB++ })
	a.SetHandler(func(string, []byte) { atA++ })
	clk.Enter()
	for i := 0; i < 10; i++ {
		a.Send("b", []byte("x"))
		b.Send("a", []byte("y"))
	}
	clk.Exit()
	if atB != 0 {
		t.Fatalf("shaped direction delivered %d packets", atB)
	}
	if atA != 10 {
		t.Fatalf("reverse direction delivered %d of 10", atA)
	}
}

func TestPathSpecDoesNotPerturbOtherPaths(t *testing.T) {
	// The RNG stream seen by an unshaped network must be identical to the
	// one where a spec exists only on an unrelated path: same seed, same
	// deliveries.
	run := func(shapeExtra bool) []vclock.Time {
		clk := vclock.NewVirtual()
		n := New(clk, 42)
		link := LinkParams{Latency: time.Millisecond, ReorderProb: 0.5}
		a, _ := n.Host("a", link)
		b, _ := n.Host("b", link)
		c, _ := n.Host("c", link)
		_ = c
		if shapeExtra {
			n.SetPath("c", "a", PathSpec{LossProb: 0.9})
		}
		var times []vclock.Time
		b.SetHandler(func(string, []byte) { times = append(times, clk.Now()) })
		clk.Enter()
		for i := 0; i < 20; i++ {
			a.Send("b", []byte("x"))
		}
		clk.Exit()
		return times
	}
	plain, shaped := run(false), run(true)
	if len(plain) != len(shaped) {
		t.Fatalf("delivery counts differ: %d vs %d", len(plain), len(shaped))
	}
	for i := range plain {
		if plain[i] != shaped[i] {
			t.Fatalf("delivery %d at %v vs %v", i, plain[i], shaped[i])
		}
	}
}
