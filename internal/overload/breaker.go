package overload

import (
	"errors"
	"sync"

	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// ErrOpen is returned (or thrown monadically by callers) when the breaker
// sheds a request instead of admitting it to the guarded path.
var ErrOpen = errors.New("overload: circuit open")

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState int32

const (
	// Closed: requests flow; failures are counted.
	Closed BreakerState = iota
	// Open: requests are shed immediately until the cooldown elapses.
	Open
	// HalfOpen: one probe request at a time tests whether the guarded
	// path has recovered.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "invalid"
}

// BreakerConfig tunes the trip and recovery behaviour. The zero value is
// completed by NewBreaker with conservative defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// (default 5).
	FailureThreshold int
	// LatencyThreshold, when > 0, counts any observation at or above this
	// latency as a failure even if the request succeeded — slow is the
	// overload signal, not just broken.
	LatencyThreshold vclock.Duration
	// Cooldown is how long the breaker stays Open before probing
	// (default 100ms).
	Cooldown vclock.Duration
	// ProbeSuccesses is how many consecutive successful probes close the
	// breaker again (default 1).
	ProbeSuccesses int
}

// Breaker is a circuit breaker for one guarded request path. All state
// transitions read the clock through vclock, so a breaker driven from a
// virtual-time benchmark trips and recovers deterministically.
type Breaker struct {
	clk vclock.Clock
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int         // consecutive failures while Closed
	openedAt vclock.Time // when the breaker last tripped
	probing  bool        // a HalfOpen probe is in flight
	probeOK  int         // consecutive successful probes

	reg    *stats.Registry
	trips  *stats.Counter
	sheds  *stats.Counter
	probes *stats.Counter
	closes *stats.Counter
}

// NewBreaker creates a breaker in the given timing domain, filling in
// defaults for zero config fields. A nil clock uses real time.
func NewBreaker(clk vclock.Clock, cfg BreakerConfig) *Breaker {
	if clk == nil {
		clk = vclock.NewReal()
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 100 * vclock.Duration(1e6)
	}
	if cfg.ProbeSuccesses <= 0 {
		cfg.ProbeSuccesses = 1
	}
	b := &Breaker{clk: clk, cfg: cfg, reg: stats.NewRegistry()}
	b.trips = b.reg.Counter("breaker_trips")
	b.sheds = b.reg.Counter("breaker_sheds")
	b.probes = b.reg.Counter("breaker_probes")
	b.closes = b.reg.Counter("breaker_closes")
	b.reg.GaugeFunc("breaker_state", func() int64 { return int64(b.State()) })
	return b
}

// Metrics exposes the breaker's registry (breaker_trips, breaker_sheds,
// breaker_probes, breaker_closes, breaker_state).
func (b *Breaker) Metrics() *stats.Registry { return b.reg }

// State reports the current state, promoting Open to HalfOpen when the
// cooldown has elapsed (the promotion itself happens in Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && vclock.Duration(b.clk.Now()-b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Allow decides the fate of one request. admit=false means shed now
// (callers respond with a cheap error and never touch the guarded path).
// probe=true marks the request as a half-open probe: its Observe decides
// whether the breaker closes or re-opens. Every admitted request must
// call Observe exactly once.
func (b *Breaker) Allow() (admit, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true, false
	case Open:
		if vclock.Duration(b.clk.Now()-b.openedAt) < b.cfg.Cooldown {
			b.sheds.Inc()
			return false, false
		}
		b.state = HalfOpen
		b.probeOK = 0
		fallthrough
	case HalfOpen:
		if b.probing {
			b.sheds.Inc()
			return false, false
		}
		b.probing = true
		b.probes.Inc()
		return true, true
	}
	panic("overload: invalid breaker state")
}

// Observe records the outcome of an admitted request: a non-nil err, or a
// latency at or beyond the configured threshold, is a failure.
func (b *Breaker) Observe(latency vclock.Duration, err error) {
	failed := err != nil ||
		(b.cfg.LatencyThreshold > 0 && latency >= b.cfg.LatencyThreshold)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if !failed {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		if failed {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.ProbeSuccesses {
			b.state = Closed
			b.fails = 0
			b.probeOK = 0
			b.closes.Inc()
		}
	case Open:
		// A straggler from before the trip; it already counted.
	}
}

// trip moves to Open. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.clk.Now()
	b.fails = 0
	b.probing = false
	b.probeOK = 0
	b.trips.Inc()
}
