// Package overload implements the admission-control and load-shedding
// primitives that keep the paper's thread-per-connection servers stable
// past saturation. The paper's evaluation (§5, Figures 17–19) measures
// throughput up to the knee of the load curve; this package is about what
// happens *after* the knee, where unbounded accept loops grow the ready
// queue without bound and every request's latency diverges.
//
// Two mechanisms, both deterministic under the virtual clock:
//
//   - Limiter gates the accept loop: a bound on in-flight connections
//     plus a token-bucket accept rate. When the limiter blocks, the
//     listener's kernel backlog fills, and further connects are refused
//     by the kernel with a counted ECONNREFUSED — back-pressure reaches
//     the client instead of growing server queues.
//
//   - Breaker wraps a high-cost request path (the blocking-disk path in
//     httpd) with a circuit breaker: consecutive failures or slow
//     responses trip it, tripped requests are shed immediately with a
//     cheap error response, and half-open probes detect recovery.
//
// Everything here is monadic-thread-safe in the same style as core's
// primitives: a plain mutex guards state, never held across a blocking
// point, with parked resume functions dispatched FIFO.
package overload

import (
	"sync"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// LimiterConfig bounds admission. Zero values disable the respective
// mechanism, so the zero config admits everything immediately.
type LimiterConfig struct {
	// MaxInflight is the maximum number of acquired-but-unreleased slots
	// (in-flight connections). 0 means unlimited.
	MaxInflight int
	// Rate is the sustained admission rate in slots per second, enforced
	// with a token bucket. 0 means unlimited.
	Rate float64
	// Burst is the token-bucket depth: how many admissions may proceed
	// back-to-back before pacing kicks in. Values below 1 mean 1.
	Burst int
}

// Limiter is the listener-side admission gate.
type Limiter struct {
	clk      vclock.Clock
	max      int
	interval vclock.Duration // time per token; 0 = unlimited rate
	burst    int64

	mu       sync.Mutex
	inflight int
	waiters  []func(core.Unit)
	tat      vclock.Time // GCRA theoretical arrival time of the next token

	reg      *stats.Registry
	admitted *stats.Counter
	paced    *stats.Counter
	gauge    *stats.Gauge
}

// NewLimiter creates a limiter in the given timing domain. A nil clock
// uses real time.
func NewLimiter(clk vclock.Clock, cfg LimiterConfig) *Limiter {
	if clk == nil {
		clk = vclock.NewReal()
	}
	l := &Limiter{clk: clk, max: cfg.MaxInflight, reg: stats.NewRegistry()}
	if cfg.Rate > 0 {
		l.interval = vclock.Duration(float64(time.Second) / cfg.Rate)
		l.burst = int64(cfg.Burst)
		if l.burst < 1 {
			l.burst = 1
		}
	}
	l.admitted = l.reg.Counter("admitted")
	l.paced = l.reg.Counter("paced")
	l.gauge = l.reg.Gauge("inflight")
	l.reg.GaugeFunc("accept_waiters", func() int64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return int64(len(l.waiters))
	})
	return l
}

// Metrics exposes the limiter's registry (admitted, paced, inflight,
// accept_waiters).
func (l *Limiter) Metrics() *stats.Registry { return l.reg }

// reserve claims the next rate token, returning how long the caller must
// sleep before using it. GCRA formulation: admissions are conformant when
// they arrive no earlier than tat - (burst-1)·interval; each reservation
// advances tat by one interval. Reservations are handed out in call
// order, so a single accept loop paces exactly at the configured rate.
func (l *Limiter) reserve() vclock.Duration {
	if l.interval <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clk.Now()
	earliest := l.tat - vclock.Time((l.burst-1)*int64(l.interval))
	if now >= earliest {
		if now > l.tat {
			l.tat = now
		}
		l.tat += vclock.Time(l.interval)
		return 0
	}
	l.tat += vclock.Time(l.interval)
	return vclock.Duration(earliest - now)
}

// Acquire admits the calling thread: it first paces on the token bucket
// (sleeping until a token is due), then blocks until an in-flight slot is
// free. Pair every successful Acquire with exactly one Release — with
// core.Ensure, so a dying connection thread still gives its slot back.
func (l *Limiter) Acquire() core.M[core.Unit] {
	pace := core.Bind(core.NBIO(l.reserve), func(d vclock.Duration) core.M[core.Unit] {
		if d <= 0 {
			return core.Return(core.Unit{})
		}
		l.paced.Inc()
		return core.Sleep(l.clk, d)
	})
	slot := core.Suspend(func(resume func(core.Unit)) {
		l.mu.Lock()
		if l.max <= 0 || l.inflight < l.max {
			l.inflight++
			l.mu.Unlock()
			l.admitted.Inc()
			l.gauge.Add(1)
			resume(core.Unit{})
			return
		}
		l.waiters = append(l.waiters, resume)
		l.mu.Unlock()
	})
	return core.Then(pace, slot)
}

// TryAcquire admits without blocking: it takes a slot and a token only if
// both are immediately available, reporting whether it did.
func (l *Limiter) TryAcquire() bool {
	l.mu.Lock()
	if l.max > 0 && l.inflight >= l.max {
		l.mu.Unlock()
		return false
	}
	if l.interval > 0 {
		now := l.clk.Now()
		earliest := l.tat - vclock.Time((l.burst-1)*int64(l.interval))
		if now < earliest {
			l.mu.Unlock()
			return false
		}
		if now > l.tat {
			l.tat = now
		}
		l.tat += vclock.Time(l.interval)
	}
	l.inflight++
	l.mu.Unlock()
	l.admitted.Inc()
	l.gauge.Add(1)
	return true
}

// Release returns an in-flight slot, waking the oldest blocked acquirer.
// It is a plain function so it can run on the runtime's abort path as a
// core.Ensure cleanup.
func (l *Limiter) Release() {
	l.mu.Lock()
	if len(l.waiters) > 0 {
		next := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.mu.Unlock()
		// The slot transfers: inflight stays constant.
		l.admitted.Inc()
		next(core.Unit{})
		return
	}
	l.inflight--
	l.mu.Unlock()
	l.gauge.Add(-1)
}

// Inflight reports the current number of held slots.
func (l *Limiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}
