package overload

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/vclock"
)

const ms = vclock.Duration(time.Millisecond)

// waitFor polls until cond holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// MaxInflight admits up to the bound; later acquirers park FIFO and wake
// as slots release.
func TestLimiterInflightBound(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()

	lim := NewLimiter(clk, LimiterConfig{MaxInflight: 2})
	var mu sync.Mutex
	var order []int
	var count atomic.Int64
	admitted := func(i int) core.M[core.Unit] {
		return core.Then(lim.Acquire(), core.Do(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			count.Add(1)
		}))
	}
	for i := 1; i <= 4; i++ {
		rt.Spawn(admitted(i))
	}
	waitFor(t, func() bool { return count.Load() == 2 })
	if lim.Inflight() != 2 {
		t.Fatalf("inflight %d, want 2", lim.Inflight())
	}
	if count.Load() != 2 {
		t.Fatalf("admitted %d threads past MaxInflight 2", count.Load())
	}

	// Each release admits the oldest waiter, in order.
	lim.Release()
	waitFor(t, func() bool { return count.Load() == 3 })
	lim.Release()
	waitFor(t, func() bool { return count.Load() == 4 })
	rt.WaitIdle()

	mu.Lock()
	defer mu.Unlock()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want FIFO %v", order, want)
		}
	}
	// Two slots released, two transferred to waiters and still held.
	if lim.Inflight() != 2 {
		t.Fatalf("inflight %d after two transfers, want 2", lim.Inflight())
	}
}

// The token bucket paces admissions at the configured rate in virtual
// time: burst admissions are free, the rest arrive one interval apart.
func TestLimiterRatePacingDeterministic(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()

	// 100 admissions/second = one per 10ms, burst of 2.
	lim := NewLimiter(clk, LimiterConfig{Rate: 100, Burst: 2})
	var mu sync.Mutex
	var times []vclock.Time
	one := core.Then(lim.Acquire(), core.Do(func() {
		mu.Lock()
		times = append(times, clk.Now())
		mu.Unlock()
	}))
	rt.Run(core.Seq(one, one, one, one))

	mu.Lock()
	defer mu.Unlock()
	want := []vclock.Time{0, 0, vclock.Time(10 * ms), vclock.Time(20 * ms)}
	if len(times) != len(want) {
		t.Fatalf("admissions %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("admission times %v, want %v", times, want)
		}
	}
	snap := lim.Metrics().Snapshot()
	if snap.Counter("paced") != 2 || snap.Counter("admitted") != 4 {
		t.Fatalf("paced=%d admitted=%d, want 2/4", snap.Counter("paced"), snap.Counter("admitted"))
	}
}

// TryAcquire never blocks: it admits only when a slot and token are free.
func TestLimiterTryAcquire(t *testing.T) {
	clk := vclock.NewVirtual()
	lim := NewLimiter(clk, LimiterConfig{MaxInflight: 1})
	if !lim.TryAcquire() {
		t.Fatal("first TryAcquire refused")
	}
	if lim.TryAcquire() {
		t.Fatal("TryAcquire admitted past MaxInflight")
	}
	lim.Release()
	if !lim.TryAcquire() {
		t.Fatal("TryAcquire refused after Release")
	}
}

// A connection thread that panics still releases its admission slot when
// Acquire is paired with Release through core.Ensure — the limiter never
// leaks capacity to dead threads.
func TestLimiterReleaseOnPanickedThread(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk, TrapPanics: true})
	defer rt.Shutdown()

	lim := NewLimiter(clk, LimiterConfig{MaxInflight: 1})
	rt.Run(core.Then(lim.Acquire(),
		core.Ensure(lim.Release, core.Do(func() { panic("conn thread died") }))))
	if got := lim.Inflight(); got != 0 {
		t.Fatalf("inflight %d after panicked thread, want 0 (leaked slot)", got)
	}
	var again atomic.Bool
	rt.Run(core.Then(lim.Acquire(), core.Do(func() { again.Store(true) })))
	if !again.Load() {
		t.Fatal("slot not reusable after panicked thread released it")
	}
}

// The breaker trips after the configured run of consecutive failures,
// sheds while open, probes after the cooldown, and closes on a
// successful probe — all at deterministic virtual times.
func TestBreakerLifecycle(t *testing.T) {
	clk := vclock.NewVirtual()
	b := NewBreaker(clk, BreakerConfig{FailureThreshold: 3, Cooldown: 50 * ms})
	boom := errors.New("disk error")

	// Interleaved success resets the consecutive-failure count.
	b.Observe(0, boom)
	b.Observe(0, boom)
	b.Observe(0, nil)
	for i := 0; i < 3; i++ {
		if admit, _ := b.Allow(); !admit {
			t.Fatalf("closed breaker shed request %d", i)
		}
		b.Observe(0, boom)
	}
	if b.State() != Open {
		t.Fatalf("state %v after 3 consecutive failures, want open", b.State())
	}
	if admit, _ := b.Allow(); admit {
		t.Fatal("open breaker admitted during cooldown")
	}

	// Advance virtual time past the cooldown: next Allow is the probe.
	advance(clk, 50*ms)
	admit, probe := b.Allow()
	if !admit || !probe {
		t.Fatalf("Allow after cooldown = (%v, %v), want probe admission", admit, probe)
	}
	// Only one probe at a time.
	if admit, _ := b.Allow(); admit {
		t.Fatal("second concurrent probe admitted")
	}
	b.Observe(0, nil)
	if b.State() != Closed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}

	snap := b.Metrics().Snapshot()
	if snap.Counter("breaker_trips") != 1 || snap.Counter("breaker_closes") != 1 {
		t.Fatalf("trips=%d closes=%d, want 1/1",
			snap.Counter("breaker_trips"), snap.Counter("breaker_closes"))
	}
	if snap.Counter("breaker_sheds") != 2 || snap.Counter("breaker_probes") != 1 {
		t.Fatalf("sheds=%d probes=%d, want 2/1",
			snap.Counter("breaker_sheds"), snap.Counter("breaker_probes"))
	}
}

// A failed probe re-opens the breaker for a fresh cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := vclock.NewVirtual()
	b := NewBreaker(clk, BreakerConfig{FailureThreshold: 1, Cooldown: 10 * ms})
	b.Observe(0, errors.New("x"))
	advance(clk, 10*ms)
	if admit, probe := b.Allow(); !admit || !probe {
		t.Fatal("probe not admitted after cooldown")
	}
	b.Observe(0, errors.New("still broken"))
	if b.State() != Open {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	if admit, _ := b.Allow(); admit {
		t.Fatal("admitted during the post-probe cooldown")
	}
	advance(clk, 10*ms)
	if admit, probe := b.Allow(); !admit || !probe {
		t.Fatal("no fresh probe after second cooldown")
	}
	b.Observe(0, nil)
	if b.State() != Closed {
		t.Fatalf("state %v, want closed", b.State())
	}
}

// Slow responses count as failures when a latency threshold is set: the
// breaker trips on latency alone, with every request succeeding.
func TestBreakerLatencyThreshold(t *testing.T) {
	clk := vclock.NewVirtual()
	b := NewBreaker(clk, BreakerConfig{
		FailureThreshold: 2,
		LatencyThreshold: 20 * ms,
		Cooldown:         10 * ms,
	})
	b.Observe(19*ms, nil)
	b.Observe(25*ms, nil)
	if b.State() != Closed {
		t.Fatal("tripped with only one slow response")
	}
	b.Observe(20*ms, nil)
	b.Observe(30*ms, nil)
	if b.State() != Open {
		t.Fatalf("state %v after consecutive slow responses, want open", b.State())
	}
}

// ProbeSuccesses > 1 requires a run of good probes before closing.
func TestBreakerMultiProbeRecovery(t *testing.T) {
	clk := vclock.NewVirtual()
	b := NewBreaker(clk, BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         10 * ms,
		ProbeSuccesses:   2,
	})
	b.Observe(0, errors.New("x"))
	advance(clk, 10*ms)
	for i := 0; i < 2; i++ {
		admit, probe := b.Allow()
		if !admit || !probe {
			t.Fatalf("probe %d not admitted", i)
		}
		if i == 0 {
			if b.State() != HalfOpen {
				t.Fatalf("state %v mid-recovery, want half-open", b.State())
			}
		}
		b.Observe(0, nil)
	}
	if b.State() != Closed {
		t.Fatalf("state %v after 2 good probes, want closed", b.State())
	}
}

// advance moves a virtual clock forward by scheduling an empty event —
// time advances when the clock has no busy holds.
func advance(clk *vclock.VirtualClock, d vclock.Duration) {
	done := make(chan struct{})
	clk.After(d, func() { close(done) })
	<-done
}
