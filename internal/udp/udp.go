// Package udp is the datagram half of the application-level network stack.
// The HOL specification the paper derives its transport code from covers
// "TCP, UDP, and sockets" (§4.8, citing Bishop et al.); this package
// implements the UDP side over the same simulated network: unreliable,
// unordered, message-boundary-preserving sockets with bounded receive
// queues, exposed through the same pattern of nonblocking operations plus
// ready hooks, with monadic and blocking wrappers.
//
// One stack owns one netsim host (the kernel owns protocol demux on a real
// NIC; simulated hosts are cheap, so a UDP stack and a TCP stack live on
// separate hosts).
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"hybrid/internal/core"
	"hybrid/internal/netsim"
	"hybrid/internal/vclock"
)

// Errors.
var (
	// ErrWouldBlock reports an empty receive queue.
	ErrWouldBlock = errors.New("udp: operation would block")
	// ErrClosed reports use of a closed socket.
	ErrClosed = errors.New("udp: use of closed socket")
	// ErrAddrInUse reports a duplicate bind.
	ErrAddrInUse = errors.New("udp: port already in use")
	// ErrTooLong reports a payload over the maximum datagram size.
	ErrTooLong = errors.New("udp: datagram too long")
	// ErrMalformed reports an undecodable datagram.
	ErrMalformed = errors.New("udp: malformed datagram")
)

// MaxDatagram bounds a payload (a classic UDP-over-Ethernet-ish limit;
// there is no fragmentation in this stack).
const MaxDatagram = 8192

const headerSize = 2 + 2 + 2 + 4 // ports, length, checksum

// Addr identifies a datagram's source.
type Addr struct {
	Host string
	Port uint16
}

func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// encode serializes a datagram.
func encode(srcPort, dstPort uint16, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint16(buf[0:], srcPort)
	binary.BigEndian.PutUint16(buf[2:], dstPort)
	binary.BigEndian.PutUint16(buf[4:], uint16(len(payload)))
	copy(buf[headerSize:], payload)
	binary.BigEndian.PutUint32(buf[6:], checksum(buf))
	return buf
}

// decode parses and verifies a datagram.
func decode(buf []byte) (srcPort, dstPort uint16, payload []byte, err error) {
	if len(buf) < headerSize {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrMalformed, len(buf))
	}
	want := binary.BigEndian.Uint32(buf[6:])
	binary.BigEndian.PutUint32(buf[6:], 0)
	got := checksum(buf)
	binary.BigEndian.PutUint32(buf[6:], want)
	if got != want {
		return 0, 0, nil, fmt.Errorf("%w: bad checksum", ErrMalformed)
	}
	n := int(binary.BigEndian.Uint16(buf[4:]))
	if n != len(buf)-headerSize {
		return 0, 0, nil, fmt.Errorf("%w: length %d vs %d", ErrMalformed, n, len(buf)-headerSize)
	}
	payload = make([]byte, n)
	copy(payload, buf[headerSize:])
	return binary.BigEndian.Uint16(buf[0:]), binary.BigEndian.Uint16(buf[2:]), payload, nil
}

func checksum(buf []byte) uint32 {
	var a, b uint32 = 1, 0
	for _, c := range buf {
		a = (a + uint32(c)) % 65521
		b = (b + a) % 65521
	}
	return b<<16 | a
}

// Stats counts stack activity.
type Stats struct {
	DatagramsIn, DatagramsOut uint64
	Dropped                   uint64 // queue-full or unbound-port arrivals
	Bad                       uint64
}

// Stack is one host's UDP instance.
type Stack struct {
	host  *netsim.Host
	clock vclock.Clock

	mu       sync.Mutex
	socks    map[uint16]*Socket
	nextPort uint16
	stats    Stats
}

// NewStack attaches a UDP stack to a netsim host.
func NewStack(host *netsim.Host) *Stack {
	s := &Stack{
		host:     host,
		clock:    host.Clock(),
		socks:    make(map[uint16]*Socket),
		nextPort: 49152,
	}
	host.SetHandler(s.input)
	return s
}

// Addr reports the stack's host address.
func (s *Stack) Addr() string { return s.host.Addr() }

// Snapshot returns a copy of the stack's counters.
func (s *Stack) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// input is the datagram-arrival event handler.
func (s *Stack) input(src string, data []byte) {
	srcPort, dstPort, payload, err := decode(data)
	s.mu.Lock()
	if err != nil {
		s.stats.Bad++
		s.mu.Unlock()
		return
	}
	s.stats.DatagramsIn++
	sock := s.socks[dstPort]
	if sock == nil {
		s.stats.Dropped++
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	sock.mu.Lock()
	if sock.closed || len(sock.queue) >= sock.queueCap {
		sock.mu.Unlock()
		s.mu.Lock()
		s.stats.Dropped++
		s.mu.Unlock()
		return
	}
	sock.queue = append(sock.queue, packet{from: Addr{Host: src, Port: srcPort}, data: payload})
	waiters := sock.waiters
	sock.waiters = nil
	sock.mu.Unlock()
	for _, w := range waiters {
		w()
	}
}

// Bind opens a socket on the given port (0 picks an ephemeral port).
func (s *Stack) Bind(port uint16) (*Socket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if port == 0 {
		for tries := 0; tries < 16384; tries++ {
			p := s.nextPort
			s.nextPort++
			if s.nextPort == 0 {
				s.nextPort = 49152
			}
			if _, used := s.socks[p]; !used {
				port = p
				break
			}
		}
		if port == 0 {
			return nil, errors.New("udp: ephemeral ports exhausted")
		}
	} else if _, used := s.socks[port]; used {
		return nil, fmt.Errorf("port %d: %w", port, ErrAddrInUse)
	}
	sock := &Socket{s: s, port: port, queueCap: 128}
	s.socks[port] = sock
	return sock, nil
}

// packet is one queued datagram.
type packet struct {
	from Addr
	data []byte
}

// Socket is a bound UDP socket: a bounded FIFO of received datagrams.
// Arrivals beyond the queue capacity are dropped, as real UDP drops.
type Socket struct {
	s        *Stack
	port     uint16
	mu       sync.Mutex
	queue    []packet
	queueCap int
	waiters  []func()
	closed   bool
}

// Port reports the bound port.
func (k *Socket) Port() uint16 { return k.port }

// SetQueueCap adjusts the receive queue bound (default 128 datagrams).
func (k *Socket) SetQueueCap(n int) {
	k.mu.Lock()
	if n > 0 {
		k.queueCap = n
	}
	k.mu.Unlock()
}

// SendTo transmits one datagram. Delivery is unreliable and unordered;
// there is no error for loss, as with the real thing.
func (k *Socket) SendTo(addr string, port uint16, p []byte) error {
	if len(p) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", ErrTooLong, len(p))
	}
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return ErrClosed
	}
	k.mu.Unlock()
	k.s.mu.Lock()
	k.s.stats.DatagramsOut++
	k.s.mu.Unlock()
	// Hold the clock across the send so a quiescent virtual clock cannot
	// advance mid-operation (see tcp.Stack.enter for the same pattern).
	k.s.clock.Enter()
	k.s.host.Send(addr, encode(k.port, port, p))
	k.s.clock.Exit()
	return nil
}

// TryRecvFrom dequeues one datagram into p, returning its size and
// source, or ErrWouldBlock when the queue is empty. A datagram longer
// than p is truncated (message boundaries are preserved, the tail is
// lost — recvfrom semantics).
func (k *Socket) TryRecvFrom(p []byte) (int, Addr, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return 0, Addr{}, ErrClosed
	}
	if len(k.queue) == 0 {
		return 0, Addr{}, ErrWouldBlock
	}
	pkt := k.queue[0]
	k.queue = k.queue[1:]
	n := copy(p, pkt.data)
	return n, pkt.from, nil
}

// OnRecvReady registers a one-shot callback for when TryRecvFrom may
// succeed.
func (k *Socket) OnRecvReady(cb func()) {
	k.mu.Lock()
	if k.closed || len(k.queue) > 0 {
		k.mu.Unlock()
		cb()
		return
	}
	k.waiters = append(k.waiters, cb)
	k.mu.Unlock()
}

// Close unbinds the socket and wakes blocked receivers with ErrClosed.
func (k *Socket) Close() {
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return
	}
	k.closed = true
	waiters := k.waiters
	k.waiters = nil
	k.mu.Unlock()
	k.s.mu.Lock()
	delete(k.s.socks, k.port)
	k.s.mu.Unlock()
	for _, w := range waiters {
		w()
	}
}

// Pending reports queued datagrams (diagnostics).
func (k *Socket) Pending() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.queue)
}

// ---------------------------------------------------------------------------
// Monadic and blocking wrappers, in the Figure 10 style.
// ---------------------------------------------------------------------------

// RecvResult is one received datagram's metadata.
type RecvResult struct {
	N    int
	From Addr
}

// RecvFromM receives one datagram, parking the thread until one arrives.
func (k *Socket) RecvFromM(p []byte) core.M[RecvResult] {
	var try func() core.M[RecvResult]
	try = func() core.M[RecvResult] {
		return core.Bind(
			core.NBIO(func() (r struct {
				RecvResult
				err error
			}) {
				r.N, r.From, r.err = k.TryRecvFrom(p)
				return r
			}),
			func(r struct {
				RecvResult
				err error
			}) core.M[RecvResult] {
				if errors.Is(r.err, ErrWouldBlock) {
					return core.Then(
						core.Suspend(func(resume func(core.Unit)) {
							k.OnRecvReady(func() { resume(core.Unit{}) })
						}),
						try(),
					)
				}
				if r.err != nil {
					return core.Throw[RecvResult](r.err)
				}
				return core.Return(r.RecvResult)
			},
		)
	}
	return try()
}

// SendToM transmits one datagram from a monadic thread.
func (k *Socket) SendToM(addr string, port uint16, p []byte) core.M[core.Unit] {
	return core.NBIOe(func() (core.Unit, error) {
		return core.Unit{}, k.SendTo(addr, port, p)
	})
}

// RecvFrom blocks the calling goroutine until a datagram arrives
// (Stack.Go-style clock discipline applies on a virtual clock).
func (k *Socket) RecvFrom(p []byte) (int, Addr, error) {
	for {
		n, from, err := k.TryRecvFrom(p)
		if !errors.Is(err, ErrWouldBlock) {
			return n, from, err
		}
		ch := make(chan struct{})
		k.OnRecvReady(func() {
			k.s.clock.Enter()
			close(ch)
		})
		k.s.clock.Exit()
		<-ch
	}
}

// Go runs fn on a goroutine registered with the stack's clock, for use
// with the blocking API under virtual time.
func (s *Stack) Go(fn func()) {
	s.clock.Enter()
	go func() {
		defer s.clock.Exit()
		fn()
	}()
}
