package udp

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/netsim"
	"hybrid/internal/vclock"
)

func pair(t *testing.T, link netsim.LinkParams) (*Stack, *Stack, *vclock.VirtualClock) {
	t.Helper()
	clk := vclock.NewVirtual()
	n := netsim.New(clk, 3)
	ha, err := n.Host("a", link)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := n.Host("b", link)
	if err != nil {
		t.Fatal(err)
	}
	return NewStack(ha), NewStack(hb), clk
}

func TestSendRecvRoundTrip(t *testing.T) {
	a, b, clk := pair(t, netsim.Ethernet100())
	sa, err := a.Bind(1000)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Bind(2000)
	if err != nil {
		t.Fatal(err)
	}
	clk.Enter()
	if err := sa.SendTo("b", 2000, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	clk.Exit()
	buf := make([]byte, 64)
	n, from, err := sb.TryRecvFrom(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("recv %q, %v", buf[:n], err)
	}
	if from.Host != "a" || from.Port != 1000 {
		t.Fatalf("from = %v", from)
	}
	if from.String() != "a:1000" {
		t.Fatalf("addr string = %q", from.String())
	}
}

func TestMessageBoundariesPreserved(t *testing.T) {
	a, b, clk := pair(t, netsim.Ethernet100())
	sa, _ := a.Bind(1)
	sb, _ := b.Bind(2)
	clk.Enter()
	sa.SendTo("b", 2, []byte("first"))
	sa.SendTo("b", 2, []byte("second-longer"))
	clk.Exit()
	buf := make([]byte, 64)
	n, _, _ := sb.TryRecvFrom(buf)
	if string(buf[:n]) != "first" {
		t.Fatalf("datagram 1 = %q", buf[:n])
	}
	n, _, _ = sb.TryRecvFrom(buf)
	if string(buf[:n]) != "second-longer" {
		t.Fatalf("datagram 2 = %q", buf[:n])
	}
}

func TestTruncationOnShortBuffer(t *testing.T) {
	a, b, clk := pair(t, netsim.Ethernet100())
	sa, _ := a.Bind(1)
	sb, _ := b.Bind(2)
	clk.Enter()
	sa.SendTo("b", 2, []byte("0123456789"))
	sa.SendTo("b", 2, []byte("next"))
	clk.Exit()
	buf := make([]byte, 4)
	n, _, _ := sb.TryRecvFrom(buf)
	if string(buf[:n]) != "0123" {
		t.Fatalf("truncated read = %q", buf[:n])
	}
	// The tail is gone; the next read is the next datagram.
	n, _, _ = sb.TryRecvFrom(buf)
	if string(buf[:n]) != "next" {
		t.Fatalf("second read = %q", buf[:n])
	}
}

func TestUnboundPortDropped(t *testing.T) {
	a, b, clk := pair(t, netsim.Ethernet100())
	sa, _ := a.Bind(1)
	clk.Enter()
	sa.SendTo("b", 7777, []byte("x"))
	clk.Exit()
	if s := b.Snapshot(); s.Dropped != 1 {
		t.Fatalf("dropped = %d", s.Dropped)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	a, b, clk := pair(t, netsim.Ethernet100())
	sa, _ := a.Bind(1)
	sb, _ := b.Bind(2)
	sb.SetQueueCap(3)
	clk.Enter()
	for i := 0; i < 10; i++ {
		sa.SendTo("b", 2, []byte{byte(i)})
	}
	clk.Exit()
	if sb.Pending() != 3 {
		t.Fatalf("pending = %d, want queue cap 3", sb.Pending())
	}
	if s := b.Snapshot(); s.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", s.Dropped)
	}
}

func TestLossIsSilent(t *testing.T) {
	link := netsim.Ethernet100()
	link.LossProb = 1.0
	a, b, clk := pair(t, link)
	sa, _ := a.Bind(1)
	sb, _ := b.Bind(2)
	clk.Enter()
	if err := sa.SendTo("b", 2, []byte("into the void")); err != nil {
		t.Fatalf("send reported loss: %v", err)
	}
	clk.Exit()
	if _, _, err := sb.TryRecvFrom(make([]byte, 16)); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("recv = %v", err)
	}
}

func TestTooLongRejected(t *testing.T) {
	a, _, _ := pair(t, netsim.Ethernet100())
	sa, _ := a.Bind(1)
	if err := sa.SendTo("b", 2, make([]byte, MaxDatagram+1)); !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestBindConflictsAndEphemeral(t *testing.T) {
	a, _, _ := pair(t, netsim.Ethernet100())
	if _, err := a.Bind(5); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Bind(5); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("dup bind: %v", err)
	}
	e1, err := a.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := a.Bind(0)
	if err != nil || e1.Port() == e2.Port() {
		t.Fatalf("ephemeral ports: %d %d %v", e1.Port(), e2.Port(), err)
	}
}

func TestCloseWakesReceiver(t *testing.T) {
	a, _, _ := pair(t, netsim.Ethernet100())
	sa, _ := a.Bind(1)
	done := make(chan error, 1)
	a.Go(func() {
		_, _, err := sa.RecvFrom(make([]byte, 8))
		done <- err
	})
	sa.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
	// Idempotent.
	sa.Close()
	if err := sa.SendTo("b", 2, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestMonadicEchoOverUDP(t *testing.T) {
	a, b, clk := pair(t, netsim.Ethernet100())
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	server, _ := b.Bind(53)
	client, _ := a.Bind(0)

	// Server thread: echo datagrams back to their source, uppercased by
	// the first byte to prove processing happened.
	rt.Spawn(core.Forever(func() core.M[core.Unit] {
		buf := make([]byte, 64)
		return core.Bind(server.RecvFromM(buf), func(r RecvResult) core.M[core.Unit] {
			reply := append([]byte("echo:"), buf[:r.N]...)
			return server.SendToM(r.From.Host, r.From.Port, reply)
		})
	}()))

	var got string
	done := make(chan struct{})
	rt.Spawn(core.Seq(
		client.SendToM("b", 53, []byte("hello")),
		core.Bind(client.RecvFromM(make([]byte, 64)), func(r RecvResult) core.M[core.Unit] {
			return core.Skip
		}),
		core.Do(func() { close(done) }),
	))
	// Re-run with payload captured properly.
	<-done
	buf := make([]byte, 64)
	var n int
	done2 := make(chan struct{})
	rt.Spawn(core.Seq(
		client.SendToM("b", 53, []byte("again")),
		core.Bind(client.RecvFromM(buf), func(r RecvResult) core.M[core.Unit] {
			n = r.N
			return core.Skip
		}),
		core.Do(func() { close(done2) }),
	))
	<-done2
	got = string(buf[:n])
	if got != "echo:again" {
		t.Fatalf("got %q", got)
	}
}

func TestRecvFromMRetryWithTimeout(t *testing.T) {
	// A request/retry client over lossy UDP: the application supplies
	// the reliability (the whole point of exposing raw datagrams).
	link := netsim.Ethernet100()
	link.LossProb = 0.7
	a, b, clk := pair(t, link)
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	server, _ := b.Bind(53)
	client, _ := a.Bind(0)
	rt.Spawn(core.Forever(func() core.M[core.Unit] {
		buf := make([]byte, 64)
		return core.Bind(server.RecvFromM(buf), func(r RecvResult) core.M[core.Unit] {
			return server.SendToM(r.From.Host, r.From.Port, buf[:r.N])
		})
	}()))

	buf := make([]byte, 64)
	var attempts int
	var answered bool
	done := make(chan struct{})
	var tryOnce func() core.M[core.Unit]
	tryOnce = func() core.M[core.Unit] {
		attempts++
		if attempts > 100 {
			return core.Do(func() { close(done) })
		}
		return core.Then(
			client.SendToM("b", 53, []byte("q")),
			core.Bind(
				core.Catch(
					core.Map(core.Timeout(clk, 20*time.Millisecond, client.RecvFromM(buf)),
						func(RecvResult) bool { return true }),
					func(err error) core.M[bool] {
						if errors.Is(err, core.ErrTimedOut) {
							return core.Return(false)
						}
						return core.Throw[bool](err)
					},
				),
				func(ok bool) core.M[core.Unit] {
					if ok {
						answered = true
						return core.Do(func() { close(done) })
					}
					return tryOnce()
				},
			),
		)
	}
	rt.Spawn(tryOnce())
	<-done
	if !answered {
		t.Fatalf("no answer after %d attempts at 70%% loss", attempts)
	}
	t.Logf("answered after %d attempts", attempts)
}

func TestEncodeDecodeProperty(t *testing.T) {
	check := func(src, dst uint16, payload []byte) bool {
		if len(payload) > MaxDatagram {
			payload = payload[:MaxDatagram]
		}
		s, d, p, err := decode(encode(src, dst, payload))
		return err == nil && s == src && d == dst && bytes.Equal(p, payload)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	buf := encode(1, 2, []byte("data"))
	buf[headerSize] ^= 0xFF
	if _, _, _, err := decode(buf); !errors.Is(err, ErrMalformed) {
		t.Fatalf("corrupt: %v", err)
	}
	if _, _, _, err := decode(buf[:3]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short: %v", err)
	}
}

func TestManySocketsConcurrent(t *testing.T) {
	a, b, clk := pair(t, netsim.Ethernet100())
	rt := core.NewRuntime(core.Options{Workers: 2, Clock: clk})
	defer rt.Shutdown()
	const socks = 32
	var mu sync.Mutex
	heard := map[uint16]bool{}
	wg := core.NewWaitGroup(socks)
	for i := 0; i < socks; i++ {
		port := uint16(1000 + i)
		sock, err := b.Bind(port)
		if err != nil {
			t.Fatal(err)
		}
		rt.Spawn(core.Finally(
			core.Bind(sock.RecvFromM(make([]byte, 8)), func(RecvResult) core.M[core.Unit] {
				return core.Do(func() {
					mu.Lock()
					heard[port] = true
					mu.Unlock()
				})
			}),
			wg.Done(),
		))
	}
	sender, _ := a.Bind(0)
	done := make(chan struct{})
	rt.Spawn(core.Seq(
		core.ForN(socks, func(i int) core.M[core.Unit] {
			return sender.SendToM("b", uint16(1000+i), []byte("hi"))
		}),
		wg.Wait(),
		core.Do(func() { close(done) }),
	))
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(heard) != socks {
		t.Fatalf("only %d of %d sockets heard their datagram", len(heard), socks)
	}
}
