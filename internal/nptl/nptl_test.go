package nptl

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hybrid/internal/disk"
	"hybrid/internal/kernel"
	"hybrid/internal/vclock"
)

func newRig(clk vclock.Clock, cfg Config) (*Runtime, *kernel.Kernel, *kernel.FS) {
	if clk == nil {
		clk = vclock.NewReal()
	}
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.DefaultGeometry()))
	return New(k, fs, cfg), k, fs
}

func TestSpawnAndWait(t *testing.T) {
	r, _, _ := newRig(nil, Config{})
	var ran atomic.Bool
	if err := r.Spawn(func(*Thread) { ran.Store(true) }); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	if !ran.Load() {
		t.Fatal("thread did not run")
	}
	if r.Threads() != 0 || r.StackMemory() != 0 {
		t.Fatalf("leaked: threads=%d stack=%d", r.Threads(), r.StackMemory())
	}
}

func TestMemoryBudgetCapsThreads(t *testing.T) {
	// The paper's configuration: 32 KB stacks in 512 MB caps NPTL at 16 K
	// threads. Use a scaled-down budget for speed.
	r, _, _ := newRig(nil, Config{StackSize: 32 * 1024, MemoryBudget: 32 * 1024 * 100, StackTouch: -1})
	release := make(chan struct{})
	spawned := 0
	for {
		err := r.Spawn(func(*Thread) { <-release })
		if err != nil {
			if !errors.Is(err, ErrNoMemory) {
				t.Fatalf("unexpected spawn error: %v", err)
			}
			break
		}
		spawned++
		if spawned > 1000 {
			t.Fatal("budget never enforced")
		}
	}
	if spawned != 100 {
		t.Fatalf("spawned %d threads, want 100", spawned)
	}
	close(release)
	r.Wait()
}

func TestBlockingPipeReadWrite(t *testing.T) {
	r, k, _ := newRig(nil, Config{MemoryBudget: -1})
	rfd, wfd := k.NewPipe(64)
	payload := make([]byte, 16*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	var got []byte
	var readErr error
	r.Spawn(func(t *Thread) {
		buf := make([]byte, 4096)
		for {
			n, err := t.Read(rfd, buf)
			if err != nil {
				readErr = err
				return
			}
			if n == 0 {
				return
			}
			got = append(got, buf[:n]...)
		}
	})
	r.Spawn(func(t *Thread) {
		if err := t.WriteAll(wfd, payload); err != nil {
			readErr = err
		}
		t.Close(wfd)
	})
	r.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %d bytes, want %d", len(got), len(payload))
	}
}

func TestAcceptConnect(t *testing.T) {
	r, k, _ := newRig(nil, Config{MemoryBudget: -1})
	lfd, err := k.Listen("srv:1", 4)
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	r.Spawn(func(t *Thread) {
		conn, err := t.Accept(lfd)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, _ := t.Read(conn, buf)
		t.WriteAll(conn, bytes.ToUpper(buf[:n]))
		t.Close(conn)
	})
	r.Spawn(func(t *Thread) {
		fd, err := t.Connect("srv:1")
		if err != nil {
			return
		}
		t.WriteAll(fd, []byte("ping"))
		buf := make([]byte, 64)
		n, _ := t.ReadFull(fd, buf[:4])
		reply = string(buf[:n])
		t.Close(fd)
	})
	r.Wait()
	if reply != "PING" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestPreadVirtualTimeAndSwitchCost(t *testing.T) {
	clk := vclock.NewVirtual()
	r, _, fs := newRig(clk, Config{MemoryBudget: -1, SwitchCost: time.Millisecond})
	f, err := fs.Create("data", 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	r.Spawn(func(t *Thread) {
		n, _ = t.Pread(f, make([]byte, 4096), 4096)
	})
	r.Wait()
	if n != 4096 {
		t.Fatalf("Pread = %d", n)
	}
	base := disk.DefaultGeometry().ServiceTime(0, 1, 1)
	got := time.Duration(clk.Now())
	if got != base+time.Millisecond {
		t.Fatalf("virtual time = %v, want service %v + 1ms switch cost", got, base)
	}
}

func TestManyThreadsConcurrentPreadUseElevator(t *testing.T) {
	clk := vclock.NewVirtual()
	r, _, fs := newRig(clk, Config{MemoryBudget: -1})
	f, _ := fs.Create("big", 1<<30, false)
	const threads = 32
	var completed atomic.Int64
	for i := 0; i < threads; i++ {
		i := i
		r.Spawn(func(t *Thread) {
			off := (int64(i*2654435761) % (1 << 29)) &^ 4095
			if off < 0 {
				off = -off
			}
			if n, err := t.Pread(f, make([]byte, 4096), off); err == nil && n == 4096 {
				completed.Add(1)
			}
		})
	}
	r.Wait()
	if completed.Load() != threads {
		t.Fatalf("completed %d of %d", completed.Load(), threads)
	}
	if d := fs.Disk().Snapshot(); d.MaxQueue < 2 {
		t.Fatalf("requests never queued concurrently (MaxQueue=%d)", d.MaxQueue)
	}
}

func TestSleepVirtual(t *testing.T) {
	clk := vclock.NewVirtual()
	r, _, _ := newRig(clk, Config{MemoryBudget: -1})
	var order []int
	r.Spawn(func(t *Thread) { t.Sleep(20 * time.Millisecond); order = append(order, 2) })
	r.Spawn(func(t *Thread) { t.Sleep(10 * time.Millisecond); order = append(order, 1) })
	r.Wait()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("wake order = %v", order)
	}
	if clk.Now() != vclock.Time(20*time.Millisecond) {
		t.Fatalf("final time = %v", clk.Now())
	}
}

func TestSwitchesCounted(t *testing.T) {
	r, k, _ := newRig(nil, Config{MemoryBudget: -1})
	rfd, wfd := k.NewPipe(4)
	r.Spawn(func(t *Thread) {
		buf := make([]byte, 4)
		for {
			n, err := t.Read(rfd, buf)
			if n == 0 || err != nil {
				return
			}
		}
	})
	r.Spawn(func(t *Thread) {
		for i := 0; i < 10; i++ {
			t.WriteAll(wfd, []byte("abcdefgh")) // forces blocking on the 4-byte pipe
		}
		t.Close(wfd)
	})
	r.Wait()
	if r.Switches() == 0 {
		t.Fatal("no context switches recorded")
	}
}
